/**
 * @file
 * Ablation for Sec. III-E's claim that lazy VC allocation lets AFC
 * halve total buffering (32 vs 64 flits/port) while matching the
 * tuned baseline's performance. Compares, under open-loop uniform
 * traffic across loads:
 *   - the backpressured baseline (8 VCs x 8 flits = 64/port),
 *   - AFC-always-backpressured with the paper's lazy shape
 *     (32 x 1 = 32/port),
 *   - AFC-always-backpressured with a halved lazy shape
 *     (16 x 1 = 16/port), showing where buffering starts to matter.
 *
 * Options: measure=<n> warmup=<n> obs=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "traffic/openloop.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    OpenLoopConfig ol;
    ol.warmupCycles = opt.getInt("warmup", 3000);
    ol.measureCycles = opt.getInt("measure", 10000);
    BenchProfile profile("ablation_lazy_vca", opt);

    printHeader("Ablation: lazy VCA buffer halving (Sec. III-E)",
                "AFC's 32 flits/port matches the baseline's 64 "
                "flits/port performance");

    NetworkConfig base;                      // 64 flits/port
    NetworkConfig lazy32 = base;             // paper AFC shape
    NetworkConfig lazy16 = base;
    lazy16.afcVnets = {{5, 1}, {5, 1}, {6, 1}}; // 16 flits/port

    std::printf("%-8s%14s%16s%16s%14s%16s%16s\n", "rate", "BP64-lat",
                "AFClazy32-lat", "AFClazy16-lat", "BP64-acc",
                "AFClazy32-acc", "AFClazy16-acc");
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    profile.begin("sweep");
    for (double rate : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
        ol.injectionRate = rate;
        OpenLoopResult bp =
            runOpenLoop(base, FlowControl::Backpressured, ol);
        OpenLoopResult l32 = runOpenLoop(
            lazy32, FlowControl::AfcAlwaysBackpressured, ol);
        OpenLoopResult l16 = runOpenLoop(
            lazy16, FlowControl::AfcAlwaysBackpressured, ol);
        cycles += 3 * (ol.warmupCycles + ol.measureCycles);
        for (const OpenLoopResult *r : {&bp, &l32, &l16})
            events += r->stats.flitsInjected + r->stats.flitsDelivered;
        std::printf("%-8.2f%14.1f%16.1f%16.1f%14.3f%16.3f%16.3f\n",
                    rate, bp.avgPacketLatency, l32.avgPacketLatency,
                    l16.avgPacketLatency, bp.acceptedRate,
                    l32.acceptedRate, l16.acceptedRate);
    }
    profile.end(cycles, events);

    std::printf("\nBuffer-leak energy per cycle ratio "
                "(AFC-lazy-32 vs BP-64, both always powered): ");
    {
        profile.begin("leak");
        Network a(lazy32, FlowControl::AfcAlwaysBackpressured);
        Network b(base, FlowControl::Backpressured);
        a.run(2000);
        b.run(2000);
        profile.end(4000, 0);
        std::printf("%.3f (flit-width-adjusted: 32*49 / 64*41 = "
                    "%.3f)\n",
                    a.aggregateEnergy().component(
                        EnergyComponent::BufferLeak) /
                        b.aggregateEnergy().component(
                            EnergyComponent::BufferLeak),
                    (32.0 * 49) / (64.0 * 41));
    }
    profile.finish();
    return 0;
}
