/**
 * @file
 * Ablation for Sec. III-B/C: sensitivity of AFC to the local
 * contention thresholds and EWMA smoothing. Sweeps a scaling factor
 * over the paper's thresholds and the EWMA weight, reporting mode
 * residency, switch churn, latency and energy under a mid-load
 * open-loop workload. Shows (1) the hysteresis gap suppressing
 * flapping and (2) EWMA smoothing suppressing transient switches.
 *
 * Options: rate=<f> measure=<n> obs=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "traffic/injector.hh"
#include "traffic/openloop.hh"

using namespace afcsim;
using namespace afcsim::bench;

namespace
{

struct AblationRow
{
    double latency;
    double energyPerFlit;
    double bpFraction;
    std::uint64_t switches;
    std::uint64_t simCycles;
    std::uint64_t flitEvents;
};

AblationRow
runCase(NetworkConfig cfg, double rate, Cycle measure)
{
    OpenLoopConfig ol;
    ol.injectionRate = rate;
    ol.warmupCycles = 3000;
    ol.measureCycles = measure;
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, rate, ol.dataPacketFraction);
    for (Cycle c = 0; c < ol.warmupCycles + ol.measureCycles; ++c) {
        inj.tick(net.now());
        net.step();
    }
    RouterStats rs = net.aggregateRouterStats();
    NetStats s = net.aggregateStats();
    AblationRow row;
    row.latency = s.packetLatency.mean();
    row.energyPerFlit = s.flitsDelivered
        ? net.aggregateEnergy().total() / s.flitsDelivered : 0.0;
    row.bpFraction = rs.backpressuredFraction();
    row.switches = rs.forwardSwitches + rs.reverseSwitches;
    row.simCycles = ol.warmupCycles + ol.measureCycles;
    row.flitEvents = s.flitsInjected + s.flitsDelivered;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double rate = opt.getDouble("rate", 0.45);
    Cycle measure = opt.getInt("measure", 15000);
    BenchProfile profile("ablation_thresholds", opt);
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    auto closePhase = [&] {
        profile.end(cycles, events);
        cycles = events = 0;
    };

    printHeader("Ablation: threshold scaling (paper thresholds x k)",
                "k<1 switches earlier (more BP residency); k>1 "
                "later; hysteresis keeps switch counts low");
    std::printf("%-8s%12s%14s%12s%12s\n", "k", "latency",
                "energy/flit", "bp-frac", "switches");
    profile.begin("threshold_scale");
    for (double k : {0.5, 0.75, 1.0, 1.5, 2.0}) {
        NetworkConfig cfg;
        cfg.afc.cornerHigh *= k;
        cfg.afc.cornerLow *= k;
        cfg.afc.edgeHigh *= k;
        cfg.afc.edgeLow *= k;
        cfg.afc.centerHigh *= k;
        cfg.afc.centerLow *= k;
        AblationRow r = runCase(cfg, rate, measure);
        cycles += r.simCycles;
        events += r.flitEvents;
        std::printf("%-8.2f%12.1f%14.2f%12.3f%12llu\n", k, r.latency,
                    r.energyPerFlit, r.bpFraction,
                    static_cast<unsigned long long>(r.switches));
    }
    closePhase();

    printHeader("Ablation: hysteresis (low = high x h)",
                "h -> 1 collapses the hysteresis band; switch churn "
                "rises");
    std::printf("%-8s%12s%14s%12s%12s\n", "h", "latency",
                "energy/flit", "bp-frac", "switches");
    profile.begin("hysteresis");
    for (double h : {0.5, 0.7, 0.9, 0.99}) {
        NetworkConfig cfg;
        cfg.afc.cornerLow = cfg.afc.cornerHigh * h;
        cfg.afc.edgeLow = cfg.afc.edgeHigh * h;
        cfg.afc.centerLow = cfg.afc.centerHigh * h;
        AblationRow r = runCase(cfg, rate, measure);
        cycles += r.simCycles;
        events += r.flitEvents;
        std::printf("%-8.2f%12.1f%14.2f%12.3f%12llu\n", h, r.latency,
                    r.energyPerFlit, r.bpFraction,
                    static_cast<unsigned long long>(r.switches));
    }
    closePhase();

    printHeader("Ablation: EWMA weight (paper: 0.99)",
                "lower weights react to bursts and flap more");
    std::printf("%-8s%12s%14s%12s%12s\n", "w", "latency",
                "energy/flit", "bp-frac", "switches");
    profile.begin("ewma_weight");
    for (double w : {0.0, 0.5, 0.9, 0.99, 0.999}) {
        NetworkConfig cfg;
        cfg.afc.ewmaWeight = w;
        AblationRow r = runCase(cfg, rate, measure);
        cycles += r.simCycles;
        events += r.flitEvents;
        std::printf("%-8.3f%12.1f%14.2f%12.3f%12llu\n", w, r.latency,
                    r.energyPerFlit, r.bpFraction,
                    static_cast<unsigned long long>(r.switches));
    }
    closePhase();
    profile.finish();
    return 0;
}
