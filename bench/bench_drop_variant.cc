/**
 * @file
 * Extension bench for the Sec. II design choice: deflection vs.
 * dropping. Sweeps open-loop uniform-random load over the two
 * backpressureless variants (plus the backpressured reference) and
 * reports latency, accepted throughput, and the drop/retransmission
 * rate — demonstrating the paper's reason for picking deflection:
 * the drop variant saturates at lower offered loads.
 *
 * Options: mesh=<n> step=<f> max=<f> warmup=<n> measure=<n>
 *          obs=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "traffic/openloop.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    NetworkConfig cfg;
    cfg.width = static_cast<int>(opt.getInt("mesh", 3));
    cfg.height = cfg.width;
    OpenLoopConfig ol;
    ol.warmupCycles = opt.getInt("warmup", 3000);
    ol.measureCycles = opt.getInt("measure", 10000);
    double step = opt.getDouble("step", 0.1);
    double max = opt.getDouble("max", 0.7);
    BenchProfile profile("drop_variant", opt);

    printHeader("Sec. II design choice: deflection vs. drop "
                "(uniform random, open loop)",
                "the drop variant saturates at lower offered loads "
                "than deflection (which itself saturates below "
                "backpressured)");
    std::printf("%-8s%12s%10s%14s%12s%14s%10s\n", "rate", "BPL-lat",
                "BPL-acc", "BPLdrop-lat", "BPLdrop-acc", "BP-lat",
                "BP-acc");
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    profile.begin("sweep");
    for (double rate = step; rate <= max + 1e-9; rate += step) {
        ol.injectionRate = rate;
        OpenLoopResult defl =
            runOpenLoop(cfg, FlowControl::Backpressureless, ol);
        OpenLoopResult drop =
            runOpenLoop(cfg, FlowControl::BackpressurelessDrop, ol);
        OpenLoopResult bp =
            runOpenLoop(cfg, FlowControl::Backpressured, ol);
        cycles += 3 * (ol.warmupCycles + ol.measureCycles);
        for (const OpenLoopResult *r : {&defl, &drop, &bp})
            events += r->stats.flitsInjected + r->stats.flitsDelivered;
        std::printf("%-8.2f%12.1f%10.3f%14.1f%12.3f%14.1f%10.3f\n",
                    rate, defl.avgPacketLatency, defl.acceptedRate,
                    drop.avgPacketLatency, drop.acceptedRate,
                    bp.avgPacketLatency, bp.acceptedRate);
    }
    profile.end(cycles, events);
    std::printf("\nThe drop variant's latency knee comes at a lower "
                "offered load than deflection's (its accepted cap "
                "converges only because the NACK fabric here is "
                "idealized as contention-free); both saturate far "
                "below backpressured — matching Sec. II.\n");
    profile.finish();
    return 0;
}
