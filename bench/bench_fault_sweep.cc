/**
 * @file
 * Robustness sweep: latency, energy and delivered-fraction vs.
 * injected transient-fault rate for the three main flow controls,
 * with the end-to-end reliability layer (checksums + timeout
 * retransmission) switched on. This extends the paper's robustness
 * axis — AFC tracking the better mechanism across *load* — to
 * corruption faults: delivery must stay complete (fraction 1.0) at
 * every rate, with the cost visible as latency/energy overhead.
 *
 * Two built-in checks make this bench a verifier (nonzero exit on
 * violation):
 *  - delivered-fraction must be exactly 1.0 at every fault rate
 *    (reliability repairs every corruption, nothing is ever lost);
 *  - at fault rate 0 the latency/energy/delivery numbers must match
 *    a plain fault-free network (no fault subsystem, no reliability
 *    layer) bit-for-bit — merely arming the machinery is free.
 *
 * Options: mesh=<n> rate=<load> rates=<r1,r2,...> warmup=<n>
 *          measure=<n> seed=<n> obs=<path|none>
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil.hh"
#include "network/network.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

using namespace afcsim;
using namespace afcsim::bench;

namespace
{

struct SweepCell
{
    double avgPacketLatency = 0.0;
    double energyTotal = 0.0;
    double deliveredFraction = 0.0;
    std::uint64_t retransmits = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t simCycles = 0;
    std::uint64_t flitEvents = 0;
    bool drained = false;
};

struct SweepOptions
{
    int mesh = 3;
    double load = 0.15;       ///< flits/node/cycle, sub-saturation
    Cycle injectCycles = 7000;
    std::uint64_t seed = 1;
};

/**
 * Drive one network to quiescence under uniform-random load and
 * report whole-run (construction-to-drain) numbers, so every
 * injected flit — including drain-phase retransmissions — is
 * accounted for.
 */
SweepCell
runCell(const NetworkConfig &cfg, FlowControl fc, const SweepOptions &o)
{
    SweepCell cell;
    Network net(cfg, fc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, o.load, 0.35);
    for (Cycle c = 0; c < o.injectCycles; ++c) {
        inj.tick(net.now());
        net.step();
    }
    cell.drained = net.drain(5000000);

    NetStats s = net.aggregateStats();
    cell.avgPacketLatency = s.packetLatency.mean();
    cell.energyTotal = net.aggregateEnergy().total();
    cell.retransmits = s.flitsRetransmitted;
    if (net.faultInjector())
        cell.corruptions = net.faultInjector()->stats().corruptions;
    std::uint64_t injected = 0, delivered = 0;
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        injected += net.nic(n).lifetime().flitsInjected;
        delivered += net.nic(n).lifetime().flitsDelivered;
    }
    if (injected > 0) {
        cell.deliveredFraction =
            static_cast<double>(delivered) / static_cast<double>(injected);
    }
    cell.simCycles = net.now();
    cell.flitEvents = injected + delivered;
    return cell;
}

std::vector<double>
parseRates(const std::string &list)
{
    std::vector<double> rates;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            rates.push_back(std::strtod(item.c_str(), nullptr));
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    SweepOptions o;
    o.mesh = static_cast<int>(opt.getInt("mesh", 3));
    o.load = opt.getDouble("rate", 0.15);
    o.injectCycles = static_cast<Cycle>(opt.getInt("warmup", 1000) +
                                        opt.getInt("measure", 6000));
    o.seed = static_cast<std::uint64_t>(opt.getInt("seed", 1));
    std::vector<double> rates =
        parseRates(opt.get("rates", "0,0.001,0.005,0.02"));
    std::vector<FlowControl> configs = {FlowControl::Backpressured,
                                        FlowControl::Backpressureless,
                                        FlowControl::Afc};
    BenchProfile profile("fault_sweep", opt);
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;

    printHeader(
        "Fault sweep: corruption rate vs latency / energy / delivery",
        "reliability layer repairs every fault; delivered fraction "
        "stays 1.0, cost shows up as latency+energy");
    std::printf("%-10s", "fault");
    for (FlowControl fc : configs) {
        std::printf("%12s%12s%10s%8s",
                    (shortName(fc) + "-lat").c_str(), "energy(pJ)",
                    "delivered", "retx");
    }
    std::printf("\n");

    int violations = 0;
    profile.begin("sweep");
    for (double rate : rates) {
        std::printf("%-10g", rate);
        for (FlowControl fc : configs) {
            NetworkConfig cfg;
            cfg.width = o.mesh;
            cfg.height = o.mesh;
            cfg.seed = o.seed;
            cfg.faults.corruptRate = rate;
            cfg.reliability.enabled = true;
            // Quick timeouts keep the drain phase short; a generous
            // retry budget makes permanent packet failure vanishingly
            // unlikely even at the highest sweep rate (backoff only
            // grows the waits actually taken).
            cfg.reliability.timeoutCycles = 256;
            cfg.reliability.maxRetries = 16;
            SweepCell cell = runCell(cfg, fc, o);
            cycles += cell.simCycles;
            events += cell.flitEvents;
            std::printf("%12.1f%12.0f%10.4f%8llu",
                        cell.avgPacketLatency, cell.energyTotal,
                        cell.deliveredFraction,
                        static_cast<unsigned long long>(
                            cell.retransmits));
            if (!cell.drained || cell.deliveredFraction != 1.0) {
                ++violations;
                std::fprintf(stderr,
                             "FAIL: %s at fault rate %g: drained=%d "
                             "delivered-fraction=%.6f (want 1.0)\n",
                             shortName(fc).c_str(), rate,
                             cell.drained ? 1 : 0,
                             cell.deliveredFraction);
            }
            if (rate > 0.0 && cell.corruptions == 0) {
                ++violations;
                std::fprintf(stderr,
                             "FAIL: %s at fault rate %g: no fault was "
                             "actually injected\n",
                             shortName(fc).c_str(), rate);
            }
            if (rate == 0.0) {
                // The fault-free equivalence check: zero rate with
                // the subsystem armed == plain network, bit for bit.
                NetworkConfig plain;
                plain.width = o.mesh;
                plain.height = o.mesh;
                plain.seed = o.seed;
                SweepCell base = runCell(plain, fc, o);
                cycles += base.simCycles;
                events += base.flitEvents;
                if (cell.avgPacketLatency != base.avgPacketLatency ||
                    cell.energyTotal != base.energyTotal ||
                    cell.deliveredFraction != base.deliveredFraction) {
                    ++violations;
                    std::fprintf(
                        stderr,
                        "FAIL: %s rate-0 diverges from the fault-free "
                        "path: lat %.17g vs %.17g, energy %.17g vs "
                        "%.17g\n",
                        shortName(fc).c_str(), cell.avgPacketLatency,
                        base.avgPacketLatency, cell.energyTotal,
                        base.energyTotal);
                }
            }
        }
        std::printf("\n");
    }
    profile.end(cycles, events);
    profile.finish();

    if (violations) {
        std::fprintf(stderr, "%d violation(s)\n", violations);
        return 1;
    }
    std::printf("\nall delivered fractions 1.0; rate-0 matches the "
                "fault-free path bit-for-bit\n");
    return 0;
}
