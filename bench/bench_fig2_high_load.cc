/**
 * @file
 * Reproduces Fig. 2(c) and Fig. 2(d): performance and network
 * energy of the high-load commercial workloads (Apache, OLTP,
 * SPECjbb), normalized to the backpressured baseline. With
 * repeats > 1, cells print mean +- stddev over seeds (the paper's
 * variance bars).
 *
 * The workload x config x seed grid is an ExperimentSpec executed
 * through the parallel runner; tables and the JSON artifact render
 * from the same aggregated results.
 *
 * Options: scale=<f> seed=<n> repeats=<n> threads=<n>
 *          json=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "exp/experiments.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);

    exp::ExperimentSpec spec = exp::fig2HighLoadExperiment();
    spec.scale = opt.getDouble("scale", 1.0);
    spec.baseSeed = static_cast<std::uint64_t>(opt.getInt("seed", 7));
    spec.repeats = static_cast<int>(opt.getInt("repeats", 1));

    std::vector<exp::RunResult> results = runSpecForBench(spec, opt);
    auto rows = exp::aggregate(results);

    printHeader("Fig. 2(c): Performance, high-load benchmarks "
                "(normalized to Backpressured; higher is better)",
                "BPL ~0.81 (19% degradation), AFC within 2%");
    printHeader("Fig. 2(d): Network energy, high-load benchmarks "
                "(normalized to Backpressured; lower is better)",
                "BPL ~1.35, AFC ~1.02 (3% worst case)");

    printRelativeTables(rows, spec.workloads, spec.configs);

    std::printf("\npaper reference (geo-mean): perf BPL~0.81 AFC~0.98; "
                "energy BPL~1.35 AFC~1.02\n");
    return 0;
}
