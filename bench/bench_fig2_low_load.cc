/**
 * @file
 * Reproduces Fig. 2(a) and Fig. 2(b): performance and network
 * energy of the low-load SPLASH-2 workloads (Barnes, Ocean, Water),
 * normalized to the backpressured baseline. We report performance as
 * baseline-runtime / runtime so higher is better, matching the
 * paper's bars. With repeats > 1, cells print mean +- stddev over
 * seeds (the paper's variance bars).
 *
 * The workload x config x seed grid is an ExperimentSpec executed
 * through the parallel runner; tables and the JSON artifact render
 * from the same aggregated results.
 *
 * Options: scale=<f> (transaction-count scale, default 1.0)
 *          seed=<n> repeats=<n> threads=<n> json=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "exp/experiments.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);

    exp::ExperimentSpec spec = exp::fig2LowLoadExperiment();
    spec.scale = opt.getDouble("scale", 1.0);
    spec.baseSeed = static_cast<std::uint64_t>(opt.getInt("seed", 7));
    spec.repeats = static_cast<int>(opt.getInt("repeats", 1));

    std::vector<exp::RunResult> results = runSpecForBench(spec, opt);
    auto rows = exp::aggregate(results);

    printHeader("Fig. 2(a): Performance, low-load benchmarks "
                "(normalized to Backpressured; higher is better)",
                "all mechanisms within a few % of each other");
    printHeader("Fig. 2(b): Network energy, low-load benchmarks "
                "(normalized to Backpressured; lower is better)",
                "BPL ~0.70, AFC ~0.77, BP-ideal ~0.93, BP = 1.0");

    printRelativeTables(rows, spec.workloads, spec.configs);

    std::printf("\npaper reference (geo-mean): perf all ~1.0; energy "
                "BP=1.00 BPL=0.70 AFC~0.77 BP-ideal~0.93\n");
    return 0;
}
