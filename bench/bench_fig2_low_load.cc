/**
 * @file
 * Reproduces Fig. 2(a) and Fig. 2(b): performance and network
 * energy of the low-load SPLASH-2 workloads (Barnes, Ocean, Water),
 * normalized to the backpressured baseline. We report performance as
 * baseline-runtime / runtime so higher is better, matching the
 * paper's bars. With repeats > 1, cells print mean +- stddev over
 * seeds (the paper's variance bars).
 *
 * Options: scale=<f> (transaction-count scale, default 1.0)
 *          seed=<n> repeats=<n>
 */

#include <cmath>
#include <cstdio>

#include "benchutil.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double scale = opt.getDouble("scale", 1.0);
    std::uint64_t seed = opt.getInt("seed", 7);
    int repeats = static_cast<int>(opt.getInt("repeats", 1));

    printHeader("Fig. 2(a): Performance, low-load benchmarks "
                "(normalized to Backpressured; higher is better)",
                "all mechanisms within a few % of each other");
    printHeader("Fig. 2(b): Network energy, low-load benchmarks "
                "(normalized to Backpressured; lower is better)",
                "BPL ~0.70, AFC ~0.77, BP-ideal ~0.93, BP = 1.0");

    auto configs = energyLowLoadConfigs();
    std::vector<std::string> names;
    for (FlowControl fc : configs)
        names.push_back(shortName(fc));

    auto workloads = lowLoadWorkloads();
    std::vector<RelativeResults> results;
    std::vector<RunningStat> geoPerf(configs.size());
    std::vector<RunningStat> geoEnergy(configs.size());

    for (const auto &base_w : workloads) {
        WorkloadProfile w = base_w;
        w.measureTransactions = static_cast<std::uint64_t>(
            w.measureTransactions * scale);
        w.warmupTransactions = static_cast<std::uint64_t>(
            w.warmupTransactions * scale);
        RelativeResults r = runRelative(
            configs, repeats, seed,
            [&](FlowControl fc, std::uint64_t s) {
                NetworkConfig cfg;
                cfg.seed = s;
                ClosedLoopResult res = runClosedLoop(cfg, fc, w);
                return std::pair<double, double>{
                    static_cast<double>(res.runtime),
                    res.energy.total()};
            });
        for (std::size_t i = 0; i < configs.size(); ++i) {
            geoPerf[i].add(std::log(r.perf[i].mean()));
            geoEnergy[i].add(std::log(r.energy[i].mean()));
        }
        results.push_back(std::move(r));
    }

    std::printf("\nPerformance (relative):\n");
    printColumns(names);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        printStatRow(workloads[i].name, results[i].perf);
    std::vector<double> pm, em;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        pm.push_back(std::exp(geoPerf[i].mean()));
        em.push_back(std::exp(geoEnergy[i].mean()));
    }
    printRow("geo-mean", pm);

    std::printf("\nNetwork energy (relative):\n");
    printColumns(names);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        printStatRow(workloads[i].name, results[i].energy);
    printRow("geo-mean", em);

    std::printf("\npaper reference (geo-mean): perf all ~1.0; energy "
                "BP=1.00 BPL=0.70 AFC~0.77 BP-ideal~0.93\n");
    return 0;
}
