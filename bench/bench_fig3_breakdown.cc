/**
 * @file
 * Reproduces Fig. 3(a)/(b): network energy breakdown (buffer / link
 * / rest-of-router) for all six workloads and four mechanisms,
 * normalized to the backpressured baseline's total.
 *
 * Options: scale=<f> seed=<n> obs=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;
using namespace afcsim::bench;

namespace
{

void
runSet(const std::vector<WorkloadProfile> &workloads, double scale,
       std::uint64_t seed, const char *figure, const char *phase,
       BenchProfile &profile)
{
    std::printf("\n--- %s ---\n", figure);
    auto configs = mainConfigs();
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    profile.begin(phase);
    for (const auto &base_w : workloads) {
        WorkloadProfile w = base_w;
        w.measureTransactions = static_cast<std::uint64_t>(
            w.measureTransactions * scale);
        w.warmupTransactions = static_cast<std::uint64_t>(
            w.warmupTransactions * scale);
        NetworkConfig cfg;
        cfg.seed = seed;

        ClosedLoopResult base =
            runClosedLoop(cfg, FlowControl::Backpressured, w);
        cycles += base.runtime;
        events += base.net.flitsInjected + base.net.flitsDelivered;
        double norm = base.energy.total();
        std::printf("\n%s (all values normalized to BP total)\n",
                    w.name.c_str());
        std::printf("%-14s%12s%12s%12s%12s\n", "", "buffer", "link",
                    "rest", "total");
        for (FlowControl fc : configs) {
            ClosedLoopResult r =
                fc == FlowControl::Backpressured ? base
                    : runClosedLoop(cfg, fc, w);
            if (fc != FlowControl::Backpressured) {
                cycles += r.runtime;
                events +=
                    r.net.flitsInjected + r.net.flitsDelivered;
            }
            std::printf("%-14s%12.3f%12.3f%12.3f%12.3f\n",
                        shortName(fc).c_str(),
                        r.energy.bufferEnergy() / norm,
                        r.energy.linkEnergy() / norm,
                        r.energy.restEnergy() / norm,
                        r.energy.total() / norm);
        }
    }
    profile.end(cycles, events);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double scale = opt.getDouble("scale", 1.0);
    std::uint64_t seed = opt.getInt("seed", 7);
    BenchProfile profile("fig3_breakdown", opt);

    printHeader("Fig. 3: Network energy breakdown",
                "low load: buffer energy significant for BP, "
                "eliminated by BPL/AFC for a modest link-energy "
                "increase; high load: BP lowest, BPL pays a large "
                "link-energy penalty from misrouting");
    runSet(lowLoadWorkloads(), scale, seed,
           "Fig. 3(a): low-load applications", "low_load", profile);
    runSet(highLoadWorkloads(), scale, seed,
           "Fig. 3(b): high-load applications", "high_load", profile);
    profile.finish();
    return 0;
}
