/**
 * @file
 * Reproduces the Sec. V "Mode duty cycle and spatial variation"
 * measurements: the fraction of router-cycles AFC spends in each
 * mode per workload, plus switch counts (including gossip-induced
 * switches, which the paper's closed-loop runs never exercised).
 *
 * Options: scale=<f> seed=<n>
 */

#include <cstdio>

#include "benchutil.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double scale = opt.getDouble("scale", 1.0);
    std::uint64_t seed = opt.getInt("seed", 7);

    printHeader("Sec. V: AFC mode duty cycle",
                "water/barnes ~99% backpressureless; specjbb/apache "
                ">99% backpressured; ocean 7% BP, oltp 5% BPL; no "
                "gossip switches in closed-loop runs");
    std::printf("%-10s%14s%14s%12s%12s%10s\n", "workload", "%cycles-BP",
                "%cycles-BPL", "fwd-sw", "rev-sw", "gossip");

    for (const auto &base_w : allWorkloads()) {
        WorkloadProfile w = base_w;
        w.measureTransactions = static_cast<std::uint64_t>(
            w.measureTransactions * scale);
        w.warmupTransactions = static_cast<std::uint64_t>(
            w.warmupTransactions * scale);
        NetworkConfig cfg;
        cfg.seed = seed;
        // Measurement window only: mode state reached steady during
        // warmup, matching the paper's methodology.
        ClosedLoopResult r = runClosedLoop(cfg, FlowControl::Afc, w);
        std::printf("%-10s%13.1f%%%13.1f%%%12llu%12llu%10llu\n",
                    w.name.c_str(), 100.0 * r.bpFraction,
                    100.0 * (1.0 - r.bpFraction),
                    static_cast<unsigned long long>(r.forwardSwitches),
                    static_cast<unsigned long long>(r.reverseSwitches),
                    static_cast<unsigned long long>(r.gossipSwitches));
    }
    return 0;
}
