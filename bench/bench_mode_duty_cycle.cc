/**
 * @file
 * Reproduces the Sec. V "Mode duty cycle and spatial variation"
 * measurements: the fraction of router-cycles AFC spends in each
 * mode per workload, plus switch counts (including gossip-induced
 * switches, which the paper's closed-loop runs never exercised).
 *
 * Observability: `trace=1` records every AFC mode switch and exports
 * a Chrome trace-event file per workload (open in Perfetto) named
 * `mode_duty_<workload>_trace.json`, then cross-checks the
 * trace-derived per-router residency against the routers' own cycle
 * counters. `series=1` additionally samples per-router time series
 * (`mode_duty_<workload>_series.csv`), `sample=N` sets the period.
 *
 * Options: scale=<f> seed=<n> workload=<name> trace=1 series=1
 *          sample=<cycles> obs=<path|none>
 */

#include <cmath>
#include <cstdio>

#include "benchutil.hh"
#include "obs/obs.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;
using namespace afcsim::bench;

namespace
{

/**
 * Compare the residency reconstructed from mode-switch trace events
 * against the network-wide counter duty cycle. Both cover the
 * measurement window (the harness marks it on the Observability at
 * the post-warmup stats reset). Forward switches are traced at the
 * decision cycle, 2L cycles before buffering actually begins, so the
 * comparison uses a tolerance that scales with switch density.
 * Returns true when consistent.
 */
bool
checkTraceResidency(const obs::Observability &o,
                    const ClosedLoopResult &r)
{
    std::vector<double> residency = o.bpResidency();
    if (residency.empty())
        return true;
    double mean = 0.0;
    for (double f : residency)
        mean += f;
    mean /= static_cast<double>(residency.size());

    Cycle window = o.lastCycle() + 1 - o.windowStart();
    double switches = static_cast<double>(r.forwardSwitches +
                                          r.reverseSwitches);
    double lagError =
        window > 0 ? 4.0 * switches / static_cast<double>(window)
                   : 0.0;
    double tol = 0.02 + lagError;
    double diff = std::fabs(mean - r.bpFraction);
    std::printf("  trace check: residency %.1f%% vs counters %.1f%% "
                "(tol %.1f%%) -> %s\n",
                100.0 * mean, 100.0 * r.bpFraction, 100.0 * tol,
                diff <= tol ? "ok" : "MISMATCH");
    return diff <= tol;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double scale = opt.getDouble("scale", 1.0);
    std::uint64_t seed = opt.getInt("seed", 7);
    bool trace = opt.getInt("trace", 0) != 0;
    bool series = opt.getInt("series", 0) != 0;
    Cycle sample = static_cast<Cycle>(opt.getInt("sample", 64));
    std::string only = opt.get("workload", "");
    BenchProfile profile("mode_duty_cycle", opt);

    printHeader("Sec. V: AFC mode duty cycle",
                "water/barnes ~99% backpressureless; specjbb/apache "
                ">99% backpressured; ocean 7% BP, oltp 5% BPL; no "
                "gossip switches in closed-loop runs");
    std::printf("%-10s%14s%14s%12s%12s%10s\n", "workload", "%cycles-BP",
                "%cycles-BPL", "fwd-sw", "rev-sw", "gossip");

    bool consistent = true;
    for (const auto &base_w : allWorkloads()) {
        if (!only.empty() && base_w.name != only)
            continue;
        WorkloadProfile w = base_w;
        w.measureTransactions = static_cast<std::uint64_t>(
            w.measureTransactions * scale);
        w.warmupTransactions = static_cast<std::uint64_t>(
            w.warmupTransactions * scale);
        NetworkConfig cfg;
        cfg.seed = seed;
        cfg.obs.trace = trace;
        if (series)
            cfg.obs.sampleInterval = sample;
        // Measurement window only: mode state reached steady during
        // warmup, matching the paper's methodology.
        profile.begin(w.name);
        ClosedLoopResult r = runClosedLoop(cfg, FlowControl::Afc, w);
        profile.end(r.runtime, r.net);
        std::printf("%-10s%13.1f%%%13.1f%%%12llu%12llu%10llu\n",
                    w.name.c_str(), 100.0 * r.bpFraction,
                    100.0 * (1.0 - r.bpFraction),
                    static_cast<unsigned long long>(r.forwardSwitches),
                    static_cast<unsigned long long>(r.reverseSwitches),
                    static_cast<unsigned long long>(r.gossipSwitches));
        if (r.obs) {
            if (trace) {
                std::string path =
                    "mode_duty_" + w.name + "_trace.json";
                if (r.obs->writeChromeTrace(path))
                    std::printf("  wrote %s (%llu mode events)\n",
                                path.c_str(),
                                static_cast<unsigned long long>(
                                    r.obs->trace()->modeEvents()
                                        .size()));
                consistent =
                    checkTraceResidency(*r.obs, r) && consistent;
            }
            if (series) {
                std::string path =
                    "mode_duty_" + w.name + "_series.csv";
                if (r.obs->writeSeriesCsv(path))
                    std::printf("  wrote %s\n", path.c_str());
            }
        }
    }
    profile.finish();
    if (!consistent) {
        std::fprintf(stderr,
                     "mode_duty_cycle: trace-derived residency "
                     "disagrees with router counters\n");
        return 1;
    }
    return 0;
}
