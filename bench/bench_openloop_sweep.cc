/**
 * @file
 * Reproduces the Sec. V "Other results" open-loop experiment:
 * latency vs. offered uniform-random load for the three mechanisms.
 * Expected shape: similar latency at low loads; backpressureless
 * saturates at a lower offered load; AFC matches backpressured's
 * saturation throughput.
 *
 * The run grid is declared as an ExperimentSpec and executed through
 * the parallel runner; the table below and the JSON artifact render
 * from the same structured results.
 *
 * Options: mesh=<n> step=<f> max=<f> warmup=<n> measure=<n>
 *          threads=<n> (0 = all cores) json=<path|none> progress=1
 */

#include <cstdio>
#include <vector>

#include "benchutil.hh"
#include "exp/experiments.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);

    exp::ExperimentSpec spec = exp::openloopSweepExperiment();
    int mesh = static_cast<int>(opt.getInt("mesh", 3));
    spec.meshSizes = {mesh};
    spec.rateSweep(opt.getDouble("step", 0.05),
                   opt.getDouble("max", 0.85));
    spec.warmupCycles = opt.getInt("warmup", 4000);
    spec.measureCycles = opt.getInt("measure", 12000);

    std::vector<exp::RunResult> results = runSpecForBench(spec, opt);

    printHeader("Open-loop uniform random: latency vs offered load",
                "all similar at low load; BPL saturates first; AFC "
                "tracks BP saturation");
    std::printf("%-8s", "rate");
    for (FlowControl fc : spec.configs) {
        std::printf("%12s%10s%10s%8s",
                    (shortName(fc) + "-lat").c_str(), "p99",
                    "accepted", "sat");
    }
    std::printf("%10s\n", "AFC-bp%");

    // Grid order is rate-major, then flow control (repeats = 1).
    std::size_t i = 0;
    for (double rate : spec.rates) {
        std::printf("%-8.2f", rate);
        double afc_bp = 0.0;
        for (FlowControl fc : spec.configs) {
            const exp::RunResult &r = results.at(i++);
            AFCSIM_ASSERT(r.point.fc == fc && r.point.rate == rate,
                          "grid order mismatch");
            std::printf("%12.1f%10.1f%10.3f%8s", r.avgPacketLatency,
                        r.p99PacketLatency, r.acceptedRate,
                        r.saturated ? "*" : "");
            if (fc == FlowControl::Afc)
                afc_bp = r.bpFraction;
        }
        std::printf("%9.1f%%\n", 100.0 * afc_bp);
    }
    std::printf("\n('*' marks saturation: accepted < 90%% of offered "
                "or growing source queues)\n");
    return 0;
}
