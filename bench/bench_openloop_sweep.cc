/**
 * @file
 * Reproduces the Sec. V "Other results" open-loop experiment:
 * latency vs. offered uniform-random load for the three mechanisms.
 * Expected shape: similar latency at low loads; backpressureless
 * saturates at a lower offered load; AFC matches backpressured's
 * saturation throughput.
 *
 * Options: mesh=<n> step=<f> max=<f> warmup=<n> measure=<n>
 */

#include <cstdio>
#include <vector>

#include "benchutil.hh"
#include "traffic/openloop.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    int mesh = opt.getInt("mesh", 3);
    double step = opt.getDouble("step", 0.05);
    double max = opt.getDouble("max", 0.85);

    NetworkConfig cfg;
    cfg.width = mesh;
    cfg.height = mesh;
    OpenLoopConfig ol;
    ol.warmupCycles = opt.getInt("warmup", 4000);
    ol.measureCycles = opt.getInt("measure", 12000);

    printHeader("Open-loop uniform random: latency vs offered load",
                "all similar at low load; BPL saturates first; AFC "
                "tracks BP saturation");
    std::vector<FlowControl> configs = {FlowControl::Backpressured,
                                        FlowControl::Backpressureless,
                                        FlowControl::Afc};
    std::printf("%-8s", "rate");
    for (FlowControl fc : configs) {
        std::printf("%12s%10s%10s%8s",
                    (shortName(fc) + "-lat").c_str(), "p99",
                    "accepted", "sat");
    }
    std::printf("%10s\n", "AFC-bp%");

    for (double rate = step; rate <= max + 1e-9; rate += step) {
        ol.injectionRate = rate;
        std::printf("%-8.2f", rate);
        double afc_bp = 0.0;
        for (FlowControl fc : configs) {
            OpenLoopResult r = runOpenLoop(cfg, fc, ol);
            std::printf("%12.1f%10.1f%10.3f%8s", r.avgPacketLatency,
                        r.p99PacketLatency, r.acceptedRate,
                        r.saturated ? "*" : "");
            if (fc == FlowControl::Afc)
                afc_bp = r.bpFraction;
        }
        std::printf("%9.1f%%\n", 100.0 * afc_bp);
    }
    std::printf("\n('*' marks saturation: accepted < 90%% of offered "
                "or growing source queues)\n");
    return 0;
}
