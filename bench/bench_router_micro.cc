/**
 * @file
 * google-benchmark microbenchmarks: raw simulation speed of each
 * router model (cycles/second of a loaded 3x3 network) and of the
 * deflection assignment engine. These are simulator-engineering
 * numbers, not paper results; they document the cost of each model.
 */

#include <benchmark/benchmark.h>

#include "network/network.hh"
#include "router/deflection.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

namespace afcsim
{
namespace
{

void
runNetworkCycles(benchmark::State &state, FlowControl fc, double rate)
{
    NetworkConfig cfg;
    Network net(cfg, fc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, rate, 0.35);
    for (auto _ : state) {
        inj.tick(net.now());
        net.step();
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(net.aggregateStats().flitsDelivered);
}

void
BM_BackpressuredCycle(benchmark::State &state)
{
    runNetworkCycles(state, FlowControl::Backpressured, 0.3);
}
BENCHMARK(BM_BackpressuredCycle);

void
BM_DeflectionCycle(benchmark::State &state)
{
    runNetworkCycles(state, FlowControl::Backpressureless, 0.3);
}
BENCHMARK(BM_DeflectionCycle);

void
BM_AfcCycle(benchmark::State &state)
{
    runNetworkCycles(state, FlowControl::Afc, 0.3);
}
BENCHMARK(BM_AfcCycle);

void
BM_AfcCycleHighLoad(benchmark::State &state)
{
    runNetworkCycles(state, FlowControl::Afc, 0.7);
}
BENCHMARK(BM_AfcCycleHighLoad);

void
BM_DeflectionEngineAssign(benchmark::State &state)
{
    Mesh mesh(3, 3);
    DeflectionEngine eng(mesh, 4, DeflectionPolicy::Random, 1);
    Rng rng(1);
    std::vector<Flit> proto(4);
    for (int i = 0; i < 4; ++i) {
        proto[i].packet = i;
        proto[i].src = 0;
        proto[i].dest = static_cast<NodeId>((i * 2 + 1) % 9);
    }
    std::vector<Flit> flits;
    std::vector<DeflectionEngine::Assignment> out;
    for (auto _ : state) {
        flits = proto; // assign() reorders its input in place
        Direction free_port;
        eng.assign(flits, rng, 8, &free_port, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_DeflectionEngineAssign);

void
BM_IdleNetworkCycle(benchmark::State &state)
{
    NetworkConfig cfg;
    Network net(cfg, FlowControl::Afc);
    for (auto _ : state)
        net.step();
}
BENCHMARK(BM_IdleNetworkCycle);

void
BM_IdleNetworkCycleNoSkip(benchmark::State &state)
{
    NetworkConfig cfg;
    cfg.idleSkip = false;
    Network net(cfg, FlowControl::Afc);
    for (auto _ : state)
        net.step();
}
BENCHMARK(BM_IdleNetworkCycleNoSkip);

void
BM_AfcCycleNoSkip(benchmark::State &state)
{
    NetworkConfig cfg;
    cfg.idleSkip = false;
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.3, 0.35);
    for (auto _ : state) {
        inj.tick(net.now());
        net.step();
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(net.aggregateStats().flitsDelivered);
}
BENCHMARK(BM_AfcCycleNoSkip);

} // namespace
} // namespace afcsim

BENCHMARK_MAIN();
