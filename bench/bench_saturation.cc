/**
 * @file
 * Saturation-rate comparison via the adaptive load search
 * (src/search): per traffic pattern, find the maximum sustainable
 * injection rate for each flow control by bracketing + bisection and
 * print the resulting "saturation ladder". This replaces the coarse
 * read-it-off-the-sweep estimate with a Nighthawk-style search to a
 * declared rate tolerance.
 *
 * Built-in check (nonzero exit on violation): the paper's core
 * robustness claim at high load is that AFC saturates at a *similar*
 * point as the backpressured mechanism (Sec. V "Other results"), so
 * AFC's found saturation rate must not fall below BP's by more than
 * a relative margin (default 6 %, `margin=`) or one rate tolerance,
 * whichever is larger, under every pattern swept here — uniform
 * random, transpose, and hotspot by default. The margin is the
 * honest reading of "similar": AFC's backpressured mode runs lazy
 * VCA with half the buffering per port (Sec. III-E), which costs a
 * few percent of peak throughput on an 8x8 uniform mesh (measured
 * ~5 %) while AFC matches or beats BP on the asymmetric patterns.
 *
 * Options: mesh=<n> seed=<n> patterns=<p1,p2,...>
 *          configs=<bp,bpl,afc> warmup=<n> measure=<n>
 *          probe_warmup=<n> probe_measure=<n> tolerance=<r>
 *          max_probes=<n> margin=<r> threads=<n> json=<path|none>
 *          obs=<path|none>
 */

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "benchutil.hh"
#include "exp/experiments.hh"
#include "search/search.hh"

using namespace afcsim;
using namespace afcsim::bench;

namespace
{

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** The found optimum for one (pattern, flow control) cell. */
struct Ladder
{
    double optimum = 0.0;
    bool converged = false;
    int probes = 0;
    std::string error;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    std::vector<std::string> patterns =
        splitList(opt.get("patterns", "uniform,transpose,hotspot"));
    std::vector<FlowControl> configs;
    for (const auto &c : splitList(opt.get("configs", "bp,afc")))
        configs.push_back(flowControlFromString(c));
    int threads = static_cast<int>(opt.getInt("threads", 0));

    // One search grid per pattern, all derived from the registered
    // saturation_search experiment so CLI and bench cannot drift.
    exp::ExperimentSpec base = exp::saturationSearchExperiment();
    base.meshSizes = {static_cast<int>(opt.getInt("mesh", 8))};
    base.configs = configs;
    base.baseSeed = static_cast<std::uint64_t>(opt.getInt("seed", 1));
    base.warmupCycles =
        static_cast<Cycle>(opt.getInt("warmup", 4000));
    base.measureCycles =
        static_cast<Cycle>(opt.getInt("measure", 12000));
    base.search.probeWarmup =
        static_cast<Cycle>(opt.getInt("probe_warmup", 1000));
    base.search.probeMeasure =
        static_cast<Cycle>(opt.getInt("probe_measure", 3000));
    base.search.rateTolerance = opt.getDouble("tolerance", 0.002);
    base.search.maxProbes =
        static_cast<int>(opt.getInt("max_probes", 12));
    double margin = opt.getDouble("margin", 0.06);

    printHeader(
        "Saturation search: max sustainable rate per flow control",
        "AFC saturates at a similar point as the backpressured "
        "mechanism (its lazy-VCA mode buys half the buffers for a "
        "few percent of peak throughput)");
    std::vector<std::string> names;
    for (FlowControl fc : configs)
        names.push_back(shortName(fc));
    printColumns(names);

    BenchProfile profile("saturation", opt);
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    int violations = 0;
    JsonValue artifacts = JsonValue::array();

    profile.begin("search");
    for (const auto &pattern : patterns) {
        exp::ExperimentSpec spec = base;
        spec.pattern = pattern;
        std::vector<search::SearchResult> results =
            search::runSearchGrid(spec, threads);

        std::vector<Ladder> ladder(configs.size());
        for (const auto &r : results) {
            std::size_t i = 0;
            while (i < configs.size() && configs[i] != r.point.fc)
                ++i;
            if (i == configs.size())
                continue;
            ladder[i].optimum = r.optimumRate;
            ladder[i].converged = r.converged;
            ladder[i].probes = static_cast<int>(r.probes.size());
            ladder[i].error = r.error;
            cycles += static_cast<std::uint64_t>(r.probes.size()) *
                      (spec.search.probeWarmup +
                       spec.search.probeMeasure);
            if (r.error.empty()) {
                cycles += spec.warmupCycles + spec.measureCycles;
                events += r.finalRun.net.flitsInjected +
                          r.finalRun.net.flitsDelivered;
            }
        }

        std::vector<double> rates;
        for (const auto &l : ladder)
            rates.push_back(l.optimum);
        printRow(pattern, rates, 12, 4);

        // The check: AFC's saturation must come within the relative
        // margin of BP's (or one rate tolerance, whichever is
        // larger — both optima were bisected to that tolerance).
        const Ladder *bp = nullptr;
        const Ladder *afc = nullptr;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            if (configs[i] == FlowControl::Backpressured)
                bp = &ladder[i];
            if (configs[i] == FlowControl::Afc)
                afc = &ladder[i];
        }
        for (std::size_t i = 0; i < configs.size(); ++i) {
            if (!ladder[i].error.empty()) {
                ++violations;
                std::fprintf(stderr, "FAIL: %s/%s search failed: %s\n",
                             pattern.c_str(), names[i].c_str(),
                             ladder[i].error.c_str());
            }
        }
        if (bp != nullptr && afc != nullptr && bp->error.empty() &&
            afc->error.empty()) {
            double slack = std::max(base.search.rateTolerance,
                                    margin * bp->optimum);
            if (afc->optimum + slack < bp->optimum) {
                ++violations;
                std::fprintf(stderr,
                             "FAIL: %s: AFC saturates at %.4f, more "
                             "than %.4f below BP's %.4f\n",
                             pattern.c_str(), afc->optimum, slack,
                             bp->optimum);
            }
        }

        JsonValue doc =
            search::searchResultsToJson(spec, results);
        doc.set("pattern", pattern);
        artifacts.push(std::move(doc));
    }
    profile.end(cycles, events);
    profile.finish();

    std::string json = opt.get("json", "saturation.json");
    if (json != "none") {
        JsonValue doc = JsonValue::object();
        doc.set("bench", "saturation");
        doc.set("sweeps", std::move(artifacts));
        exp::writeFile(json, doc.dump(2) + "\n");
        std::fprintf(stderr, "[saturation] wrote %s\n", json.c_str());
    }

    if (violations) {
        std::fprintf(stderr, "%d violation(s)\n", violations);
        return 1;
    }
    std::printf("\nAFC saturation within %g of BP under every "
                "pattern (tolerance %g)\n",
                margin, base.search.rateTolerance);
    return 0;
}
