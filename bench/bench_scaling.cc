/**
 * @file
 * Extension: mesh-size scaling study. The paper's conclusion argues
 * that "as the number of cores continues to scale, and as the mix
 * of applications grows more diverse, AFC's performance and energy
 * robustness will be increasingly important", and Sec. IV notes
 * their 3x3 scaling is *conservative* for the backpressureless
 * comparison (deflection saturates earlier on larger networks).
 * This bench runs one low-load and one high-load workload on 3x3,
 * 4x4 and 5x5 CMPs and reports how far AFC sits from the better of
 * the two static mechanisms at each size.
 *
 * Options: scale=<f> seed=<n>
 */

#include <algorithm>
#include <cstdio>

#include "benchutil.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double scale = opt.getDouble("scale", 0.5);
    std::uint64_t seed = opt.getInt("seed", 7);

    printHeader("Scaling study: 3x3 / 4x4 / 5x5 CMPs",
                "deflection's disadvantage grows with network size "
                "(the paper's 3x3 scaling is conservative); AFC "
                "tracks the better static mechanism at every size");
    std::printf("%-6s%-9s%11s%11s%11s%13s%13s%14s\n", "mesh",
                "workload", "BPL-perf", "AFC-perf", "BPL-energy",
                "AFC-energy", "AFC-vs-best", "BPL-defl/flit");

    for (int mesh : {3, 4, 5}) {
        for (const auto &base_w :
             {waterWorkload(), apacheWorkload()}) {
            WorkloadProfile w = base_w;
            // Hold per-node transaction pressure constant across
            // sizes so the per-node injection rate is comparable.
            double node_scale =
                scale * (mesh * mesh) / 9.0;
            w.measureTransactions = static_cast<std::uint64_t>(
                w.measureTransactions * node_scale);
            w.warmupTransactions = static_cast<std::uint64_t>(
                w.warmupTransactions * node_scale);
            NetworkConfig cfg;
            cfg.width = mesh;
            cfg.height = mesh;
            cfg.seed = seed;

            ClosedLoopResult bp =
                runClosedLoop(cfg, FlowControl::Backpressured, w);
            ClosedLoopResult bpl =
                runClosedLoop(cfg, FlowControl::Backpressureless, w);
            ClosedLoopResult afc =
                runClosedLoop(cfg, FlowControl::Afc, w);

            double bpl_perf =
                static_cast<double>(bp.runtime) / bpl.runtime;
            double afc_perf =
                static_cast<double>(bp.runtime) / afc.runtime;
            double bpl_energy =
                bpl.energy.total() / bp.energy.total();
            double afc_energy =
                afc.energy.total() / bp.energy.total();
            // "Best of both worlds" distance: AFC energy vs the
            // cheaper of BP (1.0) and BPL, at matched performance.
            double best_energy = std::min(1.0, bpl_energy);
            double afc_vs_best = afc_energy / best_energy;
            std::printf("%-6d%-9s%11.3f%11.3f%11.3f%13.3f%13.3f"
                        "%14.3f\n",
                        mesh, w.name.c_str(), bpl_perf, afc_perf,
                        bpl_energy, afc_energy, afc_vs_best,
                        bpl.avgDeflections);
        }
    }
    std::printf("\nExpected trends: BPL-perf falls with mesh size on "
                "the high-load workload (more hops, more misroutes); "
                "AFC stays within a few %% of the better mechanism "
                "everywhere.\n");
    return 0;
}
