/**
 * @file
 * Extension: mesh-size scaling study. The paper's conclusion argues
 * that "as the number of cores continues to scale, and as the mix
 * of applications grows more diverse, AFC's performance and energy
 * robustness will be increasingly important", and Sec. IV notes
 * their 3x3 scaling is *conservative* for the backpressureless
 * comparison (deflection saturates earlier on larger networks).
 * This bench runs one low-load and one high-load workload on 3x3,
 * 4x4 and 5x5 CMPs and reports how far AFC sits from the better of
 * the two static mechanisms at each size.
 *
 * The mesh x workload x config grid is an ExperimentSpec executed
 * through the parallel runner; the table and the JSON artifact
 * render from the same structured results.
 *
 * Options: scale=<f> seed=<n> threads=<n> json=<path|none>
 */

#include <algorithm>
#include <cstdio>

#include "benchutil.hh"
#include "exp/experiments.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);

    exp::ExperimentSpec spec = exp::scalingExperiment();
    spec.scale = opt.getDouble("scale", 0.5);
    spec.baseSeed = static_cast<std::uint64_t>(opt.getInt("seed", 7));

    std::vector<exp::RunResult> results = runSpecForBench(spec, opt);
    auto rows = exp::aggregate(results);

    printHeader("Scaling study: 3x3 / 4x4 / 5x5 CMPs",
                "deflection's disadvantage grows with network size "
                "(the paper's 3x3 scaling is conservative); AFC "
                "tracks the better static mechanism at every size");
    std::printf("%-6s%-9s%11s%11s%11s%13s%13s%14s\n", "mesh",
                "workload", "BPL-perf", "AFC-perf", "BPL-energy",
                "AFC-energy", "AFC-vs-best", "BPL-defl/flit");

    for (int mesh : spec.meshSizes) {
        for (const auto &w : spec.workloads) {
            const auto &bpl =
                aggRow(rows, w, FlowControl::Backpressureless, mesh);
            const auto &afc = aggRow(rows, w, FlowControl::Afc, mesh);

            double bpl_perf = bpl.perfRel.mean();
            double afc_perf = afc.perfRel.mean();
            double bpl_energy = bpl.energyRel.mean();
            double afc_energy = afc.energyRel.mean();
            // "Best of both worlds" distance: AFC energy vs the
            // cheaper of BP (1.0) and BPL, at matched performance.
            double best_energy = std::min(1.0, bpl_energy);
            double afc_vs_best = afc_energy / best_energy;

            // BPL deflections/flit come from the raw run of this
            // (mesh, workload) cell.
            double bpl_defl = 0.0;
            for (const auto &r : results) {
                if (r.point.mesh == mesh && r.point.group == w &&
                    r.point.fc == FlowControl::Backpressureless)
                    bpl_defl = r.avgDeflections;
            }

            std::printf("%-6d%-9s%11.3f%11.3f%11.3f%13.3f%13.3f"
                        "%14.3f\n",
                        mesh, w.c_str(), bpl_perf, afc_perf,
                        bpl_energy, afc_energy, afc_vs_best,
                        bpl_defl);
        }
    }
    std::printf("\nExpected trends: BPL-perf falls with mesh size on "
                "the high-load workload (more hops, more misroutes); "
                "AFC stays within a few %% of the better mechanism "
                "everywhere.\n");
    return 0;
}
