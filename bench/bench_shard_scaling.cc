/**
 * @file
 * Extension: sharded cycle-kernel scaling study. The mesh is
 * partitioned into `sim.shards` contiguous node ranges stepped by one
 * worker thread each (docs/ARCHITECTURE.md); every export is
 * byte-identical for any shard count, so the only question a shard
 * sweep can answer is wall-clock throughput. This bench measures
 * cycles/sec of the closed-loop memory system (ocean) on 16x16,
 * 32x32 and 64x64 meshes at 1, 2 and 4 shards and reports the
 * speedup over the single-shard run of the same mesh.
 *
 * Expected shape: speedup grows with mesh size — per-cycle work
 * scales with router count while the per-phase barrier cost is
 * constant, so the 16x16 mesh amortizes the hand-off worst and the
 * 64x64 mesh best. On hosts with fewer cores than shards the pool
 * still runs (correctness never depends on placement) but the
 * speedup degrades toward or below 1x; the host's hardware thread
 * count is printed so such numbers read as what they are.
 *
 * Options: mesh=16,32,64 shards=1,2,4 cl_div=<n> reps=<n>
 *          json=<path|none>
 */

#include <ctime>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "exp/result.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;

namespace
{

double
wallSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           1e-9 * static_cast<double>(ts.tv_nsec);
}

std::vector<int>
intList(const Options &opt, const std::string &key,
        const std::string &fallback)
{
    std::vector<int> out;
    std::string v = opt.get(key, fallback);
    std::size_t pos = 0;
    while (pos < v.size()) {
        std::size_t comma = v.find(',', pos);
        if (comma == std::string::npos)
            comma = v.size();
        out.push_back(std::stoi(v.substr(pos, comma - pos)));
        pos = comma + 1;
    }
    return out;
}

/** One wall-clock-timed closed-loop run; returns cycles/sec. */
double
measureCps(int mesh, int shards, long cl_div)
{
    NetworkConfig cfg;
    cfg.width = mesh;
    cfg.height = mesh;
    cfg.seed = 7;
    cfg.shards = shards;
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= cl_div;
    w.measureTransactions /= cl_div;
    ClosedLoopSystem sys(cfg, FlowControl::Afc, w);
    double t0 = wallSeconds();
    sys.run();
    double sec = wallSeconds() - t0;
    double cycles = static_cast<double>(sys.network().now());
    return sec > 0.0 ? cycles / sec : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    std::vector<int> meshes = intList(opt, "mesh", "16,32,64");
    std::vector<int> shardCounts = intList(opt, "shards", "1,2,4");
    long cl_div = opt.getInt("cl_div", 4);
    int reps = static_cast<int>(opt.getInt("reps", 2));
    std::string json = opt.get("json", "none");

    std::printf("Sharded cycle-kernel scaling (closed-loop ocean/%ld, "
                "best of %d, %u hw threads)\n\n",
                cl_div, reps, std::thread::hardware_concurrency());
    std::printf("%-8s%-8s%16s%12s\n", "mesh", "shards", "cycles/sec",
                "speedup");

    JsonValue rows = JsonValue::array();
    for (int mesh : meshes) {
        double base = 0.0;
        for (int shards : shardCounts) {
            double cps = 0.0;
            for (int r = 0; r < reps; ++r)
                cps = std::max(cps, measureCps(mesh, shards, cl_div));
            if (shards == shardCounts.front())
                base = cps;
            double speedup = base > 0.0 ? cps / base : 0.0;
            std::printf("%-8d%-8d%16.0f%11.2fx\n", mesh, shards, cps,
                        speedup);
            JsonValue row = JsonValue::object();
            row.set("mesh", static_cast<std::int64_t>(mesh));
            row.set("shards", static_cast<std::int64_t>(shards));
            row.set("wall_cycles_per_sec", cps);
            row.set("speedup", speedup);
            rows.push(std::move(row));
        }
    }
    std::printf("\nExpected trends: speedup rises with mesh size (the "
                "per-phase barrier is constant while per-cycle work "
                "grows with router count); a host with fewer hardware "
                "threads than shards reports <= 1x.\n");

    if (json != "none") {
        JsonValue doc = JsonValue::object();
        doc.set("bench", JsonValue(std::string("bench_shard_scaling")));
        doc.set("cl_div", static_cast<std::int64_t>(cl_div));
        doc.set("reps", static_cast<std::int64_t>(reps));
        doc.set("hw_threads",
                static_cast<std::int64_t>(
                    std::thread::hardware_concurrency()));
        doc.set("rows", std::move(rows));
        exp::writeFile(json, doc.dump(2) + "\n");
        std::fprintf(stderr, "wrote %s\n", json.c_str());
    }
    return 0;
}
