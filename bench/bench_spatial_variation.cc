/**
 * @file
 * Reproduces the Sec. V-B open-loop spatial-variation experiment: an
 * 8x8 mesh mimicking a consolidation workload — one quadrant injects
 * at 0.9 flits/node/cycle, the other three at 0.1, destinations stay
 * within the quadrant. Paper results: AFC is the best energy
 * configuration (backpressured +9 %, backpressureless +30 %); BP and
 * AFC achieve ~33 % lower latency than BPL in the hot quadrant; the
 * hot quadrant's misrouting pollutes a neighboring cool quadrant
 * under backpressureless routing.
 *
 * Options: hot=<f> cool=<f> warmup=<n> measure=<n> seed=<n>
 *          obs=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "traffic/openloop.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    NetworkConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.seed = opt.getInt("seed", 7);
    OpenLoopConfig ol;
    ol.warmupCycles = opt.getInt("warmup", 5000);
    ol.measureCycles = opt.getInt("measure", 15000);
    double hot = opt.getDouble("hot", 0.9);
    double cool = opt.getDouble("cool", 0.1);
    BenchProfile profile("spatial_variation", opt);

    printHeader("Sec. V-B: spatial variation (8x8, hot NW quadrant "
                "at 0.9, others at 0.1, intra-quadrant traffic)",
                "AFC best energy (BP +9%, BPL +30%); BP/AFC ~33% "
                "lower hot-quadrant latency than BPL");

    std::vector<FlowControl> configs = {FlowControl::Backpressured,
                                        FlowControl::Backpressureless,
                                        FlowControl::Afc};
    double afc_energy = 0.0;
    std::printf("%-10s%14s%12s%12s%12s%12s%10s\n", "config",
                "energy(uJ)", "hotQ-lat", "coolQ-lat", "defl/flit",
                "accepted", "AFC-bp%");
    struct Row
    {
        FlowControl fc;
        QuadrantResult qr;
    };
    std::vector<Row> rows;
    for (FlowControl fc : configs) {
        profile.begin(shortName(fc));
        QuadrantResult qr =
            runQuadrantExperiment(cfg, fc, ol, hot, cool);
        profile.end(ol.warmupCycles + ol.measureCycles,
                    qr.overall.stats);
        if (fc == FlowControl::Afc)
            afc_energy = qr.overall.energy.total();
        rows.push_back({fc, qr});
    }
    for (const auto &row : rows) {
        const OpenLoopResult &r = row.qr.overall;
        // Cool-quadrant latency: average of quadrants 1..3.
        double cool_lat = (row.qr.quadrantPacketLatency[1] +
                           row.qr.quadrantPacketLatency[2] +
                           row.qr.quadrantPacketLatency[3]) / 3.0;
        std::printf("%-10s%14.2f%12.1f%12.1f%12.3f%12.3f%9.1f%%\n",
                    shortName(row.fc).c_str(),
                    r.energy.total() / 1e6,
                    row.qr.quadrantPacketLatency[0], cool_lat,
                    r.avgDeflections, r.acceptedRate,
                    100.0 * r.bpFraction);
    }

    std::printf("\nCongestion heatmaps (per-node link utilization, "
                "flits/cycle; NW quadrant is hot — watch BPL's "
                "misrouting bleed across the quadrant boundary):\n");
    for (const auto &row : rows) {
        std::printf("\n%s:\n", shortName(row.fc).c_str());
        for (int y = 0; y < cfg.height; ++y) {
            std::printf("  ");
            for (int x = 0; x < cfg.width; ++x) {
                std::printf("%5.2f",
                            row.qr.nodeUtilization[y * cfg.width + x]);
            }
            std::printf("\n");
        }
    }

    std::printf("\nEnergy relative to AFC:\n");
    for (const auto &row : rows) {
        std::printf("  %-10s %.3f\n", shortName(row.fc).c_str(),
                    row.qr.overall.energy.total() / afc_energy);
    }
    std::printf("paper: BP 1.09, BPL 1.30, AFC 1.00\n");
    profile.finish();
    return 0;
}
