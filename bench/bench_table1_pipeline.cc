/**
 * @file
 * Reproduces Table I (router pipeline stages) operationally: at zero
 * load, measures the per-hop latency of each mechanism and checks it
 * against the 2-stage router + L-cycle link model the paper assumes:
 *
 *   backpressured / AFC-backpressured: SA | ST+LT  -> hop = L + 1,
 *     plus 1 cycle of injection buffering and 1 cycle of ejection;
 *   backpressureless / AFC-backpressureless: R+SA | LT+latch ->
 *     same hop cost but no injection buffering.
 *
 * Options: obs=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "network/network.hh"

using namespace afcsim;
using namespace afcsim::bench;

namespace
{

double
zeroLoadLatency(FlowControl fc, int hops, int link_latency,
                std::uint64_t &cycles, std::uint64_t &events)
{
    NetworkConfig cfg;
    cfg.linkLatency = link_latency;
    Network net(cfg, fc);
    // Pick a src/dest pair at the requested hop distance on 3x3.
    NodeId src = 0;
    NodeId dest = hops <= 2 ? hops : (hops - 2) * 3 + 2;
    net.nic(src).sendPacket(dest, 0, 1, net.now());
    double latency = -1.0;
    for (int i = 0; i < 1000; ++i) {
        net.step();
        if (net.aggregateStats().packetsDelivered > 0) {
            latency = net.aggregateStats().packetLatency.mean();
            break;
        }
    }
    NetStats s = net.aggregateStats();
    cycles += net.now();
    events += s.flitsInjected + s.flitsDelivered;
    return latency;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    BenchProfile profile("table1_pipeline", opt);
    printHeader("Table I: router pipelines, measured as zero-load "
                "latency",
                "BP & AFC-bp: 2-stage + 0-cycle VCA (lazy VCA for "
                "AFC); BPL & AFC-bpl: single R+SA stage");

    std::printf("%-10s%8s%8s%12s%12s%12s%12s\n", "L", "hops",
                "minimal", "BP", "BPL", "AFC", "AFC-aBP");
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    profile.begin("zero_load");
    for (int L : {1, 2, 3}) {
        for (int hops : {1, 2, 4}) {
            double bp = zeroLoadLatency(FlowControl::Backpressured,
                                        hops, L, cycles, events);
            double bpl = zeroLoadLatency(
                FlowControl::Backpressureless, hops, L, cycles,
                events);
            double afc = zeroLoadLatency(FlowControl::Afc, hops, L,
                                         cycles, events);
            double afcbp =
                zeroLoadLatency(FlowControl::AfcAlwaysBackpressured,
                                hops, L, cycles, events);
            std::printf("%-10d%8d%8d%12.0f%12.0f%12.0f%12.0f\n", L,
                        hops, hops * (L + 1), bp, bpl, afc, afcbp);
            // Model check: BP = h(L+1)+2, BPL = h(L+1)+1.
            bool ok = bp == hops * (L + 1) + 2 &&
                      bpl == hops * (L + 1) + 1 && afc == bpl &&
                      afcbp == bp;
            if (!ok) {
                std::printf("  MISMATCH vs pipeline model!\n");
                return 1;
            }
        }
    }
    profile.end(cycles, events);
    std::printf("\nAll latencies match the Table I pipeline model "
                "(AFC backpressureless-mode == BPL; AFC "
                "backpressured-mode == BP thanks to lazy VCA "
                "absorbing the VCA stage).\n");
    profile.finish();
    return 0;
}
