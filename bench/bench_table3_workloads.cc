/**
 * @file
 * Reproduces Table III (workload injection rates) and reports the
 * Table IV-style run lengths: for each workload, the injection rate
 * measured on the backpressured baseline vs. the paper's value,
 * plus transaction counts and mean transaction latency.
 *
 * Options: scale=<f> seed=<n> obs=<path|none>
 */

#include <cstdio>

#include "benchutil.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;
using namespace afcsim::bench;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double scale = opt.getDouble("scale", 1.0);
    std::uint64_t seed = opt.getInt("seed", 7);
    BenchProfile profile("table3_workloads", opt);

    printHeader("Table III: workload injection rates "
                "(flits/node/cycle, backpressured baseline)",
                "apache 0.78, oltp 0.68, specjbb 0.77, barnes 0.10, "
                "ocean 0.19, water 0.09");
    std::printf("%-10s%12s%12s%10s%14s%14s%12s\n", "workload",
                "measured", "paper", "err%", "transactions",
                "runtime(cyc)", "txlat(cyc)");

    for (const auto &base_w : allWorkloads()) {
        WorkloadProfile w = base_w;
        w.measureTransactions = static_cast<std::uint64_t>(
            w.measureTransactions * scale);
        w.warmupTransactions = static_cast<std::uint64_t>(
            w.warmupTransactions * scale);
        NetworkConfig cfg;
        cfg.seed = seed;
        profile.begin(w.name);
        ClosedLoopResult r =
            runClosedLoop(cfg, FlowControl::Backpressured, w);
        profile.end(r.runtime, r.net);
        double err =
            100.0 * (r.injectionRate - w.paperInjRate) / w.paperInjRate;
        std::printf("%-10s%12.3f%12.2f%9.1f%%%14llu%14llu%12.1f\n",
                    w.name.c_str(), r.injectionRate, w.paperInjRate,
                    err,
                    static_cast<unsigned long long>(r.transactions),
                    static_cast<unsigned long long>(r.runtime),
                    r.avgTxLatency);
    }

    std::printf("\nTable II configuration: 3x3 mesh, 2-cycle links, "
                "flits 32-bit data; baseline VCs 2+2+4 x 8-flit "
                "(64 flits/port); AFC lazy VCA 8+8+16 x 1-flit "
                "(32 flits/port); 16 MSHRs/core, L2 12 cycles, "
                "memory 250 cycles\n");
    profile.finish();
    return 0;
}
