/**
 * @file
 * Self-tuning threshold ablation (DESIGN.md S22): static AFC vs the
 * afc_adaptive gradient-controller variant across traffic the static
 * per-position tuning was derived for (stationary uniform/transpose)
 * and traffic it never saw (drifting hotspot, quadrant consolidation,
 * a corruption fault storm). The paper tunes its mode-switch
 * thresholds offline against stationary uniform load; this bench asks
 * whether closing the loop at runtime keeps that performance where
 * the tuning holds and recovers performance where it does not.
 *
 * Three built-in checks make this bench a verifier (nonzero exit on
 * violation):
 *  - on the stationary patterns, adaptive latency must stay within
 *    `tol` (relative) of static AFC — self-tuning must not regress
 *    the tuned operating point;
 *  - on at least one of the non-stationary scenarios (drift,
 *    consolidation, fault storm) adaptive must strictly beat static
 *    average packet latency;
 *  - the controller must actually act: at least one threshold
 *    adjustment across the non-stationary scenarios (a bench run
 *    where the controller never fires proves nothing).
 *
 * Options: mesh=<n> warmup=<n> measure=<n> seed=<n> tol=<frac>
 *          probe_interval=<n> probe_window=<n> gain=<g>
 *          obs=<path|none>
 */

#include <cstdio>
#include <string>
#include <vector>

#include "benchutil.hh"
#include "network/network.hh"
#include "router/afc_adaptive.hh"
#include "traffic/openloop.hh"

using namespace afcsim;
using namespace afcsim::bench;

namespace
{

struct Scenario
{
    std::string name;
    std::string pattern;
    double rate;
    double faultRate;
    bool stationary; ///< static tuning's home turf (tolerance check)
};

struct Cell
{
    double avgPacketLatency = 0.0;
    double p95PacketLatency = 0.0;
    double energyPerFlit = 0.0;
    double bpFraction = 0.0;
    std::uint64_t adjustments = 0;
    bool saturated = false;
    std::uint64_t simCycles = 0;
    std::uint64_t flitEvents = 0;
};

struct AblationOptions
{
    int mesh = 6;
    Cycle warmup = 2000;
    Cycle measure = 10000;
    std::uint64_t seed = 1;
    double tol = 0.10;
    Cycle probeInterval = 512;
    Cycle probeWindow = 64;
    double gain = 0.8;
};

Cell
runCell(FlowControl fc, const Scenario &sc, const AblationOptions &o)
{
    NetworkConfig cfg;
    cfg.width = o.mesh;
    cfg.height = o.mesh;
    cfg.seed = o.seed;
    cfg.afc.adapt.probeInterval = o.probeInterval;
    cfg.afc.adapt.probeWindow = o.probeWindow;
    cfg.afc.adapt.gain = o.gain;
    if (sc.faultRate > 0.0) {
        cfg.faults.corruptRate = sc.faultRate;
        cfg.reliability.enabled = true;
        cfg.reliability.timeoutCycles = 256;
        cfg.reliability.maxRetries = 16;
    }

    OpenLoopConfig ol;
    ol.pattern = sc.pattern;
    ol.injectionRate = sc.rate;
    ol.warmupCycles = o.warmup;
    ol.measureCycles = o.measure;

    std::vector<double> rates(
        static_cast<std::size_t>(cfg.numNodes()), sc.rate);
    OpenLoopRun run(cfg, fc, ol, std::move(rates));
    OpenLoopResult r = run.finish();

    Cell cell;
    cell.avgPacketLatency = r.avgPacketLatency;
    cell.p95PacketLatency = r.p95PacketLatency;
    cell.energyPerFlit = r.energyPerFlit;
    cell.bpFraction = r.bpFraction;
    cell.saturated = r.saturated;
    cell.simCycles = run.network().now();
    cell.flitEvents = r.stats.flitsInjected + r.stats.flitsDelivered;
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        const auto *ad = dynamic_cast<const AfcAdaptiveRouter *>(
            &run.network().router(n));
        if (ad)
            cell.adjustments += ad->adjustments();
    }
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    AblationOptions o;
    o.mesh = static_cast<int>(opt.getInt("mesh", 6));
    o.warmup = static_cast<Cycle>(opt.getInt("warmup", 2000));
    o.measure = static_cast<Cycle>(opt.getInt("measure", 10000));
    o.seed = static_cast<std::uint64_t>(opt.getInt("seed", 1));
    o.tol = opt.getDouble("tol", 0.10);
    o.probeInterval =
        static_cast<Cycle>(opt.getInt("probe_interval", 512));
    o.probeWindow = static_cast<Cycle>(opt.getInt("probe_window", 64));
    o.gain = opt.getDouble("gain", 0.8);

    const std::vector<Scenario> scenarios = {
        {"uniform", "uniform", 0.15, 0.0, true},
        {"transpose", "transpose", 0.12, 0.0, true},
        {"hotspot_drift", "hotspot_drift", 0.12, 0.0, false},
        {"quadrant", "quadrant", 0.20, 0.0, false},
        {"fault_storm", "uniform", 0.12, 0.02, false},
    };

    BenchProfile profile("threshold_ablation", opt);
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;

    printHeader(
        "Threshold ablation: static AFC vs self-tuning afc_adaptive",
        "stationary patterns must hold the tuned operating point; "
        "non-stationary traffic is where self-tuning must pay off");
    std::printf("%-14s%12s%12s%12s%12s%10s%8s\n", "scenario",
                "AFC-lat", "AFC-ad-lat", "AFC-e/flit", "ad-e/flit",
                "delta%", "adj");

    int violations = 0;
    int wins = 0;
    std::uint64_t controllerActs = 0;
    profile.begin("ablation");
    for (const Scenario &sc : scenarios) {
        Cell st = runCell(FlowControl::Afc, sc, o);
        Cell ad = runCell(FlowControl::AfcAdaptive, sc, o);
        cycles += st.simCycles + ad.simCycles;
        events += st.flitEvents + ad.flitEvents;
        double delta = st.avgPacketLatency > 0.0
            ? (ad.avgPacketLatency - st.avgPacketLatency) /
                st.avgPacketLatency * 100.0
            : 0.0;
        std::printf("%-14s%12.2f%12.2f%12.2f%12.2f%+9.2f%%%8llu\n",
                    sc.name.c_str(), st.avgPacketLatency,
                    ad.avgPacketLatency, st.energyPerFlit,
                    ad.energyPerFlit, delta,
                    static_cast<unsigned long long>(ad.adjustments));
        if (st.adjustments != 0) {
            ++violations;
            std::fprintf(stderr,
                         "FAIL: static AFC reported %llu threshold "
                         "adjustments in %s (must be zero)\n",
                         static_cast<unsigned long long>(
                             st.adjustments),
                         sc.name.c_str());
        }
        if (sc.stationary) {
            if (ad.avgPacketLatency >
                st.avgPacketLatency * (1.0 + o.tol)) {
                ++violations;
                std::fprintf(stderr,
                             "FAIL: %s: adaptive latency %.2f exceeds "
                             "static %.2f by more than %.0f%%\n",
                             sc.name.c_str(), ad.avgPacketLatency,
                             st.avgPacketLatency, o.tol * 100.0);
            }
        } else {
            controllerActs += ad.adjustments;
            if (ad.avgPacketLatency < st.avgPacketLatency)
                ++wins;
        }
    }
    profile.end(cycles, events);
    profile.finish();

    if (wins < 1) {
        ++violations;
        std::fprintf(stderr,
                     "FAIL: adaptive beat static on none of the "
                     "non-stationary scenarios\n");
    }
    if (controllerActs == 0) {
        ++violations;
        std::fprintf(stderr,
                     "FAIL: the gradient controller never adjusted a "
                     "threshold in any non-stationary scenario\n");
    }

    if (violations) {
        std::fprintf(stderr, "%d violation(s)\n", violations);
        return 1;
    }
    std::printf("\nstationary within %.0f%%; adaptive won %d/3 "
                "non-stationary scenarios\n",
                o.tol * 100.0, wins);
    return 0;
}
