/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: the
 * comparison config lists and fixed-width table printing.
 */

#ifndef AFCSIM_BENCH_BENCHUTIL_HH
#define AFCSIM_BENCH_BENCHUTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"

namespace afcsim::bench
{

/** The four bars of Fig. 2(a)/(c)/(d). */
inline std::vector<FlowControl>
mainConfigs()
{
    return {FlowControl::Backpressured, FlowControl::Backpressureless,
            FlowControl::AfcAlwaysBackpressured, FlowControl::Afc};
}

/** Fig. 2(b) adds the ideal-bypass energy lower bound. */
inline std::vector<FlowControl>
energyLowLoadConfigs()
{
    return {FlowControl::Backpressured, FlowControl::Backpressureless,
            FlowControl::AfcAlwaysBackpressured, FlowControl::Afc,
            FlowControl::BackpressuredIdealBypass};
}

inline void
printHeader(const std::string &title, const std::string &paper_note)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!paper_note.empty())
        std::printf("paper: %s\n", paper_note.c_str());
}

inline void
printRow(const std::string &label, const std::vector<double> &cells,
         int width = 12, int precision = 3)
{
    std::printf("%-14s", label.c_str());
    for (double c : cells)
        std::printf("%*.*f", width, precision, c);
    std::printf("\n");
}

inline void
printColumns(const std::vector<std::string> &names, int width = 12)
{
    std::printf("%-14s", "");
    for (const auto &n : names)
        std::printf("%*s", width, n.c_str());
    std::printf("\n");
}

/**
 * Run one workload across a list of flow controls, `repeats` times
 * with distinct seeds (the paper repeats all simulations and shows
 * variance bars), and collect relative performance and energy
 * against the backpressured baseline of the same seed.
 */
struct RelativeResults
{
    std::vector<RunningStat> perf;   ///< one per config
    std::vector<RunningStat> energy; ///< one per config
};

template <typename RunFn>
RelativeResults
runRelative(const std::vector<FlowControl> &configs, int repeats,
            std::uint64_t base_seed, RunFn &&run)
{
    RelativeResults out;
    out.perf.resize(configs.size());
    out.energy.resize(configs.size());
    for (int rep = 0; rep < repeats; ++rep) {
        std::uint64_t seed = base_seed + 1000ull * rep;
        auto [base_runtime, base_energy] =
            run(FlowControl::Backpressured, seed);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            auto [runtime, energy] =
                configs[i] == FlowControl::Backpressured
                    ? std::pair<double, double>{base_runtime,
                                                base_energy}
                    : run(configs[i], seed);
            out.perf[i].add(base_runtime / runtime);
            out.energy[i].add(energy / base_energy);
        }
    }
    return out;
}

/** Print "mean (+/- std)" rows for a RelativeResults table. */
inline void
printStatRow(const std::string &label,
             const std::vector<RunningStat> &stats)
{
    std::printf("%-14s", label.c_str());
    for (const auto &s : stats) {
        if (s.count() > 1)
            std::printf("%8.3f+-%.3f", s.mean(), s.stddev());
        else
            std::printf("%12.3f", s.mean());
    }
    std::printf("\n");
}

/** Short column label for a flow-control mechanism. */
inline std::string
shortName(FlowControl fc)
{
    switch (fc) {
      case FlowControl::Backpressured: return "BP";
      case FlowControl::Backpressureless: return "BPL";
      case FlowControl::Afc: return "AFC";
      case FlowControl::AfcAlwaysBackpressured: return "AFC-aBP";
      case FlowControl::BackpressuredIdealBypass: return "BP-ideal";
      case FlowControl::BackpressurelessDrop: return "BPL-drop";
    }
    return "?";
}

} // namespace afcsim::bench

#endif // AFCSIM_BENCH_BENCHUTIL_HH
