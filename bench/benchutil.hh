/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: the
 * comparison config lists and fixed-width table printing.
 */

#ifndef AFCSIM_BENCH_BENCHUTIL_HH
#define AFCSIM_BENCH_BENCHUTIL_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "exp/result.hh"
#include "exp/runner.hh"
#include "obs/profile.hh"

namespace afcsim::bench
{

/**
 * Per-bench throughput profile writer (ISSUE: every bench emits a
 * `<bench>_obs.json` with wall-clock cycles/sec and flit-events/sec
 * per phase). Flit events are counted from the end-to-end stats
 * (injected + delivered), so the profile exists even when the event
 * tracer is off. The `obs=` option overrides the output path;
 * `obs=none` disables the file.
 */
class BenchProfile
{
  public:
    BenchProfile(const std::string &bench, const Options &opt)
        : prof_(bench), path_(opt.get("obs", bench + "_obs.json"))
    {
    }

    void begin(const std::string &label) { prof_.begin(label); }

    void
    end(std::uint64_t sim_cycles, std::uint64_t flit_events)
    {
        prof_.end(sim_cycles, flit_events);
    }

    /** Convenience: close a phase from a run's network stats. */
    void
    end(std::uint64_t sim_cycles, const NetStats &net)
    {
        prof_.end(sim_cycles, net.flitsInjected + net.flitsDelivered);
    }

    /** Write the profile (call once, at the end of main). */
    void
    finish()
    {
        if (path_ != "none") {
            std::string out = prof_.write(path_);
            std::fprintf(stderr, "[obs] wrote %s\n", out.c_str());
        }
    }

    obs::ThroughputProfiler &profiler() { return prof_; }

  private:
    obs::ThroughputProfiler prof_;
    std::string path_;
};

/** The four bars of Fig. 2(a)/(c)/(d). */
inline std::vector<FlowControl>
mainConfigs()
{
    return {FlowControl::Backpressured, FlowControl::Backpressureless,
            FlowControl::AfcAlwaysBackpressured, FlowControl::Afc};
}

/** Fig. 2(b) adds the ideal-bypass energy lower bound. */
inline std::vector<FlowControl>
energyLowLoadConfigs()
{
    return {FlowControl::Backpressured, FlowControl::Backpressureless,
            FlowControl::AfcAlwaysBackpressured, FlowControl::Afc,
            FlowControl::BackpressuredIdealBypass};
}

inline void
printHeader(const std::string &title, const std::string &paper_note)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!paper_note.empty())
        std::printf("paper: %s\n", paper_note.c_str());
}

/*
 * The streaming row printers below are thin shims over TextTable so
 * every bench renders from structured cells (the same rows the
 * experiment result sinks serialize) instead of ad-hoc printf loops.
 */

inline void
printRow(const std::string &label, const std::vector<double> &cells,
         int width = 12, int precision = 3)
{
    TextTable t(14, width);
    std::vector<std::string> formatted;
    for (double c : cells)
        formatted.push_back(TextTable::num(c, precision));
    std::fputs(t.formatRow(label, formatted).c_str(), stdout);
}

inline void
printColumns(const std::vector<std::string> &names, int width = 12)
{
    TextTable t(14, width);
    std::fputs(t.formatRow("", names).c_str(), stdout);
}

/**
 * Run one workload across a list of flow controls, `repeats` times
 * with distinct seeds (the paper repeats all simulations and shows
 * variance bars), and collect relative performance and energy
 * against the backpressured baseline of the same seed.
 */
struct RelativeResults
{
    std::vector<RunningStat> perf;   ///< one per config
    std::vector<RunningStat> energy; ///< one per config
};

template <typename RunFn>
RelativeResults
runRelative(const std::vector<FlowControl> &configs, int repeats,
            std::uint64_t base_seed, RunFn &&run)
{
    RelativeResults out;
    out.perf.resize(configs.size());
    out.energy.resize(configs.size());
    for (int rep = 0; rep < repeats; ++rep) {
        std::uint64_t seed = base_seed + 1000ull * rep;
        auto [base_runtime, base_energy] =
            run(FlowControl::Backpressured, seed);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            auto [runtime, energy] =
                configs[i] == FlowControl::Backpressured
                    ? std::pair<double, double>{base_runtime,
                                                base_energy}
                    : run(configs[i], seed);
            out.perf[i].add(base_runtime / runtime);
            out.energy[i].add(energy / base_energy);
        }
    }
    return out;
}

/** Print "mean (+/- std)" rows for a RelativeResults table. */
inline void
printStatRow(const std::string &label,
             const std::vector<RunningStat> &stats, int width = 14)
{
    TextTable t(14, width);
    std::vector<std::string> cells;
    for (const auto &s : stats)
        cells.push_back(TextTable::meanStd(s));
    std::fputs(t.formatRow(label, cells).c_str(), stdout);
}

/** Short column label for a flow-control mechanism. */
inline std::string
shortName(FlowControl fc)
{
    switch (fc) {
      case FlowControl::Backpressured: return "BP";
      case FlowControl::Backpressureless: return "BPL";
      case FlowControl::Afc: return "AFC";
      case FlowControl::AfcAlwaysBackpressured: return "AFC-aBP";
      case FlowControl::BackpressuredIdealBypass: return "BP-ideal";
      case FlowControl::BackpressurelessDrop: return "BPL-drop";
      case FlowControl::AfcAdaptive: return "AFC-ad";
    }
    return "?";
}

/**
 * Execute an experiment spec through the ParallelRunner with the
 * bench-standard knobs: `threads=<n>` (0 = all cores, the default)
 * and `progress=1` for per-run stderr telemetry. Also writes the
 * structured JSON artifact (same rows the text tables render from)
 * to `json=<path>` (default `<spec name>.json`; `json=none` skips).
 */
inline std::vector<exp::RunResult>
runSpecForBench(const exp::ExperimentSpec &spec, const Options &opt)
{
    int threads = static_cast<int>(opt.getInt("threads", 0));
    exp::ParallelRunner runner(threads);
    auto progress = opt.getInt("progress", 0)
        ? exp::stderrProgress()
        : exp::ParallelRunner::ProgressFn{};
    auto outcome = runner.runSpec(spec, progress);
    std::fprintf(stderr,
                 "[%s] %zu runs on %d thread(s): %.0f ms wall, "
                 "%.2f Msim-cycles/s\n",
                 spec.name.c_str(), outcome.results.size(),
                 runner.threads(), outcome.wallMs,
                 outcome.cyclesPerSec() / 1e6);
    std::string json = opt.get("json", spec.name + ".json");
    if (json != "none") {
        exp::writeFile(json,
                       exp::resultsToJson(spec, outcome.results).dump(2)
                           + "\n");
        std::fprintf(stderr, "[%s] wrote %s\n", spec.name.c_str(),
                     json.c_str());
    }
    std::string obs_path = opt.get("obs", spec.name + "_obs.json");
    if (obs_path != "none") {
        obs::ThroughputProfiler prof(spec.name);
        std::uint64_t flit_events = 0;
        for (const auto &r : outcome.results)
            flit_events += r.net.flitsInjected + r.net.flitsDelivered;
        prof.add("grid", outcome.wallMs,
                 static_cast<std::uint64_t>(outcome.totalSimCycles),
                 flit_events);
        prof.write(obs_path);
        std::fprintf(stderr, "[%s] wrote %s\n", spec.name.c_str(),
                     obs_path.c_str());
    }
    return std::move(outcome.results);
}

/**
 * Find the aggregate row of a (mesh, group, flow-control) cell;
 * fatal if the grid did not contain it.
 */
inline const exp::AggregateRow &
aggRow(const std::vector<exp::AggregateRow> &rows,
       const std::string &group, FlowControl fc, int mesh = 0)
{
    for (const auto &r : rows) {
        if (r.group == group && r.fc == fc && (mesh == 0 || r.mesh == mesh))
            return r;
    }
    AFCSIM_FATAL("no aggregate row for group '", group, "' / ",
                 toString(fc));
}

/**
 * Render the Fig. 2-style relative tables (performance and energy
 * vs. the backpressured baseline, mean +- stddev over repeats, plus
 * a geo-mean row) from aggregated structured results.
 */
inline void
printRelativeTables(const std::vector<exp::AggregateRow> &rows,
                    const std::vector<std::string> &groups,
                    const std::vector<FlowControl> &configs)
{
    std::vector<std::string> names;
    for (FlowControl fc : configs)
        names.push_back(shortName(fc));

    for (bool energy : {false, true}) {
        std::printf(energy ? "\nNetwork energy (relative):\n"
                           : "\nPerformance (relative):\n");
        printColumns(names, 14);
        std::vector<RunningStat> geo(configs.size());
        for (const auto &g : groups) {
            std::vector<RunningStat> cells;
            for (std::size_t i = 0; i < configs.size(); ++i) {
                const auto &row = aggRow(rows, g, configs[i]);
                const RunningStat &s =
                    energy ? row.energyRel : row.perfRel;
                cells.push_back(s);
                if (s.mean() > 0)
                    geo[i].add(std::log(s.mean()));
            }
            printStatRow(g, cells);
        }
        std::vector<double> gm;
        for (auto &s : geo)
            gm.push_back(std::exp(s.mean()));
        printRow("geo-mean", gm, 14);
    }
}

} // namespace afcsim::bench

#endif // AFCSIM_BENCH_BENCHUTIL_HH
