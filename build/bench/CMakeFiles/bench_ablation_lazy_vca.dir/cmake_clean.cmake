file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lazy_vca.dir/bench_ablation_lazy_vca.cc.o"
  "CMakeFiles/bench_ablation_lazy_vca.dir/bench_ablation_lazy_vca.cc.o.d"
  "bench_ablation_lazy_vca"
  "bench_ablation_lazy_vca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lazy_vca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
