# Empty dependencies file for bench_ablation_lazy_vca.
# This may be replaced when dependencies are built.
