file(REMOVE_RECURSE
  "CMakeFiles/bench_drop_variant.dir/bench_drop_variant.cc.o"
  "CMakeFiles/bench_drop_variant.dir/bench_drop_variant.cc.o.d"
  "bench_drop_variant"
  "bench_drop_variant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drop_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
