# Empty dependencies file for bench_drop_variant.
# This may be replaced when dependencies are built.
