# Empty compiler generated dependencies file for bench_fig2_high_load.
# This may be replaced when dependencies are built.
