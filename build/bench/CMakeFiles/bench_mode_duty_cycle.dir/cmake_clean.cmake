file(REMOVE_RECURSE
  "CMakeFiles/bench_mode_duty_cycle.dir/bench_mode_duty_cycle.cc.o"
  "CMakeFiles/bench_mode_duty_cycle.dir/bench_mode_duty_cycle.cc.o.d"
  "bench_mode_duty_cycle"
  "bench_mode_duty_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mode_duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
