# Empty compiler generated dependencies file for bench_mode_duty_cycle.
# This may be replaced when dependencies are built.
