file(REMOVE_RECURSE
  "CMakeFiles/bench_openloop_sweep.dir/bench_openloop_sweep.cc.o"
  "CMakeFiles/bench_openloop_sweep.dir/bench_openloop_sweep.cc.o.d"
  "bench_openloop_sweep"
  "bench_openloop_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_openloop_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
