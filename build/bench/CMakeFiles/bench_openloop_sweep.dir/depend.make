# Empty dependencies file for bench_openloop_sweep.
# This may be replaced when dependencies are built.
