file(REMOVE_RECURSE
  "CMakeFiles/bench_router_micro.dir/bench_router_micro.cc.o"
  "CMakeFiles/bench_router_micro.dir/bench_router_micro.cc.o.d"
  "bench_router_micro"
  "bench_router_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_router_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
