# Empty dependencies file for bench_router_micro.
# This may be replaced when dependencies are built.
