file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_variation.dir/bench_spatial_variation.cc.o"
  "CMakeFiles/bench_spatial_variation.dir/bench_spatial_variation.cc.o.d"
  "bench_spatial_variation"
  "bench_spatial_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
