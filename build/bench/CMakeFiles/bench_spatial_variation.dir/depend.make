# Empty dependencies file for bench_spatial_variation.
# This may be replaced when dependencies are built.
