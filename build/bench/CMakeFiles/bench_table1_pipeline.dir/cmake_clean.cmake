file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pipeline.dir/bench_table1_pipeline.cc.o"
  "CMakeFiles/bench_table1_pipeline.dir/bench_table1_pipeline.cc.o.d"
  "bench_table1_pipeline"
  "bench_table1_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
