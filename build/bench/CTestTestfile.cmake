# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/bench_table1_pipeline")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table3 "/root/repo/build/bench/bench_table3_workloads" "scale=0.05")
set_tests_properties(bench_smoke_table3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2_low "/root/repo/build/bench/bench_fig2_low_load" "scale=0.05")
set_tests_properties(bench_smoke_fig2_low PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2_high "/root/repo/build/bench/bench_fig2_high_load" "scale=0.05")
set_tests_properties(bench_smoke_fig2_high PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3 "/root/repo/build/bench/bench_fig3_breakdown" "scale=0.05")
set_tests_properties(bench_smoke_fig3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_duty "/root/repo/build/bench/bench_mode_duty_cycle" "scale=0.05")
set_tests_properties(bench_smoke_duty PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sweep "/root/repo/build/bench/bench_openloop_sweep" "step=0.3" "max=0.3" "warmup=500" "measure=1500")
set_tests_properties(bench_smoke_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_spatial "/root/repo/build/bench/bench_spatial_variation" "warmup=500" "measure=1500")
set_tests_properties(bench_smoke_spatial PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_lazy_vca "/root/repo/build/bench/bench_ablation_lazy_vca" "warmup=500" "measure=1500")
set_tests_properties(bench_smoke_lazy_vca PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_thresholds "/root/repo/build/bench/bench_ablation_thresholds" "measure=2000")
set_tests_properties(bench_smoke_thresholds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;42;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_drop "/root/repo/build/bench/bench_drop_variant" "step=0.3" "max=0.3" "warmup=500" "measure=1500")
set_tests_properties(bench_smoke_drop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_scaling "/root/repo/build/bench/bench_scaling" "scale=0.05")
set_tests_properties(bench_smoke_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;47;add_test;/root/repo/bench/CMakeLists.txt;0;")
