file(REMOVE_RECURSE
  "CMakeFiles/afc_modes.dir/afc_modes.cpp.o"
  "CMakeFiles/afc_modes.dir/afc_modes.cpp.o.d"
  "afc_modes"
  "afc_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afc_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
