# Empty compiler generated dependencies file for afc_modes.
# This may be replaced when dependencies are built.
