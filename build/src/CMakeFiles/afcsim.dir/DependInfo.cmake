
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/CMakeFiles/afcsim.dir/common/config.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/common/config.cc.o.d"
  "/root/repo/src/common/configfile.cc" "src/CMakeFiles/afcsim.dir/common/configfile.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/common/configfile.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/afcsim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/afcsim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/common/stats.cc.o.d"
  "/root/repo/src/energy/energy.cc" "src/CMakeFiles/afcsim.dir/energy/energy.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/energy/energy.cc.o.d"
  "/root/repo/src/network/flit.cc" "src/CMakeFiles/afcsim.dir/network/flit.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/network/flit.cc.o.d"
  "/root/repo/src/network/network.cc" "src/CMakeFiles/afcsim.dir/network/network.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/network/network.cc.o.d"
  "/root/repo/src/network/nic.cc" "src/CMakeFiles/afcsim.dir/network/nic.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/network/nic.cc.o.d"
  "/root/repo/src/network/trace.cc" "src/CMakeFiles/afcsim.dir/network/trace.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/network/trace.cc.o.d"
  "/root/repo/src/router/afc.cc" "src/CMakeFiles/afcsim.dir/router/afc.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/router/afc.cc.o.d"
  "/root/repo/src/router/backpressured.cc" "src/CMakeFiles/afcsim.dir/router/backpressured.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/router/backpressured.cc.o.d"
  "/root/repo/src/router/deflection.cc" "src/CMakeFiles/afcsim.dir/router/deflection.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/router/deflection.cc.o.d"
  "/root/repo/src/router/drop.cc" "src/CMakeFiles/afcsim.dir/router/drop.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/router/drop.cc.o.d"
  "/root/repo/src/router/router.cc" "src/CMakeFiles/afcsim.dir/router/router.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/router/router.cc.o.d"
  "/root/repo/src/sim/closedloop.cc" "src/CMakeFiles/afcsim.dir/sim/closedloop.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/sim/closedloop.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/CMakeFiles/afcsim.dir/sim/core.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/sim/core.cc.o.d"
  "/root/repo/src/sim/l2bank.cc" "src/CMakeFiles/afcsim.dir/sim/l2bank.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/sim/l2bank.cc.o.d"
  "/root/repo/src/sim/memsys.cc" "src/CMakeFiles/afcsim.dir/sim/memsys.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/sim/memsys.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/CMakeFiles/afcsim.dir/sim/workload.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/sim/workload.cc.o.d"
  "/root/repo/src/topology/mesh.cc" "src/CMakeFiles/afcsim.dir/topology/mesh.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/topology/mesh.cc.o.d"
  "/root/repo/src/topology/routing.cc" "src/CMakeFiles/afcsim.dir/topology/routing.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/topology/routing.cc.o.d"
  "/root/repo/src/traffic/injector.cc" "src/CMakeFiles/afcsim.dir/traffic/injector.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/traffic/injector.cc.o.d"
  "/root/repo/src/traffic/openloop.cc" "src/CMakeFiles/afcsim.dir/traffic/openloop.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/traffic/openloop.cc.o.d"
  "/root/repo/src/traffic/patterns.cc" "src/CMakeFiles/afcsim.dir/traffic/patterns.cc.o" "gcc" "src/CMakeFiles/afcsim.dir/traffic/patterns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
