file(REMOVE_RECURSE
  "libafcsim.a"
)
