# Empty dependencies file for afcsim.
# This may be replaced when dependencies are built.
