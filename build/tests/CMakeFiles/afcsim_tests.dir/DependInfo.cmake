
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ablation_test.cc" "tests/CMakeFiles/afcsim_tests.dir/ablation_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/ablation_test.cc.o.d"
  "/root/repo/tests/afc_protocol_test.cc" "tests/CMakeFiles/afcsim_tests.dir/afc_protocol_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/afc_protocol_test.cc.o.d"
  "/root/repo/tests/afc_test.cc" "tests/CMakeFiles/afcsim_tests.dir/afc_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/afc_test.cc.o.d"
  "/root/repo/tests/backpressured_test.cc" "tests/CMakeFiles/afcsim_tests.dir/backpressured_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/backpressured_test.cc.o.d"
  "/root/repo/tests/calibration_test.cc" "tests/CMakeFiles/afcsim_tests.dir/calibration_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/calibration_test.cc.o.d"
  "/root/repo/tests/channel_test.cc" "tests/CMakeFiles/afcsim_tests.dir/channel_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/channel_test.cc.o.d"
  "/root/repo/tests/closedloop_test.cc" "tests/CMakeFiles/afcsim_tests.dir/closedloop_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/closedloop_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/afcsim_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/configfile_test.cc" "tests/CMakeFiles/afcsim_tests.dir/configfile_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/configfile_test.cc.o.d"
  "/root/repo/tests/deflection_test.cc" "tests/CMakeFiles/afcsim_tests.dir/deflection_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/deflection_test.cc.o.d"
  "/root/repo/tests/drop_test.cc" "tests/CMakeFiles/afcsim_tests.dir/drop_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/drop_test.cc.o.d"
  "/root/repo/tests/energy_test.cc" "tests/CMakeFiles/afcsim_tests.dir/energy_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/energy_test.cc.o.d"
  "/root/repo/tests/memsys_test.cc" "tests/CMakeFiles/afcsim_tests.dir/memsys_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/memsys_test.cc.o.d"
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/afcsim_tests.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/network_test.cc.o.d"
  "/root/repo/tests/nic_test.cc" "tests/CMakeFiles/afcsim_tests.dir/nic_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/nic_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/afcsim_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/afcsim_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/topology_test.cc" "tests/CMakeFiles/afcsim_tests.dir/topology_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/topology_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/afcsim_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/traffic_test.cc" "tests/CMakeFiles/afcsim_tests.dir/traffic_test.cc.o" "gcc" "tests/CMakeFiles/afcsim_tests.dir/traffic_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/afcsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
