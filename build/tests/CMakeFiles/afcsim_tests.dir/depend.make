# Empty dependencies file for afcsim_tests.
# This may be replaced when dependencies are built.
