/**
 * @file
 * AFC mode-transition demo (Fig. 1 in action): drives a 3x3 AFC
 * network through a load staircase — idle, heavy, idle — and prints
 * a per-interval trace of each router's mode, the EWMA traffic
 * intensity at the center router, and cumulative switch counts.
 * Watch the forward switches fire as the EWMA crosses the high
 * thresholds, and the reverse switches after the load (and EWMA,
 * weight 0.99) decays below the low thresholds with empty buffers.
 *
 * Usage: afc_modes [phase=3000] [high=0.8] [low=0.02] [interval=250]
 *                  [trace=<file>]  (CSV event trace, see trace.hh)
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "common/config.hh"
#include "network/network.hh"
#include "network/trace.hh"
#include "router/afc.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

using namespace afcsim;

namespace
{

std::string
modeMap(Network &net)
{
    std::string s;
    for (NodeId n = 0; n < net.mesh().numNodes(); ++n) {
        s += net.router(n).mode() == RouterMode::Backpressured ? 'B'
                                                               : '.';
        if ((n + 1) % net.mesh().width() == 0 &&
            n + 1 < net.mesh().numNodes()) {
            s += '/';
        }
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    Cycle phase = opt.getInt("phase", 3000);
    double high_rate = opt.getDouble("high", 0.8);
    double low_rate = opt.getDouble("low", 0.02);
    Cycle interval = opt.getInt("interval", 250);

    NetworkConfig cfg;
    Network net(cfg, FlowControl::Afc);

    std::ofstream trace_file;
    std::unique_ptr<CsvTracer> tracer;
    if (opt.has("trace")) {
        trace_file.open(opt.get("trace", "afc_trace.csv"));
        tracer = std::make_unique<CsvTracer>(trace_file);
        net.setTracer(tracer.get());
    }

    UniformPattern pattern(net.mesh());
    OpenLoopInjector heavy(net, pattern, high_rate, 0.35);
    OpenLoopInjector light(net, pattern, low_rate, 0.35);

    auto &center = dynamic_cast<AfcRouter &>(net.router(4));
    std::printf("AFC mode demo: load staircase %.2f -> %.2f -> %.2f\n",
                low_rate, high_rate, low_rate);
    std::printf("center thresholds: high=%.2f low=%.2f; mode map "
                "rows are mesh rows ('B'=backpressured, "
                "'.'=backpressureless)\n\n",
                center.highThreshold(), center.lowThreshold());
    std::printf("%-8s%-10s%-14s%-10s%8s%8s%8s\n", "cycle", "load",
                "modes", "ewma@4", "fwd", "rev", "gossip");

    auto report = [&]() {
        RouterStats rs = net.aggregateRouterStats();
        double load =
            net.now() < phase || net.now() >= 2 * phase ? low_rate
                                                        : high_rate;
        std::printf("%-8llu%-10.2f%-14s%-10.3f%8llu%8llu%8llu\n",
                    static_cast<unsigned long long>(net.now()), load,
                    modeMap(net).c_str(), center.trafficIntensity(),
                    static_cast<unsigned long long>(
                        rs.forwardSwitches),
                    static_cast<unsigned long long>(
                        rs.reverseSwitches),
                    static_cast<unsigned long long>(
                        rs.gossipSwitches));
    };

    for (Cycle c = 0; c < 3 * phase; ++c) {
        bool heavy_phase = c >= phase && c < 2 * phase;
        (heavy_phase ? heavy : light).tick(net.now());
        net.step();
        if (net.now() % interval == 0)
            report();
    }
    net.drain(1000000);
    report();

    NetStats s = net.aggregateStats();
    if (tracer) {
        std::printf("\nwrote %llu trace events to %s\n",
                    static_cast<unsigned long long>(tracer->events()),
                    opt.get("trace", "afc_trace.csv").c_str());
    }
    std::printf("\ndelivered %llu packets, %llu flits; %llu total "
                "deflections; final modes %s\n",
                static_cast<unsigned long long>(s.packetsDelivered),
                static_cast<unsigned long long>(s.flitsDelivered),
                static_cast<unsigned long long>(s.totalDeflections),
                modeMap(net).c_str());
    return 0;
}
