/**
 * @file
 * Consolidation scenario (the Sec. V-B motivation): an 8x8 multicore
 * running a different "application" in each quadrant — one hot, three
 * cool, traffic confined to quadrants. Compares the three flow
 * controls and shows why only AFC is robust: backpressured wastes
 * buffer energy in the three cool quadrants, backpressureless melts
 * down in the hot one (and its misrouting leaks latency into a
 * neighbor quadrant).
 *
 * Usage: consolidation [hot=0.9] [cool=0.1] [measure=15000]
 */

#include <cstdio>

#include "common/config.hh"
#include "traffic/openloop.hh"

using namespace afcsim;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double hot = opt.getDouble("hot", 0.9);
    double cool = opt.getDouble("cool", 0.1);

    NetworkConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    OpenLoopConfig ol;
    ol.warmupCycles = 4000;
    ol.measureCycles = opt.getInt("measure", 15000);

    std::printf("Consolidation on an 8x8 CMP: NW quadrant at %.2f "
                "flits/node/cycle, others at %.2f, intra-quadrant "
                "destinations.\n\n",
                hot, cool);
    std::printf("%-18s%12s%12s%12s%14s%10s\n", "config", "hotQ-lat",
                "coolQ-lat", "defl/flit", "energy(uJ)", "bp-mode%");

    double best_energy = -1.0;
    std::string best;
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc}) {
        QuadrantResult qr =
            runQuadrantExperiment(cfg, fc, ol, hot, cool);
        double cool_lat = (qr.quadrantPacketLatency[1] +
                           qr.quadrantPacketLatency[2] +
                           qr.quadrantPacketLatency[3]) / 3.0;
        double energy = qr.overall.energy.total() / 1e6;
        std::printf("%-18s%12.1f%12.1f%12.3f%14.2f%9.1f%%\n",
                    toString(fc).c_str(),
                    qr.quadrantPacketLatency[0], cool_lat,
                    qr.overall.avgDeflections, energy,
                    100.0 * qr.overall.bpFraction);
        if (best_energy < 0 || energy < best_energy) {
            best_energy = energy;
            best = toString(fc);
        }
    }
    std::printf("\nlowest-energy configuration: %s (the paper finds "
                "AFC, with BP +9%% and BPL +30%%)\n",
                best.c_str());
    return 0;
}
