/**
 * @file
 * Load-latency sweep with selectable traffic pattern — the classic
 * NoC characterization plot, plus the energy-per-flit column that
 * motivates AFC: at which load does the energy winner flip from
 * backpressureless to backpressured, and does AFC track the winner?
 *
 * Usage: latency_sweep [pattern=uniform|transpose|bitcomp|hotspot|
 *                       neighbor] [mesh=3] [step=0.1] [max=0.8]
 */

#include <cstdio>

#include "common/config.hh"
#include "traffic/openloop.hh"

using namespace afcsim;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    NetworkConfig cfg;
    cfg.width = static_cast<int>(opt.getInt("mesh", 3));
    cfg.height = cfg.width;
    OpenLoopConfig ol;
    ol.pattern = opt.get("pattern", "uniform");
    ol.warmupCycles = 3000;
    ol.measureCycles = 10000;
    double step = opt.getDouble("step", 0.1);
    double max = opt.getDouble("max", 0.8);

    std::printf("Load sweep: %s traffic on a %dx%d mesh "
                "(lat = avg packet latency in cycles, e/f = energy "
                "per delivered flit in pJ, * = saturated)\n\n",
                ol.pattern.c_str(), cfg.width, cfg.height);
    std::printf("%-8s |%12s%10s |%12s%10s |%12s%10s%9s\n", "rate",
                "BP-lat", "BP-e/f", "BPL-lat", "BPL-e/f", "AFC-lat",
                "AFC-e/f", "AFC-bp%");

    for (double rate = step; rate <= max + 1e-9; rate += step) {
        ol.injectionRate = rate;
        OpenLoopResult bp =
            runOpenLoop(cfg, FlowControl::Backpressured, ol);
        OpenLoopResult bpl =
            runOpenLoop(cfg, FlowControl::Backpressureless, ol);
        OpenLoopResult afc = runOpenLoop(cfg, FlowControl::Afc, ol);
        std::printf("%-8.2f |%11.1f%s%10.2f |%11.1f%s%10.2f "
                    "|%11.1f%s%10.2f%8.1f%%\n",
                    rate, bp.avgPacketLatency, bp.saturated ? "*" : " ",
                    bp.energyPerFlit, bpl.avgPacketLatency,
                    bpl.saturated ? "*" : " ", bpl.energyPerFlit,
                    afc.avgPacketLatency, afc.saturated ? "*" : " ",
                    afc.energyPerFlit, 100.0 * afc.bpFraction);
    }
    std::printf("\nExpected: at low rates BPL/AFC burn less energy "
                "(no buffers); past BPL saturation AFC follows BP's "
                "latency and energy.\n");
    return 0;
}
