/**
 * @file
 * Quickstart: build the paper's 3x3 mesh, run uniform-random
 * traffic through each flow-control mechanism, and print latency,
 * deflections and energy — a five-minute tour of the public API.
 *
 * Usage: quickstart [rate=0.3] [cycles=20000] [mesh=3]
 *                    [config=<file>]   (see example.cfg)
 */

#include <cstdio>

#include "common/config.hh"
#include "common/configfile.hh"
#include "network/network.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

using namespace afcsim;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    double rate = opt.getDouble("rate", 0.3);
    int cycles = static_cast<int>(opt.getInt("cycles", 20000));
    int mesh = static_cast<int>(opt.getInt("mesh", 3));

    // 1. Describe the network (defaults = the paper's Table II;
    //    or load a key=value file, see example.cfg).
    NetworkConfig cfg;
    if (opt.has("config")) {
        cfg = loadNetworkConfig(opt.get("config", ""));
        mesh = cfg.width;
    } else {
        cfg.width = mesh;
        cfg.height = mesh;
    }

    std::printf("afcsim quickstart: %dx%d mesh, uniform random at "
                "%.2f flits/node/cycle, %d cycles\n\n",
                mesh, mesh, rate, cycles);
    std::printf("%-12s%12s%12s%12s%14s%10s\n", "config", "pkt-lat",
                "hops", "defl/flit", "energy/flit", "bp-mode%");

    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc}) {
        // 2. Build a network with the chosen flow control.
        Network net(cfg, fc);

        // 3. Attach a synthetic traffic source and run.
        UniformPattern pattern(net.mesh());
        OpenLoopInjector inj(net, pattern, rate, 0.35);
        for (int c = 0; c < cycles; ++c) {
            inj.tick(net.now());
            net.step();
        }
        net.drain(1000000);

        // 4. Read the results.
        NetStats s = net.aggregateStats();
        EnergyReport e = net.aggregateEnergy();
        std::printf("%-12s%12.1f%12.2f%12.3f%14.2f%9.1f%%\n",
                    toString(fc).c_str(), s.packetLatency.mean(),
                    s.hops.mean(), s.deflections.mean(),
                    e.total() / s.flitsDelivered,
                    100.0 * net.backpressuredFraction());
    }

    std::printf("\nTry rate=0.1 (backpressureless wins energy) and "
                "rate=0.7 (backpressured wins; AFC adapts).\n");
    return 0;
}
