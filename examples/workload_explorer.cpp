/**
 * @file
 * Closed-loop workload explorer: run any (workload, flow-control)
 * pair from the command line and inspect the full result — runtime,
 * injection rate, transaction latency, mode residency, energy
 * breakdown, and receive-side (MSHR) reassembly pressure.
 *
 * Usage: workload_explorer [workload=apache|oltp|specjbb|barnes|
 *                           ocean|water]
 *                          [fc=bp|bless|afc|afcbp|bypass|drop]
 *                          [scale=0.5] [seed=7] [mesh=3]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"

using namespace afcsim;

int
main(int argc, char **argv)
{
    Options opt(argc, argv);
    WorkloadProfile w = workloadByName(opt.get("workload", "ocean"));
    FlowControl fc = flowControlFromString(opt.get("fc", "afc"));
    double scale = opt.getDouble("scale", 0.5);
    int mesh = static_cast<int>(opt.getInt("mesh", 3));

    w.measureTransactions =
        static_cast<std::uint64_t>(w.measureTransactions * scale);
    w.warmupTransactions =
        static_cast<std::uint64_t>(w.warmupTransactions * scale);

    NetworkConfig cfg;
    cfg.width = mesh;
    cfg.height = mesh;
    cfg.seed = static_cast<std::uint64_t>(opt.getInt("seed", 7));

    std::printf("workload %s on %s (%dx%d mesh, %llu transactions)\n",
                w.name.c_str(), toString(fc).c_str(), mesh, mesh,
                static_cast<unsigned long long>(
                    w.measureTransactions));
    std::printf("paper injection-rate reference: %.2f "
                "flits/node/cycle\n\n", w.paperInjRate);

    ClosedLoopSystem sys(cfg, fc, w);
    ClosedLoopResult r = sys.run();

    std::printf("runtime               %llu cycles\n",
                static_cast<unsigned long long>(r.runtime));
    std::printf("throughput            %.4f transactions/cycle\n",
                r.throughput());
    std::printf("injection rate        %.3f flits/node/cycle\n",
                r.injectionRate);
    std::printf("avg transaction lat.  %.1f cycles\n", r.avgTxLatency);
    std::printf("avg packet latency    %.1f cycles\n",
                r.avgPacketLatency);
    std::printf("deflections/flit      %.3f\n", r.avgDeflections);
    std::printf("mode residency        %.1f%% backpressured, "
                "%.1f%% backpressureless\n",
                100.0 * r.bpFraction, 100.0 * (1 - r.bpFraction));
    std::printf("mode switches         %llu forward (%llu gossip), "
                "%llu reverse\n",
                static_cast<unsigned long long>(r.forwardSwitches),
                static_cast<unsigned long long>(r.gossipSwitches),
                static_cast<unsigned long long>(r.reverseSwitches));

    std::printf("\nenergy (measurement window, pJ):\n");
    std::printf("  buffer  %14.0f  (%.1f%%)\n",
                r.energy.bufferEnergy(),
                100.0 * r.energy.bufferEnergy() / r.energy.total());
    std::printf("  link    %14.0f  (%.1f%%)\n", r.energy.linkEnergy(),
                100.0 * r.energy.linkEnergy() / r.energy.total());
    std::printf("  rest    %14.0f  (%.1f%%)\n", r.energy.restEnergy(),
                100.0 * r.energy.restEnergy() / r.energy.total());
    std::printf("  total   %14.0f\n", r.energy.total());

    std::size_t max_reassembly = 0;
    for (NodeId n = 0; n < cfg.numNodes(); ++n) {
        max_reassembly = std::max(
            max_reassembly, sys.network().nic(n).maxReassemblies());
    }
    std::printf("\nreceive-side buffering: max %zu concurrent "
                "reassemblies at a node (MSHR-backed, Sec. II)\n",
                max_reassembly);
    return 0;
}
