#include "ckpt/serial.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace afcsim::ckpt
{

namespace
{

/** 8-byte container magic; the \1 doubles as a layout generation. */
constexpr char kMagic[8] = {'A', 'F', 'C', 'K', 'P', 'T', '\1', '\n'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t h = seed;
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
writeFile(const std::string &path, Kind kind,
          const std::vector<std::uint8_t> &payload)
{
    std::string blob;
    blob.reserve(kHeaderBytes + payload.size());
    blob.append(kMagic, sizeof(kMagic));
    putU32(blob, kFormatVersion);
    putU32(blob, static_cast<std::uint32_t>(kind));
    putU64(blob, payload.size());
    putU64(blob, fnv1a(payload.data(), payload.size()));
    blob.append(reinterpret_cast<const char *>(payload.data()),
                payload.size());

    // Write-to-temp + rename: a crash mid-write leaves at worst a
    // stale .tmp sibling, never a torn checkpoint under `path`.
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            AFCSIM_SIM_ERROR("checkpoint '", path,
                             "': cannot open temporary '", tmp,
                             "' for writing");
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        out.flush();
        if (!out)
            AFCSIM_SIM_ERROR("checkpoint '", path, "': write to '",
                             tmp, "' failed");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        AFCSIM_SIM_ERROR("checkpoint '", path, "': rename from '", tmp,
                         "' failed: ", ec.message());
}

std::vector<std::uint8_t>
readFile(const std::string &path, Kind kind)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        AFCSIM_SIM_ERROR("checkpoint '", path, "': cannot open file");
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (blob.size() < kHeaderBytes)
        AFCSIM_SIM_ERROR("checkpoint '", path, "': truncated header (",
                         blob.size(), " bytes, need ", kHeaderBytes,
                         ")");
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(blob.data());
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0)
        AFCSIM_SIM_ERROR("checkpoint '", path,
                         "': bad magic (not an afcsim checkpoint)");
    std::uint32_t version = getU32(p + 8);
    if (version != kFormatVersion)
        AFCSIM_SIM_ERROR("checkpoint '", path, "': format version ",
                         version, " (this build reads version ",
                         kFormatVersion, ")");
    std::uint32_t fileKind = getU32(p + 12);
    if (fileKind != static_cast<std::uint32_t>(kind))
        AFCSIM_SIM_ERROR("checkpoint '", path, "': payload kind ",
                         fileKind, " (expected ",
                         static_cast<std::uint32_t>(kind), ")");
    std::uint64_t size = getU64(p + 16);
    std::uint64_t checksum = getU64(p + 24);
    if (blob.size() - kHeaderBytes != size)
        AFCSIM_SIM_ERROR("checkpoint '", path,
                         "': truncated payload (header says ", size,
                         " bytes, file holds ",
                         blob.size() - kHeaderBytes, ")");
    std::uint64_t actual = fnv1a(p + kHeaderBytes, size);
    if (actual != checksum)
        AFCSIM_SIM_ERROR("checkpoint '", path,
                         "': checksum mismatch (corrupt payload)");
    return std::vector<std::uint8_t>(p + kHeaderBytes,
                                     p + kHeaderBytes + size);
}

} // namespace afcsim::ckpt
