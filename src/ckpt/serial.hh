/**
 * @file
 * Binary checkpoint serialization (DESIGN.md S20). A checkpoint is a
 * little-endian byte stream written through Writer and read back
 * through Reader, wrapped in a versioned, checksummed file container:
 *
 *   offset  size  field
 *   0       8     magic "AFCKPT\1\n"
 *   8       4     format version (u32)
 *   12      4     payload kind (u32; what the payload snapshots)
 *   16      8     payload size in bytes (u64)
 *   24      8     FNV-1a-64 checksum of the payload bytes (u64)
 *   32      n     payload
 *
 * Every container mismatch — short file, bad magic, unknown version,
 * wrong kind, checksum failure, or a payload that reads past its end
 * — raises a recoverable SimError naming the file and the defect;
 * corrupt checkpoints must never crash or silently restore wrong
 * state. Files are written to a temporary sibling and renamed into
 * place so readers only ever observe complete checkpoints.
 *
 * Integers are fixed-width little-endian; doubles are serialized as
 * their IEEE-754 bit pattern, so restored state is bit-identical to
 * the snapshotted state on every platform we build for.
 */

#ifndef AFCSIM_CKPT_SERIAL_HH
#define AFCSIM_CKPT_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"

namespace afcsim::ckpt
{

/** Current checkpoint format version. Bump on any layout change. */
constexpr std::uint32_t kFormatVersion = 2;

/** What a checkpoint payload snapshots (container `kind` field). */
enum class Kind : std::uint32_t
{
    OpenLoopRun = 1,   ///< full open-loop harness + network state
    RunResult = 2,     ///< a finished exp::RunResult (journal entry)
    SearchResult = 3,  ///< a finished search::SearchResult
    WarmupFork = 4,    ///< shared warm-up prefix (network + injector)
    ClosedLoopRun = 5, ///< full closed-loop harness + network state
};

/** FNV-1a 64-bit hash of a byte range. */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/** Append-only little-endian byte-stream builder. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked reader over a checkpoint payload. Reading past the
 * end raises SimError (a truncated payload must not fabricate state).
 */
class Reader
{
  public:
    explicit Reader(std::vector<std::uint8_t> bytes,
                    std::string origin = "<buffer>")
        : buf_(std::move(bytes)), origin_(std::move(origin))
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return buf_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    bool b() { return u8() != 0; }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(buf_.data()) + pos_,
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    std::size_t remaining() const { return buf_.size() - pos_; }

    /** Assert the whole payload was consumed (layout drift guard). */
    void
    finish() const
    {
        if (pos_ != buf_.size())
            AFCSIM_SIM_ERROR("checkpoint '", origin_, "': ",
                             buf_.size() - pos_,
                             " trailing bytes after restore "
                             "(layout mismatch)");
    }

  private:
    void
    need(std::uint64_t n)
    {
        if (pos_ + n > buf_.size())
            AFCSIM_SIM_ERROR("checkpoint '", origin_,
                             "': truncated payload (need ", n,
                             " bytes at offset ", pos_, " of ",
                             buf_.size(), ")");
    }

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::string origin_;
};

/**
 * Write `payload` to `path` inside the versioned, checksummed
 * container, atomically: the bytes land in a temporary sibling file
 * first and are renamed over `path`. Throws SimError when the file
 * cannot be written.
 */
void writeFile(const std::string &path, Kind kind,
               const std::vector<std::uint8_t> &payload);

/**
 * Read a container written by writeFile() and return the verified
 * payload. Throws SimError with a distinct, clear message for a
 * missing/short file, bad magic, version skew, kind mismatch, size
 * mismatch, or checksum failure.
 */
std::vector<std::uint8_t> readFile(const std::string &path, Kind kind);

} // namespace afcsim::ckpt

#endif // AFCSIM_CKPT_SERIAL_HH
