#include "ckpt/state.hh"

namespace afcsim::ckpt
{

void
put(Writer &w, const Flit &f)
{
    w.u64(f.packet);
    w.u32(f.seq);
    w.u32(f.packetLen);
    w.i32(f.src);
    w.i32(f.dest);
    w.i32(f.vnet);
    w.i32(f.vc);
    w.u8(static_cast<std::uint8_t>(f.type));
    w.u64(f.createTime);
    w.u64(f.injectTime);
    w.u32(f.hops);
    w.u32(f.deflections);
    w.i32(f.lookahead);
    w.u64(f.tag);
    w.u32(f.payload);
    w.u32(f.checksum);
    w.b(f.guarded);
}

Flit
getFlit(Reader &r)
{
    Flit f;
    f.packet = r.u64();
    f.seq = static_cast<std::uint16_t>(r.u32());
    f.packetLen = static_cast<std::uint16_t>(r.u32());
    f.src = static_cast<NodeId>(r.i32());
    f.dest = static_cast<NodeId>(r.i32());
    f.vnet = static_cast<VnetId>(r.i32());
    f.vc = static_cast<VcId>(r.i32());
    f.type = static_cast<FlitType>(r.u8());
    f.createTime = r.u64();
    f.injectTime = r.u64();
    f.hops = static_cast<std::uint16_t>(r.u32());
    f.deflections = static_cast<std::uint16_t>(r.u32());
    f.lookahead = static_cast<Direction>(r.i32());
    f.tag = r.u64();
    f.payload = r.u32();
    f.checksum = r.u32();
    f.guarded = r.b();
    return f;
}

void
put(Writer &w, const Credit &c)
{
    w.i32(c.vnet);
    w.i32(c.vc);
}

Credit
getCredit(Reader &r)
{
    Credit c;
    c.vnet = static_cast<VnetId>(r.i32());
    c.vc = static_cast<VcId>(r.i32());
    return c;
}

void
put(Writer &w, const CtlMsg &m)
{
    w.u8(static_cast<std::uint8_t>(m.kind));
}

CtlMsg
getCtl(Reader &r)
{
    CtlMsg m;
    m.kind = static_cast<CtlMsg::Kind>(r.u8());
    return m;
}

void
put(Writer &w, const Rng &rng)
{
    w.u64(rng.rawState());
    w.u64(rng.rawInc());
}

Rng
getRng(Reader &r)
{
    std::uint64_t state = r.u64();
    std::uint64_t inc = r.u64();
    return Rng::fromRaw(state, inc);
}

void
put(Writer &w, const RunningStat &s)
{
    w.u64(s.count());
    w.f64(s.rawMean());
    w.f64(s.rawM2());
    w.f64(s.rawMin());
    w.f64(s.rawMax());
}

void
get(Reader &r, RunningStat &s)
{
    std::uint64_t count = r.u64();
    double mean = r.f64();
    double m2 = r.f64();
    double mn = r.f64();
    double mx = r.f64();
    s.restoreRaw(count, mean, m2, mn, mx);
}

void
put(Writer &w, const Histogram &h)
{
    const auto &buckets = h.rawBuckets();
    w.u64(buckets.size());
    for (std::uint64_t b : buckets)
        w.u64(b);
    put(w, h.summary());
}

void
get(Reader &r, Histogram &h)
{
    std::uint64_t n = r.u64();
    std::vector<std::uint64_t> buckets(static_cast<std::size_t>(n));
    for (auto &b : buckets)
        b = r.u64();
    h.restoreRawBuckets(buckets);
    get(r, h.rawSummary());
}

void
put(Writer &w, const PercentileAccumulator &p)
{
    const auto &samples = p.rawSamples();
    w.u64(samples.size());
    for (double s : samples)
        w.f64(s);
    w.b(p.rawSorted());
}

void
get(Reader &r, PercentileAccumulator &p)
{
    std::uint64_t n = r.u64();
    std::vector<double> samples(static_cast<std::size_t>(n));
    for (auto &s : samples)
        s = r.f64();
    bool sorted = r.b();
    p.restoreRaw(std::move(samples), sorted);
}

void
put(Writer &w, const NetStats &s)
{
    w.u64(s.flitsInjected);
    w.u64(s.flitsDelivered);
    w.u64(s.packetsInjected);
    w.u64(s.packetsDelivered);
    put(w, s.packetLatency);
    put(w, s.packetLatencyHist);
    put(w, s.packetLatencyPct);
    put(w, s.flitLatency);
    put(w, s.hops);
    put(w, s.deflections);
    w.u64(s.totalDeflections);
    w.u64(s.flitsCorrupted);
    w.u64(s.flitsDuplicate);
    w.u64(s.flitsRetransmitted);
    w.u64(s.packetsRetransmitted);
    w.u64(s.packetsFailed);
    w.u64(s.retransmitOverflows);
}

void
get(Reader &r, NetStats &s)
{
    s.flitsInjected = r.u64();
    s.flitsDelivered = r.u64();
    s.packetsInjected = r.u64();
    s.packetsDelivered = r.u64();
    get(r, s.packetLatency);
    get(r, s.packetLatencyHist);
    get(r, s.packetLatencyPct);
    get(r, s.flitLatency);
    get(r, s.hops);
    get(r, s.deflections);
    s.totalDeflections = r.u64();
    s.flitsCorrupted = r.u64();
    s.flitsDuplicate = r.u64();
    s.flitsRetransmitted = r.u64();
    s.packetsRetransmitted = r.u64();
    s.packetsFailed = r.u64();
    s.retransmitOverflows = r.u64();
}

} // namespace afcsim::ckpt
