/**
 * @file
 * Serialization helpers for the value types that appear throughout
 * simulator state: flits, credits, control messages, RNG streams and
 * statistics accumulators. Component snapshot/restore methods
 * (Router::ckptSave, Nic::ckptSave, ...) compose these so every
 * container layout is written exactly one way.
 */

#ifndef AFCSIM_CKPT_STATE_HH
#define AFCSIM_CKPT_STATE_HH

#include "ckpt/serial.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "network/flit.hh"

namespace afcsim::ckpt
{

void put(Writer &w, const Flit &f);
Flit getFlit(Reader &r);

void put(Writer &w, const Credit &c);
Credit getCredit(Reader &r);

void put(Writer &w, const CtlMsg &m);
CtlMsg getCtl(Reader &r);

void put(Writer &w, const Rng &rng);
Rng getRng(Reader &r);

void put(Writer &w, const RunningStat &s);
void get(Reader &r, RunningStat &s);

void put(Writer &w, const Histogram &h);
void get(Reader &r, Histogram &h);

void put(Writer &w, const PercentileAccumulator &p);
void get(Reader &r, PercentileAccumulator &p);

void put(Writer &w, const NetStats &s);
void get(Reader &r, NetStats &s);

} // namespace afcsim::ckpt

#endif // AFCSIM_CKPT_STATE_HH
