#include "common/config.hh"

#include <algorithm>
#include <cstdlib>

#include "common/error.hh"
#include "common/log.hh"

namespace afcsim
{

std::string
toString(FlowControl fc)
{
    switch (fc) {
      case FlowControl::Backpressured:
        return "backpressured";
      case FlowControl::Backpressureless:
        return "backpressureless";
      case FlowControl::Afc:
        return "afc";
      case FlowControl::AfcAlwaysBackpressured:
        return "afc-always-bp";
      case FlowControl::BackpressuredIdealBypass:
        return "bp-ideal-bypass";
      case FlowControl::BackpressurelessDrop:
        return "bpl-drop";
      case FlowControl::AfcAdaptive:
        return "afc-adaptive";
    }
    return "?";
}

FlowControl
flowControlFromString(const std::string &name)
{
    std::string n = name;
    std::transform(n.begin(), n.end(), n.begin(), ::tolower);
    if (n == "backpressured" || n == "bp" || n == "buffered")
        return FlowControl::Backpressured;
    if (n == "backpressureless" || n == "bpl" || n == "bless" ||
        n == "deflection")
        return FlowControl::Backpressureless;
    if (n == "afc")
        return FlowControl::Afc;
    if (n == "afc-always-bp" || n == "afc_always_bp" || n == "afcbp")
        return FlowControl::AfcAlwaysBackpressured;
    if (n == "bp-ideal-bypass" || n == "ideal-bypass" || n == "bypass")
        return FlowControl::BackpressuredIdealBypass;
    if (n == "bpl-drop" || n == "drop" || n == "scarab")
        return FlowControl::BackpressurelessDrop;
    if (n == "afc-adaptive" || n == "afc_adaptive" || n == "adaptive")
        return FlowControl::AfcAdaptive;
    AFCSIM_CONFIG_ERROR("unknown flow control '", name, "'");
}

int
FlitWidths::forFlowControl(FlowControl fc)
{
    switch (fc) {
      case FlowControl::Backpressured:
      case FlowControl::BackpressuredIdealBypass:
        return kBackpressured;
      case FlowControl::Backpressureless:
      case FlowControl::BackpressurelessDrop:
        return kBackpressureless;
      case FlowControl::Afc:
      case FlowControl::AfcAlwaysBackpressured:
      case FlowControl::AfcAdaptive:
        return kAfc;
    }
    return kBackpressured;
}

void
NetworkConfig::validate() const
{
    if (width < 2 || height < 2) {
        AFCSIM_CONFIG_ERROR("mesh must be at least 2x2, got ", width,
                            "x", height);
    }
    if (linkLatency < 1)
        AFCSIM_CONFIG_ERROR("link latency must be >= 1");
    if (vnets.empty())
        AFCSIM_CONFIG_ERROR("need at least one virtual network");
    if (afcVnets.size() != vnets.size())
        AFCSIM_CONFIG_ERROR("afcVnets must mirror vnets per virtual network");
    for (const auto &v : vnets) {
        if (v.numVcs < 1 || v.bufferDepth < 1)
            AFCSIM_CONFIG_ERROR("vnet shape must be positive");
    }
    for (const auto &v : afcVnets) {
        if (v.numVcs < 1 || v.bufferDepth < 1)
            AFCSIM_CONFIG_ERROR("afc vnet shape must be positive");
    }
    if (dataPacketFlits < 1 || controlPacketFlits < 1)
        AFCSIM_CONFIG_ERROR("packet lengths must be positive");
    if (injectionQueueDepth < dataPacketFlits)
        AFCSIM_CONFIG_ERROR("injection queue must hold at least one data packet");
    if (shards < 1)
        AFCSIM_CONFIG_ERROR("sim.shards must be >= 1, got ", shards);

    auto check_rate = [](double rate, const char *what) {
        if (rate < 0.0 || rate > 1.0)
            AFCSIM_CONFIG_ERROR(what, " must be in [0, 1], got ", rate);
    };
    check_rate(faults.corruptRate, "fault.corrupt_rate");
    check_rate(faults.linkDownRate, "fault.link_down_rate");
    check_rate(faults.stallRate, "fault.stall_rate");
    check_rate(faults.creditLossRate, "fault.credit_loss_rate");
    if (faults.linkDownMinCycles < 1 ||
        faults.linkDownMaxCycles < faults.linkDownMinCycles) {
        AFCSIM_CONFIG_ERROR("fault.link_down interval must satisfy "
                            "1 <= min <= max");
    }
    if (faults.stallMinCycles < 1 ||
        faults.stallMaxCycles < faults.stallMinCycles) {
        AFCSIM_CONFIG_ERROR("fault.stall interval must satisfy "
                            "1 <= min <= max");
    }
    if (reliability.timeoutCycles < 1)
        AFCSIM_CONFIG_ERROR("reliability.timeout must be >= 1 cycle");
    if (reliability.backoffFactor < 1.0)
        AFCSIM_CONFIG_ERROR("reliability.backoff must be >= 1");
    if (reliability.maxRetries < 0)
        AFCSIM_CONFIG_ERROR("reliability.max_retries must be >= 0");
    if (reliability.bufferPackets < 1)
        AFCSIM_CONFIG_ERROR("reliability.buffer_packets must be >= 1");
    if (watchdog.intervalCycles < 1)
        AFCSIM_CONFIG_ERROR("watchdog.interval must be >= 1 cycle");
    if (watchdog.progressWindowCycles < 1)
        AFCSIM_CONFIG_ERROR("watchdog.progress_window must be >= 1 cycle");
    if (obs.sampleInterval > 0 && obs.sampleCapacity < 1)
        AFCSIM_CONFIG_ERROR("obs.capacity must be >= 1 frame");
    if (obs.trace && obs.traceCapacity < 1)
        AFCSIM_CONFIG_ERROR("obs.trace_capacity must be >= 1 event");

    // Threshold-adaptation knobs (afc_adaptive). The per-position
    // compatibility of gapFloor with the static thresholds is checked
    // when an adaptive router is actually built — tests legitimately
    // use degenerate static thresholds with the other variants.
    const AfcAdaptConfig &ad = afc.adapt;
    if (ad.probeInterval < 1)
        AFCSIM_CONFIG_ERROR("afc.adapt.probe_interval must be >= 1");
    if (ad.probeWindow < 1 || ad.probeWindow > ad.probeInterval) {
        AFCSIM_CONFIG_ERROR("afc.adapt.probe_window must be in [1, "
                            "afc.adapt.probe_interval]");
    }
    if (ad.gain < 0.0)
        AFCSIM_CONFIG_ERROR("afc.adapt.gain must be >= 0");
    if (ad.minScale <= 0.0 || ad.minScale > 1.0)
        AFCSIM_CONFIG_ERROR("afc.adapt.min_scale must be in (0, 1]");
    if (ad.maxScale < 1.0)
        AFCSIM_CONFIG_ERROR("afc.adapt.max_scale must be >= 1");
    if (ad.gapFloor < 0.0)
        AFCSIM_CONFIG_ERROR("afc.adapt.gap_floor must be >= 0");
}

Options::Options(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (eq == std::string::npos) {
            kv_.emplace_back(arg, "true");
        } else {
            kv_.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
        }
    }
}

bool
Options::has(const std::string &key) const
{
    for (const auto &[k, v] : kv_) {
        if (k == key)
            return true;
    }
    return false;
}

std::string
Options::get(const std::string &key, const std::string &fallback) const
{
    for (const auto &[k, v] : kv_) {
        if (k == key)
            return v;
    }
    return fallback;
}

long
Options::getInt(const std::string &key, long fallback) const
{
    if (!has(key))
        return fallback;
    return std::strtol(get(key, "").c_str(), nullptr, 10);
}

double
Options::getDouble(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    return std::strtod(get(key, "").c_str(), nullptr);
}

} // namespace afcsim
