/**
 * @file
 * Simulator configuration structures. Defaults encode the paper's
 * Table II (system configuration) and Section IV (AFC parameters,
 * flit widths, energy-model technology point).
 */

#ifndef AFCSIM_COMMON_CONFIG_HH
#define AFCSIM_COMMON_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace afcsim
{

/**
 * The flow-control mechanisms compared in the paper (Fig. 2 bars).
 *
 * BackpressuredIdealBypass is the baseline backpressured router with
 * all buffer *dynamic* energy elided — the paper's lower bound for
 * buffer-bypass techniques (Sec. V-A); it is timing-identical to
 * Backpressured. AfcAlwaysBackpressured is the AFC router pinned to
 * backpressured mode (isolates the lazy-VCA benefit from the
 * adaptivity benefit).
 */
enum class FlowControl
{
    Backpressured,
    Backpressureless,
    Afc,
    AfcAlwaysBackpressured,
    BackpressuredIdealBypass,
    /**
     * Extension: the drop-on-contention backpressureless variant
     * (SCARAB-style) the paper rejects in Sec. II because it
     * saturates earlier than deflection.
     */
    BackpressurelessDrop,
    /**
     * Extension: AFC with self-tuning mode thresholds. Each router
     * runs a periodic gradient controller (modeled on Envoy's
     * adaptive-concurrency loop) that probes a baseline delivered
     * latency and multiplicatively nudges its high/low thresholds
     * within configured clamps. See `AfcAdaptConfig`.
     */
    AfcAdaptive,
};

/** Human-readable name for a flow-control configuration. */
std::string toString(FlowControl fc);

/** Parse a flow-control name ("backpressured", "bless", "afc", ...). */
FlowControl flowControlFromString(const std::string &name);

/** Per-virtual-network channel configuration. */
struct VnetConfig
{
    int numVcs;       ///< virtual channels per physical port
    int bufferDepth;  ///< flits per VC buffer
};

/**
 * Threshold-adaptation parameters for the `afc_adaptive` variant
 * (DESIGN.md S22). Time divides into epochs of `probeInterval`
 * cycles; the first `probeWindow` cycles of each epoch form the
 * probe window whose minimum delivered flit latency becomes the
 * baseline (a minRTT analogue), the remainder accumulates the sample
 * average. At each epoch boundary the controller computes
 * gradient = baseline / sample (Q16 fixed point, clamped to
 * [0.5, 2.0]) and scales both thresholds by 1 + gain*(gradient - 1),
 * clamped to [static * minScale, static * maxScale] while keeping
 * high - low >= gapFloor. All controller arithmetic is integer /
 * Q16 fixed point so runs stay bit-deterministic.
 */
struct AfcAdaptConfig
{
    Cycle probeInterval = 2048; ///< epoch length, cycles (>= 1)
    Cycle probeWindow = 256;    ///< probe prefix, cycles (<= interval)
    double gain = 0.5;          ///< controller gain (0 = frozen)
    double minScale = 0.5;      ///< clamp: static threshold * minScale
    double maxScale = 1.5;      ///< clamp: static threshold * maxScale
    double gapFloor = 0.2;      ///< minimum high - low separation
};

/**
 * AFC policy parameters (Sec. III-B/C/D and Sec. IV).
 *
 * Thresholds are on the EWMA-smoothed local traffic intensity in
 * flits/cycle; a router switches forward (to backpressured) above
 * the high threshold and back (to backpressureless) below the low
 * threshold once its buffers are empty.
 */
struct AfcConfig
{
    double ewmaWeight = 0.99;      ///< m = w*m + (1-w)*l
    double cornerHigh = 1.8;       ///< 2-port routers (mesh corners)
    double cornerLow = 1.2;
    double edgeHigh = 2.1;         ///< 3-port routers (mesh edges)
    double edgeLow = 1.3;
    double centerHigh = 2.2;       ///< 4-port routers (interior)
    double centerLow = 1.7;
    /**
     * Gossip threshold X: a backpressureless-mode router force-
     * switches when a backpressured neighbor's free slots (per vnet)
     * drop to X. Must be >= 2L; 0 means "use 2 * linkLatency".
     */
    int gossipReserve = 0;
    /** Pin the router to backpressured mode (always-backpressured). */
    bool alwaysBackpressured = false;
    /**
     * ABLATION ONLY — disables the gossip-induced mode switch. This
     * removes the Sec. III-D correctness mechanism: a deflecting
     * router can then overrun a buffered neighbor, which the router
     * detects and reports as a protocol panic. Exists so tests can
     * demonstrate the mechanism is load-bearing.
     */
    bool disableGossipUnsafe = false;
    /** Gradient-controller knobs, used only by `afc_adaptive`. */
    AfcAdaptConfig adapt;
};

/**
 * Energy-model coefficients, normalized pJ at the paper's 70 nm /
 * 1.0 V / 3 GHz / 2.5 mm-link technology point. Dynamic terms are
 * per-bit per-event; leakage is per buffer bit-cell per cycle.
 * Defaults are calibrated (see DESIGN.md Sec. 5 and the calibration
 * test) so the backpressured baseline spends 30-40 % of network
 * energy in buffers at the paper's operating points.
 */
struct EnergyConfig
{
    double bufferWritePerBit = 0.0077;  ///< pJ/bit per flit write
    double bufferReadPerBit = 0.0060;   ///< pJ/bit per flit read
    double crossbarPerBit = 0.0280;     ///< pJ/bit per switch traversal
    double linkPerBitPerMm = 0.0155;    ///< pJ/bit/mm per link traversal
    double linkLengthMm = 2.5;          ///< physical link length
    double arbiterPerAlloc = 0.30;      ///< pJ per allocation decision
    double latchPerBit = 0.0040;        ///< pJ/bit pipeline-latch write
    double bufferLeakPerBitCycle = 7.2e-5; ///< pJ per bit-cell per cycle
    /**
     * Per-access energy grows with buffer depth (longer bit/word
     * lines): access cost is scaled by 1 + slope * (depth - 1).
     * This is the Orion effect behind Sec. III-E's claim that AFC's
     * shallow (1-flit) VCs recapture the wider-flit overhead.
     */
    double bufferDepthEnergySlope = 0.09;
    double routerIdlePerCycle = 1.10;   ///< pJ/cycle non-buffer leakage
    double creditPerHop = 0.045;        ///< pJ per credit backflow signal
    /** Fraction of buffer leakage removed by power gating (Sec. IV). */
    double powerGatingEfficiency = 0.90;
};

/**
 * Fault-injection model (src/fault). All faults are deterministic
 * functions of (seed, link, cycle). The model corrupts flit payloads
 * rather than dropping flits so in-network flow-control state stays
 * consistent: loss happens at the receiving NIC, where checksum
 * verification discards corrupted flits (header/ECC bits are assumed
 * protected). Credit loss (`creditLossRate`) deliberately breaks
 * flow control and exists to exercise the watchdogs.
 */
struct FaultSpec
{
    /** Per-flit-traversal probability of a transient payload upset. */
    double corruptRate = 0.0;
    /**
     * Per-link-per-cycle probability that a link-down interval
     * starts; while down, every traversing flit is corrupted.
     */
    double linkDownRate = 0.0;
    Cycle linkDownMinCycles = 8;
    Cycle linkDownMaxCycles = 64;
    /**
     * Per-link-per-cycle probability that a stall interval starts;
     * while stalled, arriving flits are held at the link and then
     * released at most one per cycle (FIFO), preserving each
     * router's one-arrival-per-link-per-cycle invariant.
     */
    double stallRate = 0.0;
    Cycle stallMinCycles = 1;
    Cycle stallMaxCycles = 8;
    /**
     * Per-credit probability of silently losing a credit backflow.
     * This corrupts protocol state by design (watchdog tests only).
     */
    double creditLossRate = 0.0;
    /** Hard failure: the network throws SimError at this cycle. */
    Cycle failAtCycle = kNeverCycle;

    /** True when any fault mechanism is active. */
    bool
    any() const
    {
        return corruptRate > 0.0 || linkDownRate > 0.0 ||
               stallRate > 0.0 || creditLossRate > 0.0 ||
               failAtCycle != kNeverCycle;
    }
};

/**
 * End-to-end reliability layer at the NICs: per-flit checksums,
 * receive-side verification, and timeout-driven retransmission of
 * whole packets from a bounded source-side buffer with exponential
 * backoff. Duplicates created by spurious retransmits are discarded
 * at the destination.
 */
struct ReliabilitySpec
{
    bool enabled = false;
    /** Base retransmission timeout (cycles since last (re)send). */
    Cycle timeoutCycles = 512;
    /** Timeout multiplier applied per retry (exponential backoff). */
    double backoffFactor = 2.0;
    /** Give up (count the packet failed) after this many retries. */
    int maxRetries = 8;
    /** Max packets held in the source retransmission buffer. */
    int bufferPackets = 256;
};

/**
 * Runtime watchdogs: periodic consistency checks that convert hangs
 * and silent state corruption into a SimError carrying a diagnostic
 * snapshot. Cheap enough to stay on by default.
 */
struct WatchdogSpec
{
    bool enabled = true;
    /** Cycles between watchdog sweeps. */
    Cycle intervalCycles = 1024;
    /**
     * Deadlock detection: fail if no router dispatches and no flit
     * is delivered for this many cycles while flits are in flight.
     */
    Cycle progressWindowCycles = 100000;
    /** Livelock detection: max in-network age (cycles since network
     *  entry) any flit may reach. */
    Cycle maxFlitAgeCycles = 1000000;
    /** Verify per-VC/per-VN credit counts against buffer state. */
    bool creditCheck = true;
    /** Verify flit conservation (injected vs delivered + in flight). */
    bool conservationCheck = true;
};

/**
 * Observability layer (src/obs): a time-series metrics sampler and a
 * structured event tracer, both preallocated and deterministic. The
 * whole subsystem is constructed only when any() is true, so the
 * disabled path is bit-for-bit identical to a build without it (the
 * only cost is one null-pointer test per simulated cycle).
 */
struct ObsSpec
{
    /** Cycles between metric samples; 0 disables the sampler. */
    Cycle sampleInterval = 0;
    /** Ring-buffer capacity in frames; oldest frames are overwritten. */
    int sampleCapacity = 4096;
    /** Record flit-lifecycle / mode-switch events (Chrome trace). */
    bool trace = false;
    /** Flit events retained before further ones are counted dropped
     *  (mode-switch events are never dropped). */
    int traceCapacity = 1 << 20;
    /**
     * Streaming series export: when non-empty and the sampler is
     * active, frames evicted from the ring are appended to this CSV
     * file instead of being dropped, and the series export flushes
     * the retained tail there. Empty (the default) keeps the pure
     * in-memory ring — that path is byte-identical to builds without
     * streaming.
     */
    std::string streamPath;

    /** True when any observability mechanism is active. */
    bool
    any() const
    {
        return sampleInterval > 0 || trace;
    }
};

/**
 * Network configuration (Table II defaults: 3x3 mesh, 2-cycle links,
 * 2 control vnets (2 VCs x 8 flits each) + 1 data vnet (4 VCs x 8
 * flits) for the backpressured baseline).
 */
struct NetworkConfig
{
    int width = 3;                 ///< mesh columns
    int height = 3;                ///< mesh rows
    int linkLatency = 2;           ///< cycles per link traversal
    int routerStages = 2;          ///< router pipeline depth
    std::vector<VnetConfig> vnets = {{2, 8}, {2, 8}, {4, 8}};
    /**
     * AFC backpressured-mode (lazy VCA) shape: VCs per vnet with
     * 1-flit buffers — 8 + 8 + 16 = 32 flits/port (Sec. IV).
     */
    std::vector<VnetConfig> afcVnets = {{8, 1}, {8, 1}, {16, 1}};
    /** Flits per data packet (64 B block / 32-bit flits + header). */
    int dataPacketFlits = 9;
    /** Flits per control packet. */
    int controlPacketFlits = 1;
    /** Injection-queue capacity per vnet at each NIC (flits). */
    int injectionQueueDepth = 64;
    /**
     * NIC ejection bandwidth (flits/cycle) for deflection-based
     * routers, which cannot buffer at-destination flits; losers are
     * deflected back into the network. Buffered routers eject
     * through the crossbar (1 flit/cycle/output) regardless.
     */
    int ejectPerCycle = 1;
    /**
     * Source retransmission-buffer capacity (flits) for the
     * drop-based backpressureless variant.
     */
    int dropRetransmitBuffer = 32;
    AfcConfig afc;
    EnergyConfig energy;
    FaultSpec faults;
    ReliabilitySpec reliability;
    WatchdogSpec watchdog;
    ObsSpec obs;
    std::uint64_t seed = 1;
    /**
     * Use deterministic oldest-first deflection priorities instead
     * of the paper's randomized (Chaos-style) priorities (ablation).
     */
    bool oldestFirstDeflection = false;
    /**
     * Activity-tracked scheduler (`sim.idle_skip`): Network::step()
     * iterates only routers with work; quiescent routers are replayed
     * lazily (Router::advanceIdle) when an arrival wakes them or an
     * observer needs their state. Bit-identical to the full scan on
     * every exported counter (tests/sched_equiv_test.cc); the knob
     * exists for differential testing and perf triage, not tuning.
     */
    bool idleSkip = true;
    /**
     * Cycle-kernel shard count (`sim.shards`, `--shards`): the mesh
     * is partitioned into `shards` contiguous node ranges stepped by
     * one worker thread each, with a barrier per pipeline phase and
     * staged cross-shard hand-off (docs/ARCHITECTURE.md). Purely an
     * execution knob: every export is byte-identical for any value
     * (tests/sched_equiv_test.cc), it is excluded from the checkpoint
     * config hash, and values above the node count are clamped.
     */
    int shards = 1;

    int numNodes() const { return width * height; }
    int numVnets() const { return static_cast<int>(vnets.size()); }

    /** Total VCs per physical port for a given VC shape. */
    static int
    totalVcs(const std::vector<VnetConfig> &shape)
    {
        int n = 0;
        for (const auto &v : shape)
            n += v.numVcs;
        return n;
    }

    /** Total buffer flits per physical port for a given VC shape. */
    static int
    totalBufferFlits(const std::vector<VnetConfig> &shape)
    {
        int n = 0;
        for (const auto &v : shape)
            n += v.numVcs * v.bufferDepth;
        return n;
    }

    /** Validate invariants; throws ConfigError on bad configs. */
    void validate() const;
};

/**
 * Flit widths in bits (Sec. IV): 32 data bits plus control bits —
 * 9 (backpressured), 13 (backpressureless), 17 (AFC) — for totals of
 * 41 / 45 / 49 bits. These feed the energy model only.
 */
struct FlitWidths
{
    static constexpr int kData = 32;
    static constexpr int kBackpressured = 41;
    static constexpr int kBackpressureless = 45;
    static constexpr int kAfc = 49;

    /** Width used by a given flow-control mechanism. */
    static int forFlowControl(FlowControl fc);
};


/**
 * Scenario description for open-loop synthetic-traffic experiments.
 */
struct OpenLoopConfig
{
    double injectionRate = 0.1;   ///< flits/node/cycle offered
    std::string pattern = "uniform";
    Cycle warmupCycles = 10000;
    Cycle measureCycles = 30000;
    Cycle drainCycles = 100000;   ///< max extra cycles to drain
    double dataPacketFraction = 0.35; ///< remainder are 1-flit control
};

/**
 * Tiny "key=value" command-line option parser used by examples and
 * benches so runs are reproducible from the shell.
 */
class Options
{
  public:
    Options(int argc, char **argv);

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &fallback) const;
    long getInt(const std::string &key, long fallback) const;
    double getDouble(const std::string &key, double fallback) const;

  private:
    std::vector<std::pair<std::string, std::string>> kv_;
};

} // namespace afcsim

#endif // AFCSIM_COMMON_CONFIG_HH
