#include "common/configfile.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "common/log.hh"

namespace afcsim
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

double
toDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        AFCSIM_CONFIG_ERROR("config key '", key, "': bad number '", value,
                     "'");
    return v;
}

long
toInt(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        AFCSIM_CONFIG_ERROR("config key '", key, "': bad integer '", value,
                     "'");
    return v;
}

bool
toBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    AFCSIM_CONFIG_ERROR("config key '", key, "': bad boolean '", value, "'");
}

} // namespace

std::vector<VnetConfig>
parseVnetShape(const std::string &value)
{
    std::vector<VnetConfig> shape;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        item = trim(item);
        auto x = item.find('x');
        if (x == std::string::npos)
            AFCSIM_CONFIG_ERROR("VC shape entry '", item,
                         "' is not of the form NxD");
        VnetConfig v;
        v.numVcs = static_cast<int>(
            toInt("vnets", trim(item.substr(0, x))));
        v.bufferDepth = static_cast<int>(
            toInt("vnets", trim(item.substr(x + 1))));
        shape.push_back(v);
    }
    if (shape.empty())
        AFCSIM_CONFIG_ERROR("empty VC shape");
    return shape;
}

NetworkConfig &
applyConfigKey(NetworkConfig &cfg, const std::string &key,
               const std::string &value)
{
    // Top-level network parameters.
    if (key == "width") {
        cfg.width = static_cast<int>(toInt(key, value));
    } else if (key == "height") {
        cfg.height = static_cast<int>(toInt(key, value));
    } else if (key == "link_latency") {
        cfg.linkLatency = static_cast<int>(toInt(key, value));
    } else if (key == "vnets") {
        cfg.vnets = parseVnetShape(value);
    } else if (key == "afc_vnets") {
        cfg.afcVnets = parseVnetShape(value);
    } else if (key == "data_packet_flits") {
        cfg.dataPacketFlits = static_cast<int>(toInt(key, value));
    } else if (key == "control_packet_flits") {
        cfg.controlPacketFlits = static_cast<int>(toInt(key, value));
    } else if (key == "injection_queue_depth") {
        cfg.injectionQueueDepth = static_cast<int>(toInt(key, value));
    } else if (key == "eject_per_cycle") {
        cfg.ejectPerCycle = static_cast<int>(toInt(key, value));
    } else if (key == "drop_retransmit_buffer") {
        cfg.dropRetransmitBuffer = static_cast<int>(toInt(key, value));
    } else if (key == "seed") {
        cfg.seed = static_cast<std::uint64_t>(toInt(key, value));
    } else if (key == "oldest_first_deflection") {
        cfg.oldestFirstDeflection = toBool(key, value);
    } else if (key == "sim.idle_skip") {
        cfg.idleSkip = toBool(key, value);
    } else if (key == "sim.shards") {
        cfg.shards = static_cast<int>(toInt(key, value));
    // AFC policy parameters.
    } else if (key == "afc.ewma_weight") {
        cfg.afc.ewmaWeight = toDouble(key, value);
    } else if (key == "afc.corner_high") {
        cfg.afc.cornerHigh = toDouble(key, value);
    } else if (key == "afc.corner_low") {
        cfg.afc.cornerLow = toDouble(key, value);
    } else if (key == "afc.edge_high") {
        cfg.afc.edgeHigh = toDouble(key, value);
    } else if (key == "afc.edge_low") {
        cfg.afc.edgeLow = toDouble(key, value);
    } else if (key == "afc.center_high") {
        cfg.afc.centerHigh = toDouble(key, value);
    } else if (key == "afc.center_low") {
        cfg.afc.centerLow = toDouble(key, value);
    } else if (key == "afc.gossip_reserve") {
        cfg.afc.gossipReserve = static_cast<int>(toInt(key, value));
    } else if (key == "afc.always_backpressured") {
        cfg.afc.alwaysBackpressured = toBool(key, value);
    // Threshold-adaptation knobs (afc_adaptive, DESIGN.md S22).
    } else if (key == "afc.adapt.probe_interval") {
        cfg.afc.adapt.probeInterval =
            static_cast<Cycle>(toInt(key, value));
    } else if (key == "afc.adapt.probe_window") {
        cfg.afc.adapt.probeWindow = static_cast<Cycle>(toInt(key, value));
    } else if (key == "afc.adapt.gain") {
        cfg.afc.adapt.gain = toDouble(key, value);
    } else if (key == "afc.adapt.min_scale") {
        cfg.afc.adapt.minScale = toDouble(key, value);
    } else if (key == "afc.adapt.max_scale") {
        cfg.afc.adapt.maxScale = toDouble(key, value);
    } else if (key == "afc.adapt.gap_floor") {
        cfg.afc.adapt.gapFloor = toDouble(key, value);
    // Energy-model coefficients.
    } else if (key == "energy.buffer_write_per_bit") {
        cfg.energy.bufferWritePerBit = toDouble(key, value);
    } else if (key == "energy.buffer_read_per_bit") {
        cfg.energy.bufferReadPerBit = toDouble(key, value);
    } else if (key == "energy.crossbar_per_bit") {
        cfg.energy.crossbarPerBit = toDouble(key, value);
    } else if (key == "energy.link_per_bit_per_mm") {
        cfg.energy.linkPerBitPerMm = toDouble(key, value);
    } else if (key == "energy.link_length_mm") {
        cfg.energy.linkLengthMm = toDouble(key, value);
    } else if (key == "energy.arbiter_per_alloc") {
        cfg.energy.arbiterPerAlloc = toDouble(key, value);
    } else if (key == "energy.latch_per_bit") {
        cfg.energy.latchPerBit = toDouble(key, value);
    } else if (key == "energy.buffer_leak_per_bit_cycle") {
        cfg.energy.bufferLeakPerBitCycle = toDouble(key, value);
    } else if (key == "energy.buffer_depth_energy_slope") {
        cfg.energy.bufferDepthEnergySlope = toDouble(key, value);
    } else if (key == "energy.router_idle_per_cycle") {
        cfg.energy.routerIdlePerCycle = toDouble(key, value);
    } else if (key == "energy.credit_per_hop") {
        cfg.energy.creditPerHop = toDouble(key, value);
    } else if (key == "energy.power_gating_efficiency") {
        cfg.energy.powerGatingEfficiency = toDouble(key, value);
    // Fault-injection knobs (src/fault).
    } else if (key == "fault.corrupt_rate") {
        cfg.faults.corruptRate = toDouble(key, value);
    } else if (key == "fault.link_down_rate") {
        cfg.faults.linkDownRate = toDouble(key, value);
    } else if (key == "fault.link_down_min") {
        cfg.faults.linkDownMinCycles = toInt(key, value);
    } else if (key == "fault.link_down_max") {
        cfg.faults.linkDownMaxCycles = toInt(key, value);
    } else if (key == "fault.stall_rate") {
        cfg.faults.stallRate = toDouble(key, value);
    } else if (key == "fault.stall_min") {
        cfg.faults.stallMinCycles = toInt(key, value);
    } else if (key == "fault.stall_max") {
        cfg.faults.stallMaxCycles = toInt(key, value);
    } else if (key == "fault.credit_loss_rate") {
        cfg.faults.creditLossRate = toDouble(key, value);
    } else if (key == "fault.fail_at_cycle") {
        cfg.faults.failAtCycle = toInt(key, value);
    // End-to-end retransmission.
    } else if (key == "reliability.enabled") {
        cfg.reliability.enabled = toBool(key, value);
    } else if (key == "reliability.timeout") {
        cfg.reliability.timeoutCycles = toInt(key, value);
    } else if (key == "reliability.backoff") {
        cfg.reliability.backoffFactor = toDouble(key, value);
    } else if (key == "reliability.max_retries") {
        cfg.reliability.maxRetries = static_cast<int>(toInt(key, value));
    } else if (key == "reliability.buffer_packets") {
        cfg.reliability.bufferPackets =
            static_cast<int>(toInt(key, value));
    // Runtime watchdogs.
    } else if (key == "watchdog.enabled") {
        cfg.watchdog.enabled = toBool(key, value);
    } else if (key == "watchdog.interval") {
        cfg.watchdog.intervalCycles = toInt(key, value);
    } else if (key == "watchdog.progress_window") {
        cfg.watchdog.progressWindowCycles = toInt(key, value);
    } else if (key == "watchdog.max_flit_age") {
        cfg.watchdog.maxFlitAgeCycles = toInt(key, value);
    } else if (key == "watchdog.credit_check") {
        cfg.watchdog.creditCheck = toBool(key, value);
    } else if (key == "watchdog.conservation_check") {
        cfg.watchdog.conservationCheck = toBool(key, value);
    // Observability (src/obs).
    } else if (key == "obs.interval") {
        cfg.obs.sampleInterval = static_cast<Cycle>(toInt(key, value));
    } else if (key == "obs.capacity") {
        cfg.obs.sampleCapacity = static_cast<int>(toInt(key, value));
    } else if (key == "obs.trace") {
        cfg.obs.trace = toBool(key, value);
    } else if (key == "obs.trace_capacity") {
        cfg.obs.traceCapacity = static_cast<int>(toInt(key, value));
    } else if (key == "obs.stream") {
        cfg.obs.streamPath = value;
    } else {
        AFCSIM_CONFIG_ERROR("unknown config key '", key, "'");
    }
    return cfg;
}

NetworkConfig
parseNetworkConfig(const std::string &text)
{
    NetworkConfig cfg;
    std::stringstream ss(text);
    std::string line;
    int lineno = 0;
    while (std::getline(ss, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            AFCSIM_CONFIG_ERROR("config line ", lineno,
                         ": expected 'key = value', got '", line, "'");
        applyConfigKey(cfg, trim(line.substr(0, eq)),
                       trim(line.substr(eq + 1)));
    }
    cfg.validate();
    return cfg;
}

NetworkConfig
loadNetworkConfig(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        AFCSIM_CONFIG_ERROR("cannot open config file '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    return parseNetworkConfig(ss.str());
}

} // namespace afcsim
