/**
 * @file
 * Plain-text configuration loader: lets examples and downstream
 * users describe a NetworkConfig in a small `key = value` file
 * instead of recompiling.
 *
 * Format: one `key = value` pair per line; `#` starts a comment;
 * blank lines ignored. VC shapes use `NxD` lists, e.g.
 * `vnets = 2x8, 2x8, 4x8`. Dotted keys reach the AFC and energy
 * sub-configs (`afc.center_high`, `energy.buffer_leak_per_bit_cycle`).
 * Unknown keys are fatal (typos should not silently disappear).
 */

#ifndef AFCSIM_COMMON_CONFIGFILE_HH
#define AFCSIM_COMMON_CONFIGFILE_HH

#include <string>

#include "common/config.hh"

namespace afcsim
{

/**
 * Apply one `key = value` assignment to a NetworkConfig. Fatal on
 * unknown keys or malformed values. Returns the config for chaining.
 */
NetworkConfig &applyConfigKey(NetworkConfig &cfg,
                              const std::string &key,
                              const std::string &value);

/** Parse a config from file contents (newline-separated pairs). */
NetworkConfig parseNetworkConfig(const std::string &text);

/** Load and parse a config file; fatal if unreadable. */
NetworkConfig loadNetworkConfig(const std::string &path);

/** Parse a "NxD, NxD, ..." VC-shape list. */
std::vector<VnetConfig> parseVnetShape(const std::string &value);

} // namespace afcsim

#endif // AFCSIM_COMMON_CONFIGFILE_HH
