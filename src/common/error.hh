/**
 * @file
 * Recoverable error types. The simulator distinguishes three failure
 * classes:
 *
 *  - ConfigError: bad user input (config files, experiment specs,
 *    CLI overrides). Callers with a user interface catch it, print
 *    the message and exit nonzero.
 *  - SimError: a simulation-state failure — a protocol invariant
 *    violated at runtime, a watchdog firing, an injected fault, or a
 *    run exceeding its cycle budget. The experiment runner catches
 *    it per run so one bad point cannot kill a grid.
 *  - AFCSIM_PANIC (common/log.hh) remains for programmer-error
 *    invariants: wrong call ordering, out-of-range arguments,
 *    construction-time contract violations. Those still abort.
 */

#ifndef AFCSIM_COMMON_ERROR_HH
#define AFCSIM_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

#include "common/log.hh"

namespace afcsim
{

/** Base class for all recoverable afcsim errors. */
class Error : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Bad user input: config files, spec files, CLI options. */
class ConfigError : public Error
{
  public:
    using Error::Error;
};

/**
 * Simulation-state failure: protocol violation, watchdog detection,
 * injected fault, or exhausted cycle budget. Recoverable at the
 * per-run boundary (exp::ParallelRunner) — the network that threw is
 * in an undefined state and must be discarded.
 */
class SimError : public Error
{
  public:
    using Error::Error;
};

/** Throw a SimError with a concatenated message. */
#define AFCSIM_SIM_ERROR(...) \
    throw ::afcsim::SimError(::afcsim::detail::concat(__VA_ARGS__))

/** Throw a SimError unless a simulation-state invariant holds. */
#define AFCSIM_SIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            throw ::afcsim::SimError(::afcsim::detail::concat( \
                __VA_ARGS__)); \
        } \
    } while (0)

/** Throw a ConfigError with a concatenated message. */
#define AFCSIM_CONFIG_ERROR(...) \
    throw ::afcsim::ConfigError(::afcsim::detail::concat(__VA_ARGS__))

} // namespace afcsim

#endif // AFCSIM_COMMON_ERROR_HH
