/**
 * @file
 * Exponentially weighted moving average, plus the windowed-average
 * front end AFC uses for its traffic-intensity metric (Sec. III-B):
 * the raw signal is the flit count averaged over the previous 4
 * cycles, then smoothed as m_new = w * m_old + (1 - w) * l with
 * w = 0.99.
 */

#ifndef AFCSIM_COMMON_EWMA_HH
#define AFCSIM_COMMON_EWMA_HH

#include <array>
#include <cstddef>

#include "common/log.hh"

namespace afcsim
{

/** Plain EWMA: value_new = weight * value_old + (1 - weight) * sample. */
class Ewma
{
  public:
    explicit Ewma(double weight = 0.99, double initial = 0.0)
        : weight_(weight), value_(initial)
    {
        AFCSIM_ASSERT(weight >= 0.0 && weight < 1.0,
                      "EWMA weight must be in [0, 1)");
    }

    /** Fold one sample into the average and return the new value. */
    double
    update(double sample)
    {
        value_ = weight_ * value_ + (1.0 - weight_) * sample;
        return value_;
    }

    double value() const { return value_; }
    double weight() const { return weight_; }

    /** Reset the average to a known value (used on mode switches). */
    void reset(double value = 0.0) { value_ = value; }

  private:
    double weight_;
    double value_;
};

/**
 * AFC's traffic-intensity estimator: a 4-cycle boxcar average of the
 * per-cycle flit count, smoothed by an EWMA. One instance per router.
 */
class TrafficIntensity
{
  public:
    static constexpr std::size_t kWindow = 4;

    explicit TrafficIntensity(double ewma_weight = 0.99)
        : ewma_(ewma_weight)
    {
        window_.fill(0);
    }

    /**
     * Record the number of network flits that traversed the router
     * this cycle and update the smoothed estimate.
     */
    double
    recordCycle(unsigned flits_this_cycle)
    {
        sum_ -= window_[pos_];
        window_[pos_] = flits_this_cycle;
        sum_ += flits_this_cycle;
        pos_ = (pos_ + 1) % kWindow;
        double boxcar = static_cast<double>(sum_) / kWindow;
        return ewma_.update(boxcar);
    }

    /** Current smoothed traffic intensity (flits/cycle). */
    double value() const { return ewma_.value(); }

    /**
     * True when every boxcar slot is zero, i.e. no flit has crossed
     * the router in the last kWindow recorded cycles. While this
     * holds (and no new flits arrive), recordCycle(0) can only decay
     * the estimate — the idle-skip scheduler uses this to prove a
     * sleeping router can never cross a switch-up threshold.
     */
    bool windowClear() const { return sum_ == 0; }

    /** Reset both the window and the EWMA. */
    void
    reset()
    {
        window_.fill(0);
        sum_ = 0;
        pos_ = 0;
        ewma_.reset(0.0);
    }

    /// @name Raw state for bit-exact checkpointing (src/ckpt).
    /// @{
    const std::array<unsigned, kWindow> &rawWindow() const { return window_; }
    std::size_t rawPos() const { return pos_; }
    double rawEwma() const { return ewma_.value(); }

    void
    restoreRaw(const std::array<unsigned, kWindow> &window,
               std::size_t pos, double ewma)
    {
        window_ = window;
        sum_ = 0;
        for (unsigned w : window_)
            sum_ += w;
        pos_ = pos;
        ewma_.reset(ewma);
    }
    /// @}

  private:
    std::array<unsigned, kWindow> window_{};
    unsigned sum_ = 0;
    std::size_t pos_ = 0;
    Ewma ewma_;
};

} // namespace afcsim

#endif // AFCSIM_COMMON_EWMA_HH
