#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace afcsim
{

std::size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return elems_.size();
    if (type_ == Type::Object)
        return members_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    AFCSIM_ASSERT(type_ == Type::Array, "JsonValue::at(index) on non-array");
    return elems_.at(i);
}

void
JsonValue::push(JsonValue v)
{
    AFCSIM_ASSERT(type_ == Type::Array, "JsonValue::push on non-array");
    elems_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    AFCSIM_ASSERT(type_ == Type::Object, "JsonValue::set on non-object");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    AFCSIM_ASSERT(v != nullptr, "missing JSON key '", key, "'");
    return *v;
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

namespace
{

/**
 * Format a double with the shortest representation that round-trips
 * (printf %.17g is exact but noisy; try increasing precision).
 */
std::string
fmtDouble(double d)
{
    if (!std::isfinite(d))
        return "null";
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d)
            break;
    }
    return buf;
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * d, ' ');
        }
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        if (isInt_) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(int_));
            out += buf;
        } else {
            out += fmtDouble(num_);
        }
        break;
      case Type::String:
        out += '"';
        out += escape(str_);
        out += '"';
        break;
      case Type::Array:
        if (elems_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < elems_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            elems_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += escape(members_[i].first);
            out += "\":";
            if (indent > 0)
                out += ' ';
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
JsonValue::operator==(const JsonValue &o) const
{
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == o.bool_;
      case Type::Number:
        if (isInt_ && o.isInt_)
            return int_ == o.int_;
        return num_ == o.num_;
      case Type::String: return str_ == o.str_;
      case Type::Array: return elems_ == o.elems_;
      case Type::Object: return members_ == o.members_;
    }
    return false;
}

namespace
{

/** Recursive-descent JSON parser over a string. */
class Parser
{
  public:
    Parser(const std::string &text) : s_(text) {}

    JsonValue
    run(std::string *error)
    {
        ok_ = true;
        JsonValue v = value();
        skipWs();
        if (ok_ && pos_ != s_.size())
            fail("trailing characters after document");
        if (!ok_) {
            if (error)
                *error = err_;
            return JsonValue();
        }
        return v;
    }

  private:
    void
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            err_ = why + " at offset " + std::to_string(pos_);
        }
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            fail("unexpected end of input");
            return JsonValue();
        }
        char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return JsonValue(string());
        if (literal("true"))
            return JsonValue(true);
        if (literal("false"))
            return JsonValue(false);
        if (literal("null"))
            return JsonValue();
        return number();
    }

    JsonValue
    object()
    {
        consume('{');
        JsonValue obj = JsonValue::object();
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                fail("expected object key");
                return obj;
            }
            std::string key = string();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return obj;
            }
            obj.set(key, value());
            if (!ok_)
                return obj;
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return obj;
            fail("expected ',' or '}' in object");
            return obj;
        }
    }

    JsonValue
    array()
    {
        consume('[');
        JsonValue arr = JsonValue::array();
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            arr.push(value());
            if (!ok_)
                return arr;
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return arr;
            fail("expected ',' or ']' in array");
            return arr;
        }
    }

    std::string
    string()
    {
        consume('"');
        std::string out;
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                break;
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad hex digit in \\u escape");
                        return out;
                    }
                }
                // UTF-8 encode the code point (BMP only; surrogate
                // pairs are passed through as two 3-byte sequences,
                // which round-trips our own escaped control chars).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    JsonValue
    number()
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        bool isInt = true;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isInt = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) {
            fail("expected a value");
            return JsonValue();
        }
        std::string tok = s_.substr(start, pos_ - start);
        char *end = nullptr;
        if (isInt) {
            long long v = std::strtoll(tok.c_str(), &end, 10);
            if (end == tok.c_str() + tok.size())
                return JsonValue(static_cast<std::int64_t>(v));
        }
        double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            fail("malformed number '" + tok + "'");
            return JsonValue();
        }
        return JsonValue(d);
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string err_;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text, std::string *error)
{
    return Parser(text).run(error);
}

} // namespace afcsim
