/**
 * @file
 * Minimal JSON document model used by the experiment subsystem's
 * result export (src/exp). Supports building documents (object keys
 * keep insertion order so emitted files are deterministic and
 * diffable), serializing with full string escaping, and parsing —
 * enough to round-trip our own output and validate emitted artifacts
 * without an external dependency.
 */

#ifndef AFCSIM_COMMON_JSON_HH
#define AFCSIM_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace afcsim
{

/**
 * A JSON value: null, bool, number, string, array or object.
 *
 * Numbers are stored as double plus an integer flag so that counters
 * (flit counts, seeds) serialize without a decimal point and survive
 * a round-trip exactly; non-finite doubles serialize as null (JSON
 * has no NaN/Inf).
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() : type_(Type::Null) {}
    JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    JsonValue(double d) : type_(Type::Number), num_(d) {}
    JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
    JsonValue(std::int64_t i)
        : type_(Type::Number), num_(static_cast<double>(i)),
          isInt_(true), int_(i)
    {
    }
    JsonValue(std::uint64_t u)
        : JsonValue(static_cast<std::int64_t>(u))
    {
    }
    JsonValue(const char *s) : type_(Type::String), str_(s) {}
    JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static JsonValue array() { JsonValue v; v.type_ = Type::Array; return v; }
    static JsonValue object() { JsonValue v; v.type_ = Type::Object; return v; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isInteger() const { return type_ == Type::Number && isInt_; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asDouble() const { return num_; }
    std::int64_t asInt() const { return isInt_ ? int_ : static_cast<std::int64_t>(num_); }
    const std::string &asString() const { return str_; }

    /** Array access. */
    std::size_t size() const;
    const JsonValue &at(std::size_t i) const;
    void push(JsonValue v);

    /** Object access: set() appends or overwrites; find() may be null. */
    void set(const std::string &key, JsonValue v);
    const JsonValue *find(const std::string &key) const;
    /** Object lookup that must succeed (panics otherwise). */
    const JsonValue &at(const std::string &key) const;
    bool has(const std::string &key) const { return find(key) != nullptr; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /**
     * Serialize. `indent` > 0 pretty-prints with that many spaces per
     * level; 0 emits compact single-line JSON. Output is byte-stable
     * for a given document (insertion-ordered keys, fixed number
     * formatting), which the determinism tests rely on.
     */
    std::string dump(int indent = 0) const;

    /** Structural equality (numbers compared exactly). */
    bool operator==(const JsonValue &o) const;
    bool operator!=(const JsonValue &o) const { return !(*this == o); }

    /**
     * Parse a JSON document. On failure returns a Null value and, if
     * `error` is non-null, stores a message with the byte offset.
     */
    static JsonValue parse(const std::string &text,
                           std::string *error = nullptr);

    /** Escape a string body per JSON rules (no surrounding quotes). */
    static std::string escape(const std::string &s);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    bool isInt_ = false;
    std::int64_t int_ = 0;
    std::string str_;
    std::vector<JsonValue> elems_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace afcsim

#endif // AFCSIM_COMMON_JSON_HH
