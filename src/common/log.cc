#include "common/log.hh"

#include <atomic>
#include <cstdio>

namespace afcsim
{

namespace
{

std::atomic<bool> debug_enabled{false};

const char *
prefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setDebugLogging(bool enabled)
{
    debug_enabled.store(enabled, std::memory_order_relaxed);
}

bool
debugLoggingEnabled()
{
    return debug_enabled.load(std::memory_order_relaxed);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", prefix(level), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[panic] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "[fatal] %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

} // namespace afcsim
