/**
 * @file
 * Minimal gem5-style status/error reporting: panic() for internal
 * invariant violations, fatal() for user/configuration errors,
 * warn()/inform() for status messages.
 */

#ifndef AFCSIM_COMMON_LOG_HH
#define AFCSIM_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace afcsim
{

/** Severity of a log message. */
enum class LogLevel { Debug, Inform, Warn, Fatal, Panic };

/**
 * Emit a log line to stderr. Fatal exits with status 1; Panic aborts.
 * Kept out-of-line so the formatting code is not duplicated at every
 * call site.
 */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

/** Global verbosity switch; Debug messages print only when enabled. */
void setDebugLogging(bool enabled);
bool debugLoggingEnabled();

namespace detail
{

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

} // namespace detail

/** Report an internal bug (assert-like) and abort. */
#define AFCSIM_PANIC(...) \
    ::afcsim::panicImpl(__FILE__, __LINE__, \
                        ::afcsim::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/config error and exit(1). */
#define AFCSIM_FATAL(...) \
    ::afcsim::fatalImpl(__FILE__, __LINE__, \
                        ::afcsim::detail::concat(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define AFCSIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::afcsim::panicImpl(__FILE__, __LINE__, \
                ::afcsim::detail::concat("assertion failed: ", #cond, \
                                         " ", ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning to the user. */
template <typename... Args>
void
warn(const Args &...args)
{
    logImpl(LogLevel::Warn, detail::concat(args...));
}

/** Informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logImpl(LogLevel::Inform, detail::concat(args...));
}

/** Debug trace, gated by setDebugLogging(). */
template <typename... Args>
void
debug(const Args &...args)
{
    if (debugLoggingEnabled())
        logImpl(LogLevel::Debug, detail::concat(args...));
}

} // namespace afcsim

#endif // AFCSIM_COMMON_LOG_HH
