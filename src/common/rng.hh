/**
 * @file
 * Deterministic pseudo-random number generation for simulation.
 *
 * We implement PCG32 (O'Neill) rather than using std::mt19937 so that
 * streams are cheap to fork per-router/per-node and results are
 * bit-reproducible across standard libraries.
 */

#ifndef AFCSIM_COMMON_RNG_HH
#define AFCSIM_COMMON_RNG_HH

#include <cstdint>

#include "common/log.hh"

namespace afcsim
{

/**
 * PCG32 generator: 64-bit state, 32-bit output, user-selectable
 * stream. Satisfies enough of UniformRandomBitGenerator for our use.
 */
class Rng
{
  public:
    using result_type = std::uint32_t;

    /** Construct from a seed and a stream id (fork discriminator). */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0u;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return 0xffffffffu; }

    /** Next raw 32-bit value. */
    result_type
    operator()()
    {
        return next();
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        AFCSIM_ASSERT(bound > 0, "Rng::below bound must be positive");
        // Lemire-style rejection to remove modulo bias.
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        AFCSIM_ASSERT(lo <= hi, "Rng::range empty interval");
        std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        if (span == 0) {
            // Full 64-bit span: combine two 32-bit draws.
            std::uint64_t v =
                (static_cast<std::uint64_t>(next()) << 32) | next();
            return static_cast<std::int64_t>(v);
        }
        if (span <= 0xffffffffull)
            return lo + below(static_cast<std::uint32_t>(span));
        std::uint64_t v = (static_cast<std::uint64_t>(next()) << 32) | next();
        return lo + static_cast<std::int64_t>(v % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Geometric "think time": number of whole cycles until the next
     * Bernoulli(p) success, minimum 1. Mean is 1/p for small p.
     */
    std::uint64_t
    geometric(double p)
    {
        AFCSIM_ASSERT(p > 0.0 && p <= 1.0, "geometric needs 0 < p <= 1");
        std::uint64_t n = 1;
        while (!chance(p))
            ++n;
        return n;
    }

    /** Fork a statistically independent child stream. */
    Rng
    fork(std::uint64_t stream_tag)
    {
        std::uint64_t child_seed =
            (static_cast<std::uint64_t>(next()) << 32) | next();
        return Rng(child_seed, stream_tag * 2654435761ULL + 1);
    }

    /**
     * Raw generator state for checkpointing (src/ckpt). fromRaw()
     * reconstructs the exact stream position, bypassing the seeding
     * draws the public constructor performs.
     */
    std::uint64_t rawState() const { return state_; }
    std::uint64_t rawInc() const { return inc_; }

    static Rng
    fromRaw(std::uint64_t state, std::uint64_t inc)
    {
        Rng r;
        r.state_ = state;
        r.inc_ = inc;
        return r;
    }

  private:
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace afcsim

#endif // AFCSIM_COMMON_RNG_HH
