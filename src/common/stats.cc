#include "common/stats.hh"

#include <cstdio>

namespace afcsim
{

std::string
fmtCell(double value, int width, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, value);
    return std::string(buf);
}

std::string
fmtLabel(const std::string &text, int width)
{
    std::string out = text;
    if (static_cast<int>(out.size()) < width)
        out.append(width - out.size(), ' ');
    return out;
}

} // namespace afcsim
