/**
 * @file
 * Lightweight statistics primitives used across the simulator:
 * scalar counters, running mean/stddev, histograms, and a latency
 * accumulator with percentile queries.
 */

#ifndef AFCSIM_COMMON_STATS_HH
#define AFCSIM_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace afcsim
{

/**
 * Running sample statistics (Welford's algorithm): count, mean,
 * variance, min, max — without storing the samples.
 */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++count_;
        double delta = x - mean_;
        mean_ += delta / count_;
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return count_ > 1 ? m2_ / (count_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return mean_ * count_; }

    void
    reset()
    {
        count_ = 0;
        mean_ = 0.0;
        m2_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    /** Merge another RunningStat into this one (parallel merge rule). */
    void
    merge(const RunningStat &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        double delta = other.mean_ - mean_;
        std::uint64_t total = count_ + other.count_;
        m2_ += other.m2_ +
               delta * delta * (static_cast<double>(count_) * other.count_) /
               total;
        mean_ += delta * other.count_ / total;
        count_ = total;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    /// @name Raw state for bit-exact checkpointing (src/ckpt).
    /// @{
    double rawMean() const { return mean_; }
    double rawM2() const { return m2_; }
    double rawMin() const { return min_; }
    double rawMax() const { return max_; }

    void
    restoreRaw(std::uint64_t count, double mean, double m2, double mn,
               double mx)
    {
        count_ = count;
        mean_ = mean;
        m2_ = m2;
        min_ = mn;
        max_ = mx;
    }
    /// @}

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bucket histogram over [0, bucket_width * num_buckets), with
 * an overflow bucket. Used for latency and hop-count distributions.
 */
class Histogram
{
  public:
    Histogram(double bucket_width = 4.0,
              std::size_t num_buckets = 2000)
        : width_(bucket_width), buckets_(num_buckets + 1, 0)
    {
        AFCSIM_ASSERT(bucket_width > 0 && num_buckets > 0,
                      "histogram shape must be positive");
    }

    void
    add(double x)
    {
        stat_.add(x);
        std::size_t idx = x < 0 ? 0
            : static_cast<std::size_t>(x / width_);
        if (idx >= buckets_.size() - 1)
            idx = buckets_.size() - 1; // overflow bucket
        ++buckets_[idx];
    }

    std::uint64_t count() const { return stat_.count(); }
    double mean() const { return stat_.mean(); }
    double max() const { return stat_.max(); }
    const RunningStat &summary() const { return stat_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return width_; }

    /**
     * Approximate p-quantile (0..1) from bucket midpoints. The
     * overflow bucket reports the observed max.
     */
    double
    quantile(double p) const
    {
        if (stat_.count() == 0)
            return 0.0;
        AFCSIM_ASSERT(p >= 0.0 && p <= 1.0, "quantile p out of range");
        std::uint64_t target = static_cast<std::uint64_t>(
            std::ceil(p * stat_.count()));
        target = std::max<std::uint64_t>(target, 1);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen >= target) {
                if (i == buckets_.size() - 1)
                    return stat_.max();
                return (i + 0.5) * width_;
            }
        }
        return stat_.max();
    }

    void
    reset()
    {
        stat_.reset();
        std::fill(buckets_.begin(), buckets_.end(), 0);
    }

    /** Merge a histogram with identical shape. */
    void
    merge(const Histogram &other)
    {
        AFCSIM_ASSERT(other.width_ == width_ &&
                      other.buckets_.size() == buckets_.size(),
                      "histogram shape mismatch in merge");
        for (std::size_t i = 0; i < buckets_.size(); ++i)
            buckets_[i] += other.buckets_[i];
        stat_.merge(other.stat_);
    }

    /// @name Raw state for bit-exact checkpointing (src/ckpt).
    /// @{
    const std::vector<std::uint64_t> &rawBuckets() const { return buckets_; }
    RunningStat &rawSummary() { return stat_; }

    void
    restoreRawBuckets(const std::vector<std::uint64_t> &buckets)
    {
        AFCSIM_ASSERT(buckets.size() == buckets_.size(),
                      "histogram shape mismatch in restore");
        buckets_ = buckets;
    }
    /// @}

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    RunningStat stat_;
};

/**
 * Exact percentile accumulator: stores every sample and answers
 * nearest-rank quantile queries over the sorted set. Complements
 * Histogram, whose bucket-midpoint quantiles are approximate — the
 * search criteria (src/search) need exact p50/p95/p99 so that a
 * pass/fail decision never flips on bucket rounding.
 *
 * Samples are kept unsorted on the hot add() path and sorted lazily
 * on the first quantile() after a mutation.
 */
class PercentileAccumulator
{
  public:
    void
    add(double x)
    {
        samples_.push_back(x);
        sorted_ = samples_.size() == 1;
    }

    std::uint64_t count() const { return samples_.size(); }

    /**
     * Exact nearest-rank p-quantile (0..1): the smallest sample with
     * at least ceil(p * count) samples at or below it. p=0 reports
     * the minimum, p=1 the maximum; an empty accumulator reports 0.
     */
    double
    quantile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        AFCSIM_ASSERT(p >= 0.0 && p <= 1.0, "quantile p out of range");
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(p * static_cast<double>(samples_.size())));
        rank = std::max<std::size_t>(rank, 1);
        rank = std::min(rank, samples_.size());
        return samples_[rank - 1];
    }

    void
    reset()
    {
        samples_.clear();
        sorted_ = true;
    }

    void
    merge(const PercentileAccumulator &other)
    {
        if (other.samples_.empty())
            return;
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        sorted_ = false;
    }

    /// @name Raw state for bit-exact checkpointing (src/ckpt).
    /// Samples are preserved in stored (possibly unsorted) order so a
    /// restored accumulator sorts at exactly the same point the
    /// uninterrupted one would.
    /// @{
    const std::vector<double> &rawSamples() const { return samples_; }
    bool rawSorted() const { return sorted_; }

    void
    restoreRaw(std::vector<double> samples, bool sorted)
    {
        samples_ = std::move(samples);
        sorted_ = sorted;
    }
    /// @}

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * End-to-end network statistics accumulated by a NIC / harness:
 * packet and flit latency, hops, deflections, counts.
 */
struct NetStats
{
    std::uint64_t flitsInjected = 0;
    std::uint64_t flitsDelivered = 0;
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsDelivered = 0;
    RunningStat packetLatency;   ///< injection-queue entry to last flit
    Histogram packetLatencyHist; ///< same signal, bucketed distribution
    PercentileAccumulator packetLatencyPct; ///< same signal, exact quantiles
    RunningStat flitLatency;     ///< network entry to delivery, per flit
    RunningStat hops;            ///< per delivered flit
    RunningStat deflections;     ///< per delivered flit
    std::uint64_t totalDeflections = 0;
    /// @name End-to-end reliability counters (src/fault).
    /// @{
    std::uint64_t flitsCorrupted = 0;    ///< discarded: bad checksum
    std::uint64_t flitsDuplicate = 0;    ///< discarded: already seen
    std::uint64_t flitsRetransmitted = 0;///< flits re-enqueued
    std::uint64_t packetsRetransmitted = 0; ///< retransmit events
    std::uint64_t packetsFailed = 0;     ///< gave up after maxRetries
    std::uint64_t retransmitOverflows = 0; ///< sent unprotected
    /// @}

    void
    reset()
    {
        *this = NetStats{};
    }

    void
    merge(const NetStats &o)
    {
        flitsInjected += o.flitsInjected;
        flitsDelivered += o.flitsDelivered;
        packetsInjected += o.packetsInjected;
        packetsDelivered += o.packetsDelivered;
        packetLatency.merge(o.packetLatency);
        packetLatencyHist.merge(o.packetLatencyHist);
        packetLatencyPct.merge(o.packetLatencyPct);
        flitLatency.merge(o.flitLatency);
        hops.merge(o.hops);
        deflections.merge(o.deflections);
        totalDeflections += o.totalDeflections;
        flitsCorrupted += o.flitsCorrupted;
        flitsDuplicate += o.flitsDuplicate;
        flitsRetransmitted += o.flitsRetransmitted;
        packetsRetransmitted += o.packetsRetransmitted;
        packetsFailed += o.packetsFailed;
        retransmitOverflows += o.retransmitOverflows;
    }
};

/** Format helper: fixed-width right-aligned number cell for tables. */
std::string fmtCell(double value, int width = 10, int precision = 3);

/** Format helper: fixed-width left-aligned text cell. */
std::string fmtLabel(const std::string &text, int width = 18);

} // namespace afcsim

#endif // AFCSIM_COMMON_STATS_HH
