#include "common/statsio.hh"

namespace afcsim
{

JsonValue
toJson(const RunningStat &s)
{
    JsonValue o = JsonValue::object();
    o.set("count", JsonValue(s.count()));
    if (s.count() > 0) {
        o.set("mean", JsonValue(s.mean()));
        o.set("stddev", JsonValue(s.stddev()));
        o.set("min", JsonValue(s.min()));
        o.set("max", JsonValue(s.max()));
        o.set("sum", JsonValue(s.sum()));
    }
    return o;
}

JsonValue
toJson(const Histogram &h, bool include_buckets)
{
    JsonValue o = toJson(h.summary());
    if (h.count() > 0) {
        o.set("p50", JsonValue(h.quantile(0.50)));
        o.set("p90", JsonValue(h.quantile(0.90)));
        o.set("p99", JsonValue(h.quantile(0.99)));
        o.set("p999", JsonValue(h.quantile(0.999)));
    }
    if (include_buckets) {
        o.set("bucket_width", JsonValue(h.bucketWidth()));
        JsonValue buckets = JsonValue::array();
        for (std::size_t i = 0; i < h.numBuckets(); ++i)
            buckets.push(JsonValue(h.bucket(i)));
        o.set("buckets", std::move(buckets));
    }
    return o;
}

JsonValue
toJson(const NetStats &n)
{
    JsonValue o = JsonValue::object();
    o.set("flits_injected", JsonValue(n.flitsInjected));
    o.set("flits_delivered", JsonValue(n.flitsDelivered));
    o.set("packets_injected", JsonValue(n.packetsInjected));
    o.set("packets_delivered", JsonValue(n.packetsDelivered));
    o.set("packet_latency", toJson(n.packetLatencyHist));
    if (n.packetLatencyPct.count() > 0) {
        // Exact nearest-rank quantiles (PercentileAccumulator), as
        // opposed to the bucket-midpoint approximations above.
        o.set("p50_exact", JsonValue(n.packetLatencyPct.quantile(0.50)));
        o.set("p95_exact", JsonValue(n.packetLatencyPct.quantile(0.95)));
        o.set("p99_exact", JsonValue(n.packetLatencyPct.quantile(0.99)));
    }
    o.set("flit_latency", toJson(n.flitLatency));
    o.set("hops", toJson(n.hops));
    o.set("deflections", toJson(n.deflections));
    o.set("total_deflections", JsonValue(n.totalDeflections));
    o.set("flits_corrupted", JsonValue(n.flitsCorrupted));
    o.set("flits_duplicate", JsonValue(n.flitsDuplicate));
    o.set("flits_retransmitted", JsonValue(n.flitsRetransmitted));
    o.set("packets_retransmitted", JsonValue(n.packetsRetransmitted));
    o.set("packets_failed", JsonValue(n.packetsFailed));
    o.set("retransmit_overflows", JsonValue(n.retransmitOverflows));
    return o;
}

JsonValue
toJson(const EnergyReport &e)
{
    JsonValue o = JsonValue::object();
    o.set("total_pj", JsonValue(e.total()));
    o.set("buffer_pj", JsonValue(e.bufferEnergy()));
    o.set("link_pj", JsonValue(e.linkEnergy()));
    o.set("rest_pj", JsonValue(e.restEnergy()));
    JsonValue by = JsonValue::object();
    int n = static_cast<int>(EnergyComponent::NumComponents);
    for (int c = 0; c < n; ++c) {
        by.set(componentName(static_cast<EnergyComponent>(c)),
               JsonValue(e.byComponent[c]));
    }
    o.set("by_component", std::move(by));
    return o;
}

std::string
csvEscape(const std::string &field)
{
    bool needs_quotes = false;
    for (char c : field) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs_quotes = true;
            break;
        }
    }
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

std::string
csvRow(const std::vector<std::string> &fields)
{
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ',';
        out += csvEscape(fields[i]);
    }
    out += '\n';
    return out;
}

} // namespace afcsim
