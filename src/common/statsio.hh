/**
 * @file
 * Serialization of the statistics primitives (RunningStat, Histogram,
 * NetStats, EnergyReport) to JSON documents and CSV fields, shared by
 * the experiment result sinks (src/exp) and any tool that exports
 * machine-readable stats.
 */

#ifndef AFCSIM_COMMON_STATSIO_HH
#define AFCSIM_COMMON_STATSIO_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "energy/energy.hh"

namespace afcsim
{

/** {count, mean, stddev, min, max, sum}. Empty stats omit moments. */
JsonValue toJson(const RunningStat &s);

/**
 * Histogram summary: the RunningStat moments plus the standard
 * latency quantiles (p50/p90/p99/p999). `include_buckets` adds the
 * raw bucket array (width + counts, overflow last) for tools that
 * re-plot distributions.
 */
JsonValue toJson(const Histogram &h, bool include_buckets = false);

/** Full end-to-end network stats block. */
JsonValue toJson(const NetStats &n);

/**
 * Energy report: total, the paper's buffer/link/rest breakdown, and
 * the per-component detail map.
 */
JsonValue toJson(const EnergyReport &e);

/** Escape one CSV field (RFC 4180: quote when needed, double quotes). */
std::string csvEscape(const std::string &field);

/** Join escaped fields with commas and terminate with newline. */
std::string csvRow(const std::vector<std::string> &fields);

} // namespace afcsim

#endif // AFCSIM_COMMON_STATSIO_HH
