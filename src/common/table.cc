#include "common/table.hh"

#include "common/stats.hh"

namespace afcsim
{

int
TextTable::width(std::size_t col) const
{
    if (col < widths_.size() && widths_[col] > 0)
        return widths_[col];
    return cellWidth_;
}

std::string
TextTable::formatRow(const std::string &label,
                     const std::vector<std::string> &cells) const
{
    std::string out = label;
    if (static_cast<int>(out.size()) < labelWidth_)
        out.append(labelWidth_ - out.size(), ' ');
    for (std::size_t i = 0; i < cells.size(); ++i) {
        int w = width(i);
        if (static_cast<int>(cells[i].size()) < w)
            out.append(w - cells[i].size(), ' ');
        out += cells[i];
    }
    out += '\n';
    return out;
}

std::string
TextTable::renderHeader() const
{
    return formatRow("", columns_);
}

std::string
TextTable::renderRow(std::size_t i) const
{
    const Row &r = rows_.at(i);
    return formatRow(r.label, r.cells);
}

std::string
TextTable::render() const
{
    std::string out;
    if (!columns_.empty())
        out += renderHeader();
    for (std::size_t i = 0; i < rows_.size(); ++i)
        out += renderRow(i);
    return out;
}

void
TextTable::print(std::FILE *out) const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), out);
}

std::string
TextTable::num(double value, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::integer(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

std::string
TextTable::meanStd(const RunningStat &s, int precision)
{
    if (s.count() > 1)
        return num(s.mean(), precision) + "+-" + num(s.stddev(), precision);
    return num(s.mean(), precision);
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(100.0 * fraction, precision) + "%";
}

} // namespace afcsim
