/**
 * @file
 * Structured text-table rendering. Benches and the experiment result
 * layer build tables as rows of cells (strings or formatted numbers)
 * and render them in one place, instead of scattering printf format
 * strings through every binary. A table can be rendered as a whole
 * or streamed row-by-row (the bench binaries print progressively).
 */

#ifndef AFCSIM_COMMON_TABLE_HH
#define AFCSIM_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace afcsim
{

class RunningStat;

/**
 * A fixed-layout table: one left-aligned label column plus N
 * right-aligned value columns of a default (or per-column) width.
 * Cells wider than their column push the row out rather than
 * truncate, matching printf("%*s") behaviour.
 */
class TextTable
{
  public:
    explicit TextTable(int label_width = 14, int cell_width = 12)
        : labelWidth_(label_width), cellWidth_(cell_width)
    {
    }

    /** Set the value-column headers (rendered above the rows). */
    void
    setColumns(std::vector<std::string> names)
    {
        columns_ = std::move(names);
    }

    /** Per-column width override; unset columns use the default. */
    void
    setColumnWidths(std::vector<int> widths)
    {
        widths_ = std::move(widths);
    }

    /** Append a data row. */
    void
    addRow(std::string label, std::vector<std::string> cells)
    {
        rows_.push_back({std::move(label), std::move(cells)});
    }

    std::size_t numRows() const { return rows_.size(); }

    /** Render the header line (labels column blank). */
    std::string renderHeader() const;
    /** Render one stored row. */
    std::string renderRow(std::size_t i) const;
    /** Render header + all rows, newline-terminated. */
    std::string render() const;
    /** Convenience: render() to a stdio stream. */
    void print(std::FILE *out = stdout) const;

    /** Format a row without storing it (streaming printers). */
    std::string formatRow(const std::string &label,
                          const std::vector<std::string> &cells) const;

    // --- Cell factories -------------------------------------------

    /** Fixed-precision numeric cell. */
    static std::string num(double value, int precision = 3);
    /** Integer cell. */
    static std::string integer(long long value);
    /** "mean+-std" cell when the stat has >1 sample, else the mean. */
    static std::string meanStd(const RunningStat &s, int precision = 3);
    /** Percentage cell: 0.153 -> "15.3%". */
    static std::string percent(double fraction, int precision = 1);

  private:
    int width(std::size_t col) const;

    struct Row
    {
        std::string label;
        std::vector<std::string> cells;
    };

    int labelWidth_;
    int cellWidth_;
    std::vector<std::string> columns_;
    std::vector<int> widths_;
    std::vector<Row> rows_;
};

} // namespace afcsim

#endif // AFCSIM_COMMON_TABLE_HH
