/**
 * @file
 * Fundamental scalar types shared by every afcsim module.
 */

#ifndef AFCSIM_COMMON_TYPES_HH
#define AFCSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace afcsim
{

/** Simulation time, measured in router clock cycles. */
using Cycle = std::uint64_t;

/** Identifier of a network node (router + NIC + core + L2 bank). */
using NodeId = std::int32_t;

/** Identifier of a packet, unique network-wide for a run. */
using PacketId = std::uint64_t;

/** Virtual-network index (0, 1 = control; 2 = data by convention). */
using VnetId = std::int8_t;

/** Virtual-channel index within a physical port. */
using VcId = std::int16_t;

/** Physical port index on a router. */
using PortId = std::int8_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** Sentinel for "no port". */
inline constexpr PortId kInvalidPort = -1;

/** Sentinel for "no virtual channel allocated yet" (lazy VCA). */
inline constexpr VcId kInvalidVc = -1;

/** Sentinel cycle value meaning "never". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

} // namespace afcsim

#endif // AFCSIM_COMMON_TYPES_HH
