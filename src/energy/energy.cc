#include "energy/energy.hh"

#include "common/log.hh"

namespace afcsim
{

std::string
componentName(EnergyComponent c)
{
    switch (c) {
      case EnergyComponent::BufferWrite: return "buffer-write";
      case EnergyComponent::BufferRead: return "buffer-read";
      case EnergyComponent::BufferLeak: return "buffer-leak";
      case EnergyComponent::LatchWrite: return "latch-write";
      case EnergyComponent::Crossbar: return "crossbar";
      case EnergyComponent::Arbiter: return "arbiter";
      case EnergyComponent::Link: return "link";
      case EnergyComponent::Credit: return "credit";
      case EnergyComponent::RouterIdle: return "router-idle";
      case EnergyComponent::NumComponents: break;
    }
    return "?";
}

double
EnergyReport::total() const
{
    double t = 0.0;
    for (double v : byComponent)
        t += v;
    return t;
}

double
EnergyReport::bufferEnergy() const
{
    return component(EnergyComponent::BufferWrite) +
           component(EnergyComponent::BufferRead) +
           component(EnergyComponent::BufferLeak);
}

double
EnergyReport::linkEnergy() const
{
    return component(EnergyComponent::Link);
}

double
EnergyReport::restEnergy() const
{
    return total() - bufferEnergy() - linkEnergy();
}

void
EnergyReport::merge(const EnergyReport &other)
{
    for (std::size_t i = 0; i < byComponent.size(); ++i)
        byComponent[i] += other.byComponent[i];
}

EnergyReport
EnergyReport::diff(const EnergyReport &baseline) const
{
    EnergyReport out = *this;
    for (std::size_t i = 0; i < out.byComponent.size(); ++i)
        out.byComponent[i] -= baseline.byComponent[i];
    return out;
}

EnergyLedger::EnergyLedger(const EnergyConfig &cfg, int flit_width_bits,
                           bool ideal_buffer_bypass,
                           double buffer_access_factor)
    : cfg_(cfg), width_(flit_width_bits),
      idealBypass_(ideal_buffer_bypass),
      accessFactor_(buffer_access_factor)
{
    AFCSIM_ASSERT(flit_width_bits > 0, "flit width must be positive");
    AFCSIM_ASSERT(buffer_access_factor >= 1.0,
                  "depth factor cannot be below the 1-flit cost");
}

void
EnergyLedger::bufferWrite()
{
    if (!idealBypass_) {
        add(EnergyComponent::BufferWrite,
            cfg_.bufferWritePerBit * width_ * accessFactor_);
    }
}

void
EnergyLedger::bufferRead()
{
    if (!idealBypass_) {
        add(EnergyComponent::BufferRead,
            cfg_.bufferReadPerBit * width_ * accessFactor_);
    }
}

void
EnergyLedger::latchWrite()
{
    add(EnergyComponent::LatchWrite, cfg_.latchPerBit * width_);
}

void
EnergyLedger::crossbar()
{
    add(EnergyComponent::Crossbar, cfg_.crossbarPerBit * width_);
}

void
EnergyLedger::arbitrate()
{
    add(EnergyComponent::Arbiter, cfg_.arbiterPerAlloc);
}

void
EnergyLedger::linkTraversal()
{
    add(EnergyComponent::Link,
        cfg_.linkPerBitPerMm * cfg_.linkLengthMm * width_);
}

void
EnergyLedger::creditSignal()
{
    add(EnergyComponent::Credit, cfg_.creditPerHop);
}

void
EnergyLedger::leakCycle(std::int64_t powered_buffer_bits,
                        std::int64_t gated_buffer_bits)
{
    double leak = cfg_.bufferLeakPerBitCycle *
        (static_cast<double>(powered_buffer_bits) +
         (1.0 - cfg_.powerGatingEfficiency) *
         static_cast<double>(gated_buffer_bits));
    add(EnergyComponent::BufferLeak, leak);
    add(EnergyComponent::RouterIdle, cfg_.routerIdlePerCycle);
}

} // namespace afcsim
