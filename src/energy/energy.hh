/**
 * @file
 * Orion-style analytical network energy accounting (Sec. IV "Energy
 * Modeling"). Each router owns an EnergyLedger; microarchitectural
 * events (buffer read/write, latch write, crossbar and link
 * traversal, arbitration, credit signaling) deposit energy scaled by
 * the mechanism's flit width (41/45/49 bits). Leakage accrues per
 * cycle against the powered buffer capacity; AFC's backpressureless
 * mode power-gates buffers at 90 % effectiveness.
 *
 * Receive-side (MSHR) reassembly buffers are excluded, as in the
 * paper, because they are identical across mechanisms.
 */

#ifndef AFCSIM_ENERGY_ENERGY_HH
#define AFCSIM_ENERGY_ENERGY_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/types.hh"

namespace afcsim
{

/** Energy components tracked separately (Fig. 3 breakdown + detail). */
enum class EnergyComponent : int
{
    BufferWrite = 0,
    BufferRead,
    BufferLeak,
    LatchWrite,
    Crossbar,
    Arbiter,
    Link,
    Credit,
    RouterIdle,
    NumComponents,
};

/** Name of an energy component for reports. */
std::string componentName(EnergyComponent c);

/**
 * Aggregated energy totals in pJ, with the paper's three-way
 * breakdown: buffer energy, link energy, rest-of-router energy.
 */
struct EnergyReport
{
    std::array<double, static_cast<int>(EnergyComponent::NumComponents)>
        byComponent{};

    double total() const;
    /** Buffer energy: write + read + leakage (Fig. 3 category). */
    double bufferEnergy() const;
    /** Link energy (Fig. 3 category). */
    double linkEnergy() const;
    /** Rest of router: crossbar, arbiters, latches, credits, idle. */
    double restEnergy() const;

    void merge(const EnergyReport &other);

    /** Component-wise difference (for measurement windows). */
    EnergyReport diff(const EnergyReport &baseline) const;

    double
    component(EnergyComponent c) const
    {
        return byComponent[static_cast<int>(c)];
    }
};

/**
 * Per-router energy meter. All event costs are computed from an
 * EnergyConfig and the flit width of the flow-control mechanism in
 * use. `idealBufferBypass` zeroes dynamic buffer energy (the
 * Backpressured-ideal-bypass lower bound of Sec. V-A).
 */
class EnergyLedger
{
  public:
    /**
     * @param buffer_access_factor depth-dependent multiplier on
     *        buffer read/write energy (1.0 for 1-flit-deep VCs).
     */
    EnergyLedger(const EnergyConfig &cfg, int flit_width_bits,
                 bool ideal_buffer_bypass = false,
                 double buffer_access_factor = 1.0);

    /** A flit written into an input buffer. */
    void bufferWrite();
    /** A flit read out of an input buffer. */
    void bufferRead();
    /** A flit latched in a backpressureless pipeline register. */
    void latchWrite();
    /** A flit traversing the crossbar switch. */
    void crossbar();
    /** One switch/VC arbitration decision. */
    void arbitrate();
    /** A flit traversing an inter-router link. */
    void linkTraversal();
    /** A credit (or 1-bit control) signal sent upstream. */
    void creditSignal();

    /**
     * Per-cycle static accounting: `powered_buffer_bits` is the
     * buffer capacity currently drawing full leakage; gated bits
     * leak at (1 - powerGatingEfficiency) of the full rate.
     */
    void leakCycle(std::int64_t powered_buffer_bits,
                   std::int64_t gated_buffer_bits);

    const EnergyReport &report() const { return report_; }
    int flitWidth() const { return width_; }

    void reset() { report_ = EnergyReport{}; }

    /** Overwrite the accumulated report (checkpoint restore). */
    void restoreReport(const EnergyReport &r) { report_ = r; }

  private:
    void
    add(EnergyComponent c, double pj)
    {
        report_.byComponent[static_cast<int>(c)] += pj;
    }

    const EnergyConfig cfg_;
    int width_;
    bool idealBypass_;
    double accessFactor_;
    EnergyReport report_;
};

} // namespace afcsim

#endif // AFCSIM_ENERGY_ENERGY_HH
