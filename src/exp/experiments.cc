#include "exp/experiments.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace afcsim::exp
{

ExperimentSpec
openloopSweepExperiment()
{
    ExperimentSpec spec;
    spec.name = "openloop_sweep";
    spec.description =
        "Open-loop uniform random: latency vs offered load (Sec. V)";
    spec.kind = RunKind::OpenLoop;
    spec.configs = {FlowControl::Backpressured,
                    FlowControl::Backpressureless, FlowControl::Afc};
    spec.rateSweep(0.05, 0.85);
    spec.warmupCycles = 4000;
    spec.measureCycles = 12000;
    spec.baseSeed = 1;
    return spec;
}

ExperimentSpec
fig2LowLoadExperiment()
{
    ExperimentSpec spec;
    spec.name = "fig2_low_load";
    spec.description =
        "Fig. 2(a)/(b): performance and network energy, low-load "
        "SPLASH-2 workloads, normalized to backpressured";
    spec.kind = RunKind::ClosedLoop;
    spec.configs = {FlowControl::Backpressured,
                    FlowControl::Backpressureless,
                    FlowControl::AfcAlwaysBackpressured,
                    FlowControl::Afc,
                    FlowControl::BackpressuredIdealBypass};
    spec.workloads = {"barnes", "ocean", "water"};
    spec.baseSeed = 7;
    return spec;
}

ExperimentSpec
fig2HighLoadExperiment()
{
    ExperimentSpec spec;
    spec.name = "fig2_high_load";
    spec.description =
        "Fig. 2(c)/(d): performance and network energy, high-load "
        "commercial workloads, normalized to backpressured";
    spec.kind = RunKind::ClosedLoop;
    spec.configs = {FlowControl::Backpressured,
                    FlowControl::Backpressureless,
                    FlowControl::AfcAlwaysBackpressured,
                    FlowControl::Afc};
    spec.workloads = {"apache", "oltp", "specjbb"};
    spec.baseSeed = 7;
    return spec;
}

ExperimentSpec
scalingExperiment()
{
    ExperimentSpec spec;
    spec.name = "scaling";
    spec.description =
        "Conclusion scaling study: 3x3/4x4/5x5 CMPs, per-node "
        "transaction pressure held constant";
    spec.kind = RunKind::ClosedLoop;
    spec.configs = {FlowControl::Backpressured,
                    FlowControl::Backpressureless, FlowControl::Afc};
    spec.workloads = {"water", "apache"};
    spec.meshSizes = {3, 4, 5};
    spec.scale = 0.5;
    spec.scaleWithMesh = true;
    spec.baseSeed = 7;
    return spec;
}

ExperimentSpec
faultSweepExperiment()
{
    ExperimentSpec spec;
    spec.name = "fault_sweep";
    spec.description =
        "Link-fault robustness: flit-corruption rate sweep with "
        "end-to-end retransmission, low and moderate load";
    spec.kind = RunKind::OpenLoop;
    spec.configs = {FlowControl::Backpressured,
                    FlowControl::Backpressureless, FlowControl::Afc,
                    FlowControl::AfcAdaptive};
    spec.rates = {0.1, 0.3};
    spec.faultRates = {0.0, 0.001, 0.005, 0.02};
    spec.warmupCycles = 4000;
    spec.measureCycles = 12000;
    spec.baseSeed = 1;
    return spec;
}

ExperimentSpec
saturationSearchExperiment()
{
    ExperimentSpec spec;
    spec.name = "saturation_search";
    spec.description =
        "Adaptive load search: per-flow-control saturation rate on "
        "the 8x8 mesh, uniform random (bracketing + bisection)";
    spec.kind = RunKind::OpenLoop;
    spec.configs = {FlowControl::Backpressured,
                    FlowControl::Backpressureless, FlowControl::Afc};
    spec.meshSizes = {8};
    spec.warmupCycles = 4000;
    spec.measureCycles = 12000;
    spec.baseSeed = 1;
    spec.search.enabled = true;
    spec.search.seedRate = 0.1;
    spec.search.rateTolerance = 0.002;
    spec.search.maxProbes = 12;
    spec.search.probeWarmup = 1000;
    spec.search.probeMeasure = 3000;
    return spec;
}

ExperimentSpec
thresholdAblationExperiment()
{
    ExperimentSpec spec;
    spec.name = "threshold_ablation";
    spec.description =
        "Static vs self-tuning AFC thresholds under drifting-hotspot "
        "traffic the original tuning never saw (DESIGN.md S22)";
    spec.kind = RunKind::OpenLoop;
    spec.configs = {FlowControl::Afc, FlowControl::AfcAdaptive};
    spec.pattern = "hotspot_drift";
    spec.rates = {0.10, 0.25};
    spec.warmupCycles = 4000;
    spec.measureCycles = 12000;
    spec.baseSeed = 1;
    // Faster epochs than the config defaults so a 16k-cycle run sees
    // the controller act repeatedly.
    spec.base.afc.adapt.probeInterval = 1024;
    spec.base.afc.adapt.probeWindow = 128;
    spec.base.afc.adapt.gain = 0.8;
    return spec;
}

std::vector<std::string>
experimentNames()
{
    return {"openloop_sweep", "fig2_low_load", "fig2_high_load",
            "scaling", "fault_sweep", "saturation_search",
            "threshold_ablation"};
}

ExperimentSpec
experimentByName(const std::string &name)
{
    if (name == "openloop_sweep")
        return openloopSweepExperiment();
    if (name == "fig2_low_load")
        return fig2LowLoadExperiment();
    if (name == "fig2_high_load")
        return fig2HighLoadExperiment();
    if (name == "scaling")
        return scalingExperiment();
    if (name == "fault_sweep")
        return faultSweepExperiment();
    if (name == "saturation_search")
        return saturationSearchExperiment();
    if (name == "threshold_ablation")
        return thresholdAblationExperiment();
    AFCSIM_CONFIG_ERROR("unknown experiment '", name, "'; known: ",
                 "openloop_sweep, fig2_low_load, fig2_high_load, "
                 "scaling, fault_sweep, saturation_search, "
                 "threshold_ablation");
}

} // namespace afcsim::exp
