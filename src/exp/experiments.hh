/**
 * @file
 * Named paper experiments: the declarative ExperimentSpec behind
 * each refactored bench binary (and the `afcsim-exp --experiment`
 * CLI). Each function returns the paper-default grid; callers may
 * then override scale, repeats, rates or thread count before
 * expansion, which is how the benches expose their key=value knobs.
 */

#ifndef AFCSIM_EXP_EXPERIMENTS_HH
#define AFCSIM_EXP_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "exp/spec.hh"

namespace afcsim::exp
{

/**
 * Sec. V "Other results": open-loop uniform-random latency vs.
 * offered load for BP / BPL / AFC (bench_openloop_sweep).
 */
ExperimentSpec openloopSweepExperiment();

/**
 * Fig. 2(a)/(b): low-load SPLASH-2 workloads, five configurations
 * including the ideal-bypass energy bound (bench_fig2_low_load).
 */
ExperimentSpec fig2LowLoadExperiment();

/** Fig. 2(c)/(d): high-load commercial workloads (bench_fig2_high_load). */
ExperimentSpec fig2HighLoadExperiment();

/**
 * Conclusion scaling study: 3x3/4x4/5x5 meshes, one low- and one
 * high-load workload, per-node pressure held constant
 * (bench_scaling).
 */
ExperimentSpec scalingExperiment();

/**
 * Link-fault robustness sweep: flit-corruption rates {0, 0.001,
 * 0.005, 0.02} x offered loads {0.1, 0.3} with end-to-end
 * retransmission armed for nonzero rates (bench_fault_sweep's setup
 * as a declarative grid).
 */
ExperimentSpec faultSweepExperiment();

/**
 * Adaptive load search (src/search): per-flow-control saturation
 * rate on the 8x8 open-loop mesh under uniform random, found by
 * bracketing + bisection instead of a rate grid (afcsim-search,
 * bench_saturation).
 */
ExperimentSpec saturationSearchExperiment();

/**
 * Threshold ablation (DESIGN.md S22): static AFC vs the self-tuning
 * afc_adaptive variant under the drifting-hotspot pattern, two
 * offered loads, with fast controller epochs so short runs adapt
 * (bench_threshold_ablation).
 */
ExperimentSpec thresholdAblationExperiment();

/** All registered experiment names. */
std::vector<std::string> experimentNames();

/** Look up a named experiment; fatal on unknown names. */
ExperimentSpec experimentByName(const std::string &name);

} // namespace afcsim::exp

#endif // AFCSIM_EXP_EXPERIMENTS_HH
