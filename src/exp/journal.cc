#include "exp/journal.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/state.hh"
#include "common/error.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "network/network.hh"

namespace afcsim::exp
{

namespace
{

constexpr int kManifestFormat = 1;

/** 16-hex-digit rendering of a fingerprint (JSON numbers would lose
 *  precision past 2^53, so hashes travel as strings). */
std::string
hashString(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Atomic text-file write: temporary sibling + rename, same
 *  discipline as ckpt::writeFile. */
void
writeTextAtomic(const std::string &path, const std::string &contents)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            AFCSIM_SIM_ERROR("journal: cannot open temporary '", tmp,
                             "' for writing");
        out << contents;
        out.flush();
        if (!out)
            AFCSIM_SIM_ERROR("journal: write to '", tmp, "' failed");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        AFCSIM_SIM_ERROR("journal: rename '", tmp, "' over '", path,
                         "' failed: ", ec.message());
}

} // namespace

Journal::Journal(std::string dir) : dir_(std::move(dir)) {}

void
Journal::open(const std::string &tool, const ExperimentSpec &spec)
{
    ckptInterval_ = spec.ckptInterval;
    maxAttempts_ = spec.maxAttempts > 0 ? spec.maxAttempts : 1;

    std::uint64_t hash = specHash(spec);
    std::size_t points = spec.expand().size();
    std::string manifestPath = dir_ + "/manifest.json";

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        AFCSIM_CONFIG_ERROR("cannot create resume directory '", dir_,
                            "': ", ec.message());

    std::ifstream in(manifestPath);
    if (!in) {
        JsonValue doc = JsonValue::object();
        doc.set("format", JsonValue(static_cast<std::int64_t>(
                              kManifestFormat)));
        doc.set("tool", JsonValue(tool));
        doc.set("experiment", JsonValue(spec.name));
        doc.set("spec_hash", JsonValue(hashString(hash)));
        doc.set("points",
                JsonValue(static_cast<std::int64_t>(points)));
        writeTextAtomic(manifestPath, doc.dump(2) + "\n");
        return;
    }

    std::stringstream ss;
    ss << in.rdbuf();
    std::string error;
    JsonValue doc = JsonValue::parse(ss.str(), &error);
    if (!error.empty() || !doc.isObject())
        AFCSIM_CONFIG_ERROR("resume directory '", dir_,
                            "': unreadable manifest.json (",
                            error.empty() ? "not an object" : error,
                            ")");
    for (const char *key :
         {"format", "tool", "experiment", "spec_hash", "points"}) {
        if (!doc.has(key))
            AFCSIM_CONFIG_ERROR("resume directory '", dir_,
                                "': manifest.json missing '", key,
                                "'");
    }
    if (doc.at("format").asInt() != kManifestFormat)
        AFCSIM_CONFIG_ERROR("resume directory '", dir_,
                            "': manifest format ",
                            doc.at("format").asInt(),
                            " (this build reads format ",
                            kManifestFormat, ")");
    if (doc.at("tool").asString() != tool)
        AFCSIM_CONFIG_ERROR("resume directory '", dir_,
                            "': journal was written by ",
                            doc.at("tool").asString(),
                            ", not ", tool);
    if (doc.at("spec_hash").asString() != hashString(hash) ||
        doc.at("points").asInt() !=
            static_cast<std::int64_t>(points)) {
        AFCSIM_CONFIG_ERROR(
            "resume directory '", dir_, "': journal holds a "
            "different grid (experiment '",
            doc.at("experiment").asString(), "', ",
            doc.at("points").asInt(), " points, spec ",
            doc.at("spec_hash").asString(), "; this invocation is '",
            spec.name, "', ", points, " points, spec ",
            hashString(hash), ") — resume with the exact original "
            "spec and overrides, or use a fresh directory");
    }
}

std::string
Journal::resultPath(int index) const
{
    return dir_ + "/point_" + std::to_string(index) + ".res";
}

std::string
Journal::checkpointPath(int index, int generation) const
{
    std::string p = dir_ + "/point_" + std::to_string(index) + ".ckpt";
    if (generation > 0)
        p += "." + std::to_string(generation);
    return p;
}

std::string
Journal::attemptsPath(int index) const
{
    return dir_ + "/point_" + std::to_string(index) + ".attempts";
}

std::string
Journal::postmortemCheckpointPath(int index) const
{
    return dir_ + "/point_" + std::to_string(index) +
           ".postmortem.ckpt";
}

std::string
Journal::postmortemReportPath(int index) const
{
    return dir_ + "/point_" + std::to_string(index) +
           ".postmortem.txt";
}

std::string
Journal::warmupForkPath(std::uint64_t hash) const
{
    return dir_ + "/warmup_" + hashString(hash) + ".ckpt";
}

bool
Journal::loadResult(const RunPoint &point, RunResult &out) const
{
    std::string path = resultPath(point.index);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return false;
    try {
        ckpt::Reader r(ckpt::readFile(path, ckpt::Kind::RunResult),
                       path);
        RunResult res;
        getRunResult(r, res);
        r.finish();
        res.point = point;
        out = std::move(res);
        return true;
    } catch (const Error &e) {
        warn("discarding journal result '", path,
             "' (point will re-run): ", e.what());
        return false;
    }
}

void
Journal::storeResult(const RunResult &r) const
{
    ckpt::Writer w;
    putRunResult(w, r);
    ckpt::writeFile(resultPath(r.point.index), ckpt::Kind::RunResult,
                    w.bytes());
    clearPointScratch(r.point.index);
}

int
Journal::beginAttempt(int index) const
{
    int prior = 0;
    {
        std::ifstream in(attemptsPath(index));
        if (in)
            in >> prior;
        if (prior < 0)
            prior = 0;
    }
    int attempt = prior + 1;
    try {
        writeTextAtomic(attemptsPath(index),
                        std::to_string(attempt) + "\n");
    } catch (const Error &e) {
        // The counter only guards repeated crashes; failing to
        // persist it must not block the run itself.
        warn("cannot persist attempt counter for point ", index, ": ",
             e.what());
    }
    return attempt;
}

void
Journal::rotateCheckpoints(int index) const
{
    std::error_code ec;
    std::filesystem::remove(checkpointPath(index, kGenerations - 1),
                            ec);
    for (int g = kGenerations - 1; g > 0; --g) {
        std::filesystem::rename(checkpointPath(index, g - 1),
                                checkpointPath(index, g), ec);
        // Missing younger generations are normal early in a run.
    }
}

void
Journal::clearPointScratch(int index) const
{
    std::error_code ec;
    for (int g = 0; g < kGenerations; ++g)
        std::filesystem::remove(checkpointPath(index, g), ec);
    std::filesystem::remove(attemptsPath(index), ec);
}

std::uint64_t
Journal::specHash(const ExperimentSpec &spec)
{
    ckpt::Writer w;
    w.str(spec.name);
    std::vector<RunPoint> points = spec.expand();
    w.u64(points.size());
    for (const RunPoint &p : points) {
        w.i32(p.index);
        w.u8(p.kind == RunKind::OpenLoop ? 0 : 1);
        w.str(p.group);
        w.i32(p.mesh);
        w.i32(static_cast<std::int32_t>(p.fc));
        w.i32(p.repeat);
        w.u64(p.seed);
        w.u64(hashNetworkConfig(p.cfg, p.fc));
        w.f64(p.rate);
        w.str(p.ol.pattern);
        w.f64(p.ol.injectionRate);
        w.u64(p.ol.warmupCycles);
        w.u64(p.ol.measureCycles);
        w.u64(p.ol.drainCycles);
        w.f64(p.ol.dataPacketFraction);
        w.str(p.workload.name);
        w.u64(p.workload.warmupTransactions);
        w.u64(p.workload.measureTransactions);
        w.u64(p.maxCycles);
    }
    w.b(spec.search.enabled);
    if (spec.search.enabled) {
        const search::SearchSpec &s = spec.search;
        w.f64(s.seedRate);
        w.f64(s.rateTolerance);
        w.f64(s.minRate);
        w.f64(s.maxRate);
        w.i32(s.maxProbes);
        w.u64(s.probeWarmup);
        w.u64(s.probeMeasure);
        w.u64(s.finalWarmup);
        w.u64(s.finalMeasure);
        w.f64(s.baselineRate);
        const search::SearchCriteria &c = s.criteria;
        w.f64(c.minDeliveredFraction);
        w.f64(c.maxAvgLatency);
        w.f64(c.maxP95Latency);
        w.f64(c.maxP99Latency);
        w.f64(c.kneeRatio);
        w.b(c.requireUnsaturated);
        w.b(c.requireClean);
    }
    return ckpt::fnv1a(w.bytes().data(), w.bytes().size());
}

void
putRunResult(ckpt::Writer &w, const RunResult &r)
{
    w.f64(r.runtimeCycles);
    w.u64(r.transactions);
    w.f64(r.throughput);
    w.f64(r.offeredRate);
    w.f64(r.acceptedRate);
    w.f64(r.avgPacketLatency);
    w.f64(r.p50PacketLatency);
    w.f64(r.p95PacketLatency);
    w.f64(r.p99PacketLatency);
    w.f64(r.avgFlitLatency);
    w.f64(r.avgHops);
    w.f64(r.avgDeflections);
    w.f64(r.avgTxLatency);
    w.b(r.saturated);
    w.f64(r.energyTotal);
    w.f64(r.energyPerFlit);
    for (double v : r.energy.byComponent)
        w.f64(v);
    w.f64(r.bpFraction);
    w.u64(r.forwardSwitches);
    w.u64(r.reverseSwitches);
    w.u64(r.gossipSwitches);
    ckpt::put(w, r.net);
    w.u64(r.faults.corruptions);
    w.u64(r.faults.linkDownEvents);
    w.u64(r.faults.stallEvents);
    w.u64(r.faults.flitsHeld);
    w.u64(r.faults.creditsDropped);
    w.u64(r.faults.events.size());
    for (const FaultEvent &ev : r.faults.events) {
        w.u64(ev.cycle);
        w.i32(ev.node);
        w.u8(ev.dir);
        w.u8(static_cast<std::uint8_t>(ev.kind));
    }
    w.str(r.error);
    w.f64(r.wallMs);
    w.f64(r.cyclesPerSec);
}

void
getRunResult(ckpt::Reader &r, RunResult &out)
{
    out.runtimeCycles = r.f64();
    out.transactions = r.u64();
    out.throughput = r.f64();
    out.offeredRate = r.f64();
    out.acceptedRate = r.f64();
    out.avgPacketLatency = r.f64();
    out.p50PacketLatency = r.f64();
    out.p95PacketLatency = r.f64();
    out.p99PacketLatency = r.f64();
    out.avgFlitLatency = r.f64();
    out.avgHops = r.f64();
    out.avgDeflections = r.f64();
    out.avgTxLatency = r.f64();
    out.saturated = r.b();
    out.energyTotal = r.f64();
    out.energyPerFlit = r.f64();
    for (double &v : out.energy.byComponent)
        v = r.f64();
    out.bpFraction = r.f64();
    out.forwardSwitches = r.u64();
    out.reverseSwitches = r.u64();
    out.gossipSwitches = r.u64();
    ckpt::get(r, out.net);
    out.faults.corruptions = r.u64();
    out.faults.linkDownEvents = r.u64();
    out.faults.stallEvents = r.u64();
    out.faults.flitsHeld = r.u64();
    out.faults.creditsDropped = r.u64();
    std::uint64_t events = r.u64();
    out.faults.events.clear();
    for (std::uint64_t i = 0; i < events; ++i) {
        FaultEvent ev;
        ev.cycle = r.u64();
        ev.node = static_cast<NodeId>(r.i32());
        ev.dir = r.u8();
        ev.kind = static_cast<FaultEvent::Kind>(r.u8());
        out.faults.events.push_back(ev);
    }
    out.error = r.str();
    out.wallMs = r.f64();
    out.cyclesPerSec = r.f64();
}

} // namespace afcsim::exp
