/**
 * @file
 * Crash-safe sweep journal (DESIGN.md S20). A journal directory makes
 * an experiment grid resumable after a crash or SIGKILL:
 *
 *   manifest.json          grid identity (tool, spec fingerprint,
 *                          point count), written atomically
 *   point_<i>.res          done marker: the finished result in the
 *                          ckpt/serial.hh container (atomic rename)
 *   point_<i>.ckpt[.<g>]   rotated periodic checkpoints of an
 *                          in-flight open-loop run (generation 0 is
 *                          newest; kGenerations retained)
 *   point_<i>.attempts     crash counter: bumped when an attempt
 *                          starts, cleared when a result lands, so a
 *                          point that keeps killing the process is
 *                          degraded after maxAttempts instead of
 *                          wedging the grid forever
 *   point_<i>.postmortem.* final checkpoint + watchdog diagnostic
 *                          snapshot written when a run dies on a
 *                          recoverable error (SimError)
 *   warmup_<hash>.ckpt     shared warm-up prefix (openloop.hh
 *                          warm-up forking), keyed by warmupHash()
 *
 * On resume, completed points load back verbatim from their done
 * markers, in-flight open-loop points restart from their newest
 * valid checkpoint, and everything else re-runs deterministically —
 * so the merged exports are byte-identical to a never-interrupted
 * sweep (proven by the kill-resume integration test). A corrupt or
 * version-skewed file is never trusted: the container checksum
 * rejects it and the point simply re-runs.
 */

#ifndef AFCSIM_EXP_JOURNAL_HH
#define AFCSIM_EXP_JOURNAL_HH

#include <cstdint>
#include <string>

#include "ckpt/serial.hh"
#include "exp/result.hh"
#include "exp/spec.hh"

namespace afcsim::exp
{

class Journal
{
  public:
    /** Checkpoint generations retained per in-flight point: if the
     *  process dies *while* writing generation 0, generation 1 is
     *  still a complete, verified restart point. */
    static constexpr int kGenerations = 2;

    explicit Journal(std::string dir);

    /**
     * Create the journal directory + manifest, or validate an
     * existing manifest against this grid. ConfigError when the
     * directory belongs to a different tool or a different grid
     * (spec fingerprint or point count mismatch) — resuming would
     * silently mix incompatible results otherwise.
     */
    void open(const std::string &tool, const ExperimentSpec &spec);

    const std::string &dir() const { return dir_; }
    /** Periodic-checkpoint period in cycles (0 = none). */
    Cycle ckptInterval() const { return ckptInterval_; }
    /** Crash attempts before a point is marked degraded. */
    int maxAttempts() const { return maxAttempts_; }

    /// @name Per-point file paths.
    /// @{
    std::string resultPath(int index) const;
    /** Generation 0 is the newest checkpoint. */
    std::string checkpointPath(int index, int generation) const;
    std::string attemptsPath(int index) const;
    std::string postmortemCheckpointPath(int index) const;
    std::string postmortemReportPath(int index) const;
    std::string warmupForkPath(std::uint64_t hash) const;
    /// @}

    /**
     * Load a completed point's result (reattaching `point`, which is
     * never serialized — it comes from deterministic grid
     * re-expansion). Returns false when there is no done marker or
     * the marker fails verification (warned, then re-run — a corrupt
     * file must never crash the resume or restore wrong results).
     */
    bool loadResult(const RunPoint &point, RunResult &out) const;

    /** Write the done marker (atomic rename; landing it completes
     *  the point) and drop the point's scratch files. */
    void storeResult(const RunResult &r) const;

    /** Bump and persist the point's attempt counter; returns the
     *  1-based ordinal of the attempt that is about to start. */
    int beginAttempt(int index) const;

    /** Shift checkpoint generations (0 -> 1 -> ... dropped) to make
     *  room for a new generation-0 write. */
    void rotateCheckpoints(int index) const;

    /** Remove the point's checkpoints + attempt counter (postmortem
     *  files are kept — they are the crash diagnostics). */
    void clearPointScratch(int index) const;

    /**
     * Fingerprint of everything that determines the grid's results:
     * every expanded point's identity, seed, config hash and harness
     * parameters, plus the search block when enabled. Deliberately
     * excludes output routing (obsDir, JSON/CSV paths) so a resume
     * may redirect exports.
     */
    static std::uint64_t specHash(const ExperimentSpec &spec);

  private:
    std::string dir_;
    Cycle ckptInterval_ = 0;
    int maxAttempts_ = 1;
};

/// @name RunResult payload serialization (container Kind::RunResult).
/// Every field in declaration order except `point` (reattached from
/// re-expansion) and `obs` (side files are exported before the done
/// marker lands, so the bundle need not survive the process).
/// @{
void putRunResult(ckpt::Writer &w, const RunResult &r);
void getRunResult(ckpt::Reader &r, RunResult &out);
/// @}

} // namespace afcsim::exp

#endif // AFCSIM_EXP_JOURNAL_HH
