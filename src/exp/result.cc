#include "exp/result.hh"

#include <fstream>
#include <map>
#include <tuple>

#include "common/error.hh"
#include "common/log.hh"
#include "common/statsio.hh"

namespace afcsim::exp
{

std::vector<AggregateRow>
aggregate(const std::vector<RunResult> &results)
{
    // Baseline runtime/energy per (mesh, group, repeat) for relative
    // normalization.
    using BaseKey = std::tuple<int, std::string, int>;
    std::map<BaseKey, std::pair<double, double>> baselines;
    for (const auto &r : results) {
        if (r.point.fc == FlowControl::Backpressured && r.error.empty()) {
            baselines[{r.point.mesh, r.point.group, r.point.repeat}] =
                {r.runtimeCycles, r.energyTotal};
        }
    }

    std::vector<AggregateRow> rows;
    auto rowFor = [&](const RunResult &r) -> AggregateRow & {
        for (auto &row : rows) {
            if (row.group == r.point.group && row.fc == r.point.fc &&
                row.mesh == r.point.mesh)
                return row;
        }
        AggregateRow row;
        row.group = r.point.group;
        row.mesh = r.point.mesh;
        row.fc = r.point.fc;
        rows.push_back(row);
        return rows.back();
    };

    for (const auto &r : results) {
        if (!r.error.empty())
            continue; // errored runs carry no metrics
        AggregateRow &row = rowFor(r);
        row.runtime.add(r.runtimeCycles);
        row.avgPacketLatency.add(r.avgPacketLatency);
        row.p99PacketLatency.add(r.p99PacketLatency);
        row.acceptedRate.add(r.acceptedRate);
        row.energyTotal.add(r.energyTotal);
        row.energyPerFlit.add(r.energyPerFlit);
        row.bpFraction.add(r.bpFraction);
        auto it = baselines.find(
            {r.point.mesh, r.point.group, r.point.repeat});
        if (it != baselines.end() && it->second.first > 0 &&
            it->second.second > 0 && r.runtimeCycles > 0) {
            row.perfRel.add(it->second.first / r.runtimeCycles);
            row.energyRel.add(r.energyTotal / it->second.second);
        }
    }
    return rows;
}

JsonValue
toJson(const RunResult &r, bool with_telemetry)
{
    JsonValue o = JsonValue::object();
    o.set("index", JsonValue(static_cast<std::int64_t>(r.point.index)));
    o.set("group", JsonValue(r.point.group));
    o.set("mesh", JsonValue(static_cast<std::int64_t>(r.point.mesh)));
    o.set("flow_control", JsonValue(afcsim::toString(r.point.fc)));
    o.set("repeat", JsonValue(static_cast<std::int64_t>(r.point.repeat)));
    o.set("seed", JsonValue(r.point.seed));
    if (!r.error.empty()) {
        // Error record: run identity plus the failure, nothing else.
        o.set("error", JsonValue(r.error));
        return o;
    }
    if (r.point.kind == RunKind::OpenLoop) {
        o.set("rate", JsonValue(r.point.rate));
        o.set("pattern", JsonValue(r.point.ol.pattern));
    } else {
        o.set("workload", JsonValue(r.point.workload.name));
    }

    JsonValue m = JsonValue::object();
    m.set("runtime_cycles", JsonValue(r.runtimeCycles));
    if (r.point.kind == RunKind::ClosedLoop) {
        m.set("transactions", JsonValue(r.transactions));
        m.set("throughput_tx_per_cycle", JsonValue(r.throughput));
        m.set("avg_tx_latency", JsonValue(r.avgTxLatency));
    }
    m.set("offered_rate", JsonValue(r.offeredRate));
    m.set("accepted_rate", JsonValue(r.acceptedRate));
    m.set("avg_packet_latency", JsonValue(r.avgPacketLatency));
    m.set("p50_packet_latency", JsonValue(r.p50PacketLatency));
    m.set("p95_packet_latency", JsonValue(r.p95PacketLatency));
    m.set("p99_packet_latency", JsonValue(r.p99PacketLatency));
    m.set("avg_flit_latency", JsonValue(r.avgFlitLatency));
    m.set("avg_hops", JsonValue(r.avgHops));
    m.set("avg_deflections", JsonValue(r.avgDeflections));
    m.set("saturated", JsonValue(r.saturated));
    m.set("energy_total_pj", JsonValue(r.energyTotal));
    m.set("energy_per_flit_pj", JsonValue(r.energyPerFlit));
    o.set("metrics", std::move(m));

    JsonValue afc = JsonValue::object();
    afc.set("bp_fraction", JsonValue(r.bpFraction));
    afc.set("forward_switches", JsonValue(r.forwardSwitches));
    afc.set("reverse_switches", JsonValue(r.reverseSwitches));
    afc.set("gossip_switches", JsonValue(r.gossipSwitches));
    o.set("afc_mode", std::move(afc));

    o.set("energy", afcsim::toJson(r.energy));
    o.set("net", afcsim::toJson(r.net));
    if (r.point.cfg.faults.any())
        o.set("faults", afcsim::toJson(r.faults));

    if (with_telemetry) {
        // The shard count rides with the wall-clock numbers it
        // explains; it never enters the deterministic document body
        // because exports are byte-identical for any value.
        JsonValue t = JsonValue::object();
        t.set("wall_ms", JsonValue(r.wallMs));
        t.set("cycles_per_sec", JsonValue(r.cyclesPerSec));
        t.set("shards",
              JsonValue(static_cast<std::int64_t>(r.point.cfg.shards)));
        o.set("telemetry", std::move(t));
    }
    return o;
}

namespace
{

JsonValue
specToJson(const ExperimentSpec &spec)
{
    JsonValue s = JsonValue::object();
    s.set("kind", JsonValue(toString(spec.kind)));
    JsonValue meshes = JsonValue::array();
    if (spec.meshSizes.empty()) {
        meshes.push(JsonValue(static_cast<std::int64_t>(spec.base.width)));
    } else {
        for (int m : spec.meshSizes)
            meshes.push(JsonValue(static_cast<std::int64_t>(m)));
    }
    s.set("mesh", std::move(meshes));
    JsonValue fcs = JsonValue::array();
    for (FlowControl fc : spec.configs)
        fcs.push(JsonValue(afcsim::toString(fc)));
    s.set("configs", std::move(fcs));
    if (spec.kind == RunKind::OpenLoop) {
        JsonValue rates = JsonValue::array();
        for (double r : spec.rates)
            rates.push(JsonValue(r));
        s.set("rates", std::move(rates));
        s.set("pattern", JsonValue(spec.pattern));
        s.set("warmup_cycles", JsonValue(
            static_cast<std::int64_t>(spec.warmupCycles)));
        s.set("measure_cycles", JsonValue(
            static_cast<std::int64_t>(spec.measureCycles)));
        s.set("data_fraction", JsonValue(spec.dataPacketFraction));
    } else {
        JsonValue ws = JsonValue::array();
        for (const auto &w : spec.workloads)
            ws.push(JsonValue(w));
        s.set("workloads", std::move(ws));
        s.set("scale", JsonValue(spec.scale));
        s.set("scale_with_mesh", JsonValue(spec.scaleWithMesh));
    }
    s.set("repeats", JsonValue(static_cast<std::int64_t>(spec.repeats)));
    s.set("seed", JsonValue(spec.baseSeed));
    return s;
}

JsonValue
aggregateToJson(const AggregateRow &row)
{
    JsonValue o = JsonValue::object();
    o.set("group", JsonValue(row.group));
    o.set("mesh", JsonValue(static_cast<std::int64_t>(row.mesh)));
    o.set("flow_control", JsonValue(afcsim::toString(row.fc)));
    o.set("runs", JsonValue(row.runtime.count()));
    o.set("runtime_cycles", afcsim::toJson(row.runtime));
    o.set("avg_packet_latency", afcsim::toJson(row.avgPacketLatency));
    o.set("p99_packet_latency", afcsim::toJson(row.p99PacketLatency));
    o.set("accepted_rate", afcsim::toJson(row.acceptedRate));
    o.set("energy_total_pj", afcsim::toJson(row.energyTotal));
    o.set("energy_per_flit_pj", afcsim::toJson(row.energyPerFlit));
    o.set("bp_fraction", afcsim::toJson(row.bpFraction));
    if (row.perfRel.count() > 0) {
        o.set("perf_rel", afcsim::toJson(row.perfRel));
        o.set("energy_rel", afcsim::toJson(row.energyRel));
    }
    return o;
}

} // namespace

JsonValue
resultsToJson(const ExperimentSpec &spec,
              const std::vector<RunResult> &results, bool with_telemetry)
{
    JsonValue doc = JsonValue::object();
    doc.set("experiment", JsonValue(spec.name));
    if (!spec.description.empty())
        doc.set("description", JsonValue(spec.description));
    doc.set("spec", specToJson(spec));
    JsonValue runs = JsonValue::array();
    for (const auto &r : results)
        runs.push(toJson(r, with_telemetry));
    doc.set("runs", std::move(runs));
    JsonValue aggs = JsonValue::array();
    for (const auto &row : aggregate(results))
        aggs.push(aggregateToJson(row));
    doc.set("aggregates", std::move(aggs));
    return doc;
}

std::string
resultsToCsv(const std::vector<RunResult> &results)
{
    std::string out = csvRow({
        "index", "experiment", "group", "mesh", "flow_control",
        "repeat", "seed", "rate", "workload", "runtime_cycles",
        "transactions", "offered_rate", "accepted_rate",
        "avg_packet_latency", "p50_packet_latency",
        "p95_packet_latency", "p99_packet_latency",
        "avg_hops", "avg_deflections",
        "saturated", "energy_total_pj", "energy_per_flit_pj",
        "buffer_pj", "link_pj", "rest_pj", "bp_fraction", "error",
    });
    // Same shortest-round-trip formatting as the JSON sink, so the
    // two artifacts show identical numbers.
    auto num = [](double v) { return JsonValue(v).dump(); };
    for (const auto &r : results) {
        out += csvRow({
            std::to_string(r.point.index),
            r.point.experiment,
            r.point.group,
            std::to_string(r.point.mesh),
            afcsim::toString(r.point.fc),
            std::to_string(r.point.repeat),
            std::to_string(r.point.seed),
            r.point.kind == RunKind::OpenLoop ? num(r.point.rate) : "",
            r.point.kind == RunKind::ClosedLoop ? r.point.workload.name
                                                : "",
            num(r.runtimeCycles),
            std::to_string(r.transactions),
            num(r.offeredRate),
            num(r.acceptedRate),
            num(r.avgPacketLatency),
            num(r.p50PacketLatency),
            num(r.p95PacketLatency),
            num(r.p99PacketLatency),
            num(r.avgHops),
            num(r.avgDeflections),
            r.saturated ? "1" : "0",
            num(r.energyTotal),
            num(r.energyPerFlit),
            num(r.energy.bufferEnergy()),
            num(r.energy.linkEnergy()),
            num(r.energy.restEnergy()),
            num(r.bpFraction),
            r.error,
        });
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        AFCSIM_CONFIG_ERROR("cannot open '", path, "' for writing");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out)
        AFCSIM_CONFIG_ERROR("error writing '", path, "'");
}

} // namespace afcsim::exp
