/**
 * @file
 * Experiment results and sinks. A RunResult is the structured
 * outcome of one RunPoint (metrics + energy breakdown + telemetry);
 * aggregation groups results over repeat seeds and normalizes
 * against the backpressured baseline (the paper's reporting style).
 * Sinks serialize the same structures to JSON and CSV; the bench
 * binaries render their text tables from these rows too, so the
 * human-readable and machine-readable outputs can never diverge.
 */

#ifndef AFCSIM_EXP_RESULT_HH
#define AFCSIM_EXP_RESULT_HH

#include <memory>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "energy/energy.hh"
#include "exp/spec.hh"
#include "fault/fault.hh"

namespace afcsim::obs
{
class Observability;
}

namespace afcsim::exp
{

/** Structured outcome of one run. */
struct RunResult
{
    RunPoint point;

    // Unified metrics (some are kind-specific and stay 0 otherwise).
    double runtimeCycles = 0.0;  ///< measured window length
    std::uint64_t transactions = 0;
    double throughput = 0.0;     ///< closed loop: transactions/cycle
    double offeredRate = 0.0;    ///< flits/node/cycle
    double acceptedRate = 0.0;   ///< flits/node/cycle delivered
    double avgPacketLatency = 0.0;
    double p50PacketLatency = 0.0;
    double p95PacketLatency = 0.0;
    double p99PacketLatency = 0.0;
    double avgFlitLatency = 0.0;
    double avgHops = 0.0;
    double avgDeflections = 0.0;
    double avgTxLatency = 0.0;   ///< closed loop: miss-to-response
    bool saturated = false;

    double energyTotal = 0.0;    ///< pJ over the measured window
    double energyPerFlit = 0.0;
    EnergyReport energy;

    // AFC mode behaviour.
    double bpFraction = 0.0;     ///< router-cycle duty in BP mode
    std::uint64_t forwardSwitches = 0;
    std::uint64_t reverseSwitches = 0;
    std::uint64_t gossipSwitches = 0;

    NetStats net;

    /** Injected-fault counters (all zero when cfg.faults is off). */
    FaultStats faults;

    /**
     * Non-empty when the run raised a recoverable error (SimError /
     * ConfigError): the what() text. An errored run serializes as a
     * compact error record (identity + error) and is excluded from
     * aggregation; the rest of the grid is unaffected.
     */
    std::string error;

    // Execution telemetry (nondeterministic; excluded from the
    // deterministic JSON document unless explicitly requested).
    double wallMs = 0.0;
    double cyclesPerSec = 0.0;

    /**
     * Observability bundle recorded during the run; nullptr unless
     * the run's cfg.obs enabled it. Exported to side files by the
     * runner (point.obsDir) — never serialized into the stats JSON,
     * which must stay bit-identical with observability off.
     */
    std::shared_ptr<obs::Observability> obs;
};

/**
 * Per-(group, flow-control) aggregate over repeat seeds. Relative
 * stats normalize each repeat against the Backpressured run of the
 * same group and repeat (present only when the spec includes the
 * backpressured baseline).
 */
struct AggregateRow
{
    std::string group;
    int mesh = 3;
    FlowControl fc = FlowControl::Backpressured;
    RunningStat runtime;
    RunningStat avgPacketLatency;
    RunningStat p99PacketLatency;
    RunningStat acceptedRate;
    RunningStat energyTotal;
    RunningStat energyPerFlit;
    RunningStat bpFraction;
    /** baseline_runtime / runtime per repeat (higher is better). */
    RunningStat perfRel;
    /** energy / baseline_energy per repeat (lower is better). */
    RunningStat energyRel;
};

/** Group results over repeats, in first-appearance (index) order. */
std::vector<AggregateRow> aggregate(const std::vector<RunResult> &results);

/**
 * Build the full JSON document for an experiment: spec echo, one
 * entry per run (index order), and the aggregate rows.
 * `with_telemetry` adds per-run wall-clock fields — off by default
 * so the document is bit-identical across thread counts.
 */
JsonValue resultsToJson(const ExperimentSpec &spec,
                        const std::vector<RunResult> &results,
                        bool with_telemetry = false);

/** Serialize one run (used by resultsToJson; exposed for tests). */
JsonValue toJson(const RunResult &r, bool with_telemetry = false);

/** Flat CSV: header + one row per run, index order. */
std::string resultsToCsv(const std::vector<RunResult> &results);

/** Write a string to a file; fatal on I/O errors. */
void writeFile(const std::string &path, const std::string &contents);

} // namespace afcsim::exp

#endif // AFCSIM_EXP_RESULT_HH
