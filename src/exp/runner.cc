#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hh"
#include "common/log.hh"
#include "exp/journal.hh"
#include "fault/watchdog.hh"
#include "obs/obs.hh"
#include "sim/closedloop.hh"
#include "traffic/openloop.hh"

namespace afcsim::exp
{

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

RunResult
fromOpenLoop(const RunPoint &p, const OpenLoopResult &r)
{
    RunResult out;
    out.point = p;
    out.runtimeCycles = static_cast<double>(r.measuredCycles);
    out.offeredRate = r.offeredRate;
    out.acceptedRate = r.acceptedRate;
    out.throughput = r.acceptedRate;
    out.avgPacketLatency = r.avgPacketLatency;
    out.p50PacketLatency = r.p50PacketLatency;
    out.p95PacketLatency = r.p95PacketLatency;
    out.p99PacketLatency = r.p99PacketLatency;
    out.avgFlitLatency = r.avgFlitLatency;
    out.avgHops = r.avgHops;
    out.avgDeflections = r.avgDeflections;
    out.saturated = r.saturated;
    out.energy = r.energy;
    out.energyTotal = r.energy.total();
    out.energyPerFlit = r.energyPerFlit;
    out.bpFraction = r.bpFraction;
    out.net = r.stats;
    out.faults = r.faults;
    out.obs = r.obs;
    return out;
}

RunResult
fromClosedLoop(const RunPoint &p, const ClosedLoopResult &r)
{
    RunResult out;
    out.point = p;
    out.runtimeCycles = static_cast<double>(r.runtime);
    out.transactions = r.transactions;
    out.throughput = r.throughput();
    out.offeredRate = r.injectionRate;
    int nodes = p.cfg.numNodes();
    if (r.runtime > 0 && nodes > 0) {
        out.acceptedRate = static_cast<double>(r.net.flitsDelivered) /
                           (static_cast<double>(nodes) * r.runtime);
    }
    out.avgTxLatency = r.avgTxLatency;
    out.avgPacketLatency = r.avgPacketLatency;
    out.p50PacketLatency = r.net.packetLatencyPct.quantile(0.5);
    out.p95PacketLatency = r.net.packetLatencyPct.quantile(0.95);
    out.p99PacketLatency = r.net.packetLatencyPct.quantile(0.99);
    out.avgFlitLatency = r.net.flitLatency.mean();
    out.avgHops = r.net.hops.mean();
    out.avgDeflections = r.avgDeflections;
    out.energy = r.energy;
    out.energyTotal = r.energy.total();
    if (r.net.flitsDelivered > 0)
        out.energyPerFlit = out.energyTotal / r.net.flitsDelivered;
    out.bpFraction = r.bpFraction;
    out.forwardSwitches = r.forwardSwitches;
    out.reverseSwitches = r.reverseSwitches;
    out.gossipSwitches = r.gossipSwitches;
    out.net = r.net;
    out.faults = r.faults;
    out.obs = r.obs;
    return out;
}

/**
 * Write the run's observability side files into point.obsDir.
 * Filenames embed the run index, so concurrent runs of the same grid
 * never collide, and the content is a pure function of the run (no
 * wall-clock), so exports are identical for any thread count.
 */
void
exportObs(const RunPoint &point, const RunResult &res)
{
    if (point.obsDir.empty() || !res.obs)
        return;
    std::error_code ec;
    std::filesystem::create_directories(point.obsDir, ec);
    std::ostringstream stem;
    stem << point.obsDir << '/' << point.experiment << "_run"
         << point.index;
    if (res.obs->trace() &&
        !res.obs->writeChromeTrace(stem.str() + "_trace.json")) {
        warn("cannot write ", stem.str(), "_trace.json");
    }
    if (res.obs->sampler() &&
        !res.obs->writeSeriesCsv(stem.str() + "_series.csv")) {
        warn("cannot write ", stem.str(), "_series.csv");
    }
}

} // namespace

RunResult
executeRun(const RunPoint &point)
{
    auto t0 = std::chrono::steady_clock::now();
    RunResult out;
    double sim_cycles = 0.0;
    // Streaming series export opens its file while the network is
    // built, before exportObs() would create the directory.
    if (!point.cfg.obs.streamPath.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(point.cfg.obs.streamPath)
                .parent_path(),
            ec);
    }
    // Per-run error boundary: a recoverable failure (watchdog
    // SimError, injected hard failure, exceeded cycle budget, bad
    // per-point config) degrades this run to an error record and
    // leaves the rest of the grid untouched.
    try {
        if (point.kind == RunKind::OpenLoop) {
            OpenLoopResult r = runOpenLoop(point.cfg, point.fc,
                                           point.ol);
            out = fromOpenLoop(point, r);
            sim_cycles = static_cast<double>(point.ol.warmupCycles +
                                             point.ol.measureCycles);
        } else {
            ClosedLoopResult r = runClosedLoop(
                point.cfg, point.fc, point.workload, point.maxCycles);
            out = fromClosedLoop(point, r);
            sim_cycles = out.runtimeCycles;
        }
    } catch (const Error &e) {
        out = RunResult{};
        out.point = point;
        out.error = e.what();
    }
    exportObs(point, out);
    out.wallMs = msSince(t0);
    if (out.wallMs > 0.0)
        out.cyclesPerSec = sim_cycles / (out.wallMs / 1000.0);
    return out;
}

RunResult
executeRun(const RunPoint &point, Journal &journal)
{
    RunResult cached;
    if (journal.loadResult(point, cached))
        return cached;

    // Re-armed error boundary: attempts count process *crashes* (a
    // run that completes — even as an error record — lands a done
    // marker and clears the counter). A point whose simulation keeps
    // killing the process is degraded instead of wedging every
    // resume on the same run.
    int attempt = journal.beginAttempt(point.index);
    if (attempt > journal.maxAttempts()) {
        RunResult out;
        out.point = point;
        out.error = "degraded: " + std::to_string(attempt - 1) +
                    " attempts crashed before completing; giving up";
        journal.storeResult(out);
        return out;
    }

    if (point.kind != RunKind::OpenLoop) {
        // Closed-loop runs checkpoint mid-run exactly like open-loop
        // ones (ClosedLoopRun mirrors OpenLoopRun); there is no
        // shared warm-up fork because the warm-up boundary is a
        // transaction count, not a cycle, so prefixes are per-point.
        auto t0 = std::chrono::steady_clock::now();
        RunResult out;
        if (!point.cfg.obs.streamPath.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(
                std::filesystem::path(point.cfg.obs.streamPath)
                    .parent_path(),
                ec);
        }
        std::unique_ptr<ClosedLoopRun> run;
        try {
            auto freshRun = [&] {
                return std::make_unique<ClosedLoopRun>(
                    point.cfg, point.fc, point.workload,
                    point.maxCycles);
            };
            bool restored = false;
            for (int gen = 0; gen < Journal::kGenerations && !restored;
                 ++gen) {
                std::string path =
                    journal.checkpointPath(point.index, gen);
                std::error_code ec;
                if (!std::filesystem::exists(path, ec))
                    continue;
                auto candidate = freshRun();
                try {
                    candidate->loadCheckpoint(path);
                    run = std::move(candidate);
                    restored = true;
                } catch (const Error &e) {
                    warn("discarding checkpoint '", path, "': ",
                         e.what());
                }
            }
            if (!run)
                run = freshRun();

            Cycle interval = journal.ckptInterval();
            while (!run->done()) {
                run->step();
                Cycle c = run->cycle();
                if (interval > 0 && !run->done() &&
                    c % interval == 0) {
                    journal.rotateCheckpoints(point.index);
                    run->saveCheckpoint(
                        journal.checkpointPath(point.index, 0));
                }
            }
            out = fromClosedLoop(point, run->finish());
        } catch (const Error &e) {
            out = RunResult{};
            out.point = point;
            out.error = e.what();
            if (run) {
                try {
                    run->saveCheckpoint(
                        journal.postmortemCheckpointPath(point.index));
                } catch (const Error &e2) {
                    warn("cannot write postmortem checkpoint for run ",
                         point.index, ": ", e2.what());
                }
                try {
                    std::ostringstream report;
                    report << "postmortem: " << point.experiment
                           << " run " << point.index << " ("
                           << point.group << ", "
                           << afcsim::toString(point.fc) << ")\n"
                           << "cycle: " << run->cycle()
                           << " (budget " << run->maxCycles() << ")\n"
                           << "error: " << e.what() << "\n\n"
                           << Watchdog::snapshot(run->network(),
                                                 run->cycle());
                    writeFile(
                        journal.postmortemReportPath(point.index),
                        report.str());
                } catch (const Error &e2) {
                    warn("cannot write postmortem report for run ",
                         point.index, ": ", e2.what());
                }
            }
        }
        exportObs(point, out);
        out.wallMs = msSince(t0);
        if (out.wallMs > 0.0 && out.runtimeCycles > 0.0) {
            out.cyclesPerSec =
                out.runtimeCycles / (out.wallMs / 1000.0);
        }
        journal.storeResult(out);
        return out;
    }

    auto t0 = std::chrono::steady_clock::now();
    RunResult out;
    if (!point.cfg.obs.streamPath.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(point.cfg.obs.streamPath)
                .parent_path(),
            ec);
    }
    std::unique_ptr<OpenLoopRun> run;
    try {
        std::vector<double> rates(
            static_cast<std::size_t>(point.cfg.numNodes()),
            point.ol.injectionRate);
        auto freshRun = [&] {
            return std::make_unique<OpenLoopRun>(point.cfg, point.fc,
                                                 point.ol, rates);
        };

        // Restart from the newest checkpoint generation that
        // verifies; a corrupt or stale file falls through to the
        // next generation (each attempt gets a fresh run object, so
        // a rejected load can never leave mixed state behind).
        bool restored = false;
        for (int gen = 0; gen < Journal::kGenerations && !restored;
             ++gen) {
            std::string path = journal.checkpointPath(point.index,
                                                      gen);
            std::error_code ec;
            if (!std::filesystem::exists(path, ec))
                continue;
            auto candidate = freshRun();
            try {
                candidate->loadCheckpoint(path);
                run = std::move(candidate);
                restored = true;
            } catch (const Error &e) {
                warn("discarding checkpoint '", path, "': ",
                     e.what());
            }
        }
        if (!run)
            run = freshRun();

        // Shared warm-up forking: points differing only post-warm-up
        // simulate the prefix once and fork from its snapshot.
        // Streaming runs are excluded — their series files must
        // contain the warm-up frames they themselves streamed.
        std::string warmPath;
        if (!restored && point.ol.warmupCycles > 0 &&
            point.cfg.obs.streamPath.empty()) {
            warmPath = journal.warmupForkPath(run->warmupHash());
            std::error_code ec;
            if (std::filesystem::exists(warmPath, ec)) {
                try {
                    run->loadWarmupFork(warmPath);
                    warmPath.clear(); // nothing left to save
                } catch (const Error &e) {
                    warn("discarding warm-up fork '", warmPath,
                         "': ", e.what());
                    run = freshRun();
                }
            }
        }

        Cycle interval = journal.ckptInterval();
        while (!run->done()) {
            run->step();
            Cycle c = run->cycle();
            if (!warmPath.empty() && c == point.ol.warmupCycles) {
                // Concurrent workers may race to write the same
                // prefix; the payloads are identical (deterministic
                // warm-up) and a torn loser is caught by the
                // container checksum, so last-rename-wins is safe.
                std::error_code ec;
                if (!std::filesystem::exists(warmPath, ec))
                    run->saveWarmupFork(warmPath);
                warmPath.clear();
            }
            if (interval > 0 && !run->done() && c % interval == 0) {
                journal.rotateCheckpoints(point.index);
                run->saveCheckpoint(
                    journal.checkpointPath(point.index, 0));
            }
        }
        out = fromOpenLoop(point, run->finish());
    } catch (const Error &e) {
        out = RunResult{};
        out.point = point;
        out.error = e.what();
        // Watchdog postmortem: park the dying run's full state and a
        // diagnostic snapshot next to the error record, so a tripped
        // audit can be dissected (or re-simulated) after the sweep.
        if (run) {
            try {
                run->saveCheckpoint(
                    journal.postmortemCheckpointPath(point.index));
            } catch (const Error &e2) {
                warn("cannot write postmortem checkpoint for run ",
                     point.index, ": ", e2.what());
            }
            try {
                std::ostringstream report;
                report << "postmortem: " << point.experiment
                       << " run " << point.index << " ("
                       << point.group << ", "
                       << afcsim::toString(point.fc) << ")\n"
                       << "cycle: " << run->cycle() << " of "
                       << run->totalCycles() << "\n"
                       << "error: " << e.what() << "\n\n"
                       << Watchdog::snapshot(run->network(),
                                             run->cycle());
                writeFile(journal.postmortemReportPath(point.index),
                          report.str());
            } catch (const Error &e2) {
                warn("cannot write postmortem report for run ",
                     point.index, ": ", e2.what());
            }
        }
    }
    exportObs(point, out);
    out.wallMs = msSince(t0);
    if (out.wallMs > 0.0) {
        double sim_cycles = static_cast<double>(
            point.ol.warmupCycles + point.ol.measureCycles);
        out.cyclesPerSec = sim_cycles / (out.wallMs / 1000.0);
    }
    journal.storeResult(out);
    return out;
}

ParallelRunner::ParallelRunner(int threads) : threads_(threads)
{
    if (threads_ <= 0) {
        threads_ = static_cast<int>(std::thread::hardware_concurrency());
        if (threads_ <= 0)
            threads_ = 1;
    }
}

std::vector<RunResult>
ParallelRunner::run(const std::vector<RunPoint> &points,
                    const ProgressFn &progress,
                    Journal *journal) const
{
    std::vector<RunResult> results(points.size());
    if (points.empty())
        return results;

    int workers = std::min<int>(threads_,
                                static_cast<int>(points.size()));
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> done{0};
    std::mutex progress_mutex;

    auto work = [&]() {
        for (;;) {
            std::size_t i = cursor.fetch_add(1);
            if (i >= points.size())
                return;
            results[i] = journal ? executeRun(points[i], *journal)
                                 : executeRun(points[i]);
            int d = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(results[i], d,
                         static_cast<int>(points.size()));
            }
        }
    };

    if (workers <= 1) {
        work();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (auto &t : pool)
        t.join();
    return results;
}

ParallelRunner::GridOutcome
ParallelRunner::runSpec(const ExperimentSpec &spec,
                        const ProgressFn &progress,
                        Journal *journal) const
{
    auto t0 = std::chrono::steady_clock::now();
    GridOutcome out;
    out.results = run(spec.expand(), progress, journal);
    out.wallMs = msSince(t0);
    for (const auto &r : out.results) {
        out.totalSimCycles += r.point.kind == RunKind::OpenLoop
            ? static_cast<double>(r.point.ol.warmupCycles +
                                  r.point.ol.measureCycles)
            : r.runtimeCycles;
    }
    return out;
}

ParallelRunner::ProgressFn
stderrProgress()
{
    return [](const RunResult &r, int done, int total) {
        std::fprintf(stderr,
                     "[%3d/%3d] %-12s %-24s %-16s %7.0f ms  "
                     "%6.2f Mcyc/s\n",
                     done, total, r.point.experiment.c_str(),
                     r.point.group.c_str(),
                     afcsim::toString(r.point.fc).c_str(), r.wallMs,
                     r.cyclesPerSec / 1e6);
    };
}

} // namespace afcsim::exp
