/**
 * @file
 * Parallel experiment execution. Every RunPoint is an independent,
 * deterministic simulation (its own Network, RNG seed and stats), so
 * a grid can be executed by a pool of worker threads with no
 * cross-run synchronization beyond the work queue. Results land in
 * grid-index order regardless of thread count or completion order,
 * which makes the emitted JSON bit-identical for any --threads N.
 */

#ifndef AFCSIM_EXP_RUNNER_HH
#define AFCSIM_EXP_RUNNER_HH

#include <functional>
#include <vector>

#include "exp/result.hh"
#include "exp/spec.hh"

namespace afcsim::exp
{

class Journal;

/** Execute one run point synchronously on the calling thread. */
RunResult executeRun(const RunPoint &point);

/**
 * Crash-safe variant: consult the journal first (a done marker loads
 * back instantly; a point that crashed maxAttempts times degrades to
 * an error record), restart interrupted open-loop runs from their
 * newest valid periodic checkpoint (or a shared warm-up fork), write
 * rotated checkpoints every journal.ckptInterval() cycles, dump a
 * postmortem checkpoint + watchdog snapshot when the run dies on a
 * recoverable error, and land the result as an atomic done marker.
 * The executed simulation is bit-identical to executeRun(point).
 */
RunResult executeRun(const RunPoint &point, Journal &journal);

/**
 * Fixed-size thread pool over a run grid.
 *
 * Workers claim points from an atomic cursor (dynamic load balancing:
 * cheap low-rate runs and expensive near-saturation runs interleave)
 * and write each result into its point's slot of the output vector.
 */
class ParallelRunner
{
  public:
    /**
     * Called after each run completes (under an internal mutex, so
     * callbacks may print). `done` counts completed runs.
     */
    using ProgressFn =
        std::function<void(const RunResult &result, int done, int total)>;

    /** @param threads worker count; 0 = hardware concurrency. */
    explicit ParallelRunner(int threads = 0);

    int threads() const { return threads_; }

    /** Execute all points; returns results in point-index order.
     *  With a journal, each point runs through the crash-safe
     *  executeRun overload (per-point files are distinct, so the
     *  workers never contend on the journal). */
    std::vector<RunResult> run(const std::vector<RunPoint> &points,
                               const ProgressFn &progress = {},
                               Journal *journal = nullptr) const;

    /** expand() + run() + wall-clock totals in one call. */
    struct GridOutcome
    {
        std::vector<RunResult> results;
        double wallMs = 0.0;        ///< whole-grid wall time
        double totalSimCycles = 0.0;///< sum of simulated cycles
        /** Aggregate simulation speed over the grid. */
        double cyclesPerSec() const
        {
            return wallMs > 0 ? totalSimCycles / (wallMs / 1000.0) : 0.0;
        }
    };

    GridOutcome runSpec(const ExperimentSpec &spec,
                        const ProgressFn &progress = {},
                        Journal *journal = nullptr) const;

  private:
    int threads_;
};

/**
 * Progress printer for CLI/bench use: one stderr line per completed
 * run with wall-clock and simulation-speed telemetry.
 */
ParallelRunner::ProgressFn stderrProgress();

} // namespace afcsim::exp

#endif // AFCSIM_EXP_RUNNER_HH
