#include "exp/spec.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/configfile.hh"
#include "common/error.hh"
#include "common/log.hh"

namespace afcsim::exp
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

double
toDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        AFCSIM_CONFIG_ERROR("spec key '", key, "': bad number '", value, "'");
    return v;
}

long
toInt(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        AFCSIM_CONFIG_ERROR("spec key '", key, "': bad integer '", value, "'");
    return v;
}

bool
toBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    AFCSIM_CONFIG_ERROR("spec key '", key, "': bad boolean '", value, "'");
}

/** Short stable label for a rate group ("rate=0.05"). */
std::string
rateLabel(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "rate=%g", rate);
    return buf;
}

/** Group-label suffix for the fault axis ("fault=0.005"). */
std::string
faultLabel(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fault=%g", rate);
    return buf;
}

} // namespace

std::string
toString(RunKind k)
{
    return k == RunKind::OpenLoop ? "open_loop" : "closed_loop";
}

RunKind
runKindFromString(const std::string &name)
{
    if (name == "open_loop" || name == "openloop" || name == "open")
        return RunKind::OpenLoop;
    if (name == "closed_loop" || name == "closedloop" || name == "closed")
        return RunKind::ClosedLoop;
    AFCSIM_CONFIG_ERROR("unknown experiment kind '", name,
                 "' (want open_loop or closed_loop)");
}

void
ExperimentSpec::rateSweep(double step, double max)
{
    AFCSIM_ASSERT(step > 0 && max > 0, "rate sweep needs positive bounds");
    rates.clear();
    for (double r = step; r <= max + 1e-9; r += step)
        rates.push_back(r);
}

std::vector<RunPoint>
ExperimentSpec::expand() const
{
    if (configs.empty())
        AFCSIM_CONFIG_ERROR("experiment '", name, "': no flow controls");
    if (repeats < 1)
        AFCSIM_CONFIG_ERROR("experiment '", name, "': repeats must be >= 1");
    if (search.enabled) {
        if (kind != RunKind::OpenLoop)
            AFCSIM_CONFIG_ERROR("experiment '", name,
                         "': search requires an open-loop spec");
        if (!rates.empty())
            AFCSIM_CONFIG_ERROR("experiment '", name,
                         "': search spec must not list rates "
                         "(the search finds them)");
        search.validate(name);
    }
    if (kind == RunKind::OpenLoop && rates.empty() && !search.enabled)
        AFCSIM_CONFIG_ERROR("experiment '", name, "': open-loop spec has no rates");
    if (kind == RunKind::ClosedLoop && workloads.empty())
        AFCSIM_CONFIG_ERROR("experiment '", name,
                     "': closed-loop spec has no workloads");
    if (obsStream) {
        if (obsDir.empty())
            AFCSIM_CONFIG_ERROR("experiment '", name,
                         "': obs_stream needs obs_dir (the stream "
                         "files live there)");
        if (base.obs.sampleInterval == 0)
            AFCSIM_CONFIG_ERROR("experiment '", name,
                         "': obs_stream needs a sampler "
                         "(set obs.interval)");
    }

    std::vector<int> meshes = meshSizes;
    if (meshes.empty())
        meshes.push_back(base.width);

    // Resolve workload profiles once (fatal on bad names up front).
    std::vector<WorkloadProfile> profiles;
    if (kind == RunKind::ClosedLoop) {
        for (const auto &w : workloads)
            profiles.push_back(workloadByName(w));
    }

    // Fault axis: a negative sentinel leaves base.faults untouched
    // when no rates are listed, so fault-free specs expand exactly as
    // before the axis existed.
    std::vector<double> faults = faultRates;
    if (faults.empty())
        faults.push_back(-1.0);

    std::vector<RunPoint> points;
    int index = 0;
    for (int mesh : meshes) {
        // A search spec has no rate axis: one group per mesh,
        // labelled by the traffic pattern (the fault suffix still
        // composes, e.g. "uniform fault=0.005"). The cell's rate is
        // the search seed; the controller overrides it per probe.
        std::size_t groups = kind == RunKind::OpenLoop
            ? (search.enabled ? 1 : rates.size())
            : profiles.size();
        for (std::size_t g = 0; g < groups; ++g) {
            for (double frate : faults) {
                for (int rep = 0; rep < repeats; ++rep) {
                    for (FlowControl fc : configs) {
                        RunPoint p;
                        p.index = index++;
                        p.kind = kind;
                        p.experiment = name;
                        p.mesh = mesh;
                        p.fc = fc;
                        p.repeat = rep;
                        p.seed = baseSeed + 1000ull * rep;
                        p.cfg = base;
                        p.cfg.width = mesh;
                        p.cfg.height = mesh;
                        p.cfg.seed = p.seed;
                        p.maxCycles = maxCycles;
                        p.obsDir = obsDir;
                        if (obsStream) {
                            // Same filename the runner's post-hoc
                            // export would use, so nothing is
                            // written twice (writeSeriesCsv then
                            // finalizes the stream instead).
                            p.cfg.obs.streamPath =
                                obsDir + "/" + name + "_run" +
                                std::to_string(p.index) +
                                "_series.csv";
                        }
                        if (kind == RunKind::OpenLoop) {
                            if (search.enabled) {
                                p.rate = search.seedRate;
                                p.group = pattern;
                            } else {
                                p.rate = rates[g];
                                p.group = rateLabel(p.rate);
                            }
                            p.ol.injectionRate = p.rate;
                            p.ol.pattern = pattern;
                            p.ol.warmupCycles = warmupCycles;
                            p.ol.measureCycles = measureCycles;
                            p.ol.drainCycles = drainCycles;
                            p.ol.dataPacketFraction =
                                dataPacketFraction;
                        } else {
                            WorkloadProfile w = profiles[g];
                            double s = scale;
                            if (scaleWithMesh)
                                s *= static_cast<double>(mesh * mesh) /
                                     9.0;
                            w.measureTransactions =
                                static_cast<std::uint64_t>(
                                    w.measureTransactions * s);
                            w.warmupTransactions =
                                static_cast<std::uint64_t>(
                                    w.warmupTransactions * s);
                            p.workload = w;
                            p.group = w.name;
                        }
                        if (frate >= 0.0) {
                            p.cfg.faults.corruptRate = frate;
                            if (frate > 0.0 &&
                                !base.reliability.enabled) {
                                p.cfg.reliability.enabled = true;
                                p.cfg.reliability.timeoutCycles = 256;
                                p.cfg.reliability.maxRetries = 16;
                            }
                            p.group += " " + faultLabel(frate);
                        }
                        p.cfg.validate();
                        points.push_back(std::move(p));
                    }
                }
            }
        }
    }
    return points;
}

ExperimentSpec
ExperimentSpec::fromText(const std::string &text)
{
    ExperimentSpec spec;
    std::stringstream ss(text);
    std::string line;
    int lineno = 0;
    while (std::getline(ss, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos)
            AFCSIM_CONFIG_ERROR("spec line ", lineno,
                         ": expected 'key = value', got '", line, "'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));

        if (key.rfind("exp.", 0) != 0) {
            // Everything without the exp. prefix is a NetworkConfig
            // key applied to the base configuration.
            applyConfigKey(spec.base, key, value);
            continue;
        }
        std::string k = key.substr(4);
        if (k == "name") {
            spec.name = value;
        } else if (k == "description") {
            spec.description = value;
        } else if (k == "kind") {
            spec.kind = runKindFromString(value);
        } else if (k == "pattern") {
            spec.pattern = value;
        } else if (k == "rates") {
            spec.rates.clear();
            for (const auto &r : splitList(value))
                spec.rates.push_back(toDouble(key, r));
        } else if (k == "fault_rates") {
            spec.faultRates.clear();
            for (const auto &r : splitList(value))
                spec.faultRates.push_back(toDouble(key, r));
        } else if (k == "configs") {
            spec.configs.clear();
            for (const auto &c : splitList(value))
                spec.configs.push_back(flowControlFromString(c));
        } else if (k == "workloads") {
            spec.workloads = splitList(value);
        } else if (k == "mesh") {
            spec.meshSizes.clear();
            for (const auto &m : splitList(value))
                spec.meshSizes.push_back(
                    static_cast<int>(toInt(key, m)));
        } else if (k == "warmup") {
            spec.warmupCycles = static_cast<Cycle>(toInt(key, value));
        } else if (k == "measure") {
            spec.measureCycles = static_cast<Cycle>(toInt(key, value));
        } else if (k == "drain") {
            spec.drainCycles = static_cast<Cycle>(toInt(key, value));
        } else if (k == "data_fraction") {
            spec.dataPacketFraction = toDouble(key, value);
        } else if (k == "repeats") {
            spec.repeats = static_cast<int>(toInt(key, value));
        } else if (k == "seed") {
            spec.baseSeed = static_cast<std::uint64_t>(toInt(key, value));
        } else if (k == "scale") {
            spec.scale = toDouble(key, value);
        } else if (k == "scale_with_mesh") {
            spec.scaleWithMesh = toBool(key, value);
        } else if (k == "max_cycles") {
            spec.maxCycles = static_cast<Cycle>(toInt(key, value));
        } else if (k == "ckpt_interval") {
            spec.ckptInterval = static_cast<Cycle>(toInt(key, value));
        } else if (k == "max_attempts") {
            spec.maxAttempts = static_cast<int>(toInt(key, value));
        } else if (k == "obs_dir") {
            spec.obsDir = value;
        } else if (k == "obs_stream") {
            spec.obsStream = toBool(key, value);
        } else if (k == "search") {
            spec.search.enabled = toBool(key, value);
        } else if (k.rfind("search.", 0) == 0) {
            search::applySearchKey(spec.search, k.substr(7), value);
        } else {
            AFCSIM_CONFIG_ERROR("unknown spec key '", key, "'");
        }
    }
    return spec;
}

ExperimentSpec
ExperimentSpec::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        AFCSIM_CONFIG_ERROR("cannot open experiment spec '", path, "'");
    std::stringstream ss;
    ss << in.rdbuf();
    return fromText(ss.str());
}

} // namespace afcsim::exp
