/**
 * @file
 * Declarative experiment specifications. An ExperimentSpec describes
 * a grid of independent simulator runs — mesh sizes x flow controls
 * x (injection rates | workloads) x repeat seeds — which expands to a
 * flat list of fully-resolved RunPoints. Every RunPoint carries its
 * own NetworkConfig and RNG seed, so runs are deterministic and can
 * execute in any order on any number of threads (see runner.hh).
 */

#ifndef AFCSIM_EXP_SPEC_HH
#define AFCSIM_EXP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "search/spec.hh"
#include "sim/workload.hh"

namespace afcsim::exp
{

/** What one run simulates. */
enum class RunKind
{
    OpenLoop,   ///< synthetic traffic at a fixed offered load
    ClosedLoop, ///< multicore workload to a transaction count
};

std::string toString(RunKind k);
RunKind runKindFromString(const std::string &name);

/** One fully-resolved cell of the experiment grid. */
struct RunPoint
{
    int index = 0;           ///< stable position in the expanded grid
    RunKind kind = RunKind::OpenLoop;
    std::string experiment;  ///< owning spec name
    /** Grouping key for aggregation: workload name or "rate=<r>". */
    std::string group;
    int mesh = 3;            ///< mesh edge (width == height)
    FlowControl fc = FlowControl::Backpressured;
    int repeat = 0;          ///< repeat ordinal (distinct seed)
    std::uint64_t seed = 0;
    NetworkConfig cfg;       ///< resolved network (incl. seed, size)
    // Open-loop only:
    double rate = 0.0;
    OpenLoopConfig ol;
    // Closed-loop only:
    WorkloadProfile workload;
    /** Cycle budget for closed-loop runs (0 = harness default). A
     *  run that exceeds it raises SimError and becomes an error
     *  record instead of wedging the grid. */
    Cycle maxCycles = 0;
    /**
     * Directory for per-run observability exports (empty = none).
     * The runner writes `<experiment>_run<index>_trace.json` and/or
     * `_series.csv` there; filenames embed the run index, so
     * parallel runs never collide.
     */
    std::string obsDir;
};

/**
 * Declarative description of a run grid. Vector fields are axes of
 * the grid; scalar fields apply to every run. Expansion order is
 * mesh -> group (rate/workload) -> fault rate -> repeat -> flow
 * control, so run indices (and therefore seeds and emitted JSON) are
 * independent of how the runs are later scheduled.
 */
struct ExperimentSpec
{
    std::string name = "adhoc";
    std::string description;
    RunKind kind = RunKind::OpenLoop;

    /** Base network configuration; per-run copies override size/seed. */
    NetworkConfig base;
    /** Mesh edge sizes; empty means {base.width}. */
    std::vector<int> meshSizes;
    /** Flow-control mechanisms to compare. */
    std::vector<FlowControl> configs = {FlowControl::Backpressured,
                                        FlowControl::Backpressureless,
                                        FlowControl::Afc};

    // --- Open-loop axis -------------------------------------------
    /** Offered injection rates (flits/node/cycle). */
    std::vector<double> rates;
    std::string pattern = "uniform";
    Cycle warmupCycles = 4000;
    Cycle measureCycles = 12000;
    Cycle drainCycles = 100000;
    double dataPacketFraction = 0.35;

    // --- Closed-loop axis -----------------------------------------
    /** Workload names (see workloadByName). */
    std::vector<std::string> workloads;
    /** Transaction-count scale factor (fast runs use < 1). */
    double scale = 1.0;
    /**
     * Scale transaction counts with mesh area (mesh^2 / 9) so the
     * per-node pressure stays constant across meshSizes (the scaling
     * study's methodology).
     */
    bool scaleWithMesh = false;

    /**
     * Link-fault axis: per-flit corruption rates swept as an extra
     * grid dimension (empty = base.faults left untouched). A listed
     * rate overwrites base.faults.corruptRate, and a nonzero rate
     * arms end-to-end retransmission (timeout 256 cycles, 16
     * retries — the bench_fault_sweep setup) unless the base config
     * already enabled it, so corrupted flits are recovered rather
     * than silently lost. Group labels gain a " fault=<r>" suffix so
     * aggregation never mixes rates.
     */
    std::vector<double> faultRates;

    /**
     * Adaptive load search (`exp.search` block, src/search). When
     * enabled the spec lists no rates — the search finds the maximum
     * sustainable rate per grid cell — and expand() emits one cell
     * per mesh x fault x repeat x flow control, grouped by traffic
     * pattern. warmupCycles/measureCycles become the testing-stage
     * budgets unless the block overrides them.
     */
    search::SearchSpec search;

    /**
     * Crash-safe sweeps (`exp.ckpt_interval`, journal.hh): when the
     * grid runs under a `--resume` journal, open-loop runs write a
     * periodic checkpoint every ckptInterval simulated cycles (0 =
     * done markers only, no mid-run restart points).
     */
    Cycle ckptInterval = 2000;
    /**
     * Error boundary for resumed grids (`exp.max_attempts`): a point
     * whose process crashed maxAttempts times without producing a
     * result is marked degraded instead of being retried forever.
     */
    int maxAttempts = 3;

    /** Independent repeats; run r uses seed baseSeed + 1000 r. */
    int repeats = 1;
    std::uint64_t baseSeed = 7;
    /** Per-run cycle budget (closed-loop; 0 = harness default). */
    Cycle maxCycles = 0;
    /** Observability export directory (empty = no side files). */
    std::string obsDir;
    /**
     * Stream the sampler series to disk as frames are evicted from
     * the ring (`exp.obs_stream`, src/obs). Each run streams into the
     * same `<obsDir>/<name>_run<index>_series.csv` file the runner
     * would otherwise write post-hoc, so long runs keep the full
     * series instead of the ring's tail. Requires obsDir and a
     * sampler interval.
     */
    bool obsStream = false;

    /** Convenience: uniform rate ladder step, step*2, ..., <= max. */
    void rateSweep(double step, double max);

    /** Expand the grid to fully-resolved run points (validated). */
    std::vector<RunPoint> expand() const;

    /**
     * Parse a spec from `key = value` text. Keys prefixed `exp.`
     * configure the spec (kind, rates, fault_rates, configs,
     * workloads, warmup, measure, repeats, seed, scale, mesh,
     * pattern, ...); all other
     * keys are NetworkConfig keys applied to `base` (see
     * configfile.hh). Throws ConfigError on unknown or malformed
     * keys.
     */
    static ExperimentSpec fromText(const std::string &text);
    /** Load fromText() from a file; ConfigError if unreadable. */
    static ExperimentSpec fromFile(const std::string &path);
};

} // namespace afcsim::exp

#endif // AFCSIM_EXP_SPEC_HH
