#include "fault/fault.hh"

#include "ckpt/state.hh"

namespace afcsim
{

std::string
toString(FaultEvent::Kind kind)
{
    switch (kind) {
      case FaultEvent::Kind::Corrupt:
        return "corrupt";
      case FaultEvent::Kind::LinkDown:
        return "link_down";
      case FaultEvent::Kind::Stall:
        return "stall";
      case FaultEvent::Kind::CreditDrop:
        return "credit_drop";
    }
    return "unknown";
}

void
FaultStats::record(Cycle now, NodeId node, int dir, FaultEvent::Kind kind)
{
    if (events.size() >= kMaxEvents)
        return;
    FaultEvent e;
    e.cycle = now;
    e.node = node;
    e.dir = static_cast<std::uint8_t>(dir);
    e.kind = kind;
    events.push_back(e);
}

JsonValue
toJson(const FaultStats &stats)
{
    JsonValue o = JsonValue::object();
    o.set("corruptions",
          JsonValue(static_cast<std::int64_t>(stats.corruptions)));
    o.set("link_down_events",
          JsonValue(static_cast<std::int64_t>(stats.linkDownEvents)));
    o.set("stall_events",
          JsonValue(static_cast<std::int64_t>(stats.stallEvents)));
    o.set("flits_held",
          JsonValue(static_cast<std::int64_t>(stats.flitsHeld)));
    o.set("credits_dropped",
          JsonValue(static_cast<std::int64_t>(stats.creditsDropped)));
    JsonValue events = JsonValue::array();
    for (const auto &e : stats.events) {
        JsonValue ev = JsonValue::object();
        ev.set("cycle", JsonValue(static_cast<std::int64_t>(e.cycle)));
        ev.set("node", JsonValue(static_cast<std::int64_t>(e.node)));
        ev.set("dir", JsonValue(static_cast<std::int64_t>(e.dir)));
        ev.set("kind", JsonValue(toString(e.kind)));
        events.push(std::move(ev));
    }
    o.set("events", std::move(events));
    return o;
}

FaultInjector::FaultInjector(const FaultSpec &spec, int num_nodes,
                             std::uint64_t seed)
    : spec_(spec), links_(num_nodes)
{
    // Every link forks its own stream so the draw sequence on one
    // link is independent of activity on any other.
    Rng root(seed, 0xfa417);
    for (int n = 0; n < num_nodes; ++n) {
        for (int d = 0; d < kNumNetPorts; ++d)
            links_[n][d].rng = root.fork(
                static_cast<std::uint64_t>(n) * kNumNetPorts + d + 1);
    }
}

void
FaultInjector::beginCycle(Cycle now)
{
    if (spec_.linkDownRate <= 0.0 && spec_.stallRate <= 0.0)
        return;
    for (std::size_t n = 0; n < links_.size(); ++n) {
        for (int d = 0; d < kNumNetPorts; ++d) {
            LinkState &link = links_[n][d];
            if (spec_.linkDownRate > 0.0 &&
                link.rng.chance(spec_.linkDownRate)) {
                Cycle len = static_cast<Cycle>(link.rng.range(
                    static_cast<std::int64_t>(spec_.linkDownMinCycles),
                    static_cast<std::int64_t>(spec_.linkDownMaxCycles)));
                link.downUntil = std::max(link.downUntil, now + len);
                ++stats_.linkDownEvents;
                stats_.record(now, static_cast<NodeId>(n), d,
                              FaultEvent::Kind::LinkDown);
            }
            if (spec_.stallRate > 0.0 &&
                link.rng.chance(spec_.stallRate)) {
                Cycle len = static_cast<Cycle>(link.rng.range(
                    static_cast<std::int64_t>(spec_.stallMinCycles),
                    static_cast<std::int64_t>(spec_.stallMaxCycles)));
                link.stallUntil = std::max(link.stallUntil, now + len);
                ++stats_.stallEvents;
                stats_.record(now, static_cast<NodeId>(n), d,
                              FaultEvent::Kind::Stall);
            }
        }
    }
}

void
FaultInjector::corrupt(LinkState &link, NodeId node, int dir, Flit &flit,
                       Cycle now)
{
    flit.payload ^= 1u << link.rng.below(32);
    ++stats_.corruptions;
    stats_.record(now, node, dir, FaultEvent::Kind::Corrupt);
}

bool
FaultInjector::onFlitArrival(NodeId node, int dir, Flit &flit, Cycle now)
{
    LinkState &link = links_.at(node)[dir];
    if (now < link.downUntil) {
        corrupt(link, node, dir, flit, now);
    } else if (spec_.corruptRate > 0.0 &&
               link.rng.chance(spec_.corruptRate)) {
        corrupt(link, node, dir, flit, now);
    }
    // A flit joins the stall queue while the link is stalled, while
    // earlier captives are still queued (FIFO), or when a captive
    // was already released this cycle (one arrival per link/cycle).
    if (now < link.stallUntil || !link.held.empty() ||
        link.releasedAt == now) {
        link.held.push_back(flit);
        ++stats_.flitsHeld;
        return false;
    }
    return true;
}

bool
FaultInjector::onCreditArrival(NodeId node, int dir, Cycle now)
{
    if (spec_.creditLossRate <= 0.0)
        return true;
    LinkState &link = links_.at(node)[dir];
    if (link.rng.chance(spec_.creditLossRate)) {
        ++stats_.creditsDropped;
        stats_.record(now, node, dir, FaultEvent::Kind::CreditDrop);
        return false;
    }
    return true;
}

void
FaultInjector::releaseHeld(Cycle now,
                           const std::function<void(NodeId, int, Flit &)> &fn)
{
    for (std::size_t n = 0; n < links_.size(); ++n) {
        for (int d = 0; d < kNumNetPorts; ++d) {
            LinkState &link = links_[n][d];
            if (link.held.empty() || now < link.stallUntil)
                continue;
            Flit flit = link.held.front();
            link.held.pop_front();
            link.releasedAt = now;
            fn(static_cast<NodeId>(n), d, flit);
        }
    }
}

std::uint64_t
FaultInjector::heldFlits() const
{
    std::uint64_t n = 0;
    for (const auto &node : links_) {
        for (const auto &link : node)
            n += link.held.size();
    }
    return n;
}

void
FaultInjector::ckptSave(ckpt::Writer &w) const
{
    w.u64(links_.size());
    for (const auto &node : links_) {
        for (const auto &link : node) {
            ckpt::put(w, link.rng);
            w.u64(link.downUntil);
            w.u64(link.stallUntil);
            w.u64(link.releasedAt);
            w.u64(link.held.size());
            for (const auto &f : link.held)
                ckpt::put(w, f);
        }
    }
    w.u64(stats_.corruptions);
    w.u64(stats_.linkDownEvents);
    w.u64(stats_.stallEvents);
    w.u64(stats_.flitsHeld);
    w.u64(stats_.creditsDropped);
    w.u64(stats_.events.size());
    for (const auto &e : stats_.events) {
        w.u64(e.cycle);
        w.i32(e.node);
        w.u8(e.dir);
        w.u8(static_cast<std::uint8_t>(e.kind));
    }
}

void
FaultInjector::ckptLoad(ckpt::Reader &r)
{
    std::uint64_t nodes = r.u64();
    AFCSIM_ASSERT(nodes == links_.size(),
                  "fault checkpoint: node count mismatch");
    for (auto &node : links_) {
        for (auto &link : node) {
            link.rng = ckpt::getRng(r);
            link.downUntil = r.u64();
            link.stallUntil = r.u64();
            link.releasedAt = r.u64();
            link.held.clear();
            std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i)
                link.held.push_back(ckpt::getFlit(r));
        }
    }
    stats_.corruptions = r.u64();
    stats_.linkDownEvents = r.u64();
    stats_.stallEvents = r.u64();
    stats_.flitsHeld = r.u64();
    stats_.creditsDropped = r.u64();
    stats_.events.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        FaultEvent e;
        e.cycle = r.u64();
        e.node = static_cast<NodeId>(r.i32());
        e.dir = r.u8();
        e.kind = static_cast<FaultEvent::Kind>(r.u8());
        stats_.events.push_back(e);
    }
}

} // namespace afcsim
