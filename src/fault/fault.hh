/**
 * @file
 * Deterministic, seeded fault injection at the network's links
 * (tentpole of the resilience subsystem). Three fault mechanisms:
 *
 *  - transient payload upsets: a traversing flit has one payload bit
 *    flipped with probability FaultSpec::corruptRate;
 *  - link-down intervals: a link enters a down interval with per-
 *    cycle probability linkDownRate; every flit traversing a down
 *    link is corrupted (a burst of upsets);
 *  - stalls: a link enters a stall interval with per-cycle
 *    probability stallRate; arriving flits are held at the link and
 *    released FIFO, at most one per cycle, once the stall ends —
 *    preserving the routers' one-arrival-per-link-per-cycle
 *    invariant.
 *
 * Faults never drop flits in the network (that would silently leak
 * credits in buffered routers); loss is realized at the receiving
 * NIC, which discards corrupted flits after checksum verification.
 * The exception is creditLossRate, which drops credit backflows and
 * thereby deliberately corrupts protocol state — it exists so the
 * watchdog tests can manufacture deadlocks and credit-accounting
 * violations on demand.
 *
 * Determinism: every link owns a forked PCG32 stream, and the per
 * -link draw sequence is a pure function of the cycle number and the
 * (deterministic) arrival order on that link, so a (seed, spec) pair
 * reproduces the exact fault trace regardless of runner thread
 * count.
 */

#ifndef AFCSIM_FAULT_FAULT_HH
#define AFCSIM_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "network/flit.hh"

namespace afcsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** One recorded fault event (bounded trace for reports and tests). */
struct FaultEvent
{
    enum class Kind : std::uint8_t { Corrupt, LinkDown, Stall, CreditDrop };

    Cycle cycle = 0;
    NodeId node = kInvalidNode; ///< upstream end of the faulted link
    std::uint8_t dir = 0;       ///< output port at `node`
    Kind kind = Kind::Corrupt;
};

/** Human-readable name of a fault-event kind. */
std::string toString(FaultEvent::Kind kind);

/** Counters plus a bounded event trace for all injected faults. */
struct FaultStats
{
    /** Events kept in the trace before it saturates. */
    static constexpr std::size_t kMaxEvents = 256;

    std::uint64_t corruptions = 0;     ///< flit payload upsets
    std::uint64_t linkDownEvents = 0;  ///< down intervals started
    std::uint64_t stallEvents = 0;     ///< stall intervals started
    std::uint64_t flitsHeld = 0;       ///< flits delayed by stalls
    std::uint64_t creditsDropped = 0;  ///< credit backflows lost
    std::vector<FaultEvent> events;    ///< first kMaxEvents events

    std::uint64_t
    total() const
    {
        return corruptions + linkDownEvents + stallEvents + creditsDropped;
    }

    void record(Cycle now, NodeId node, int dir, FaultEvent::Kind kind);
};

/** JSON shape: counters plus the bounded event trace. */
JsonValue toJson(const FaultStats &stats);

/**
 * Per-link fault state machine driven by the Network kernel. The
 * kernel calls beginCycle() once per cycle, filters every flit and
 * credit arrival through onFlitArrival()/onCreditArrival(), and
 * releases stall-held flits via releaseHeld(). Links are identified
 * by their upstream end: (node, dir) is node's output port dir, the
 * same indexing as Network's flit channels.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultSpec &spec, int num_nodes,
                  std::uint64_t seed);

    const FaultSpec &spec() const { return spec_; }
    const FaultStats &stats() const { return stats_; }

    /** Roll this cycle's interval starts (fixed link order). */
    void beginCycle(Cycle now);

    /**
     * Filter a flit arriving off link (node, dir) at cycle `now`.
     * May corrupt the flit in place. Returns false when the flit is
     * captured into the link's stall queue (the caller must not
     * deliver it); it will reappear via releaseHeld().
     */
    bool onFlitArrival(NodeId node, int dir, Flit &flit, Cycle now);

    /** Filter a credit arrival; false means the credit was lost. */
    bool onCreditArrival(NodeId node, int dir, Cycle now);

    /**
     * Release at most one held flit per link whose stall interval
     * has ended. Call once per cycle, before delivering that
     * cycle's regular channel arrivals.
     */
    void releaseHeld(Cycle now,
                     const std::function<void(NodeId, int, Flit &)> &fn);

    /** Flits currently captured in stall queues (drain accounting). */
    std::uint64_t heldFlits() const;

    /** True once the configured hard-failure cycle is reached. */
    bool
    shouldFail(Cycle now) const
    {
        return now >= spec_.failAtCycle;
    }

    /// @name Bit-exact snapshot/restore (src/ckpt): per-link RNG
    /// streams, interval timers, stall queues, and the fault trace.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

  private:
    struct LinkState
    {
        Rng rng{0, 0};
        Cycle downUntil = 0;     ///< corrupting-all until this cycle
        Cycle stallUntil = 0;    ///< holding arrivals until this cycle
        Cycle releasedAt = kNeverCycle; ///< last releaseHeld() cycle
        std::deque<Flit> held;
    };

    void corrupt(LinkState &link, NodeId node, int dir, Flit &flit,
                 Cycle now);

    FaultSpec spec_;
    std::vector<std::array<LinkState, kNumNetPorts>> links_;
    FaultStats stats_;
};

} // namespace afcsim

#endif // AFCSIM_FAULT_FAULT_HH
