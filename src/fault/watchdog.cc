#include "fault/watchdog.hh"

#include <sstream>

#include "ckpt/state.hh"
#include "common/error.hh"
#include "fault/fault.hh"
#include "network/network.hh"
#include "router/afc.hh"
#include "router/backpressured.hh"
#include "router/vcshape.hh"

namespace afcsim
{

namespace
{

/** Dispatches + deliveries: the network's monotone work measure. */
std::uint64_t
totalWork(const Network &net)
{
    std::uint64_t work = 0;
    for (NodeId n = 0; n < net.mesh().numNodes(); ++n) {
        work += net.router(n).stats().flitsRouted;
        work += net.nic(n).lifetime().flitsDelivered;
    }
    return work;
}

} // namespace

std::string
Watchdog::snapshot(const Network &net, Cycle now)
{
    constexpr int kMaxNodes = 16;
    std::ostringstream os;
    os << "diagnostic snapshot @cycle " << now
       << " (fc=" << toString(net.flowControl())
       << ", flits in flight " << net.flitsInFlight() << ")";
    int nodes = net.mesh().numNodes();
    for (NodeId n = 0; n < std::min(nodes, kMaxNodes); ++n) {
        const Router &r = net.router(n);
        os << "\n  node " << n << ": mode="
           << (r.mode() == RouterMode::Backpressured ? "BP" : "BPL")
           << " occ=" << r.occupancy();
        if (const auto *afc = dynamic_cast<const AfcRouter *>(&r))
            os << " ewma=" << afc->trafficIntensity();
        os << " nicq=" << net.nic(n).queuedFlits()
           << " reasm=" << net.nic(n).pendingReassemblies();
    }
    if (nodes > kMaxNodes)
        os << "\n  ... (" << (nodes - kMaxNodes) << " more nodes)";
    return os.str();
}

void
Watchdog::check(const Network &net, Cycle now)
{
    if (spec_.conservationCheck)
        checkConservation(net, now);
    if (spec_.creditCheck)
        checkCredits(net, now);
    checkFlitAges(net, now);
    checkProgress(net, now);
}

void
Watchdog::checkConservation(const Network &net, Cycle now) const
{
    // The drop-based variant keeps private retransmit copies inside
    // its routers; its books intentionally do not balance mid-run.
    if (net.flowControl() == FlowControl::BackpressurelessDrop)
        return;

    std::uint64_t injected = 0, retransmitted = 0, delivered = 0;
    std::uint64_t corrupted = 0, duplicate = 0, queued = 0;
    for (NodeId n = 0; n < net.mesh().numNodes(); ++n) {
        const auto &life = net.nic(n).lifetime();
        injected += life.flitsInjected;
        retransmitted += life.flitsRetransmitted;
        delivered += life.flitsDelivered;
        corrupted += life.flitsCorrupted;
        duplicate += life.flitsDuplicate;
        queued += net.nic(n).queuedFlits();
    }
    std::uint64_t in_flight = net.flitsInFlight();
    if (injected + retransmitted !=
        delivered + corrupted + duplicate + queued + in_flight) {
        AFCSIM_SIM_ERROR(
            "flit-conservation violation at cycle ", now, ": injected ",
            injected, " + retransmitted ", retransmitted,
            " != delivered ", delivered, " + corrupted ", corrupted,
            " + duplicate ", duplicate, " + queued ", queued,
            " + in-flight ", in_flight, "\n", snapshot(net, now));
    }
}

void
Watchdog::checkCredits(const Network &net, Cycle now) const
{
    const Mesh &mesh = net.mesh();
    FlowControl fc = net.flowControl();

    if (fc == FlowControl::Backpressured ||
        fc == FlowControl::BackpressuredIdealBypass) {
        // Per-VC invariant, holds at every cycle boundary: upstream
        // credits + in-flight flits + in-flight credits + occupied
        // downstream slots == VC depth.
        VcShape shape(net.config().vnets);
        for (NodeId up = 0; up < mesh.numNodes(); ++up) {
            const auto *upR = dynamic_cast<const BackpressuredRouter *>(
                &net.router(up));
            for (int d = 0; d < kNumNetPorts; ++d) {
                Direction dir = static_cast<Direction>(d);
                NodeId down = mesh.neighbor(up, dir);
                if (down == kInvalidNode)
                    continue;
                const auto *downR =
                    dynamic_cast<const BackpressuredRouter *>(
                        &net.router(down));
                for (VcId vc = 0; vc < shape.totalVcs(); ++vc) {
                    std::uint64_t found = static_cast<std::uint64_t>(
                        upR->creditsFor(dir, vc));
                    for (const auto &[t, f] :
                         net.flitChannel(up, dir)->pending()) {
                        if (f.vc == vc)
                            ++found;
                    }
                    for (const auto &[t, c] :
                         net.creditChannel(down, opposite(dir))
                             ->pending()) {
                        if (c.vc == vc)
                            ++found;
                    }
                    found += downR->bufferedInVc(opposite(dir), vc);
                    std::uint64_t depth = static_cast<std::uint64_t>(
                        shape.depth(shape.vnetOf(vc)));
                    if (found != depth) {
                        AFCSIM_SIM_ERROR(
                            "credit-consistency violation at cycle ",
                            now, " on link ", up, "->", down, " vc ",
                            vc, ": credits+in-flight+buffered = ",
                            found, ", expected VC depth ", depth, "\n",
                            snapshot(net, now));
                    }
                }
            }
        }
        return;
    }

    if (fc != FlowControl::Afc &&
        fc != FlowControl::AfcAlwaysBackpressured &&
        fc != FlowControl::AfcAdaptive)
        return;

    // AFC tracks credits per virtual network, and only while the
    // downstream router is in backpressured mode. The invariant is
    // only evaluated when the link is safely mid-episode: downstream
    // fully switched (past its buffer-from cycle, no pending
    // switch), upstream tracking, and no mode-control messages in
    // flight in either direction. Outside those windows in-flight
    // flits may legitimately be handled by the deflection pipeline
    // and the books do not balance. (Derivation: any flit in flight
    // at cycle now >= T + 2L was sent after T + L, i.e. after the
    // upstream began tracking, so it is credit-accounted.)
    VcShape shape(net.config().afcVnets);
    for (NodeId up = 0; up < mesh.numNodes(); ++up) {
        const auto *upR = dynamic_cast<const AfcRouter *>(&net.router(up));
        for (int d = 0; d < kNumNetPorts; ++d) {
            Direction dir = static_cast<Direction>(d);
            NodeId down = mesh.neighbor(up, dir);
            if (down == kInvalidNode || !upR->trackingDownstream(dir))
                continue;
            const auto *downR =
                dynamic_cast<const AfcRouter *>(&net.router(down));
            if (downR->mode() != RouterMode::Backpressured ||
                downR->switchPending() ||
                now < downR->bufferFromCycle())
                continue;
            if (!net.ctlChannel(up, dir)->empty() ||
                !net.ctlChannel(down, opposite(dir))->empty())
                continue;
            for (VnetId v = 0; v < shape.numVnets(); ++v) {
                std::uint64_t found = static_cast<std::uint64_t>(
                    upR->downstreamFreeSlots(dir, v));
                for (const auto &[t, f] :
                     net.flitChannel(up, dir)->pending()) {
                    if (f.vnet == v)
                        ++found;
                }
                for (const auto &[t, c] :
                     net.creditChannel(down, opposite(dir))->pending()) {
                    if (c.vnet == v)
                        ++found;
                }
                found += static_cast<std::uint64_t>(
                    downR->occupiedSlots(opposite(dir), v));
                std::uint64_t slots =
                    static_cast<std::uint64_t>(shape.count(v));
                if (found != slots) {
                    AFCSIM_SIM_ERROR(
                        "credit-consistency violation at cycle ", now,
                        " on link ", up, "->", down, " vnet ", int(v),
                        ": free+in-flight+occupied = ", found,
                        ", expected ", slots, " slots\n",
                        snapshot(net, now));
                }
            }
        }
    }
}

void
Watchdog::checkFlitAges(const Network &net, Cycle now) const
{
    if (spec_.maxFlitAgeCycles == 0 || spec_.maxFlitAgeCycles == kNeverCycle)
        return;
    const Flit *oldest = nullptr;
    Cycle worst = 0;
    auto inspect = [&](const Flit &f) {
        Cycle age = now - f.injectTime;
        if (age > worst) {
            worst = age;
            oldest = &f;
        }
    };
    for (NodeId n = 0; n < net.mesh().numNodes(); ++n) {
        net.router(n).visitFlits(inspect);
        for (int d = 0; d < kNumNetPorts; ++d) {
            const auto *ch = net.flitChannel(n, static_cast<Direction>(d));
            if (!ch)
                continue;
            for (const auto &[t, f] : ch->pending())
                inspect(f);
        }
    }
    if (oldest && worst > spec_.maxFlitAgeCycles) {
        AFCSIM_SIM_ERROR(
            "livelock suspected at cycle ", now, ": ",
            oldest->describe(), " has been in the network for ", worst,
            " cycles (max ", spec_.maxFlitAgeCycles, ")\n",
            snapshot(net, now));
    }
}

void
Watchdog::checkProgress(const Network &net, Cycle now)
{
    std::uint64_t work = totalWork(net);
    if (work != lastWork_ || net.flitsInFlight() == 0) {
        lastWork_ = work;
        lastProgressCycle_ = now;
        return;
    }
    if (now - lastProgressCycle_ >= spec_.progressWindowCycles) {
        AFCSIM_SIM_ERROR(
            "no forward progress (deadlock suspected): no flit "
            "dispatched or delivered since cycle ", lastProgressCycle_,
            " with flits still in flight at cycle ", now, "\n",
            snapshot(net, now));
    }
}

void
Watchdog::ckptSave(ckpt::Writer &w) const
{
    w.u64(lastWork_);
    w.u64(lastProgressCycle_);
}

void
Watchdog::ckptLoad(ckpt::Reader &r)
{
    lastWork_ = r.u64();
    lastProgressCycle_ = r.u64();
}

} // namespace afcsim
