/**
 * @file
 * Runtime watchdogs: periodic whole-network consistency checks that
 * turn hangs and silent state corruption into a recoverable SimError
 * carrying a diagnostic snapshot, instead of a wedged process or a
 * wrong result. Four checks (WatchdogSpec gates each):
 *
 *  - flit conservation: every flit ever injected or retransmitted
 *    is delivered, discarded (corrupt/duplicate), queued, or in
 *    flight — nothing leaks, nothing is minted;
 *  - credit consistency: per-VC (backpressured) or per-VN (AFC,
 *    while safely in backpressured mode) credits + in-flight flits
 *    + in-flight credits + occupied downstream slots equal the
 *    buffer capacity on every tracked link;
 *  - livelock: no in-network flit's age (cycles since network
 *    entry) may exceed maxFlitAgeCycles;
 *  - progress: if flits are in flight, some router must dispatch or
 *    some NIC must deliver within every progressWindowCycles window
 *    (deadlock detection).
 */

#ifndef AFCSIM_FAULT_WATCHDOG_HH
#define AFCSIM_FAULT_WATCHDOG_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "common/types.hh"

namespace afcsim
{

class Network;

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/**
 * Periodic network auditor. The Network calls check() every
 * WatchdogSpec::intervalCycles; a failed check throws SimError with
 * a message that embeds a diagnostic snapshot of router modes,
 * buffer occupancy and EWMA values.
 */
class Watchdog
{
  public:
    explicit Watchdog(const WatchdogSpec &spec)
        : spec_(spec)
    {
    }

    const WatchdogSpec &spec() const { return spec_; }

    /** Run all enabled checks; throws SimError on a violation. */
    void check(const Network &net, Cycle now);

    /** Multi-line diagnostic snapshot of the network's state. */
    static std::string snapshot(const Network &net, Cycle now);

    /// @name Bit-exact snapshot/restore (src/ckpt): the progress
    /// window's counters must survive a restore or a restored run
    /// could fire (or miss) a deadlock audit the uninterrupted run
    /// would not.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

  private:
    void checkConservation(const Network &net, Cycle now) const;
    void checkCredits(const Network &net, Cycle now) const;
    void checkFlitAges(const Network &net, Cycle now) const;
    void checkProgress(const Network &net, Cycle now);

    WatchdogSpec spec_;
    std::uint64_t lastWork_ = 0;   ///< dispatches + deliveries seen
    Cycle lastProgressCycle_ = 0;  ///< when lastWork_ last advanced
};

} // namespace afcsim

#endif // AFCSIM_FAULT_WATCHDOG_HH
