/**
 * @file
 * Fixed-latency pipelined channels. A Channel<T> models an L-cycle
 * wire pipeline: a message sent at cycle t is deliverable at cycle
 * t + L. Flit links, credit backflows, and the 1-bit control lines
 * are all instances.
 */

#ifndef AFCSIM_NETWORK_CHANNEL_HH
#define AFCSIM_NETWORK_CHANNEL_HH

#include <deque>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace afcsim
{

/**
 * FIFO pipeline with a fixed delivery latency. Multiple messages may
 * be in flight; messages sent in the same cycle arrive in send order.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(int latency = 1)
        : latency_(latency)
    {
        AFCSIM_ASSERT(latency >= 1, "channel latency must be >= 1");
    }

    int latency() const { return latency_; }

    /** Send a message at cycle `now`; it arrives at now + latency. */
    void
    send(const T &msg, Cycle now)
    {
        AFCSIM_ASSERT(inflight_.empty() ||
                      inflight_.back().first <= now + latency_,
                      "channel send out of time order");
        inflight_.emplace_back(now + latency_, msg);
    }

    /**
     * Pop every message whose arrival time is <= now, in order.
     * Convenience for tests; the cycle kernel drains with
     * ready()/pop() to avoid the per-call vector.
     */
    std::vector<T>
    receive(Cycle now)
    {
        std::vector<T> out;
        while (ready(now))
            out.push_back(pop());
        return out;
    }

    /** True when the oldest in-flight message has arrived by `now`. */
    bool
    ready(Cycle now) const
    {
        return !inflight_.empty() && inflight_.front().first <= now;
    }

    /** Pop the oldest message; only valid when ready() held. */
    T
    pop()
    {
        AFCSIM_ASSERT(!inflight_.empty(), "pop on empty channel");
        T msg = std::move(inflight_.front().second);
        inflight_.pop_front();
        return msg;
    }

    /** Messages still in the pipe (used by drain checks and tests). */
    std::size_t inflight() const { return inflight_.size(); }

    bool empty() const { return inflight_.empty(); }

    /** Read-only view of in-flight (arrival, message) pairs, oldest
     *  first — used by the runtime watchdogs (src/fault). */
    const std::deque<std::pair<Cycle, T>> &
    pending() const
    {
        return inflight_;
    }

    /** Overwrite the in-flight pipe from a checkpoint (src/ckpt). */
    void
    restorePending(std::deque<std::pair<Cycle, T>> inflight)
    {
        inflight_ = std::move(inflight);
    }

  private:
    int latency_;
    std::deque<std::pair<Cycle, T>> inflight_;
};

} // namespace afcsim

#endif // AFCSIM_NETWORK_CHANNEL_HH
