#include "network/flit.hh"

#include <sstream>

namespace afcsim
{

std::string
Flit::describe() const
{
    std::ostringstream os;
    os << "flit(pkt=" << packet << " seq=" << seq << "/" << packetLen
       << " " << src << "->" << dest << " vnet=" << int(vnet)
       << " vc=" << vc << " hops=" << hops
       << " defl=" << deflections << ")";
    return os.str();
}

} // namespace afcsim
