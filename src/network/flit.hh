/**
 * @file
 * The flit: the unit of flow control. AFC flits are "wide": they
 * carry destination, packet id and sequence number (so any router
 * can route them independently and the receiver can reassemble),
 * plus VC/vnet identifiers for backpressured operation (Sec. III-A).
 * The width cost is charged by the energy model (41/45/49 bits);
 * here the struct simply carries all fields for all mechanisms.
 */

#ifndef AFCSIM_NETWORK_FLIT_HH
#define AFCSIM_NETWORK_FLIT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "topology/mesh.hh"

namespace afcsim
{

/** Position of a flit within its packet. */
enum class FlitType : std::uint8_t { Head, Body, Tail, Single };

/** One flit in flight. */
struct Flit
{
    PacketId packet = 0;       ///< network-unique packet id
    std::uint16_t seq = 0;     ///< flit index within the packet
    std::uint16_t packetLen = 1; ///< total flits in the packet
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    VnetId vnet = 0;           ///< virtual network (message class)
    VcId vc = kInvalidVc;      ///< allocated VC (backpressured mode)
    FlitType type = FlitType::Single;
    Cycle createTime = 0;      ///< packet creation (source queue entry)
    Cycle injectTime = 0;      ///< network entry (left the NIC queue)
    std::uint16_t hops = 0;    ///< links traversed so far
    std::uint16_t deflections = 0; ///< non-productive hops taken
    /** Lookahead route: output port precomputed at the previous hop. */
    Direction lookahead = kLocal;
    /** Opaque user metadata (e.g. a memory-transaction id). */
    std::uint64_t tag = 0;
    /**
     * End-to-end reliability fields (src/fault): a stand-in payload
     * word, its checksum, and whether the source NIC guarded this
     * flit. Fault injection flips bits in `payload`; the receiving
     * NIC discards guarded flits whose checksum no longer matches.
     * Header fields are assumed ECC-protected and are never faulted.
     */
    std::uint32_t payload = 0;
    std::uint32_t checksum = 0;
    bool guarded = false;

    /** Finalization mix (splitmix64-style) for payload/checksum. */
    static std::uint32_t
    mix32(std::uint64_t x)
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return static_cast<std::uint32_t>(x);
    }

    /** Deterministic checksum over identity + payload. */
    std::uint32_t
    expectedChecksum() const
    {
        return mix32((static_cast<std::uint64_t>(payload) << 32) ^
                     (packet * 0x9e3779b97f4a7c15ULL + seq));
    }

    /** Fill payload/checksum at the source (reliability mode). */
    void
    guard()
    {
        payload = mix32(packet * 0xbf58476d1ce4e5b9ULL + seq * 31ULL + src);
        checksum = expectedChecksum();
        guarded = true;
    }

    bool checksumOk() const { return checksum == expectedChecksum(); }

    bool isHead() const
    {
        return type == FlitType::Head || type == FlitType::Single;
    }

    bool isTail() const
    {
        return type == FlitType::Tail || type == FlitType::Single;
    }

    /** Compact description for traces and test failure messages. */
    std::string describe() const;
};

/**
 * Credit backflow message. The baseline backpressured router tracks
 * credits per VC; AFC's lazy VCA tracks them per virtual network
 * (Sec. III-E), in which case `vc` is kInvalidVc.
 */
struct Credit
{
    VnetId vnet = 0;
    VcId vc = kInvalidVc;
};

/**
 * One-bit-style control-line message between adjacent AFC routers
 * (Sec. III-A): start/stop credit tracking when the sender switches
 * to backpressured/backpressureless mode.
 */
struct CtlMsg
{
    enum class Kind : std::uint8_t { StartTracking, StopTracking };
    Kind kind = Kind::StartTracking;
};

} // namespace afcsim

#endif // AFCSIM_NETWORK_FLIT_HH
