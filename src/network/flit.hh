/**
 * @file
 * The flit: the unit of flow control. AFC flits are "wide": they
 * carry destination, packet id and sequence number (so any router
 * can route them independently and the receiver can reassemble),
 * plus VC/vnet identifiers for backpressured operation (Sec. III-A).
 * The width cost is charged by the energy model (41/45/49 bits);
 * here the struct simply carries all fields for all mechanisms.
 */

#ifndef AFCSIM_NETWORK_FLIT_HH
#define AFCSIM_NETWORK_FLIT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "topology/mesh.hh"

namespace afcsim
{

/** Position of a flit within its packet. */
enum class FlitType : std::uint8_t { Head, Body, Tail, Single };

/** One flit in flight. */
struct Flit
{
    PacketId packet = 0;       ///< network-unique packet id
    std::uint16_t seq = 0;     ///< flit index within the packet
    std::uint16_t packetLen = 1; ///< total flits in the packet
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    VnetId vnet = 0;           ///< virtual network (message class)
    VcId vc = kInvalidVc;      ///< allocated VC (backpressured mode)
    FlitType type = FlitType::Single;
    Cycle createTime = 0;      ///< packet creation (source queue entry)
    Cycle injectTime = 0;      ///< network entry (left the NIC queue)
    std::uint16_t hops = 0;    ///< links traversed so far
    std::uint16_t deflections = 0; ///< non-productive hops taken
    /** Lookahead route: output port precomputed at the previous hop. */
    Direction lookahead = kLocal;
    /** Opaque user metadata (e.g. a memory-transaction id). */
    std::uint64_t tag = 0;

    bool isHead() const
    {
        return type == FlitType::Head || type == FlitType::Single;
    }

    bool isTail() const
    {
        return type == FlitType::Tail || type == FlitType::Single;
    }

    /** Compact description for traces and test failure messages. */
    std::string describe() const;
};

/**
 * Credit backflow message. The baseline backpressured router tracks
 * credits per VC; AFC's lazy VCA tracks them per virtual network
 * (Sec. III-E), in which case `vc` is kInvalidVc.
 */
struct Credit
{
    VnetId vnet = 0;
    VcId vc = kInvalidVc;
};

/**
 * One-bit-style control-line message between adjacent AFC routers
 * (Sec. III-A): start/stop credit tracking when the sender switches
 * to backpressured/backpressureless mode.
 */
struct CtlMsg
{
    enum class Kind : std::uint8_t { StartTracking, StopTracking };
    Kind kind = Kind::StartTracking;
};

} // namespace afcsim

#endif // AFCSIM_NETWORK_FLIT_HH
