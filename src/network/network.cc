#include "network/network.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "fault/watchdog.hh"
#include "network/shardpool.hh"
#include "obs/obs.hh"
#include "router/afc.hh"
#include "router/afc_adaptive.hh"
#include "router/backpressured.hh"
#include "router/deflection.hh"
#include "router/drop.hh"

namespace afcsim
{

Network::Network(const NetworkConfig &cfg, FlowControl fc)
    : cfg_(cfg), fc_(fc), mesh_(cfg.width, cfg.height)
{
    cfg_.validate();
    int n = mesh_.numNodes();
    int width_bits = FlitWidths::forFlowControl(fc);
    bool ideal_bypass = fc == FlowControl::BackpressuredIdealBypass;
    DeflectionPolicy policy = cfg_.oldestFirstDeflection
        ? DeflectionPolicy::OldestFirst
        : DeflectionPolicy::Random;

    if (fc == FlowControl::AfcAlwaysBackpressured)
        cfg_.afc.alwaysBackpressured = true;

    // Shard partition: contiguous node ranges, so per-shard ascending
    // iteration concatenated in shard order equals the serial
    // kernel's global ascending-node order. Extra shards beyond the
    // node count would own empty ranges; clamp them away.
    shards_ = std::min(std::max(cfg_.shards, 1), n);
    shardOf_.resize(static_cast<std::size_t>(n));
    shardState_.resize(static_cast<std::size_t>(shards_));
    {
        int base = n / shards_;
        int rem = n % shards_;
        NodeId next = 0;
        for (int s = 0; s < shards_; ++s) {
            ShardState &sh = shardState_[static_cast<std::size_t>(s)];
            sh.begin = next;
            next += static_cast<NodeId>(base + (s < rem ? 1 : 0));
            sh.end = next;
            for (NodeId node = sh.begin; node < sh.end; ++node)
                shardOf_[static_cast<std::size_t>(node)] = s;
        }
    }

    if (fc == FlowControl::BackpressurelessDrop) {
        nackFabric_ = std::make_unique<NackFabric>(n);
        // Cross-shard NACK hand-off: sends park in the sender-shard's
        // staging slot and merge in ascending-slot order after the
        // evaluate phase (advanceShard), reproducing the serial
        // kernel's ascending-sender push order for any shard count.
        nackFabric_->enableStaging(shards_, shardOf_);
    }

    Rng root(cfg_.seed, 0x5eed);

    // Buffer-access energy scales with per-VC depth (Orion effect):
    // the baseline's 8-flit VCs pay more per read/write than AFC's
    // 1-flit lazy VCs.
    auto depth_factor = [this](const std::vector<VnetConfig> &shape) {
        double avg_depth =
            static_cast<double>(NetworkConfig::totalBufferFlits(shape)) /
            NetworkConfig::totalVcs(shape);
        return 1.0 + cfg_.energy.bufferDepthEnergySlope * (avg_depth - 1.0);
    };
    double access_factor = 1.0;
    switch (fc) {
      case FlowControl::Backpressured:
      case FlowControl::BackpressuredIdealBypass:
        access_factor = depth_factor(cfg_.vnets);
        break;
      case FlowControl::Afc:
      case FlowControl::AfcAlwaysBackpressured:
      case FlowControl::AfcAdaptive:
        access_factor = depth_factor(cfg_.afcVnets);
        break;
      case FlowControl::Backpressureless:
      case FlowControl::BackpressurelessDrop:
        break;
    }

    routers_.reserve(n);
    nics_.reserve(n);
    ledgers_.reserve(n);
    flitCh_.resize(n);
    ejectCh_.resize(n);
    creditCh_.resize(n);
    ctlCh_.resize(n);

    for (NodeId node = 0; node < n; ++node) {
        nics_.push_back(
            std::make_unique<Nic>(node, cfg_, &packetCounter_));
        ledgers_.push_back(std::make_unique<EnergyLedger>(
            cfg_.energy, width_bits, ideal_bypass, access_factor));

        switch (fc) {
          case FlowControl::Backpressured:
          case FlowControl::BackpressuredIdealBypass:
            routers_.push_back(std::make_unique<BackpressuredRouter>(
                mesh_, node, cfg_));
            break;
          case FlowControl::Backpressureless:
            routers_.push_back(std::make_unique<DeflectionRouter>(
                mesh_, node, cfg_, root.fork(node), policy));
            break;
          case FlowControl::Afc:
          case FlowControl::AfcAlwaysBackpressured:
            routers_.push_back(std::make_unique<AfcRouter>(
                mesh_, node, cfg_, root.fork(node), policy));
            break;
          case FlowControl::AfcAdaptive:
            routers_.push_back(std::make_unique<AfcAdaptiveRouter>(
                mesh_, node, cfg_, root.fork(node), policy));
            break;
          case FlowControl::BackpressurelessDrop:
            routers_.push_back(std::make_unique<DropRouter>(
                mesh_, node, cfg_, root.fork(node),
                nackFabric_.get()));
            break;
        }

        Router &r = *routers_.back();
        r.attachNic(nics_.back().get());
        r.attachLedger(ledgers_.back().get());

        ejectCh_[node] = std::make_unique<Channel<Flit>>(1);
        r.connectFlitOut(kLocal, ejectCh_[node].get());
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (!mesh_.hasNeighbor(node, static_cast<Direction>(d)))
                continue;
            flitCh_[node][d] =
                std::make_unique<Channel<Flit>>(cfg_.linkLatency);
            creditCh_[node][d] =
                std::make_unique<Channel<Credit>>(cfg_.linkLatency);
            ctlCh_[node][d] =
                std::make_unique<Channel<CtlMsg>>(cfg_.linkLatency);
            r.connectFlitOut(static_cast<Direction>(d),
                             flitCh_[node][d].get());
            r.connectCreditOut(static_cast<Direction>(d),
                               creditCh_[node][d].get());
            r.connectCtlOut(static_cast<Direction>(d),
                            ctlCh_[node][d].get());
        }
    }

    // Destination-major deliver: precompute each node's incoming
    // links (ascending source), with the channel pointers resolved so
    // the hot loop does no neighbor lookups. Per destination, the
    // accept order (source-ascending, flits before credits before
    // ctl per link) matches the serial source-major scan restricted
    // to that destination, so per-router and per-link state evolve
    // identically — and the order is shard-count-invariant.
    inLinks_.resize(static_cast<std::size_t>(n));
    for (NodeId node = 0; node < n; ++node) {
        auto &in = inLinks_[static_cast<std::size_t>(node)];
        for (int d = 0; d < kNumNetPorts; ++d) {
            Direction dir = static_cast<Direction>(d);
            NodeId src = mesh_.neighbor(node, dir);
            if (src == kInvalidNode)
                continue;
            Direction out = opposite(dir);
            in.push_back({src, out, dir, flitCh_[src][out].get(),
                          creditCh_[src][out].get(),
                          ctlCh_[src][out].get()});
        }
        std::sort(in.begin(), in.end(),
                  [](const InLink &a, const InLink &b) {
                      return a.src < b.src;
                  });
    }

    // Activity scheduler state must exist before the observability
    // bundle attaches below (attach() reads routers through the
    // syncing accessors). Everyone starts active with nothing owed.
    idleSkip_ = cfg_.idleSkip;
    relEnabled_ = cfg_.reliability.enabled;
    activeFlag_.assign(n, 1);
    lastDone_.assign(n, 0);
    for (auto &sh : shardState_) {
        sh.activeList.reserve(static_cast<std::size_t>(sh.end - sh.begin));
        for (NodeId node = sh.begin; node < sh.end; ++node)
            sh.activeList.push_back(node);
    }
    if (idleSkip_) {
        for (NodeId node = 0; node < n; ++node) {
            nics_[node]->setWakeHook(
                [this, node] { wakeRouter(node); });
        }
        if (nackFabric_) {
            // NACKs are sent mid-evaluate; the wake must not mutate
            // the active list while step() iterates it.
            nackFabric_->setWakeHook(
                [this](NodeId src) { wakeDeferred(src); });
        }
    }

    if (cfg_.faults.any())
        faults_ = std::make_unique<FaultInjector>(cfg_.faults, n,
                                                  cfg_.seed);
    if (cfg_.watchdog.enabled)
        watchdog_ = std::make_unique<Watchdog>(cfg_.watchdog);
    if (cfg_.reliability.enabled) {
        // End-to-end acks are out-of-band and free. The source NIC
        // may live in another shard, so the ejecting side stages the
        // ack in its shard's slot; the source's owner drains the
        // slots in ascending-slot order (== ascending ejecting node)
        // before any retransmission timer fires (evaluateShard).
        ackStage_.resize(static_cast<std::size_t>(shards_));
        for (NodeId node = 0; node < n; ++node) {
            nics_[node]->attachLedger(ledgers_[node].get());
            nics_[node]->setAckHandler(
                [this, slot = shardOf_[node]](NodeId src,
                                              PacketId packet) {
                    ackStage_[static_cast<std::size_t>(slot)]
                        .emplace_back(src, packet);
                });
        }
    }
    if (cfg_.obs.any()) {
        obs_ = std::make_shared<obs::Observability>(cfg_.obs);
        obs_->attach(*this);
    }
}

Network::~Network() = default;

void
Network::deliverShard(int s)
{
    // Any delivered arrival re-activates its router first, so the
    // parked router replays its skipped idle cycles before the accept
    // mutates latch/credit state. Channels drain with ready()/pop()
    // — a quiet link costs one deque probe, an arrival no vector.
    // Channels were last written in the previous cycle's evaluate
    // phase (latency >= 1), and each is popped only by its
    // destination's owner, so shards never touch a deque two ways.
    const ShardState &sh = shardState_[static_cast<std::size_t>(s)];
    for (NodeId node = sh.begin; node < sh.end; ++node) {
        for (const InLink &in : inLinks_[static_cast<std::size_t>(node)]) {
            while (in.flit->ready(now_)) {
                Flit flit = in.flit->pop();
                if (faults_ &&
                    !faults_->onFlitArrival(in.src, in.outDir, flit,
                                            now_))
                    continue; // captured by a link stall
                wakeRouter(node);
                routers_[node]->acceptFlit(in.inPort, flit, now_);
            }
            // Credits travel the link's reverse channel: a credit
            // sent from src's *input* port arrives at our *output*
            // port facing src. The destination-major walk drains
            // every channel whose consumer we own, so this credit
            // backflow belongs to us, not to src's shard.
            while (in.credit->ready(now_)) {
                Credit credit = in.credit->pop();
                if (faults_ &&
                    !faults_->onCreditArrival(in.src, in.outDir, now_))
                    continue; // credit lost (watchdog-test knob)
                wakeRouter(node);
                routers_[node]->acceptCredit(in.inPort, credit, now_);
            }
            while (in.ctl->ready(now_)) {
                CtlMsg msg = in.ctl->pop();
                wakeRouter(node);
                routers_[node]->acceptCtl(in.inPort, msg, now_);
            }
        }
        while (ejectCh_[node]->ready(now_)) {
            Flit flit = ejectCh_[node]->pop();
            nics_[node]->eject(flit, now_);
        }
    }
}

void
Network::evaluateShard(int s)
{
    // The pooled slice bundles both evaluate sub-steps per shard.
    // State-wise the bundling is free: each sub-step touches only
    // shard-owned state, so slices compose in any interleaving. The
    // serialized gate in step() runs the sub-steps phase-major
    // instead, because *trace event order* is not interleaving-free
    // — and a tracer can only be attached on the serialized path.
    evaluateNicsShard(s);
    evaluateRoutersShard(s);
}

void
Network::evaluateNicsShard(int s)
{
    if (!relEnabled_)
        return;
    ShardState &sh = shardState_[static_cast<std::size_t>(s)];
    // Acks staged by this cycle's ejections, in ascending-slot
    // (== ascending ejecting node) order, before any owned NIC's
    // retransmission timer can fire on the just-acked packet.
    for (const auto &slot : ackStage_) {
        for (const auto &[src, packet] : slot) {
            if (shardOf_[static_cast<std::size_t>(src)] == s)
                nics_[src]->onAcked(packet);
        }
    }
    for (NodeId node = sh.begin; node < sh.end; ++node)
        nics_[node]->tick(now_);
}

void
Network::evaluateRoutersShard(int s)
{
    ShardState &sh = shardState_[static_cast<std::size_t>(s)];
    if (!idleSkip_) {
        for (NodeId node = sh.begin; node < sh.end; ++node)
            routers_[node]->evaluate(now_);
        return;
    }
    // Evaluate order must match the full scan's ascending node
    // order: same-cycle pushes into the shared NACK fabric are
    // order-sensitive. Wakes append, so restore sortedness first.
    if (sh.needSort) {
        std::sort(sh.activeList.begin(), sh.activeList.end());
        sh.needSort = false;
    }
    for (NodeId node : sh.activeList)
        routers_[node]->evaluate(now_);
}

void
Network::advanceShard(int s)
{
    ShardState &sh = shardState_[static_cast<std::size_t>(s)];
    // Merge the NACK hand-off staged during evaluate: ascending-slot
    // order is the serial kernel's ascending-sender push order, and
    // queue order matters (arrivalsFor stops at the queue head).
    // Every shard reads all slots but pushes only into queues it
    // owns; wakes land in the owner's pendingWake, as they would
    // have from a serial mid-evaluate send.
    if (nackFabric_) {
        for (int from = 0; from < shards_; ++from) {
            for (const NackFabric::Staged &e :
                 nackFabric_->stagedSlot(from)) {
                if (shardOf_[static_cast<std::size_t>(e.to)] != s)
                    continue;
                nackFabric_->pushStaged(e);
                wakeDeferred(e.to);
            }
        }
    }
    if (!idleSkip_) {
        for (NodeId node = sh.begin; node < sh.end; ++node)
            routers_[node]->advance(now_);
        return;
    }
    for (NodeId node : sh.activeList)
        routers_[node]->advance(now_);
    // Routers NACKed mid-evaluate: replay their idle cycles
    // through now_ and admit them for cycle now_ + 1.
    if (!sh.pendingWake.empty()) {
        for (NodeId node : sh.pendingWake) {
            if (lastDone_[node] < now_ + 1)
                routers_[node]->advanceIdle(now_ + 1 - lastDone_[node]);
            sh.activeList.push_back(node);
        }
        sh.pendingWake.clear();
        sh.needSort = true;
    }
    // Park scan, every kParkIntervalCycles: drop routers that
    // are idle *right now* from the active list, stamping the
    // first cycle they have not yet run (now_ + 1). Everyone
    // else stays listed; an active router's lastDone_ is never
    // read (syncTo and wakeRouter check the flag first), so the
    // common all-busy cycle touches no scheduler state at all.
    if ((now_ + 1) % kParkIntervalCycles == 0) {
        std::size_t w = 0;
        for (std::size_t i = 0; i < sh.activeList.size(); ++i) {
            NodeId node = sh.activeList[i];
            if (routers_[node]->idle()) {
                activeFlag_[node] = 0;
                lastDone_[node] = now_ + 1;
                continue;
            }
            sh.activeList[w++] = node;
        }
        sh.activeList.resize(w);
    }
}

void
Network::runPhase(bool parallel, void (Network::*phase)(int))
{
    if (parallel) {
        pool_->run([this, phase](int s) { (this->*phase)(s); });
        return;
    }
    for (int s = 0; s < shards_; ++s)
        (this->*phase)(s);
}

void
Network::wakeRouter(NodeId n)
{
    if (!idleSkip_ || activeFlag_[n])
        return;
    if (lastDone_[n] < now_)
        routers_[n]->advanceIdle(now_ - lastDone_[n]);
    activeFlag_[n] = 1;
    ShardState &sh = shardState_[static_cast<std::size_t>(shardOf_[n])];
    sh.activeList.push_back(n);
    sh.needSort = true;
}

void
Network::wakeDeferred(NodeId n)
{
    if (!idleSkip_ || activeFlag_[n])
        return;
    // Flag now so repeat senders don't queue n twice; the idle replay
    // happens after the advance loop (the NACK that woke n was sent
    // mid-evaluate, and a parked router is provably idle through the
    // current cycle — NACK fabric delay is always >= 1). Under the
    // sharded kernel this runs at the hand-off merge, always from n's
    // owning shard.
    activeFlag_[n] = 1;
    shardState_[static_cast<std::size_t>(shardOf_[n])]
        .pendingWake.push_back(n);
}

void
Network::syncAll(Cycle target) const
{
    if (!idleSkip_)
        return;
    int n = mesh_.numNodes();
    for (NodeId node = 0; node < n; ++node)
        syncTo(node, target);
}

void
Network::step()
{
    if (faults_ && faults_->shouldFail(now_)) {
        AFCSIM_SIM_ERROR("injected hard failure at cycle ", now_,
                         " (fault.fail_at_cycle)");
    }
    // Serial prologue: the fault injector's cycle work mutates global
    // fault state (counters + the ordered event trace) and wakes
    // arbitrary routers, so it always runs on this thread, before any
    // shard moves. Stall-held flits re-enter first, so a link
    // releases at most one flit per cycle (regular arrivals on a link
    // that just released are captured behind it by onFlitArrival).
    if (faults_) {
        faults_->beginCycle(now_);
        faults_->releaseHeld(now_,
            [this](NodeId node, int d, Flit &flit) {
                Direction dir = static_cast<Direction>(d);
                NodeId nbr = mesh_.neighbor(node, dir);
                wakeRouter(nbr);
                routers_[nbr]->acceptFlit(opposite(dir), flit, now_);
            });
    }
    // Threads pay off only without a global-order sink: an attached
    // flit tracer and the fault injector both append to single
    // ordered buffers from inside the phases. Such runs execute the
    // same shard slices inline on the main thread — and, because the
    // buffers record event *order* (not just state), the serialized
    // evaluate runs its two sub-steps phase-major (all shards' NIC
    // timers, then all shards' router evaluates) so trace events
    // interleave exactly as they do at shards=1.
    bool parallel = shards_ > 1 && !tracerAttached_ && !faults_;
    if (parallel && !pool_)
        pool_ = std::make_unique<ShardPool>(shards_);
    // Three barriers per cycle: deliver | evaluate | advance. The
    // phase boundaries are where cross-shard traffic changes hands
    // (channels written in evaluate drain in the next cycle's
    // deliver; acks staged in deliver drain in evaluate; NACKs
    // staged in evaluate merge in advance).
    runPhase(parallel, &Network::deliverShard);
    if (parallel) {
        runPhase(true, &Network::evaluateShard);
    } else {
        runPhase(false, &Network::evaluateNicsShard);
        runPhase(false, &Network::evaluateRoutersShard);
    }
    runPhase(parallel, &Network::advanceShard);
    if (relEnabled_) {
        for (auto &slot : ackStage_)
            slot.clear();
    }
    if (nackFabric_)
        nackFabric_->clearStaged();
    if (watchdog_ && now_ > 0 &&
        now_ % cfg_.watchdog.intervalCycles == 0) {
        // Audits read true per-router state: catch parked routers up
        // through the cycle that just completed.
        syncAll(now_ + 1);
        watchdog_->check(*this, now_);
    }
    if (obs_) {
        if (idleSkip_ && obs_->samplingAt(now_))
            syncAll(now_ + 1); // sampled series stay bit-identical
        obs_->onCycleEnd(*this, now_);
    }
    ++now_;
}

void
Network::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

bool
Network::drain(Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (quiescent())
            return true;
        step();
    }
    return quiescent();
}

bool
Network::quiescent() const
{
    for (const auto &nic : nics_) {
        if (!nic->quiescent())
            return false;
    }
    return flitsInFlight() == 0;
}

std::uint64_t
Network::flitsInFlight() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->occupancy();
    for (NodeId node = 0; node < mesh_.numNodes(); ++node) {
        n += ejectCh_[node]->inflight();
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (flitCh_[node][d])
                n += flitCh_[node][d]->inflight();
        }
    }
    if (nackFabric_)
        n += nackFabric_->inflight();
    if (faults_)
        n += faults_->heldFlits();
    return n;
}

NetStats
Network::aggregateStats() const
{
    NetStats total;
    for (const auto &nic : nics_)
        total.merge(nic->stats());
    return total;
}

EnergyReport
Network::aggregateEnergy() const
{
    syncAll(now_); // idle leakage accrues in advanceIdle
    EnergyReport total;
    for (const auto &l : ledgers_)
        total.merge(l->report());
    return total;
}

RouterStats
Network::aggregateRouterStats() const
{
    syncAll(now_); // duty-cycle residency accrues in advanceIdle
    RouterStats total;
    for (const auto &r : routers_) {
        const RouterStats &s = r->stats();
        total.flitsRouted += s.flitsRouted;
        total.flitsDeflected += s.flitsDeflected;
        total.cyclesBackpressured += s.cyclesBackpressured;
        total.cyclesBackpressureless += s.cyclesBackpressureless;
        total.forwardSwitches += s.forwardSwitches;
        total.reverseSwitches += s.reverseSwitches;
        total.gossipSwitches += s.gossipSwitches;
        total.creditStalls += s.creditStalls;
    }
    return total;
}

double
Network::linkUtilization(NodeId n, Direction d) const
{
    if (now_ == 0)
        return 0.0;
    return static_cast<double>(routers_.at(n)->portDispatches(d)) /
        static_cast<double>(now_);
}

double
Network::nodeUtilization(NodeId n) const
{
    double total = 0.0;
    for (int d = 0; d < kNumNetPorts; ++d)
        total += linkUtilization(n, static_cast<Direction>(d));
    return total;
}

void
Network::setTracer(FlitTracer *tracer)
{
    // A tracer is a single global-order event sink: step() drops to
    // inline shard execution while one is attached (byte-identical,
    // just unpooled).
    tracerAttached_ = tracer != nullptr;
    for (auto &r : routers_)
        r->attachTracer(tracer);
    for (auto &nic : nics_)
        nic->attachTracer(tracer);
}

double
Network::backpressuredFraction() const
{
    return aggregateRouterStats().backpressuredFraction();
}

} // namespace afcsim
