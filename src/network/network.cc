#include "network/network.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "fault/watchdog.hh"
#include "obs/obs.hh"
#include "router/afc.hh"
#include "router/backpressured.hh"
#include "router/deflection.hh"
#include "router/drop.hh"

namespace afcsim
{

Network::Network(const NetworkConfig &cfg, FlowControl fc)
    : cfg_(cfg), fc_(fc), mesh_(cfg.width, cfg.height)
{
    cfg_.validate();
    int n = mesh_.numNodes();
    int width_bits = FlitWidths::forFlowControl(fc);
    bool ideal_bypass = fc == FlowControl::BackpressuredIdealBypass;
    DeflectionPolicy policy = cfg_.oldestFirstDeflection
        ? DeflectionPolicy::OldestFirst
        : DeflectionPolicy::Random;

    if (fc == FlowControl::AfcAlwaysBackpressured)
        cfg_.afc.alwaysBackpressured = true;
    if (fc == FlowControl::BackpressurelessDrop)
        nackFabric_ = std::make_unique<NackFabric>(n);

    Rng root(cfg_.seed, 0x5eed);

    // Buffer-access energy scales with per-VC depth (Orion effect):
    // the baseline's 8-flit VCs pay more per read/write than AFC's
    // 1-flit lazy VCs.
    auto depth_factor = [this](const std::vector<VnetConfig> &shape) {
        double avg_depth =
            static_cast<double>(NetworkConfig::totalBufferFlits(shape)) /
            NetworkConfig::totalVcs(shape);
        return 1.0 + cfg_.energy.bufferDepthEnergySlope * (avg_depth - 1.0);
    };
    double access_factor = 1.0;
    switch (fc) {
      case FlowControl::Backpressured:
      case FlowControl::BackpressuredIdealBypass:
        access_factor = depth_factor(cfg_.vnets);
        break;
      case FlowControl::Afc:
      case FlowControl::AfcAlwaysBackpressured:
        access_factor = depth_factor(cfg_.afcVnets);
        break;
      case FlowControl::Backpressureless:
      case FlowControl::BackpressurelessDrop:
        break;
    }

    routers_.reserve(n);
    nics_.reserve(n);
    ledgers_.reserve(n);
    flitCh_.resize(n);
    ejectCh_.resize(n);
    creditCh_.resize(n);
    ctlCh_.resize(n);

    for (NodeId node = 0; node < n; ++node) {
        nics_.push_back(
            std::make_unique<Nic>(node, cfg_, &packetCounter_));
        ledgers_.push_back(std::make_unique<EnergyLedger>(
            cfg_.energy, width_bits, ideal_bypass, access_factor));

        switch (fc) {
          case FlowControl::Backpressured:
          case FlowControl::BackpressuredIdealBypass:
            routers_.push_back(std::make_unique<BackpressuredRouter>(
                mesh_, node, cfg_));
            break;
          case FlowControl::Backpressureless:
            routers_.push_back(std::make_unique<DeflectionRouter>(
                mesh_, node, cfg_, root.fork(node), policy));
            break;
          case FlowControl::Afc:
          case FlowControl::AfcAlwaysBackpressured:
            routers_.push_back(std::make_unique<AfcRouter>(
                mesh_, node, cfg_, root.fork(node), policy));
            break;
          case FlowControl::BackpressurelessDrop:
            routers_.push_back(std::make_unique<DropRouter>(
                mesh_, node, cfg_, root.fork(node),
                nackFabric_.get()));
            break;
        }

        Router &r = *routers_.back();
        r.attachNic(nics_.back().get());
        r.attachLedger(ledgers_.back().get());

        ejectCh_[node] = std::make_unique<Channel<Flit>>(1);
        r.connectFlitOut(kLocal, ejectCh_[node].get());
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (!mesh_.hasNeighbor(node, static_cast<Direction>(d)))
                continue;
            flitCh_[node][d] =
                std::make_unique<Channel<Flit>>(cfg_.linkLatency);
            creditCh_[node][d] =
                std::make_unique<Channel<Credit>>(cfg_.linkLatency);
            ctlCh_[node][d] =
                std::make_unique<Channel<CtlMsg>>(cfg_.linkLatency);
            r.connectFlitOut(static_cast<Direction>(d),
                             flitCh_[node][d].get());
            r.connectCreditOut(static_cast<Direction>(d),
                               creditCh_[node][d].get());
            r.connectCtlOut(static_cast<Direction>(d),
                            ctlCh_[node][d].get());
        }
    }

    // Activity scheduler state must exist before the observability
    // bundle attaches below (attach() reads routers through the
    // syncing accessors). Everyone starts active with nothing owed.
    idleSkip_ = cfg_.idleSkip;
    relEnabled_ = cfg_.reliability.enabled;
    activeFlag_.assign(n, 1);
    lastDone_.assign(n, 0);
    activeList_.resize(n);
    for (NodeId node = 0; node < n; ++node)
        activeList_[node] = node;
    if (idleSkip_) {
        for (NodeId node = 0; node < n; ++node) {
            nics_[node]->setWakeHook(
                [this, node] { wakeRouter(node); });
        }
        if (nackFabric_) {
            // NACKs are sent mid-evaluate; the wake must not mutate
            // the active list while step() iterates it.
            nackFabric_->setWakeHook(
                [this](NodeId src) { wakeDeferred(src); });
        }
    }

    if (cfg_.faults.any())
        faults_ = std::make_unique<FaultInjector>(cfg_.faults, n,
                                                  cfg_.seed);
    if (cfg_.watchdog.enabled)
        watchdog_ = std::make_unique<Watchdog>(cfg_.watchdog);
    if (cfg_.reliability.enabled) {
        // End-to-end acks are out-of-band and free: the destination
        // NIC releases the source's retransmit slot directly.
        for (NodeId node = 0; node < n; ++node) {
            nics_[node]->attachLedger(ledgers_[node].get());
            nics_[node]->setAckHandler(
                [this](NodeId src, PacketId packet) {
                    nics_.at(src)->onAcked(packet);
                });
        }
    }
    if (cfg_.obs.any()) {
        obs_ = std::make_shared<obs::Observability>(cfg_.obs);
        obs_->attach(*this);
    }
}

Network::~Network() = default;

void
Network::deliver()
{
    int n = mesh_.numNodes();
    if (faults_) {
        faults_->beginCycle(now_);
        // Stall-held flits re-enter first, so a link releases at most
        // one flit per cycle (regular arrivals on a link that just
        // released are captured behind it by onFlitArrival).
        faults_->releaseHeld(now_,
            [this](NodeId node, int d, Flit &flit) {
                Direction dir = static_cast<Direction>(d);
                NodeId nbr = mesh_.neighbor(node, dir);
                wakeRouter(nbr);
                routers_[nbr]->acceptFlit(opposite(dir), flit, now_);
            });
    }
    // Any delivered arrival re-activates its router first, so the
    // parked router replays its skipped idle cycles before the accept
    // mutates latch/credit state. Channels drain with ready()/pop()
    // — a quiet link costs one deque probe, an arrival no vector.
    for (NodeId node = 0; node < n; ++node) {
        for (int d = 0; d < kNumNetPorts; ++d) {
            Direction dir = static_cast<Direction>(d);
            NodeId nbr = mesh_.neighbor(node, dir);
            if (nbr == kInvalidNode)
                continue;
            if (flitCh_[node][d]) {
                while (flitCh_[node][d]->ready(now_)) {
                    Flit flit = flitCh_[node][d]->pop();
                    if (faults_ &&
                        !faults_->onFlitArrival(node, d, flit, now_))
                        continue; // captured by a link stall
                    wakeRouter(nbr);
                    routers_[nbr]->acceptFlit(opposite(dir), flit, now_);
                }
            }
            if (creditCh_[node][d]) {
                // A credit sent from node's *input* port d goes to
                // the upstream router's *output* port opposite(d).
                while (creditCh_[node][d]->ready(now_)) {
                    Credit credit = creditCh_[node][d]->pop();
                    if (faults_ &&
                        !faults_->onCreditArrival(node, d, now_))
                        continue; // credit lost (watchdog-test knob)
                    wakeRouter(nbr);
                    routers_[nbr]->acceptCredit(opposite(dir), credit,
                                                now_);
                }
            }
            if (ctlCh_[node][d]) {
                while (ctlCh_[node][d]->ready(now_)) {
                    CtlMsg msg = ctlCh_[node][d]->pop();
                    wakeRouter(nbr);
                    routers_[nbr]->acceptCtl(opposite(dir), msg, now_);
                }
            }
        }
        while (ejectCh_[node]->ready(now_)) {
            Flit flit = ejectCh_[node]->pop();
            nics_[node]->eject(flit, now_);
        }
    }
}

void
Network::wakeRouter(NodeId n)
{
    if (!idleSkip_ || activeFlag_[n])
        return;
    if (lastDone_[n] < now_)
        routers_[n]->advanceIdle(now_ - lastDone_[n]);
    activeFlag_[n] = 1;
    activeList_.push_back(n);
    needSort_ = true;
}

void
Network::wakeDeferred(NodeId n)
{
    if (!idleSkip_ || activeFlag_[n])
        return;
    // Flag now so repeat senders don't queue n twice; the idle replay
    // happens after the advance loop (the sender fires mid-evaluate,
    // and a parked router is provably idle through the current cycle
    // — NACK fabric delay is always >= 1).
    activeFlag_[n] = 1;
    pendingWake_.push_back(n);
}

void
Network::syncAll(Cycle target) const
{
    if (!idleSkip_)
        return;
    int n = mesh_.numNodes();
    for (NodeId node = 0; node < n; ++node)
        syncTo(node, target);
}

void
Network::step()
{
    if (faults_ && faults_->shouldFail(now_)) {
        AFCSIM_SIM_ERROR("injected hard failure at cycle ", now_,
                         " (fault.fail_at_cycle)");
    }
    deliver();
    if (relEnabled_) {
        for (auto &nic : nics_)
            nic->tick(now_);
    }
    if (!idleSkip_) {
        for (auto &r : routers_)
            r->evaluate(now_);
        for (auto &r : routers_)
            r->advance(now_);
    } else {
        // Evaluate order must match the full scan's ascending node
        // order: same-cycle pushes into the shared NACK fabric are
        // order-sensitive. Wakes append, so restore sortedness first.
        if (needSort_) {
            std::sort(activeList_.begin(), activeList_.end());
            needSort_ = false;
        }
        for (NodeId n : activeList_)
            routers_[n]->evaluate(now_);
        for (NodeId n : activeList_)
            routers_[n]->advance(now_);
        // Routers NACKed mid-evaluate: replay their idle cycles
        // through now_ and admit them for cycle now_ + 1.
        if (!pendingWake_.empty()) {
            for (NodeId n : pendingWake_) {
                if (lastDone_[n] < now_ + 1)
                    routers_[n]->advanceIdle(now_ + 1 - lastDone_[n]);
                activeList_.push_back(n);
            }
            pendingWake_.clear();
            needSort_ = true;
        }
        // Park scan, every kParkIntervalCycles: drop routers that
        // are idle *right now* from the active list, stamping the
        // first cycle they have not yet run (now_ + 1). Everyone
        // else stays listed; an active router's lastDone_ is never
        // read (syncTo and wakeRouter check the flag first), so the
        // common all-busy cycle touches no scheduler state at all.
        if ((now_ + 1) % kParkIntervalCycles == 0) {
            std::size_t w = 0;
            for (std::size_t i = 0; i < activeList_.size(); ++i) {
                NodeId n = activeList_[i];
                if (routers_[n]->idle()) {
                    activeFlag_[n] = 0;
                    lastDone_[n] = now_ + 1;
                    continue;
                }
                activeList_[w++] = n;
            }
            activeList_.resize(w);
        }
    }
    if (watchdog_ && now_ > 0 &&
        now_ % cfg_.watchdog.intervalCycles == 0) {
        // Audits read true per-router state: catch parked routers up
        // through the cycle that just completed.
        syncAll(now_ + 1);
        watchdog_->check(*this, now_);
    }
    if (obs_) {
        if (idleSkip_ && obs_->samplingAt(now_))
            syncAll(now_ + 1); // sampled series stay bit-identical
        obs_->onCycleEnd(*this, now_);
    }
    ++now_;
}

void
Network::run(Cycle n)
{
    for (Cycle i = 0; i < n; ++i)
        step();
}

bool
Network::drain(Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (quiescent())
            return true;
        step();
    }
    return quiescent();
}

bool
Network::quiescent() const
{
    for (const auto &nic : nics_) {
        if (!nic->quiescent())
            return false;
    }
    return flitsInFlight() == 0;
}

std::uint64_t
Network::flitsInFlight() const
{
    std::uint64_t n = 0;
    for (const auto &r : routers_)
        n += r->occupancy();
    for (NodeId node = 0; node < mesh_.numNodes(); ++node) {
        n += ejectCh_[node]->inflight();
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (flitCh_[node][d])
                n += flitCh_[node][d]->inflight();
        }
    }
    if (nackFabric_)
        n += nackFabric_->inflight();
    if (faults_)
        n += faults_->heldFlits();
    return n;
}

NetStats
Network::aggregateStats() const
{
    NetStats total;
    for (const auto &nic : nics_)
        total.merge(nic->stats());
    return total;
}

EnergyReport
Network::aggregateEnergy() const
{
    syncAll(now_); // idle leakage accrues in advanceIdle
    EnergyReport total;
    for (const auto &l : ledgers_)
        total.merge(l->report());
    return total;
}

RouterStats
Network::aggregateRouterStats() const
{
    syncAll(now_); // duty-cycle residency accrues in advanceIdle
    RouterStats total;
    for (const auto &r : routers_) {
        const RouterStats &s = r->stats();
        total.flitsRouted += s.flitsRouted;
        total.flitsDeflected += s.flitsDeflected;
        total.cyclesBackpressured += s.cyclesBackpressured;
        total.cyclesBackpressureless += s.cyclesBackpressureless;
        total.forwardSwitches += s.forwardSwitches;
        total.reverseSwitches += s.reverseSwitches;
        total.gossipSwitches += s.gossipSwitches;
        total.creditStalls += s.creditStalls;
    }
    return total;
}

double
Network::linkUtilization(NodeId n, Direction d) const
{
    if (now_ == 0)
        return 0.0;
    return static_cast<double>(routers_.at(n)->portDispatches(d)) /
        static_cast<double>(now_);
}

double
Network::nodeUtilization(NodeId n) const
{
    double total = 0.0;
    for (int d = 0; d < kNumNetPorts; ++d)
        total += linkUtilization(n, static_cast<Direction>(d));
    return total;
}

void
Network::setTracer(FlitTracer *tracer)
{
    for (auto &r : routers_)
        r->attachTracer(tracer);
    for (auto &nic : nics_)
        nic->attachTracer(tracer);
}

double
Network::backpressuredFraction() const
{
    return aggregateRouterStats().backpressuredFraction();
}

} // namespace afcsim
