/**
 * @file
 * The network: routers, NICs, links, credit backflows and control
 * lines for a full mesh, plus the two-phase cycle kernel.
 *
 * Per cycle: (1) all channel arrivals whose latency elapsed are
 * delivered into routers/NICs; (2) every router evaluates (switch
 * allocation / deflection assignment / injection pulls / sends);
 * (3) every router advances (EWMA, mode switches, leakage). Traffic
 * sources (open-loop injectors, the closed-loop multicore) enqueue
 * packets into NICs between cycles.
 */

#ifndef AFCSIM_NETWORK_NETWORK_HH
#define AFCSIM_NETWORK_NETWORK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "energy/energy.hh"
#include "network/channel.hh"
#include "network/nic.hh"
#include "router/drop.hh"
#include "router/router.hh"
#include "topology/mesh.hh"

namespace afcsim
{

namespace obs
{
class Observability;
}

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

class FaultInjector;
class Watchdog;
class ShardPool;

/** A complete mesh network under one flow-control mechanism. */
class Network
{
  public:
    Network(const NetworkConfig &cfg, FlowControl fc);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Simulate one cycle. */
    void step();

    /** Simulate n cycles. */
    void run(Cycle n);

    /**
     * Step until every queue, buffer and channel is empty, or until
     * `max_cycles` more cycles elapse. Returns true if drained.
     */
    bool drain(Cycle max_cycles);

    Cycle now() const { return now_; }
    const Mesh &mesh() const { return mesh_; }
    const NetworkConfig &config() const { return cfg_; }
    FlowControl flowControl() const { return fc_; }

    Nic &nic(NodeId n) { return *nics_.at(n); }
    const Nic &nic(NodeId n) const { return *nics_.at(n); }
    /** Router accessors catch a parked router up on its skipped idle
     *  cycles first, so callers always see exact per-cycle counters. */
    Router &
    router(NodeId n)
    {
        syncTo(n, now_);
        return *routers_.at(n);
    }
    const Router &
    router(NodeId n) const
    {
        syncTo(n, now_);
        return *routers_.at(n);
    }

    /** True when no flit exists anywhere in the system. */
    bool quiescent() const;

    /** Sum of all NICs' end-to-end statistics. */
    NetStats aggregateStats() const;

    /** Sum of all routers' energy ledgers. */
    EnergyReport aggregateEnergy() const;

    /** One node's energy ledger (observability sampling). */
    const EnergyLedger &
    ledger(NodeId n) const
    {
        syncTo(n, now_); // idle leakage accrues in advanceIdle
        return *ledgers_.at(n);
    }

    /** Sum of all routers' activity statistics. */
    RouterStats aggregateRouterStats() const;

    /** Fraction of router-cycles spent in backpressured mode. */
    double backpressuredFraction() const;

    /**
     * Outgoing-link utilization at a node (flits/cycle on port d
     * since construction); kLocal gives ejection utilization.
     */
    double linkUtilization(NodeId n, Direction d) const;

    /** Total network-port utilization of a node (flits/cycle). */
    double nodeUtilization(NodeId n) const;

    /** Flits currently inside routers or on links. */
    std::uint64_t flitsInFlight() const;

    /**
     * Attach an event tracer to every router and NIC (nullptr
     * detaches). The tracer must outlive the network.
     */
    void setTracer(FlitTracer *tracer);

    /**
     * The fault injector, or nullptr when cfg.faults is all-zero.
     * (The injector is only constructed when at least one fault rate
     * is nonzero, so the fault-free path is bit-for-bit identical to
     * a build without the subsystem.)
     */
    const FaultInjector *faultInjector() const { return faults_.get(); }

    /**
     * The observability bundle (tracer + sampler), or nullptr when
     * cfg.obs is all-off. Shared so results can keep the recorded
     * traces/series alive after this network is destroyed; like the
     * fault injector, it is only constructed when enabled so the
     * disabled path is bit-for-bit identical.
     */
    const std::shared_ptr<obs::Observability> &
    observability() const
    {
        return obs_;
    }

    /// @name Bit-exact snapshot/restore (src/ckpt, DESIGN.md S20).
    ///
    /// ckptSave() serializes every piece of dynamic simulator state —
    /// router variants, NICs, energy ledgers, all channel queues in
    /// flight, the NACK fabric, fault injector, watchdog and obs
    /// bundle — prefixed by configHash() so a snapshot can only be
    /// restored into an identically configured network. Both are
    /// valid only at a cycle boundary (between step() calls).
    /// ckptLoad() overwrites the state of this freshly constructed
    /// network and re-activates every router; the park scan re-parks
    /// idle ones within kParkIntervalCycles, and the replayed idle
    /// arithmetic is bit-identical to live stepping (see
    /// tests/sched_equiv_test.cc), so a restored run's exports match
    /// an uninterrupted run byte for byte.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /** FNV-1a hash of every simulation-affecting config field + the
     *  flow-control mechanism (obs stream path excluded: it redirects
     *  output without touching simulation state). */
    std::uint64_t configHash() const;
    /// @}

    /// @name Channel introspection for the runtime watchdogs.
    /// @{
    const Channel<Flit> *
    flitChannel(NodeId n, Direction d) const
    {
        return flitCh_.at(n)[d].get();
    }

    const Channel<Credit> *
    creditChannel(NodeId n, Direction d) const
    {
        return creditCh_.at(n)[d].get();
    }

    const Channel<CtlMsg> *
    ctlChannel(NodeId n, Direction d) const
    {
        return ctlCh_.at(n)[d].get();
    }
    /// @}

  private:
    /// @name Sharded cycle kernel (cfg.shards, docs/ARCHITECTURE.md).
    ///
    /// The mesh is split into `shards_` contiguous node ranges; each
    /// phase of step() runs once per shard (on a worker pool when
    /// profitable, inline otherwise — byte-identical either way).
    /// Cross-shard effects are staged per source shard and merged in
    /// ascending-slot order at fixed points, so the global order of
    /// every order-sensitive operation equals the serial kernel's
    /// ascending-node order for any shard count.
    /// @{
    /** Per-shard slice of the activity scheduler. */
    struct ShardState
    {
        NodeId begin = 0; ///< first owned node
        NodeId end = 0;   ///< one past the last owned node
        /** Active routers of this shard, ascending (concatenating the
         *  shards' lists in shard order yields the serial kernel's
         *  global ascending evaluate order). */
        std::vector<NodeId> activeList;
        std::vector<NodeId> pendingWake;
        bool needSort = false;
    };

    /** Precomputed incoming link of a node (destination-major
     *  deliver): the channels from `src`'s output port `outDir` into
     *  our input port `inPort`. */
    struct InLink
    {
        NodeId src;
        Direction outDir;
        Direction inPort;
        Channel<Flit> *flit;
        Channel<Credit> *credit;
        Channel<CtlMsg> *ctl;
    };

    /** Channel drains + NIC ejection for shard s's routers. */
    void deliverShard(int s);
    /** Staged-ack drain, NIC retransmission timers, router evaluate
     *  — the pooled slice, bundling both evaluate sub-steps. */
    void evaluateShard(int s);
    /** Evaluate sub-step 1: staged-ack drain + NIC retransmission
     *  timers for shard s (no-op when reliability is off). */
    void evaluateNicsShard(int s);
    /** Evaluate sub-step 2: router evaluate for shard s's actives. */
    void evaluateRoutersShard(int s);
    /** NACK hand-off merge, router advance, deferred wakes, park. */
    void advanceShard(int s);
    /** Run fn(s) for every shard — on the pool when parallel. */
    void runPhase(bool parallel, void (Network::*phase)(int));

    int shards_ = 1;              ///< effective count (clamped to n)
    std::vector<int> shardOf_;    ///< node -> owning shard
    std::vector<ShardState> shardState_;
    /** inLinks_[r]: r's incoming links, ascending by source node, so
     *  per-destination accept order equals the serial source-major
     *  scan restricted to r. */
    std::vector<std::vector<InLink>> inLinks_;
    /** Worker pool, created on the first step() that can use it. */
    std::unique_ptr<ShardPool> pool_;
    /** Global-order observer attached (obs trace or setTracer): the
     *  event ring is a single append-only buffer, so phases run their
     *  shard slices serially — same work, same order, no pool. */
    bool tracerAttached_ = false;
    /** ackStage_[s]: end-to-end acks (source NIC, packet) staged by
     *  shard s's ejections this cycle; drained by the source's owner
     *  in ascending-slot order before any retransmission timer. */
    std::vector<std::vector<std::pair<NodeId, PacketId>>> ackStage_;
    /// @}

    /// @name Idle-router activity scheduler (cfg.idleSkip).
    ///
    /// Each router carries an active flag; step() evaluates only the
    /// compact, ascending-sorted active list. A parked router records
    /// lastDone_[n] = first cycle it has not yet accounted for; any
    /// wake or external read replays the gap through advanceIdle(),
    /// whose per-cycle arithmetic is bit-identical to running the
    /// router live, so every exported counter matches idle_skip=off.
    /// @{
    /** Re-activate n for cycle now_ (arrivals, NIC work). No-op when
     *  already active. Replays [lastDone_, now_) first. */
    void wakeRouter(NodeId n);
    /** Re-activate n from mid-evaluate senders (NACK fabric): queued
     *  on pendingWake_ and replayed through now_ after the advance
     *  loop, so n joins the active set at cycle now_ + 1. */
    void wakeDeferred(NodeId n);
    /** Replay a parked router's idle cycles up to (not including)
     *  `target` without activating it. */
    void
    syncTo(NodeId n, Cycle target) const
    {
        if (!idleSkip_ || activeFlag_[n] || lastDone_[n] >= target)
            return;
        routers_[n]->advanceIdle(target - lastDone_[n]);
        lastDone_[n] = target;
    }
    /** syncTo() every parked router (watchdog audits, obs samples). */
    void syncAll(Cycle target) const;

    bool idleSkip_ = false;
    /** Hoists the per-cycle NIC tick loop (tick() is a no-op when
     *  reliability is off). */
    bool relEnabled_ = false;
    /** Cadence of the park scan. An awake idle router costs two
     *  cheap virtual calls per cycle; a premature park costs a wake
     *  + idle replay + re-sort on the next arrival, so parking is
     *  attempted only every few cycles and only routers idle at scan
     *  time park — busy routers pay no per-cycle scheduler state at
     *  all. Parking policy is perf-only: it cannot affect simulation
     *  results (tests/sched_equiv_test.cc proves bit-identity). */
    static constexpr Cycle kParkIntervalCycles = 8;
    /** The active lists themselves live in shardState_ (ascending
     *  per shard; shard-order concatenation is globally ascending,
     *  which the evaluate order must be: same-cycle NACK-fabric
     *  pushes are order-sensitive). */
    std::vector<std::uint8_t> activeFlag_;
    /** First cycle router n has not yet accounted for. Only
     *  meaningful while n is parked (stamped at park time); mutable
     *  so const accessors can sync parked routers on demand. */
    mutable std::vector<Cycle> lastDone_;
    /// @}

    NetworkConfig cfg_;
    FlowControl fc_;
    Mesh mesh_;
    Cycle now_ = 0;
    PacketId packetCounter_ = 0;

    std::vector<std::unique_ptr<Router>> routers_;
    /** Dedicated NACK network (drop-based flow control only). */
    std::unique_ptr<NackFabric> nackFabric_;
    /** Fault injector (nullptr unless cfg.faults.any()). */
    std::unique_ptr<FaultInjector> faults_;
    /** Runtime auditor (nullptr unless cfg.watchdog.enabled). */
    std::unique_ptr<Watchdog> watchdog_;
    /** Observability bundle (nullptr unless cfg.obs.any()). */
    std::shared_ptr<obs::Observability> obs_;
    std::vector<std::unique_ptr<Nic>> nics_;
    std::vector<std::unique_ptr<EnergyLedger>> ledgers_;

    /** flitCh_[n][d]: link from node n out of port d. */
    std::vector<std::array<std::unique_ptr<Channel<Flit>>, kNumNetPorts>>
        flitCh_;
    /** ejectCh_[n]: router-to-NIC ejection pipe (1 cycle). */
    std::vector<std::unique_ptr<Channel<Flit>>> ejectCh_;
    /** creditCh_[n][d]: credits from node n's input port d upstream. */
    std::vector<std::array<std::unique_ptr<Channel<Credit>>, kNumNetPorts>>
        creditCh_;
    /** ctlCh_[n][d]: control line from node n to its neighbor on d. */
    std::vector<std::array<std::unique_ptr<Channel<CtlMsg>>, kNumNetPorts>>
        ctlCh_;
};

/**
 * FNV-1a hash of every simulation-affecting NetworkConfig field plus
 * the flow-control mechanism — the free-function form of
 * Network::configHash(), so grid-level code (the crash-safe journal's
 * spec fingerprint) can hash per-point configs without constructing
 * networks. The obs stream path is excluded: it redirects output
 * without touching simulation state.
 */
std::uint64_t hashNetworkConfig(const NetworkConfig &cfg,
                                FlowControl fc);

} // namespace afcsim

#endif // AFCSIM_NETWORK_NETWORK_HH
