/**
 * @file
 * Network-level checkpoint assembly (DESIGN.md S20): walks every
 * subsystem in a fixed, config-derived order and delegates to the
 * components' ckptSave()/ckptLoad() members. Kept out of network.cc
 * so the cycle kernel stays free of serialization concerns.
 */

#include <algorithm>

#include "ckpt/serial.hh"
#include "ckpt/state.hh"
#include "fault/fault.hh"
#include "fault/watchdog.hh"
#include "network/network.hh"
#include "obs/obs.hh"

namespace afcsim
{

namespace
{

void
hashVnets(ckpt::Writer &w, const std::vector<VnetConfig> &shape)
{
    w.u64(shape.size());
    for (const auto &v : shape) {
        w.i32(v.numVcs);
        w.i32(v.bufferDepth);
    }
}

template <typename T>
void
saveChannel(ckpt::Writer &w, const Channel<T> *ch)
{
    const auto &q = ch->pending();
    w.u64(q.size());
    for (const auto &[t, v] : q) {
        w.u64(t);
        ckpt::put(w, v);
    }
}

template <typename T, typename Get>
void
loadChannel(ckpt::Reader &r, Channel<T> *ch, Get get)
{
    std::deque<std::pair<Cycle, T>> q;
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Cycle t = r.u64();
        q.emplace_back(t, get(r));
    }
    ch->restorePending(std::move(q));
}

} // namespace

std::uint64_t
hashNetworkConfig(const NetworkConfig &cfg, FlowControl fc)
{
    // Canonical encoding of every simulation-affecting field. The
    // obs stream path is deliberately excluded: it redirects series
    // output without touching simulation state, so a restored run
    // may stream to a different file (the differential tests do).
    ckpt::Writer w;
    w.i32(static_cast<std::int32_t>(fc));
    w.i32(cfg.width);
    w.i32(cfg.height);
    w.i32(cfg.linkLatency);
    w.i32(cfg.routerStages);
    hashVnets(w, cfg.vnets);
    hashVnets(w, cfg.afcVnets);
    w.i32(cfg.dataPacketFlits);
    w.i32(cfg.controlPacketFlits);
    w.i32(cfg.injectionQueueDepth);
    w.i32(cfg.ejectPerCycle);
    w.i32(cfg.dropRetransmitBuffer);
    const AfcConfig &a = cfg.afc;
    w.f64(a.ewmaWeight);
    w.f64(a.cornerHigh);
    w.f64(a.cornerLow);
    w.f64(a.edgeHigh);
    w.f64(a.edgeLow);
    w.f64(a.centerHigh);
    w.f64(a.centerLow);
    w.i32(a.gossipReserve);
    w.b(a.alwaysBackpressured);
    w.b(a.disableGossipUnsafe);
    w.u64(a.adapt.probeInterval);
    w.u64(a.adapt.probeWindow);
    w.f64(a.adapt.gain);
    w.f64(a.adapt.minScale);
    w.f64(a.adapt.maxScale);
    w.f64(a.adapt.gapFloor);
    const EnergyConfig &e = cfg.energy;
    w.f64(e.bufferWritePerBit);
    w.f64(e.bufferReadPerBit);
    w.f64(e.crossbarPerBit);
    w.f64(e.linkPerBitPerMm);
    w.f64(e.linkLengthMm);
    w.f64(e.arbiterPerAlloc);
    w.f64(e.latchPerBit);
    w.f64(e.bufferLeakPerBitCycle);
    w.f64(e.bufferDepthEnergySlope);
    w.f64(e.routerIdlePerCycle);
    w.f64(e.creditPerHop);
    w.f64(e.powerGatingEfficiency);
    const FaultSpec &f = cfg.faults;
    w.f64(f.corruptRate);
    w.f64(f.linkDownRate);
    w.u64(f.linkDownMinCycles);
    w.u64(f.linkDownMaxCycles);
    w.f64(f.stallRate);
    w.u64(f.stallMinCycles);
    w.u64(f.stallMaxCycles);
    w.f64(f.creditLossRate);
    w.u64(f.failAtCycle);
    const ReliabilitySpec &rl = cfg.reliability;
    w.b(rl.enabled);
    w.u64(rl.timeoutCycles);
    w.f64(rl.backoffFactor);
    w.i32(rl.maxRetries);
    w.i32(rl.bufferPackets);
    const WatchdogSpec &wd = cfg.watchdog;
    w.b(wd.enabled);
    w.u64(wd.intervalCycles);
    w.u64(wd.progressWindowCycles);
    w.u64(wd.maxFlitAgeCycles);
    w.b(wd.creditCheck);
    w.b(wd.conservationCheck);
    const ObsSpec &o = cfg.obs;
    w.u64(o.sampleInterval);
    w.i32(o.sampleCapacity);
    w.b(o.trace);
    w.i32(o.traceCapacity);
    w.u64(cfg.seed);
    w.b(cfg.oldestFirstDeflection);
    w.b(cfg.idleSkip);
    // cfg.shards is deliberately NOT hashed: the shard count is a
    // pure execution knob (byte-identical exports for any value, see
    // tests/sched_equiv_test.cc), so a snapshot taken under N shards
    // must restore under any other count — including 1.
    return ckpt::fnv1a(w.bytes().data(), w.bytes().size());
}

std::uint64_t
Network::configHash() const
{
    return hashNetworkConfig(cfg_, fc_);
}

void
Network::ckptSave(ckpt::Writer &w) const
{
    // Cycle-boundary state only: the caller snapshots between step()
    // calls. Parked routers replay their skipped idle cycles first so
    // every serialized counter is exact for cycles [0, now_).
    syncAll(now_);
    w.u64(configHash());
    w.u64(now_);
    w.u64(packetCounter_);
    int n = mesh_.numNodes();
    for (NodeId node = 0; node < n; ++node)
        routers_[node]->ckptSave(w);
    for (NodeId node = 0; node < n; ++node)
        nics_[node]->ckptSave(w);
    for (NodeId node = 0; node < n; ++node) {
        for (double v : ledgers_[node]->report().byComponent)
            w.f64(v);
    }
    for (NodeId node = 0; node < n; ++node) {
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (flitCh_[node][d])
                saveChannel(w, flitCh_[node][d].get());
        }
        saveChannel(w, ejectCh_[node].get());
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (creditCh_[node][d])
                saveChannel(w, creditCh_[node][d].get());
        }
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (ctlCh_[node][d])
                saveChannel(w, ctlCh_[node][d].get());
        }
    }
    w.b(nackFabric_ != nullptr);
    if (nackFabric_) {
        for (NodeId node = 0; node < n; ++node) {
            const auto &q = nackFabric_->rawQueue(node);
            w.u64(q.size());
            for (const auto &[t, nk] : q) {
                w.u64(t);
                w.u64(nk.packet);
                w.u32(nk.seq);
            }
        }
    }
    w.b(faults_ != nullptr);
    if (faults_)
        faults_->ckptSave(w);
    w.b(watchdog_ != nullptr);
    if (watchdog_)
        watchdog_->ckptSave(w);
    w.b(obs_ != nullptr);
    if (obs_)
        obs_->ckptSave(w);
}

void
Network::ckptLoad(ckpt::Reader &r)
{
    std::uint64_t hash = r.u64();
    if (hash != configHash()) {
        AFCSIM_SIM_ERROR(
            "checkpoint config mismatch: the snapshot was taken under "
            "a different network configuration or flow control");
    }
    now_ = r.u64();
    packetCounter_ = r.u64();
    int n = mesh_.numNodes();
    for (NodeId node = 0; node < n; ++node)
        routers_[node]->ckptLoad(r);
    for (NodeId node = 0; node < n; ++node)
        nics_[node]->ckptLoad(r);
    for (NodeId node = 0; node < n; ++node) {
        EnergyReport rep;
        for (double &v : rep.byComponent)
            v = r.f64();
        ledgers_[node]->restoreReport(rep);
    }
    for (NodeId node = 0; node < n; ++node) {
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (flitCh_[node][d])
                loadChannel(r, flitCh_[node][d].get(), ckpt::getFlit);
        }
        loadChannel(r, ejectCh_[node].get(), ckpt::getFlit);
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (creditCh_[node][d])
                loadChannel(r, creditCh_[node][d].get(),
                            ckpt::getCredit);
        }
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (ctlCh_[node][d])
                loadChannel(r, ctlCh_[node][d].get(), ckpt::getCtl);
        }
    }
    bool hadNack = r.b();
    AFCSIM_SIM_ASSERT(hadNack == (nackFabric_ != nullptr),
                      "checkpoint: NACK-fabric presence mismatch");
    if (nackFabric_) {
        for (NodeId node = 0; node < n; ++node) {
            std::deque<std::pair<Cycle, NackFabric::Nack>> q;
            std::uint64_t sz = r.u64();
            for (std::uint64_t i = 0; i < sz; ++i) {
                Cycle t = r.u64();
                NackFabric::Nack nk;
                nk.packet = r.u64();
                nk.seq = static_cast<std::uint16_t>(r.u32());
                q.emplace_back(t, nk);
            }
            nackFabric_->restoreQueue(node, std::move(q));
        }
    }
    bool hadFaults = r.b();
    AFCSIM_SIM_ASSERT(hadFaults == (faults_ != nullptr),
                      "checkpoint: fault-injector presence mismatch");
    if (faults_)
        faults_->ckptLoad(r);
    bool hadWatchdog = r.b();
    AFCSIM_SIM_ASSERT(hadWatchdog == (watchdog_ != nullptr),
                      "checkpoint: watchdog presence mismatch");
    if (watchdog_)
        watchdog_->ckptLoad(r);
    bool hadObs = r.b();
    AFCSIM_SIM_ASSERT(hadObs == (obs_ != nullptr),
                      "checkpoint: observability presence mismatch");
    if (obs_)
        obs_->ckptLoad(r);

    // Re-admit every router to its shard's active list for cycle
    // now_. Neither the park set nor the shard partition is
    // serialized: replayed idle arithmetic is bit-identical to live
    // stepping, the next park scan re-parks idle routers, and the
    // restoring process may run any shard count (the partition is
    // derived from this network's own config), so the restored run's
    // exports match an uninterrupted run exactly.
    std::fill(activeFlag_.begin(), activeFlag_.end(), 1);
    std::fill(lastDone_.begin(), lastDone_.end(), Cycle{0});
    for (auto &sh : shardState_) {
        sh.activeList.clear();
        sh.pendingWake.clear();
        sh.needSort = false;
        for (NodeId node = sh.begin; node < sh.end; ++node)
            sh.activeList.push_back(node);
    }
}

} // namespace afcsim
