#include "network/nic.hh"

#include <algorithm>

#include "ckpt/state.hh"
#include "common/log.hh"
#include "energy/energy.hh"

namespace afcsim
{

Nic::Nic(NodeId node, const NetworkConfig &cfg, PacketId *packet_counter)
    : node_(node), numVnets_(cfg.numVnets()), packetCounter_(packet_counter),
      rel_(cfg.reliability), queues_(cfg.numVnets())
{
    AFCSIM_ASSERT(packet_counter != nullptr, "NIC needs a packet counter");
    // After this long past completion no retransmitted copy can still
    // be in flight: the source stops resending at the ack, and the
    // last copy left at most one (backed-off) timeout earlier.
    Cycle worst_wait = rel_.timeoutCycles;
    for (int i = 0; i < rel_.maxRetries; ++i)
        worst_wait = static_cast<Cycle>(worst_wait * rel_.backoffFactor);
    completedHorizon_ = worst_wait + 10000;
}

PacketId
Nic::sendPacket(NodeId dest, VnetId vnet, int length, Cycle now,
                std::uint64_t tag)
{
    AFCSIM_ASSERT(vnet >= 0 && vnet < numVnets_, "bad vnet ", int(vnet));
    AFCSIM_ASSERT(length >= 1, "packet length must be >= 1");
    AFCSIM_ASSERT(dest != node_, "self-addressed packet at node ", node_);

    PacketId id = (*packetCounter_)++;
    bool protect = rel_.enabled &&
                   retransmit_.size() <
                       static_cast<std::size_t>(rel_.bufferPackets);
    if (rel_.enabled && !protect)
        ++stats_.retransmitOverflows;

    RetransmitEntry *entry = nullptr;
    if (protect) {
        RetransmitEntry &e = retransmit_[id];
        e.vnet = vnet;
        e.wait = rel_.timeoutCycles;
        e.deadline = now + e.wait;
        e.flits.reserve(length);
        entry = &e;
    }

    for (int i = 0; i < length; ++i) {
        Flit f;
        f.packet = id;
        f.seq = static_cast<std::uint16_t>(i);
        f.packetLen = static_cast<std::uint16_t>(length);
        f.src = node_;
        f.dest = dest;
        f.vnet = vnet;
        f.createTime = now;
        if (length == 1) {
            f.type = FlitType::Single;
        } else if (i == 0) {
            f.type = FlitType::Head;
        } else if (i == length - 1) {
            f.type = FlitType::Tail;
        } else {
            f.type = FlitType::Body;
        }
        f.tag = tag;
        if (protect) {
            f.guard();
            entry->flits.push_back(f);
        }
        queues_[vnet].push_back(f);
    }
    queuedTotal_ += static_cast<std::size_t>(length);
    ++stats_.packetsInjected;
    stats_.flitsInjected += length;
    lifetime_.flitsInjected += length;
    if (wakeHook_)
        wakeHook_();
    return id;
}

void
Nic::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

void
Nic::setAckHandler(AckHandler handler)
{
    ackFn_ = std::move(handler);
}

void
Nic::onAcked(PacketId packet)
{
    retransmit_.erase(packet);
}

void
Nic::tick(Cycle now)
{
    if (!rel_.enabled)
        return;

    for (auto it = retransmit_.begin(); it != retransmit_.end();) {
        RetransmitEntry &e = it->second;
        if (e.deadline > now) {
            ++it;
            continue;
        }
        if (e.retries >= rel_.maxRetries) {
            ++stats_.packetsFailed;
            it = retransmit_.erase(it);
            continue;
        }
        ++e.retries;
        if (tracer_ && !e.flits.empty())
            tracer_->onRetransmit(node_, e.flits.front(), e.retries, now);
        ++stats_.packetsRetransmitted;
        stats_.flitsRetransmitted += e.flits.size();
        lifetime_.flitsRetransmitted += e.flits.size();
        // Re-enqueue the stored copies ahead of new traffic. Each
        // copy is read out of the retransmit buffer (charged); the
        // deadline re-arms when the copy's tail re-enters the network
        // (popInjection), so only in-network loss restarts the clock.
        // If the router is mid-way through pulling a packet from this
        // queue (its head already popped), splice after that packet's
        // remaining flits — a resent head must not split it.
        auto &q = queues_.at(e.vnet);
        auto pos = q.begin();
        if (!q.empty() && !q.front().isHead()) {
            while (pos != q.end() && !pos->isTail())
                ++pos;
            if (pos != q.end())
                ++pos;
        }
        q.insert(pos, e.flits.begin(), e.flits.end());
        queuedTotal_ += e.flits.size();
        if (wakeHook_)
            wakeHook_();
        if (ledger_) {
            for (std::size_t i = 0; i < e.flits.size(); ++i)
                ledger_->bufferRead();
        }
        e.wait = static_cast<Cycle>(e.wait * rel_.backoffFactor);
        e.deadline = now + e.wait;
        ++it;
    }

    // Prune the completed-packet memory on a coarse cadence.
    if ((now & 1023) == 0 && !completedAt_.empty()) {
        for (auto it = completedAt_.begin(); it != completedAt_.end();) {
            if (it->second + completedHorizon_ < now)
                it = completedAt_.erase(it);
            else
                ++it;
        }
    }
}

bool
Nic::hasInjectable(VnetId vnet) const
{
    return !queues_[vnet].empty();
}

const Flit &
Nic::peekInjection(VnetId vnet) const
{
    AFCSIM_ASSERT(hasInjectable(vnet), "peek on empty vnet queue");
    return queues_[vnet].front();
}

Flit
Nic::popInjection(VnetId vnet, Cycle now)
{
    AFCSIM_ASSERT(hasInjectable(vnet), "pop on empty vnet queue");
    Flit f = queues_[vnet].front();
    queues_[vnet].pop_front();
    --queuedTotal_;
    f.injectTime = now;
    if (rel_.enabled &&
        (f.type == FlitType::Tail || f.type == FlitType::Single)) {
        // The whole packet is now in the network: start (or restart)
        // the retransmit timer from here rather than from enqueue, so
        // source-queue waiting never triggers a spurious resend.
        auto it = retransmit_.find(f.packet);
        if (it != retransmit_.end())
            it->second.deadline = now + it->second.wait;
    }
    if (tracer_)
        tracer_->onInject(node_, f, now);
    return f;
}

std::size_t
Nic::queuedFlits(VnetId vnet) const
{
    return queues_.at(vnet).size();
}

void
Nic::discardDuplicate(const Flit &flit, Cycle now)
{
    ++stats_.flitsDuplicate;
    ++lifetime_.flitsDuplicate;
    if (tracer_)
        tracer_->onDrop(node_, flit, now);
}

void
Nic::eject(const Flit &flit, Cycle now)
{
    AFCSIM_ASSERT(flit.dest == node_,
                  "misdelivered ", flit.describe(), " at node ", node_);

    // End-to-end checksum: a corrupted flit is discarded here and the
    // loss is repaired by source retransmission. (In-network flow
    // control never sees the loss — the corruption-only fault model
    // keeps credits/deflections consistent.)
    if (flit.guarded && !flit.checksumOk()) {
        ++stats_.flitsCorrupted;
        ++lifetime_.flitsCorrupted;
        if (tracer_)
            tracer_->onDrop(node_, flit, now);
        return;
    }

    // A straggler copy of a packet that already completed must not
    // re-open a reassembly entry.
    if (rel_.enabled && completedAt_.count(flit.packet)) {
        discardDuplicate(flit, now);
        return;
    }

    auto [it, inserted] = reassembly_.try_emplace(flit.packet);
    Reassembly &r = it->second;
    if (inserted) {
        r.seen.assign(flit.packetLen, false);
        r.createTime = flit.createTime;
        r.src = flit.src;
        r.tag = flit.tag;
        maxReassemblies_ = std::max(maxReassemblies_, reassembly_.size());
    }
    AFCSIM_ASSERT(flit.seq < r.seen.size(), "flit seq out of range");
    if (r.seen[flit.seq]) {
        // Without retransmission the network must never duplicate.
        AFCSIM_ASSERT(rel_.enabled,
                      "duplicate flit delivery: ", flit.describe());
        discardDuplicate(flit, now);
        return;
    }
    r.seen[flit.seq] = true;
    ++r.received;

    if (tracer_)
        tracer_->onDeliver(node_, flit, now);
    ++stats_.flitsDelivered;
    ++lifetime_.flitsDelivered;
    stats_.flitLatency.add(static_cast<double>(now - flit.injectTime));
    stats_.hops.add(flit.hops);
    stats_.deflections.add(flit.deflections);
    stats_.totalDeflections += flit.deflections;

    if (r.received == static_cast<int>(r.seen.size())) {
        ++stats_.packetsDelivered;
        stats_.packetLatency.add(static_cast<double>(now - r.createTime));
        stats_.packetLatencyHist.add(
            static_cast<double>(now - r.createTime));
        stats_.packetLatencyPct.add(
            static_cast<double>(now - r.createTime));
        if (rel_.enabled) {
            completedAt_.emplace(flit.packet, now);
            if (ackFn_)
                ackFn_(r.src, flit.packet);
        }
        if (handler_) {
            PacketInfo info;
            info.packet = flit.packet;
            info.src = r.src;
            info.dest = node_;
            info.vnet = flit.vnet;
            info.length = static_cast<int>(r.seen.size());
            info.tag = r.tag;
            info.createTime = r.createTime;
            info.deliverTime = now;
            handler_(info);
        }
        reassembly_.erase(it);
    }
}

void
Nic::ckptSave(ckpt::Writer &w) const
{
    w.u64(queues_.size());
    for (const auto &q : queues_) {
        w.u64(q.size());
        for (const auto &f : q)
            ckpt::put(w, f);
    }
    w.u64(queuedTotal_);
    // Unordered maps are written in sorted key order so the stream is
    // deterministic; rebuild order on load does not affect behavior
    // because all lookups are keyed.
    std::vector<PacketId> keys;
    keys.reserve(reassembly_.size());
    for (const auto &[pkt, re] : reassembly_)
        keys.push_back(pkt);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (PacketId pkt : keys) {
        const Reassembly &re = reassembly_.at(pkt);
        w.u64(pkt);
        w.u64(re.seen.size());
        for (bool s : re.seen)
            w.b(s);
        w.i32(re.received);
        w.u64(re.createTime);
        w.i32(re.src);
        w.u64(re.tag);
    }
    w.u64(maxReassemblies_);
    ckpt::put(w, stats_);
    w.u64(lifetime_.flitsInjected);
    w.u64(lifetime_.flitsRetransmitted);
    w.u64(lifetime_.flitsDelivered);
    w.u64(lifetime_.flitsCorrupted);
    w.u64(lifetime_.flitsDuplicate);
    w.u64(retransmit_.size());
    for (const auto &[pkt, entry] : retransmit_) {
        w.u64(pkt);
        w.u64(entry.flits.size());
        for (const auto &f : entry.flits)
            ckpt::put(w, f);
        w.i32(entry.vnet);
        w.u64(entry.deadline);
        w.u64(entry.wait);
        w.i32(entry.retries);
    }
    keys.clear();
    for (const auto &[pkt, cyc] : completedAt_)
        keys.push_back(pkt);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (PacketId pkt : keys) {
        w.u64(pkt);
        w.u64(completedAt_.at(pkt));
    }
    w.u64(completedHorizon_);
}

void
Nic::ckptLoad(ckpt::Reader &r)
{
    std::uint64_t nq = r.u64();
    AFCSIM_ASSERT(nq == queues_.size(),
                  "NIC checkpoint: vnet count mismatch");
    for (auto &q : queues_) {
        q.clear();
        std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            q.push_back(ckpt::getFlit(r));
    }
    queuedTotal_ = r.u64();
    reassembly_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        PacketId pkt = r.u64();
        Reassembly re;
        std::uint64_t seen = r.u64();
        re.seen.resize(static_cast<std::size_t>(seen));
        for (std::uint64_t j = 0; j < seen; ++j)
            re.seen[j] = r.b();
        re.received = r.i32();
        re.createTime = r.u64();
        re.src = static_cast<NodeId>(r.i32());
        re.tag = r.u64();
        reassembly_.emplace(pkt, std::move(re));
    }
    maxReassemblies_ = r.u64();
    ckpt::get(r, stats_);
    lifetime_.flitsInjected = r.u64();
    lifetime_.flitsRetransmitted = r.u64();
    lifetime_.flitsDelivered = r.u64();
    lifetime_.flitsCorrupted = r.u64();
    lifetime_.flitsDuplicate = r.u64();
    retransmit_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        PacketId pkt = r.u64();
        RetransmitEntry entry;
        std::uint64_t nf = r.u64();
        entry.flits.reserve(static_cast<std::size_t>(nf));
        for (std::uint64_t j = 0; j < nf; ++j)
            entry.flits.push_back(ckpt::getFlit(r));
        entry.vnet = static_cast<VnetId>(r.i32());
        entry.deadline = r.u64();
        entry.wait = r.u64();
        entry.retries = r.i32();
        retransmit_.emplace(pkt, std::move(entry));
    }
    completedAt_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        PacketId pkt = r.u64();
        completedAt_.emplace(pkt, r.u64());
    }
    completedHorizon_ = r.u64();
}

} // namespace afcsim
