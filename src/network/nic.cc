#include "network/nic.hh"

#include "common/log.hh"

namespace afcsim
{

Nic::Nic(NodeId node, const NetworkConfig &cfg, PacketId *packet_counter)
    : node_(node), numVnets_(cfg.numVnets()), packetCounter_(packet_counter),
      queues_(cfg.numVnets())
{
    AFCSIM_ASSERT(packet_counter != nullptr, "NIC needs a packet counter");
}

PacketId
Nic::sendPacket(NodeId dest, VnetId vnet, int length, Cycle now,
                std::uint64_t tag)
{
    AFCSIM_ASSERT(vnet >= 0 && vnet < numVnets_, "bad vnet ", int(vnet));
    AFCSIM_ASSERT(length >= 1, "packet length must be >= 1");
    AFCSIM_ASSERT(dest != node_, "self-addressed packet at node ", node_);

    PacketId id = (*packetCounter_)++;
    for (int i = 0; i < length; ++i) {
        Flit f;
        f.packet = id;
        f.seq = static_cast<std::uint16_t>(i);
        f.packetLen = static_cast<std::uint16_t>(length);
        f.src = node_;
        f.dest = dest;
        f.vnet = vnet;
        f.createTime = now;
        if (length == 1) {
            f.type = FlitType::Single;
        } else if (i == 0) {
            f.type = FlitType::Head;
        } else if (i == length - 1) {
            f.type = FlitType::Tail;
        } else {
            f.type = FlitType::Body;
        }
        f.tag = tag;
        queues_[vnet].push_back(f);
    }
    ++stats_.packetsInjected;
    stats_.flitsInjected += length;
    return id;
}

void
Nic::setDeliveryHandler(DeliveryHandler handler)
{
    handler_ = std::move(handler);
}

bool
Nic::hasInjectable(VnetId vnet) const
{
    return !queues_[vnet].empty();
}

const Flit &
Nic::peekInjection(VnetId vnet) const
{
    AFCSIM_ASSERT(hasInjectable(vnet), "peek on empty vnet queue");
    return queues_[vnet].front();
}

Flit
Nic::popInjection(VnetId vnet, Cycle now)
{
    AFCSIM_ASSERT(hasInjectable(vnet), "pop on empty vnet queue");
    Flit f = queues_[vnet].front();
    queues_[vnet].pop_front();
    f.injectTime = now;
    if (tracer_)
        tracer_->onInject(node_, f, now);
    return f;
}

std::size_t
Nic::queuedFlits() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

std::size_t
Nic::queuedFlits(VnetId vnet) const
{
    return queues_.at(vnet).size();
}

void
Nic::eject(const Flit &flit, Cycle now)
{
    AFCSIM_ASSERT(flit.dest == node_,
                  "misdelivered ", flit.describe(), " at node ", node_);

    if (tracer_)
        tracer_->onDeliver(node_, flit, now);

    ++stats_.flitsDelivered;
    stats_.flitLatency.add(static_cast<double>(now - flit.injectTime));
    stats_.hops.add(flit.hops);
    stats_.deflections.add(flit.deflections);
    stats_.totalDeflections += flit.deflections;

    auto [it, inserted] = reassembly_.try_emplace(flit.packet);
    Reassembly &r = it->second;
    if (inserted) {
        r.seen.assign(flit.packetLen, false);
        r.createTime = flit.createTime;
        r.src = flit.src;
        r.tag = flit.tag;
        maxReassemblies_ = std::max(maxReassemblies_, reassembly_.size());
    }
    AFCSIM_ASSERT(flit.seq < r.seen.size(), "flit seq out of range");
    AFCSIM_ASSERT(!r.seen[flit.seq],
                  "duplicate flit delivery: ", flit.describe());
    r.seen[flit.seq] = true;
    ++r.received;

    if (r.received == static_cast<int>(r.seen.size())) {
        ++stats_.packetsDelivered;
        stats_.packetLatency.add(static_cast<double>(now - r.createTime));
        stats_.packetLatencyHist.add(
            static_cast<double>(now - r.createTime));
        if (handler_) {
            PacketInfo info;
            info.packet = flit.packet;
            info.src = r.src;
            info.dest = node_;
            info.vnet = flit.vnet;
            info.length = static_cast<int>(r.seen.size());
            info.tag = r.tag;
            info.createTime = r.createTime;
            info.deliverTime = now;
            handler_(info);
        }
        reassembly_.erase(it);
    }
}

} // namespace afcsim
