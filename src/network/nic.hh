/**
 * @file
 * Network interface controller: per-vnet source (injection) queues,
 * receive-side reassembly (modeling MSHR-backed buffering, Sec. II),
 * and end-to-end statistics. Routers pull flits from the NIC when
 * their injection rules allow (backpressure exists only at the
 * injection port for backpressureless routers — footnote 3).
 */

#ifndef AFCSIM_NETWORK_NIC_HH
#define AFCSIM_NETWORK_NIC_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "network/flit.hh"
#include "network/trace.hh"

namespace afcsim
{

/** Summary of a fully reassembled packet, passed to delivery hooks. */
struct PacketInfo
{
    PacketId packet;
    NodeId src;
    NodeId dest;
    VnetId vnet;
    int length;
    std::uint64_t tag;
    Cycle createTime;
    Cycle deliverTime;
};

/**
 * One NIC per node. Packets are enqueued whole (flit-ified
 * immediately); routers pull flits one per cycle as flow control
 * permits; arriving flits are reassembled by (packet id, seq) and a
 * completion callback fires when the last flit lands.
 */
class Nic
{
  public:
    using DeliveryHandler = std::function<void(const PacketInfo &)>;

    Nic(NodeId node, const NetworkConfig &cfg, PacketId *packet_counter);

    NodeId node() const { return node_; }

    /**
     * Create a packet of `length` flits to `dest` on `vnet` at cycle
     * `now`; returns its packet id. `tag` is opaque user metadata
     * delivered with the completion callback.
     */
    PacketId sendPacket(NodeId dest, VnetId vnet, int length, Cycle now,
                        std::uint64_t tag = 0);

    /** Register the reassembled-packet callback (closed-loop hook). */
    void setDeliveryHandler(DeliveryHandler handler);

    /** Attach an event tracer (nullptr disables tracing). */
    void attachTracer(FlitTracer *tracer) { tracer_ = tracer; }

    /// @name Injection-side interface used by routers.
    /// @{
    bool hasInjectable(VnetId vnet) const;
    const Flit &peekInjection(VnetId vnet) const;
    /** Dequeue the head flit of `vnet`, stamping its network entry. */
    Flit popInjection(VnetId vnet, Cycle now);
    /** Total flits waiting across all vnets (source-queue occupancy). */
    std::size_t queuedFlits() const;
    std::size_t queuedFlits(VnetId vnet) const;
    /// @}

    /** Deliver a flit that exited the network at this node. */
    void eject(const Flit &flit, Cycle now);

    const NetStats &stats() const { return stats_; }
    NetStats &stats() { return stats_; }

    /** Packets currently awaiting missing flits. */
    std::size_t pendingReassemblies() const { return reassembly_.size(); }

    /** High-water mark of concurrent reassembly entries (MSHR use). */
    std::size_t maxReassemblies() const { return maxReassemblies_; }

    /** True when no flits are queued and no packet is half-received. */
    bool
    quiescent() const
    {
        return queuedFlits() == 0 && reassembly_.empty();
    }

  private:
    struct Reassembly
    {
        std::vector<bool> seen;
        int received = 0;
        Cycle createTime = 0;
        NodeId src = kInvalidNode;
        std::uint64_t tag = 0;
    };

    NodeId node_;
    int numVnets_;
    PacketId *packetCounter_;
    std::vector<std::deque<Flit>> queues_;
    std::unordered_map<PacketId, Reassembly> reassembly_;
    std::size_t maxReassemblies_ = 0;
    DeliveryHandler handler_;
    FlitTracer *tracer_ = nullptr;
    NetStats stats_;
};

} // namespace afcsim

#endif // AFCSIM_NETWORK_NIC_HH
