/**
 * @file
 * Network interface controller: per-vnet source (injection) queues,
 * receive-side reassembly (modeling MSHR-backed buffering, Sec. II),
 * and end-to-end statistics. Routers pull flits from the NIC when
 * their injection rules allow (backpressure exists only at the
 * injection port for backpressureless routers — footnote 3).
 */

#ifndef AFCSIM_NETWORK_NIC_HH
#define AFCSIM_NETWORK_NIC_HH

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "network/flit.hh"
#include "network/trace.hh"

namespace afcsim
{

class EnergyLedger;

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/**
 * Never-reset per-NIC flit accounting used by the conservation
 * watchdog (src/fault). NetStats resets at the measurement-window
 * boundary, so the watchdog needs its own lifetime counters:
 * injected + retransmitted == delivered + corrupted + duplicate
 *                             + queued + in-flight
 * holds at every cycle under the corruption-only fault model.
 */
struct NicLifetime
{
    std::uint64_t flitsInjected = 0;      ///< unique flits enqueued
    std::uint64_t flitsRetransmitted = 0; ///< re-enqueued copies
    std::uint64_t flitsDelivered = 0;     ///< accepted by reassembly
    std::uint64_t flitsCorrupted = 0;     ///< discarded: bad checksum
    std::uint64_t flitsDuplicate = 0;     ///< discarded: already seen
};

/** Summary of a fully reassembled packet, passed to delivery hooks. */
struct PacketInfo
{
    PacketId packet;
    NodeId src;
    NodeId dest;
    VnetId vnet;
    int length;
    std::uint64_t tag;
    Cycle createTime;
    Cycle deliverTime;
};

/**
 * One NIC per node. Packets are enqueued whole (flit-ified
 * immediately); routers pull flits one per cycle as flow control
 * permits; arriving flits are reassembled by (packet id, seq) and a
 * completion callback fires when the last flit lands.
 */
class Nic
{
  public:
    using DeliveryHandler = std::function<void(const PacketInfo &)>;
    /** Out-of-band ack: (source node, packet) — see onAcked(). */
    using AckHandler = std::function<void(NodeId, PacketId)>;

    Nic(NodeId node, const NetworkConfig &cfg, PacketId *packet_counter);

    NodeId node() const { return node_; }

    /**
     * Create a packet of `length` flits to `dest` on `vnet` at cycle
     * `now`; returns its packet id. `tag` is opaque user metadata
     * delivered with the completion callback.
     */
    PacketId sendPacket(NodeId dest, VnetId vnet, int length, Cycle now,
                        std::uint64_t tag = 0);

    /** Register the reassembled-packet callback (closed-loop hook). */
    void setDeliveryHandler(DeliveryHandler handler);

    /**
     * Called whenever new injectable work appears at this NIC
     * (sendPacket, or a retransmission timeout re-enqueueing flits).
     * The idle-skip scheduler uses it to re-activate the router.
     */
    void setWakeHook(std::function<void()> hook)
    {
        wakeHook_ = std::move(hook);
    }

    /** Attach an event tracer (nullptr disables tracing). */
    void attachTracer(FlitTracer *tracer) { tracer_ = tracer; }

    /// @name End-to-end reliability layer (cfg.reliability).
    /// @{
    /**
     * Register the ack path. When a packet completes reassembly the
     * destination NIC invokes this with (src, packet); the Network
     * wires it to the source NIC's onAcked(). Acks are modeled as
     * out-of-band and free so the fault-free fast path is untouched.
     */
    void setAckHandler(AckHandler handler);

    /** The destination acked `packet`: release its retransmit slot. */
    void onAcked(PacketId packet);

    /** Ledger charged for retransmit-buffer reads (nullptr: none). */
    void attachLedger(EnergyLedger *ledger) { ledger_ = ledger; }

    /**
     * Per-cycle reliability bookkeeping: expire retransmit timers,
     * re-enqueue timed-out packets (with exponential backoff), give
     * up after maxRetries. No-op when reliability is disabled.
     */
    void tick(Cycle now);

    /** Packets parked in the source retransmit buffer. */
    std::size_t retransmitPending() const { return retransmit_.size(); }
    /// @}

    /// @name Injection-side interface used by routers.
    /// @{
    bool hasInjectable(VnetId vnet) const;
    const Flit &peekInjection(VnetId vnet) const;
    /** Dequeue the head flit of `vnet`, stamping its network entry. */
    Flit popInjection(VnetId vnet, Cycle now);
    /** Total flits waiting across all vnets (source-queue occupancy).
     *  O(1): maintained as a running counter (hot path + idle checks). */
    std::size_t queuedFlits() const { return queuedTotal_; }
    std::size_t queuedFlits(VnetId vnet) const;
    /// @}

    /** Deliver a flit that exited the network at this node. */
    void eject(const Flit &flit, Cycle now);

    const NetStats &stats() const { return stats_; }
    NetStats &stats() { return stats_; }

    /** Never-reset counters for the conservation watchdog. */
    const NicLifetime &lifetime() const { return lifetime_; }

    /** Packets currently awaiting missing flits. */
    std::size_t pendingReassemblies() const { return reassembly_.size(); }

    /** High-water mark of concurrent reassembly entries (MSHR use). */
    std::size_t maxReassemblies() const { return maxReassemblies_; }

    /**
     * True when no flits are queued, no packet is half-received, and
     * no packet is awaiting an end-to-end ack (a pending retransmit
     * slot means this NIC may still re-inject traffic).
     */
    bool
    quiescent() const
    {
        return queuedFlits() == 0 && reassembly_.empty() &&
               retransmit_.empty();
    }

    /// @name Bit-exact snapshot/restore (src/ckpt). Serializes all
    /// dynamic state (queues, reassembly, retransmit buffer, stats);
    /// handlers, hooks and config stay with the fresh construction.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

  private:
    struct Reassembly
    {
        std::vector<bool> seen;
        int received = 0;
        Cycle createTime = 0;
        NodeId src = kInvalidNode;
        std::uint64_t tag = 0;
    };

    /** Source-side copy of an unacked packet. */
    struct RetransmitEntry
    {
        std::vector<Flit> flits; ///< guarded copies, pre-corruption
        VnetId vnet = 0;
        Cycle deadline = kNeverCycle;
        Cycle wait = 0; ///< current timeout (grows by backoffFactor)
        int retries = 0;
    };

    void discardDuplicate(const Flit &flit, Cycle now);

    NodeId node_;
    int numVnets_;
    PacketId *packetCounter_;
    ReliabilitySpec rel_;
    std::vector<std::deque<Flit>> queues_;
    std::size_t queuedTotal_ = 0;
    std::function<void()> wakeHook_;
    std::unordered_map<PacketId, Reassembly> reassembly_;
    std::size_t maxReassemblies_ = 0;
    DeliveryHandler handler_;
    AckHandler ackFn_;
    EnergyLedger *ledger_ = nullptr;
    FlitTracer *tracer_ = nullptr;
    NetStats stats_;
    NicLifetime lifetime_;
    /** Unacked packets, ordered for deterministic timeout sweeps. */
    std::map<PacketId, RetransmitEntry> retransmit_;
    /**
     * Completion times of recently delivered packets, so straggler
     * duplicates of an already-complete packet are recognized instead
     * of re-opening a reassembly entry. Pruned on a horizon well past
     * the last possible retransmitted copy.
     */
    std::unordered_map<PacketId, Cycle> completedAt_;
    Cycle completedHorizon_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_NETWORK_NIC_HH
