#include "network/shardpool.hh"

#include "common/log.hh"

namespace afcsim
{

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

} // namespace

template <typename T>
void
ShardPool::awaitChange(const std::atomic<T> &a, T old)
{
    // A phase hand-off is normally immediate (the other side is a few
    // hundred instructions away), so spin first; the futex path only
    // matters for a pool idling between step() bursts.
    for (int spins = 0; spins < 4096; ++spins) {
        if (a.load(std::memory_order_acquire) != old)
            return;
        cpuRelax();
    }
    while (a.load(std::memory_order_acquire) == old)
        a.wait(old, std::memory_order_acquire);
}

ShardPool::ShardPool(int shards) : shards_(shards)
{
    AFCSIM_ASSERT(shards >= 2, "a shard pool needs >= 2 shards");
    workers_.reserve(static_cast<std::size_t>(shards - 1));
    for (int s = 1; s < shards; ++s)
        workers_.emplace_back([this, s] { workerMain(s); });
}

ShardPool::~ShardPool()
{
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ShardPool::run(const std::function<void(int)> &fn)
{
    fn_ = &fn;
    pending_.store(shards_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    try {
        fn(0);
    } catch (...) {
        if (!failed_.exchange(true, std::memory_order_acq_rel))
            error_ = std::current_exception();
    }
    int left = pending_.load(std::memory_order_acquire);
    while (left != 0) {
        awaitChange(pending_, left);
        left = pending_.load(std::memory_order_acquire);
    }
    fn_ = nullptr;
    if (failed_.load(std::memory_order_acquire)) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        failed_.store(false, std::memory_order_release);
        std::rethrow_exception(e);
    }
}

void
ShardPool::workerMain(int shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        awaitChange(epoch_, seen);
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_relaxed))
            return;
        try {
            (*fn_)(shard);
        } catch (...) {
            if (!failed_.exchange(true, std::memory_order_acq_rel))
                error_ = std::current_exception();
        }
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            pending_.notify_all();
    }
}

} // namespace afcsim
