/**
 * @file
 * Persistent worker pool for the sharded cycle kernel (DESIGN.md
 * S21, docs/ARCHITECTURE.md): N-1 worker threads plus the caller
 * execute one shard each per phase, synchronized by a spin-then-wait
 * epoch barrier. The pool carries no simulation state — which shard
 * touches which router is decided entirely by Network::step()'s
 * contiguous node partition, so determinism never depends on thread
 * scheduling.
 */

#ifndef AFCSIM_NETWORK_SHARDPOOL_HH
#define AFCSIM_NETWORK_SHARDPOOL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace afcsim
{

/**
 * Runs fn(shard) for shards 0..N-1, the caller taking shard 0.
 * run() is a full barrier: it returns only after every shard's
 * callback finished. Workers park on a C++20 atomic wait after a
 * short spin, so back-to-back phases (the three per simulated cycle)
 * hand off in sub-microsecond time while an idle pool costs no CPU.
 */
class ShardPool
{
  public:
    explicit ShardPool(int shards);
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    int shards() const { return shards_; }

    /**
     * Execute fn(s) on every shard and wait for all of them. If any
     * callback throws, the first exception is rethrown here (after
     * the barrier, so no callback is still running).
     */
    void run(const std::function<void(int)> &fn);

  private:
    void workerMain(int shard);
    /** Spin briefly, then block on the atomic until it leaves `old`. */
    template <typename T>
    static void awaitChange(const std::atomic<T> &a, T old);

    int shards_;
    std::vector<std::thread> workers_;
    /** Bumped once per run(); workers run one phase per bump. */
    std::atomic<std::uint64_t> epoch_{0};
    /** Worker callbacks still running in the current phase. */
    std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};
    const std::function<void(int)> *fn_ = nullptr;
    /** First exception thrown by any shard's callback this phase. */
    std::atomic<bool> failed_{false};
    std::exception_ptr error_;
};

} // namespace afcsim

#endif // AFCSIM_NETWORK_SHARDPOOL_HH
