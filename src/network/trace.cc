#include "network/trace.hh"

namespace afcsim
{

CsvTracer::CsvTracer(std::ostream &out)
    : out_(out)
{
    out_ << "cycle,event,node,port,packet,seq,src,dest,vnet,hops,"
            "deflections\n";
}

void
CsvTracer::row(const char *event, NodeId node, int port,
               const Flit &flit, Cycle now)
{
    ++events_;
    out_ << now << ',' << event << ',' << node << ','
         << (port >= 0 ? dirName(port) : "-") << ',' << flit.packet
         << ',' << flit.seq << ',' << flit.src << ',' << flit.dest
         << ',' << int(flit.vnet) << ',' << flit.hops << ','
         << flit.deflections << '\n';
}

void
CsvTracer::onInject(NodeId node, const Flit &flit, Cycle now)
{
    row("inject", node, -1, flit, now);
}

void
CsvTracer::onDispatch(NodeId node, Direction out, const Flit &flit,
                      Cycle now, bool productive)
{
    row(productive ? "dispatch" : "deflect", node, out, flit, now);
}

void
CsvTracer::onDeliver(NodeId node, const Flit &flit, Cycle now)
{
    row("deliver", node, -1, flit, now);
}

void
CsvTracer::onDrop(NodeId node, const Flit &flit, Cycle now)
{
    row("drop", node, -1, flit, now);
}

void
CsvTracer::onRetransmit(NodeId node, const Flit &head, int, Cycle now)
{
    row("retransmit", node, -1, head, now);
}

void
CsvTracer::onModeSwitch(NodeId node, bool to_backpressured, bool gossip,
                        Cycle now)
{
    ++events_;
    out_ << now << ','
         << (to_backpressured
                 ? (gossip ? "switch-bp-gossip" : "switch-bp")
                 : "switch-bpl")
         << ',' << node << ",-,,,,,,,\n";
}

} // namespace afcsim
