/**
 * @file
 * Event tracing: an observer interface receiving per-flit lifecycle
 * events (injection, per-hop dispatch, delivery, drops) and router
 * mode switches, plus a CSV backend for offline analysis. Attach a
 * tracer with Network::setTracer(); tracing is zero-cost when no
 * tracer is attached.
 */

#ifndef AFCSIM_NETWORK_TRACE_HH
#define AFCSIM_NETWORK_TRACE_HH

#include <cstdint>
#include <ostream>

#include "common/types.hh"
#include "network/flit.hh"
#include "topology/mesh.hh"

namespace afcsim
{

/** Observer for network events. Default implementations ignore. */
class FlitTracer
{
  public:
    virtual ~FlitTracer() = default;

    /** A flit left a NIC source queue and entered the network. */
    virtual void onInject(NodeId node, const Flit &flit, Cycle now)
    {
        (void)node; (void)flit; (void)now;
    }

    /** A router dispatched a flit on an output port. */
    virtual void
    onDispatch(NodeId node, Direction out, const Flit &flit, Cycle now,
               bool productive)
    {
        (void)node; (void)out; (void)flit; (void)now; (void)productive;
    }

    /** A flit reached its destination NIC. */
    virtual void onDeliver(NodeId node, const Flit &flit, Cycle now)
    {
        (void)node; (void)flit; (void)now;
    }

    /** A drop-variant router discarded a flit (NACK follows). */
    virtual void onDrop(NodeId node, const Flit &flit, Cycle now)
    {
        (void)node; (void)flit; (void)now;
    }

    /**
     * A source NIC re-enqueued a whole packet after a retransmission
     * timeout (end-to-end reliability layer). Called once per packet
     * with its head flit.
     */
    virtual void
    onRetransmit(NodeId node, const Flit &head, int retry, Cycle now)
    {
        (void)node; (void)head; (void)retry; (void)now;
    }

    /** An AFC router changed mode. */
    virtual void
    onModeSwitch(NodeId node, bool to_backpressured, bool gossip,
                 Cycle now)
    {
        (void)node; (void)to_backpressured; (void)gossip; (void)now;
    }

    /**
     * An afc_adaptive router's gradient controller moved its mode
     * thresholds (fired only when a value actually changed).
     */
    virtual void
    onThresholdChange(NodeId node, double high, double low,
                      double gradient, Cycle now)
    {
        (void)node; (void)high; (void)low; (void)gradient; (void)now;
    }
};

/**
 * CSV backend: one line per event,
 * `cycle,event,node,port,packet,seq,src,dest,vnet,hops,deflections`.
 */
class CsvTracer : public FlitTracer
{
  public:
    explicit CsvTracer(std::ostream &out);

    void onInject(NodeId node, const Flit &flit, Cycle now) override;
    void onDispatch(NodeId node, Direction out, const Flit &flit,
                    Cycle now, bool productive) override;
    void onDeliver(NodeId node, const Flit &flit, Cycle now) override;
    void onDrop(NodeId node, const Flit &flit, Cycle now) override;
    void onRetransmit(NodeId node, const Flit &head, int retry,
                      Cycle now) override;
    void onModeSwitch(NodeId node, bool to_backpressured, bool gossip,
                      Cycle now) override;

    std::uint64_t events() const { return events_; }

  private:
    void row(const char *event, NodeId node, int port,
             const Flit &flit, Cycle now);

    std::ostream &out_;
    std::uint64_t events_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_NETWORK_TRACE_HH
