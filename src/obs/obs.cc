#include "obs/obs.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "ckpt/serial.hh"
#include "common/log.hh"
#include "network/network.hh"

namespace afcsim::obs
{

Observability::Observability(const ObsSpec &spec) : spec_(spec)
{
    if (spec_.trace)
        trace_ = std::make_unique<EventTrace>(spec_);
}

Observability::~Observability() = default;

void
Observability::attach(Network &net)
{
    numNodes_ = net.mesh().numNodes();
    if (spec_.sampleInterval > 0) {
        sampler_ = std::make_unique<MetricsSampler>(spec_, numNodes_);
        sampler_->attachMeta(net);
    }
    initialBp_.resize(static_cast<std::size_t>(numNodes_));
    for (NodeId n = 0; n < numNodes_; ++n) {
        initialBp_[static_cast<std::size_t>(n)] =
            net.router(n).mode() == RouterMode::Backpressured ? 1 : 0;
    }
    if (trace_)
        net.setTracer(trace_.get());
}

void
Observability::onCycleEnd(const Network &net, Cycle now)
{
    lastCycle_ = now;
    if (sampler_ && now % sampler_->interval() == 0)
        sampler_->sample(net, now);
}

void
Observability::ckptSave(ckpt::Writer &w) const
{
    w.u64(lastCycle_);
    w.u64(windowStart_);
    w.u64(initialBp_.size());
    for (std::uint8_t b : initialBp_)
        w.u8(b);
    w.b(trace_ != nullptr);
    if (trace_)
        trace_->ckptSave(w);
    w.b(sampler_ != nullptr);
    if (sampler_)
        sampler_->ckptSave(w);
}

void
Observability::ckptLoad(ckpt::Reader &r)
{
    lastCycle_ = r.u64();
    windowStart_ = r.u64();
    std::uint64_t n = r.u64();
    AFCSIM_ASSERT(n == initialBp_.size(),
                  "obs checkpoint: node count mismatch");
    for (auto &b : initialBp_)
        b = r.u8();
    bool hadTrace = r.b();
    AFCSIM_ASSERT(hadTrace == (trace_ != nullptr),
                  "obs checkpoint: tracer configuration mismatch");
    if (trace_)
        trace_->ckptLoad(r);
    bool hadSampler = r.b();
    AFCSIM_ASSERT(hadSampler == (sampler_ != nullptr),
                  "obs checkpoint: sampler configuration mismatch");
    if (sampler_)
        sampler_->ckptLoad(r);
}

std::uint64_t
Observability::flitEvents() const
{
    return trace_ ? trace_->totalFlitEvents() : 0;
}

JsonValue
Observability::chromeTrace() const
{
    JsonValue events = JsonValue::array();

    auto base = [](const char *ph, NodeId tid, Cycle ts) {
        JsonValue e = JsonValue::object();
        e.set("ph", ph);
        e.set("pid", 0);
        e.set("tid", static_cast<std::int64_t>(tid));
        e.set("ts", static_cast<std::int64_t>(ts));
        return e;
    };

    // Thread metadata: one named track per router.
    for (NodeId n = 0; n < numNodes_; ++n) {
        JsonValue e = JsonValue::object();
        e.set("ph", "M");
        e.set("pid", 0);
        e.set("tid", static_cast<std::int64_t>(n));
        e.set("name", "thread_name");
        JsonValue args = JsonValue::object();
        std::ostringstream label;
        label << "router " << n;
        if (sampler_ && n < static_cast<NodeId>(sampler_->meta().size())) {
            const RouterMeta &m =
                sampler_->meta()[static_cast<std::size_t>(n)];
            label << " (" << m.x << "," << m.y << ")";
        }
        args.set("name", label.str());
        e.set("args", std::move(args));
        events.push(std::move(e));
    }

    if (trace_) {
        // Mode duration spans: replay initial modes + switch events.
        Cycle endTs = lastCycle_ + 1;
        std::vector<std::uint8_t> bp = initialBp_;
        std::vector<Cycle> openSince(
            static_cast<std::size_t>(numNodes_), 0);
        auto emitSpan = [&](NodeId n, bool was_bp, Cycle from, Cycle to) {
            if (to <= from)
                return;
            JsonValue b = base("B", n, from);
            b.set("name", was_bp ? "BP" : "BPL");
            b.set("cat", "mode");
            events.push(std::move(b));
            JsonValue e = base("E", n, to);
            events.push(std::move(e));
        };
        for (const ModeEvent &m : trace_->modeEvents()) {
            std::size_t i = static_cast<std::size_t>(m.node);
            if (m.node < 0 || m.node >= numNodes_)
                continue;
            if ((bp[i] != 0) == m.toBackpressured)
                continue; // redundant notification
            emitSpan(m.node, bp[i] != 0, openSince[i], m.cycle);
            bp[i] = m.toBackpressured ? 1 : 0;
            openSince[i] = m.cycle;
            if (m.toBackpressured) {
                JsonValue e = base("i", m.node, m.cycle);
                e.set("name", m.gossip ? "switch:gossip"
                                       : "switch:forward");
                e.set("cat", "switch");
                e.set("s", "t");
                events.push(std::move(e));
            } else {
                JsonValue e = base("i", m.node, m.cycle);
                e.set("name", "switch:reverse");
                e.set("cat", "switch");
                e.set("s", "t");
                events.push(std::move(e));
            }
        }
        for (NodeId n = 0; n < numNodes_; ++n) {
            std::size_t i = static_cast<std::size_t>(n);
            emitSpan(n, bp[i] != 0, openSince[i], endTs);
        }

        // Threshold-adaptation instants (afc_adaptive).
        for (const ThresholdEvent &t : trace_->thresholdEvents()) {
            if (t.node < 0 || t.node >= numNodes_)
                continue;
            JsonValue e = base("i", t.node, t.cycle);
            e.set("name", "threshold:adapt");
            e.set("cat", "threshold");
            e.set("s", "t");
            JsonValue args = JsonValue::object();
            args.set("high", t.high);
            args.set("low", t.low);
            args.set("gradient", t.gradient);
            e.set("args", std::move(args));
            events.push(std::move(e));
        }

        // Flit-lifecycle instants.
        for (const TraceEvent &ev : trace_->events()) {
            JsonValue e = base("i", ev.node, ev.cycle);
            e.set("name", eventKindName(ev.kind));
            e.set("cat", "flit");
            e.set("s", "t");
            JsonValue args = JsonValue::object();
            args.set("packet", static_cast<std::int64_t>(ev.packet));
            args.set("seq", static_cast<std::int64_t>(ev.seq));
            args.set("src", static_cast<std::int64_t>(ev.src));
            args.set("dest", static_cast<std::int64_t>(ev.dest));
            args.set("vnet", static_cast<std::int64_t>(ev.vnet));
            if (ev.port >= 0)
                args.set("port", dirName(ev.port));
            if (ev.kind == EventKind::Retransmit) {
                // record() stored the retry ordinal in `hops`.
                args.set("retry", static_cast<std::int64_t>(ev.hops));
            } else {
                args.set("hops", static_cast<std::int64_t>(ev.hops));
                args.set("deflections",
                         static_cast<std::int64_t>(ev.deflections));
            }
            e.set("args", std::move(args));
            events.push(std::move(e));
        }
    }

    if (sampler_) {
        // Network-wide counter tracks, one point per sampler frame.
        std::size_t held = sampler_->frames();
        for (std::size_t i = 0; i < held; ++i) {
            const SampleFrame &f = sampler_->frame(i);
            std::uint64_t routed = 0, deflected = 0, stalls = 0;
            double ewma = 0.0;
            std::uint64_t bpCount = 0;
            for (const RouterSample &r : f.routers) {
                routed += r.routedDelta;
                deflected += r.deflectedDelta;
                stalls += r.creditStallDelta;
                ewma += r.ewma;
                bpCount += r.backpressured;
            }
            JsonValue c = base("C", 0, f.cycle);
            c.set("name", "network");
            JsonValue args = JsonValue::object();
            args.set("routed", static_cast<std::int64_t>(routed));
            args.set("deflected", static_cast<std::int64_t>(deflected));
            args.set("credit_stalls", static_cast<std::int64_t>(stalls));
            c.set("args", std::move(args));
            events.push(std::move(c));

            JsonValue m = base("C", 0, f.cycle);
            m.set("name", "mode");
            JsonValue margs = JsonValue::object();
            margs.set("bp_routers", static_cast<std::int64_t>(bpCount));
            margs.set("ewma_mean",
                      numNodes_ > 0 ? ewma / numNodes_ : 0.0);
            m.set("args", std::move(margs));
            events.push(std::move(m));
        }
    }

    JsonValue doc = JsonValue::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    JsonValue meta = JsonValue::object();
    meta.set("nodes", static_cast<std::int64_t>(numNodes_));
    meta.set("last_cycle", static_cast<std::int64_t>(lastCycle_));
    if (trace_) {
        meta.set("flit_events_recorded",
                 static_cast<std::int64_t>(trace_->events().size()));
        meta.set("flit_events_dropped",
                 static_cast<std::int64_t>(trace_->dropped()));
        meta.set("mode_events",
                 static_cast<std::int64_t>(trace_->modeEvents().size()));
        meta.set("threshold_events",
                 static_cast<std::int64_t>(
                     trace_->thresholdEvents().size()));
    }
    doc.set("otherData", std::move(meta));
    return doc;
}

std::string
Observability::seriesCsv() const
{
    return sampler_ ? sampler_->toCsv() : std::string();
}

JsonValue
Observability::seriesJson() const
{
    return sampler_ ? sampler_->toJson() : JsonValue();
}

std::vector<double>
Observability::bpResidency() const
{
    std::vector<double> out;
    if (!trace_)
        return out;
    Cycle total = lastCycle_ + 1;
    Cycle start = windowStart_ < total ? windowStart_ : 0;
    Cycle window = total - start;
    // BP cycles contributed by a mode span, clipped to the window.
    auto clip = [&](Cycle from, Cycle to) -> Cycle {
        Cycle lo = std::max(from, start);
        Cycle hi = std::min(to, total);
        return hi > lo ? hi - lo : 0;
    };
    std::vector<std::uint8_t> bp = initialBp_;
    std::vector<Cycle> bpCycles(static_cast<std::size_t>(numNodes_), 0);
    std::vector<Cycle> openSince(static_cast<std::size_t>(numNodes_), 0);
    for (const ModeEvent &m : trace_->modeEvents()) {
        if (m.node < 0 || m.node >= numNodes_)
            continue;
        std::size_t i = static_cast<std::size_t>(m.node);
        if ((bp[i] != 0) == m.toBackpressured)
            continue;
        if (bp[i])
            bpCycles[i] += clip(openSince[i], m.cycle);
        bp[i] = m.toBackpressured ? 1 : 0;
        openSince[i] = m.cycle;
    }
    out.resize(static_cast<std::size_t>(numNodes_), 0.0);
    for (std::size_t i = 0; i < out.size(); ++i) {
        Cycle cycles = bpCycles[i];
        if (bp[i])
            cycles += clip(openSince[i], total);
        out[i] = window ? static_cast<double>(cycles) /
                              static_cast<double>(window)
                        : 0.0;
    }
    return out;
}

bool
Observability::writeChromeTrace(const std::string &path) const
{
    std::ofstream f(path);
    if (!f.good())
        return false;
    f << chromeTrace().dump(0) << '\n';
    return f.good();
}

bool
Observability::writeSeriesCsv(const std::string &path) const
{
    // Streaming mode: the file at spec.streamPath already holds every
    // evicted frame; flush the retained tail and close instead of
    // rewriting `path` (a rewrite could only see the ring's tail).
    if (sampler_ && sampler_->streaming())
        return sampler_->finishStream();
    std::ofstream f(path);
    if (!f.good())
        return false;
    f << seriesCsv();
    return f.good();
}

} // namespace afcsim::obs
