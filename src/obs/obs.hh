/**
 * @file
 * Observability umbrella (src/obs): owns the optional event tracer
 * and metrics sampler for one Network, hooks into the cycle kernel,
 * and renders post-run exports.
 *
 * Construction discipline mirrors the fault injector: the Network
 * only builds an Observability object when cfg.obs.any() is true, so
 * the disabled path has no observer pointer, no per-cycle branch cost
 * beyond a null check, and bit-identical simulation output.
 *
 * Lifetime: runOpenLoop/runClosedLoop destroy their Network before
 * returning, so results carry this object by shared_ptr; every export
 * below reads only data captured during the run, never the (possibly
 * dead) Network.
 *
 * Exports:
 *  - chromeTrace(): Chrome trace-event JSON (open in Perfetto or
 *    chrome://tracing). Per-router tracks carry BP/BPL mode duration
 *    spans (B/E) and flit-lifecycle instants (i); network-wide
 *    counter tracks (C) come from the sampler. Timestamps are
 *    simulation cycles reported as microseconds.
 *  - seriesCsv()/seriesJson(): the sampler ring as a flat table.
 *  - bpResidency(): per-router backpressured-mode fraction derived
 *    from the mode-switch event stream (duty-cycle cross-checks).
 */

#ifndef AFCSIM_OBS_OBS_HH
#define AFCSIM_OBS_OBS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "common/types.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"

namespace afcsim
{
class Network;
}

namespace afcsim::ckpt
{
class Writer;
class Reader;
} // namespace afcsim::ckpt

namespace afcsim::obs
{

/** Tracer + sampler bundle attached to one Network. */
class Observability
{
  public:
    explicit Observability(const ObsSpec &spec);
    ~Observability();

    /**
     * Bind to a freshly built network: capture static per-router
     * metadata and initial modes, and install the event tracer on
     * every router and NIC when tracing is enabled.
     */
    void attach(Network &net);

    /** Called by Network::step() after the cycle completes. */
    void onCycleEnd(const Network &net, Cycle now);

    /**
     * True when onCycleEnd(net, now) will take a sampler snapshot.
     * The idle-skip scheduler syncs parked routers first on exactly
     * these cycles so every sampled series stays bit-identical.
     */
    bool
    samplingAt(Cycle now) const
    {
        return sampler_ != nullptr && now % sampler_->interval() == 0;
    }

    /**
     * Mark the start of the measurement window (the harnesses call
     * this at their post-warmup stats reset). bpResidency() then
     * covers [windowStart, lastCycle] — the same window as the
     * routers' duty-cycle counters.
     */
    void markWindow(Cycle now) { windowStart_ = now; }
    Cycle windowStart() const { return windowStart_; }

    /** The tracer, or nullptr when cfg.obs.trace is off. */
    const EventTrace *trace() const { return trace_.get(); }
    /** The sampler, or nullptr when cfg.obs.interval is 0. */
    const MetricsSampler *sampler() const { return sampler_.get(); }

    /** Last simulated cycle observed (run length proxy). */
    Cycle lastCycle() const { return lastCycle_; }
    int numNodes() const { return numNodes_; }

    /** Flit events seen by the tracer (0 when tracing is off). */
    std::uint64_t flitEvents() const;

    /** Chrome trace-event document (requires tracing enabled). */
    JsonValue chromeTrace() const;

    /** Sampler series as CSV (empty string when sampling is off). */
    std::string seriesCsv() const;

    /** Sampler series as JSON (null value when sampling is off). */
    JsonValue seriesJson() const;

    /**
     * Per-router fraction of [windowStart(), lastCycle()] spent in
     * backpressured mode, reconstructed from the mode-switch events
     * (empty when tracing is off). Forward switches are timestamped
     * at the decision cycle, 2L cycles before buffering actually
     * begins, so comparisons against router cycle counters need a
     * tolerance of roughly (switches * 2L) / cycles.
     */
    std::vector<double> bpResidency() const;

    /// @name Bit-exact snapshot/restore (src/ckpt). Only valid on an
    /// attached object; ckptLoad() must see the same trace/sampler
    /// configuration the snapshot was taken with.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

    /** Write chromeTrace() to `path`; returns false on I/O error. */
    bool writeChromeTrace(const std::string &path) const;

    /**
     * Write seriesCsv() to `path`; returns false on I/O error. When
     * the sampler streams (cfg.obs.streamPath), this instead
     * finalizes the stream file — which already holds every evicted
     * frame — and `path` is ignored.
     */
    bool writeSeriesCsv(const std::string &path) const;

  private:
    ObsSpec spec_;
    std::unique_ptr<EventTrace> trace_;
    std::unique_ptr<MetricsSampler> sampler_;
    int numNodes_ = 0;
    std::vector<std::uint8_t> initialBp_; ///< mode at attach, per router
    Cycle lastCycle_ = 0;
    Cycle windowStart_ = 0;
};

} // namespace afcsim::obs

#endif // AFCSIM_OBS_OBS_HH
