#include "obs/profile.hh"

#include <fstream>

#include "common/error.hh"

namespace afcsim::obs
{

namespace
{

double
rate(double count, double wall_ms)
{
    return wall_ms > 0.0 ? count / (wall_ms / 1000.0) : 0.0;
}

} // namespace

ThroughputProfiler::ThroughputProfiler(std::string bench_name)
    : bench_(std::move(bench_name))
{
}

void
ThroughputProfiler::begin(const std::string &label)
{
    AFCSIM_ASSERT(!open_, "profiler phase '", openLabel_,
                  "' still open when beginning '", label, "'");
    open_ = true;
    openLabel_ = label;
    openStart_ = std::chrono::steady_clock::now();
}

void
ThroughputProfiler::end(std::uint64_t sim_cycles,
                        std::uint64_t flit_events)
{
    AFCSIM_ASSERT(open_, "profiler end() without begin()");
    auto elapsed = std::chrono::steady_clock::now() - openStart_;
    double ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    add(openLabel_, ms, sim_cycles, flit_events);
    open_ = false;
}

void
ThroughputProfiler::add(const std::string &label, double wall_ms,
                        std::uint64_t sim_cycles,
                        std::uint64_t flit_events)
{
    phases_.push_back({label, wall_ms, sim_cycles, flit_events});
}

JsonValue
ThroughputProfiler::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("bench", bench_);

    double total_ms = 0.0;
    std::uint64_t total_cycles = 0;
    std::uint64_t total_events = 0;

    JsonValue arr = JsonValue::array();
    for (const ProfilePhase &p : phases_) {
        JsonValue ph = JsonValue::object();
        ph.set("label", p.label);
        ph.set("wall_ms", p.wallMs);
        ph.set("sim_cycles", static_cast<std::int64_t>(p.simCycles));
        ph.set("cycles_per_sec",
               rate(static_cast<double>(p.simCycles), p.wallMs));
        ph.set("flit_events", static_cast<std::int64_t>(p.flitEvents));
        ph.set("flit_events_per_sec",
               rate(static_cast<double>(p.flitEvents), p.wallMs));
        arr.push(std::move(ph));
        total_ms += p.wallMs;
        total_cycles += p.simCycles;
        total_events += p.flitEvents;
    }
    doc.set("phases", std::move(arr));

    JsonValue total = JsonValue::object();
    total.set("wall_ms", total_ms);
    total.set("sim_cycles", static_cast<std::int64_t>(total_cycles));
    total.set("cycles_per_sec",
              rate(static_cast<double>(total_cycles), total_ms));
    total.set("flit_events", static_cast<std::int64_t>(total_events));
    total.set("flit_events_per_sec",
              rate(static_cast<double>(total_events), total_ms));
    doc.set("total", std::move(total));
    return doc;
}

std::string
ThroughputProfiler::write(const std::string &path) const
{
    std::string out = path.empty() ? bench_ + "_obs.json" : path;
    std::ofstream f(out);
    AFCSIM_ASSERT(f.good(), "cannot open ", out, " for writing");
    f << toJson().dump(2) << '\n';
    return out;
}

} // namespace afcsim::obs
