/**
 * @file
 * Throughput profiler (src/obs): wall-clock phase timing for benches.
 * Each phase records elapsed wall time together with the simulated
 * cycles and flit events it covered, so the export carries
 * cycles/second and flit-events/second rates plus a whole-run total.
 * Benches write the result next to their stats output as
 * `<bench>_obs.json` (see docs/METRICS.md for the schema).
 *
 * Wall-clock numbers are *reporting only*: nothing in the simulator
 * reads them, so determinism of simulation results is unaffected.
 */

#ifndef AFCSIM_OBS_PROFILE_HH
#define AFCSIM_OBS_PROFILE_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace afcsim::obs
{

/** One profiled phase of a bench run. */
struct ProfilePhase
{
    std::string label;
    double wallMs = 0.0;
    std::uint64_t simCycles = 0;
    std::uint64_t flitEvents = 0;
};

/** Accumulates per-phase wall-clock throughput for one bench. */
class ThroughputProfiler
{
  public:
    explicit ThroughputProfiler(std::string bench_name);

    /** Start timing a phase (one open phase at a time). */
    void begin(const std::string &label);

    /**
     * Close the open phase, attributing `sim_cycles` simulated cycles
     * and `flit_events` flit events (inject+route+deflect+eject etc.)
     * to it.
     */
    void end(std::uint64_t sim_cycles, std::uint64_t flit_events);

    /** Record a phase whose wall time was measured externally. */
    void add(const std::string &label, double wall_ms,
             std::uint64_t sim_cycles, std::uint64_t flit_events);

    const std::vector<ProfilePhase> &phases() const { return phases_; }

    /** Export: {bench, phases: [...], total: {...}}. */
    JsonValue toJson() const;

    /**
     * Write toJson() to `path` (empty: `<bench>_obs.json` in the
     * working directory). Returns the path written.
     */
    std::string write(const std::string &path = "") const;

  private:
    std::string bench_;
    std::vector<ProfilePhase> phases_;
    bool open_ = false;
    std::string openLabel_;
    std::chrono::steady_clock::time_point openStart_{};
};

} // namespace afcsim::obs

#endif // AFCSIM_OBS_PROFILE_HH
