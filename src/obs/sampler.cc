#include "obs/sampler.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "ckpt/serial.hh"
#include "common/log.hh"
#include "network/network.hh"
#include "router/afc.hh"

namespace afcsim::obs
{

namespace
{

constexpr const char *kCsvHeader =
    "cycle,node,x,y,mode,ewma,high,low,occupancy,nic_queue,"
    "routed_d,deflected_d,credit_stalls_d,fwd_switch_d,"
    "rev_switch_d,gossip_switch_d,energy_pj_d\n";

} // namespace

MetricsSampler::MetricsSampler(const ObsSpec &spec, int num_nodes)
    : interval_(spec.sampleInterval), numNodes_(num_nodes)
{
    int cap = std::max(1, spec.sampleCapacity);
    ring_.resize(static_cast<std::size_t>(cap));
    for (auto &f : ring_)
        f.routers.resize(static_cast<std::size_t>(num_nodes));
    prev_.resize(static_cast<std::size_t>(num_nodes));
    meta_.resize(static_cast<std::size_t>(num_nodes));
    streamPath_ = spec.streamPath;
    if (!spec.streamPath.empty()) {
        stream_ = std::make_unique<std::ofstream>(spec.streamPath);
        if (stream_->good()) {
            *stream_ << kCsvHeader;
        } else {
            // Degrade to the in-memory ring rather than aborting the
            // run over a side-file path.
            warn("cannot open series stream '", spec.streamPath, "'");
            stream_.reset();
        }
    }
}

void
MetricsSampler::attachMeta(const Network &net)
{
    for (NodeId n = 0; n < numNodes_; ++n) {
        Coord c = net.mesh().coordOf(n);
        RouterMeta &m = meta_[static_cast<std::size_t>(n)];
        m.x = c.x;
        m.y = c.y;
        if (const auto *afc =
                dynamic_cast<const AfcRouter *>(&net.router(n))) {
            m.highThreshold = afc->highThreshold();
            m.lowThreshold = afc->lowThreshold();
        }
    }
}

void
MetricsSampler::sample(const Network &net, Cycle now)
{
    SampleFrame &frame = ring_[head_];
    // Once wrapped, head_ holds the oldest frame; stream it out
    // before overwriting so no frame is ever dropped.
    if (stream_ && recorded_ >= ring_.size())
        frameCsv(*stream_, frame);
    frame.cycle = now;
    for (NodeId n = 0; n < numNodes_; ++n) {
        const Router &r = net.router(n);
        const RouterStats &s = r.stats();
        PrevCounters &p = prev_[static_cast<std::size_t>(n)];
        RouterSample &out = frame.routers[static_cast<std::size_t>(n)];

        out.backpressured = r.mode() == RouterMode::Backpressured ? 1 : 0;
        out.occupancy = static_cast<std::uint32_t>(r.occupancy());
        out.nicQueue =
            static_cast<std::uint32_t>(net.nic(n).queuedFlits());
        out.ewma = r.contentionEwma();
        out.routedDelta = s.flitsRouted - p.routed;
        out.deflectedDelta = s.flitsDeflected - p.deflected;
        out.creditStallDelta = s.creditStalls - p.creditStalls;
        out.forwardSwitchDelta = s.forwardSwitches - p.forwardSwitches;
        out.reverseSwitchDelta = s.reverseSwitches - p.reverseSwitches;
        out.gossipSwitchDelta = s.gossipSwitches - p.gossipSwitches;
        double energy = net.ledger(n).report().total();
        out.energyDeltaPj = energy - p.energyPj;
        if (const auto *afc = dynamic_cast<const AfcRouter *>(&r)) {
            out.high = afc->highThreshold();
            out.low = afc->lowThreshold();
        } else {
            out.high = 0.0;
            out.low = 0.0;
        }

        p.routed = s.flitsRouted;
        p.deflected = s.flitsDeflected;
        p.creditStalls = s.creditStalls;
        p.forwardSwitches = s.forwardSwitches;
        p.reverseSwitches = s.reverseSwitches;
        p.gossipSwitches = s.gossipSwitches;
        p.energyPj = energy;
    }
    head_ = (head_ + 1) % ring_.size();
    ++recorded_;
}

std::size_t
MetricsSampler::frames() const
{
    return std::min<std::uint64_t>(recorded_, ring_.size());
}

const SampleFrame &
MetricsSampler::frame(std::size_t i) const
{
    std::size_t held = frames();
    // head_ points at the slot holding the oldest frame once wrapped.
    std::size_t oldest = recorded_ > held ? head_ : 0;
    return ring_[(oldest + i) % ring_.size()];
}

void
MetricsSampler::frameCsv(std::ostream &os, const SampleFrame &f) const
{
    for (NodeId n = 0; n < numNodes_; ++n) {
        const RouterSample &r = f.routers[static_cast<std::size_t>(n)];
        const RouterMeta &m = meta_[static_cast<std::size_t>(n)];
        os << f.cycle << ',' << n << ',' << m.x << ',' << m.y << ','
           << (r.backpressured ? "bp" : "bpl") << ',' << r.ewma << ','
           << r.high << ',' << r.low << ','
           << r.occupancy << ',' << r.nicQueue << ','
           << r.routedDelta << ',' << r.deflectedDelta << ','
           << r.creditStallDelta << ',' << r.forwardSwitchDelta << ','
           << r.reverseSwitchDelta << ',' << r.gossipSwitchDelta << ','
           << r.energyDeltaPj << '\n';
    }
}

std::string
MetricsSampler::toCsv() const
{
    std::ostringstream os;
    os << kCsvHeader;
    std::size_t held = frames();
    for (std::size_t i = 0; i < held; ++i)
        frameCsv(os, frame(i));
    return os.str();
}

bool
MetricsSampler::finishStream()
{
    if (streamDone_)
        return streamOk_;
    if (!stream_)
        return false;
    std::size_t held = frames();
    for (std::size_t i = 0; i < held; ++i)
        frameCsv(*stream_, frame(i));
    stream_->close();
    streamOk_ = stream_->good();
    stream_.reset();
    streamDone_ = true;
    return streamOk_;
}

void
MetricsSampler::ckptSave(ckpt::Writer &w) const
{
    w.u64(recorded_);
    w.u64(head_);
    w.u64(ring_.size());
    for (const SampleFrame &f : ring_) {
        w.u64(f.cycle);
        for (const RouterSample &s : f.routers) {
            w.u8(s.backpressured);
            w.u32(s.occupancy);
            w.u32(s.nicQueue);
            w.f64(s.ewma);
            w.u64(s.routedDelta);
            w.u64(s.deflectedDelta);
            w.u64(s.creditStallDelta);
            w.u64(s.forwardSwitchDelta);
            w.u64(s.reverseSwitchDelta);
            w.u64(s.gossipSwitchDelta);
            w.f64(s.energyDeltaPj);
            w.f64(s.high);
            w.f64(s.low);
        }
    }
    for (const PrevCounters &p : prev_) {
        w.u64(p.routed);
        w.u64(p.deflected);
        w.u64(p.creditStalls);
        w.u64(p.forwardSwitches);
        w.u64(p.reverseSwitches);
        w.u64(p.gossipSwitches);
        w.f64(p.energyPj);
    }
    w.b(streamDone_);
    w.b(streamOk_);
    bool open = stream_ != nullptr;
    w.b(open);
    if (open) {
        // Embed the file's logical content; the on-disk copy cannot
        // be trusted to survive until restore (see header comment).
        stream_->flush();
        auto size = static_cast<std::uint64_t>(
            static_cast<std::streamoff>(stream_->tellp()));
        std::string bytes(static_cast<std::size_t>(size), '\0');
        std::ifstream in(streamPath_, std::ios::binary);
        in.read(bytes.data(), static_cast<std::streamsize>(size));
        AFCSIM_ASSERT(in.gcount() ==
                          static_cast<std::streamsize>(size),
                      "cannot read back series stream '", streamPath_,
                      "' for checkpointing");
        w.str(bytes);
    }
}

void
MetricsSampler::ckptLoad(ckpt::Reader &r)
{
    recorded_ = r.u64();
    head_ = static_cast<std::size_t>(r.u64());
    std::uint64_t cap = r.u64();
    AFCSIM_ASSERT(cap == ring_.size(),
                  "sampler checkpoint: ring capacity mismatch");
    for (SampleFrame &f : ring_) {
        f.cycle = r.u64();
        for (RouterSample &s : f.routers) {
            s.backpressured = r.u8();
            s.occupancy = r.u32();
            s.nicQueue = r.u32();
            s.ewma = r.f64();
            s.routedDelta = r.u64();
            s.deflectedDelta = r.u64();
            s.creditStallDelta = r.u64();
            s.forwardSwitchDelta = r.u64();
            s.reverseSwitchDelta = r.u64();
            s.gossipSwitchDelta = r.u64();
            s.energyDeltaPj = r.f64();
            s.high = r.f64();
            s.low = r.f64();
        }
    }
    for (PrevCounters &p : prev_) {
        p.routed = r.u64();
        p.deflected = r.u64();
        p.creditStalls = r.u64();
        p.forwardSwitches = r.u64();
        p.reverseSwitches = r.u64();
        p.gossipSwitches = r.u64();
        p.energyPj = r.f64();
    }
    streamDone_ = r.b();
    streamOk_ = r.b();
    bool open = r.b();
    if (open) {
        std::string bytes = r.str();
        if (stream_) {
            stream_->close();
            {
                std::ofstream out(streamPath_,
                                  std::ios::binary | std::ios::trunc);
                out.write(bytes.data(),
                          static_cast<std::streamsize>(bytes.size()));
            }
            stream_ = std::make_unique<std::ofstream>(streamPath_,
                                                      std::ios::app);
            if (!stream_->good()) {
                warn("cannot reopen series stream '", streamPath_,
                     "' after restore");
                stream_.reset();
            }
        }
        // else: this sampler already degraded to the in-memory ring
        // (the stream path was unwritable here); stay degraded.
    } else if (streamDone_ && stream_) {
        // Snapshot taken after finishStream(): the file was already
        // finalized by the original run; do not write it again.
        stream_->close();
        stream_.reset();
    }
}

JsonValue
MetricsSampler::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("interval", static_cast<std::int64_t>(interval_));
    doc.set("capacity", static_cast<std::int64_t>(ring_.size()));
    doc.set("frames_recorded", static_cast<std::int64_t>(recorded_));
    doc.set("frames_retained", static_cast<std::int64_t>(frames()));

    JsonValue routers = JsonValue::array();
    for (NodeId n = 0; n < numNodes_; ++n) {
        const RouterMeta &m = meta_[static_cast<std::size_t>(n)];
        JsonValue r = JsonValue::object();
        r.set("node", static_cast<std::int64_t>(n));
        r.set("x", static_cast<std::int64_t>(m.x));
        r.set("y", static_cast<std::int64_t>(m.y));
        r.set("high_threshold", m.highThreshold);
        r.set("low_threshold", m.lowThreshold);
        routers.push(std::move(r));
    }
    doc.set("routers", std::move(routers));

    JsonValue series = JsonValue::array();
    std::size_t held = frames();
    for (std::size_t i = 0; i < held; ++i) {
        const SampleFrame &f = frame(i);
        JsonValue fr = JsonValue::object();
        fr.set("cycle", static_cast<std::int64_t>(f.cycle));
        JsonValue rows = JsonValue::array();
        for (NodeId n = 0; n < numNodes_; ++n) {
            const RouterSample &r = f.routers[static_cast<std::size_t>(n)];
            JsonValue row = JsonValue::object();
            row.set("node", static_cast<std::int64_t>(n));
            row.set("mode", r.backpressured ? "bp" : "bpl");
            row.set("ewma", r.ewma);
            row.set("occupancy", static_cast<std::int64_t>(r.occupancy));
            row.set("nic_queue", static_cast<std::int64_t>(r.nicQueue));
            row.set("routed_d", static_cast<std::int64_t>(r.routedDelta));
            row.set("deflected_d",
                    static_cast<std::int64_t>(r.deflectedDelta));
            row.set("credit_stalls_d",
                    static_cast<std::int64_t>(r.creditStallDelta));
            row.set("fwd_switch_d",
                    static_cast<std::int64_t>(r.forwardSwitchDelta));
            row.set("rev_switch_d",
                    static_cast<std::int64_t>(r.reverseSwitchDelta));
            row.set("gossip_switch_d",
                    static_cast<std::int64_t>(r.gossipSwitchDelta));
            row.set("energy_pj_d", r.energyDeltaPj);
            row.set("high", r.high);
            row.set("low", r.low);
            rows.push(std::move(row));
        }
        fr.set("routers", std::move(rows));
        series.push(std::move(fr));
    }
    doc.set("series", std::move(series));
    return doc;
}

} // namespace afcsim::obs
