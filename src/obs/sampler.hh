/**
 * @file
 * Time-series metrics sampler (src/obs): every N cycles it snapshots
 * per-router state — mode, contention EWMA against its switching
 * thresholds, buffer occupancy, NIC source-queue depth, and the
 * deltas of the cumulative activity counters (flits routed/deflected,
 * credit stalls, mode switches, energy) since the previous sample —
 * into a preallocated ring buffer. When the ring fills, the oldest
 * frames are overwritten; deltas are computed at sample time from the
 * cumulative counters, so wrapped series stay self-consistent.
 * Export is CSV (one row per router per frame, oldest first) or JSON.
 *
 * Streaming (spec.streamPath non-empty): instead of dropping the
 * oldest frame at wrap, its CSV rows are appended to an open file
 * before the slot is overwritten, and finishStream() flushes the
 * retained tail — so the file ends up holding every frame ever
 * recorded, byte-identical to what toCsv() would return from an
 * unbounded ring. Off by default; the disabled path is unchanged.
 */

#ifndef AFCSIM_OBS_SAMPLER_HH
#define AFCSIM_OBS_SAMPLER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "common/types.hh"

namespace afcsim
{
class Network;
}

namespace afcsim::ckpt
{
class Writer;
class Reader;
} // namespace afcsim::ckpt

namespace afcsim::obs
{

/** Per-router state captured at one sample point. */
struct RouterSample
{
    std::uint8_t backpressured = 0; ///< 1 = BP mode, 0 = BPL mode
    std::uint32_t occupancy = 0;    ///< flits held in the router
    std::uint32_t nicQueue = 0;     ///< flits waiting in the NIC
    double ewma = 0.0;              ///< contention EWMA (flits/cycle)
    std::uint64_t routedDelta = 0;
    std::uint64_t deflectedDelta = 0;
    std::uint64_t creditStallDelta = 0;
    std::uint64_t forwardSwitchDelta = 0;
    std::uint64_t reverseSwitchDelta = 0;
    std::uint64_t gossipSwitchDelta = 0;
    double energyDeltaPj = 0.0;     ///< ledger energy since last sample
    /** Mode thresholds at sample time (0 when not adaptive). Equal to
     *  the static attach-time values except under afc_adaptive, whose
     *  gradient controller moves them mid-run. */
    double high = 0.0;
    double low = 0.0;
};

/** One ring-buffer frame: all routers at one cycle. */
struct SampleFrame
{
    Cycle cycle = 0;
    std::vector<RouterSample> routers;
};

/** Static per-router metadata captured once at attach time. */
struct RouterMeta
{
    int x = 0;
    int y = 0;
    /** Thresholds at attach (the statics); the per-frame values in
     *  RouterSample are authoritative for afc_adaptive runs. */
    double highThreshold = 0.0; ///< 0 when the router is not adaptive
    double lowThreshold = 0.0;
};

/** The ring-buffered sampler. */
class MetricsSampler
{
  public:
    MetricsSampler(const ObsSpec &spec, int num_nodes);

    /** Capture positions and AFC thresholds (once, at attach). */
    void attachMeta(const Network &net);

    /** Record one frame (the caller enforces the cadence). */
    void sample(const Network &net, Cycle now);

    Cycle interval() const { return interval_; }
    /** Frames currently held (<= capacity). */
    std::size_t frames() const;
    /** Frame i, i = 0 being the oldest retained. */
    const SampleFrame &frame(std::size_t i) const;
    /** Total frames ever recorded, including overwritten ones. */
    std::uint64_t framesRecorded() const { return recorded_; }
    std::size_t capacity() const { return ring_.size(); }
    const std::vector<RouterMeta> &meta() const { return meta_; }

    /**
     * CSV export, oldest frame first:
     * `cycle,node,x,y,mode,ewma,high,low,occupancy,nic_queue,
     *  routed_d,deflected_d,credit_stalls_d,fwd_switch_d,rev_switch_d,
     *  gossip_switch_d,energy_pj_d`.
     */
    std::string toCsv() const;

    /** JSON export: metadata + the same series as toCsv(). */
    JsonValue toJson() const;

    /**
     * True when this sampler streams evicted frames to
     * spec.streamPath (stays true after finishStream(), so callers
     * can tell the file is authoritative and must not rewrite it).
     */
    bool streaming() const { return stream_ != nullptr || streamDone_; }

    /**
     * Flush the retained frames to the stream and close it; after
     * this the file holds the complete series. Idempotent — repeat
     * calls return the first outcome. False when streaming is off or
     * any write failed.
     */
    bool finishStream();

    /// @name Bit-exact snapshot/restore (src/ckpt). The ring, delta
    /// baselines, and wrap bookkeeping are serialized directly. When
    /// streaming, the stream file's bytes written so far are embedded
    /// in the checkpoint (the stream is flushed first): a fresh
    /// sampler truncates the file at construction, and a crashed
    /// writer may have lost buffered bytes, so the checkpoint must be
    /// self-contained. ckptLoad() rewrites the file from the embedded
    /// bytes and reopens it in append mode.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

  private:
    /** Append one frame's CSV rows (the body shared with toCsv()). */
    void frameCsv(std::ostream &os, const SampleFrame &f) const;
    /** Cumulative counters at the previous sample, per router. */
    struct PrevCounters
    {
        std::uint64_t routed = 0;
        std::uint64_t deflected = 0;
        std::uint64_t creditStalls = 0;
        std::uint64_t forwardSwitches = 0;
        std::uint64_t reverseSwitches = 0;
        std::uint64_t gossipSwitches = 0;
        double energyPj = 0.0;
    };

    Cycle interval_;
    int numNodes_;
    std::vector<SampleFrame> ring_;
    std::vector<PrevCounters> prev_;
    std::vector<RouterMeta> meta_;
    std::size_t head_ = 0;      ///< next slot to write
    std::uint64_t recorded_ = 0;
    std::string streamPath_;    ///< spec.streamPath (restore target)
    /** Open streaming target (null when streaming is off or done). */
    std::unique_ptr<std::ofstream> stream_;
    bool streamDone_ = false;
    bool streamOk_ = false;     ///< finishStream() outcome
};

} // namespace afcsim::obs

#endif // AFCSIM_OBS_SAMPLER_HH
