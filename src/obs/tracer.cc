#include "obs/tracer.hh"

namespace afcsim::obs
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Inject: return "inject";
      case EventKind::Route: return "route";
      case EventKind::Deflect: return "deflect";
      case EventKind::Drop: return "drop";
      case EventKind::Retransmit: return "retransmit";
      case EventKind::Eject: return "eject";
    }
    return "?";
}

EventTrace::EventTrace(const ObsSpec &spec)
    : capacity_(static_cast<std::size_t>(spec.traceCapacity))
{
    events_.reserve(capacity_);
}

void
EventTrace::record(EventKind kind, NodeId node, int port,
                   const Flit &flit, Cycle now)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    TraceEvent e;
    e.cycle = now;
    e.kind = kind;
    e.port = static_cast<std::int8_t>(port);
    e.vnet = flit.vnet;
    e.node = node;
    e.src = flit.src;
    e.dest = flit.dest;
    e.packet = flit.packet;
    e.seq = flit.seq;
    e.hops = flit.hops;
    e.deflections = flit.deflections;
    events_.push_back(e);
}

void
EventTrace::onInject(NodeId node, const Flit &flit, Cycle now)
{
    record(EventKind::Inject, node, -1, flit, now);
}

void
EventTrace::onDispatch(NodeId node, Direction out, const Flit &flit,
                       Cycle now, bool productive)
{
    record(productive ? EventKind::Route : EventKind::Deflect, node, out,
           flit, now);
}

void
EventTrace::onDeliver(NodeId node, const Flit &flit, Cycle now)
{
    record(EventKind::Eject, node, -1, flit, now);
}

void
EventTrace::onDrop(NodeId node, const Flit &flit, Cycle now)
{
    record(EventKind::Drop, node, -1, flit, now);
}

void
EventTrace::onRetransmit(NodeId node, const Flit &head, int retry,
                         Cycle now)
{
    // Encode the retry ordinal in the (otherwise unused) hops field
    // so the export can surface it without widening the record.
    Flit copy = head;
    copy.hops = static_cast<std::uint16_t>(retry);
    record(EventKind::Retransmit, node, -1, copy, now);
}

void
EventTrace::onModeSwitch(NodeId node, bool to_backpressured, bool gossip,
                         Cycle now)
{
    ModeEvent m;
    m.cycle = now;
    m.node = node;
    m.toBackpressured = to_backpressured;
    m.gossip = gossip;
    modes_.push_back(m);
}

} // namespace afcsim::obs
