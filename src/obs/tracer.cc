#include "obs/tracer.hh"

#include "ckpt/serial.hh"

namespace afcsim::obs
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Inject: return "inject";
      case EventKind::Route: return "route";
      case EventKind::Deflect: return "deflect";
      case EventKind::Drop: return "drop";
      case EventKind::Retransmit: return "retransmit";
      case EventKind::Eject: return "eject";
    }
    return "?";
}

EventTrace::EventTrace(const ObsSpec &spec)
    : capacity_(static_cast<std::size_t>(spec.traceCapacity))
{
    events_.reserve(capacity_);
}

void
EventTrace::record(EventKind kind, NodeId node, int port,
                   const Flit &flit, Cycle now)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    TraceEvent e;
    e.cycle = now;
    e.kind = kind;
    e.port = static_cast<std::int8_t>(port);
    e.vnet = flit.vnet;
    e.node = node;
    e.src = flit.src;
    e.dest = flit.dest;
    e.packet = flit.packet;
    e.seq = flit.seq;
    e.hops = flit.hops;
    e.deflections = flit.deflections;
    events_.push_back(e);
}

void
EventTrace::onInject(NodeId node, const Flit &flit, Cycle now)
{
    record(EventKind::Inject, node, -1, flit, now);
}

void
EventTrace::onDispatch(NodeId node, Direction out, const Flit &flit,
                       Cycle now, bool productive)
{
    record(productive ? EventKind::Route : EventKind::Deflect, node, out,
           flit, now);
}

void
EventTrace::onDeliver(NodeId node, const Flit &flit, Cycle now)
{
    record(EventKind::Eject, node, -1, flit, now);
}

void
EventTrace::onDrop(NodeId node, const Flit &flit, Cycle now)
{
    record(EventKind::Drop, node, -1, flit, now);
}

void
EventTrace::onRetransmit(NodeId node, const Flit &head, int retry,
                         Cycle now)
{
    // Encode the retry ordinal in the (otherwise unused) hops field
    // so the export can surface it without widening the record.
    Flit copy = head;
    copy.hops = static_cast<std::uint16_t>(retry);
    record(EventKind::Retransmit, node, -1, copy, now);
}

void
EventTrace::onModeSwitch(NodeId node, bool to_backpressured, bool gossip,
                         Cycle now)
{
    ModeEvent m;
    m.cycle = now;
    m.node = node;
    m.toBackpressured = to_backpressured;
    m.gossip = gossip;
    modes_.push_back(m);
}

void
EventTrace::onThresholdChange(NodeId node, double high, double low,
                              double gradient, Cycle now)
{
    ThresholdEvent t;
    t.cycle = now;
    t.node = node;
    t.high = high;
    t.low = low;
    t.gradient = gradient;
    thresholds_.push_back(t);
}

void
EventTrace::ckptSave(ckpt::Writer &w) const
{
    w.u64(dropped_);
    w.u64(events_.size());
    for (const TraceEvent &e : events_) {
        w.u64(e.cycle);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.i32(e.port);
        w.i32(e.vnet);
        w.i32(e.node);
        w.i32(e.src);
        w.i32(e.dest);
        w.u64(e.packet);
        w.u32(e.seq);
        w.u32(e.hops);
        w.u32(e.deflections);
    }
    w.u64(modes_.size());
    for (const ModeEvent &m : modes_) {
        w.u64(m.cycle);
        w.i32(m.node);
        w.b(m.toBackpressured);
        w.b(m.gossip);
    }
    w.u64(thresholds_.size());
    for (const ThresholdEvent &t : thresholds_) {
        w.u64(t.cycle);
        w.i32(t.node);
        w.f64(t.high);
        w.f64(t.low);
        w.f64(t.gradient);
    }
}

void
EventTrace::ckptLoad(ckpt::Reader &r)
{
    dropped_ = r.u64();
    events_.clear();
    std::uint64_t ne = r.u64();
    for (std::uint64_t i = 0; i < ne; ++i) {
        TraceEvent e;
        e.cycle = r.u64();
        e.kind = static_cast<EventKind>(r.u8());
        e.port = static_cast<std::int8_t>(r.i32());
        e.vnet = static_cast<std::int8_t>(r.i32());
        e.node = r.i32();
        e.src = r.i32();
        e.dest = r.i32();
        e.packet = r.u64();
        e.seq = static_cast<std::uint16_t>(r.u32());
        e.hops = static_cast<std::uint16_t>(r.u32());
        e.deflections = static_cast<std::uint16_t>(r.u32());
        events_.push_back(e);
    }
    modes_.clear();
    std::uint64_t nm = r.u64();
    for (std::uint64_t i = 0; i < nm; ++i) {
        ModeEvent m;
        m.cycle = r.u64();
        m.node = r.i32();
        m.toBackpressured = r.b();
        m.gossip = r.b();
        modes_.push_back(m);
    }
    thresholds_.clear();
    std::uint64_t nt = r.u64();
    for (std::uint64_t i = 0; i < nt; ++i) {
        ThresholdEvent t;
        t.cycle = r.u64();
        t.node = r.i32();
        t.high = r.f64();
        t.low = r.f64();
        t.gradient = r.f64();
        thresholds_.push_back(t);
    }
}

} // namespace afcsim::obs
