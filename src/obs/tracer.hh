/**
 * @file
 * Structured event tracer (src/obs): records the flit lifecycle
 * (inject, route, deflect, drop, retransmit, eject) and AFC
 * mode-switch/gossip events into preallocated vectors of compact
 * binary records. Everything is deterministic — records carry only
 * simulation state, never wall-clock — so traces are bit-identical
 * across runner thread counts. Export to Chrome trace-event JSON
 * (viewable in Perfetto / chrome://tracing) is done by the owning
 * Observability object, which merges mode spans and sampler counter
 * tracks into one document.
 */

#ifndef AFCSIM_OBS_TRACER_HH
#define AFCSIM_OBS_TRACER_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "network/trace.hh"

namespace afcsim::ckpt
{
class Writer;
class Reader;
} // namespace afcsim::ckpt

namespace afcsim::obs
{

/** What happened. Values are stable (used in exports and tests). */
enum class EventKind : std::uint8_t
{
    Inject,     ///< flit left a NIC source queue into the network
    Route,      ///< router dispatched the flit on a productive port
    Deflect,    ///< router dispatched the flit on a losing port
    Drop,       ///< NIC discarded the flit (checksum / duplicate)
    Retransmit, ///< source NIC re-enqueued a timed-out packet
    Eject,      ///< flit accepted by the destination NIC
};

/** Human-readable name ("inject", "route", ...). */
const char *eventKindName(EventKind k);

/** One flit-lifecycle event (compact, preallocated storage). */
struct TraceEvent
{
    Cycle cycle = 0;
    EventKind kind = EventKind::Inject;
    std::int8_t port = -1; ///< output port for Route/Deflect, else -1
    std::int8_t vnet = 0;
    NodeId node = kInvalidNode;
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    PacketId packet = 0;
    std::uint16_t seq = 0;
    std::uint16_t hops = 0;
    std::uint16_t deflections = 0;
};

/** One AFC mode transition (never dropped; switches are rare). */
struct ModeEvent
{
    Cycle cycle = 0;
    NodeId node = kInvalidNode;
    bool toBackpressured = false;
    bool gossip = false;
};

/**
 * One afc_adaptive threshold adjustment (never dropped; the gradient
 * controller fires at most once per probe epoch per router).
 */
struct ThresholdEvent
{
    Cycle cycle = 0;
    NodeId node = kInvalidNode;
    double high = 0.0;     ///< new high threshold (fx-derived)
    double low = 0.0;      ///< new low threshold (fx-derived)
    double gradient = 0.0; ///< gradient that drove the change
};

/**
 * FlitTracer backend filling the preallocated event vectors. Attach
 * through Network::setTracer() (the Observability object does this
 * when cfg.obs.trace is set).
 */
class EventTrace : public FlitTracer
{
  public:
    explicit EventTrace(const ObsSpec &spec);

    void onInject(NodeId node, const Flit &flit, Cycle now) override;
    void onDispatch(NodeId node, Direction out, const Flit &flit,
                    Cycle now, bool productive) override;
    void onDeliver(NodeId node, const Flit &flit, Cycle now) override;
    void onDrop(NodeId node, const Flit &flit, Cycle now) override;
    void onRetransmit(NodeId node, const Flit &head, int retry,
                      Cycle now) override;
    void onModeSwitch(NodeId node, bool to_backpressured, bool gossip,
                      Cycle now) override;
    void onThresholdChange(NodeId node, double high, double low,
                           double gradient, Cycle now) override;

    const std::vector<TraceEvent> &events() const { return events_; }
    const std::vector<ModeEvent> &modeEvents() const { return modes_; }
    const std::vector<ThresholdEvent> &thresholdEvents() const
    {
        return thresholds_;
    }
    /** Flit events discarded after the capacity was reached. */
    std::uint64_t dropped() const { return dropped_; }
    /** All flit events seen (recorded + dropped). */
    std::uint64_t totalFlitEvents() const
    {
        return events_.size() + dropped_;
    }

    /// @name Bit-exact snapshot/restore (src/ckpt): recorded events,
    /// mode transitions, and the overflow counter — so exports from a
    /// restored run are byte-identical to an uninterrupted one.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

  private:
    void record(EventKind kind, NodeId node, int port, const Flit &flit,
                Cycle now);

    std::size_t capacity_;
    std::vector<TraceEvent> events_;
    std::vector<ModeEvent> modes_;
    std::vector<ThresholdEvent> thresholds_;
    std::uint64_t dropped_ = 0;
};

} // namespace afcsim::obs

#endif // AFCSIM_OBS_TRACER_HH
