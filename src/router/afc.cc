#include "router/afc.hh"

#include "ckpt/state.hh"
#include "common/error.hh"

namespace afcsim
{

AfcRouter::AfcRouter(const Mesh &mesh, NodeId node,
                     const NetworkConfig &cfg, Rng rng,
                     DeflectionPolicy policy)
    : Router(mesh, node, cfg), shape_(cfg.afcVnets), rng_(rng),
      policy_(policy), alwaysBp_(cfg.afc.alwaysBackpressured),
      intensity_(cfg.afc.ewmaWeight), ejectPerCycle_(cfg.ejectPerCycle),
      engine_(mesh, node, policy, cfg.ejectPerCycle)
{
    switch (mesh.positionOf(node)) {
      case RouterPosition::Corner:
        high_ = cfg.afc.cornerHigh;
        low_ = cfg.afc.cornerLow;
        break;
      case RouterPosition::Edge:
        high_ = cfg.afc.edgeHigh;
        low_ = cfg.afc.edgeLow;
        break;
      case RouterPosition::Center:
        high_ = cfg.afc.centerHigh;
        low_ = cfg.afc.centerLow;
        break;
    }
    gossipX_ = cfg.afc.gossipReserve > 0 ? cfg.afc.gossipReserve
                                         : 2 * cfg.linkLatency;
    AFCSIM_ASSERT(gossipX_ >= 2 * cfg.linkLatency,
                  "gossip reserve X must be >= 2L (Sec. III-D)");
    for (int v = 0; v < shape_.numVnets(); ++v) {
        AFCSIM_ASSERT(shape_.count(v) > gossipX_,
                      "vnet ", v, " needs more than X=", gossipX_,
                      " slots for the gossip reserve to function");
        AFCSIM_ASSERT(shape_.depth(v) == 1,
                      "lazy VCA uses 1-flit VCs (Sec. III-E)");
    }

    buffers_.assign(kNumPorts, {});
    for (int p = 0; p < kNumPorts; ++p) {
        buffers_[p].resize(shape_.numVnets());
        for (int v = 0; v < shape_.numVnets(); ++v)
            buffers_[p][v].resize(shape_.count(v));
    }
    freeSlots_.assign(kNumNetPorts, std::vector<int>(shape_.numVnets()));
    for (int d = 0; d < kNumNetPorts; ++d) {
        for (int v = 0; v < shape_.numVnets(); ++v)
            freeSlots_[d][v] = shape_.count(v);
    }
    inputRr_.assign(kNumPorts, 0);
    outputRr_.assign(kNumPorts, 0);

    // Flat SA-scan index tables: idx -> (vnet, slot).
    for (int v = 0; v < shape_.numVnets(); ++v) {
        for (int s = 0; s < shape_.count(v); ++s) {
            slotVnet_.push_back(static_cast<VnetId>(v));
            slotIndex_.push_back(s);
        }
    }
    flatTotal_ = static_cast<int>(slotVnet_.size());

    int ports_with_buffers = mesh.numNetPortsAt(node) + 1;
    fullBufferBits_ = static_cast<std::int64_t>(ports_with_buffers) *
        shape_.totalBufferFlits() * FlitWidths::kAfc;

    if (alwaysBp_) {
        // Pinned to backpressured mode from cycle 0; every neighbor
        // is also pinned, so credit tracking is on from the start.
        mode_ = RouterMode::Backpressured;
        bufferFromCycle_ = 0;
        tracking_.fill(true);
    } else {
        mode_ = RouterMode::Backpressureless;
        tracking_.fill(false);
    }
}

void
AfcRouter::acceptFlit(Direction in_port, const Flit &flit, Cycle now)
{
    AFCSIM_ASSERT(in_port >= 0 && in_port < kNumNetPorts,
                  "network flit on non-network port");
    if (now >= bufferFromCycle_) {
        // Backpressured operation: lazy VC allocation — the flit is
        // dropped into any free slot of its virtual network, which
        // *is* the VC allocation (Sec. III-E).
        auto &group = buffers_[in_port][flit.vnet];
        for (std::size_t s = 0; s < group.size(); ++s) {
            if (!group[s].full) {
                group[s].full = true;
                group[s].flit = flit;
                group[s].ready = now + 1;
                group[s].route = flit.lookahead;
                ++bufferedCount_;
                ++bufferedPerPort_[in_port];
                if (ledger_)
                    ledger_->bufferWrite();
                return;
            }
        }
        AFCSIM_SIM_ERROR("lazy-VCA buffer overflow at node ", node_,
                         " port ", dirName(in_port), " ",
                         flit.describe(),
                         " — credit/gossip protocol violated");
    } else {
        AFCSIM_SIM_ASSERT(static_cast<int>(incoming_.size()) <
                              kNumNetPorts,
                          "more arrivals than links at node ", node_);
        incoming_.push_back(flit);
        if (ledger_)
            ledger_->latchWrite();
    }
}

void
AfcRouter::acceptCredit(Direction out_port, const Credit &credit, Cycle)
{
    int &c = freeSlots_[out_port][credit.vnet];
    ++c;
    AFCSIM_SIM_ASSERT(c <= shape_.count(credit.vnet),
                      "per-vnet credit overflow at node ", node_);
}

void
AfcRouter::acceptCtl(Direction out_port, const CtlMsg &msg, Cycle)
{
    if (msg.kind == CtlMsg::Kind::StartTracking) {
        // Neighbor switched to backpressured mode; its buffers are
        // empty at this point, so reset the credit view to full.
        tracking_[out_port] = true;
        for (int v = 0; v < shape_.numVnets(); ++v)
            freeSlots_[out_port][v] = shape_.count(v);
    } else {
        // Neighbor resumed backpressureless mode: credits are
        // meaningless; treat its buffers as empty (Sec. III-C).
        tracking_[out_port] = false;
        for (int v = 0; v < shape_.numVnets(); ++v)
            freeSlots_[out_port][v] = shape_.count(v);
    }
}

void
AfcRouter::consumeDownstreamSlot(Direction d, VnetId vnet)
{
    if (d == kLocal || !tracking_[d])
        return;
    int &c = freeSlots_[d][vnet];
    --c;
    AFCSIM_SIM_ASSERT(c >= 0,
                      "downstream slot underflow at node ", node_,
                      " port ", dirName(d),
                      " — gossip reserve X too small");
}

void
AfcRouter::bplDispatch(Cycle now, std::array<bool, kNumPorts> &port_used)
{
    bool may_inject = mode_ == RouterMode::Backpressureless;
    if (current_.empty() && (!may_inject || nic_ == nullptr ||
                             nic_->queuedFlits() == 0)) {
        return;
    }

    NodeId inject_dest = kInvalidNode;
    VnetId inject_vnet = -1;
    if (may_inject && nic_ != nullptr) {
        Cycle best = kNeverCycle;
        for (VnetId v = 0; v < cfg_.numVnets(); ++v) {
            if (nic_->hasInjectable(v) &&
                nic_->peekInjection(v).createTime < best) {
                best = nic_->peekInjection(v).createTime;
                inject_dest = nic_->peekInjection(v).dest;
                inject_vnet = v;
            }
        }
    }

    Direction free_port = kNoDirection;
    engine_.assign(current_, rng_, inject_dest, &free_port,
                   assignments_);
    current_.clear();

    for (auto &a : assignments_) {
        if (ledger_)
            ledger_->arbitrate();
        consumeDownstreamSlot(a.port, a.flit.vnet);
        port_used[a.port] = true;
        ++routedThisCycle_;
        sendFlit(a.port, a.flit, now, a.productive);
    }

    if (free_port != kNoDirection && inject_vnet >= 0) {
        Flit f = nic_->popInjection(inject_vnet, now);
        bool productive =
            productivePorts(mesh_, node_, f.dest).contains(free_port);
        if (ledger_)
            ledger_->arbitrate();
        consumeDownstreamSlot(free_port, f.vnet);
        port_used[free_port] = true;
        ++routedThisCycle_;
        sendFlit(free_port, f, now, productive);
    }
}

AfcRouter::Candidate
AfcRouter::pickCandidate(Direction p, Cycle now)
{
    Candidate cand;
    // Round-robin scan over the flat (vnet, slot) index space; the
    // idx -> (vnet, slot) mapping is precomputed in the ctor.
    int total = flatTotal_;
    int &rr = inputRr_[p];
    const auto &port_buffers = buffers_[p];
    for (int i = 0; i < total; ++i) {
        int idx = rr + i;
        if (idx >= total)
            idx -= total;
        int v = slotVnet_[idx];
        int rem = slotIndex_[idx];
        const Slot &slot = port_buffers[v][rem];
        if (!slot.full || slot.ready > now)
            continue;
        Direction route = slot.route;
        if (route != kLocal && tracking_[route] &&
            freeSlots_[route][v] <= 0) {
            ++stats_.creditStalls;
            continue; // backpressure: downstream vnet full
        }
        cand.vnet = v;
        cand.slot = rem;
        cand.route = route;
        rr = (idx + 1) % total;
        return cand;
    }
    return cand;
}

void
AfcRouter::bpAllocate(Cycle now, std::array<bool, kNumPorts> &port_used)
{
    // Nothing buffered: every scan below would find nothing and
    // touch no round-robin or stall state, so skip it wholesale.
    if (bufferedCount_ == 0)
        return;

    std::array<Candidate, kNumPorts> cands;
    for (int p = 0; p < kNumPorts; ++p) {
        cands[p] = bufferedPerPort_[p] == 0
            ? Candidate{}
            : pickCandidate(static_cast<Direction>(p), now);
    }

    for (int out = 0; out < kNumPorts; ++out) {
        if (port_used[out])
            continue; // a deflection-window dispatch already used it
        int winner = -1;
        int &rr = outputRr_[out];
        for (int i = 0; i < kNumPorts; ++i) {
            int p = (rr + i) % kNumPorts;
            if (cands[p].slot >= 0 && cands[p].route == out) {
                winner = p;
                break;
            }
        }
        if (winner < 0)
            continue;
        rr = (winner + 1) % kNumPorts;

        Candidate &cand = cands[winner];
        Slot &slot = buffers_[winner][cand.vnet][cand.slot];
        Flit flit = slot.flit;
        slot.full = false;
        --bufferedCount_;
        --bufferedPerPort_[winner];

        if (ledger_) {
            ledger_->bufferRead();
            ledger_->arbitrate();
            ledger_->arbitrate();
        }
        // Per-vnet credit back to the upstream router (lazy VCA:
        // no VC id — any free slot is equivalent).
        if (winner != kLocal) {
            sendCredit(static_cast<Direction>(winner),
                       Credit{flit.vnet, kInvalidVc}, now);
        }
        consumeDownstreamSlot(cand.route, flit.vnet);
        flit.vc = kInvalidVc;
        ++routedThisCycle_;
        sendFlit(cand.route, flit, now, true);
        port_used[out] = true;
        cands[winner].slot = -1;
    }
}

void
AfcRouter::bpInjection(Cycle now)
{
    if (nic_ == nullptr)
        return;
    int vnets = shape_.numVnets();
    for (int i = 0; i < vnets; ++i) {
        VnetId vnet = static_cast<VnetId>((injectVnetRr_ + i) % vnets);
        if (!nic_->hasInjectable(vnet))
            continue;
        auto &group = buffers_[kLocal][vnet];
        for (auto &slot : group) {
            if (slot.full)
                continue;
            Flit f = nic_->popInjection(vnet, now);
            slot.full = true;
            slot.flit = f;
            slot.ready = now + 1;
            slot.route = dorRoute(mesh_, node_, f.dest);
            ++bufferedCount_;
            ++bufferedPerPort_[kLocal];
            if (ledger_)
                ledger_->bufferWrite();
            injectVnetRr_ = (vnet + 1) % vnets;
            return; // one flit per cycle across the local port
        }
    }
}

void
AfcRouter::evaluate(Cycle now)
{
    std::array<bool, kNumPorts> port_used{};
    // Deflection-window dispatch first: any latched flits must leave
    // this cycle, whatever the mode.
    bplDispatch(now, port_used);
    if (now >= bufferFromCycle_) {
        bpAllocate(now, port_used);
        bpInjection(now);
    }
}

bool
AfcRouter::buffersEmpty() const
{
    return current_.empty() && incoming_.empty() && bufferedCount_ == 0;
}

void
AfcRouter::beginForwardSwitch(Cycle now, bool gossip)
{
    pendingForward_ = true;
    pendingGossip_ = gossip;
    bufferFromCycle_ = now + 2 * static_cast<Cycle>(cfg_.linkLatency);
    // Neighbors see this L cycles later and start counting credits
    // exactly when flits sent from then on will be buffered here.
    broadcastCtl(CtlMsg{CtlMsg::Kind::StartTracking}, now);
    ++stats_.forwardSwitches;
    if (gossip)
        ++stats_.gossipSwitches;
    if (tracer_)
        tracer_->onModeSwitch(node_, true, gossip, now);
}

void
AfcRouter::advance(Cycle now)
{
    AFCSIM_ASSERT(current_.empty(),
                  "deflection latches not drained at node ", node_);
    current_.swap(incoming_);

    double m = intensity_.recordCycle(routedThisCycle_);
    routedThisCycle_ = 0;

    if (mode_ == RouterMode::Backpressureless)
        ++stats_.cyclesBackpressureless;
    else
        ++stats_.cyclesBackpressured;

    // Mode state machine (Fig. 1).
    if (pendingForward_) {
        if (now + 1 >= bufferFromCycle_) {
            mode_ = RouterMode::Backpressured;
            pendingForward_ = false;
            pendingGossip_ = false;
        }
    } else if (!alwaysBp_ && mode_ == RouterMode::Backpressureless) {
        bool gossip = false;
        if (!cfg_.afc.disableGossipUnsafe) {
            for (int d = 0; d < kNumNetPorts && !gossip; ++d) {
                if (!tracking_[d] || ctlOut_[d] == nullptr)
                    continue;
                for (int v = 0; v < shape_.numVnets(); ++v) {
                    if (freeSlots_[d][v] <= gossipX_) {
                        gossip = true;
                        break;
                    }
                }
            }
        }
        if (gossip || m > high_)
            beginForwardSwitch(now, gossip && m <= high_);
    } else if (!alwaysBp_ && mode_ == RouterMode::Backpressured &&
               m < low_ && buffersEmpty()) {
        // Engineering guard (documented in DESIGN.md): do not resume
        // deflection while a tracked neighbor is near-full — gossip
        // would immediately force us back, causing mode flap.
        bool neighbor_pressure = false;
        for (int d = 0; d < kNumNetPorts && !neighbor_pressure; ++d) {
            if (!tracking_[d] || ctlOut_[d] == nullptr)
                continue;
            for (int v = 0; v < shape_.numVnets(); ++v) {
                if (freeSlots_[d][v] <= gossipX_) {
                    neighbor_pressure = true;
                    break;
                }
            }
        }
        if (!neighbor_pressure) {
            mode_ = RouterMode::Backpressureless;
            bufferFromCycle_ = kNeverCycle;
            broadcastCtl(CtlMsg{CtlMsg::Kind::StopTracking}, now);
            ++stats_.reverseSwitches;
            if (tracer_)
                tracer_->onModeSwitch(node_, false, false, now);
        }
    }

    if (ledger_) {
        bool powered = pendingForward_ || bufferFromCycle_ != kNeverCycle;
        ledger_->leakCycle(powered ? fullBufferBits_ : 0,
                           powered ? 0 : fullBufferBits_);
    }
}

std::size_t
AfcRouter::occupancy() const
{
    return current_.size() + incoming_.size() + bufferedCount_;
}

std::size_t
AfcRouter::bufferedFlits() const
{
    return bufferedCount_;
}

bool
AfcRouter::idle() const
{
    if (!current_.empty() || !incoming_.empty() || bufferedCount_ != 0)
        return false;
    if (nic_ != nullptr && nic_->queuedFlits() != 0)
        return false;
    if (pendingForward_)
        return false;
    // Only park in a mode that cannot change without an arrival:
    // backpressureless needs a clear boxcar window (the EWMA then
    // strictly decays, so m > high_ is unreachable; a gossip trigger
    // needs a credit/ctl arrival, which wakes us), and pinned
    // backpressured never switches at all. An unpinned BP-mode
    // router stays awake so its reverse switch fires on time.
    if (alwaysBp_)
        return true;
    return mode_ == RouterMode::Backpressureless &&
           intensity_.windowClear();
}

void
AfcRouter::advanceIdle(Cycle k)
{
    if (mode_ == RouterMode::Backpressureless)
        stats_.cyclesBackpressureless += k;
    else
        stats_.cyclesBackpressured += k;
    // EWMA decay: m_new = w * m_old every idle cycle (the boxcar
    // window is all-zero while parked). Once the value has decayed
    // to exactly +0.0 the per-cycle update is the identity, and with
    // an all-zero window the boxcar position is unobservable, so the
    // replay loop can stop early. Otherwise loop cycle by cycle —
    // floating-point decay is not associative.
    if (intensity_.value() != 0.0) {
        for (Cycle i = 0; i < k; ++i)
            intensity_.recordCycle(0);
    }
    if (ledger_) {
        bool powered = bufferFromCycle_ != kNeverCycle;
        std::int64_t pb = powered ? fullBufferBits_ : 0;
        std::int64_t gb = powered ? 0 : fullBufferBits_;
        for (Cycle i = 0; i < k; ++i)
            ledger_->leakCycle(pb, gb);
    }
}

int
AfcRouter::downstreamFreeSlots(Direction d, VnetId v) const
{
    return freeSlots_.at(d).at(v);
}

int
AfcRouter::occupiedSlots(Direction in_port, VnetId v) const
{
    int n = 0;
    for (const auto &slot : buffers_.at(in_port).at(v)) {
        if (slot.full)
            ++n;
    }
    return n;
}

void
AfcRouter::visitFlits(const std::function<void(const Flit &)> &fn) const
{
    for (const auto &f : current_)
        fn(f);
    for (const auto &f : incoming_)
        fn(f);
    for (const auto &port : buffers_) {
        for (const auto &group : port) {
            for (const auto &slot : group) {
                if (slot.full)
                    fn(slot.flit);
            }
        }
    }
}

void
AfcRouter::ckptSave(ckpt::Writer &w) const
{
    Router::ckptSave(w);
    ckpt::put(w, rng_);
    w.u64(intensity_.rawWindow().size());
    for (unsigned v : intensity_.rawWindow())
        w.u32(v);
    w.u64(intensity_.rawPos());
    w.f64(intensity_.rawEwma());
    w.u8(mode_ == RouterMode::Backpressured ? 1 : 0);
    w.b(pendingForward_);
    w.b(pendingGossip_);
    w.u64(bufferFromCycle_);
    w.u64(current_.size());
    for (const auto &f : current_)
        ckpt::put(w, f);
    w.u64(incoming_.size());
    for (const auto &f : incoming_)
        ckpt::put(w, f);
    for (const auto &port : buffers_) {
        for (const auto &group : port) {
            for (const auto &slot : group) {
                w.b(slot.full);
                ckpt::put(w, slot.flit);
                w.u64(slot.ready);
                w.i32(slot.route);
            }
        }
    }
    w.u64(bufferedCount_);
    for (std::size_t n : bufferedPerPort_)
        w.u64(n);
    for (bool t : tracking_)
        w.b(t);
    for (const auto &port : freeSlots_)
        for (int s : port)
            w.i32(s);
    for (int rr : inputRr_)
        w.i32(rr);
    for (int rr : outputRr_)
        w.i32(rr);
    w.i32(injectVnetRr_);
    w.u32(routedThisCycle_);
    w.i64(fullBufferBits_);
}

void
AfcRouter::ckptLoad(ckpt::Reader &r)
{
    Router::ckptLoad(r);
    rng_ = ckpt::getRng(r);
    std::uint64_t wn = r.u64();
    AFCSIM_SIM_ASSERT(wn == TrafficIntensity::kWindow,
                      "AFC checkpoint: intensity window size ", wn);
    std::array<unsigned, TrafficIntensity::kWindow> window{};
    for (unsigned &v : window)
        v = r.u32();
    std::size_t pos = static_cast<std::size_t>(r.u64());
    double ewma = r.f64();
    intensity_.restoreRaw(window, pos, ewma);
    mode_ = r.u8() ? RouterMode::Backpressured
                   : RouterMode::Backpressureless;
    pendingForward_ = r.b();
    pendingGossip_ = r.b();
    bufferFromCycle_ = r.u64();
    current_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        current_.push_back(ckpt::getFlit(r));
    incoming_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        incoming_.push_back(ckpt::getFlit(r));
    for (auto &port : buffers_) {
        for (auto &group : port) {
            for (auto &slot : group) {
                slot.full = r.b();
                slot.flit = ckpt::getFlit(r);
                slot.ready = r.u64();
                slot.route = static_cast<Direction>(r.i32());
            }
        }
    }
    bufferedCount_ = r.u64();
    for (std::size_t &cnt : bufferedPerPort_)
        cnt = r.u64();
    for (std::size_t i = 0; i < tracking_.size(); ++i)
        tracking_[i] = r.b();
    for (auto &port : freeSlots_)
        for (int &s : port)
            s = r.i32();
    for (int &rr : inputRr_)
        rr = r.i32();
    for (int &rr : outputRr_)
        rr = r.i32();
    injectVnetRr_ = r.i32();
    routedThisCycle_ = r.u32();
    fullBufferBits_ = r.i64();
}

} // namespace afcsim
