/**
 * @file
 * Adaptive Flow Control router (Sec. III) — the paper's primary
 * contribution. Each AFC router independently switches between
 * backpressureless (deflection) and backpressured (buffered,
 * credit-based) operation:
 *
 *  - Forward switch (BPL -> BP, Sec. III-B): triggered when the
 *    EWMA-smoothed local traffic intensity exceeds a per-position
 *    (corner/edge/center) high threshold. The switch spans 2L
 *    cycles: neighbors are notified to start credit tracking (they
 *    see it L cycles later); flits received before cycle T + 2L are
 *    still handled by the deflection pipeline; flits received at or
 *    after T + 2L go to the input buffers.
 *  - Reverse switch (BP -> BPL, Sec. III-C): when intensity falls
 *    below the low threshold (hysteresis) and all buffers are
 *    empty, the router resumes deflection the next cycle and tells
 *    neighbors to stop credit tracking.
 *  - Gossip-induced switch (Sec. III-D): a BPL-mode router whose
 *    credits show a backpressured neighbor's free buffers falling
 *    to X (>= 2L) force-switches forward even without local
 *    contention, guaranteeing the neighbor's buffers never
 *    overflow.
 *  - Lazy VC allocation (Sec. III-E): the backpressured mode views
 *    the K-flit input buffer as K 1-flit VCs; an arriving flit is
 *    dropped into any free slot of its virtual network (allocation
 *    happens at the downstream router), credits are tracked per
 *    virtual network, and the VCA pipeline stage disappears. This
 *    is what lets AFC run 32 buffer flits/port against the
 *    baseline's 64.
 */

#ifndef AFCSIM_ROUTER_AFC_HH
#define AFCSIM_ROUTER_AFC_HH

#include <vector>

#include "common/ewma.hh"
#include "common/rng.hh"
#include "router/deflection.hh"
#include "router/router.hh"
#include "router/vcshape.hh"

namespace afcsim
{

/** The adaptive flow control router. */
class AfcRouter : public Router
{
  public:
    AfcRouter(const Mesh &mesh, NodeId node, const NetworkConfig &cfg,
              Rng rng,
              DeflectionPolicy policy = DeflectionPolicy::Random);

    void acceptFlit(Direction in_port, const Flit &flit,
                    Cycle now) override;
    void acceptCredit(Direction out_port, const Credit &credit,
                      Cycle now) override;
    void acceptCtl(Direction out_port, const CtlMsg &msg,
                   Cycle now) override;
    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /**
     * Idle when nothing is latched, buffered or injectable, no mode
     * work is pending, and the mode cannot change on its own: either
     * backpressureless with a clear intensity window (m can only
     * decay, so the high threshold is unreachable; gossip needs a
     * credit/ctl arrival, which wakes the router) or pinned
     * backpressured (reverse switches disabled).
     */
    bool idle() const override;
    void advanceIdle(Cycle k) override;

    std::size_t occupancy() const override;
    RouterMode mode() const override { return mode_; }
    double contentionEwma() const override { return intensity_.value(); }

    /// @name Test/diagnostic accessors.
    /// @{
    double trafficIntensity() const { return intensity_.value(); }
    double highThreshold() const { return high_; }
    double lowThreshold() const { return low_; }
    int gossipReserve() const { return gossipX_; }
    bool switchPending() const { return pendingForward_; }
    Cycle bufferFromCycle() const { return bufferFromCycle_; }
    bool trackingDownstream(Direction d) const { return tracking_.at(d); }
    int downstreamFreeSlots(Direction d, VnetId v) const;
    std::size_t bufferedFlits() const;
    /** Occupied lazy-VCA slots of vnet `v` at input port `in_port`. */
    int occupiedSlots(Direction in_port, VnetId v) const;
    /// @}

    void visitFlits(
        const std::function<void(const Flit &)> &fn) const override;

    void ckptSave(ckpt::Writer &w) const override;
    void ckptLoad(ckpt::Reader &r) override;

  protected:
    /**
     * Replace the mode thresholds (afc_adaptive's gradient
     * controller). Callers keep high >= low; the switch state machine
     * picks the new values up on its next advance().
     */
    void
    setThresholds(double high, double low)
    {
        high_ = high;
        low_ = low;
    }

  private:
    /** One 1-flit lazy VC slot. */
    struct Slot
    {
        bool full = false;
        Flit flit;
        Cycle ready = 0;
        Direction route = kLocal;
    };

    struct Candidate
    {
        int vnet = -1;
        int slot = -1;
        Direction route = kLocal;
    };

    bool buffersEmpty() const;
    void beginForwardSwitch(Cycle now, bool gossip);
    void bplDispatch(Cycle now, std::array<bool, kNumPorts> &port_used);
    void bpAllocate(Cycle now, std::array<bool, kNumPorts> &port_used);
    void bpInjection(Cycle now);
    Candidate pickCandidate(Direction p, Cycle now);
    /** Note a send toward a tracked downstream port. */
    void consumeDownstreamSlot(Direction d, VnetId vnet);

    VcShape shape_;
    Rng rng_;
    DeflectionPolicy policy_;
    bool alwaysBp_;
    double high_ = 0.0;
    double low_ = 0.0;
    int gossipX_ = 0;
    TrafficIntensity intensity_;

    RouterMode mode_;
    bool pendingForward_ = false;
    bool pendingGossip_ = false;
    /** First cycle whose arrivals go to the input buffers. */
    Cycle bufferFromCycle_ = kNeverCycle;

    /// Backpressureless pipeline latches.
    std::vector<Flit> current_;
    std::vector<Flit> incoming_;
    int ejectPerCycle_;
    DeflectionEngine engine_;
    /** Scratch for engine_.assign(), reused across cycles. */
    std::vector<DeflectionEngine::Assignment> assignments_;

    /// Backpressured-mode lazy-VCA buffers: [port][vnet][slot].
    std::vector<std::vector<std::vector<Slot>>> buffers_;
    /** Flat SA-scan index -> (vnet, slot), precomputed so the
     *  per-candidate scan needs no divide-and-locate loop. */
    std::vector<VnetId> slotVnet_;
    std::vector<int> slotIndex_;
    int flatTotal_ = 0;
    /** Total occupied lazy-VCA slots (all ports). */
    std::size_t bufferedCount_ = 0;
    /** Per-port slice of bufferedCount_ (skips empty-port SA scans). */
    std::array<std::size_t, kNumPorts> bufferedPerPort_{};

    /// Downstream credit view: [netPort] tracking + [vnet] free slots.
    std::array<bool, kNumNetPorts> tracking_{};
    std::vector<std::vector<int>> freeSlots_;

    std::vector<int> inputRr_;
    std::vector<int> outputRr_;
    int injectVnetRr_ = 0;

    unsigned routedThisCycle_ = 0;
    std::int64_t fullBufferBits_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_ROUTER_AFC_HH
