#include "router/afc_adaptive.hh"

#include <algorithm>
#include <cmath>

#include "ckpt/serial.hh"
#include "common/error.hh"
#include "common/log.hh"

namespace afcsim
{

namespace
{

std::int64_t
toFx(double v)
{
    return static_cast<std::int64_t>(
        std::llround(v * static_cast<double>(AfcAdaptiveRouter::kOneFx)));
}

double
fromFx(std::int64_t fx)
{
    return static_cast<double>(fx) /
        static_cast<double>(AfcAdaptiveRouter::kOneFx);
}

} // namespace

AfcAdaptiveRouter::AfcAdaptiveRouter(const Mesh &mesh, NodeId node,
                                     const NetworkConfig &cfg, Rng rng,
                                     DeflectionPolicy policy)
    : AfcRouter(mesh, node, cfg, std::move(rng), policy),
      probeInterval_(cfg.afc.adapt.probeInterval),
      probeWindow_(cfg.afc.adapt.probeWindow)
{
    const AfcAdaptConfig &ad = cfg.afc.adapt;
    gainFx_ = toFx(ad.gain);
    gapFloorFx_ = toFx(ad.gapFloor);

    // The base constructor assigned this position's static thresholds;
    // they anchor the controller's clamp band.
    double staticHigh = highThreshold();
    double staticLow = lowThreshold();
    minHighFx_ = toFx(staticHigh * ad.minScale);
    maxHighFx_ = toFx(staticHigh * ad.maxScale);
    minLowFx_ = toFx(staticLow * ad.minScale);
    maxLowFx_ = toFx(staticLow * ad.maxScale);
    if (minHighFx_ - gapFloorFx_ < minLowFx_) {
        AFCSIM_CONFIG_ERROR(
            "afc.adapt.gap_floor ", ad.gapFloor,
            " is incompatible with the static thresholds at node ",
            node, " (high ", staticHigh, ", low ", staticLow,
            "): need gap_floor <= (high - low) * min_scale so the "
            "clamp band and the hysteresis gap can hold together");
    }

    highFx_ = std::clamp(toFx(staticHigh), minHighFx_, maxHighFx_);
    lowFx_ = std::clamp(toFx(staticLow), minLowFx_, maxLowFx_);
    lowFx_ = std::min(lowFx_, highFx_ - gapFloorFx_);
    lowFx_ = std::max(lowFx_, minLowFx_);
    // From here on the comparison doubles are always fx-derived.
    setThresholds(fromFx(highFx_), fromFx(lowFx_));
}

void
AfcAdaptiveRouter::acceptFlit(Direction in_port, const Flit &flit,
                              Cycle now)
{
    // Arrival age since network entry: the delivered-latency signal.
    // Min/sum accumulation is order-independent within a cycle, so
    // the controller sees identical state for any shard count.
    std::uint64_t age = now >= flit.injectTime
        ? static_cast<std::uint64_t>(now - flit.injectTime) : 0;
    if (probing(now)) {
        if (epochProbeCount_ == 0 || age < epochProbeMin_)
            epochProbeMin_ = age;
        ++epochProbeCount_;
    } else {
        sampleSum_ += age;
        ++sampleCount_;
    }
    AfcRouter::acceptFlit(in_port, flit, now);
}

void
AfcAdaptiveRouter::advance(Cycle now)
{
    AfcRouter::advance(now);
    if ((now + 1) % probeInterval_ == 0)
        adaptEpoch(now);
}

bool
AfcAdaptiveRouter::idle() const
{
    return AfcRouter::idle() && epochProbeCount_ == 0 &&
        sampleCount_ == 0;
}

void
AfcAdaptiveRouter::adaptEpoch(Cycle now)
{
    if (epochProbeCount_ > 0) {
        baselineLat_ = std::max<std::uint64_t>(epochProbeMin_, 1);
        baselineValid_ = true;
    }
    if (baselineValid_ && sampleCount_ > 0 && sampleSum_ > 0 &&
        gainFx_ > 0) {
        // gradient = baseline / (sampleSum / sampleCount), Q16:
        // widened so baseline * count * 2^16 cannot overflow.
        unsigned __int128 num =
            static_cast<unsigned __int128>(baselineLat_) *
            sampleCount_ * static_cast<std::uint64_t>(kOneFx);
        std::int64_t gradFx =
            static_cast<std::int64_t>(num / sampleSum_);
        gradFx = std::clamp(gradFx, kMinGradientFx, kMaxGradientFx);
        lastGradientFx_ = gradFx;

        std::int64_t factorFx =
            kOneFx + ((gainFx_ * (gradFx - kOneFx)) >> 16);
        std::int64_t nh = std::clamp((highFx_ * factorFx) >> 16,
                                     minHighFx_, maxHighFx_);
        std::int64_t nl = std::clamp((lowFx_ * factorFx) >> 16,
                                     minLowFx_, maxLowFx_);
        // Hysteresis-gap floor; the constructor checked that the
        // clamp band leaves room (min_high - gap_floor >= min_low).
        nl = std::min(nl, nh - gapFloorFx_);
        nl = std::max(nl, minLowFx_);
        if (nh != highFx_ || nl != lowFx_) {
            highFx_ = nh;
            lowFx_ = nl;
            ++adjustments_;
            setThresholds(fromFx(highFx_), fromFx(lowFx_));
            if (tracer_) {
                tracer_->onThresholdChange(node_, fromFx(highFx_),
                                           fromFx(lowFx_),
                                           fromFx(gradFx), now);
            }
        }
    }
    epochProbeMin_ = 0;
    epochProbeCount_ = 0;
    sampleSum_ = 0;
    sampleCount_ = 0;
}

void
AfcAdaptiveRouter::ckptSave(ckpt::Writer &w) const
{
    AfcRouter::ckptSave(w);
    w.i64(highFx_);
    w.i64(lowFx_);
    w.u64(epochProbeMin_);
    w.u64(epochProbeCount_);
    w.u64(sampleSum_);
    w.u64(sampleCount_);
    w.b(baselineValid_);
    w.u64(baselineLat_);
    w.i64(lastGradientFx_);
    w.u64(adjustments_);
}

void
AfcAdaptiveRouter::ckptLoad(ckpt::Reader &r)
{
    AfcRouter::ckptLoad(r);
    highFx_ = r.i64();
    lowFx_ = r.i64();
    epochProbeMin_ = r.u64();
    epochProbeCount_ = r.u64();
    sampleSum_ = r.u64();
    sampleCount_ = r.u64();
    baselineValid_ = r.b();
    baselineLat_ = r.u64();
    lastGradientFx_ = r.i64();
    adjustments_ = r.u64();
    setThresholds(fromFx(highFx_), fromFx(lowFx_));
}

} // namespace afcsim
