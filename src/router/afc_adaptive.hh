/**
 * @file
 * Self-tuning AFC router (DESIGN.md S22): the AFC router of Sec. III
 * with its per-position mode thresholds replaced by an online
 * gradient controller modeled on Envoy's adaptive-concurrency loop.
 *
 * Time divides into epochs of `afc.adapt.probe_interval` cycles. The
 * first `afc.adapt.probe_window` cycles of each epoch form the probe
 * window: the minimum age (now - injectTime) of flits arriving in it
 * becomes the baseline delivered latency — a minRTT analogue that
 * tracks the uncongested transit time seen at this router. The rest
 * of the epoch accumulates the average arrival age (the sample). At
 * each epoch boundary the controller computes
 *
 *     gradient = baseline / sample          (Q16, clamped [0.5, 2.0])
 *     factor   = 1 + gain * (gradient - 1)  (Q16)
 *
 * and multiplies both thresholds by `factor`, clamping each to
 * [static * min_scale, static * max_scale] and keeping
 * high - low >= gap_floor. A gradient below 1 (arrival ages above
 * baseline: congestion) shrinks the thresholds so the router switches
 * to backpressured mode earlier; a gradient above 1 lets them grow
 * back toward (and beyond) the hand-derived statics.
 *
 * All controller arithmetic is unsigned/Q16 integer: epoch phase is a
 * pure function of the absolute cycle (nothing to replay over parked
 * idle spans), min/sum accumulation is order-independent (shard-
 * safe), and the double thresholds the base state machine compares
 * against are always derived exactly as fx / 65536.0 — so runs stay
 * bit-identical across shard counts, idle-skip, runner threads, and
 * checkpoint/restore.
 */

#ifndef AFCSIM_ROUTER_AFC_ADAPTIVE_HH
#define AFCSIM_ROUTER_AFC_ADAPTIVE_HH

#include <cstdint>

#include "router/afc.hh"

namespace afcsim
{

/** AFC with gradient-controlled mode thresholds. */
class AfcAdaptiveRouter : public AfcRouter
{
  public:
    /** One in Q16.16 fixed point. */
    static constexpr std::int64_t kOneFx = 65536;
    /** Gradient clamp: [0.5, 2.0] in Q16. */
    static constexpr std::int64_t kMinGradientFx = kOneFx / 2;
    static constexpr std::int64_t kMaxGradientFx = 2 * kOneFx;

    AfcAdaptiveRouter(const Mesh &mesh, NodeId node,
                      const NetworkConfig &cfg, Rng rng,
                      DeflectionPolicy policy = DeflectionPolicy::Random);

    void acceptFlit(Direction in_port, const Flit &flit,
                    Cycle now) override;
    void advance(Cycle now) override;

    /**
     * Idle additionally requires empty epoch accumulators: with no
     * pending samples every skipped epoch boundary is a controller
     * no-op, so parking across it is bit-identical to live stepping.
     */
    bool idle() const override;

    void ckptSave(ckpt::Writer &w) const override;
    void ckptLoad(ckpt::Reader &r) override;

    /// @name Controller introspection (tests, sampler, benches).
    /// @{
    std::int64_t highFx() const { return highFx_; }
    std::int64_t lowFx() const { return lowFx_; }
    std::int64_t minHighFx() const { return minHighFx_; }
    std::int64_t maxHighFx() const { return maxHighFx_; }
    std::int64_t minLowFx() const { return minLowFx_; }
    std::int64_t maxLowFx() const { return maxLowFx_; }
    std::int64_t gapFloorFx() const { return gapFloorFx_; }
    std::int64_t lastGradientFx() const { return lastGradientFx_; }
    /** Epoch-boundary adjustments that actually moved a threshold. */
    std::uint64_t adjustments() const { return adjustments_; }
    /** Baseline delivered latency (cycles); 0 until the first probe. */
    std::uint64_t baselineLatency() const
    {
        return baselineValid_ ? baselineLat_ : 0;
    }
    /** True when `now` falls inside an epoch's probe window. */
    bool
    probing(Cycle now) const
    {
        return now % probeInterval_ < probeWindow_;
    }
    std::uint64_t pendingProbeCount() const { return epochProbeCount_; }
    std::uint64_t pendingSampleCount() const { return sampleCount_; }
    /// @}

  private:
    /** Run the controller at an epoch boundary ending at `now`. */
    void adaptEpoch(Cycle now);

    Cycle probeInterval_;
    Cycle probeWindow_;
    std::int64_t gainFx_;
    std::int64_t gapFloorFx_;
    std::int64_t minHighFx_, maxHighFx_;
    std::int64_t minLowFx_, maxLowFx_;

    std::int64_t highFx_;
    std::int64_t lowFx_;

    /// Epoch accumulators (order-independent: min and sum).
    std::uint64_t epochProbeMin_ = 0; ///< valid iff epochProbeCount_>0
    std::uint64_t epochProbeCount_ = 0;
    std::uint64_t sampleSum_ = 0;
    std::uint64_t sampleCount_ = 0;

    bool baselineValid_ = false;
    std::uint64_t baselineLat_ = 0;
    std::int64_t lastGradientFx_ = kOneFx;
    std::uint64_t adjustments_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_ROUTER_AFC_ADAPTIVE_HH
