#include "router/backpressured.hh"

#include "ckpt/state.hh"
#include "common/error.hh"

namespace afcsim
{

BackpressuredRouter::BackpressuredRouter(const Mesh &mesh, NodeId node,
                                         const NetworkConfig &cfg)
    : Router(mesh, node, cfg), shape_(cfg.vnets)
{
    inputs_.assign(kNumPorts, std::vector<InVc>(shape_.totalVcs()));
    outVcBusy_.assign(kNumNetPorts,
                      std::vector<bool>(shape_.totalVcs(), false));
    credits_.assign(kNumNetPorts, std::vector<int>(shape_.totalVcs(), 0));
    for (int p = 0; p < kNumNetPorts; ++p) {
        for (VcId vc = 0; vc < shape_.totalVcs(); ++vc)
            credits_[p][vc] = shape_.depth(shape_.vnetOf(vc));
    }
    inputRr_.assign(kNumPorts, 0);
    outputRr_.assign(kNumPorts, 0);
    vcaRr_.assign(kNumNetPorts, std::vector<int>(shape_.numVnets(), 0));
    injectVc_.assign(shape_.numVnets(), kInvalidVc);

    // Buffers exist at the local port and every connected net port.
    int ports_with_buffers = mesh.numNetPortsAt(node) + 1;
    poweredBufferBits_ = static_cast<std::int64_t>(ports_with_buffers) *
        shape_.totalBufferFlits() * FlitWidths::kBackpressured;
}

void
BackpressuredRouter::acceptFlit(Direction in_port, const Flit &flit,
                                Cycle now)
{
    AFCSIM_ASSERT(in_port >= 0 && in_port < kNumNetPorts,
                  "network flit on non-network port");
    AFCSIM_ASSERT(flit.vc >= 0 && flit.vc < shape_.totalVcs(),
                  "arriving flit without a VC: ", flit.describe());
    InVc &vc = inputs_[in_port][flit.vc];
    AFCSIM_SIM_ASSERT(static_cast<int>(vc.q.size()) <
                      shape_.depth(flit.vnet),
                      "buffer overflow at node ", node_, " port ",
                      dirName(in_port), " ", flit.describe());
    // Packets must be contiguous within a VC (upstream rule R1).
    if (flit.isHead()) {
        AFCSIM_SIM_ASSERT(!vc.writeOpen,
                          "head interleaved into open VC at node ",
                          node_, " ", flit.describe());
    } else {
        AFCSIM_SIM_ASSERT(vc.writeOpen,
                          "body flit into idle VC at node ", node_,
                          " ", flit.describe());
    }
    vc.writeOpen = !flit.isTail();
    vc.q.push_back({flit, now + 1});
    ++bufferedCount_;
    ++bufferedPerPort_[in_port];
    if (ledger_)
        ledger_->bufferWrite();
}

void
BackpressuredRouter::acceptCredit(Direction out_port, const Credit &credit,
                                  Cycle)
{
    AFCSIM_ASSERT(out_port >= 0 && out_port < kNumNetPorts, "bad port");
    AFCSIM_ASSERT(credit.vc >= 0 && credit.vc < shape_.totalVcs(),
                  "credit without VC");
    int &c = credits_[out_port][credit.vc];
    ++c;
    AFCSIM_SIM_ASSERT(c <= shape_.depth(shape_.vnetOf(credit.vc)),
                      "credit overflow at node ", node_);
}

VcId
BackpressuredRouter::findFreeOutVc(Direction port, VnetId vnet)
{
    if (port == kLocal)
        return kInvalidVc; // ejection needs no VC
    int base = shape_.base(vnet);
    int count = shape_.count(vnet);
    int &rr = vcaRr_[port][vnet];
    for (int i = 0; i < count; ++i) {
        int idx = base + (rr + i) % count;
        if (!outVcBusy_[port][idx] && credits_[port][idx] > 0) {
            rr = (idx - base + 1) % count;
            return static_cast<VcId>(idx);
        }
    }
    return kInvalidVc;
}

void
BackpressuredRouter::pullInjection(Cycle now)
{
    if (nic_ == nullptr)
        return;
    int vnets = shape_.numVnets();
    for (int i = 0; i < vnets; ++i) {
        VnetId vnet = static_cast<VnetId>((injectVnetRr_ + i) % vnets);
        if (!nic_->hasInjectable(vnet))
            continue;
        const Flit &head = nic_->peekInjection(vnet);
        VcId target = kInvalidVc;
        if (head.isHead()) {
            // Start a new packet: find a local in-VC that is not in
            // the middle of receiving another packet and has room.
            int base = shape_.base(vnet);
            for (int c = 0; c < shape_.count(vnet); ++c) {
                InVc &vc = inputs_[kLocal][base + c];
                if (!vc.writeOpen &&
                    static_cast<int>(vc.q.size()) < shape_.depth(vnet)) {
                    target = static_cast<VcId>(base + c);
                    break;
                }
            }
            if (target == kInvalidVc)
                continue; // no room in this vnet; try next
        } else {
            target = injectVc_[vnet];
            AFCSIM_ASSERT(target != kInvalidVc,
                          "body flit with no open injection VC");
            InVc &vc = inputs_[kLocal][target];
            if (static_cast<int>(vc.q.size()) >= shape_.depth(vnet))
                continue; // VC full; wait for drain
        }
        Flit f = nic_->popInjection(vnet, now);
        f.lookahead = dorRoute(mesh_, node_, f.dest);
        InVc &vc = inputs_[kLocal][target];
        vc.writeOpen = !f.isTail();
        f.vc = target; // record which local VC holds it
        vc.q.push_back({f, now + 1});
        ++bufferedCount_;
        ++bufferedPerPort_[kLocal];
        injectVc_[vnet] = f.isTail() ? kInvalidVc : target;
        if (ledger_)
            ledger_->bufferWrite();
        injectVnetRr_ = (vnet + 1) % vnets;
        return; // one flit per cycle across the local port
    }
}

BackpressuredRouter::Candidate
BackpressuredRouter::pickCandidate(Direction p, Cycle now)
{
    Candidate cand;
    int total = shape_.totalVcs();
    int &rr = inputRr_[p];
    for (int i = 0; i < total; ++i) {
        int idx = (rr + i) % total;
        InVc &vc = inputs_[p][idx];
        if (vc.q.empty() || vc.q.front().ready > now)
            continue;
        const Flit &head = vc.q.front().flit;
        Direction route = head.lookahead;
        if (route == kLocal) {
            cand.inVc = idx;
            cand.route = route;
            return cand;
        }
        if (vc.bound) {
            if (credits_[route][vc.outVc] > 0) {
                cand.inVc = idx;
                cand.route = route;
                return cand;
            }
            ++stats_.creditStalls;
            continue;
        }
        AFCSIM_ASSERT(head.isHead(), "unbound VC with non-head at front");
        VcId out_vc = findFreeOutVc(route, head.vnet);
        if (out_vc == kInvalidVc)
            ++stats_.creditStalls; // no out-VC with credit available
        if (out_vc != kInvalidVc) {
            cand.inVc = idx;
            cand.route = route;
            cand.needsVca = true;
            cand.newOutVc = out_vc;
            return cand;
        }
    }
    return cand;
}

void
BackpressuredRouter::dispatch(Direction p, const Candidate &cand, Cycle now)
{
    InVc &vc = inputs_[p][cand.inVc];
    Flit flit = vc.q.front().flit;
    vc.q.pop_front();
    --bufferedCount_;
    --bufferedPerPort_[p];

    if (ledger_) {
        ledger_->bufferRead();
        ledger_->arbitrate(); // input stage
        ledger_->arbitrate(); // output stage
    }

    if (cand.route != kLocal) {
        if (cand.needsVca) {
            vc.bound = true;
            vc.outVc = cand.newOutVc;
            outVcBusy_[cand.route][cand.newOutVc] = true;
            if (ledger_)
                ledger_->arbitrate(); // VC allocation decision
        }
        AFCSIM_ASSERT(vc.bound, "dispatching net flit without VCA");
        --credits_[cand.route][vc.outVc];
        AFCSIM_SIM_ASSERT(credits_[cand.route][vc.outVc] >= 0,
                          "negative credits at node ", node_);
        flit.vc = vc.outVc;
        if (flit.isTail()) {
            outVcBusy_[cand.route][vc.outVc] = false;
            vc.bound = false;
            vc.outVc = kInvalidVc;
        }
    } else if (flit.isTail() || flit.isHead()) {
        // Ejecting: clear any stale binding bookkeeping.
        if (flit.isTail() && vc.bound) {
            vc.bound = false;
            vc.outVc = kInvalidVc;
        }
    }

    // Return the freed slot upstream (not needed for the local port:
    // the NIC source queue is not credit-managed).
    if (p != kLocal)
        sendCredit(p, Credit{flit.vnet, static_cast<VcId>(cand.inVc)}, now);

    sendFlit(cand.route, flit, now, true);
    inputRr_[p] = (cand.inVc + 1) % shape_.totalVcs();
}

void
BackpressuredRouter::evaluate(Cycle now)
{
    pullInjection(now);

    // Nothing buffered: every SA scan below would find nothing and
    // touch no round-robin or stall state, so skip them wholesale.
    if (bufferedCount_ == 0)
        return;

    // Separable switch allocation: input-first candidates, then
    // round-robin output arbitration. A port with zero buffered
    // flits yields the default (empty) candidate without a scan —
    // identical to scanning its all-empty VCs.
    std::array<Candidate, kNumPorts> cands;
    for (int p = 0; p < kNumPorts; ++p) {
        cands[p] = bufferedPerPort_[p] == 0
            ? Candidate{}
            : pickCandidate(static_cast<Direction>(p), now);
    }

    for (int out = 0; out < kNumPorts; ++out) {
        int winner = -1;
        int &rr = outputRr_[out];
        for (int i = 0; i < kNumPorts; ++i) {
            int p = (rr + i) % kNumPorts;
            if (cands[p].inVc >= 0 && cands[p].route == out) {
                winner = p;
                break;
            }
        }
        if (winner >= 0) {
            dispatch(static_cast<Direction>(winner), cands[winner], now);
            cands[winner].inVc = -1;
            rr = (winner + 1) % kNumPorts;
        }
    }
}

void
BackpressuredRouter::advance(Cycle)
{
    ++stats_.cyclesBackpressured;
    if (ledger_)
        ledger_->leakCycle(poweredBufferBits_, 0);
}

bool
BackpressuredRouter::idle() const
{
    return bufferedCount_ == 0 &&
           (nic_ == nullptr || nic_->queuedFlits() == 0);
}

void
BackpressuredRouter::advanceIdle(Cycle k)
{
    // With nothing buffered, evaluate() returns before touching any
    // round-robin pointer and advance() only counts residency and
    // leaks. Leakage adds are looped so the floating-point
    // accumulation matches the skipped cycles bit for bit.
    stats_.cyclesBackpressured += k;
    if (ledger_) {
        for (Cycle i = 0; i < k; ++i)
            ledger_->leakCycle(poweredBufferBits_, 0);
    }
}

std::size_t
BackpressuredRouter::occupancy() const
{
    return bufferedCount_;
}

int
BackpressuredRouter::creditsFor(Direction out_port, VcId vc) const
{
    return credits_.at(out_port).at(vc);
}

bool
BackpressuredRouter::outVcBusy(Direction out_port, VcId vc) const
{
    return outVcBusy_.at(out_port).at(vc);
}

std::size_t
BackpressuredRouter::bufferedAt(Direction in_port) const
{
    std::size_t n = 0;
    for (const auto &vc : inputs_.at(in_port))
        n += vc.q.size();
    return n;
}

std::size_t
BackpressuredRouter::bufferedInVc(Direction in_port, VcId vc) const
{
    return inputs_.at(in_port).at(vc).q.size();
}

void
BackpressuredRouter::visitFlits(
    const std::function<void(const Flit &)> &fn) const
{
    for (const auto &port : inputs_) {
        for (const auto &vc : port) {
            for (const auto &b : vc.q)
                fn(b.flit);
        }
    }
}

void
BackpressuredRouter::ckptSave(ckpt::Writer &w) const
{
    Router::ckptSave(w);
    for (const auto &port : inputs_) {
        for (const auto &vc : port) {
            w.u64(vc.q.size());
            for (const auto &b : vc.q) {
                ckpt::put(w, b.flit);
                w.u64(b.ready);
            }
            w.i32(vc.outVc);
            w.b(vc.bound);
            w.b(vc.writeOpen);
        }
    }
    for (const auto &port : outVcBusy_)
        for (bool busy : port)
            w.b(busy);
    for (const auto &port : credits_)
        for (int c : port)
            w.i32(c);
    for (int rr : inputRr_)
        w.i32(rr);
    for (int rr : outputRr_)
        w.i32(rr);
    for (const auto &port : vcaRr_)
        for (int rr : port)
            w.i32(rr);
    w.i32(injectVnetRr_);
    for (VcId vc : injectVc_)
        w.i32(vc);
    w.u64(bufferedCount_);
    for (std::size_t n : bufferedPerPort_)
        w.u64(n);
    w.i64(poweredBufferBits_);
}

void
BackpressuredRouter::ckptLoad(ckpt::Reader &r)
{
    Router::ckptLoad(r);
    for (auto &port : inputs_) {
        for (auto &vc : port) {
            vc.q.clear();
            std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i) {
                BufferedFlit b;
                b.flit = ckpt::getFlit(r);
                b.ready = r.u64();
                vc.q.push_back(std::move(b));
            }
            vc.outVc = static_cast<VcId>(r.i32());
            vc.bound = r.b();
            vc.writeOpen = r.b();
        }
    }
    for (auto &port : outVcBusy_)
        for (std::size_t i = 0; i < port.size(); ++i)
            port[i] = r.b();
    for (auto &port : credits_)
        for (int &c : port)
            c = r.i32();
    for (int &rr : inputRr_)
        rr = r.i32();
    for (int &rr : outputRr_)
        rr = r.i32();
    for (auto &port : vcaRr_)
        for (int &rr : port)
            rr = r.i32();
    injectVnetRr_ = r.i32();
    for (VcId &vc : injectVc_)
        vc = static_cast<VcId>(r.i32());
    bufferedCount_ = r.u64();
    for (std::size_t &n : bufferedPerPort_)
        n = r.u64();
    poweredBufferBits_ = r.i64();
}

} // namespace afcsim
