/**
 * @file
 * Canonical backpressured virtual-channel router (Table I, row 1).
 *
 * Two-stage pipeline: stage 1 performs switch allocation (PV -> P)
 * with lookahead routing in parallel and the paper's charitable
 * 0-cycle VC allocation (a head flit may allocate its output VC and
 * win the switch in the same cycle); stage 2 is switch traversal
 * plus link traversal. Flow control is credit-based at per-VC
 * granularity; VC allocation is packet-granular (rules R1/R2 of
 * Sec. III-E): an output VC is bound to one packet from head until
 * tail.
 */

#ifndef AFCSIM_ROUTER_BACKPRESSURED_HH
#define AFCSIM_ROUTER_BACKPRESSURED_HH

#include <deque>
#include <vector>

#include "router/router.hh"
#include "router/vcshape.hh"

namespace afcsim
{

/** Credit-based input-buffered VC router. */
class BackpressuredRouter : public Router
{
  public:
    BackpressuredRouter(const Mesh &mesh, NodeId node,
                        const NetworkConfig &cfg);

    void acceptFlit(Direction in_port, const Flit &flit,
                    Cycle now) override;
    void acceptCredit(Direction out_port, const Credit &credit,
                      Cycle now) override;
    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /**
     * Idle when no flit is buffered anywhere and the NIC has nothing
     * to inject. A router merely *stalled* on credits is not idle —
     * it keeps evaluating (and counting creditStalls) every cycle.
     */
    bool idle() const override;
    void advanceIdle(Cycle k) override;

    std::size_t occupancy() const override;
    RouterMode mode() const override { return RouterMode::Backpressured; }

    /// @name Test/diagnostic accessors.
    /// @{
    int creditsFor(Direction out_port, VcId vc) const;
    bool outVcBusy(Direction out_port, VcId vc) const;
    std::size_t bufferedAt(Direction in_port) const;
    /** Occupancy of one input VC (watchdog credit audit). */
    std::size_t bufferedInVc(Direction in_port, VcId vc) const;
    /// @}

    void visitFlits(
        const std::function<void(const Flit &)> &fn) const override;

    void ckptSave(ckpt::Writer &w) const override;
    void ckptLoad(ckpt::Reader &r) override;

  private:
    struct BufferedFlit
    {
        Flit flit;
        Cycle ready;
    };

    /** One input virtual channel: FIFO buffer + head-packet state. */
    struct InVc
    {
        std::deque<BufferedFlit> q;
        VcId outVc = kInvalidVc;  ///< output VC bound to head packet
        bool bound = false;
        bool writeOpen = false;   ///< a partial packet occupies the tail
    };

    /** Per-input-port switch-allocation candidate for this cycle. */
    struct Candidate
    {
        int inVc = -1;
        Direction route = kLocal;
        bool needsVca = false;
        VcId newOutVc = kInvalidVc;
    };

    void pullInjection(Cycle now);
    Candidate pickCandidate(Direction p, Cycle now);
    /** Find a free output VC with credits for (port, vnet); or -1. */
    VcId findFreeOutVc(Direction port, VnetId vnet);
    void dispatch(Direction p, const Candidate &cand, Cycle now);

    VcShape shape_;
    /** inputs_[port][globalVc]. Local port included. */
    std::vector<std::vector<InVc>> inputs_;
    /** outVcBusy_[netPort][globalVc]: bound to an in-flight packet. */
    std::vector<std::vector<bool>> outVcBusy_;
    /** credits_[netPort][globalVc]: free downstream buffer slots. */
    std::vector<std::vector<int>> credits_;

    std::vector<int> inputRr_;          ///< per input port VC pointer
    std::vector<int> outputRr_;         ///< per output port input pointer
    std::vector<std::vector<int>> vcaRr_; ///< per (port, vnet) VC pointer
    int injectVnetRr_ = 0;
    /** Local in-VC a partially injected packet is appending to. */
    std::vector<VcId> injectVc_;

    /** Total buffered flits; cached so evaluate() and the idle-skip
     *  scheduler never rescan every VC queue. */
    std::size_t bufferedCount_ = 0;
    /** Per-port slice of bufferedCount_ (skips empty-port SA scans). */
    std::array<std::size_t, kNumPorts> bufferedPerPort_{};

    std::int64_t poweredBufferBits_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_ROUTER_BACKPRESSURED_HH
