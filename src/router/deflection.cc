#include "router/deflection.hh"

#include <algorithm>

#include "ckpt/state.hh"
#include "common/error.hh"

namespace afcsim
{

DeflectionEngine::DeflectionEngine(const Mesh &mesh, NodeId node,
                                   DeflectionPolicy policy,
                                   int eject_per_cycle)
    : mesh_(mesh), node_(node), policy_(policy),
      ejectPerCycle_(eject_per_cycle)
{
}

void
DeflectionEngine::assign(std::vector<Flit> &flits, Rng &rng,
                         NodeId inject_dest, Direction *free_port_out,
                         std::vector<Assignment> &out) const
{
    out.clear();
    out.reserve(flits.size());

    // Priority order: random shuffle (Chaos-style) or oldest-first.
    if (policy_ == DeflectionPolicy::OldestFirst) {
        std::stable_sort(flits.begin(), flits.end(),
            [](const Flit &a, const Flit &b) {
                if (a.createTime != b.createTime)
                    return a.createTime < b.createTime;
                if (a.packet != b.packet)
                    return a.packet < b.packet;
                return a.seq < b.seq;
            });
    } else {
        for (std::size_t i = flits.size(); i > 1; --i)
            std::swap(flits[i - 1], flits[rng.below(
                static_cast<std::uint32_t>(i))]);
    }

    bool port_free[kNumNetPorts];
    for (int d = 0; d < kNumNetPorts; ++d)
        port_free[d] = mesh_.hasNeighbor(node_,
                                         static_cast<Direction>(d));
    int ejects_left = ejectPerCycle_;

    // Strict priority-order assignment (BLESS-style): each flit in
    // turn takes a productive port if one is free, otherwise
    // deflects onto any free port — possibly stealing a port that
    // would have been productive for a lower-priority flit. This
    // cascade is what drives deflection routing's early saturation.
    for (Flit &f : flits) {
        if (f.dest == node_ && ejects_left > 0) {
            --ejects_left;
            out.push_back({f, kLocal, true});
            continue;
        }
        PortSet prod = productivePorts(mesh_, node_, f.dest);
        bool placed = false;
        for (int i = 0; i < prod.count && !placed; ++i) {
            Direction d = prod.ports[i];
            if (port_free[d]) {
                port_free[d] = false;
                out.push_back({f, d, true});
                placed = true;
            }
        }
        for (int d = 0; d < kNumNetPorts && !placed; ++d) {
            if (port_free[d]) {
                port_free[d] = false;
                out.push_back({f, static_cast<Direction>(d), false});
                placed = true;
            }
        }
        AFCSIM_SIM_ASSERT(placed,
                          "deflection router out of ports at node ",
                          node_, " for ", f.describe());
    }

    // Injection opportunity: any port still free? Prefer a
    // productive one for the head of the injection queue.
    if (free_port_out != nullptr) {
        *free_port_out = kNoDirection;
        if (inject_dest != kInvalidNode) {
            PortSet prod = productivePorts(mesh_, node_, inject_dest);
            for (int i = 0; i < prod.count; ++i) {
                if (port_free[prod.ports[i]]) {
                    *free_port_out = prod.ports[i];
                    break;
                }
            }
        }
        if (*free_port_out == kNoDirection) {
            for (int d = 0; d < kNumNetPorts; ++d) {
                if (port_free[d]) {
                    *free_port_out = static_cast<Direction>(d);
                    break;
                }
            }
        }
    }
}

DeflectionRouter::DeflectionRouter(const Mesh &mesh, NodeId node,
                                   const NetworkConfig &cfg, Rng rng,
                                   DeflectionPolicy policy)
    : Router(mesh, node, cfg), rng_(rng), policy_(policy),
      engine_(mesh, node, policy, cfg.ejectPerCycle),
      ejectPerCycle_(cfg.ejectPerCycle)
{
    AFCSIM_ASSERT(cfg.ejectPerCycle >= 1,
                  "deflection needs ejection bandwidth >= 1");
}

void
DeflectionRouter::acceptFlit(Direction in_port, const Flit &flit, Cycle)
{
    AFCSIM_ASSERT(in_port >= 0 && in_port < kNumNetPorts,
                  "network flit on non-network port");
    AFCSIM_SIM_ASSERT(static_cast<int>(incoming_.size()) < kNumNetPorts,
                      "more arrivals than links at node ", node_);
    incoming_.push_back(flit);
    if (ledger_)
        ledger_->latchWrite();
}

void
DeflectionRouter::evaluate(Cycle now)
{
    if (current_.empty() &&
        (nic_ == nullptr || nic_->queuedFlits() == 0)) {
        return;
    }

    // Pick the injection candidate (round-robin across vnets is not
    // needed: deflection ignores vnets; take the globally oldest
    // head-of-queue flit).
    NodeId inject_dest = kInvalidNode;
    VnetId inject_vnet = -1;
    if (nic_ != nullptr) {
        Cycle best = kNeverCycle;
        for (VnetId v = 0; v < cfg_.numVnets(); ++v) {
            if (nic_->hasInjectable(v) &&
                nic_->peekInjection(v).createTime < best) {
                best = nic_->peekInjection(v).createTime;
                inject_dest = nic_->peekInjection(v).dest;
                inject_vnet = v;
            }
        }
    }

    Direction free_port = kNoDirection;
    engine_.assign(current_, rng_, inject_dest, &free_port,
                   assignments_);
    current_.clear();

    for (auto &a : assignments_) {
        if (ledger_)
            ledger_->arbitrate();
        sendFlit(a.port, a.flit, now, a.productive);
    }

    // Inject at most one flit if a slot remains (footnote 3).
    if (free_port != kNoDirection && inject_vnet >= 0) {
        Flit f = nic_->popInjection(inject_vnet, now);
        bool productive =
            productivePorts(mesh_, node_, f.dest).contains(free_port);
        if (ledger_)
            ledger_->arbitrate();
        sendFlit(free_port, f, now, productive);
    }
}

void
DeflectionRouter::advance(Cycle)
{
    current_.insert(current_.end(), incoming_.begin(), incoming_.end());
    incoming_.clear();
    ++stats_.cyclesBackpressureless;
    if (ledger_)
        ledger_->leakCycle(0, 0); // no buffers at all
}

bool
DeflectionRouter::idle() const
{
    return current_.empty() && incoming_.empty() &&
           (nic_ == nullptr || nic_->queuedFlits() == 0);
}

void
DeflectionRouter::advanceIdle(Cycle k)
{
    // evaluate() early-returns on an idle cycle and never touches
    // rng_, so only advance()'s bookkeeping needs replaying. The
    // leakage adds are looped (not scaled) so the floating-point
    // accumulation order matches the skipped cycles exactly.
    stats_.cyclesBackpressureless += k;
    if (ledger_) {
        for (Cycle i = 0; i < k; ++i)
            ledger_->leakCycle(0, 0);
    }
}

std::size_t
DeflectionRouter::occupancy() const
{
    return current_.size() + incoming_.size();
}

void
DeflectionRouter::visitFlits(
    const std::function<void(const Flit &)> &fn) const
{
    for (const auto &f : current_)
        fn(f);
    for (const auto &f : incoming_)
        fn(f);
}

void
DeflectionRouter::ckptSave(ckpt::Writer &w) const
{
    Router::ckptSave(w);
    ckpt::put(w, rng_);
    w.u64(current_.size());
    for (const auto &f : current_)
        ckpt::put(w, f);
    w.u64(incoming_.size());
    for (const auto &f : incoming_)
        ckpt::put(w, f);
}

void
DeflectionRouter::ckptLoad(ckpt::Reader &r)
{
    Router::ckptLoad(r);
    rng_ = ckpt::getRng(r);
    current_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        current_.push_back(ckpt::getFlit(r));
    incoming_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        incoming_.push_back(ckpt::getFlit(r));
}

} // namespace afcsim
