/**
 * @file
 * Backpressureless deflection (hot-potato) router (Table I, row 2).
 *
 * Single decision stage: every flit latched from the links is
 * dispatched to *some* output port in the next cycle — a productive
 * port when one is free, otherwise a deflection. Priorities are
 * randomized (Chaos-style), giving probabilistic livelock freedom
 * without age-priority hardware (Sec. II); an oldest-first policy is
 * available for ablation. There is no backpressure on network ports;
 * injection is admitted only when an output slot remains after all
 * network flits are placed (footnote 3). One flit may eject per
 * cycle; at-destination flits that lose ejection are deflected.
 */

#ifndef AFCSIM_ROUTER_DEFLECTION_HH
#define AFCSIM_ROUTER_DEFLECTION_HH

#include <vector>

#include "common/rng.hh"
#include "router/router.hh"

namespace afcsim
{

/** Priority policy for deflection arbitration. */
enum class DeflectionPolicy { Random, OldestFirst };

/**
 * Deflection port-assignment engine shared by DeflectionRouter and
 * the AFC router's backpressureless mode. Given the flits that must
 * leave a node this cycle, produces (flit, port, productive) tuples
 * plus at most `eject_per_cycle` ejections, and decides whether one
 * more flit could be injected (returns the free port).
 */
class DeflectionEngine
{
  public:
    struct Assignment
    {
        Flit flit;
        Direction port;   ///< kLocal means eject
        bool productive;
    };

    DeflectionEngine(const Mesh &mesh, NodeId node,
                     DeflectionPolicy policy, int eject_per_cycle);

    /**
     * Assign every flit in `flits` to an output, appending to `out`
     * (cleared first). `flits` is reordered in place by the priority
     * policy; the caller still owns its capacity (hot loops reuse
     * both vectors across cycles to avoid per-cycle allocation).
     * `free_port_out` receives a still-free network port (preferring
     * a productive one for `inject_dest`, if that is a valid node),
     * or kNoDirection when the node is saturated.
     */
    void assign(std::vector<Flit> &flits, Rng &rng, NodeId inject_dest,
                Direction *free_port_out,
                std::vector<Assignment> &out) const;

  private:
    const Mesh &mesh_;
    NodeId node_;
    DeflectionPolicy policy_;
    int ejectPerCycle_;
};

/** Bufferless deflection router. */
class DeflectionRouter : public Router
{
  public:
    DeflectionRouter(const Mesh &mesh, NodeId node,
                     const NetworkConfig &cfg, Rng rng,
                     DeflectionPolicy policy = DeflectionPolicy::Random);

    void acceptFlit(Direction in_port, const Flit &flit,
                    Cycle now) override;
    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /** Idle when nothing is latched and the NIC has nothing queued. */
    bool idle() const override;
    void advanceIdle(Cycle k) override;

    std::size_t occupancy() const override;
    RouterMode
    mode() const override
    {
        return RouterMode::Backpressureless;
    }

    void visitFlits(
        const std::function<void(const Flit &)> &fn) const override;

    void ckptSave(ckpt::Writer &w) const override;
    void ckptLoad(ckpt::Reader &r) override;

  private:
    Rng rng_;
    DeflectionPolicy policy_;
    DeflectionEngine engine_;
    /** Flits latched last cycle; all must dispatch this cycle. */
    std::vector<Flit> current_;
    /** Flits arriving this cycle; become current_ at advance(). */
    std::vector<Flit> incoming_;
    /** Scratch for engine_.assign(), reused across cycles. */
    std::vector<DeflectionEngine::Assignment> assignments_;
    int ejectPerCycle_;
};

} // namespace afcsim

#endif // AFCSIM_ROUTER_DEFLECTION_HH
