#include "router/drop.hh"

#include <algorithm>

#include "ckpt/state.hh"
#include "common/error.hh"

namespace afcsim
{

DropRouter::DropRouter(const Mesh &mesh, NodeId node,
                       const NetworkConfig &cfg, Rng rng,
                       NackFabric *fabric)
    : Router(mesh, node, cfg), rng_(rng), fabric_(fabric),
      ejectPerCycle_(cfg.ejectPerCycle),
      retransmitCapacity_(cfg.dropRetransmitBuffer)
{
    AFCSIM_ASSERT(fabric != nullptr, "drop router needs a NACK fabric");
    // Flits route minimally, so flight time is bounded; the NACK
    // fabric adds at most one cycle per hop. Past this window the
    // absence of a NACK is an implicit ACK.
    Cycle max_hops = static_cast<Cycle>(mesh.width() + mesh.height());
    nackDelayBound_ =
        max_hops * (cfg.linkLatency + 1) + max_hops + 8;
}

void
DropRouter::acceptFlit(Direction in_port, const Flit &flit, Cycle)
{
    AFCSIM_ASSERT(in_port >= 0 && in_port < kNumNetPorts,
                  "network flit on non-network port");
    AFCSIM_SIM_ASSERT(static_cast<int>(incoming_.size()) < kNumNetPorts,
                      "more arrivals than links at node ", node_);
    incoming_.push_back(flit);
    if (ledger_)
        ledger_->latchWrite();
}

void
DropRouter::dropFlit(const Flit &flit, Cycle now)
{
    ++dropped_;
    if (tracer_)
        tracer_->onDrop(node_, flit, now);
    Cycle delay = std::max(1, mesh_.hopDistance(node_, flit.src));
    fabric_->send(flit.src, {flit.packet, flit.seq}, now, delay, node_);
    if (ledger_) {
        // The dedicated NACK wire burns roughly a control signal per
        // hop back to the source.
        for (Cycle h = 0; h < delay; ++h)
            ledger_->creditSignal();
    }
}

void
DropRouter::retain(const Flit &flit, Cycle now)
{
    PendingFlit p;
    p.flit = flit;
    p.deadline = now + nackDelayBound_;
    pending_[flitKey(flit.packet, flit.seq)] = p;
}

void
DropRouter::expirePending(Cycle now)
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.deadline < now)
            it = pending_.erase(it); // implicit ACK: delivered
        else
            ++it;
    }
}

void
DropRouter::evaluate(Cycle now)
{
    // NACKs from the dedicated fabric: re-queue the retained copy.
    // (Guarded so the common no-NACK cycle allocates nothing.)
    if (fabric_->pendingFor(node_) != 0) {
        for (const NackFabric::Nack &nack :
             fabric_->arrivalsFor(node_, now)) {
            auto it = pending_.find(flitKey(nack.packet, nack.seq));
            AFCSIM_SIM_ASSERT(it != pending_.end(),
                              "NACK for unknown flit at node ", node_,
                              " — NACK delay bound too small");
            retransmitQ_.push_back(it->second.flit);
            pending_.erase(it);
        }
    }
    if (!pending_.empty())
        expirePending(now);

    // Randomized priority over this cycle's transit flits.
    std::vector<Flit> flits;
    flits.swap(current_);
    for (std::size_t i = flits.size(); i > 1; --i)
        std::swap(flits[i - 1],
                  flits[rng_.below(static_cast<std::uint32_t>(i))]);

    bool port_free[kNumNetPorts];
    for (int d = 0; d < kNumNetPorts; ++d)
        port_free[d] =
            mesh_.hasNeighbor(node_, static_cast<Direction>(d));
    int ejects_left = ejectPerCycle_;

    for (Flit &f : flits) {
        if (f.dest == node_) {
            if (ejects_left > 0) {
                --ejects_left;
                if (ledger_)
                    ledger_->arbitrate();
                sendFlit(kLocal, f, now, true);
            } else {
                dropFlit(f, now); // ejection contention
            }
            continue;
        }
        PortSet prod = productivePorts(mesh_, node_, f.dest);
        bool placed = false;
        for (int i = 0; i < prod.count && !placed; ++i) {
            Direction d = prod.ports[i];
            if (port_free[d]) {
                port_free[d] = false;
                placed = true;
                if (ledger_)
                    ledger_->arbitrate();
                sendFlit(d, f, now, true);
            }
        }
        if (!placed)
            dropFlit(f, now); // all productive ports claimed
    }

    // Injection: retransmissions first, then new traffic; one flit
    // per cycle, and only onto a free productive port.
    Flit candidate;
    bool have = false;
    bool is_retransmit = false;
    if (!retransmitQ_.empty()) {
        candidate = retransmitQ_.front();
        have = true;
        is_retransmit = true;
    } else if (nic_ != nullptr &&
               pending_.size() + retransmitQ_.size() <
                   retransmitCapacity_) {
        Cycle best = kNeverCycle;
        VnetId best_vnet = -1;
        for (VnetId v = 0; v < cfg_.numVnets(); ++v) {
            if (nic_->hasInjectable(v) &&
                nic_->peekInjection(v).createTime < best) {
                best = nic_->peekInjection(v).createTime;
                best_vnet = v;
            }
        }
        if (best_vnet >= 0) {
            candidate = nic_->peekInjection(best_vnet);
            candidate.vnet = best_vnet; // for the pop below
            have = true;
        }
    }
    if (have) {
        PortSet prod = productivePorts(mesh_, node_, candidate.dest);
        for (int i = 0; i < prod.count; ++i) {
            Direction d = prod.ports[i];
            if (!port_free[d])
                continue;
            Flit f = candidate;
            if (is_retransmit) {
                retransmitQ_.pop_front();
                ++retransmissions_;
            } else {
                f = nic_->popInjection(candidate.vnet, now);
            }
            retain(f, now);
            if (ledger_)
                ledger_->arbitrate();
            sendFlit(d, f, now, true);
            break;
        }
    }
}

void
DropRouter::advance(Cycle)
{
    AFCSIM_ASSERT(current_.empty(),
                  "drop-router latches not drained at node ", node_);
    current_.swap(incoming_);
    ++stats_.cyclesBackpressureless;
    if (ledger_)
        ledger_->leakCycle(0, 0);
}

bool
DropRouter::idle() const
{
    return current_.empty() && incoming_.empty() &&
           retransmitQ_.empty() && pending_.empty() &&
           (nic_ == nullptr || nic_->queuedFlits() == 0) &&
           fabric_->pendingFor(node_) == 0;
}

void
DropRouter::advanceIdle(Cycle k)
{
    // With no latched flits, empty pending/retransmit state and no
    // NACKs en route, evaluate() touches nothing (the priority
    // shuffle never draws from rng_ on an empty flit set) and
    // advance() only counts residency and leakage.
    stats_.cyclesBackpressureless += k;
    if (ledger_) {
        for (Cycle i = 0; i < k; ++i)
            ledger_->leakCycle(0, 0);
    }
}

std::size_t
DropRouter::occupancy() const
{
    // Retransmit copies are live traffic (the network has dropped
    // the original); pending_ copies are not (the original is in
    // flight or already delivered).
    return current_.size() + incoming_.size() + retransmitQ_.size();
}

std::size_t
DropRouter::retransmitBufferUse() const
{
    return pending_.size() + retransmitQ_.size();
}

void
DropRouter::visitFlits(const std::function<void(const Flit &)> &fn) const
{
    for (const auto &f : current_)
        fn(f);
    for (const auto &f : incoming_)
        fn(f);
    for (const auto &f : retransmitQ_)
        fn(f);
}

void
DropRouter::ckptSave(ckpt::Writer &w) const
{
    Router::ckptSave(w);
    ckpt::put(w, rng_);
    w.u64(current_.size());
    for (const auto &f : current_)
        ckpt::put(w, f);
    w.u64(incoming_.size());
    for (const auto &f : incoming_)
        ckpt::put(w, f);
    // pending_ is unordered; write in sorted key order so the byte
    // stream is deterministic for a given state.
    std::vector<std::uint64_t> keys;
    keys.reserve(pending_.size());
    for (const auto &[key, p] : pending_)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t key : keys) {
        const PendingFlit &p = pending_.at(key);
        w.u64(key);
        ckpt::put(w, p.flit);
        w.u64(p.deadline);
    }
    w.u64(retransmitQ_.size());
    for (const auto &f : retransmitQ_)
        ckpt::put(w, f);
    w.u64(dropped_);
    w.u64(retransmissions_);
}

void
DropRouter::ckptLoad(ckpt::Reader &r)
{
    Router::ckptLoad(r);
    rng_ = ckpt::getRng(r);
    current_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        current_.push_back(ckpt::getFlit(r));
    incoming_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        incoming_.push_back(ckpt::getFlit(r));
    pending_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t key = r.u64();
        PendingFlit p;
        p.flit = ckpt::getFlit(r);
        p.deadline = r.u64();
        pending_.emplace(key, std::move(p));
    }
    retransmitQ_.clear();
    n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        retransmitQ_.push_back(ckpt::getFlit(r));
    dropped_ = r.u64();
    retransmissions_ = r.u64();
}

} // namespace afcsim
