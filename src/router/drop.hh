/**
 * @file
 * Drop-based backpressureless router (extension).
 *
 * Sec. II of the paper discusses the second backpressureless
 * variant — dropping all but one of the contending flits instead of
 * misrouting them (SCARAB [Hayenga et al., MICRO'09]) — and rejects
 * it because "the variant that drops packets saturates at lower
 * loads, even according to the original paper". This router
 * implements that variant so the claim can be measured
 * (bench_drop_variant):
 *
 *  - flits travel only productive (minimal) ports; a flit whose
 *    productive ports are all claimed by higher-priority flits is
 *    dropped;
 *  - every drop sends a NACK to the flit's source over a dedicated
 *    contention-free NACK fabric (SCARAB builds a circuit-switched
 *    one; modeling it as contention-free is an idealization *in the
 *    drop variant's favor* — it still loses);
 *  - the source retains a copy of every in-flight flit in a bounded
 *    retransmission buffer; a NACK re-queues the copy for
 *    re-injection (ahead of new traffic); absence of a NACK within
 *    the bounded NACK-delay window frees the slot (implicit ACK);
 *  - a full retransmission buffer backpressures injection, the only
 *    backpressure point (as in deflection routing, footnote 3).
 */

#ifndef AFCSIM_ROUTER_DROP_HH
#define AFCSIM_ROUTER_DROP_HH

#include <deque>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "router/router.hh"

namespace afcsim
{

/**
 * The dedicated NACK network: contention-free, fixed per-hop delay.
 * One instance is shared by all DropRouters of a network.
 */
class NackFabric
{
  public:
    struct Nack
    {
        PacketId packet;
        std::uint16_t seq;
    };

    /** One staged cross-shard NACK (sharded cycle kernel). */
    struct Staged
    {
        NodeId to;     ///< NACK destination (the dropped flit's source)
        Cycle arrival; ///< now + delay at send time
        Nack nack;
    };

    explicit NackFabric(int num_nodes) : queues_(num_nodes) {}

    /**
     * Send a NACK toward `src`, arriving after `delay` cycles.
     * `sender` is the dropping router; with staging enabled
     * (sharded kernel) the NACK lands in the sender-shard's staging
     * slot instead of the destination queue — the kernel merges the
     * slots in ascending-slot order after the evaluate phase, which
     * reproduces the ascending-sender push order of the serial
     * kernel exactly (queue order is behaviorally significant: a
     * far NACK at the queue head delays a near one behind it).
     * Without staging (standalone fabric, unit tests) the push and
     * the wake hook fire immediately, as they always have.
     */
    void
    send(NodeId src, const Nack &nack, Cycle now, Cycle delay,
         NodeId sender = kInvalidNode)
    {
        if (!stage_.empty() && sender != kInvalidNode) {
            stage_[static_cast<std::size_t>(slotOf_[sender])]
                .push_back({src, now + delay, nack});
            return; // queue push + wake happen at the merge
        }
        queues_.at(src).push_back({now + delay, nack});
        if (wake_)
            wake_(src);
    }

    /// @name Sharded hand-off staging (Network::step()).
    /// @{
    /** Arm staging: sends carrying a sender id are parked in slot
     *  `slot_of_node[sender]` until the kernel merges them. */
    void
    enableStaging(int num_slots, std::vector<int> slot_of_node)
    {
        stage_.assign(static_cast<std::size_t>(num_slots), {});
        slotOf_ = std::move(slot_of_node);
    }

    const std::vector<Staged> &
    stagedSlot(int slot) const
    {
        return stage_.at(static_cast<std::size_t>(slot));
    }

    /** Move one staged entry into its destination queue. */
    void
    pushStaged(const Staged &e)
    {
        queues_.at(e.to).push_back({e.arrival, e.nack});
    }

    /** Drop all staged entries (end of the cycle's merge). */
    void
    clearStaged()
    {
        for (auto &slot : stage_)
            slot.clear();
    }
    /// @}

    /**
     * Notify the scheduler that `src` has NACK traffic en route (the
     * idle-skip scheduler re-activates the source router so it polls
     * arrivalsFor again).
     */
    void setWakeHook(std::function<void(NodeId)> hook)
    {
        wake_ = std::move(hook);
    }

    /** NACKs queued (in flight or arrived) for `node`. */
    std::size_t pendingFor(NodeId node) const
    {
        return queues_.at(node).size();
    }

    /** Pop all NACKs for `node` that have arrived by `now`. */
    std::vector<Nack>
    arrivalsFor(NodeId node, Cycle now)
    {
        std::vector<Nack> out;
        auto &q = queues_.at(node);
        while (!q.empty() && q.front().first <= now) {
            out.push_back(q.front().second);
            q.pop_front();
        }
        return out;
    }

    std::size_t
    inflight() const
    {
        std::size_t n = 0;
        for (const auto &q : queues_)
            n += q.size();
        return n;
    }

    /// @name Raw queue access for bit-exact checkpointing (src/ckpt).
    /// @{
    std::size_t numQueues() const { return queues_.size(); }

    const std::deque<std::pair<Cycle, Nack>> &
    rawQueue(NodeId node) const
    {
        return queues_.at(node);
    }

    void
    restoreQueue(NodeId node, std::deque<std::pair<Cycle, Nack>> q)
    {
        queues_.at(node) = std::move(q);
    }
    /// @}

  private:
    std::vector<std::deque<std::pair<Cycle, Nack>>> queues_;
    std::function<void(NodeId)> wake_;
    /** Per-slot staged sends; empty when staging is disabled. */
    std::vector<std::vector<Staged>> stage_;
    /** Sender node -> staging slot (the sender's shard). */
    std::vector<int> slotOf_;
};

/** Bufferless minimal-routing router that drops on contention. */
class DropRouter : public Router
{
  public:
    DropRouter(const Mesh &mesh, NodeId node, const NetworkConfig &cfg,
               Rng rng, NackFabric *fabric);

    void acceptFlit(Direction in_port, const Flit &flit,
                    Cycle now) override;
    void evaluate(Cycle now) override;
    void advance(Cycle now) override;

    /**
     * Idle when nothing is latched or queued for (re)injection, no
     * NACK is en route to this node, and no retained copy awaits its
     * implicit-ACK deadline (expirePending must tick while entries
     * exist so retransmitBufferUse() stays exact).
     */
    bool idle() const override;
    void advanceIdle(Cycle k) override;

    std::size_t occupancy() const override;
    RouterMode
    mode() const override
    {
        return RouterMode::Backpressureless;
    }

    /// @name Diagnostics.
    /// @{
    std::uint64_t flitsDropped() const { return dropped_; }
    std::size_t retransmitBufferUse() const;
    std::uint64_t retransmissions() const { return retransmissions_; }
    /// @}

    void visitFlits(
        const std::function<void(const Flit &)> &fn) const override;

    void ckptSave(ckpt::Writer &w) const override;
    void ckptLoad(ckpt::Reader &r) override;

  private:
    struct PendingFlit
    {
        Flit flit;
        Cycle deadline; ///< implicit-ACK time (no NACK can still come)
    };

    static std::uint64_t
    flitKey(PacketId packet, std::uint16_t seq)
    {
        return (packet << 16) | seq;
    }

    void dropFlit(const Flit &flit, Cycle now);
    /** Track an injected flit for possible retransmission. */
    void retain(const Flit &flit, Cycle now);
    void expirePending(Cycle now);

    Rng rng_;
    NackFabric *fabric_;
    std::vector<Flit> current_;
    std::vector<Flit> incoming_;
    int ejectPerCycle_;
    Cycle nackDelayBound_;

    /** Source copies of in-flight flits, keyed by (packet, seq). */
    std::unordered_map<std::uint64_t, PendingFlit> pending_;
    /** NACKed flits awaiting re-injection (ahead of new traffic). */
    std::deque<Flit> retransmitQ_;
    std::size_t retransmitCapacity_;

    std::uint64_t dropped_ = 0;
    std::uint64_t retransmissions_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_ROUTER_DROP_HH
