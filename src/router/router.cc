#include "router/router.hh"

#include "ckpt/state.hh"

namespace afcsim
{

Router::Router(const Mesh &mesh, NodeId node, const NetworkConfig &cfg)
    : mesh_(mesh), node_(node), cfg_(cfg)
{
    AFCSIM_ASSERT(mesh.valid(node), "router on invalid node ", node);
}

void
Router::connectFlitOut(Direction d, Channel<Flit> *ch)
{
    AFCSIM_ASSERT(d >= 0 && d < kNumPorts, "bad port");
    flitOut_[d] = ch;
}

void
Router::connectCreditOut(Direction d, Channel<Credit> *ch)
{
    AFCSIM_ASSERT(d >= 0 && d < kNumNetPorts, "bad net port");
    creditOut_[d] = ch;
}

void
Router::connectCtlOut(Direction d, Channel<CtlMsg> *ch)
{
    AFCSIM_ASSERT(d >= 0 && d < kNumNetPorts, "bad net port");
    ctlOut_[d] = ch;
}

void
Router::attachNic(Nic *nic)
{
    nic_ = nic;
}

void
Router::attachLedger(EnergyLedger *ledger)
{
    ledger_ = ledger;
}

void
Router::attachTracer(FlitTracer *tracer)
{
    tracer_ = tracer;
}

void
Router::acceptCredit(Direction, const Credit &, Cycle)
{
    // Routers without credit tracking (pure deflection) ignore these.
}

void
Router::acceptCtl(Direction, const CtlMsg &, Cycle)
{
    // Non-AFC routers never receive control-line messages.
}

void
Router::sendFlit(Direction d, Flit flit, Cycle now, bool productive)
{
    AFCSIM_ASSERT(flitOut_[d] != nullptr,
                  "send on unconnected port ", dirName(d), " at node ",
                  node_);
    ++stats_.flitsRouted;
    ++portDispatches_[d];
    if (tracer_)
        tracer_->onDispatch(node_, d, flit, now, productive);
    if (ledger_)
        ledger_->crossbar();
    if (d != kLocal) {
        ++flit.hops;
        if (!productive) {
            ++flit.deflections;
            ++stats_.flitsDeflected;
        }
        flit.lookahead = lookaheadRoute(mesh_, node_, d, flit.dest);
        if (ledger_)
            ledger_->linkTraversal();
    }
    flitOut_[d]->send(flit, now);
}

void
Router::sendCredit(Direction in_port, const Credit &credit, Cycle now)
{
    AFCSIM_ASSERT(in_port >= 0 && in_port < kNumNetPorts,
                  "credit for non-network port");
    AFCSIM_ASSERT(creditOut_[in_port] != nullptr,
                  "credit on unconnected port at node ", node_);
    creditOut_[in_port]->send(credit, now);
    if (ledger_)
        ledger_->creditSignal();
}

void
Router::ckptSave(ckpt::Writer &w) const
{
    w.u64(stats_.flitsRouted);
    w.u64(stats_.flitsDeflected);
    w.u64(stats_.cyclesBackpressured);
    w.u64(stats_.cyclesBackpressureless);
    w.u64(stats_.forwardSwitches);
    w.u64(stats_.reverseSwitches);
    w.u64(stats_.gossipSwitches);
    w.u64(stats_.creditStalls);
    for (std::uint64_t d : portDispatches_)
        w.u64(d);
}

void
Router::ckptLoad(ckpt::Reader &r)
{
    stats_.flitsRouted = r.u64();
    stats_.flitsDeflected = r.u64();
    stats_.cyclesBackpressured = r.u64();
    stats_.cyclesBackpressureless = r.u64();
    stats_.forwardSwitches = r.u64();
    stats_.reverseSwitches = r.u64();
    stats_.gossipSwitches = r.u64();
    stats_.creditStalls = r.u64();
    for (std::uint64_t &d : portDispatches_)
        d = r.u64();
}

void
Router::broadcastCtl(const CtlMsg &msg, Cycle now)
{
    for (int d = 0; d < kNumNetPorts; ++d) {
        if (ctlOut_[d] != nullptr) {
            ctlOut_[d]->send(msg, now);
            if (ledger_)
                ledger_->creditSignal();
        }
    }
}

} // namespace afcsim
