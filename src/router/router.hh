/**
 * @file
 * Abstract router interface shared by the three flow-control
 * mechanisms (backpressured, backpressureless/deflection, AFC).
 *
 * The network kernel runs a two-phase cycle: deliveries (flits,
 * credits, control messages whose channel latency elapsed) are
 * pushed into the router via the accept* methods, then evaluate()
 * makes this cycle's decisions (switch allocation, deflection
 * assignment, injection pulls, sends onto output channels), and
 * advance() commits per-cycle state (traffic-intensity EWMA, mode
 * transitions, leakage accounting).
 */

#ifndef AFCSIM_ROUTER_ROUTER_HH
#define AFCSIM_ROUTER_ROUTER_HH

#include <array>
#include <cstdint>
#include <functional>

#include "common/config.hh"
#include "common/types.hh"
#include "energy/energy.hh"
#include "network/channel.hh"
#include "network/flit.hh"
#include "network/nic.hh"
#include "network/trace.hh"
#include "topology/mesh.hh"
#include "topology/routing.hh"

namespace afcsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Flow-control mode a router is operating in (Fig. 1 states). */
enum class RouterMode { Backpressured, Backpressureless };

/** Aggregate per-router activity statistics. */
struct RouterStats
{
    std::uint64_t flitsRouted = 0;      ///< flits dispatched on any port
    std::uint64_t flitsDeflected = 0;   ///< non-productive dispatches
    std::uint64_t cyclesBackpressured = 0;
    std::uint64_t cyclesBackpressureless = 0;
    std::uint64_t forwardSwitches = 0;  ///< BPL -> BP transitions
    std::uint64_t reverseSwitches = 0;  ///< BP -> BPL transitions
    std::uint64_t gossipSwitches = 0;   ///< forward switches forced by gossip
    /** Ready flits that could not dispatch solely for lack of
     *  downstream credits (one count per blocked input VC scan). */
    std::uint64_t creditStalls = 0;

    double
    backpressuredFraction() const
    {
        std::uint64_t total = cyclesBackpressured + cyclesBackpressureless;
        return total ? static_cast<double>(cyclesBackpressured) / total : 0.0;
    }
};

/**
 * Base router: wiring to channels, NIC and energy ledger, plus the
 * per-cycle interface driven by the Network kernel.
 */
class Router
{
  public:
    Router(const Mesh &mesh, NodeId node, const NetworkConfig &cfg);
    virtual ~Router() = default;

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /// @name Wiring (done once by the Network during construction).
    /// @{
    /** Output flit channel on port d (kLocal = ejection to NIC). */
    void connectFlitOut(Direction d, Channel<Flit> *ch);
    /** Credit channel from my input port d back to the upstream. */
    void connectCreditOut(Direction d, Channel<Credit> *ch);
    /** Control line to the neighbor on port d (mode notifications). */
    void connectCtlOut(Direction d, Channel<CtlMsg> *ch);
    void attachNic(Nic *nic);
    void attachLedger(EnergyLedger *ledger);
    /** Attach an event tracer (nullptr disables tracing). */
    void attachTracer(FlitTracer *tracer);
    /// @}

    /// @name Per-cycle interface, called by the Network kernel.
    /// @{
    /** A flit arrives on input port `in_port` at cycle `now`. */
    virtual void acceptFlit(Direction in_port, const Flit &flit,
                            Cycle now) = 0;
    /** A credit for my output port `out_port` arrives. */
    virtual void acceptCredit(Direction out_port, const Credit &credit,
                              Cycle now);
    /** A control-line message about my output port `out_port`. */
    virtual void acceptCtl(Direction out_port, const CtlMsg &msg,
                           Cycle now);
    /** Make this cycle's routing/allocation decisions and send. */
    virtual void evaluate(Cycle now) = 0;
    /** Commit per-cycle state (EWMA, mode switches, leakage). */
    virtual void advance(Cycle now) = 0;
    /**
     * True when a full evaluate()+advance() cycle would be a no-op
     * apart from the per-cycle bookkeeping that advanceIdle() can
     * replay exactly: nothing buffered or latched, nothing queued at
     * the NIC, and no pending mode/threshold work. The idle-skip
     * scheduler only parks routers for which this holds; variants
     * that cannot prove it simply return false and are never skipped.
     */
    virtual bool idle() const { return false; }
    /**
     * Replay `k` skipped idle cycles' worth of bookkeeping (residency
     * counters, EWMA decay, leakage) so that every exported counter
     * is bit-identical to having called evaluate()+advance() `k`
     * times with no work. Only called when idle() held throughout.
     */
    virtual void advanceIdle(Cycle k) { (void)k; }
    /// @}

    /// @name Introspection for tests, drain checks and reports.
    /// @{
    /** Flits currently held (buffers + pipeline latches). */
    virtual std::size_t occupancy() const = 0;
    virtual RouterMode mode() const = 0;
    /** EWMA-smoothed local traffic intensity driving mode decisions
     *  (0 for routers without an adaptive policy). */
    virtual double contentionEwma() const { return 0.0; }
    /** Visit every flit currently held (watchdog age audits). */
    virtual void
    visitFlits(const std::function<void(const Flit &)> &) const
    {
    }
    /// @}

    /// @name Bit-exact snapshot/restore (src/ckpt). Variants first
    /// call the base implementation (stats, port dispatch counters),
    /// then serialize their own dynamic state. Wiring and
    /// config-derived tables are rebuilt by fresh construction, never
    /// serialized. Only valid at a cycle boundary (between steps).
    /// @{
    virtual void ckptSave(ckpt::Writer &w) const;
    virtual void ckptLoad(ckpt::Reader &r);
    /// @}

    NodeId node() const { return node_; }
    const RouterStats &stats() const { return stats_; }
    const Mesh &mesh() const { return mesh_; }

    /** Flits dispatched on port d since construction. */
    std::uint64_t
    portDispatches(Direction d) const
    {
        return portDispatches_.at(d);
    }

  protected:
    /**
     * Dispatch a flit on output port d at cycle `now`: charges
     * crossbar (and link) energy, bumps hop/deflection counters, and
     * recomputes the lookahead route. `productive` marks whether d
     * reduces distance to the destination (ejection is productive).
     */
    void sendFlit(Direction d, Flit flit, Cycle now, bool productive);

    /** Send a credit upstream for a slot freed at input port d. */
    void sendCredit(Direction in_port, const Credit &credit, Cycle now);

    /** Broadcast a control message to every connected neighbor. */
    void broadcastCtl(const CtlMsg &msg, Cycle now);

    const Mesh &mesh_;
    NodeId node_;
    const NetworkConfig &cfg_;
    Nic *nic_ = nullptr;
    EnergyLedger *ledger_ = nullptr;
    FlitTracer *tracer_ = nullptr;
    RouterStats stats_;
    std::array<std::uint64_t, kNumPorts> portDispatches_{};

    std::array<Channel<Flit> *, kNumPorts> flitOut_{};
    std::array<Channel<Credit> *, kNumNetPorts> creditOut_{};
    std::array<Channel<CtlMsg> *, kNumNetPorts> ctlOut_{};
};

} // namespace afcsim

#endif // AFCSIM_ROUTER_ROUTER_HH
