/**
 * @file
 * VC indexing helper: maps (vnet, vc-within-vnet) to a flat global
 * VC index for a port, given a per-vnet shape (count x depth).
 */

#ifndef AFCSIM_ROUTER_VCSHAPE_HH
#define AFCSIM_ROUTER_VCSHAPE_HH

#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace afcsim
{

/** Flat layout of a port's VCs grouped by virtual network. */
class VcShape
{
  public:
    explicit VcShape(const std::vector<VnetConfig> &shape)
        : shape_(shape)
    {
        int base = 0;
        for (const auto &v : shape_) {
            bases_.push_back(base);
            base += v.numVcs;
        }
        total_ = base;
    }

    int numVnets() const { return static_cast<int>(shape_.size()); }
    int totalVcs() const { return total_; }

    int base(VnetId vnet) const { return bases_.at(vnet); }
    int count(VnetId vnet) const { return shape_.at(vnet).numVcs; }
    int depth(VnetId vnet) const { return shape_.at(vnet).bufferDepth; }

    /** Total buffer flits across all VCs of the port. */
    int
    totalBufferFlits() const
    {
        int n = 0;
        for (const auto &v : shape_)
            n += v.numVcs * v.bufferDepth;
        return n;
    }

    /** Virtual network that global VC index `vc` belongs to. */
    VnetId
    vnetOf(VcId vc) const
    {
        AFCSIM_ASSERT(vc >= 0 && vc < total_, "vc out of range: ", vc);
        for (int v = numVnets() - 1; v >= 0; --v) {
            if (vc >= bases_[v])
                return static_cast<VnetId>(v);
        }
        AFCSIM_PANIC("unreachable");
    }

  private:
    std::vector<VnetConfig> shape_;
    std::vector<int> bases_;
    int total_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_ROUTER_VCSHAPE_HH
