#include "search/criteria.hh"

namespace afcsim::search
{

Evaluation
evaluateCriteria(const SearchCriteria &c, const ProbeMetrics &m,
                 double baselineAvgLatency)
{
    Evaluation ev;
    auto add = [&ev](const std::string &name, bool pass, double value,
                     double bound) {
        ev.criteria.push_back({name, pass, value, bound});
    };

    // A degraded run has no metrics to judge: fail on the clean
    // criterion alone. This is the "a faulted probe counts as
    // failing criteria" contract — the search treats it as an
    // unsustainable rate and moves its bracket, never aborts.
    if (!m.error.empty()) {
        add("clean", false, 0.0, 1.0);
        ev.pass = false;
        return ev;
    }
    if (c.requireClean)
        add("clean", true, 1.0, 1.0);

    if (c.minDeliveredFraction > 0.0) {
        double frac = m.offeredRate > 0.0
            ? m.acceptedRate / m.offeredRate
            : 0.0;
        add("delivered_fraction", frac >= c.minDeliveredFraction, frac,
            c.minDeliveredFraction);
    }
    if (c.requireUnsaturated) {
        add("unsaturated", !m.saturated, m.saturated ? 0.0 : 1.0, 1.0);
    }
    if (c.maxAvgLatency > 0.0) {
        add("avg_latency", m.avgPacketLatency <= c.maxAvgLatency,
            m.avgPacketLatency, c.maxAvgLatency);
    }
    if (c.maxP95Latency > 0.0) {
        add("p95_latency", m.p95PacketLatency <= c.maxP95Latency,
            m.p95PacketLatency, c.maxP95Latency);
    }
    if (c.maxP99Latency > 0.0) {
        add("p99_latency", m.p99PacketLatency <= c.maxP99Latency,
            m.p99PacketLatency, c.maxP99Latency);
    }
    if (c.kneeRatio > 0.0 && baselineAvgLatency > 0.0) {
        double bound = c.kneeRatio * baselineAvgLatency;
        add("latency_knee", m.avgPacketLatency <= bound,
            m.avgPacketLatency, bound);
    }

    ev.pass = true;
    for (const auto &r : ev.criteria)
        ev.pass = ev.pass && r.pass;
    return ev;
}

JsonValue
toJson(const SearchCriteria &c)
{
    JsonValue o = JsonValue::object();
    o.set("min_delivered_fraction", JsonValue(c.minDeliveredFraction));
    o.set("max_avg_latency", JsonValue(c.maxAvgLatency));
    o.set("max_p95_latency", JsonValue(c.maxP95Latency));
    o.set("max_p99_latency", JsonValue(c.maxP99Latency));
    o.set("knee_ratio", JsonValue(c.kneeRatio));
    o.set("require_unsaturated", JsonValue(c.requireUnsaturated));
    o.set("require_clean", JsonValue(c.requireClean));
    return o;
}

JsonValue
toJson(const CriterionResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("name", JsonValue(r.name));
    o.set("pass", JsonValue(r.pass));
    o.set("value", JsonValue(r.value));
    o.set("bound", JsonValue(r.bound));
    return o;
}

JsonValue
toJson(const Evaluation &e)
{
    JsonValue o = JsonValue::object();
    o.set("pass", JsonValue(e.pass));
    JsonValue list = JsonValue::array();
    for (const auto &r : e.criteria)
        list.push(toJson(r));
    o.set("criteria", std::move(list));
    return o;
}

} // namespace afcsim::search
