/**
 * @file
 * Declarative convergence criteria for the adaptive load search
 * (src/search). A SearchCriteria is a set of predicates over the
 * metrics of one finished run; evaluateCriteria() applies them and
 * returns a JSON-exportable per-criterion breakdown, so a search
 * result always records *why* each probe passed or failed — the
 * Nighthawk adaptive-load-controller reporting style.
 *
 * This header depends only on src/common so the experiment spec
 * layer (exp/spec.hh) can embed a criteria block without pulling in
 * the runner.
 */

#ifndef AFCSIM_SEARCH_CRITERIA_HH
#define AFCSIM_SEARCH_CRITERIA_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace afcsim::search
{

/**
 * The slice of a run's outcome the criteria can see. Kept separate
 * from exp::RunResult so criteria stay testable with hand-built
 * fixtures (the monotonicity tests drive the controller with a
 * synthetic metrics function, no simulator involved).
 */
struct ProbeMetrics
{
    double offeredRate = 0.0;      ///< flits/node/cycle offered
    double acceptedRate = 0.0;     ///< flits/node/cycle delivered
    double avgPacketLatency = 0.0; ///< cycles
    double p50PacketLatency = 0.0;
    double p95PacketLatency = 0.0;
    double p99PacketLatency = 0.0;
    bool saturated = false;        ///< open-loop saturation flag
    /**
     * Non-empty when the run degraded to an error record (watchdog
     * SimError, injected hard failure, exceeded budget). A degraded
     * probe carries no usable metrics and always fails evaluation.
     */
    std::string error;
};

/**
 * Predicate thresholds. A threshold of 0 disables that predicate
 * (except the delivered-fraction floor, which is the one criterion
 * every search needs — set it to 0 explicitly to disable).
 */
struct SearchCriteria
{
    /** Floor on acceptedRate / offeredRate (0 disables). */
    double minDeliveredFraction = 0.9;
    /** Ceiling on mean packet latency in cycles (0 disables). */
    double maxAvgLatency = 0.0;
    /** Ceiling on p95 packet latency in cycles (0 disables). */
    double maxP95Latency = 0.0;
    /** Ceiling on p99 packet latency in cycles (0 disables). */
    double maxP99Latency = 0.0;
    /**
     * Latency-knee detector: mean latency must stay within this
     * factor of the low-load baseline probe's mean latency (0
     * disables; enabling it makes the controller run one baseline
     * probe first). The Envoy gradient-controller idiom: minRTT vs
     * sampleRTT.
     */
    double kneeRatio = 0.0;
    /** Require the open-loop saturation flag to be clear. */
    bool requireUnsaturated = true;
    /**
     * Record a "clean" criterion for runs that degraded to an error
     * record. Informational only: a degraded probe fails evaluation
     * regardless, because it has no metrics to judge.
     */
    bool requireClean = true;
};

/** One predicate's outcome: observed value against its bound. */
struct CriterionResult
{
    std::string name;
    bool pass = false;
    double value = 0.0;
    double bound = 0.0;
};

/** Full evaluation of one run against a criteria set. */
struct Evaluation
{
    bool pass = false;
    std::vector<CriterionResult> criteria;
};

/**
 * Apply the criteria to one run's metrics. `baselineAvgLatency` is
 * the mean latency of the low-load baseline probe (0 when no
 * baseline ran; the knee criterion is skipped then).
 */
Evaluation evaluateCriteria(const SearchCriteria &c,
                            const ProbeMetrics &m,
                            double baselineAvgLatency = 0.0);

JsonValue toJson(const SearchCriteria &c);
JsonValue toJson(const CriterionResult &r);
JsonValue toJson(const Evaluation &e);

} // namespace afcsim::search

#endif // AFCSIM_SEARCH_CRITERIA_HH
