/**
 * @file
 * JSON and CSV sinks for search results. Like exp/result.cc, every
 * document is a pure function of the results — no wall-clock, no
 * thread-count artifacts — so repeated runs byte-compare equal.
 */

#include "search/search.hh"

#include "common/statsio.hh"

namespace afcsim::search
{

namespace
{

JsonValue
toJson(const ProbeMetrics &m)
{
    JsonValue o = JsonValue::object();
    o.set("offered_rate", JsonValue(m.offeredRate));
    o.set("accepted_rate", JsonValue(m.acceptedRate));
    o.set("avg_packet_latency", JsonValue(m.avgPacketLatency));
    o.set("p50_packet_latency", JsonValue(m.p50PacketLatency));
    o.set("p95_packet_latency", JsonValue(m.p95PacketLatency));
    o.set("p99_packet_latency", JsonValue(m.p99PacketLatency));
    o.set("saturated", JsonValue(m.saturated));
    return o;
}

JsonValue
toJson(const ProbeRecord &p)
{
    JsonValue o = JsonValue::object();
    o.set("ordinal", JsonValue(static_cast<std::int64_t>(p.ordinal)));
    o.set("stage", JsonValue(toString(p.stage)));
    o.set("rate", JsonValue(p.rate));
    o.set("pass", JsonValue(p.pass));
    if (!p.metrics.error.empty())
        o.set("error", JsonValue(p.metrics.error));
    else
        o.set("metrics", toJson(p.metrics));
    o.set("eval", toJson(p.eval));
    return o;
}

JsonValue
searchSpecToJson(const exp::ExperimentSpec &spec)
{
    JsonValue s = JsonValue::object();
    s.set("kind", JsonValue(std::string("search")));
    JsonValue meshes = JsonValue::array();
    if (spec.meshSizes.empty()) {
        meshes.push(
            JsonValue(static_cast<std::int64_t>(spec.base.width)));
    } else {
        for (int m : spec.meshSizes)
            meshes.push(JsonValue(static_cast<std::int64_t>(m)));
    }
    s.set("mesh", std::move(meshes));
    JsonValue fcs = JsonValue::array();
    for (FlowControl fc : spec.configs)
        fcs.push(JsonValue(afcsim::toString(fc)));
    s.set("configs", std::move(fcs));
    s.set("pattern", JsonValue(spec.pattern));
    s.set("warmup_cycles",
          JsonValue(static_cast<std::int64_t>(spec.warmupCycles)));
    s.set("measure_cycles",
          JsonValue(static_cast<std::int64_t>(spec.measureCycles)));
    if (!spec.faultRates.empty()) {
        JsonValue faults = JsonValue::array();
        for (double f : spec.faultRates)
            faults.push(JsonValue(f));
        s.set("fault_rates", std::move(faults));
    }
    s.set("repeats",
          JsonValue(static_cast<std::int64_t>(spec.repeats)));
    s.set("seed", JsonValue(spec.baseSeed));
    s.set("search", search::toJson(spec.search));
    return s;
}

} // namespace

JsonValue
toJson(const SearchResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("index",
          JsonValue(static_cast<std::int64_t>(r.point.index)));
    o.set("group", JsonValue(r.point.group));
    o.set("mesh", JsonValue(static_cast<std::int64_t>(r.point.mesh)));
    o.set("flow_control", JsonValue(afcsim::toString(r.point.fc)));
    o.set("repeat",
          JsonValue(static_cast<std::int64_t>(r.point.repeat)));
    o.set("seed", JsonValue(r.point.seed));
    o.set("pattern", JsonValue(r.point.ol.pattern));

    JsonValue probes = JsonValue::array();
    for (const auto &p : r.probes)
        probes.push(toJson(p));
    o.set("probes", std::move(probes));
    o.set("probe_count",
          JsonValue(static_cast<std::int64_t>(r.probes.size())));

    if (!r.error.empty()) {
        o.set("error", JsonValue(r.error));
        return o;
    }
    JsonValue bracket = JsonValue::object();
    bracket.set("lo", JsonValue(r.bracketLo));
    bracket.set("hi", JsonValue(r.bracketHi));
    o.set("bracket", std::move(bracket));
    o.set("converged", JsonValue(r.converged));
    o.set("optimum_rate", JsonValue(r.optimumRate));
    if (r.baselineAvgLatency > 0.0)
        o.set("baseline_avg_latency", JsonValue(r.baselineAvgLatency));
    o.set("final", exp::toJson(r.finalRun));
    o.set("final_pass", JsonValue(r.finalEval.pass));
    o.set("final_eval", toJson(r.finalEval));
    return o;
}

JsonValue
searchResultsToJson(const exp::ExperimentSpec &spec,
                    const std::vector<SearchResult> &results)
{
    JsonValue doc = JsonValue::object();
    doc.set("experiment", JsonValue(spec.name));
    if (!spec.description.empty())
        doc.set("description", JsonValue(spec.description));
    doc.set("spec", searchSpecToJson(spec));
    JsonValue searches = JsonValue::array();
    for (const auto &r : results)
        searches.push(toJson(r));
    doc.set("searches", std::move(searches));
    return doc;
}

std::string
searchResultsToCsv(const std::vector<SearchResult> &results)
{
    std::string out = csvRow({
        "index", "experiment", "group", "mesh", "flow_control",
        "repeat", "seed", "pattern", "probes", "converged",
        "optimum_rate", "bracket_lo", "bracket_hi",
        "final_accepted_rate", "final_avg_packet_latency",
        "final_p95_packet_latency", "final_p99_packet_latency",
        "final_saturated", "final_pass", "error",
    });
    // Shortest-round-trip numbers, same as the JSON sink.
    auto num = [](double v) { return JsonValue(v).dump(); };
    for (const auto &r : results) {
        bool failed = !r.error.empty();
        out += csvRow({
            std::to_string(r.point.index),
            r.point.experiment,
            r.point.group,
            std::to_string(r.point.mesh),
            afcsim::toString(r.point.fc),
            std::to_string(r.point.repeat),
            std::to_string(r.point.seed),
            r.point.ol.pattern,
            std::to_string(r.probes.size()),
            r.converged ? "1" : "0",
            failed ? "" : num(r.optimumRate),
            failed ? "" : num(r.bracketLo),
            failed ? "" : num(r.bracketHi),
            failed ? "" : num(r.finalRun.acceptedRate),
            failed ? "" : num(r.finalRun.avgPacketLatency),
            failed ? "" : num(r.finalRun.p95PacketLatency),
            failed ? "" : num(r.finalRun.p99PacketLatency),
            failed ? "" : (r.finalRun.saturated ? "1" : "0"),
            failed ? "" : (r.finalEval.pass ? "1" : "0"),
            r.error,
        });
    }
    return out;
}

} // namespace afcsim::search
