#include "search/search.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/error.hh"
#include "common/log.hh"

namespace afcsim::search
{

std::string
toString(ProbeStage s)
{
    switch (s) {
      case ProbeStage::Baseline:
        return "baseline";
      case ProbeStage::Bracket:
        return "bracket";
      case ProbeStage::Bisect:
        return "bisect";
    }
    return "?";
}

ProbeMetrics
metricsFromRun(const exp::RunResult &r)
{
    ProbeMetrics m;
    m.offeredRate = r.offeredRate;
    m.acceptedRate = r.acceptedRate;
    m.avgPacketLatency = r.avgPacketLatency;
    m.p50PacketLatency = r.p50PacketLatency;
    m.p95PacketLatency = r.p95PacketLatency;
    m.p99PacketLatency = r.p99PacketLatency;
    m.saturated = r.saturated;
    m.error = r.error;
    return m;
}

SearchController::SearchController(const SearchSpec &spec, ProbeFn probe)
    : spec_(spec),
      probe_(probe ? std::move(probe) : ProbeFn([](const exp::RunPoint &p) {
          return exp::executeRun(p);
      }))
{
}

SearchResult
SearchController::search(const exp::RunPoint &cell) const
{
    const SearchSpec &s = spec_;
    SearchResult out;
    out.point = cell;

    int ordinal = 0;
    double baselineLat = 0.0;
    auto canProbe = [&] { return ordinal < s.maxProbes; };
    auto probe = [&](double rate,
                     ProbeStage stage) -> const ProbeRecord & {
        exp::RunPoint p = cell;
        p.rate = rate;
        p.ol.injectionRate = rate;
        p.ol.warmupCycles = s.probeWarmup;
        p.ol.measureCycles = s.probeMeasure;
        // Probes run dark: they share the cell's run index, so
        // observability side files would collide with the testing
        // stage's, and tracing a dozen throwaway runs costs more
        // than the probes themselves.
        p.obsDir.clear();
        p.cfg.obs = ObsSpec{};
        exp::RunResult r = probe_(p);
        ProbeRecord rec;
        rec.ordinal = ordinal++;
        rec.stage = stage;
        rec.rate = rate;
        rec.metrics = metricsFromRun(r);
        rec.eval =
            evaluateCriteria(s.criteria, rec.metrics, baselineLat);
        rec.pass = rec.eval.pass;
        out.probes.push_back(std::move(rec));
        return out.probes.back();
    };

    if (s.criteria.kneeRatio > 0.0) {
        const ProbeRecord &b = probe(s.baselineRate,
                                     ProbeStage::Baseline);
        baselineLat = b.metrics.avgPacketLatency;
        out.baselineAvgLatency = baselineLat;
    }

    auto clampRate = [&](double r) {
        return std::min(std::max(r, s.minRate), s.maxRate);
    };

    // Search stage 1: exponential bracketing. Double upward from a
    // passing seed until a rate fails (or the cap passes); halve
    // downward from a failing seed until a rate passes.
    double lo = 0.0;
    double hi = 0.0;
    bool haveLo = false;
    bool haveHi = false;
    {
        double seed = clampRate(s.seedRate);
        const ProbeRecord &first = probe(seed, ProbeStage::Bracket);
        if (first.pass) {
            lo = seed;
            haveLo = true;
        } else {
            hi = seed;
            haveHi = true;
        }
    }
    if (haveLo) {
        while (!haveHi && lo < s.maxRate && canProbe()) {
            double r = std::min(lo * 2.0, s.maxRate);
            const ProbeRecord &p = probe(r, ProbeStage::Bracket);
            if (!p.pass) {
                hi = r;
                haveHi = true;
            } else {
                lo = r;
                if (r >= s.maxRate) {
                    // The cap itself is sustainable: the bracket
                    // collapses and the search is done.
                    hi = r;
                    haveHi = true;
                }
            }
        }
    } else {
        while (!haveLo && hi > s.minRate && canProbe()) {
            double r = std::max(hi / 2.0, s.minRate);
            const ProbeRecord &p = probe(r, ProbeStage::Bracket);
            if (p.pass) {
                lo = r;
                haveLo = true;
            } else {
                hi = r;
            }
        }
    }
    if (!haveLo) {
        out.bracketHi = hi;
        out.error = "no rate at or above min_rate met the criteria";
        return out;
    }

    // Search stage 2: bisect [pass, fail] down to the tolerance.
    while (haveHi && hi - lo > s.rateTolerance && canProbe()) {
        double mid = lo + (hi - lo) / 2.0;
        const ProbeRecord &p = probe(mid, ProbeStage::Bisect);
        if (p.pass)
            lo = mid;
        else
            hi = mid;
    }
    if (!haveHi)
        hi = lo; // probe budget ran out while still doubling
    out.bracketLo = lo;
    out.bracketHi = hi;
    out.converged = haveHi && hi - lo <= s.rateTolerance;
    out.optimumRate = lo;

    // Testing stage: re-measure the optimum at the full budget.
    exp::RunPoint fin = cell;
    fin.rate = out.optimumRate;
    fin.ol.injectionRate = out.optimumRate;
    if (s.finalWarmup > 0)
        fin.ol.warmupCycles = s.finalWarmup;
    if (s.finalMeasure > 0)
        fin.ol.measureCycles = s.finalMeasure;
    out.finalRun = probe_(fin);
    out.finalEval = evaluateCriteria(
        s.criteria, metricsFromRun(out.finalRun), baselineLat);
    return out;
}

namespace
{

void
putMetrics(ckpt::Writer &w, const ProbeMetrics &m)
{
    w.f64(m.offeredRate);
    w.f64(m.acceptedRate);
    w.f64(m.avgPacketLatency);
    w.f64(m.p50PacketLatency);
    w.f64(m.p95PacketLatency);
    w.f64(m.p99PacketLatency);
    w.b(m.saturated);
    w.str(m.error);
}

void
getMetrics(ckpt::Reader &r, ProbeMetrics &m)
{
    m.offeredRate = r.f64();
    m.acceptedRate = r.f64();
    m.avgPacketLatency = r.f64();
    m.p50PacketLatency = r.f64();
    m.p95PacketLatency = r.f64();
    m.p99PacketLatency = r.f64();
    m.saturated = r.b();
    m.error = r.str();
}

void
putEval(ckpt::Writer &w, const Evaluation &e)
{
    w.b(e.pass);
    w.u64(e.criteria.size());
    for (const CriterionResult &c : e.criteria) {
        w.str(c.name);
        w.b(c.pass);
        w.f64(c.value);
        w.f64(c.bound);
    }
}

void
getEval(ckpt::Reader &r, Evaluation &e)
{
    e.pass = r.b();
    std::uint64_t n = r.u64();
    e.criteria.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        CriterionResult c;
        c.name = r.str();
        c.pass = r.b();
        c.value = r.f64();
        c.bound = r.f64();
        e.criteria.push_back(std::move(c));
    }
}

/**
 * Load/run/store one cell against the journal, mirroring the
 * crash-safe executeRun discipline: done markers short-circuit, a
 * cell that crashed maxAttempts times degrades, and a completed
 * search lands atomically.
 */
SearchResult
searchCellJournaled(const SearchController &controller,
                    const SearchSpec &spec, const exp::RunPoint &cell,
                    const Journal &journal)
{
    std::string path = journal.resultPath(cell.index);
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        try {
            ckpt::Reader r(
                ckpt::readFile(path, ckpt::Kind::SearchResult), path);
            SearchResult out;
            getSearchResult(r, out);
            r.finish();
            out.point = cell;
            if (out.error.empty()) {
                // Reattach the testing-stage point exactly as the
                // controller built it (rate = optimum, final-budget
                // overrides), so the re-rendered documents match an
                // uninterrupted grid byte for byte.
                exp::RunPoint fin = cell;
                fin.rate = out.optimumRate;
                fin.ol.injectionRate = out.optimumRate;
                if (spec.finalWarmup > 0)
                    fin.ol.warmupCycles = spec.finalWarmup;
                if (spec.finalMeasure > 0)
                    fin.ol.measureCycles = spec.finalMeasure;
                out.finalRun.point = fin;
            }
            return out;
        } catch (const Error &e) {
            warn("discarding journal result '", path,
                 "' (cell will re-search): ", e.what());
        }
    }
    int attempt = journal.beginAttempt(cell.index);
    SearchResult out;
    if (attempt > journal.maxAttempts()) {
        out.point = cell;
        out.error = "degraded: " + std::to_string(attempt - 1) +
                    " attempts crashed before completing; giving up";
    } else {
        out = controller.search(cell);
    }
    ckpt::Writer w;
    putSearchResult(w, out);
    ckpt::writeFile(path, ckpt::Kind::SearchResult, w.bytes());
    journal.clearPointScratch(cell.index);
    return out;
}

} // namespace

void
putSearchResult(ckpt::Writer &w, const SearchResult &r)
{
    w.u64(r.probes.size());
    for (const ProbeRecord &p : r.probes) {
        w.i32(p.ordinal);
        w.u8(static_cast<std::uint8_t>(p.stage));
        w.f64(p.rate);
        w.b(p.pass);
        putMetrics(w, p.metrics);
        putEval(w, p.eval);
    }
    w.f64(r.bracketLo);
    w.f64(r.bracketHi);
    w.b(r.converged);
    w.f64(r.optimumRate);
    w.f64(r.baselineAvgLatency);
    exp::putRunResult(w, r.finalRun);
    putEval(w, r.finalEval);
    w.str(r.error);
}

void
getSearchResult(ckpt::Reader &r, SearchResult &out)
{
    std::uint64_t probes = r.u64();
    out.probes.clear();
    for (std::uint64_t i = 0; i < probes; ++i) {
        ProbeRecord p;
        p.ordinal = r.i32();
        p.stage = static_cast<ProbeStage>(r.u8());
        p.rate = r.f64();
        p.pass = r.b();
        getMetrics(r, p.metrics);
        getEval(r, p.eval);
        out.probes.push_back(std::move(p));
    }
    out.bracketLo = r.f64();
    out.bracketHi = r.f64();
    out.converged = r.b();
    out.optimumRate = r.f64();
    out.baselineAvgLatency = r.f64();
    exp::getRunResult(r, out.finalRun);
    getEval(r, out.finalEval);
    out.error = r.str();
}

std::vector<SearchResult>
runSearchGrid(const exp::ExperimentSpec &spec, int threads)
{
    return runSearchGrid(spec, threads, SearchProgressFn{});
}

std::vector<SearchResult>
runSearchGrid(const exp::ExperimentSpec &spec, int threads,
              const SearchProgressFn &progress)
{
    return runSearchGrid(spec, threads, progress, nullptr);
}

std::vector<SearchResult>
runSearchGrid(const exp::ExperimentSpec &spec, int threads,
              const SearchProgressFn &progress, Journal *journal)
{
    if (!spec.search.enabled)
        AFCSIM_CONFIG_ERROR("experiment '", spec.name,
                            "' is not a search spec (exp.search off)");
    std::vector<exp::RunPoint> cells = spec.expand();
    SearchController controller(spec.search);

    std::vector<SearchResult> results(cells.size());
    if (cells.empty())
        return results;

    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    int workers = std::min<int>(threads,
                                static_cast<int>(cells.size()));

    // Same discipline as exp::ParallelRunner: claim cells from an
    // atomic cursor, store by cell index, so documents rendered from
    // `results` are bit-identical for any worker count.
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> done{0};
    std::mutex progress_mutex;
    auto work = [&]() {
        for (;;) {
            std::size_t i = cursor.fetch_add(1);
            if (i >= cells.size())
                return;
            results[i] = journal
                ? searchCellJournaled(controller, spec.search,
                                      cells[i], *journal)
                : controller.search(cells[i]);
            int d = done.fetch_add(1) + 1;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progress(results[i], d,
                         static_cast<int>(cells.size()));
            }
        }
    };

    if (workers <= 1) {
        work();
        return results;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (auto &t : pool)
        t.join();
    return results;
}

} // namespace afcsim::search
