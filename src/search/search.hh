/**
 * @file
 * Adaptive load search on top of the experiment runner: find the
 * maximum sustainable injection rate per grid point against declared
 * criteria (criteria.hh), Nighthawk-style. Two stages:
 *
 *  - search stage: exponential bracketing from a seed rate (double
 *    while probes pass, halve while they fail) followed by bisection
 *    of the [pass, fail] bracket to the rate tolerance. Every probe
 *    is a short warmup+measure run through exp::executeRun's error
 *    boundary, so a faulted probe degrades to "criteria failed" and
 *    the search continues.
 *  - testing stage: re-run the converged optimum at the full
 *    measurement budget and evaluate it one more time.
 *
 * A search runs per expanded grid cell (mesh x pattern x fault x
 * repeat x flow control), so "saturation vs fault rate x FC mode" is
 * one spec. Cells execute under the ParallelRunner discipline —
 * claimed from an atomic cursor, results stored by cell index — so
 * the emitted documents are bit-identical for any thread count.
 */

#ifndef AFCSIM_SEARCH_SEARCH_HH
#define AFCSIM_SEARCH_SEARCH_HH

#include <functional>
#include <string>
#include <vector>

#include "exp/journal.hh"
#include "exp/result.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "search/criteria.hh"
#include "search/spec.hh"

namespace afcsim::search
{

using exp::Journal;

/**
 * Executes one probe point and returns its result. Defaults to
 * exp::executeRun; tests substitute synthetic functions to exercise
 * the controller without a simulator.
 */
using ProbeFn = std::function<exp::RunResult(const exp::RunPoint &)>;

/** What a probe was for. */
enum class ProbeStage
{
    Baseline, ///< low-load reference for the knee criterion
    Bracket,  ///< exponential bracketing from the seed rate
    Bisect,   ///< bisection inside the bracket
};

std::string toString(ProbeStage s);

/** One probe of the search stage. */
struct ProbeRecord
{
    int ordinal = 0; ///< probe sequence number within this search
    ProbeStage stage = ProbeStage::Bracket;
    double rate = 0.0;
    bool pass = false;
    ProbeMetrics metrics;
    Evaluation eval;
};

/** Outcome of one grid cell's search + testing stage. */
struct SearchResult
{
    exp::RunPoint point; ///< the grid cell searched
    std::vector<ProbeRecord> probes;
    /** Final bracket: highest passing and lowest failing rate. */
    double bracketLo = 0.0;
    double bracketHi = 0.0;
    bool converged = false;
    double optimumRate = 0.0;
    /** Baseline probe's mean latency (0 when no baseline ran). */
    double baselineAvgLatency = 0.0;
    /** Testing stage at the optimum (unset when `error` non-empty). */
    exp::RunResult finalRun;
    Evaluation finalEval;
    /**
     * Non-empty when the search itself failed — no passing rate at
     * or above min_rate within the probe budget. Individual probe
     * failures land in `probes`, never here.
     */
    std::string error;
};

/** Extract the criteria-visible slice of a finished run. */
ProbeMetrics metricsFromRun(const exp::RunResult &r);

/**
 * Bracketing/bisection controller for one grid cell. Stateless
 * across searches; every rate decision is a pure function of the
 * spec and the preceding probe outcomes, so a search is reproducible
 * whenever its probes are.
 */
class SearchController
{
  public:
    explicit SearchController(const SearchSpec &spec,
                              ProbeFn probe = {});

    /**
     * Run the full search for one cell. `cell.ol` carries the
     * testing-stage budgets; probe runs override rate/warmup/measure
     * and drop observability exports.
     */
    SearchResult search(const exp::RunPoint &cell) const;

  private:
    SearchSpec spec_;
    ProbeFn probe_;
};

/**
 * Run a search per expanded grid cell of a search-enabled spec
 * (spec.search.enabled; the spec lists no rates — the search finds
 * them). Results are in cell-index order regardless of `threads`.
 */
std::vector<SearchResult> runSearchGrid(const exp::ExperimentSpec &spec,
                                        int threads);

/**
 * Progress callback: finished search, done count, total cells.
 * Invoked under a mutex in grid-completion order.
 */
using SearchProgressFn =
    std::function<void(const SearchResult &, int, int)>;

std::vector<SearchResult> runSearchGrid(const exp::ExperimentSpec &spec,
                                        int threads,
                                        const SearchProgressFn &progress);

/**
 * Crash-safe variant (`afcsim-search --resume`): completed cells
 * load back from the journal's done markers (Kind::SearchResult), a
 * cell whose process crashed maxAttempts times degrades to an error
 * record, and everything else re-searches deterministically — so
 * the resumed documents are byte-identical to an uninterrupted grid.
 */
std::vector<SearchResult> runSearchGrid(const exp::ExperimentSpec &spec,
                                        int threads,
                                        const SearchProgressFn &progress,
                                        Journal *journal);

/// @name SearchResult journal serialization (Kind::SearchResult in
/// the ckpt/serial.hh container; exposed for the journal tests).
/// `point` is reattached from grid re-expansion, not serialized.
/// @{
void putSearchResult(ckpt::Writer &w, const SearchResult &r);
void getSearchResult(ckpt::Reader &r, SearchResult &out);
/// @}

/**
 * Full JSON document: spec echo plus one entry per search in cell
 * order. Deterministic — no wall-clock, no thread-count artifacts.
 */
JsonValue searchResultsToJson(const exp::ExperimentSpec &spec,
                              const std::vector<SearchResult> &results);

/** Serialize one search (used by searchResultsToJson; for tests). */
JsonValue toJson(const SearchResult &r);

/** Flat CSV: header + one row per search, cell order. */
std::string searchResultsToCsv(const std::vector<SearchResult> &results);

} // namespace afcsim::search

#endif // AFCSIM_SEARCH_SEARCH_HH
