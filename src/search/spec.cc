#include "search/spec.hh"

#include <cstdlib>

#include "common/error.hh"

namespace afcsim::search
{

namespace
{

double
toDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        AFCSIM_CONFIG_ERROR("search key '", key, "': bad number '",
                            value, "'");
    return v;
}

long
toInt(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        AFCSIM_CONFIG_ERROR("search key '", key, "': bad integer '",
                            value, "'");
    return v;
}

bool
toBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    AFCSIM_CONFIG_ERROR("search key '", key, "': bad boolean '",
                        value, "'");
}

} // namespace

void
SearchSpec::validate(const std::string &owner) const
{
    if (!enabled)
        return;
    if (seedRate <= 0.0 || seedRate > maxRate)
        AFCSIM_CONFIG_ERROR("experiment '", owner,
                            "': search seed_rate must be in (0, max_rate]");
    if (rateTolerance <= 0.0)
        AFCSIM_CONFIG_ERROR("experiment '", owner,
                            "': search tolerance must be positive");
    if (minRate < 0.0 || minRate >= maxRate)
        AFCSIM_CONFIG_ERROR("experiment '", owner,
                            "': search needs 0 <= min_rate < max_rate");
    if (maxProbes < 2)
        AFCSIM_CONFIG_ERROR("experiment '", owner,
                            "': search max_probes must be >= 2");
    if (probeWarmup == 0 || probeMeasure == 0)
        AFCSIM_CONFIG_ERROR("experiment '", owner,
                            "': search probe budgets must be positive");
    if (criteria.kneeRatio > 0.0 && baselineRate <= 0.0)
        AFCSIM_CONFIG_ERROR("experiment '", owner,
                            "': knee criterion needs baseline_rate > 0");
}

void
applySearchKey(SearchSpec &s, const std::string &key,
               const std::string &value)
{
    if (key == "enabled") {
        s.enabled = toBool(key, value);
    } else if (key == "seed_rate") {
        s.seedRate = toDouble(key, value);
    } else if (key == "tolerance") {
        s.rateTolerance = toDouble(key, value);
    } else if (key == "min_rate") {
        s.minRate = toDouble(key, value);
    } else if (key == "max_rate") {
        s.maxRate = toDouble(key, value);
    } else if (key == "max_probes") {
        s.maxProbes = static_cast<int>(toInt(key, value));
    } else if (key == "probe_warmup") {
        s.probeWarmup = static_cast<Cycle>(toInt(key, value));
    } else if (key == "probe_measure") {
        s.probeMeasure = static_cast<Cycle>(toInt(key, value));
    } else if (key == "final_warmup") {
        s.finalWarmup = static_cast<Cycle>(toInt(key, value));
    } else if (key == "final_measure") {
        s.finalMeasure = static_cast<Cycle>(toInt(key, value));
    } else if (key == "baseline_rate") {
        s.baselineRate = toDouble(key, value);
    } else if (key == "min_delivered") {
        s.criteria.minDeliveredFraction = toDouble(key, value);
    } else if (key == "max_avg_latency") {
        s.criteria.maxAvgLatency = toDouble(key, value);
    } else if (key == "max_p95_latency") {
        s.criteria.maxP95Latency = toDouble(key, value);
    } else if (key == "max_p99_latency") {
        s.criteria.maxP99Latency = toDouble(key, value);
    } else if (key == "knee_ratio") {
        s.criteria.kneeRatio = toDouble(key, value);
    } else if (key == "require_unsaturated") {
        s.criteria.requireUnsaturated = toBool(key, value);
    } else if (key == "require_clean") {
        s.criteria.requireClean = toBool(key, value);
    } else {
        AFCSIM_CONFIG_ERROR("unknown search key 'exp.search.", key, "'");
    }
}

JsonValue
toJson(const SearchSpec &s)
{
    JsonValue o = JsonValue::object();
    o.set("seed_rate", JsonValue(s.seedRate));
    o.set("tolerance", JsonValue(s.rateTolerance));
    o.set("min_rate", JsonValue(s.minRate));
    o.set("max_rate", JsonValue(s.maxRate));
    o.set("max_probes", JsonValue(static_cast<std::int64_t>(s.maxProbes)));
    o.set("probe_warmup", JsonValue(s.probeWarmup));
    o.set("probe_measure", JsonValue(s.probeMeasure));
    o.set("final_warmup", JsonValue(s.finalWarmup));
    o.set("final_measure", JsonValue(s.finalMeasure));
    o.set("baseline_rate", JsonValue(s.baselineRate));
    o.set("criteria", toJson(s.criteria));
    return o;
}

} // namespace afcsim::search
