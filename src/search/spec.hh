/**
 * @file
 * Search configuration: the `exp.search` block of an experiment
 * spec. Like criteria.hh this depends only on src/common so
 * exp/spec.hh can embed a SearchSpec by value.
 */

#ifndef AFCSIM_SEARCH_SPEC_HH
#define AFCSIM_SEARCH_SPEC_HH

#include <string>

#include "common/types.hh"
#include "search/criteria.hh"

namespace afcsim::search
{

/**
 * Parameters of one adaptive load search. The controller brackets
 * exponentially from `seedRate` (doubling while probes pass, halving
 * while they fail), then bisects the [pass, fail] bracket down to
 * `rateTolerance`, then re-measures the optimum at the testing-stage
 * budgets. Probes use the short probe budgets; the testing stage
 * falls back to the owning spec's warmup/measure when its own
 * budgets are 0.
 */
struct SearchSpec
{
    /** Search mode off by default; rate sweeps behave as before. */
    bool enabled = false;

    SearchCriteria criteria;

    /** First probed rate (flits/node/cycle). */
    double seedRate = 0.1;
    /** Stop bisecting when the bracket is at most this wide. */
    double rateTolerance = 0.002;
    /** Lowest rate worth probing; below it the search gives up. */
    double minRate = 0.001;
    /** Injection-rate ceiling (1 flit/node/cycle is the hard cap). */
    double maxRate = 1.0;
    /** Probe budget for bracketing + bisection (not the final run). */
    int maxProbes = 12;

    /** Warmup/measure budgets for search-stage probes. */
    Cycle probeWarmup = 1000;
    Cycle probeMeasure = 3000;
    /** Testing-stage budgets; 0 = the owning spec's warmup/measure. */
    Cycle finalWarmup = 0;
    Cycle finalMeasure = 0;

    /**
     * Rate of the low-load baseline probe the knee criterion
     * compares against. Only probed when criteria.kneeRatio > 0.
     */
    double baselineRate = 0.02;

    /** Validate ranges; throws ConfigError with the spec name. */
    void validate(const std::string &owner) const;
};

/**
 * Apply one `exp.search.<key> = value` setting (key passed without
 * the prefix). Throws ConfigError on unknown keys or bad values.
 * Keys: enabled, seed_rate, tolerance, min_rate, max_rate,
 * max_probes, probe_warmup, probe_measure, final_warmup,
 * final_measure, baseline_rate, min_delivered, max_avg_latency,
 * max_p95_latency, max_p99_latency, knee_ratio, require_unsaturated,
 * require_clean.
 */
void applySearchKey(SearchSpec &s, const std::string &key,
                    const std::string &value);

JsonValue toJson(const SearchSpec &s);

} // namespace afcsim::search

#endif // AFCSIM_SEARCH_SPEC_HH
