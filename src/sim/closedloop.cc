#include "sim/closedloop.hh"

#include "common/error.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"

namespace afcsim
{

ClosedLoopSystem::ClosedLoopSystem(const NetworkConfig &cfg,
                                   FlowControl fc,
                                   const WorkloadProfile &profile)
    : cfg_(cfg), profile_(profile), net_(cfg, fc)
{
    Rng root(cfg.seed, 0xc10c);
    int n = net_.mesh().numNodes();
    for (NodeId node = 0; node < n; ++node) {
        cores_.push_back(std::make_unique<Core>(
            node, cfg_, profile_, &net_.nic(node),
            root.fork(node * 2), &txCounter_));
        banks_.push_back(std::make_unique<L2Bank>(
            node, cfg_, profile_, &net_.nic(node),
            root.fork(node * 2 + 1)));
        Core *core = cores_.back().get();
        L2Bank *bank = banks_.back().get();
        net_.nic(node).setDeliveryHandler(
            [core, bank](const PacketInfo &info) {
                MsgType t = tagMsgType(info.tag);
                if (t == MsgType::DataResp || t == MsgType::Ack)
                    core->onResponse(info, info.deliverTime);
                else
                    bank->onRequest(info, info.deliverTime);
            });
    }
}

void
ClosedLoopSystem::tickAll(Cycle now)
{
    for (auto &core : cores_)
        core->tick(now);
    for (auto &bank : banks_)
        bank->tick(now);
}

std::uint64_t
ClosedLoopSystem::totalCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->completed();
    return total;
}

ClosedLoopResult
ClosedLoopSystem::run(Cycle max_cycles)
{
    if (max_cycles == 0)
        max_cycles = 100'000'000;

    // Warmup: run until the warmup transaction count completes.
    while (totalCompleted() < profile_.warmupTransactions &&
           net_.now() < max_cycles) {
        tickAll(net_.now());
        net_.step();
    }

    // Measurement window: reset end-to-end statistics and snapshot
    // cumulative counters.
    int n = net_.mesh().numNodes();
    for (NodeId node = 0; node < n; ++node)
        net_.nic(node).stats().reset();
    for (auto &core : cores_)
        core->resetStats();
    EnergyReport e0 = net_.aggregateEnergy();
    RouterStats r0 = net_.aggregateRouterStats();
    Cycle t0 = net_.now();
    if (net_.observability())
        net_.observability()->markWindow(t0);

    while (totalCompleted() < profile_.measureTransactions &&
           net_.now() < max_cycles) {
        tickAll(net_.now());
        net_.step();
    }

    AFCSIM_SIM_ASSERT(net_.now() < max_cycles,
                      "closed-loop run exceeded its cycle budget (",
                      max_cycles, " cycles) without completing: workload ",
                      profile_.name, " fc ",
                      toString(net_.flowControl()));

    ClosedLoopResult res;
    res.fc = net_.flowControl();
    res.workload = profile_.name;
    res.runtime = net_.now() - t0;
    res.transactions = totalCompleted();
    res.net = net_.aggregateStats();
    res.energy = net_.aggregateEnergy().diff(e0);
    res.obs = net_.observability();
    if (net_.faultInjector())
        res.faults = net_.faultInjector()->stats();

    double node_cycles = static_cast<double>(n) * res.runtime;
    res.injectionRate = node_cycles > 0
        ? res.net.flitsInjected / node_cycles : 0.0;
    RunningStat tx;
    for (const auto &core : cores_)
        tx.merge(core->txLatency());
    res.avgTxLatency = tx.mean();
    res.avgPacketLatency = res.net.packetLatency.mean();
    res.avgDeflections = res.net.deflections.mean();

    RouterStats r1 = net_.aggregateRouterStats();
    std::uint64_t bp = r1.cyclesBackpressured - r0.cyclesBackpressured;
    std::uint64_t bpl =
        r1.cyclesBackpressureless - r0.cyclesBackpressureless;
    res.bpFraction = (bp + bpl) ? static_cast<double>(bp) / (bp + bpl)
                                : 0.0;
    res.forwardSwitches = r1.forwardSwitches - r0.forwardSwitches;
    res.reverseSwitches = r1.reverseSwitches - r0.reverseSwitches;
    res.gossipSwitches = r1.gossipSwitches - r0.gossipSwitches;
    return res;
}

ClosedLoopResult
runClosedLoop(const NetworkConfig &cfg, FlowControl fc,
              const WorkloadProfile &profile, Cycle max_cycles)
{
    ClosedLoopSystem sys(cfg, fc, profile);
    return sys.run(max_cycles);
}

} // namespace afcsim
