#include "sim/closedloop.hh"

#include "ckpt/serial.hh"
#include "common/error.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"

namespace afcsim
{

ClosedLoopSystem::ClosedLoopSystem(const NetworkConfig &cfg,
                                   FlowControl fc,
                                   const WorkloadProfile &profile,
                                   Cycle max_cycles)
    : cfg_(cfg), profile_(profile),
      maxCycles_(max_cycles ? max_cycles : 100'000'000), net_(cfg, fc)
{
    Rng root(cfg.seed, 0xc10c);
    int n = net_.mesh().numNodes();
    for (NodeId node = 0; node < n; ++node) {
        cores_.push_back(std::make_unique<Core>(
            node, cfg_, profile_, &net_.nic(node),
            root.fork(node * 2), &txCounter_));
        banks_.push_back(std::make_unique<L2Bank>(
            node, cfg_, profile_, &net_.nic(node),
            root.fork(node * 2 + 1)));
        Core *core = cores_.back().get();
        L2Bank *bank = banks_.back().get();
        net_.nic(node).setDeliveryHandler(
            [core, bank](const PacketInfo &info) {
                MsgType t = tagMsgType(info.tag);
                if (t == MsgType::DataResp || t == MsgType::Ack)
                    core->onResponse(info, info.deliverTime);
                else
                    bank->onRequest(info, info.deliverTime);
            });
    }
}

void
ClosedLoopSystem::tickAll(Cycle now)
{
    for (auto &core : cores_)
        core->tick(now);
    for (auto &bank : banks_)
        bank->tick(now);
}

std::uint64_t
ClosedLoopSystem::totalCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->completed();
    return total;
}

void
ClosedLoopSystem::beginMeasurement()
{
    int n = net_.mesh().numNodes();
    for (NodeId node = 0; node < n; ++node)
        net_.nic(node).stats().reset();
    for (auto &core : cores_)
        core->resetStats();
    e0_ = net_.aggregateEnergy();
    r0_ = net_.aggregateRouterStats();
    t0_ = net_.now();
    if (net_.observability())
        net_.observability()->markWindow(t0_);
    phase_ = Phase::Measure;
}

void
ClosedLoopSystem::step()
{
    if (phase_ == Phase::Done)
        return;
    if (phase_ == Phase::Warmup &&
        totalCompleted() >= profile_.warmupTransactions)
        beginMeasurement();
    if (phase_ == Phase::Measure &&
        totalCompleted() >= profile_.measureTransactions) {
        phase_ = Phase::Done;
        return;
    }
    AFCSIM_SIM_ASSERT(net_.now() < maxCycles_,
                      "closed-loop run exceeded its cycle budget (",
                      maxCycles_, " cycles) without completing: workload ",
                      profile_.name, " fc ",
                      toString(net_.flowControl()));
    tickAll(net_.now());
    net_.step();
}

ClosedLoopResult
ClosedLoopSystem::finish()
{
    while (!done())
        step();

    int n = net_.mesh().numNodes();
    ClosedLoopResult res;
    res.fc = net_.flowControl();
    res.workload = profile_.name;
    res.runtime = net_.now() - t0_;
    res.transactions = totalCompleted();
    res.net = net_.aggregateStats();
    res.energy = net_.aggregateEnergy().diff(e0_);
    res.obs = net_.observability();
    if (net_.faultInjector())
        res.faults = net_.faultInjector()->stats();

    double node_cycles = static_cast<double>(n) * res.runtime;
    res.injectionRate = node_cycles > 0
        ? res.net.flitsInjected / node_cycles : 0.0;
    RunningStat tx;
    for (const auto &core : cores_)
        tx.merge(core->txLatency());
    res.avgTxLatency = tx.mean();
    res.avgPacketLatency = res.net.packetLatency.mean();
    res.avgDeflections = res.net.deflections.mean();

    RouterStats r1 = net_.aggregateRouterStats();
    std::uint64_t bp = r1.cyclesBackpressured - r0_.cyclesBackpressured;
    std::uint64_t bpl =
        r1.cyclesBackpressureless - r0_.cyclesBackpressureless;
    res.bpFraction = (bp + bpl) ? static_cast<double>(bp) / (bp + bpl)
                                : 0.0;
    res.forwardSwitches = r1.forwardSwitches - r0_.forwardSwitches;
    res.reverseSwitches = r1.reverseSwitches - r0_.reverseSwitches;
    res.gossipSwitches = r1.gossipSwitches - r0_.gossipSwitches;
    return res;
}

ClosedLoopResult
ClosedLoopSystem::run(Cycle max_cycles)
{
    if (max_cycles)
        maxCycles_ = max_cycles;
    return finish();
}

std::uint64_t
ClosedLoopSystem::paramsHash() const
{
    ckpt::Writer w;
    w.str(profile_.name);
    w.f64(profile_.issueProb);
    w.i32(profile_.mshrsPerCore);
    w.f64(profile_.readFraction);
    w.f64(profile_.writeFraction);
    w.f64(profile_.l2MissRate);
    w.i32(profile_.l2LatencyCycles);
    w.i32(profile_.memLatencyCycles);
    w.u64(profile_.measureTransactions);
    w.u64(profile_.warmupTransactions);
    w.u64(profile_.phases.period);
    w.u64(profile_.phases.altLength);
    w.f64(profile_.phases.altIssueProb);
    w.u64(maxCycles_);
    return ckpt::fnv1a(w.bytes().data(), w.bytes().size());
}

void
ClosedLoopSystem::ckptSave(ckpt::Writer &w) const
{
    w.u64(paramsHash());
    net_.ckptSave(w);
    w.u64(txCounter_);
    for (const auto &core : cores_)
        core->ckptSave(w);
    for (const auto &bank : banks_)
        bank->ckptSave(w);
    w.u8(static_cast<std::uint8_t>(phase_));
    for (double v : e0_.byComponent)
        w.f64(v);
    w.u64(r0_.flitsRouted);
    w.u64(r0_.flitsDeflected);
    w.u64(r0_.cyclesBackpressured);
    w.u64(r0_.cyclesBackpressureless);
    w.u64(r0_.forwardSwitches);
    w.u64(r0_.reverseSwitches);
    w.u64(r0_.gossipSwitches);
    w.u64(r0_.creditStalls);
    w.u64(t0_);
}

void
ClosedLoopSystem::ckptLoad(ckpt::Reader &r)
{
    std::uint64_t hash = r.u64();
    if (hash != paramsHash()) {
        AFCSIM_SIM_ERROR(
            "checkpoint harness mismatch: the snapshot was taken with "
            "different closed-loop parameters (workload knobs, "
            "transaction counts, or cycle budget)");
    }
    net_.ckptLoad(r);
    txCounter_ = r.u64();
    for (auto &core : cores_)
        core->ckptLoad(r);
    for (auto &bank : banks_)
        bank->ckptLoad(r);
    phase_ = static_cast<Phase>(r.u8());
    for (double &v : e0_.byComponent)
        v = r.f64();
    r0_.flitsRouted = r.u64();
    r0_.flitsDeflected = r.u64();
    r0_.cyclesBackpressured = r.u64();
    r0_.cyclesBackpressureless = r.u64();
    r0_.forwardSwitches = r.u64();
    r0_.reverseSwitches = r.u64();
    r0_.gossipSwitches = r.u64();
    r0_.creditStalls = r.u64();
    t0_ = r.u64();
}

void
ClosedLoopSystem::saveCheckpoint(const std::string &path) const
{
    ckpt::Writer w;
    ckptSave(w);
    ckpt::writeFile(path, ckpt::Kind::ClosedLoopRun, w.bytes());
}

void
ClosedLoopSystem::loadCheckpoint(const std::string &path)
{
    ckpt::Reader r(ckpt::readFile(path, ckpt::Kind::ClosedLoopRun), path);
    ckptLoad(r);
    r.finish();
}

ClosedLoopResult
runClosedLoop(const NetworkConfig &cfg, FlowControl fc,
              const WorkloadProfile &profile, Cycle max_cycles)
{
    ClosedLoopSystem sys(cfg, fc, profile, max_cycles);
    return sys.run();
}

} // namespace afcsim
