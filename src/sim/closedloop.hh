/**
 * @file
 * Closed-loop execution harness: wires cores and L2 banks to every
 * node of a network, runs a workload to a fixed transaction count,
 * and reports runtime / energy / network statistics — the
 * methodology behind Fig. 2, Fig. 3 and the mode-duty-cycle results.
 */

#ifndef AFCSIM_SIM_CLOSEDLOOP_HH
#define AFCSIM_SIM_CLOSEDLOOP_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "network/network.hh"
#include "sim/core.hh"
#include "sim/l2bank.hh"
#include "sim/workload.hh"

namespace afcsim
{

namespace obs
{
class Observability;
}

/** Outcome of one closed-loop run. */
struct ClosedLoopResult
{
    FlowControl fc;
    std::string workload;
    Cycle runtime = 0;             ///< measurement-window cycles
    std::uint64_t transactions = 0;
    double injectionRate = 0.0;    ///< flits/node/cycle, measured
    double avgTxLatency = 0.0;     ///< miss-to-response, cycles
    double avgPacketLatency = 0.0;
    double avgDeflections = 0.0;
    double bpFraction = 0.0;       ///< router-cycles backpressured
    std::uint64_t forwardSwitches = 0;
    std::uint64_t reverseSwitches = 0;
    std::uint64_t gossipSwitches = 0;
    EnergyReport energy;           ///< measurement window only
    NetStats net;
    FaultStats faults;             ///< whole run (zero if no faults)
    /**
     * Observability bundle (tracer + sampler); nullptr unless
     * cfg.obs enabled it. Never serialized into stats JSON.
     */
    std::shared_ptr<obs::Observability> obs;

    /** Performance = transactions per cycle (higher is better). */
    double
    throughput() const
    {
        return runtime ? static_cast<double>(transactions) / runtime : 0.0;
    }
};

/** A multicore CMP: one core + one L2 bank per mesh node. */
class ClosedLoopSystem
{
  public:
    ClosedLoopSystem(const NetworkConfig &cfg, FlowControl fc,
                     const WorkloadProfile &profile);

    /**
     * Run warmup transactions, then measure until the profile's
     * transaction count completes. `max_cycles` bounds runaway
     * configurations (0 = a large default).
     */
    ClosedLoopResult run(Cycle max_cycles = 0);

    Network &network() { return net_; }
    Core &core(NodeId n) { return *cores_.at(n); }
    L2Bank &bank(NodeId n) { return *banks_.at(n); }

  private:
    void tickAll(Cycle now);
    std::uint64_t totalCompleted() const;

    NetworkConfig cfg_;
    WorkloadProfile profile_;
    Network net_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<L2Bank>> banks_;
    std::uint64_t txCounter_ = 0;
};

/** Convenience: build and run in one call. */
ClosedLoopResult runClosedLoop(const NetworkConfig &cfg, FlowControl fc,
                               const WorkloadProfile &profile,
                               Cycle max_cycles = 0);

} // namespace afcsim

#endif // AFCSIM_SIM_CLOSEDLOOP_HH
