/**
 * @file
 * Closed-loop execution harness: wires cores and L2 banks to every
 * node of a network, runs a workload to a fixed transaction count,
 * and reports runtime / energy / network statistics — the
 * methodology behind Fig. 2, Fig. 3 and the mode-duty-cycle results.
 */

#ifndef AFCSIM_SIM_CLOSEDLOOP_HH
#define AFCSIM_SIM_CLOSEDLOOP_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "network/network.hh"
#include "sim/core.hh"
#include "sim/l2bank.hh"
#include "sim/workload.hh"

namespace afcsim
{

namespace obs
{
class Observability;
}

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Outcome of one closed-loop run. */
struct ClosedLoopResult
{
    FlowControl fc;
    std::string workload;
    Cycle runtime = 0;             ///< measurement-window cycles
    std::uint64_t transactions = 0;
    double injectionRate = 0.0;    ///< flits/node/cycle, measured
    double avgTxLatency = 0.0;     ///< miss-to-response, cycles
    double avgPacketLatency = 0.0;
    double avgDeflections = 0.0;
    double bpFraction = 0.0;       ///< router-cycles backpressured
    std::uint64_t forwardSwitches = 0;
    std::uint64_t reverseSwitches = 0;
    std::uint64_t gossipSwitches = 0;
    EnergyReport energy;           ///< measurement window only
    NetStats net;
    FaultStats faults;             ///< whole run (zero if no faults)
    /**
     * Observability bundle (tracer + sampler); nullptr unless
     * cfg.obs enabled it. Never serialized into stats JSON.
     */
    std::shared_ptr<obs::Observability> obs;

    /** Performance = transactions per cycle (higher is better). */
    double
    throughput() const
    {
        return runtime ? static_cast<double>(transactions) / runtime : 0.0;
    }
};

/**
 * A multicore CMP: one core + one L2 bank per mesh node.
 *
 * Like OpenLoopRun, the historical monolithic run() loop is unrolled
 * into a stepping harness: callers may pause at any cycle boundary,
 * snapshot complete simulator state (network + cores + banks + the
 * global transaction counter + harness phase/baselines) to a
 * checkpoint file, and restore an identically constructed system in
 * a fresh process — bit-identical to never having stopped. run()
 * remains `while (!done()) step(); finish()`, so cycle-for-cycle
 * behavior matches the historical loop exactly: warmup until the
 * warmup transaction count completes, a measurement-window reset
 * (stats cleared, energy/router baselines captured), measurement
 * until the measured transaction count completes, then the result
 * computation. Exceeding the cycle budget raises the same SimError
 * the monolithic loop raised.
 */
class ClosedLoopSystem
{
  public:
    /** `max_cycles` bounds runaway configurations (0 = a large
     *  default); run() may override it before stepping starts. */
    ClosedLoopSystem(const NetworkConfig &cfg, FlowControl fc,
                     const WorkloadProfile &profile,
                     Cycle max_cycles = 0);

    /**
     * Run warmup transactions, then measure until the profile's
     * transaction count completes. `max_cycles` bounds runaway
     * configurations (0 = keep the constructor's bound).
     */
    ClosedLoopResult run(Cycle max_cycles = 0);

    /// @name Stepping interface (mirrors OpenLoopRun).
    /// @{
    /** Cycles simulated so far. */
    Cycle cycle() const { return net_.now(); }
    /** The cycle budget (SimError when exceeded before completion). */
    Cycle maxCycles() const { return maxCycles_; }
    bool done() const { return phase_ == Phase::Done; }
    /** Simulate one cycle (no-op once done). */
    void step();
    /** Run any remaining cycles and compute the result. */
    ClosedLoopResult finish();
    /// @}

    /// @name Checkpointing (src/ckpt). save/load serialize the
    /// network, every core and bank, the global transaction counter
    /// and the harness phase/baselines, guarded by a hash of the
    /// workload parameters (the network checks its own config hash).
    /// saveCheckpoint()/loadCheckpoint() wrap the state in the
    /// versioned, checksummed container (Kind::ClosedLoopRun).
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    void saveCheckpoint(const std::string &path) const;
    void loadCheckpoint(const std::string &path);
    /// @}

    Network &network() { return net_; }
    Core &core(NodeId n) { return *cores_.at(n); }
    L2Bank &bank(NodeId n) { return *banks_.at(n); }

  private:
    enum class Phase : std::uint8_t
    {
        Warmup = 0,  ///< pre-measurement transactions completing
        Measure = 1, ///< measurement window open
        Done = 2,    ///< measured transaction count reached
    };

    void tickAll(Cycle now);
    std::uint64_t totalCompleted() const;
    /** Measurement-window reset at the warmup/measure boundary. */
    void beginMeasurement();
    /** Hash of the harness parameters (workload knobs + budget). */
    std::uint64_t paramsHash() const;

    NetworkConfig cfg_;
    WorkloadProfile profile_;
    Cycle maxCycles_;
    Network net_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<L2Bank>> banks_;
    std::uint64_t txCounter_ = 0;
    Phase phase_ = Phase::Warmup;
    /// @name Measurement baselines (captured at beginMeasurement()).
    /// @{
    EnergyReport e0_;
    RouterStats r0_;
    Cycle t0_ = 0;
    /// @}
};

/** Naming symmetry with OpenLoopRun for the crash-safe sweep layer. */
using ClosedLoopRun = ClosedLoopSystem;

/** Convenience: build and run in one call. */
ClosedLoopResult runClosedLoop(const NetworkConfig &cfg, FlowControl fc,
                               const WorkloadProfile &profile,
                               Cycle max_cycles = 0);

} // namespace afcsim

#endif // AFCSIM_SIM_CLOSEDLOOP_HH
