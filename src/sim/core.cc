#include "sim/core.hh"

#include <algorithm>
#include <vector>

#include "ckpt/state.hh"
#include "common/log.hh"

namespace afcsim
{

Core::Core(NodeId node, const NetworkConfig &cfg,
           const WorkloadProfile &profile, Nic *nic, Rng rng,
           std::uint64_t *tx_counter)
    : node_(node), cfg_(cfg), profile_(profile), nic_(nic), rng_(rng),
      txCounter_(tx_counter)
{
    AFCSIM_ASSERT(nic != nullptr && tx_counter != nullptr,
                  "core needs a NIC and a transaction counter");
}

void
Core::tick(Cycle now)
{
    double issue_prob = profile_.issueProb;
    const PhaseModulation &ph = profile_.phases;
    if (ph.period > 0 && now % ph.period < ph.altLength)
        issue_prob = ph.altIssueProb;
    if (!rng_.chance(issue_prob))
        return;
    if (outstanding_ >= profile_.mshrsPerCore) {
        ++mshrStalls_;
        return;
    }

    // Home L2 bank: address-interleaved, uniform over remote banks
    // (local-bank hits never reach the network).
    int n = cfg_.numNodes();
    NodeId dest = static_cast<NodeId>(rng_.below(n - 1));
    if (dest >= node_)
        ++dest;

    double r = rng_.uniform();
    MsgType type;
    int len;
    if (r < profile_.readFraction) {
        type = MsgType::ReadReq;
        len = cfg_.controlPacketFlits;
    } else if (r < profile_.readFraction + profile_.writeFraction) {
        type = MsgType::WriteReq;
        len = cfg_.controlPacketFlits;
    } else {
        type = MsgType::WbData;
        len = cfg_.dataPacketFlits;
    }

    std::uint64_t tx = (*txCounter_)++;
    nic_->sendPacket(dest, vnetFor(type), len, now, packTag(tx, type));
    issueTime_[tx] = now;
    ++outstanding_;
    ++issued_;
}

void
Core::onResponse(const PacketInfo &info, Cycle now)
{
    std::uint64_t tx = tagTxId(info.tag);
    auto it = issueTime_.find(tx);
    AFCSIM_ASSERT(it != issueTime_.end(),
                  "response for unknown transaction ", tx, " at core ",
                  node_);
    txLatency_.add(static_cast<double>(now - it->second));
    issueTime_.erase(it);
    --outstanding_;
    AFCSIM_ASSERT(outstanding_ >= 0, "MSHR underflow at core ", node_);
    ++completed_;
}

void
Core::ckptSave(ckpt::Writer &w) const
{
    ckpt::put(w, rng_);
    w.i32(outstanding_);
    w.u64(issued_);
    w.u64(completed_);
    w.u64(mshrStalls_);
    std::vector<std::pair<std::uint64_t, Cycle>> inflight(
        issueTime_.begin(), issueTime_.end());
    std::sort(inflight.begin(), inflight.end());
    w.u64(inflight.size());
    for (const auto &[tx, cycle] : inflight) {
        w.u64(tx);
        w.u64(cycle);
    }
    ckpt::put(w, txLatency_);
}

void
Core::ckptLoad(ckpt::Reader &r)
{
    rng_ = ckpt::getRng(r);
    outstanding_ = r.i32();
    issued_ = r.u64();
    completed_ = r.u64();
    mshrStalls_ = r.u64();
    std::uint64_t n = r.u64();
    issueTime_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t tx = r.u64();
        issueTime_[tx] = r.u64();
    }
    ckpt::get(r, txLatency_);
}

} // namespace afcsim
