/**
 * @file
 * Core model for the closed-loop substrate: a 4-way SMT out-of-order
 * core abstracted to its network-visible behaviour — a stream of L1
 * misses (transactions) bounded by 16 MSHRs (Table II). Issue
 * pressure is a per-cycle Bernoulli process whose probability is the
 * workload knob; when the network backs up, responses are delayed,
 * MSHRs fill, and injection self-throttles — the closed-loop
 * feedback the paper's methodology section insists on.
 */

#ifndef AFCSIM_SIM_CORE_HH
#define AFCSIM_SIM_CORE_HH

#include <cstdint>
#include <unordered_map>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "network/nic.hh"
#include "sim/memsys.hh"
#include "sim/workload.hh"

namespace afcsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** One core: issues transactions, retires them on response. */
class Core
{
  public:
    Core(NodeId node, const NetworkConfig &cfg,
         const WorkloadProfile &profile, Nic *nic, Rng rng,
         std::uint64_t *tx_counter);

    /** Maybe issue one transaction this cycle. */
    void tick(Cycle now);

    /** A response (DataResp or Ack) arrived for this core. */
    void onResponse(const PacketInfo &info, Cycle now);

    /// @name Checkpointing (src/ckpt). The in-flight transaction map
    /// is serialized sorted by transaction id, so the payload is a
    /// pure function of simulator state (not of hash-table layout).
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

    /// @name Statistics.
    /// @{
    std::uint64_t issued() const { return issued_; }
    std::uint64_t completed() const { return completed_; }
    int outstanding() const { return outstanding_; }
    std::uint64_t mshrStallCycles() const { return mshrStalls_; }
    /** Mean transaction (miss-to-response) latency in cycles. */
    const RunningStat &txLatency() const { return txLatency_; }
    void
    resetStats()
    {
        issued_ = 0;
        completed_ = 0;
        mshrStalls_ = 0;
        txLatency_.reset();
    }
    /// @}

  private:
    NodeId node_;
    const NetworkConfig &cfg_;
    WorkloadProfile profile_;
    Nic *nic_;
    Rng rng_;
    std::uint64_t *txCounter_;

    int outstanding_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t mshrStalls_ = 0;
    std::unordered_map<std::uint64_t, Cycle> issueTime_;
    RunningStat txLatency_;
};

} // namespace afcsim

#endif // AFCSIM_SIM_CORE_HH
