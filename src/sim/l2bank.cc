#include "sim/l2bank.hh"

#include "ckpt/state.hh"
#include "common/log.hh"

namespace afcsim
{

L2Bank::L2Bank(NodeId node, const NetworkConfig &cfg,
               const WorkloadProfile &profile, Nic *nic, Rng rng)
    : node_(node), cfg_(cfg), profile_(profile), nic_(nic), rng_(rng)
{
    AFCSIM_ASSERT(nic != nullptr, "bank needs a NIC");
}

void
L2Bank::onRequest(const PacketInfo &info, Cycle now)
{
    MsgType req = tagMsgType(info.tag);
    Cycle latency = profile_.l2LatencyCycles;
    // Reads may miss in L2 and pay the off-chip access time.
    if (req == MsgType::ReadReq && rng_.chance(profile_.l2MissRate))
        latency += profile_.memLatencyCycles;

    Response resp;
    resp.ready = now + latency;
    resp.dest = info.src;
    resp.txId = tagTxId(info.tag);
    switch (req) {
      case MsgType::ReadReq:
        resp.type = MsgType::DataResp;
        break;
      case MsgType::WriteReq:
      case MsgType::WbData:
        resp.type = MsgType::Ack;
        break;
      default:
        AFCSIM_PANIC("bank received a response-type message");
    }
    pending_.push(resp);
}

void
L2Bank::tick(Cycle now)
{
    while (!pending_.empty() && pending_.top().ready <= now) {
        const Response &r = pending_.top();
        int len = r.type == MsgType::DataResp ? cfg_.dataPacketFlits
                                              : cfg_.controlPacketFlits;
        nic_->sendPacket(r.dest, vnetFor(r.type), len, now,
                         packTag(r.txId, r.type));
        ++served_;
        pending_.pop();
    }
}

void
L2Bank::ckptSave(ckpt::Writer &w) const
{
    ckpt::put(w, rng_);
    w.u64(served_);
    w.u64(pending_.size());
    auto heap = pending_; // drain a copy in total (ready, txId) order
    while (!heap.empty()) {
        const Response &resp = heap.top();
        w.u64(resp.ready);
        w.i32(resp.dest);
        w.u8(static_cast<std::uint8_t>(resp.type));
        w.u64(resp.txId);
        heap.pop();
    }
}

void
L2Bank::ckptLoad(ckpt::Reader &r)
{
    rng_ = ckpt::getRng(r);
    served_ = r.u64();
    std::uint64_t n = r.u64();
    pending_ = {};
    for (std::uint64_t i = 0; i < n; ++i) {
        Response resp;
        resp.ready = r.u64();
        resp.dest = r.i32();
        resp.type = static_cast<MsgType>(r.u8());
        resp.txId = r.u64();
        pending_.push(resp);
    }
}

} // namespace afcsim
