/**
 * @file
 * Shared-L2 bank model: one bank per node (Table II: unified L2,
 * one bank per tile, 12-cycle latency; off-chip memory at 250
 * cycles for L2 misses). Requests arriving over the network are
 * serviced after the bank (plus possibly memory) latency and the
 * response is injected back toward the requesting core.
 */

#ifndef AFCSIM_SIM_L2BANK_HH
#define AFCSIM_SIM_L2BANK_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "network/nic.hh"
#include "sim/memsys.hh"
#include "sim/workload.hh"

namespace afcsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** One L2 bank: fixed-latency service of coherence requests. */
class L2Bank
{
  public:
    L2Bank(NodeId node, const NetworkConfig &cfg,
           const WorkloadProfile &profile, Nic *nic, Rng rng);

    /** A request (ReadReq / WriteReq / WbData) arrived at this bank. */
    void onRequest(const PacketInfo &info, Cycle now);

    /** Inject any responses whose service latency has elapsed. */
    void tick(Cycle now);

    std::uint64_t requestsServed() const { return served_; }
    std::size_t pendingResponses() const { return pending_.size(); }
    bool idle() const { return pending_.empty(); }

    /// @name Checkpointing (src/ckpt). The pending heap is drained
    /// in its pop order for serialization; the (ready, txId) total
    /// order makes that order — and therefore the restored bank's
    /// injection sequence — independent of the heap's internal
    /// array layout.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

  private:
    struct Response
    {
        Cycle ready;
        NodeId dest;
        MsgType type;
        std::uint64_t txId;
        // Min-heap on ready time; txId (unique per transaction)
        // breaks ties so pop order is a total order and survives
        // serialize/rebuild bit-identically.
        bool
        operator>(const Response &o) const
        {
            if (ready != o.ready)
                return ready > o.ready;
            return txId > o.txId;
        }
    };

    NodeId node_;
    const NetworkConfig &cfg_;
    WorkloadProfile profile_;
    Nic *nic_;
    Rng rng_;
    std::priority_queue<Response, std::vector<Response>,
                        std::greater<Response>> pending_;
    std::uint64_t served_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_SIM_L2BANK_HH
