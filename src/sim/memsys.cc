#include "sim/memsys.hh"

#include "common/log.hh"

namespace afcsim
{

VnetId
vnetFor(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq:
      case MsgType::WriteReq:
        return kVnetRequest;
      case MsgType::Ack:
        return kVnetResponse;
      case MsgType::WbData:
      case MsgType::DataResp:
        return kVnetData;
    }
    AFCSIM_PANIC("unknown message type");
}

} // namespace afcsim
