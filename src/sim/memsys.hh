/**
 * @file
 * Memory-system message vocabulary for the closed-loop multicore
 * substrate. The paper evaluates AFC under full-system GEMS
 * coherence traffic; we reproduce the network-visible behaviour:
 * request/response/data messages over 2 control virtual networks +
 * 1 data network (Table II), closed-loop limited by per-core MSHRs.
 *
 * Message classes and their virtual networks:
 *   - ReadReq / WriteReq (1 control flit, vnet 0): core -> L2 bank
 *   - Ack                (1 control flit, vnet 1): L2 bank -> core
 *   - WbData             (data packet,    vnet 2): core -> L2 bank
 *   - DataResp           (data packet,    vnet 2): L2 bank -> core
 *
 * Request/response separation across vnets provides protocol
 * deadlock freedom, exactly as in the paper's configuration.
 */

#ifndef AFCSIM_SIM_MEMSYS_HH
#define AFCSIM_SIM_MEMSYS_HH

#include <cstdint>

#include "common/types.hh"

namespace afcsim
{

/** Network message types of the coherence-style protocol. */
enum class MsgType : std::uint8_t
{
    ReadReq = 0,   ///< request a cache block
    WriteReq = 1,  ///< upgrade/ownership request (control only)
    WbData = 2,    ///< dirty writeback data
    DataResp = 3,  ///< data response to a ReadReq
    Ack = 4,       ///< control acknowledgment (WriteReq, WbData)
};

/** Virtual network assignments (Table II: 2 control + 1 data). */
inline constexpr VnetId kVnetRequest = 0;
inline constexpr VnetId kVnetResponse = 1;
inline constexpr VnetId kVnetData = 2;

/** Vnet a message type travels on. */
VnetId vnetFor(MsgType t);

/** Pack a (transaction id, message type) pair into a flit tag. */
inline std::uint64_t
packTag(std::uint64_t tx_id, MsgType t)
{
    return (tx_id << 4) | static_cast<std::uint64_t>(t);
}

inline std::uint64_t
tagTxId(std::uint64_t tag)
{
    return tag >> 4;
}

inline MsgType
tagMsgType(std::uint64_t tag)
{
    return static_cast<MsgType>(tag & 0xF);
}

} // namespace afcsim

#endif // AFCSIM_SIM_MEMSYS_HH
