#include "sim/workload.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace afcsim
{

// Issue probabilities are calibrated (see tests/workload_test.cc and
// bench_table3_workloads) so that the measured injection rate on the
// backpressured baseline approximates Table III.

WorkloadProfile
apacheWorkload()
{
    WorkloadProfile w;
    w.name = "apache";
    w.issueProb = 0.155;
    w.readFraction = 0.68;
    w.writeFraction = 0.14;
    w.l2MissRate = 0.15;
    w.measureTransactions = 40000;
    w.warmupTransactions = 6000;
    w.paperInjRate = 0.78;
    w.highLoad = true;
    return w;
}

WorkloadProfile
oltpWorkload()
{
    WorkloadProfile w;
    w.name = "oltp";
    w.issueProb = 0.090;
    // Brief quiet phases: the paper reports routers spending ~5 % of
    // oltp's execution in backpressureless mode.
    w.phases = {25000, 1500, 0.004};
    w.readFraction = 0.64;
    w.writeFraction = 0.18;
    w.l2MissRate = 0.20;
    w.measureTransactions = 40000;
    w.warmupTransactions = 6000;
    w.paperInjRate = 0.68;
    w.highLoad = true;
    return w;
}

WorkloadProfile
specjbbWorkload()
{
    WorkloadProfile w;
    w.name = "specjbb";
    w.issueProb = 0.142;
    w.readFraction = 0.72;
    w.writeFraction = 0.12;
    w.l2MissRate = 0.10;
    w.measureTransactions = 40000;
    w.warmupTransactions = 6000;
    w.paperInjRate = 0.77;
    w.highLoad = true;
    return w;
}

WorkloadProfile
barnesWorkload()
{
    WorkloadProfile w;
    w.name = "barnes";
    w.issueProb = 0.0111;
    w.readFraction = 0.74;
    w.writeFraction = 0.12;
    w.l2MissRate = 0.05;
    w.measureTransactions = 16000;
    w.warmupTransactions = 2500;
    w.paperInjRate = 0.10;
    return w;
}

WorkloadProfile
oceanWorkload()
{
    WorkloadProfile w;
    w.name = "ocean";
    w.issueProb = 0.0175;
    // Bursty phases: the paper reports routers spending ~7 % of
    // ocean's execution in backpressured mode.
    w.phases = {25000, 1800, 0.14};
    w.readFraction = 0.66;
    w.writeFraction = 0.14;
    w.l2MissRate = 0.10;
    w.measureTransactions = 16000;
    w.warmupTransactions = 2500;
    w.paperInjRate = 0.19;
    return w;
}

WorkloadProfile
waterWorkload()
{
    WorkloadProfile w;
    w.name = "water";
    w.issueProb = 0.0101;
    w.readFraction = 0.72;
    w.writeFraction = 0.14;
    w.l2MissRate = 0.03;
    w.measureTransactions = 16000;
    w.warmupTransactions = 2500;
    w.paperInjRate = 0.09;
    return w;
}

WorkloadProfile
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    AFCSIM_CONFIG_ERROR("unknown workload '", name, "'");
}

std::vector<WorkloadProfile>
allWorkloads()
{
    return {apacheWorkload(), oltpWorkload(), specjbbWorkload(),
            barnesWorkload(), oceanWorkload(), waterWorkload()};
}

std::vector<WorkloadProfile>
lowLoadWorkloads()
{
    return {barnesWorkload(), oceanWorkload(), waterWorkload()};
}

std::vector<WorkloadProfile>
highLoadWorkloads()
{
    return {apacheWorkload(), oltpWorkload(), specjbbWorkload()};
}

} // namespace afcsim
