/**
 * @file
 * Workload models replaying the paper's six benchmarks (Table III).
 *
 * We cannot run Apache/PostgreSQL/SPECjbb or SPLASH-2 binaries under
 * full-system simulation; instead each workload is modeled by the
 * network-visible parameters that drive the paper's results: issue
 * pressure (tuned so the measured injection rate matches Table
 * III's flits/node/cycle on the backpressured baseline), the
 * transaction mix, the L2 miss ratio, and the measurement length
 * (Table IV scaled to simulation cost). DESIGN.md documents this
 * substitution.
 */

#ifndef AFCSIM_SIM_WORKLOAD_HH
#define AFCSIM_SIM_WORKLOAD_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace afcsim
{

/**
 * Program-phase modulation: for `altLength` cycles out of every
 * `period`, the core issues at `altIssueProb` instead of its base
 * rate. Models the temporal load variation the paper reports for
 * ocean (bursty phases -> ~7 % backpressured residency) and oltp
 * (quiet phases -> ~5 % backpressureless residency). period == 0
 * disables modulation.
 */
struct PhaseModulation
{
    Cycle period = 0;
    Cycle altLength = 0;
    double altIssueProb = 0.0;
};

/** Parameters of one modeled workload. */
struct WorkloadProfile
{
    std::string name;
    /** Per-core per-cycle probability of issuing a transaction. */
    double issueProb;
    int mshrsPerCore = 16;     ///< Table II: 16 MSHRs per L1
    double readFraction = 0.70;
    double writeFraction = 0.15; ///< remainder are dirty writebacks
    double l2MissRate = 0.10;  ///< fraction served by off-chip memory
    int l2LatencyCycles = 12;  ///< Table II
    int memLatencyCycles = 250; ///< Table II
    /** Transactions measured (scaled analog of Table IV). */
    std::uint64_t measureTransactions = 20000;
    /** Transactions completed before measurement starts (warmup). */
    std::uint64_t warmupTransactions = 4000;
    PhaseModulation phases;
    /** Paper's reported injection rate, flits/node/cycle (Table III). */
    double paperInjRate = 0.0;
    bool highLoad = false;
};

/** The six workloads of Table III. */
WorkloadProfile apacheWorkload();
WorkloadProfile oltpWorkload();
WorkloadProfile specjbbWorkload();
WorkloadProfile barnesWorkload();
WorkloadProfile oceanWorkload();
WorkloadProfile waterWorkload();

/** Lookup by name ("apache", "oltp", ...); fatal if unknown. */
WorkloadProfile workloadByName(const std::string &name);

/** All six, commercial (high-load) first. */
std::vector<WorkloadProfile> allWorkloads();
/** Barnes, Ocean, Water. */
std::vector<WorkloadProfile> lowLoadWorkloads();
/** Apache, OLTP, SPECjbb. */
std::vector<WorkloadProfile> highLoadWorkloads();

} // namespace afcsim

#endif // AFCSIM_SIM_WORKLOAD_HH
