#include "topology/mesh.hh"

#include <cstdlib>

namespace afcsim
{

Direction
opposite(Direction d)
{
    switch (d) {
      case kEast: return kWest;
      case kWest: return kEast;
      case kNorth: return kSouth;
      case kSouth: return kNorth;
      default:
        AFCSIM_PANIC("opposite() of non-mesh direction ", d);
    }
}

std::string
dirName(int d)
{
    switch (d) {
      case kEast: return "E";
      case kWest: return "W";
      case kNorth: return "N";
      case kSouth: return "S";
      case kLocal: return "L";
      default: return "?";
    }
}

Mesh::Mesh(int width, int height)
    : width_(width), height_(height)
{
    AFCSIM_ASSERT(width >= 2 && height >= 2,
                  "mesh must be at least 2x2");
    neighbors_.resize(static_cast<std::size_t>(numNodes()));
    netPorts_.resize(static_cast<std::size_t>(numNodes()));
    for (NodeId n = 0; n < numNodes(); ++n) {
        Coord c = coordOf(n);
        auto &nbr = neighbors_[static_cast<std::size_t>(n)];
        nbr[kEast] =
            c.x + 1 < width_ ? nodeAt({c.x + 1, c.y}) : kInvalidNode;
        nbr[kWest] =
            c.x - 1 >= 0 ? nodeAt({c.x - 1, c.y}) : kInvalidNode;
        nbr[kSouth] =
            c.y + 1 < height_ ? nodeAt({c.x, c.y + 1}) : kInvalidNode;
        nbr[kNorth] =
            c.y - 1 >= 0 ? nodeAt({c.x, c.y - 1}) : kInvalidNode;
        int count = 0;
        for (int d = 0; d < kNumNetPorts; ++d) {
            if (nbr[d] != kInvalidNode)
                ++count;
        }
        netPorts_[static_cast<std::size_t>(n)] = count;
    }
}

RouterPosition
Mesh::positionOf(NodeId n) const
{
    switch (numNetPortsAt(n)) {
      case 2:
        return RouterPosition::Corner;
      case 3:
        return RouterPosition::Edge;
      case 4:
        return RouterPosition::Center;
      default:
        AFCSIM_PANIC("node ", n, " has unexpected port count");
    }
}

int
Mesh::hopDistance(NodeId a, NodeId b) const
{
    Coord ca = coordOf(a);
    Coord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

std::vector<NodeId>
Mesh::allNodes() const
{
    std::vector<NodeId> nodes;
    nodes.reserve(numNodes());
    for (NodeId n = 0; n < numNodes(); ++n)
        nodes.push_back(n);
    return nodes;
}

} // namespace afcsim
