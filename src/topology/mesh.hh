/**
 * @file
 * k-ary 2-mesh topology: node/coordinate algebra, port directions,
 * neighbor lookup, and router position classification (corner / edge
 * / center), which AFC's contention thresholds depend on (Sec. III-B:
 * "Because routers at edges and corners in a mesh have fewer ports,
 * their thresholds are scaled accordingly").
 */

#ifndef AFCSIM_TOPOLOGY_MESH_HH
#define AFCSIM_TOPOLOGY_MESH_HH

#include <array>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace afcsim
{

/**
 * Router port directions. The four mesh directions are network
 * ports; Local is the NIC injection/ejection port.
 */
enum Direction : int
{
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3,
    kLocal = 4,
    kNumPorts = 5,
    kNumNetPorts = 4,
};

/** Sentinel Direction for "no port available / not applicable". */
inline constexpr Direction kNoDirection = static_cast<Direction>(-1);

/** Opposite mesh direction (East <-> West, North <-> South). */
Direction opposite(Direction d);

/** Short name ("E", "W", "N", "S", "L") for traces and tests. */
std::string dirName(int d);

/** Position of a router within the mesh (per-class AFC thresholds). */
enum class RouterPosition { Corner, Edge, Center };

/** (x, y) coordinate in the mesh; x grows east, y grows south. */
struct Coord
{
    int x;
    int y;

    bool operator==(const Coord &o) const = default;
};

/**
 * A width x height 2D mesh. Node ids are row-major: id = y*W + x.
 */
class Mesh
{
  public:
    Mesh(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int numNodes() const { return width_ * height_; }

    Coord
    coordOf(NodeId n) const
    {
        AFCSIM_ASSERT(valid(n), "node ", n, " out of range");
        return {static_cast<int>(n) % width_, static_cast<int>(n) / width_};
    }

    NodeId
    nodeAt(Coord c) const
    {
        AFCSIM_ASSERT(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_,
                      "coord out of range");
        return static_cast<NodeId>(c.y * width_ + c.x);
    }

    bool
    valid(NodeId n) const
    {
        return n >= 0 && n < numNodes();
    }

    /**
     * Neighbor of node n in direction d, or kInvalidNode if d points
     * off the mesh edge. Table lookup: the per-node neighbor ids are
     * precomputed at construction (this is the single hottest query
     * in the simulator — the cycle kernel, the routing functions and
     * the deflection engine all sit on it).
     */
    NodeId
    neighbor(NodeId n, Direction d) const
    {
        AFCSIM_ASSERT(valid(n), "node ", n, " out of range");
        AFCSIM_ASSERT(d >= 0 && d < kNumNetPorts,
                      "neighbor() of non-mesh direction ", d);
        return neighbors_[static_cast<std::size_t>(n)][d];
    }

    /** True if node n has a link in direction d. */
    bool
    hasNeighbor(NodeId n, Direction d) const
    {
        return neighbor(n, d) != kInvalidNode;
    }

    /** Number of network (non-local) ports at node n (2, 3 or 4). */
    int
    numNetPortsAt(NodeId n) const
    {
        AFCSIM_ASSERT(valid(n), "node ", n, " out of range");
        return netPorts_[static_cast<std::size_t>(n)];
    }

    /** Corner / edge / center classification for AFC thresholds. */
    RouterPosition positionOf(NodeId n) const;

    /** Manhattan (minimal-route) hop distance between two nodes. */
    int hopDistance(NodeId a, NodeId b) const;

    /** All node ids, in row-major order (convenience for loops). */
    std::vector<NodeId> allNodes() const;

  private:
    int width_;
    int height_;
    /** Precomputed neighbor(n, d) table, kInvalidNode off-edge. */
    std::vector<std::array<NodeId, kNumNetPorts>> neighbors_;
    /** Precomputed numNetPortsAt(n). */
    std::vector<int> netPorts_;
};

} // namespace afcsim

#endif // AFCSIM_TOPOLOGY_MESH_HH
