#include "topology/routing.hh"

namespace afcsim
{

Direction
dorRoute(const Mesh &mesh, NodeId here, NodeId dest)
{
    AFCSIM_ASSERT(mesh.valid(here) && mesh.valid(dest),
                  "dorRoute: bad nodes ", here, " ", dest);
    Coord h = mesh.coordOf(here);
    Coord d = mesh.coordOf(dest);
    if (h.x < d.x)
        return kEast;
    if (h.x > d.x)
        return kWest;
    if (h.y < d.y)
        return kSouth;
    if (h.y > d.y)
        return kNorth;
    return kLocal;
}

PortSet
productivePorts(const Mesh &mesh, NodeId here, NodeId dest)
{
    PortSet set;
    Coord h = mesh.coordOf(here);
    Coord d = mesh.coordOf(dest);
    if (h.x < d.x)
        set.add(kEast);
    else if (h.x > d.x)
        set.add(kWest);
    if (h.y < d.y)
        set.add(kSouth);
    else if (h.y > d.y)
        set.add(kNorth);
    return set;
}

Direction
lookaheadRoute(const Mesh &mesh, NodeId here, Direction out_port,
               NodeId dest)
{
    if (out_port == kLocal)
        return kLocal;
    NodeId next = mesh.neighbor(here, out_port);
    AFCSIM_ASSERT(next != kInvalidNode,
                  "lookahead through missing link at node ", here);
    return dorRoute(mesh, next, dest);
}

} // namespace afcsim
