/**
 * @file
 * Routing functions over the mesh.
 *
 * The paper uses provably deadlock-free dimension-ordered routing
 * (DOR / XY) in backpressured mode (Sec. III-F), and minimal
 * ("productive") port preference with deflection in backpressureless
 * mode. Lookahead routing (LAR) computes the next-hop output port
 * one hop early (Table I).
 */

#ifndef AFCSIM_TOPOLOGY_ROUTING_HH
#define AFCSIM_TOPOLOGY_ROUTING_HH

#include <array>
#include <vector>

#include "topology/mesh.hh"

namespace afcsim
{

/** Small fixed-capacity list of candidate output ports. */
struct PortSet
{
    std::array<Direction, kNumNetPorts> ports{};
    int count = 0;

    void
    add(Direction d)
    {
        AFCSIM_ASSERT(count < kNumNetPorts, "PortSet overflow");
        ports[count++] = d;
    }

    bool
    contains(Direction d) const
    {
        for (int i = 0; i < count; ++i) {
            if (ports[i] == d)
                return true;
        }
        return false;
    }

    bool empty() const { return count == 0; }
};

/**
 * Dimension-ordered (XY) route: the unique next output port from
 * `here` toward `dest`. Returns kLocal when here == dest.
 */
Direction dorRoute(const Mesh &mesh, NodeId here, NodeId dest);

/**
 * Productive ports: every mesh direction that reduces the Manhattan
 * distance to `dest`. Empty set means here == dest (eject).
 * Deflection routers prefer these; DOR picks ports[0] after X-first
 * ordering.
 */
PortSet productivePorts(const Mesh &mesh, NodeId here, NodeId dest);

/**
 * Lookahead route: the DOR output port the flit will need at the
 * router on the far side of `out_port` from `here`.
 */
Direction lookaheadRoute(const Mesh &mesh, NodeId here, Direction out_port,
                         NodeId dest);

} // namespace afcsim

#endif // AFCSIM_TOPOLOGY_ROUTING_HH
