#include "traffic/injector.hh"

#include "ckpt/state.hh"

namespace afcsim
{

OpenLoopInjector::OpenLoopInjector(Network &net,
                                   const TrafficPattern &pattern,
                                   std::vector<double> rates,
                                   double data_fraction)
    : net_(net), pattern_(pattern), dataFraction_(data_fraction)
{
    init(std::move(rates), data_fraction);
}

OpenLoopInjector::OpenLoopInjector(Network &net,
                                   const TrafficPattern &pattern,
                                   double rate, double data_fraction)
    : net_(net), pattern_(pattern), dataFraction_(data_fraction)
{
    init(std::vector<double>(net.mesh().numNodes(), rate),
         data_fraction);
}

void
OpenLoopInjector::init(std::vector<double> rates, double data_fraction)
{
    const NetworkConfig &cfg = net_.config();
    AFCSIM_ASSERT(rates.size() ==
                  static_cast<std::size_t>(net_.mesh().numNodes()),
                  "one rate per node required");
    AFCSIM_ASSERT(data_fraction >= 0.0 && data_fraction <= 1.0,
                  "data fraction out of range");
    double mean_len = data_fraction * cfg.dataPacketFlits +
        (1.0 - data_fraction) * cfg.controlPacketFlits;
    Rng root(cfg.seed, 0x1f1ec7);
    for (NodeId n = 0; n < net_.mesh().numNodes(); ++n) {
        double p = rates[n] / mean_len;
        AFCSIM_ASSERT(p <= 1.0, "offered rate too high for Bernoulli "
                      "injection at node ", n);
        packetProb_.push_back(p);
        rngs_.push_back(root.fork(n));
    }
}

void
OpenLoopInjector::tick(Cycle now)
{
    const NetworkConfig &cfg = net_.config();
    for (NodeId n = 0; n < net_.mesh().numNodes(); ++n) {
        Rng &rng = rngs_[n];
        if (!rng.chance(packetProb_[n]))
            continue;
        NodeId dest = pattern_.pick(n, rng, now);
        bool data = rng.chance(dataFraction_);
        int len = data ? cfg.dataPacketFlits : cfg.controlPacketFlits;
        // Control packets split across the two control vnets; data
        // goes on the data vnet (Table II: 2 control + 1 data).
        VnetId vnet;
        if (data) {
            vnet = static_cast<VnetId>(cfg.numVnets() - 1);
        } else {
            vnet = static_cast<VnetId>(
                cfg.numVnets() > 2 ? rng.below(cfg.numVnets() - 1) : 0);
        }
        net_.nic(n).sendPacket(dest, vnet, len, now);
        offeredFlits_ += len;
    }
}

void
OpenLoopInjector::ckptSave(ckpt::Writer &w) const
{
    w.u64(rngs_.size());
    for (const Rng &rng : rngs_)
        ckpt::put(w, rng);
    w.u64(offeredFlits_);
}

void
OpenLoopInjector::ckptLoad(ckpt::Reader &r)
{
    std::uint64_t n = r.u64();
    AFCSIM_ASSERT(n == rngs_.size(),
                  "injector checkpoint: node count mismatch");
    for (Rng &rng : rngs_)
        rng = ckpt::getRng(r);
    offeredFlits_ = r.u64();
}

} // namespace afcsim
