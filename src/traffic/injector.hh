/**
 * @file
 * Open-loop Bernoulli packet injector: offers a fixed flit rate per
 * node (possibly different per node, as in the Sec. V-B quadrant
 * experiment) with a configurable control/data packet mix.
 */

#ifndef AFCSIM_TRAFFIC_INJECTOR_HH
#define AFCSIM_TRAFFIC_INJECTOR_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "network/network.hh"
#include "traffic/patterns.hh"

namespace afcsim
{

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/**
 * Per-cycle packet source driving every NIC of a network. Rates are
 * in flits/node/cycle; the injector converts them to packet
 * probabilities using the expected packet length of the configured
 * control/data mix.
 */
class OpenLoopInjector
{
  public:
    /**
     * @param net the network to drive
     * @param pattern destination selector (shared across nodes)
     * @param rates offered load per node, flits/node/cycle
     * @param data_fraction fraction of packets that are data packets
     */
    OpenLoopInjector(Network &net, const TrafficPattern &pattern,
                     std::vector<double> rates, double data_fraction);

    /** Convenience: uniform rate across all nodes. */
    OpenLoopInjector(Network &net, const TrafficPattern &pattern,
                     double rate, double data_fraction);

    /** Generate this cycle's packets (call before Network::step). */
    void tick(Cycle now);

    /** Flits offered so far (counts generated, queued or not). */
    std::uint64_t offeredFlits() const { return offeredFlits_; }

    /** Reset the offered counter (at measurement-window start). */
    void resetOffered() { offeredFlits_ = 0; }

    double packetProbability(NodeId n) const { return packetProb_.at(n); }

    /// @name Bit-exact snapshot/restore (src/ckpt): the per-node RNG
    /// streams and the offered-flit counter. Rates and probabilities
    /// are reconstructed from the constructor arguments.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    /// @}

  private:
    void init(std::vector<double> rates, double data_fraction);

    Network &net_;
    const TrafficPattern &pattern_;
    double dataFraction_;
    std::vector<double> packetProb_;
    std::vector<Rng> rngs_;
    std::uint64_t offeredFlits_ = 0;
};

} // namespace afcsim

#endif // AFCSIM_TRAFFIC_INJECTOR_HH
