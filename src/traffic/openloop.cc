#include "traffic/openloop.hh"

#include "ckpt/serial.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

namespace afcsim
{

OpenLoopRun::OpenLoopRun(const NetworkConfig &cfg, FlowControl fc,
                         const OpenLoopConfig &ol,
                         std::vector<double> rates)
    : ol_(ol), rates_(std::move(rates)), net_(cfg, fc),
      pattern_(makePattern(ol.pattern, net_.mesh())),
      inj_(net_, *pattern_, rates_, ol.dataPacketFraction)
{
}

Cycle
OpenLoopRun::totalCycles() const
{
    return ol_.warmupCycles + ol_.measureCycles;
}

void
OpenLoopRun::beginMeasurement()
{
    int n = net_.mesh().numNodes();
    for (NodeId node = 0; node < n; ++node)
        net_.nic(node).stats().reset();
    inj_.resetOffered();
    e0_ = net_.aggregateEnergy();
    r0_ = net_.aggregateRouterStats();
    if (net_.observability())
        net_.observability()->markWindow(net_.now());
    queued0_ = 0;
    for (NodeId node = 0; node < n; ++node)
        queued0_ += net_.nic(node).queuedFlits();
    phase_ = Phase::Measure;
}

void
OpenLoopRun::step()
{
    if (phase_ == Phase::Done)
        return;
    if (phase_ == Phase::Warmup && net_.now() >= ol_.warmupCycles)
        beginMeasurement();
    if (phase_ == Phase::Measure && net_.now() >= totalCycles()) {
        phase_ = Phase::Done; // zero-length measurement window
        return;
    }
    inj_.tick(net_.now());
    net_.step();
    if (phase_ == Phase::Measure && net_.now() >= totalCycles())
        phase_ = Phase::Done;
}

OpenLoopResult
OpenLoopRun::finish(QuadrantResult *quadrant_out)
{
    while (!done())
        step();

    Network &net = net_;
    int n = net.mesh().numNodes();
    OpenLoopResult res;
    res.fc = net.flowControl();
    res.measuredCycles = ol_.measureCycles;
    res.obs = net.observability(); // outlives the network
    res.stats = net.aggregateStats();
    res.energy = net.aggregateEnergy().diff(e0_);
    if (net.faultInjector())
        res.faults = net.faultInjector()->stats();

    double node_cycles = static_cast<double>(n) * ol_.measureCycles;
    res.offeredRate = inj_.offeredFlits() / node_cycles;
    res.acceptedRate = res.stats.flitsDelivered / node_cycles;
    res.avgPacketLatency = res.stats.packetLatency.mean();
    res.p50PacketLatency = res.stats.packetLatencyPct.quantile(0.5);
    res.p95PacketLatency = res.stats.packetLatencyPct.quantile(0.95);
    res.p99PacketLatency = res.stats.packetLatencyPct.quantile(0.99);
    res.avgFlitLatency = res.stats.flitLatency.mean();
    res.avgHops = res.stats.hops.mean();
    res.avgDeflections = res.stats.deflections.mean();
    if (res.stats.flitsDelivered > 0) {
        res.energyPerFlit =
            res.energy.total() / res.stats.flitsDelivered;
    }

    RouterStats r1 = net.aggregateRouterStats();
    std::uint64_t bp = r1.cyclesBackpressured - r0_.cyclesBackpressured;
    std::uint64_t bpl =
        r1.cyclesBackpressureless - r0_.cyclesBackpressureless;
    res.bpFraction = (bp + bpl) ? static_cast<double>(bp) / (bp + bpl)
                                : 0.0;

    std::uint64_t queued1 = 0;
    for (NodeId node = 0; node < n; ++node)
        queued1 += net.nic(node).queuedFlits();
    bool queue_growth = queued1 >
        queued0_ + static_cast<std::uint64_t>(n) * 16;
    res.saturated = queue_growth ||
        res.acceptedRate < 0.9 * res.offeredRate;

    if (quadrant_out != nullptr) {
        const auto *qp = dynamic_cast<const QuadrantPattern *>(
            pattern_.get());
        AFCSIM_ASSERT(qp != nullptr, "quadrant stats need the "
                      "quadrant pattern");
        std::array<RunningStat, 4> lat;
        for (NodeId node = 0; node < n; ++node) {
            int q = qp->quadrantOf(node);
            lat[q].merge(net.nic(node).stats().packetLatency);
        }
        for (int q = 0; q < 4; ++q) {
            quadrant_out->quadrantPacketLatency[q] = lat[q].mean();
            quadrant_out->quadrantPackets[q] = lat[q].count();
        }
        for (NodeId node = 0; node < n; ++node) {
            quadrant_out->nodeUtilization.push_back(
                net.nodeUtilization(node));
        }
    }
    return res;
}

std::uint64_t
OpenLoopRun::paramsHash() const
{
    ckpt::Writer w;
    w.str(ol_.pattern);
    w.u64(ol_.warmupCycles);
    w.u64(ol_.measureCycles);
    w.u64(ol_.drainCycles);
    w.f64(ol_.dataPacketFraction);
    w.u64(rates_.size());
    for (double rate : rates_)
        w.f64(rate);
    return ckpt::fnv1a(w.bytes().data(), w.bytes().size());
}

void
OpenLoopRun::ckptSave(ckpt::Writer &w) const
{
    w.u64(paramsHash());
    net_.ckptSave(w);
    inj_.ckptSave(w);
    w.u8(static_cast<std::uint8_t>(phase_));
    for (double v : e0_.byComponent)
        w.f64(v);
    w.u64(r0_.flitsRouted);
    w.u64(r0_.flitsDeflected);
    w.u64(r0_.cyclesBackpressured);
    w.u64(r0_.cyclesBackpressureless);
    w.u64(r0_.forwardSwitches);
    w.u64(r0_.reverseSwitches);
    w.u64(r0_.gossipSwitches);
    w.u64(r0_.creditStalls);
    w.u64(queued0_);
}

void
OpenLoopRun::ckptLoad(ckpt::Reader &r)
{
    std::uint64_t hash = r.u64();
    if (hash != paramsHash()) {
        AFCSIM_SIM_ERROR(
            "checkpoint harness mismatch: the snapshot was taken with "
            "different open-loop parameters (pattern, rates, or "
            "warmup/measure windows)");
    }
    net_.ckptLoad(r);
    inj_.ckptLoad(r);
    phase_ = static_cast<Phase>(r.u8());
    for (double &v : e0_.byComponent)
        v = r.f64();
    r0_.flitsRouted = r.u64();
    r0_.flitsDeflected = r.u64();
    r0_.cyclesBackpressured = r.u64();
    r0_.cyclesBackpressureless = r.u64();
    r0_.forwardSwitches = r.u64();
    r0_.reverseSwitches = r.u64();
    r0_.gossipSwitches = r.u64();
    r0_.creditStalls = r.u64();
    queued0_ = r.u64();
}

std::uint64_t
OpenLoopRun::warmupHash() const
{
    ckpt::Writer w;
    w.u64(net_.configHash());
    w.str(ol_.pattern);
    w.u64(ol_.warmupCycles);
    w.f64(ol_.dataPacketFraction);
    w.u64(rates_.size());
    for (double rate : rates_)
        w.f64(rate);
    return ckpt::fnv1a(w.bytes().data(), w.bytes().size());
}

void
OpenLoopRun::saveWarmupFork(const std::string &path) const
{
    AFCSIM_SIM_ASSERT(phase_ == Phase::Warmup &&
                      net_.now() == ol_.warmupCycles,
                      "warm-up fork must be saved exactly at the "
                      "warm-up boundary");
    ckpt::Writer w;
    w.u64(warmupHash());
    net_.ckptSave(w);
    inj_.ckptSave(w);
    ckpt::writeFile(path, ckpt::Kind::WarmupFork, w.bytes());
}

void
OpenLoopRun::loadWarmupFork(const std::string &path)
{
    AFCSIM_SIM_ASSERT(net_.now() == 0,
                      "warm-up fork restores into a fresh run");
    ckpt::Reader r(ckpt::readFile(path, ckpt::Kind::WarmupFork), path);
    std::uint64_t hash = r.u64();
    if (hash != warmupHash()) {
        AFCSIM_SIM_ERROR(
            "warm-up fork mismatch: '", path, "' holds a different "
            "warm-up prefix (config, pattern, rates or warm-up "
            "window differ)");
    }
    net_.ckptLoad(r);
    inj_.ckptLoad(r);
    r.finish();
}

void
OpenLoopRun::saveCheckpoint(const std::string &path) const
{
    ckpt::Writer w;
    ckptSave(w);
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, w.bytes());
}

void
OpenLoopRun::loadCheckpoint(const std::string &path)
{
    ckpt::Reader r(ckpt::readFile(path, ckpt::Kind::OpenLoopRun), path);
    ckptLoad(r);
    r.finish();
}

OpenLoopResult
runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
            const OpenLoopConfig &ol)
{
    Mesh mesh(cfg.width, cfg.height);
    std::vector<double> rates(mesh.numNodes(), ol.injectionRate);
    OpenLoopRun run(cfg, fc, ol, std::move(rates));
    return run.finish();
}

OpenLoopResult
runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
            const OpenLoopConfig &ol,
            const std::vector<double> &per_node_rates)
{
    OpenLoopRun run(cfg, fc, ol, per_node_rates);
    return run.finish();
}

QuadrantResult
runQuadrantExperiment(const NetworkConfig &cfg, FlowControl fc,
                      const OpenLoopConfig &ol, double hot_rate,
                      double cool_rate)
{
    Mesh mesh(cfg.width, cfg.height);
    QuadrantPattern qp(mesh);
    std::vector<double> rates(mesh.numNodes(), cool_rate);
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        if (qp.quadrantOf(n) == 0)
            rates[n] = hot_rate; // NW quadrant runs hot (Sec. V-B)
    }
    OpenLoopConfig ol2 = ol;
    ol2.pattern = "quadrant";
    QuadrantResult out;
    OpenLoopRun run(cfg, fc, ol2, std::move(rates));
    out.overall = run.finish(&out);
    return out;
}

} // namespace afcsim
