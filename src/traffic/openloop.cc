#include "traffic/openloop.hh"

#include "fault/fault.hh"
#include "obs/obs.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

namespace afcsim
{

namespace
{

OpenLoopResult
runImpl(const NetworkConfig &cfg, FlowControl fc, const OpenLoopConfig &ol,
        const std::vector<double> &rates,
        QuadrantResult *quadrant_out)
{
    Network net(cfg, fc);
    auto pattern = makePattern(ol.pattern, net.mesh());
    OpenLoopInjector inj(net, *pattern, rates, ol.dataPacketFraction);

    for (Cycle c = 0; c < ol.warmupCycles; ++c) {
        inj.tick(net.now());
        net.step();
    }

    // Measurement window: reset end-to-end stats and snapshot
    // cumulative counters (energy, router activity).
    int n = net.mesh().numNodes();
    for (NodeId node = 0; node < n; ++node)
        net.nic(node).stats().reset();
    inj.resetOffered();
    EnergyReport e0 = net.aggregateEnergy();
    RouterStats r0 = net.aggregateRouterStats();
    if (net.observability())
        net.observability()->markWindow(net.now());
    std::uint64_t queued0 = 0;
    for (NodeId node = 0; node < n; ++node)
        queued0 += net.nic(node).queuedFlits();

    for (Cycle c = 0; c < ol.measureCycles; ++c) {
        inj.tick(net.now());
        net.step();
    }

    OpenLoopResult res;
    res.fc = fc;
    res.measuredCycles = ol.measureCycles;
    res.obs = net.observability(); // outlives the network below
    res.stats = net.aggregateStats();
    res.energy = net.aggregateEnergy().diff(e0);
    if (net.faultInjector())
        res.faults = net.faultInjector()->stats();

    double node_cycles = static_cast<double>(n) * ol.measureCycles;
    res.offeredRate = inj.offeredFlits() / node_cycles;
    res.acceptedRate = res.stats.flitsDelivered / node_cycles;
    res.avgPacketLatency = res.stats.packetLatency.mean();
    res.p50PacketLatency = res.stats.packetLatencyPct.quantile(0.5);
    res.p95PacketLatency = res.stats.packetLatencyPct.quantile(0.95);
    res.p99PacketLatency = res.stats.packetLatencyPct.quantile(0.99);
    res.avgFlitLatency = res.stats.flitLatency.mean();
    res.avgHops = res.stats.hops.mean();
    res.avgDeflections = res.stats.deflections.mean();
    if (res.stats.flitsDelivered > 0) {
        res.energyPerFlit =
            res.energy.total() / res.stats.flitsDelivered;
    }

    RouterStats r1 = net.aggregateRouterStats();
    std::uint64_t bp = r1.cyclesBackpressured - r0.cyclesBackpressured;
    std::uint64_t bpl =
        r1.cyclesBackpressureless - r0.cyclesBackpressureless;
    res.bpFraction = (bp + bpl) ? static_cast<double>(bp) / (bp + bpl)
                                : 0.0;

    std::uint64_t queued1 = 0;
    for (NodeId node = 0; node < n; ++node)
        queued1 += net.nic(node).queuedFlits();
    bool queue_growth = queued1 >
        queued0 + static_cast<std::uint64_t>(n) * 16;
    res.saturated = queue_growth ||
        res.acceptedRate < 0.9 * res.offeredRate;

    if (quadrant_out != nullptr) {
        const auto *qp = dynamic_cast<const QuadrantPattern *>(
            pattern.get());
        AFCSIM_ASSERT(qp != nullptr, "quadrant stats need the "
                      "quadrant pattern");
        std::array<RunningStat, 4> lat;
        for (NodeId node = 0; node < n; ++node) {
            int q = qp->quadrantOf(node);
            lat[q].merge(net.nic(node).stats().packetLatency);
        }
        for (int q = 0; q < 4; ++q) {
            quadrant_out->quadrantPacketLatency[q] = lat[q].mean();
            quadrant_out->quadrantPackets[q] = lat[q].count();
        }
        for (NodeId node = 0; node < n; ++node) {
            quadrant_out->nodeUtilization.push_back(
                net.nodeUtilization(node));
        }
    }
    return res;
}

} // namespace

OpenLoopResult
runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
            const OpenLoopConfig &ol)
{
    Mesh mesh(cfg.width, cfg.height);
    std::vector<double> rates(mesh.numNodes(), ol.injectionRate);
    return runImpl(cfg, fc, ol, rates, nullptr);
}

OpenLoopResult
runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
            const OpenLoopConfig &ol,
            const std::vector<double> &per_node_rates)
{
    return runImpl(cfg, fc, ol, per_node_rates, nullptr);
}

QuadrantResult
runQuadrantExperiment(const NetworkConfig &cfg, FlowControl fc,
                      const OpenLoopConfig &ol, double hot_rate,
                      double cool_rate)
{
    Mesh mesh(cfg.width, cfg.height);
    QuadrantPattern qp(mesh);
    std::vector<double> rates(mesh.numNodes(), cool_rate);
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        if (qp.quadrantOf(n) == 0)
            rates[n] = hot_rate; // NW quadrant runs hot (Sec. V-B)
    }
    OpenLoopConfig ol2 = ol;
    ol2.pattern = "quadrant";
    QuadrantResult out;
    out.overall = runImpl(cfg, fc, ol2, rates, &out);
    return out;
}

} // namespace afcsim
