/**
 * @file
 * Open-loop experiment harness: warmup, measurement and reporting
 * for synthetic-traffic runs (the paper's "Other results" latency
 * sweeps and the Sec. V-B spatial-variation experiment).
 */

#ifndef AFCSIM_TRAFFIC_OPENLOOP_HH
#define AFCSIM_TRAFFIC_OPENLOOP_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "network/network.hh"

namespace afcsim
{

namespace obs
{
class Observability;
}

/** Outcome of one open-loop run at a fixed offered load. */
struct OpenLoopResult
{
    FlowControl fc;
    double offeredRate = 0.0;      ///< flits/node/cycle offered
    double acceptedRate = 0.0;     ///< flits/node/cycle delivered
    double avgPacketLatency = 0.0; ///< cycles, source-queue included
    double p50PacketLatency = 0.0; ///< median packet latency (exact)
    double p95PacketLatency = 0.0; ///< upper-tail packet latency (exact)
    double p99PacketLatency = 0.0; ///< tail packet latency (exact)
    double avgFlitLatency = 0.0;   ///< cycles, network only
    double avgHops = 0.0;
    double avgDeflections = 0.0;   ///< per delivered flit
    double energyPerFlit = 0.0;    ///< pJ per delivered flit
    double bpFraction = 0.0;       ///< router-cycles backpressured
    bool saturated = false;
    Cycle measuredCycles = 0;
    NetStats stats;
    EnergyReport energy;
    /** Injected-fault counters for the whole run (zero if no faults). */
    FaultStats faults;
    /**
     * Observability bundle (tracer + sampler), kept alive past the
     * network's destruction; nullptr unless cfg.obs enabled it.
     * Never serialized into stats JSON.
     */
    std::shared_ptr<obs::Observability> obs;
};

/**
 * Run one open-loop experiment: build a network, warm it up, then
 * measure for the configured window. Per-node rates allow spatial
 * variation; the uniform-rate overload fills them in.
 */
OpenLoopResult runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
                           const OpenLoopConfig &ol);

OpenLoopResult runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
                           const OpenLoopConfig &ol,
                           const std::vector<double> &per_node_rates);

/**
 * Per-quadrant view of an open-loop run (Sec. V-B): average packet
 * latency of traffic originating in each quadrant.
 */
struct QuadrantResult
{
    OpenLoopResult overall;
    std::array<double, 4> quadrantPacketLatency{};
    std::array<std::uint64_t, 4> quadrantPackets{};
    /** Per-node network-link utilization (flits/cycle), row-major —
     * the congestion heatmap showing whether the hot quadrant's
     * misrouting spreads into its neighbors (Sec. V-B). */
    std::vector<double> nodeUtilization;
};

/** Run the Sec. V-B consolidation experiment (quadrant pattern). */
QuadrantResult runQuadrantExperiment(const NetworkConfig &cfg,
                                     FlowControl fc,
                                     const OpenLoopConfig &ol,
                                     double hot_rate, double cool_rate);

} // namespace afcsim

#endif // AFCSIM_TRAFFIC_OPENLOOP_HH
