/**
 * @file
 * Open-loop experiment harness: warmup, measurement and reporting
 * for synthetic-traffic runs (the paper's "Other results" latency
 * sweeps and the Sec. V-B spatial-variation experiment).
 */

#ifndef AFCSIM_TRAFFIC_OPENLOOP_HH
#define AFCSIM_TRAFFIC_OPENLOOP_HH

#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "energy/energy.hh"
#include "fault/fault.hh"
#include "network/network.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

namespace afcsim
{

namespace obs
{
class Observability;
}

namespace ckpt
{
class Writer;
class Reader;
} // namespace ckpt

/** Outcome of one open-loop run at a fixed offered load. */
struct OpenLoopResult
{
    FlowControl fc;
    double offeredRate = 0.0;      ///< flits/node/cycle offered
    double acceptedRate = 0.0;     ///< flits/node/cycle delivered
    double avgPacketLatency = 0.0; ///< cycles, source-queue included
    double p50PacketLatency = 0.0; ///< median packet latency (exact)
    double p95PacketLatency = 0.0; ///< upper-tail packet latency (exact)
    double p99PacketLatency = 0.0; ///< tail packet latency (exact)
    double avgFlitLatency = 0.0;   ///< cycles, network only
    double avgHops = 0.0;
    double avgDeflections = 0.0;   ///< per delivered flit
    double energyPerFlit = 0.0;    ///< pJ per delivered flit
    double bpFraction = 0.0;       ///< router-cycles backpressured
    bool saturated = false;
    Cycle measuredCycles = 0;
    NetStats stats;
    EnergyReport energy;
    /** Injected-fault counters for the whole run (zero if no faults). */
    FaultStats faults;
    /**
     * Observability bundle (tracer + sampler), kept alive past the
     * network's destruction; nullptr unless cfg.obs enabled it.
     * Never serialized into stats JSON.
     */
    std::shared_ptr<obs::Observability> obs;
};

/**
 * Per-quadrant view of an open-loop run (Sec. V-B): average packet
 * latency of traffic originating in each quadrant.
 */
struct QuadrantResult;

/**
 * A resumable open-loop run: the warmup/measure loop of runOpenLoop
 * unrolled into a stepping object so callers can pause at any cycle
 * boundary, snapshot complete simulator state to a checkpoint file,
 * and later restore an identically constructed run in a fresh
 * process — bit-identical to never having stopped (the crash-safe
 * sweep machinery in src/exp is built on this; the differential
 * suite in tests/ckpt_diff_test.cc proves the bit-identity).
 *
 * Cycle-for-cycle behavior is identical to the historical monolithic
 * loop: warmupCycles injected-and-stepped cycles, a measurement-window
 * reset (stats cleared, energy/router baselines captured), then
 * measureCycles more, then the result computation.
 */
class OpenLoopRun
{
  public:
    OpenLoopRun(const NetworkConfig &cfg, FlowControl fc,
                const OpenLoopConfig &ol, std::vector<double> rates);

    /** Cycles this run simulates in total (warmup + measure). */
    Cycle totalCycles() const;
    /** Cycles simulated so far. */
    Cycle cycle() const { return net_.now(); }
    bool done() const { return phase_ == Phase::Done; }
    const Network &network() const { return net_; }

    /** Simulate one cycle (no-op once done). */
    void step();

    /**
     * Run any remaining cycles and compute the result. When
     * `quadrant_out` is non-null the run must use the quadrant
     * pattern; its per-quadrant stats are filled in.
     */
    OpenLoopResult finish(QuadrantResult *quadrant_out = nullptr);

    /// @name Checkpointing (src/ckpt). save/load serialize the
    /// network, injector RNG streams and harness phase/baselines,
    /// guarded by a hash of the harness parameters (the network
    /// checks its own config hash). saveCheckpoint()/loadCheckpoint()
    /// wrap the state in the versioned, checksummed, atomically
    /// written container of ckpt/serial.hh. Only valid at cycle
    /// boundaries — which is everywhere, since step() is atomic.
    /// @{
    void ckptSave(ckpt::Writer &w) const;
    void ckptLoad(ckpt::Reader &r);
    void saveCheckpoint(const std::string &path) const;
    void loadCheckpoint(const std::string &path);
    /// @}

    /// @name Shared warm-up forking. Runs that differ only in their
    /// post-warm-up parameters (measurement/drain budgets) simulate
    /// an identical warm-up prefix: the boundary placement never
    /// feeds back into the dynamics, beginMeasurement() only resets
    /// counters. saveWarmupFork() snapshots network + injector at
    /// exactly the warm-up boundary — after the step() that advanced
    /// the clock to warmupCycles, before the next step() runs the
    /// measurement-window reset — keyed by warmupHash() so a grid
    /// simulates each distinct prefix once and forks the rest.
    /// @{
    /** Hash of the warm-up-determining parameters: network config +
     *  flow control, pattern, per-node rates, data fraction and
     *  warmupCycles — NOT the measurement/drain budgets. */
    std::uint64_t warmupHash() const;
    /** Snapshot the warm-up prefix; only valid with the clock at the
     *  warm-up boundary and the measurement window not yet opened. */
    void saveWarmupFork(const std::string &path) const;
    /** Adopt a saved prefix into this freshly constructed run (clock
     *  at 0); SimError if the file's warmupHash doesn't match. */
    void loadWarmupFork(const std::string &path);
    /// @}

  private:
    enum class Phase : std::uint8_t
    {
        Warmup = 0,  ///< pre-measurement cycles
        Measure = 1, ///< measurement window open
        Done = 2,    ///< measureCycles elapsed
    };

    /** Measurement-window reset at the warmup/measure boundary. */
    void beginMeasurement();
    /** Hash of the harness parameters (rates, pattern, windows). */
    std::uint64_t paramsHash() const;

    OpenLoopConfig ol_;
    std::vector<double> rates_;
    Network net_;
    std::unique_ptr<TrafficPattern> pattern_;
    OpenLoopInjector inj_;
    Phase phase_ = Phase::Warmup;
    /// @name Measurement baselines (captured at beginMeasurement()).
    /// @{
    EnergyReport e0_;
    RouterStats r0_;
    std::uint64_t queued0_ = 0;
    /// @}
};

/**
 * Run one open-loop experiment: build a network, warm it up, then
 * measure for the configured window. Per-node rates allow spatial
 * variation; the uniform-rate overload fills them in.
 */
OpenLoopResult runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
                           const OpenLoopConfig &ol);

OpenLoopResult runOpenLoop(const NetworkConfig &cfg, FlowControl fc,
                           const OpenLoopConfig &ol,
                           const std::vector<double> &per_node_rates);

/**
 * Per-quadrant view of an open-loop run (Sec. V-B): average packet
 * latency of traffic originating in each quadrant.
 */
struct QuadrantResult
{
    OpenLoopResult overall;
    std::array<double, 4> quadrantPacketLatency{};
    std::array<std::uint64_t, 4> quadrantPackets{};
    /** Per-node network-link utilization (flits/cycle), row-major —
     * the congestion heatmap showing whether the hot quadrant's
     * misrouting spreads into its neighbors (Sec. V-B). */
    std::vector<double> nodeUtilization;
};

/** Run the Sec. V-B consolidation experiment (quadrant pattern). */
QuadrantResult runQuadrantExperiment(const NetworkConfig &cfg,
                                     FlowControl fc,
                                     const OpenLoopConfig &ol,
                                     double hot_rate, double cool_rate);

} // namespace afcsim

#endif // AFCSIM_TRAFFIC_OPENLOOP_HH
