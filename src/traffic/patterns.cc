#include "traffic/patterns.hh"

#include "common/error.hh"
#include "common/log.hh"

namespace afcsim
{

NodeId
UniformPattern::pick(NodeId src, Rng &rng) const
{
    int n = mesh_.numNodes();
    AFCSIM_ASSERT(n > 1, "uniform pattern needs > 1 node");
    NodeId dest = static_cast<NodeId>(rng.below(n - 1));
    if (dest >= src)
        ++dest;
    return dest;
}

TransposePattern::TransposePattern(const Mesh &mesh)
    : mesh_(mesh), fallback_(mesh)
{
    if (mesh.width() != mesh.height())
        AFCSIM_CONFIG_ERROR("transpose pattern requires a square mesh");
}

NodeId
TransposePattern::pick(NodeId src, Rng &rng) const
{
    Coord c = mesh_.coordOf(src);
    NodeId dest = mesh_.nodeAt({c.y, c.x});
    if (dest == src)
        return fallback_.pick(src, rng);
    return dest;
}

NodeId
BitComplementPattern::pick(NodeId src, Rng &rng) const
{
    Coord c = mesh_.coordOf(src);
    NodeId dest = mesh_.nodeAt(
        {mesh_.width() - 1 - c.x, mesh_.height() - 1 - c.y});
    if (dest == src)
        return fallback_.pick(src, rng);
    return dest;
}

HotspotPattern::HotspotPattern(const Mesh &mesh, NodeId hot,
                               double hot_fraction)
    : mesh_(mesh), hot_(hot), hotFraction_(hot_fraction), fallback_(mesh)
{
    AFCSIM_ASSERT(mesh.valid(hot), "hotspot node out of range");
    AFCSIM_ASSERT(hot_fraction >= 0.0 && hot_fraction <= 1.0,
                  "hot fraction out of range");
}

NodeId
HotspotPattern::pick(NodeId src, Rng &rng) const
{
    if (src != hot_ && rng.chance(hotFraction_))
        return hot_;
    return fallback_.pick(src, rng);
}

DriftingHotspotPattern::DriftingHotspotPattern(const Mesh &mesh,
                                               double hot_fraction,
                                               Cycle period)
    : mesh_(mesh), hotFraction_(hot_fraction), period_(period),
      fallback_(mesh)
{
    AFCSIM_ASSERT(hot_fraction >= 0.0 && hot_fraction <= 1.0,
                  "hot fraction out of range");
    if (period < 1)
        AFCSIM_CONFIG_ERROR("hotspot drift period must be >= 1 cycle");
}

NodeId
DriftingHotspotPattern::hotAt(Cycle now) const
{
    return static_cast<NodeId>(
        (now / period_) % static_cast<Cycle>(mesh_.numNodes()));
}

NodeId
DriftingHotspotPattern::pick(NodeId src, Rng &rng) const
{
    return pick(src, rng, 0);
}

NodeId
DriftingHotspotPattern::pick(NodeId src, Rng &rng, Cycle now) const
{
    NodeId hot = hotAt(now);
    if (src != hot && rng.chance(hotFraction_))
        return hot;
    return fallback_.pick(src, rng);
}

NodeId
NearNeighborPattern::pick(NodeId src, Rng &rng) const
{
    NodeId nbrs[kNumNetPorts];
    int count = 0;
    for (int d = 0; d < kNumNetPorts; ++d) {
        NodeId n = mesh_.neighbor(src, static_cast<Direction>(d));
        if (n != kInvalidNode)
            nbrs[count++] = n;
    }
    AFCSIM_ASSERT(count > 0, "isolated node");
    return nbrs[rng.below(count)];
}

QuadrantPattern::QuadrantPattern(const Mesh &mesh)
    : mesh_(mesh)
{
    if (mesh.width() < 4 || mesh.height() < 4)
        AFCSIM_CONFIG_ERROR("quadrant pattern needs at least a 4x4 mesh");
}

int
QuadrantPattern::quadrantOf(NodeId n) const
{
    Coord c = mesh_.coordOf(n);
    int east = c.x >= mesh_.width() / 2 ? 1 : 0;
    int south = c.y >= mesh_.height() / 2 ? 1 : 0;
    return south * 2 + east;
}

NodeId
QuadrantPattern::pick(NodeId src, Rng &rng) const
{
    int q = quadrantOf(src);
    int x0 = (q % 2) * (mesh_.width() / 2);
    int y0 = (q / 2) * (mesh_.height() / 2);
    int qw = (q % 2) ? mesh_.width() - mesh_.width() / 2
                     : mesh_.width() / 2;
    int qh = (q / 2) ? mesh_.height() - mesh_.height() / 2
                     : mesh_.height() / 2;
    for (;;) {
        int x = x0 + static_cast<int>(rng.below(qw));
        int y = y0 + static_cast<int>(rng.below(qh));
        NodeId dest = mesh_.nodeAt({x, y});
        if (dest != src)
            return dest;
    }
}

std::unique_ptr<TrafficPattern>
makePattern(const std::string &name, const Mesh &mesh)
{
    if (name == "uniform")
        return std::make_unique<UniformPattern>(mesh);
    if (name == "transpose")
        return std::make_unique<TransposePattern>(mesh);
    if (name == "bitcomp")
        return std::make_unique<BitComplementPattern>(mesh);
    if (name == "hotspot") {
        NodeId center = mesh.nodeAt({mesh.width() / 2, mesh.height() / 2});
        return std::make_unique<HotspotPattern>(mesh, center, 0.2);
    }
    if (name == "hotspot_drift") {
        // Same 20 % hot share as "hotspot"; the hot node walks the
        // mesh row-major, one step every 512 cycles.
        return std::make_unique<DriftingHotspotPattern>(mesh, 0.2, 512);
    }
    if (name == "neighbor")
        return std::make_unique<NearNeighborPattern>(mesh);
    if (name == "quadrant")
        return std::make_unique<QuadrantPattern>(mesh);
    AFCSIM_CONFIG_ERROR("unknown traffic pattern '", name, "'");
}

} // namespace afcsim
