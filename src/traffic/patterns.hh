/**
 * @file
 * Synthetic traffic patterns for open-loop evaluation: uniform
 * random, transpose, bit-complement, hotspot, near-neighbor (the
 * "easy" pattern discussed in Sec. III-B), and the quadrant-
 * partitioned consolidation pattern of Sec. V-B (traffic injected
 * in a quadrant stays within the quadrant).
 */

#ifndef AFCSIM_TRAFFIC_PATTERNS_HH
#define AFCSIM_TRAFFIC_PATTERNS_HH

#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"
#include "topology/mesh.hh"

namespace afcsim
{

/** Destination selector for synthetically generated packets. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /**
     * Pick a destination for a packet injected at `src`; never
     * returns src itself.
     */
    virtual NodeId pick(NodeId src, Rng &rng) const = 0;

    /**
     * Time-aware variant used by the injector: non-stationary
     * patterns (hotspot drift) key their target off the cycle.
     * Defaults to the stationary pick().
     */
    virtual NodeId
    pick(NodeId src, Rng &rng, Cycle now) const
    {
        (void)now;
        return pick(src, rng);
    }

    virtual std::string name() const = 0;
};

/** Uniformly random destination over all other nodes. */
class UniformPattern : public TrafficPattern
{
  public:
    explicit UniformPattern(const Mesh &mesh) : mesh_(mesh) {}
    NodeId pick(NodeId src, Rng &rng) const override;
    std::string name() const override { return "uniform"; }

  private:
    const Mesh &mesh_;
};

/** (x, y) -> (y, x); self-addressed picks fall back to uniform. */
class TransposePattern : public TrafficPattern
{
  public:
    explicit TransposePattern(const Mesh &mesh);
    NodeId pick(NodeId src, Rng &rng) const override;
    std::string name() const override { return "transpose"; }

  private:
    const Mesh &mesh_;
    UniformPattern fallback_;
};

/** (x, y) -> (W-1-x, H-1-y); center nodes fall back to uniform. */
class BitComplementPattern : public TrafficPattern
{
  public:
    explicit BitComplementPattern(const Mesh &mesh)
        : mesh_(mesh), fallback_(mesh)
    {
    }
    NodeId pick(NodeId src, Rng &rng) const override;
    std::string name() const override { return "bitcomp"; }

  private:
    const Mesh &mesh_;
    UniformPattern fallback_;
};

/** With probability `hotFraction` target the hotspot, else uniform. */
class HotspotPattern : public TrafficPattern
{
  public:
    HotspotPattern(const Mesh &mesh, NodeId hot, double hot_fraction);
    NodeId pick(NodeId src, Rng &rng) const override;
    std::string name() const override { return "hotspot"; }

  private:
    const Mesh &mesh_;
    NodeId hot_;
    double hotFraction_;
    UniformPattern fallback_;
};

/**
 * Non-stationary hotspot: like HotspotPattern, but the hot node
 * migrates deterministically every `period` cycles, walking the mesh
 * in row-major order. Traffic the static threshold tuning never saw
 * (DESIGN.md S22 ablation); the hot node is a pure function of the
 * cycle, so runs stay deterministic across shards/threads/restores.
 */
class DriftingHotspotPattern : public TrafficPattern
{
  public:
    DriftingHotspotPattern(const Mesh &mesh, double hot_fraction,
                           Cycle period);
    NodeId pick(NodeId src, Rng &rng) const override;
    NodeId pick(NodeId src, Rng &rng, Cycle now) const override;
    std::string name() const override { return "hotspot_drift"; }

    /** The hot node at cycle `now`. */
    NodeId hotAt(Cycle now) const;

  private:
    const Mesh &mesh_;
    double hotFraction_;
    Cycle period_;
    UniformPattern fallback_;
};

/** Uniform over the mesh neighbors of the source ("easy" traffic). */
class NearNeighborPattern : public TrafficPattern
{
  public:
    explicit NearNeighborPattern(const Mesh &mesh) : mesh_(mesh) {}
    NodeId pick(NodeId src, Rng &rng) const override;
    std::string name() const override { return "neighbor"; }

  private:
    const Mesh &mesh_;
};

/**
 * Consolidation pattern (Sec. V-B): the mesh is split into four
 * quadrants and destinations are uniform within the source's
 * quadrant, so each quadrant behaves like an independent workload.
 */
class QuadrantPattern : public TrafficPattern
{
  public:
    explicit QuadrantPattern(const Mesh &mesh);
    NodeId pick(NodeId src, Rng &rng) const override;
    std::string name() const override { return "quadrant"; }

    /** Quadrant index (0..3) of a node: 0 = NW, 1 = NE, 2 = SW, 3 = SE. */
    int quadrantOf(NodeId n) const;

  private:
    const Mesh &mesh_;
};

/** Factory by name; fatal on unknown names. */
std::unique_ptr<TrafficPattern> makePattern(const std::string &name,
                                            const Mesh &mesh);

} // namespace afcsim

#endif // AFCSIM_TRAFFIC_PATTERNS_HH
