/**
 * @file
 * Mechanism-necessity ablations and fairness properties:
 *  - removing the gossip-induced mode switch (Sec. III-D) leads to a
 *    detected flow-control violation — the mechanism is load-bearing,
 *    exactly as the paper argues ("required for correctness");
 *  - round-robin arbitration shares an output port fairly between
 *    competing inputs in every router type.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.hh"
#include "network/network.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

TEST(Ablation, GossipIsRequiredForCorrectness)
{
    // Same scenario as AfcProtocol.GossipFiresAtReserveThreshold —
    // backpressureless edges streaming into a backpressured center —
    // but with the gossip switch disabled. The upstream now keeps
    // deflecting flits into the neighbor without regard for its
    // buffers; the simulator detects the protocol violation (credit
    // underflow at the upstream or buffer overflow at the center)
    // and raises a recoverable SimError.
    auto scenario = [] {
        NetworkConfig cfg = testConfig(3, 3);
        cfg.afcVnets = {{5, 1}, {5, 1}, {5, 1}};
        cfg.afc.centerHigh = 1e-4;
        cfg.afc.centerLow = 5e-5;
        cfg.afc.edgeHigh = 1e9;
        cfg.afc.cornerHigh = 1e9;
        cfg.afc.disableGossipUnsafe = true;
        // Let the router's own protocol check (not the periodic
        // credit watchdog) be the one that reports the violation.
        cfg.watchdog.creditCheck = false;
        Network net(cfg, FlowControl::Afc);
        for (int k = 0; k < 2000; ++k) {
            // Two flows fight for the center's east output: 3 -> 5
            // through the center's west input, and 4 -> 5 injected
            // at the center itself. The west input fills faster
            // than it drains; without gossip the upstream keeps
            // streaming into it.
            net.nic(3).sendPacket(5, 0, 1, net.now());
            net.nic(4).sendPacket(5, 1, 1, net.now());
            net.step();
        }
        net.drain(100000);
    };
    try {
        scenario();
        FAIL() << "expected a SimError protocol violation";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_TRUE(msg.find("underflow") != std::string::npos ||
                    msg.find("overflow") != std::string::npos)
            << msg;
    }
}

TEST(Ablation, GossipEnabledSameScenarioIsSafe)
{
    // Control for the death test above: with gossip on, the same
    // pressure is absorbed by forward-switching the upstreams.
    NetworkConfig cfg = testConfig(3, 3);
    cfg.afcVnets = {{5, 1}, {5, 1}, {5, 1}};
    cfg.afc.centerHigh = 1e-4;
    cfg.afc.centerLow = 5e-5;
    cfg.afc.edgeHigh = 1e9;
    cfg.afc.cornerHigh = 1e9;
    Network net(cfg, FlowControl::Afc);
    for (int k = 0; k < 2000; ++k) {
        net.nic(3).sendPacket(5, 0, 1, net.now());
        net.nic(4).sendPacket(5, 1, 1, net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
    EXPECT_GT(net.aggregateRouterStats().gossipSwitches, 0u);
}

class FairnessAllFc : public ::testing::TestWithParam<FlowControl>
{
};

INSTANTIATE_TEST_SUITE_P(
    Ablation, FairnessAllFc,
    ::testing::Values(FlowControl::Backpressured,
                      FlowControl::Backpressureless, FlowControl::Afc,
                      FlowControl::AfcAlwaysBackpressured),
    [](const ::testing::TestParamInfo<FlowControl> &info) {
        std::string n = toString(info.param);
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST_P(FairnessAllFc, CompetingSourcesShareBandwidth)
{
    // Nodes 0 and 6 stream to node 2 and node 8 respectively; both
    // flows fight for node 1's and node 7's eastbound links (and at
    // higher intensity, the shared column). Delivered packet counts
    // must end up within 25 % of each other over a long window.
    NetworkConfig cfg = testConfig();
    Network net(cfg, GetParam());
    for (int k = 0; k < 1200; ++k) {
        if (k % 2 == 0) {
            net.nic(0).sendPacket(2, 2, 5, net.now());
            net.nic(6).sendPacket(8, 2, 5, net.now());
        }
        net.step();
    }
    net.drain(500000);
    std::uint64_t a = net.nic(2).stats().packetsDelivered;
    std::uint64_t b = net.nic(8).stats().packetsDelivered;
    EXPECT_GT(a, 0u);
    EXPECT_GT(b, 0u);
    double ratio = static_cast<double>(a) / b;
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.33);
}

TEST_P(FairnessAllFc, SharedHotLinkFairness)
{
    // Two flows share one bottleneck: 3 -> 5 (via the center's west
    // input) and 4 -> 5 (injected at the center) both need node 4's
    // east output port. Arbitration must keep both progressing.
    NetworkConfig cfg = testConfig();
    Network net(cfg, GetParam());
    for (int k = 0; k < 1000; ++k) {
        net.nic(3).sendPacket(5, 2, 5, net.now());
        net.nic(4).sendPacket(5, 0, 1, net.now());
        net.step();
    }
    net.drain(500000);
    // Both flows make sustained progress (no starvation).
    NetStats s5 = net.nic(5).stats();
    EXPECT_GT(s5.packetsDelivered, 400u);
}

} // namespace
} // namespace afcsim
