/**
 * @file
 * Unit and invariant suite for the self-tuning AFC variant
 * (DESIGN.md S22). The gradient controller's contract: all
 * arithmetic stays in Q16 fixed point inside documented bounds, the
 * clamp band and hysteresis-gap floor hold at every epoch under
 * churn, a zero gain freezes the controller into static AFC, bad
 * configurations are rejected at validation/construction time, the
 * observability layer records threshold motion (trace instants and
 * per-frame sampler columns), and the experiment grid built on top
 * is bit-identical for any runner thread count.
 */

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/error.hh"
#include "common/statsio.hh"
#include "exp/experiments.hh"
#include "exp/result.hh"
#include "exp/runner.hh"
#include "network/network.hh"
#include "obs/obs.hh"
#include "router/afc_adaptive.hh"
#include "testutil.hh"
#include "traffic/injector.hh"
#include "traffic/openloop.hh"
#include "traffic/patterns.hh"

namespace afcsim
{
namespace
{

/** Fast adaptation epochs so short test runs cross many boundaries. */
NetworkConfig
adaptiveConfig(int w = 3, int h = 3)
{
    NetworkConfig cfg = testConfig(w, h);
    cfg.afc.adapt.probeInterval = 256;
    cfg.afc.adapt.probeWindow = 32;
    cfg.afc.adapt.gain = 0.8;
    return cfg;
}

const AfcAdaptiveRouter &
adaptiveRouter(const Network &net, NodeId n)
{
    const auto *ad =
        dynamic_cast<const AfcAdaptiveRouter *>(&net.router(n));
    EXPECT_NE(ad, nullptr) << "node " << n << " is not afc_adaptive";
    return *ad;
}

/** Check every documented fixed-point invariant on one router. */
void
expectControllerInvariants(const AfcAdaptiveRouter &ad, NodeId n,
                           Cycle now)
{
    constexpr std::int64_t kOne = AfcAdaptiveRouter::kOneFx;
    EXPECT_GE(ad.lastGradientFx(), AfcAdaptiveRouter::kMinGradientFx)
        << "node " << n << " cycle " << now;
    EXPECT_LE(ad.lastGradientFx(), AfcAdaptiveRouter::kMaxGradientFx)
        << "node " << n << " cycle " << now;
    EXPECT_GE(ad.highFx(), ad.minHighFx())
        << "node " << n << " cycle " << now;
    EXPECT_LE(ad.highFx(), ad.maxHighFx())
        << "node " << n << " cycle " << now;
    EXPECT_GE(ad.lowFx(), ad.minLowFx())
        << "node " << n << " cycle " << now;
    EXPECT_LE(ad.lowFx(), ad.maxLowFx())
        << "node " << n << " cycle " << now;
    EXPECT_GE(ad.highFx() - ad.lowFx(), ad.gapFloorFx())
        << "hysteresis gap collapsed at node " << n << " cycle "
        << now;
    // The doubles the base state machine compares against are always
    // exactly fx / 2^16 — never a stale or re-rounded value.
    EXPECT_EQ(ad.highThreshold(),
              static_cast<double>(ad.highFx()) / kOne)
        << "node " << n << " cycle " << now;
    EXPECT_EQ(ad.lowThreshold(),
              static_cast<double>(ad.lowFx()) / kOne)
        << "node " << n << " cycle " << now;
}

TEST(AfcAdaptive, ValidateRejectsBadAdaptKeys)
{
    NetworkConfig cfg = adaptiveConfig();
    cfg.afc.adapt.probeInterval = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = adaptiveConfig();
    cfg.afc.adapt.probeWindow = cfg.afc.adapt.probeInterval + 1;
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = adaptiveConfig();
    cfg.afc.adapt.gain = -0.1;
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = adaptiveConfig();
    cfg.afc.adapt.minScale = 0.0;
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = adaptiveConfig();
    cfg.afc.adapt.maxScale = 0.9;
    EXPECT_THROW(cfg.validate(), ConfigError);

    cfg = adaptiveConfig();
    cfg.afc.adapt.gapFloor = -0.01;
    EXPECT_THROW(cfg.validate(), ConfigError);

    EXPECT_NO_THROW(adaptiveConfig().validate());
}

TEST(AfcAdaptive, CtorRejectsGapFloorIncompatibleWithStatics)
{
    // A gap floor wider than the shrunken clamp band can honor: the
    // per-position check fires at network construction, naming the
    // node, because only the adaptive variant pays this constraint
    // (static configurations with degenerate thresholds stay legal).
    NetworkConfig cfg = adaptiveConfig();
    cfg.afc.adapt.minScale = 0.5;
    cfg.afc.adapt.gapFloor = 2.0;
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_THROW(Network(cfg, FlowControl::AfcAdaptive), ConfigError);
    // The same knobs are inert for every non-adaptive variant.
    EXPECT_NO_THROW(Network(cfg, FlowControl::Afc));
}

TEST(AfcAdaptive, InvariantsHoldUnderChurn)
{
    // Sustained high load: gradients dip below 1, thresholds shrink
    // toward the clamp floor. Audit every router at every epoch
    // boundary (and between them) mid-run, not just at the end.
    NetworkConfig cfg = adaptiveConfig();
    Network net(cfg, FlowControl::AfcAdaptive);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.40, 0.35);

    std::uint64_t adjustments = 0;
    for (int chunk = 0; chunk < 32; ++chunk) {
        for (int c = 0; c < 128; ++c) {
            inj.tick(net.now());
            net.step();
        }
        adjustments = 0;
        for (NodeId n = 0; n < net.mesh().numNodes(); ++n) {
            const AfcAdaptiveRouter &ad = adaptiveRouter(net, n);
            expectControllerInvariants(ad, n, net.now());
            adjustments += ad.adjustments();
        }
    }
    EXPECT_GT(adjustments, 0u)
        << "4096 cycles at 0.40 load never moved a threshold";
}

TEST(AfcAdaptive, ZeroGainFreezesThresholds)
{
    // gain = 0 degenerates the controller to static AFC: thresholds
    // never move off their constructor values, no adjustment is ever
    // counted, and the exported run is equal to FlowControl::Afc on
    // every metric (thresholds agree to within one Q16 quantum, so
    // the mode state machines make identical decisions).
    NetworkConfig cfg = adaptiveConfig();
    cfg.afc.adapt.gain = 0.0;
    OpenLoopConfig ol;
    ol.pattern = "uniform";
    ol.injectionRate = 0.30;
    ol.warmupCycles = 300;
    ol.measureCycles = 1500;
    ol.drainCycles = 30000;
    std::vector<double> rates(
        static_cast<std::size_t>(cfg.width * cfg.height),
        ol.injectionRate);

    OpenLoopRun frozen(cfg, FlowControl::AfcAdaptive, ol, rates);
    OpenLoopResult fr = frozen.finish();
    for (NodeId n = 0; n < frozen.network().mesh().numNodes(); ++n) {
        const AfcAdaptiveRouter &ad =
            adaptiveRouter(frozen.network(), n);
        EXPECT_EQ(ad.adjustments(), 0u) << "node " << n;
        EXPECT_EQ(ad.lastGradientFx(), AfcAdaptiveRouter::kOneFx)
            << "node " << n;
        expectControllerInvariants(ad, n, frozen.network().now());
    }

    OpenLoopRun statik(cfg, FlowControl::Afc, ol, rates);
    OpenLoopResult sr = statik.finish();
    JsonValue fj = JsonValue::object();
    fj.set("net", toJson(fr.stats));
    fj.set("energy", toJson(fr.energy));
    fj.set("avg_pkt_lat", fr.avgPacketLatency);
    fj.set("accepted", fr.acceptedRate);
    JsonValue sj = JsonValue::object();
    sj.set("net", toJson(sr.stats));
    sj.set("energy", toJson(sr.energy));
    sj.set("avg_pkt_lat", sr.avgPacketLatency);
    sj.set("accepted", sr.acceptedRate);
    EXPECT_EQ(fj.dump(2), sj.dump(2))
        << "zero-gain adaptive diverged from static AFC";
}

TEST(AfcAdaptive, ThresholdMotionReachesObservability)
{
    // Drifting hotspot with the tracer and sampler armed: threshold
    // instants land in the Chrome trace (counted in its meta) and the
    // sampler's per-frame high column takes more than one value over
    // the run. A static AFC control run must record no threshold
    // events and a single constant per-router threshold.
    NetworkConfig cfg = adaptiveConfig();
    cfg.obs.trace = true;
    cfg.obs.sampleInterval = 64;
    OpenLoopConfig ol;
    ol.pattern = "hotspot_drift";
    ol.injectionRate = 0.25;
    ol.warmupCycles = 300;
    ol.measureCycles = 1500;
    ol.drainCycles = 30000;

    OpenLoopResult ad = runOpenLoop(cfg, FlowControl::AfcAdaptive, ol);
    ASSERT_NE(ad.obs, nullptr);
    std::string trace = ad.obs->chromeTrace().dump(2);
    EXPECT_NE(trace.find("threshold:adapt"), std::string::npos)
        << "no threshold instants in the Chrome trace";

    // Column 7 of the series CSV is the sampled high threshold.
    std::set<std::string> highs;
    std::istringstream csv(ad.obs->seriesCsv());
    std::string line;
    std::getline(csv, line); // header
    while (std::getline(csv, line)) {
        std::istringstream row(line);
        std::string field;
        for (int i = 0; i < 7 && std::getline(row, field, ','); ++i) {
        }
        highs.insert(field);
    }
    EXPECT_GT(highs.size(), 1u)
        << "sampler never saw a moved high threshold";

    OpenLoopResult st = runOpenLoop(cfg, FlowControl::Afc, ol);
    ASSERT_NE(st.obs, nullptr);
    EXPECT_EQ(st.obs->chromeTrace().dump(2).find("threshold:adapt"),
              std::string::npos)
        << "static AFC must not record threshold events";
}

TEST(AfcAdaptive, ThresholdAblationGridThreadCountInvariant)
{
    // The registered experiment, scaled down, through the parallel
    // runner at 1 and 4 threads: the deterministic JSON document for
    // every grid point must be byte-identical (results land in grid
    // order regardless of completion order, and each run's controller
    // state is private to its thread).
    exp::ExperimentSpec spec = exp::thresholdAblationExperiment();
    spec.warmupCycles = 300;
    spec.measureCycles = 1200;
    spec.rates = {0.12};
    spec.base.afc.adapt.probeInterval = 256;
    spec.base.afc.adapt.probeWindow = 32;

    exp::ParallelRunner one(1);
    exp::ParallelRunner four(4);
    auto a = one.runSpec(spec).results;
    auto b = four.runSpec(spec).results;
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GE(a.size(), 2u); // static + adaptive at one rate
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].error.empty()) << a[i].error;
        EXPECT_EQ(exp::toJson(a[i]).dump(2), exp::toJson(b[i]).dump(2))
            << "grid point " << i << " diverged across thread counts";
    }
}

} // namespace
} // namespace afcsim
