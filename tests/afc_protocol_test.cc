/**
 * @file
 * Cycle-precise tests of the AFC mode-switch protocol (Sec. III-B/C):
 * notification timing over the 1-bit control lines, credit-view
 * resets, the 2L-cycle forward window, and per-vnet credit flow in
 * mixed-mode operation. Uses a 2x2 mesh (every router is a corner)
 * with artificially tiny thresholds so a single flit triggers the
 * forward switch at a known cycle.
 */

#include <gtest/gtest.h>

#include "network/network.hh"
#include "router/afc.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

/** 2x2 AFC config whose routers switch on the first routed flit. */
NetworkConfig
hairTriggerConfig()
{
    NetworkConfig cfg = testConfig(2, 2);
    cfg.afc.cornerHigh = 1e-4;
    cfg.afc.cornerLow = 5e-5;
    return cfg;
}

AfcRouter &
afcAt(Network &net, NodeId n)
{
    return dynamic_cast<AfcRouter &>(net.router(n));
}

TEST(AfcProtocol, ForwardSwitchChoreography)
{
    NetworkConfig cfg = hairTriggerConfig();
    const int L = cfg.linkLatency;
    Network net(cfg, FlowControl::Afc);
    AfcRouter &r0 = afcAt(net, 0);
    AfcRouter &r1 = afcAt(net, 1);

    ASSERT_EQ(r0.mode(), RouterMode::Backpressureless);
    ASSERT_FALSE(r1.trackingDownstream(kWest));

    // Inject a single-flit packet 0 -> 1. Router 0 dispatches it in
    // the same evaluate() it pulls it (deflection pipeline), so the
    // intensity sample lands at the advance() of the injection
    // cycle, and the forward switch triggers there.
    net.nic(0).sendPacket(1, 0, 1, net.now());
    net.step(); // evaluate+advance of the injection cycle
    Cycle trigger = net.now() - 1; // advance() ran at now-1

    ASSERT_TRUE(r0.switchPending());
    EXPECT_EQ(r0.mode(), RouterMode::Backpressureless);
    EXPECT_EQ(r0.bufferFromCycle(), trigger + 2 * L);

    // The StartTracking notification travels L cycles: router 1's
    // credit tracking for its west output port (toward router 0)
    // flips exactly when the ctl message is delivered.
    for (Cycle c = net.now(); c < trigger + L; ++c) {
        EXPECT_FALSE(r1.trackingDownstream(kWest))
            << "tracking flipped early at cycle " << c;
        net.step();
    }
    // The delivery happens at the start of cycle trigger + L.
    net.step();
    EXPECT_TRUE(r1.trackingDownstream(kWest));

    // Credit view resets to full (the switching router's buffers
    // are empty at this point).
    VcShape shape(cfg.afcVnets);
    for (int v = 0; v < shape.numVnets(); ++v)
        EXPECT_EQ(r1.downstreamFreeSlots(kWest, v), shape.count(v));

    // Mode flips to backpressured once arrivals are buffered
    // (cycle trigger + 2L onwards).
    while (net.now() < r0.bufferFromCycle())
        net.step();
    net.step();
    EXPECT_EQ(r0.mode(), RouterMode::Backpressured);
    EXPECT_FALSE(r0.switchPending());
}

TEST(AfcProtocol, ReverseSwitchNotifiesNeighbors)
{
    NetworkConfig cfg = hairTriggerConfig();
    const int L = cfg.linkLatency;
    Network net(cfg, FlowControl::Afc);
    AfcRouter &r0 = afcAt(net, 0);
    AfcRouter &r1 = afcAt(net, 1);

    net.nic(0).sendPacket(1, 0, 1, net.now());
    ASSERT_TRUE(net.drain(1000));
    // Both routers 0 and 1 handled flits, so both are backpressured
    // (or pending) now; let everything settle.
    net.run(4 * L);
    ASSERT_EQ(r0.mode(), RouterMode::Backpressured);
    ASSERT_TRUE(r1.trackingDownstream(kWest));

    // Idle decay: the EWMA (weight 0.99) falls below the (tiny) low
    // threshold; buffers are empty, so the reverse switch fires.
    Cycle reverse_cycle = 0;
    for (int c = 0; c < 2000 && reverse_cycle == 0; ++c) {
        net.step();
        if (r0.mode() == RouterMode::Backpressureless)
            reverse_cycle = net.now() - 1;
    }
    ASSERT_GT(reverse_cycle, 0u) << "no reverse switch";

    // StopTracking reaches the neighbor L cycles later.
    while (net.now() < reverse_cycle + L)
        net.step();
    net.step();
    EXPECT_FALSE(r1.trackingDownstream(kWest));
    EXPECT_GT(net.aggregateRouterStats().reverseSwitches, 0u);
}

TEST(AfcProtocol, CreditsFlowPerVnet)
{
    // In always-backpressured mode, send a packet on vnet 2 only:
    // the upstream's per-vnet credit view must dip for vnet 2 and
    // stay full for vnets 0 and 1 (lazy VCA tracks credits per
    // virtual network, Sec. III-E).
    NetworkConfig cfg = testConfig(2, 2);
    Network net(cfg, FlowControl::AfcAlwaysBackpressured);
    AfcRouter &r0 = afcAt(net, 0);
    VcShape shape(cfg.afcVnets);

    for (int k = 0; k < 6; ++k)
        net.nic(0).sendPacket(1, 2, 5, net.now());
    bool vnet2_dipped = false;
    for (int c = 0; c < 40; ++c) {
        net.step();
        EXPECT_EQ(r0.downstreamFreeSlots(kEast, 0), shape.count(0));
        EXPECT_EQ(r0.downstreamFreeSlots(kEast, 1), shape.count(1));
        if (r0.downstreamFreeSlots(kEast, 2) < shape.count(2))
            vnet2_dipped = true;
    }
    EXPECT_TRUE(vnet2_dipped);
    ASSERT_TRUE(net.drain(10000));
    expectConservation(net);
}

TEST(AfcProtocol, WindowArrivalsDeflectNotBuffer)
{
    // Flits that arrive during the 2L switch window must be handled
    // by the deflection pipeline (Sec. III-B: "any incoming flits
    // that are received on or after the (T+2L)th cycle are directed
    // to the input buffers" — and, implicitly, earlier ones are
    // not). We verify via bufferedFlits(): nothing may sit in the
    // lazy-VCA buffers before bufferFromCycle.
    NetworkConfig cfg = hairTriggerConfig();
    Network net(cfg, FlowControl::Afc);
    AfcRouter &r0 = afcAt(net, 0);

    // Saturate node 0 with through-traffic from its neighbors so
    // flits arrive during its switch window.
    for (int k = 0; k < 10; ++k) {
        net.nic(1).sendPacket(2, 0, 1, net.now()); // 1 -> 2 via 0 or 3
        net.nic(2).sendPacket(1, 0, 1, net.now());
        net.nic(0).sendPacket(3, 0, 1, net.now());
    }
    while (!r0.switchPending() && net.now() < 100)
        net.step();
    ASSERT_TRUE(r0.switchPending());
    while (net.now() < r0.bufferFromCycle()) {
        EXPECT_EQ(r0.bufferedFlits(), 0u)
            << "buffered during the deflection window, cycle "
            << net.now();
        net.step();
    }
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(AfcProtocol, GossipFiresAtReserveThreshold)
{
    // Shallow vnets (5 slots, X = 2L = 4): a sustained stream from a
    // backpressureless upstream into a backpressured downstream must
    // force the upstream forward exactly when its credit view hits
    // X, and the view must never go negative (the router panics if
    // the reserve is violated).
    NetworkConfig cfg = testConfig(3, 3);
    cfg.afcVnets = {{5, 1}, {5, 1}, {5, 1}};
    cfg.afc.centerHigh = 1e-4; // center trips immediately
    cfg.afc.centerLow = 5e-5;
    cfg.afc.edgeHigh = 1e9;    // edges/corners only via gossip
    cfg.afc.cornerHigh = 1e9;
    Network net(cfg, FlowControl::Afc);
    AfcRouter &r3 = afcAt(net, 3); // west edge, feeds center 4

    bool saw_trigger_at_reserve = false;
    for (int k = 0; k < 400; ++k) {
        net.nic(3).sendPacket(5, 0, 1, net.now()); // through center
        bool was_stable_bpl = r3.mode() ==
            RouterMode::Backpressureless && !r3.switchPending();
        net.step();
        if (was_stable_bpl && r3.switchPending()) {
            // The gossip check fired in the advance() just
            // executed: the credit view must be at (or just under)
            // the reserve, never deeper.
            EXPECT_TRUE(r3.trackingDownstream(kEast));
            int free = r3.downstreamFreeSlots(kEast, 0);
            EXPECT_LE(free, r3.gossipReserve());
            EXPECT_GE(free, r3.gossipReserve() - 1)
                << "trigger happened later than the reserve";
            saw_trigger_at_reserve = true;
            break;
        }
    }
    EXPECT_TRUE(saw_trigger_at_reserve);
    EXPECT_GT(net.aggregateRouterStats().gossipSwitches, 0u);
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(AfcProtocol, HairTriggerNetworkStillConserves)
{
    // Fast mode churn (tiny thresholds + tiny hysteresis) is the
    // worst case for the switch protocol; the routers' internal
    // overflow/underflow panics plus conservation close the proof.
    NetworkConfig cfg = hairTriggerConfig();
    Network net(cfg, FlowControl::Afc);
    Rng rng(4);
    for (int k = 0; k < 4000; ++k) {
        for (NodeId s = 0; s < 4; ++s) {
            if (rng.chance(0.12)) {
                NodeId d = rng.below(4);
                if (d != s)
                    net.nic(s).sendPacket(d, 2, 5, net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(300000));
    // Idle long enough for the EWMA to decay below the tiny low
    // threshold: reverse switches fire, then a second traffic burst
    // forces a second round of forward switches.
    net.run(3000);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(net.router(n).mode(), RouterMode::Backpressureless);
    for (int k = 0; k < 200; ++k) {
        for (NodeId s = 0; s < 4; ++s)
            net.nic(s).sendPacket((s + 1) % 4, 2, 5, net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(300000));
    expectConservation(net);
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_GT(rs.forwardSwitches, 4u);
    EXPECT_GT(rs.reverseSwitches, 0u);
}

} // namespace
} // namespace afcsim
