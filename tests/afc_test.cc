/**
 * @file
 * Tests for the AFC router: the Fig. 1 mode state machine (forward /
 * reverse / gossip-induced switches), the 2L-cycle switch protocol,
 * lazy VC allocation, per-vnet credits, hysteresis, and mixed-mode
 * correctness (buffer-overflow panics inside the router act as the
 * protocol checker).
 */

#include <gtest/gtest.h>

#include "network/network.hh"
#include "router/afc.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

AfcRouter &
afcAt(Network &net, NodeId n)
{
    return dynamic_cast<AfcRouter &>(net.router(n));
}

TEST(Afc, StartsBackpressureless)
{
    Network net(testConfig(), FlowControl::Afc);
    for (NodeId n = 0; n < 9; ++n)
        EXPECT_EQ(net.router(n).mode(), RouterMode::Backpressureless);
}

TEST(Afc, ThresholdsFollowPosition)
{
    Network net(testConfig(), FlowControl::Afc);
    EXPECT_DOUBLE_EQ(afcAt(net, 0).highThreshold(), 1.8); // corner
    EXPECT_DOUBLE_EQ(afcAt(net, 0).lowThreshold(), 1.2);
    EXPECT_DOUBLE_EQ(afcAt(net, 1).highThreshold(), 2.1); // edge
    EXPECT_DOUBLE_EQ(afcAt(net, 1).lowThreshold(), 1.3);
    EXPECT_DOUBLE_EQ(afcAt(net, 4).highThreshold(), 2.2); // center
    EXPECT_DOUBLE_EQ(afcAt(net, 4).lowThreshold(), 1.7);
}

TEST(Afc, GossipReserveDefaultsTo2L)
{
    NetworkConfig cfg = testConfig();
    cfg.linkLatency = 2;
    Network net(cfg, FlowControl::Afc);
    EXPECT_EQ(afcAt(net, 4).gossipReserve(), 4);
}

TEST(Afc, LowLoadStaysBackpressureless)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    Rng rng(11);
    for (int k = 0; k < 2000; ++k) {
        if (rng.chance(0.05)) {
            NodeId src = rng.below(9), dest = rng.below(9);
            if (src != dest)
                net.nic(src).sendPacket(dest, 0, 1, net.now());
        }
        net.step();
    }
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_EQ(rs.forwardSwitches, 0u);
    EXPECT_GT(rs.cyclesBackpressureless, 0u);
    EXPECT_LT(net.backpressuredFraction(), 0.01);
    ASSERT_TRUE(net.drain(10000));
    expectConservation(net);
}

TEST(Afc, HighLoadSwitchesForward)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    Rng rng(12);
    // Sustained heavy traffic: ~0.9 flits/node/cycle offered.
    for (int k = 0; k < 3000; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.22)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
    }
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_GT(rs.forwardSwitches, 0u);
    EXPECT_GT(net.backpressuredFraction(), 0.3);
    ASSERT_TRUE(net.drain(200000));
    expectConservation(net);
}

TEST(Afc, ReverseSwitchWhenLoadDrops)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    Rng rng(13);
    for (int k = 0; k < 3000; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.22)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
    }
    ASSERT_GT(net.aggregateRouterStats().forwardSwitches, 0u);
    // Stop traffic; the EWMA (weight 0.99) decays past the low
    // threshold within a few hundred idle cycles.
    ASSERT_TRUE(net.drain(200000));
    net.run(2000);
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_GT(rs.reverseSwitches, 0u);
    for (NodeId n = 0; n < 9; ++n)
        EXPECT_EQ(net.router(n).mode(), RouterMode::Backpressureless);
    expectConservation(net);
}

TEST(Afc, ForwardSwitchTakes2LCycles)
{
    // Drive one router's intensity over threshold and observe the
    // pending window: bufferFromCycle - trigger cycle == 2L.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    Rng rng(14);
    Cycle trigger_cycle = 0;
    for (int k = 0; k < 5000 && trigger_cycle == 0; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.25)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
        for (NodeId n = 0; n < 9 && trigger_cycle == 0; ++n) {
            if (afcAt(net, n).switchPending()) {
                trigger_cycle = net.now() - 1; // advance() ran at now-1
                EXPECT_EQ(afcAt(net, n).bufferFromCycle(),
                          trigger_cycle + 2 * cfg.linkLatency);
            }
        }
    }
    ASSERT_GT(trigger_cycle, 0u) << "no forward switch observed";
    ASSERT_TRUE(net.drain(200000));
    expectConservation(net);
}

TEST(Afc, HysteresisHoldsModeBetweenThresholds)
{
    // After a forward switch, moderate traffic that keeps the EWMA
    // between low and high must keep the router backpressured.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    Rng rng(15);
    for (int k = 0; k < 4000; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.25)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
    }
    RouterStats before = net.aggregateRouterStats();
    ASSERT_GT(before.forwardSwitches, 0u);
    // Mode flapping would show as reverse+forward churn during the
    // sustained-load phase; hysteresis keeps switch counts tiny
    // relative to cycles.
    EXPECT_LT(before.forwardSwitches + before.reverseSwitches, 100u);
    ASSERT_TRUE(net.drain(200000));
    expectConservation(net);
}

TEST(Afc, GossipInducedSwitch)
{
    // Force gossip: shallow per-vnet buffers (5 slots > X=4) and a
    // center router that trips to backpressured at the slightest
    // activity while corners/edges would never switch locally.
    NetworkConfig cfg = testConfig();
    cfg.afcVnets = {{5, 1}, {5, 1}, {5, 1}};
    cfg.afc.centerHigh = 0.01;
    cfg.afc.centerLow = 0.005;
    cfg.afc.edgeHigh = 1e9;
    cfg.afc.cornerHigh = 1e9;
    Network net(cfg, FlowControl::Afc);
    // Streams crossing the center keep its input ports busy; the
    // upstream edge routers' credit view drops to X and forces them
    // backpressured without local contention.
    for (int k = 0; k < 600; ++k) {
        net.nic(3).sendPacket(5, 0, 1, net.now()); // W -> E via center
        net.nic(1).sendPacket(7, 1, 1, net.now()); // N -> S via center
        net.step();
    }
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_GT(rs.gossipSwitches, 0u);
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(Afc, AlwaysBackpressuredNeverSwitches)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::AfcAlwaysBackpressured);
    Rng rng(16);
    for (int k = 0; k < 1000; ++k) {
        if (rng.chance(0.3)) {
            NodeId src = rng.below(9), dest = rng.below(9);
            if (src != dest)
                net.nic(src).sendPacket(dest, 2, 5, net.now());
        }
        net.step();
    }
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_EQ(rs.forwardSwitches, 0u);
    EXPECT_EQ(rs.reverseSwitches, 0u);
    EXPECT_DOUBLE_EQ(net.backpressuredFraction(), 1.0);
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(Afc, AlwaysBpZeroLoadLatencyMatchesBackpressured)
{
    // Lazy VCA keeps the 2-stage pipeline: same zero-load latency
    // as the (charitable 0-cycle VCA) backpressured baseline.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::AfcAlwaysBackpressured);
    ASSERT_TRUE(deliverOne(net, 0, 1, 0, 1).has_value());
    EXPECT_EQ(net.aggregateStats().packetLatency.mean(), 5.0);
}

TEST(Afc, BplModeZeroLoadLatencyMatchesDeflection)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    ASSERT_TRUE(deliverOne(net, 0, 1, 0, 1).has_value());
    EXPECT_EQ(net.aggregateStats().packetLatency.mean(), 4.0);
}

TEST(Afc, LazyVcaBufferBudgetHalved)
{
    NetworkConfig cfg = testConfig();
    EXPECT_EQ(NetworkConfig::totalBufferFlits(cfg.afcVnets) * 2,
              NetworkConfig::totalBufferFlits(cfg.vnets));
}

TEST(Afc, PerVnetCreditViewTracksOccupancy)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::AfcAlwaysBackpressured);
    AfcRouter &r3 = afcAt(net, 3);
    VcShape shape(cfg.afcVnets);
    // Initially full credit for the east neighbor (the center).
    for (int v = 0; v < shape.numVnets(); ++v) {
        EXPECT_TRUE(r3.trackingDownstream(kEast));
        EXPECT_EQ(r3.downstreamFreeSlots(kEast, v), shape.count(v));
    }
    // Push a burst through 3 -> 4 -> 5 and watch credits dip and
    // recover.
    for (int k = 0; k < 10; ++k)
        net.nic(3).sendPacket(5, 2, 5, net.now());
    net.run(10);
    bool dipped = false;
    for (int v = 0; v < shape.numVnets(); ++v) {
        if (r3.downstreamFreeSlots(kEast, v) < shape.count(v))
            dipped = true;
    }
    EXPECT_TRUE(dipped);
    ASSERT_TRUE(net.drain(50000));
    net.run(20);
    for (int v = 0; v < shape.numVnets(); ++v)
        EXPECT_EQ(r3.downstreamFreeSlots(kEast, v), shape.count(v));
    expectConservation(net);
}

TEST(Afc, MixedModeStressNoProtocolViolation)
{
    // Spatially skewed load holds some routers backpressured while
    // others stay deflecting; the router's internal overflow panics
    // verify the switch protocol across every boundary crossing.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    Rng rng(17);
    for (int k = 0; k < 6000; ++k) {
        // Hot column x=0, cool elsewhere.
        for (NodeId src : {0, 3, 6}) {
            if (rng.chance(0.3)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        if (rng.chance(0.05)) {
            NodeId src = 1 + rng.below(2);
            net.nic(src).sendPacket(8, 0, 1, net.now());
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(300000));
    expectConservation(net);
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_GT(rs.forwardSwitches, 0u);
}

TEST(Afc, ModeDutyCycleAccountingSumsToCycles)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    net.run(500);
    RouterStats rs = net.aggregateRouterStats();
    EXPECT_EQ(rs.cyclesBackpressured + rs.cyclesBackpressureless,
              9u * 500u);
}

TEST(Afc, PowerGatedLeakageInBplMode)
{
    NetworkConfig cfg = testConfig();
    Network idle_afc(cfg, FlowControl::Afc);
    Network idle_bp(cfg, FlowControl::AfcAlwaysBackpressured);
    idle_afc.run(1000);
    idle_bp.run(1000);
    double gated = idle_afc.aggregateEnergy().component(
        EnergyComponent::BufferLeak);
    double powered = idle_bp.aggregateEnergy().component(
        EnergyComponent::BufferLeak);
    // 90 % effective power gating (Sec. IV).
    EXPECT_NEAR(gated / powered, 0.1, 0.02);
}

} // namespace
} // namespace afcsim
