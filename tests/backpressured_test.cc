/**
 * @file
 * Tests for the backpressured VC router: pipeline timing (Table I),
 * credit flow control, packet-granularity VC allocation (rules
 * R1/R2), wormhole ordering and head-of-line behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "network/network.hh"
#include "router/backpressured.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

TEST(Backpressured, ZeroLoadLatencyOneHop)
{
    // Injection (1) + per-hop (SA + ST/LT = 1 + L) + ejection (1):
    // one hop at L=2 is 5 cycles.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    auto t = deliverOne(net, 0, 1, 0, 1);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(net.aggregateStats().packetLatency.mean(), 5.0);
}

TEST(Backpressured, ZeroLoadLatencyScalesWithHops)
{
    NetworkConfig cfg = testConfig();
    for (int hops = 1; hops <= 4; ++hops) {
        Network net(cfg, FlowControl::Backpressured);
        NodeId src = 0;
        NodeId dest = hops <= 2 ? hops : (hops - 2) * 3 + 2;
        ASSERT_EQ(net.mesh().hopDistance(src, dest), hops);
        auto t = deliverOne(net, src, dest, 0, 1);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(net.aggregateStats().packetLatency.mean(),
                  3.0 * hops + 2.0)
            << "hops=" << hops;
    }
}

TEST(Backpressured, MultiFlitPacketStreams)
{
    // Flits follow head at 1/cycle: a 4-flit packet finishes 3
    // cycles after a single-flit one.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    auto t = deliverOne(net, 0, 1, 2, 4);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(net.aggregateStats().packetLatency.mean(), 8.0);
}

TEST(Backpressured, DorMinimalHops)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    ASSERT_TRUE(deliverOne(net, 0, 8, 2, 5).has_value());
    NetStats s = net.aggregateStats();
    // 0 -> 8 on a 3x3 is 4 hops; DOR never misroutes.
    EXPECT_DOUBLE_EQ(s.hops.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.deflections.mean(), 0.0);
}

TEST(Backpressured, InitialCreditsMatchDepth)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    auto &r = dynamic_cast<BackpressuredRouter &>(net.router(4));
    VcShape shape(cfg.vnets);
    for (VcId vc = 0; vc < shape.totalVcs(); ++vc) {
        EXPECT_EQ(r.creditsFor(kEast, vc),
                  shape.depth(shape.vnetOf(vc)));
    }
}

TEST(Backpressured, CreditsReturnAfterDelivery)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    ASSERT_TRUE(deliverOne(net, 3, 5, 2, 8).has_value());
    net.run(20); // let credits flow home
    auto &r = dynamic_cast<BackpressuredRouter &>(net.router(4));
    VcShape shape(cfg.vnets);
    for (VcId vc = 0; vc < shape.totalVcs(); ++vc) {
        EXPECT_EQ(r.creditsFor(kEast, vc),
                  shape.depth(shape.vnetOf(vc)));
        EXPECT_FALSE(r.outVcBusy(kEast, vc));
    }
}

TEST(Backpressured, FlitsOfPacketStayContiguousPerVc)
{
    // Wormhole rule R1: within one VC, packets may not interleave.
    // The router asserts this on acceptFlit; a run with many
    // multi-flit packets passing through shared links exercises it.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    for (int i = 0; i < 40; ++i) {
        net.nic(0).sendPacket(8, 2, 5, net.now());
        net.nic(2).sendPacket(6, 2, 5, net.now());
        net.nic(1).sendPacket(7, 2, 5, net.now());
        net.run(3);
    }
    ASSERT_TRUE(net.drain(20000));
    expectConservation(net);
}

TEST(Backpressured, ManyPacketsSameDestination)
{
    // Output-port contention: everything funnels into node 4.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    for (NodeId src = 0; src < 9; ++src) {
        if (src == 4)
            continue;
        for (int k = 0; k < 10; ++k)
            net.nic(src).sendPacket(4, 2, 5, net.now());
    }
    ASSERT_TRUE(net.drain(50000));
    expectConservation(net);
    EXPECT_DOUBLE_EQ(net.aggregateStats().deflections.mean(), 0.0);
}

TEST(Backpressured, SmallBuffersStillDeliver)
{
    // Tight buffers stress the credit loop (including stalls).
    NetworkConfig cfg = testConfig();
    cfg.vnets = {{1, 2}, {1, 2}, {2, 2}};
    Network net(cfg, FlowControl::Backpressured);
    for (NodeId src = 0; src < 9; ++src) {
        for (int k = 0; k < 5; ++k) {
            NodeId dest = (src + 3 + k) % 9;
            if (dest != src)
                net.nic(src).sendPacket(dest, 2, 5, net.now());
        }
    }
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(Backpressured, VnetsIsolateTraffic)
{
    // Packets on different vnets share links but never VCs; a mix
    // must drain with per-VC contiguity asserts intact.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    for (int k = 0; k < 30; ++k) {
        net.nic(0).sendPacket(8, 0, 1, net.now());
        net.nic(0).sendPacket(8, 1, 1, net.now());
        net.nic(0).sendPacket(8, 2, 5, net.now());
        net.run(2);
    }
    ASSERT_TRUE(net.drain(20000));
    expectConservation(net);
}

TEST(Backpressured, IdealBypassTimingIdentical)
{
    // The ideal-bypass configuration differs only in energy.
    NetworkConfig cfg = testConfig();
    Network a(cfg, FlowControl::Backpressured);
    Network b(cfg, FlowControl::BackpressuredIdealBypass);
    for (int k = 0; k < 20; ++k) {
        a.nic(0).sendPacket(8, 2, 5, a.now());
        b.nic(0).sendPacket(8, 2, 5, b.now());
        a.run(5);
        b.run(5);
    }
    ASSERT_TRUE(a.drain(10000));
    ASSERT_TRUE(b.drain(10000));
    EXPECT_DOUBLE_EQ(a.aggregateStats().packetLatency.mean(),
                     b.aggregateStats().packetLatency.mean());
    // Energy differs: bypass elides dynamic buffer energy.
    EXPECT_LT(b.aggregateEnergy().component(
                  EnergyComponent::BufferWrite),
              a.aggregateEnergy().component(
                  EnergyComponent::BufferWrite));
}

TEST(Backpressured, RouterStatsCountTraversals)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    ASSERT_TRUE(deliverOne(net, 0, 2, 0, 1).has_value());
    RouterStats rs = net.aggregateRouterStats();
    // src SA + middle hop + dest ejection = 3 dispatches.
    EXPECT_EQ(rs.flitsRouted, 3u);
    EXPECT_EQ(rs.flitsDeflected, 0u);
    EXPECT_EQ(rs.cyclesBackpressureless, 0u);
}

TEST(Backpressured, BackpressurePropagatesToSource)
{
    // With tiny buffers and a hot destination, source queues must
    // back up (flits held at the NIC, not dropped).
    NetworkConfig cfg = testConfig();
    cfg.vnets = {{1, 2}, {1, 2}, {1, 2}};
    Network net(cfg, FlowControl::Backpressured);
    for (int k = 0; k < 50; ++k)
        net.nic(0).sendPacket(1, 2, 5, net.now());
    net.run(30);
    EXPECT_GT(net.nic(0).queuedFlits(), 0u);
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(Backpressured, BaselineVcConfigAtPerformanceKnee)
{
    // Sec. IV: the baseline (2+2+4 VCs x 8 flits) is tuned — "adding
    // more VCs (or increasing buffer-depths) resulted in no
    // significant performance improvement". Halving VCs must hurt
    // measurably; doubling must not help much.
    auto latency = [](std::vector<VnetConfig> shape) {
        NetworkConfig cfg = testConfig();
        cfg.vnets = std::move(shape);
        Network net(cfg, FlowControl::Backpressured);
        Rng rng(55);
        for (int k = 0; k < 4000; ++k) {
            for (NodeId s = 0; s < 9; ++s) {
                if (rng.chance(0.18)) {
                    NodeId d = rng.below(9);
                    if (d != s)
                        net.nic(s).sendPacket(d, 2, 5, net.now());
                }
            }
            net.step();
        }
        EXPECT_TRUE(net.drain(500000));
        return net.aggregateStats().packetLatency.mean();
    };
    double halved = latency({{1, 8}, {1, 8}, {2, 8}});
    double baseline = latency({{2, 8}, {2, 8}, {4, 8}});
    double doubled = latency({{4, 8}, {4, 8}, {8, 8}});
    EXPECT_GT(halved, baseline * 1.05);
    EXPECT_NEAR(doubled / baseline, 1.0, 0.05);
}

TEST(Backpressured, EnergyKnobsShiftComponents)
{
    // Longer links must raise link energy proportionally and leave
    // buffer energy untouched.
    auto run = [](double link_mm) {
        NetworkConfig cfg = testConfig();
        cfg.energy.linkLengthMm = link_mm;
        Network net(cfg, FlowControl::Backpressured);
        net.nic(0).sendPacket(8, 2, 5, net.now());
        EXPECT_TRUE(net.drain(10000));
        return net.aggregateEnergy();
    };
    EnergyReport short_links = run(2.5);
    EnergyReport long_links = run(5.0);
    EXPECT_NEAR(long_links.linkEnergy(),
                2.0 * short_links.linkEnergy(), 1e-6);
    EXPECT_NEAR(long_links.bufferEnergy(), short_links.bufferEnergy(),
                1e-6);
}

} // namespace
} // namespace afcsim
