/**
 * @file
 * Calibration / shape tests: the paper's headline qualitative
 * results must hold in this reproduction (who wins, roughly by how
 * much, and where the crossovers fall). Tolerances are loose — the
 * substrate differs from the authors' testbed — but orderings and
 * coarse magnitudes are asserted.
 */

#include <gtest/gtest.h>

#include "sim/closedloop.hh"
#include "sim/workload.hh"
#include "traffic/openloop.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

ClosedLoopResult
quickRun(FlowControl fc, WorkloadProfile w, double scale = 0.35)
{
    NetworkConfig cfg;
    cfg.seed = 7;
    w.warmupTransactions =
        static_cast<std::uint64_t>(w.warmupTransactions * scale);
    w.measureTransactions =
        static_cast<std::uint64_t>(w.measureTransactions * scale);
    return runClosedLoop(cfg, fc, w);
}

TEST(Calibration, BufferShareOfBaselineEnergy)
{
    // Premise (Sec. I): buffers consume a significant part of
    // network energy, e.g. 30-40 %, in backpressured routers. Check
    // at a moderate operating point.
    ClosedLoopResult r =
        quickRun(FlowControl::Backpressured, oceanWorkload());
    double share = r.energy.bufferEnergy() / r.energy.total();
    EXPECT_GT(share, 0.25);
    EXPECT_LT(share, 0.50);
}

TEST(Calibration, LowLoadEnergyOrdering)
{
    // Fig. 2(b): backpressureless < AFC < ideal-bypass < base
    // backpressured.
    WorkloadProfile w = barnesWorkload();
    double bpl =
        quickRun(FlowControl::Backpressureless, w).energy.total();
    double afc = quickRun(FlowControl::Afc, w).energy.total();
    double bypass =
        quickRun(FlowControl::BackpressuredIdealBypass, w)
            .energy.total();
    double bp = quickRun(FlowControl::Backpressured, w).energy.total();
    EXPECT_LT(bpl, afc);
    EXPECT_LT(afc, bypass);
    EXPECT_LT(bypass, bp);
    // Magnitudes: BP ~42 % above BPL; ideal bypass ~32 % above BPL;
    // AFC within ~9 % of BPL. Allow wide bands.
    EXPECT_GT(bp / bpl, 1.20);
    EXPECT_LT(bp / bpl, 1.75);
    EXPECT_GT(bypass / bpl, 1.10);
    EXPECT_LT(afc / bpl, 1.20);
}

TEST(Calibration, LowLoadPerformanceFlat)
{
    // Fig. 2(a): at low loads flow control has no meaningful impact
    // on performance.
    WorkloadProfile w = waterWorkload();
    Cycle bp = quickRun(FlowControl::Backpressured, w).runtime;
    Cycle bpl = quickRun(FlowControl::Backpressureless, w).runtime;
    Cycle afc = quickRun(FlowControl::Afc, w).runtime;
    EXPECT_NEAR(static_cast<double>(bpl) / bp, 1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(afc) / bp, 1.0, 0.05);
}

TEST(Calibration, HighLoadPerformanceOrdering)
{
    // Fig. 2(c): backpressureless degrades (~19 % mean in the
    // paper); AFC within a few % of backpressured.
    WorkloadProfile w = apacheWorkload();
    Cycle bp = quickRun(FlowControl::Backpressured, w).runtime;
    Cycle bpl = quickRun(FlowControl::Backpressureless, w).runtime;
    Cycle afc = quickRun(FlowControl::Afc, w).runtime;
    EXPECT_GT(static_cast<double>(bpl) / bp, 1.05);
    EXPECT_NEAR(static_cast<double>(afc) / bp, 1.0, 0.08);
}

TEST(Calibration, HighLoadEnergyOrdering)
{
    // Fig. 2(d): backpressured least energy; AFC within a few %;
    // backpressureless ~35 % worse.
    WorkloadProfile w = apacheWorkload();
    double bp = quickRun(FlowControl::Backpressured, w).energy.total();
    double bpl =
        quickRun(FlowControl::Backpressureless, w).energy.total();
    double afc = quickRun(FlowControl::Afc, w).energy.total();
    EXPECT_GT(bpl / bp, 1.10);
    EXPECT_LT(afc / bp, 1.15);
}

TEST(Calibration, ModeDutyCycleMatchesSectionV)
{
    // water/barnes ~99 % backpressureless; apache/specjbb >99 %
    // backpressured (we allow slack).
    EXPECT_LT(quickRun(FlowControl::Afc, waterWorkload()).bpFraction,
              0.05);
    EXPECT_GT(quickRun(FlowControl::Afc, apacheWorkload()).bpFraction,
              0.90);
}

TEST(Calibration, SpatialVariationAfcBestEnergy)
{
    // Sec. V-B: with one hot quadrant and three cool ones, AFC beats
    // both static mechanisms on energy.
    NetworkConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.seed = 7;
    OpenLoopConfig ol;
    ol.warmupCycles = 2000;
    ol.measureCycles = 6000;
    double afc = runQuadrantExperiment(cfg, FlowControl::Afc, ol, 0.9,
                                       0.1).overall.energy.total();
    double bp = runQuadrantExperiment(cfg, FlowControl::Backpressured,
                                      ol, 0.9, 0.1)
                    .overall.energy.total();
    double bpl = runQuadrantExperiment(
        cfg, FlowControl::Backpressureless, ol, 0.9, 0.1)
                     .overall.energy.total();
    EXPECT_LT(afc, bp);
    EXPECT_LT(afc, bpl);
}

} // namespace
} // namespace afcsim
