/**
 * @file
 * Unit tests for the fixed-latency channel pipeline.
 */

#include <gtest/gtest.h>

#include "network/channel.hh"
#include "network/flit.hh"

namespace afcsim
{
namespace
{

TEST(Channel, DeliversAfterLatency)
{
    Channel<int> ch(3);
    ch.send(7, 10);
    EXPECT_TRUE(ch.receive(12).empty());
    auto got = ch.receive(13);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 7);
}

TEST(Channel, OrderPreserved)
{
    Channel<int> ch(2);
    ch.send(1, 0);
    ch.send(2, 1);
    ch.send(3, 2);
    auto a = ch.receive(2);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0], 1);
    auto b = ch.receive(4);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0], 2);
    EXPECT_EQ(b[1], 3);
}

TEST(Channel, SameCycleMultipleMessages)
{
    Channel<int> ch(1);
    ch.send(10, 5);
    ch.send(11, 5);
    auto got = ch.receive(6);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], 10);
    EXPECT_EQ(got[1], 11);
}

TEST(Channel, InflightCount)
{
    Channel<int> ch(4);
    EXPECT_TRUE(ch.empty());
    ch.send(1, 0);
    ch.send(2, 1);
    EXPECT_EQ(ch.inflight(), 2u);
    ch.receive(4); // only the first has arrived
    EXPECT_EQ(ch.inflight(), 1u);
    ch.receive(5);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, CarriesFlits)
{
    Channel<Flit> ch(2);
    Flit f;
    f.packet = 99;
    f.src = 1;
    f.dest = 5;
    ch.send(f, 0);
    auto got = ch.receive(2);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].packet, 99u);
    EXPECT_EQ(got[0].dest, 5);
}

TEST(Channel, LatencyOneIsNextCycle)
{
    Channel<int> ch(1);
    ch.send(42, 100);
    EXPECT_TRUE(ch.receive(100).empty());
    EXPECT_EQ(ch.receive(101).size(), 1u);
}

TEST(Flit, HeadTailClassification)
{
    Flit f;
    f.type = FlitType::Single;
    EXPECT_TRUE(f.isHead());
    EXPECT_TRUE(f.isTail());
    f.type = FlitType::Head;
    EXPECT_TRUE(f.isHead());
    EXPECT_FALSE(f.isTail());
    f.type = FlitType::Body;
    EXPECT_FALSE(f.isHead());
    EXPECT_FALSE(f.isTail());
    f.type = FlitType::Tail;
    EXPECT_FALSE(f.isHead());
    EXPECT_TRUE(f.isTail());
}

TEST(Flit, DescribeMentionsIdentity)
{
    Flit f;
    f.packet = 12;
    f.seq = 3;
    f.src = 1;
    f.dest = 7;
    std::string d = f.describe();
    EXPECT_NE(d.find("pkt=12"), std::string::npos);
    EXPECT_NE(d.find("1->7"), std::string::npos);
}

} // namespace
} // namespace afcsim
