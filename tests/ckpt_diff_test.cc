/**
 * @file
 * Differential bit-identity suite for checkpoint/restore (DESIGN.md
 * S20), in the style of sched_equiv_test.cc: run a reference
 * simulation uninterrupted, then run the same configuration to cycle
 * k, snapshot it through the full file container, restore into a
 * freshly constructed run and finish — every exported artifact
 * (stats JSON, energy ledger, fault counters, observability series
 * and Chrome trace) must be byte-identical to the reference.
 *
 * Snapshot points cover mid-warm-up, the warm-up/measure boundary and
 * mid-measurement; the fault grid pins the hard cases the journal
 * relies on — a snapshot taken mid-retransmission (NIC retransmit
 * buffers non-empty, verified) and one inside an active link_down
 * window (verified via interval arithmetic on the fault stats), plus
 * afc_adaptive snapshots landing inside a probe window and mid-sample
 * accumulation (verified via the controller's pending counters). The
 * closed-loop harness gets the same treatment: a mid-run
 * ClosedLoopRun snapshot restored into a fresh harness must finish
 * bit-identical, and its workload-parameter guard must reject a
 * mismatched profile.
 */

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/error.hh"
#include "common/statsio.hh"
#include "obs/obs.hh"
#include "router/afc_adaptive.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"
#include "testutil.hh"
#include "traffic/openloop.hh"

namespace afcsim
{
namespace
{

/** Dense sampling + frequent audits, as in sched_equiv_test.cc, so a
 *  restore that perturbs credit/conservation invariants fails the
 *  run outright rather than just diverging. */
void
armObservers(NetworkConfig &cfg)
{
    cfg.watchdog.enabled = true;
    cfg.watchdog.intervalCycles = 128;
    cfg.obs.sampleInterval = 16;
    cfg.obs.trace = true;
}

std::string
obsFingerprint(const std::shared_ptr<obs::Observability> &obs)
{
    if (!obs)
        return "<no obs>";
    return obs->seriesCsv() + "\n" + obs->chromeTrace().dump(2);
}

/** Serialize everything a closed-loop run exports. */
std::string
fingerprint(const ClosedLoopResult &r)
{
    JsonValue doc = JsonValue::object();
    doc.set("runtime", static_cast<std::int64_t>(r.runtime));
    doc.set("transactions", static_cast<std::int64_t>(r.transactions));
    doc.set("injection_rate", r.injectionRate);
    doc.set("avg_tx_lat", r.avgTxLatency);
    doc.set("avg_pkt_lat", r.avgPacketLatency);
    doc.set("avg_defl", r.avgDeflections);
    doc.set("bp_fraction", r.bpFraction);
    doc.set("fwd", static_cast<std::int64_t>(r.forwardSwitches));
    doc.set("rev", static_cast<std::int64_t>(r.reverseSwitches));
    doc.set("gossip", static_cast<std::int64_t>(r.gossipSwitches));
    doc.set("net", toJson(r.net));
    doc.set("energy", toJson(r.energy));
    return doc.dump(2) + "\n" + obsFingerprint(r.obs);
}

/** Serialize everything an open-loop run exports. */
std::string
fingerprint(const OpenLoopResult &r)
{
    JsonValue doc = JsonValue::object();
    doc.set("accepted", r.acceptedRate);
    doc.set("avg_pkt_lat", r.avgPacketLatency);
    doc.set("p50_pkt_lat", r.p50PacketLatency);
    doc.set("p95_pkt_lat", r.p95PacketLatency);
    doc.set("p99_pkt_lat", r.p99PacketLatency);
    doc.set("avg_flit_lat", r.avgFlitLatency);
    doc.set("avg_hops", r.avgHops);
    doc.set("avg_defl", r.avgDeflections);
    doc.set("energy_per_flit", r.energyPerFlit);
    doc.set("bp_fraction", r.bpFraction);
    doc.set("saturated", r.saturated);
    doc.set("net", toJson(r.stats));
    doc.set("energy", toJson(r.energy));
    doc.set("faults", toJson(r.faults));
    return doc.dump(2) + "\n" + obsFingerprint(r.obs);
}

std::string
tmpCkpt(const std::string &name)
{
    return std::string(testing::TempDir()) + "/" + name;
}

std::vector<double>
uniformRates(const NetworkConfig &cfg, double rate)
{
    return std::vector<double>(
        static_cast<std::size_t>(cfg.width * cfg.height), rate);
}

/** One snapshot/restore scenario. */
struct DiffCase
{
    const char *name;
    FlowControl fc;
    const char *pattern;
    double rate;
    Cycle snapshotCycle; ///< where the donor run is interrupted
    double corruptRate;  ///< armed with end-to-end reliability
    double linkDownRate; ///< link outage windows (loss-free stalls)
};

std::string
caseName(const testing::TestParamInfo<DiffCase> &info)
{
    return info.param.name;
}

NetworkConfig
diffConfig(const DiffCase &p)
{
    NetworkConfig cfg = testConfig(4, 4);
    armObservers(cfg);
    if (p.fc == FlowControl::AfcAdaptive) {
        // Fast epochs: several adaptation boundaries fit before the
        // snapshot, so the serialized state includes moved thresholds
        // and live accumulators, not just the static initial values.
        cfg.afc.adapt.probeInterval = 256;
        cfg.afc.adapt.probeWindow = 32;
        cfg.afc.adapt.gain = 0.8;
    }
    cfg.faults.corruptRate = p.corruptRate;
    if (p.corruptRate > 0.0) {
        cfg.reliability.enabled = true;
        cfg.reliability.timeoutCycles = 64;
        cfg.reliability.maxRetries = 16;
    }
    if (p.linkDownRate > 0.0) {
        cfg.faults.linkDownRate = p.linkDownRate;
        // Outage windows far longer than the run: any window that has
        // started by the snapshot cycle is still active there, so
        // linkDownEvents > 0 at the snapshot proves the restore
        // happened inside a live outage.
        cfg.faults.linkDownMinCycles = 4000;
        cfg.faults.linkDownMaxCycles = 5000;
    }
    return cfg;
}

OpenLoopConfig
diffOl(const DiffCase &p)
{
    OpenLoopConfig ol;
    ol.pattern = p.pattern;
    ol.injectionRate = p.rate;
    ol.warmupCycles = 600;
    ol.measureCycles = 1200;
    ol.drainCycles = 30000;
    return ol;
}

class CkptDiffTest : public testing::TestWithParam<DiffCase>
{
};

TEST_P(CkptDiffTest, SnapshotRestoreBitIdentical)
{
    const DiffCase &p = GetParam();
    NetworkConfig cfg = diffConfig(p);
    OpenLoopConfig ol = diffOl(p);
    std::vector<double> rates = uniformRates(cfg, p.rate);

    // Reference: uninterrupted run.
    OpenLoopRun ref(cfg, p.fc, ol, rates);
    std::string refFp = fingerprint(ref.finish());

    // Donor: identical run interrupted at the snapshot cycle.
    const std::string path = tmpCkpt(std::string("diff_") + p.name +
                                     ".ckpt");
    OpenLoopRun donor(cfg, p.fc, ol, rates);
    while (donor.cycle() < p.snapshotCycle)
        donor.step();
    ASSERT_FALSE(donor.done());

    if (p.corruptRate > 0.0) {
        // The snapshot must actually land mid-retransmission: at
        // least one NIC holds unacknowledged packets in its
        // retransmit buffer when the state is serialized.
        std::size_t pending = 0;
        for (NodeId n = 0; n < donor.network().mesh().numNodes(); ++n)
            pending += donor.network().nic(n).retransmitPending();
        ASSERT_GT(pending, 0u)
            << "snapshot missed the retransmission window";
        ASSERT_GT(donor.network().faultInjector()->stats().corruptions,
                  0u);
    }
    if (p.linkDownRate > 0.0) {
        // Outages last >= 4000 cycles, the whole run is 1800: any
        // outage on record is still active at the snapshot cycle.
        ASSERT_GT(
            donor.network().faultInjector()->stats().linkDownEvents, 0u)
            << "snapshot missed the link_down window";
    }
    if (p.fc == FlowControl::AfcAdaptive) {
        // The snapshot must land where the controller holds live
        // state: inside a probe window the probe-min accumulator is
        // non-empty somewhere, elsewhere the sample-average
        // accumulator is.
        std::uint64_t probes = 0, samples = 0;
        for (NodeId n = 0; n < donor.network().mesh().numNodes(); ++n) {
            const auto *ad = dynamic_cast<const AfcAdaptiveRouter *>(
                &donor.network().router(n));
            ASSERT_NE(ad, nullptr);
            probes += ad->pendingProbeCount();
            samples += ad->pendingSampleCount();
        }
        if (p.snapshotCycle % 256 < 32)
            ASSERT_GT(probes, 0u)
                << "snapshot missed the probe window";
        else
            ASSERT_GT(samples, 0u)
                << "snapshot missed mid-adaptation accumulation";
    }

    donor.saveCheckpoint(path);

    // Restored: fresh process stand-in — a newly constructed run
    // adopting the donor's state through the file container.
    OpenLoopRun restored(cfg, p.fc, ol, rates);
    restored.loadCheckpoint(path);
    EXPECT_EQ(restored.cycle(), p.snapshotCycle);
    std::string resFp = fingerprint(restored.finish());

    EXPECT_EQ(resFp, refFp)
        << "restore at cycle " << p.snapshotCycle << " diverged for "
        << p.name;
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CkptDiffTest,
    testing::Values(
        // Fault-free AFC at each phase of the run: mid-warm-up, the
        // warm-up/measure boundary, mid-measurement.
        DiffCase{"afc_mid_warmup", FlowControl::Afc, "uniform", 0.30,
                 300, 0.0, 0.0},
        DiffCase{"afc_boundary", FlowControl::Afc, "uniform", 0.30,
                 600, 0.0, 0.0},
        DiffCase{"afc_mid_measure", FlowControl::Afc, "uniform", 0.30,
                 900, 0.0, 0.0},
        // High load: AFC mode switches + gossip in flight.
        DiffCase{"afc_hi_load", FlowControl::Afc, "uniform", 0.45,
                 900, 0.0, 0.0},
        // Other flow controls, transpose for non-uniform flows.
        DiffCase{"bp_mid_measure", FlowControl::Backpressured,
                 "transpose", 0.20, 900, 0.0, 0.0},
        DiffCase{"bpl_mid_measure", FlowControl::Backpressureless,
                 "uniform", 0.25, 900, 0.0, 0.0},
        DiffCase{"drop_mid_measure", FlowControl::BackpressurelessDrop,
                 "uniform", 0.20, 900, 0.0, 0.0},
        // Snapshot taken mid-retransmission (corruption + end-to-end
        // reliability; retransmit buffers asserted non-empty).
        DiffCase{"bp_mid_retransmission", FlowControl::Backpressured,
                 "uniform", 0.20, 900, 0.02, 0.0},
        DiffCase{"afc_mid_retransmission", FlowControl::Afc,
                 "uniform", 0.20, 900, 0.02, 0.0},
        // Snapshot taken inside an active link_down window.
        DiffCase{"bp_link_down_window", FlowControl::Backpressured,
                 "uniform", 0.15, 900, 0.0, 0.001},
        // Self-tuning AFC: 784 % 256 = 16 lands inside the 32-cycle
        // probe window (probe-min accumulator live); 900 % 256 = 132
        // lands mid-sample accumulation after three adaptation
        // boundaries have already moved the thresholds.
        DiffCase{"afc_ad_mid_probe", FlowControl::AfcAdaptive,
                 "uniform", 0.30, 784, 0.0, 0.0},
        DiffCase{"afc_ad_mid_adapt", FlowControl::AfcAdaptive,
                 "hotspot_drift", 0.25, 900, 0.0, 0.0}),
    caseName);

/** Chained snapshots: restore, run a while, snapshot again, restore
 *  again — generations of checkpoints of checkpoints must still land
 *  on the reference bit-for-bit (the journal rotates generations, so
 *  a resumed process routinely restores a checkpoint written by a
 *  previous restore). */
TEST(CkptDiff, ChainedSnapshotsBitIdentical)
{
    DiffCase p{"chained", FlowControl::Afc, "uniform", 0.30, 0, 0.0,
               0.0};
    NetworkConfig cfg = diffConfig(p);
    OpenLoopConfig ol = diffOl(p);
    std::vector<double> rates = uniformRates(cfg, p.rate);

    OpenLoopRun ref(cfg, p.fc, ol, rates);
    std::string refFp = fingerprint(ref.finish());

    const std::string pathA = tmpCkpt("chain_a.ckpt");
    const std::string pathB = tmpCkpt("chain_b.ckpt");

    OpenLoopRun first(cfg, p.fc, ol, rates);
    while (first.cycle() < 450)
        first.step();
    first.saveCheckpoint(pathA);

    OpenLoopRun second(cfg, p.fc, ol, rates);
    second.loadCheckpoint(pathA);
    while (second.cycle() < 1100)
        second.step();
    second.saveCheckpoint(pathB);

    OpenLoopRun third(cfg, p.fc, ol, rates);
    third.loadCheckpoint(pathB);
    EXPECT_EQ(third.cycle(), 1100u);
    EXPECT_EQ(fingerprint(third.finish()), refFp);
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
}

/** The observability stream path is excluded from the config hash: a
 *  restored run may redirect its stream without invalidating the
 *  snapshot, and the streamed series bytes must match the donor's. */
TEST(CkptDiff, StreamRedirectAcrossRestore)
{
    DiffCase p{"stream", FlowControl::Afc, "uniform", 0.30, 0, 0.0,
               0.0};
    NetworkConfig cfg = diffConfig(p);
    OpenLoopConfig ol = diffOl(p);
    std::vector<double> rates = uniformRates(cfg, p.rate);

    NetworkConfig refCfg = cfg;
    refCfg.obs.streamPath = tmpCkpt("stream_ref.csv");
    OpenLoopRun ref(refCfg, p.fc, ol, rates);
    std::string refFp = fingerprint(ref.finish());

    const std::string path = tmpCkpt("stream.ckpt");
    NetworkConfig donorCfg = cfg;
    donorCfg.obs.streamPath = tmpCkpt("stream_donor.csv");
    OpenLoopRun donor(donorCfg, p.fc, ol, rates);
    while (donor.cycle() < 900)
        donor.step();
    donor.saveCheckpoint(path);

    NetworkConfig resCfg = cfg;
    resCfg.obs.streamPath = tmpCkpt("stream_restored.csv");
    OpenLoopRun restored(resCfg, p.fc, ol, rates);
    restored.loadCheckpoint(path);
    EXPECT_EQ(fingerprint(restored.finish()), refFp);
    std::remove(path.c_str());
    std::remove(refCfg.obs.streamPath.c_str());
    std::remove(donorCfg.obs.streamPath.c_str());
    std::remove(resCfg.obs.streamPath.c_str());
}

/** Shared warm-up forking: a run adopting a saved warm-up prefix must
 *  be bit-identical to one that simulated the prefix itself — both
 *  with the donor's own budgets and with a different measurement
 *  budget (the fork hash excludes post-warm-up parameters). */
TEST(CkptDiff, WarmupForkBitIdentical)
{
    DiffCase p{"fork", FlowControl::Afc, "uniform", 0.30, 0, 0.0, 0.0};
    NetworkConfig cfg = diffConfig(p);
    OpenLoopConfig ol = diffOl(p);
    std::vector<double> rates = uniformRates(cfg, p.rate);

    const std::string path = tmpCkpt("warmfork.ckpt");
    OpenLoopRun donor(cfg, p.fc, ol, rates);
    while (donor.cycle() < ol.warmupCycles)
        donor.step();
    donor.saveWarmupFork(path);

    // Same budgets: forked == uninterrupted.
    OpenLoopRun ref(cfg, p.fc, ol, rates);
    std::string refFp = fingerprint(ref.finish());
    OpenLoopRun forked(cfg, p.fc, ol, rates);
    forked.loadWarmupFork(path);
    EXPECT_EQ(forked.cycle(), ol.warmupCycles);
    EXPECT_EQ(fingerprint(forked.finish()), refFp);

    // Different measurement budget forked from the same prefix.
    OpenLoopConfig shorter = ol;
    shorter.measureCycles = 700;
    OpenLoopRun ref2(cfg, p.fc, shorter, rates);
    std::string ref2Fp = fingerprint(ref2.finish());
    OpenLoopRun forked2(cfg, p.fc, shorter, rates);
    forked2.loadWarmupFork(path);
    EXPECT_EQ(fingerprint(forked2.finish()), ref2Fp);
    std::remove(path.c_str());
}

template <typename Fn>
void
expectSimError(Fn fn, const std::string &substr)
{
    try {
        fn();
        FAIL() << "expected SimError containing \"" << substr << "\"";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
            << "got: " << e.what();
    }
}

/** Every afc.adapt.* key participates in the checkpoint config hash:
 *  resuming a snapshot under different controller knobs would
 *  silently produce a run neither configuration describes, so each
 *  changed key must be rejected — and the unchanged configuration
 *  must still restore. */
TEST(CkptDiffAdaptive, AdaptKeysAreConfigHashGuarded)
{
    DiffCase p{"adapt_guard", FlowControl::AfcAdaptive, "uniform",
               0.30, 0, 0.0, 0.0};
    NetworkConfig cfg = diffConfig(p);
    OpenLoopConfig ol = diffOl(p);
    std::vector<double> rates = uniformRates(cfg, p.rate);

    const std::string path = tmpCkpt("adapt_guard.ckpt");
    OpenLoopRun donor(cfg, p.fc, ol, rates);
    while (donor.cycle() < 500)
        donor.step();
    donor.saveCheckpoint(path);

    auto expectRejected = [&](auto mutate) {
        NetworkConfig other = cfg;
        mutate(other);
        OpenLoopRun restored(other, p.fc, ol,
                             uniformRates(other, p.rate));
        expectSimError([&] { restored.loadCheckpoint(path); },
                       "checkpoint config mismatch");
    };
    expectRejected(
        [](NetworkConfig &c) { c.afc.adapt.probeInterval = 512; });
    expectRejected(
        [](NetworkConfig &c) { c.afc.adapt.probeWindow = 64; });
    expectRejected([](NetworkConfig &c) { c.afc.adapt.gain = 0.4; });
    expectRejected(
        [](NetworkConfig &c) { c.afc.adapt.minScale = 0.6; });
    expectRejected(
        [](NetworkConfig &c) { c.afc.adapt.maxScale = 1.4; });
    expectRejected(
        [](NetworkConfig &c) { c.afc.adapt.gapFloor = 0.1; });

    OpenLoopRun restored(cfg, p.fc, ol, rates);
    restored.loadCheckpoint(path);
    EXPECT_EQ(restored.cycle(), 500u);
    std::remove(path.c_str());
}

/** Mid-run ClosedLoopRun snapshot restored into a fresh harness must
 *  finish bit-identical to a never-interrupted run — cores, MSHR
 *  maps, L2 response heaps, the transaction counter and the
 *  measurement baselines all travel through the container. Runs
 *  afc_adaptive so threshold state rides along too. */
TEST(CkptDiffClosedLoop, SnapshotRestoreBitIdentical)
{
    NetworkConfig cfg = testConfig(4, 4);
    armObservers(cfg);
    cfg.afc.adapt.probeInterval = 256;
    cfg.afc.adapt.probeWindow = 32;
    cfg.afc.adapt.gain = 0.8;
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    ClosedLoopRun ref(cfg, FlowControl::AfcAdaptive, w);
    std::string refFp = fingerprint(ref.finish());

    // The scaled run completes near cycle 850: cycle 500 lands
    // mid-measurement with transactions in flight everywhere.
    const std::string path = tmpCkpt("closedloop_diff.ckpt");
    ClosedLoopRun donor(cfg, FlowControl::AfcAdaptive, w);
    while (!donor.done() && donor.cycle() < 500)
        donor.step();
    ASSERT_FALSE(donor.done())
        << "snapshot cycle must interrupt the run";
    donor.saveCheckpoint(path);

    ClosedLoopRun restored(cfg, FlowControl::AfcAdaptive, w);
    restored.loadCheckpoint(path);
    EXPECT_EQ(restored.cycle(), 500u);
    EXPECT_EQ(fingerprint(restored.finish()), refFp)
        << "closed-loop restore diverged";
    std::remove(path.c_str());
}

/** The closed-loop harness guard: a snapshot saved under one workload
 *  must not restore into a harness with different transaction
 *  budgets, and a different network config must still fail the
 *  network's own config-hash guard inside the same container. */
TEST(CkptDiffClosedLoop, WorkloadAndConfigMismatchRejected)
{
    NetworkConfig cfg = testConfig(4, 4);
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    const std::string path = tmpCkpt("closedloop_guard.ckpt");
    ClosedLoopRun donor(cfg, FlowControl::Afc, w);
    while (donor.cycle() < 400)
        donor.step();
    donor.saveCheckpoint(path);

    WorkloadProfile longer = w;
    longer.measureTransactions *= 2;
    ClosedLoopRun badHarness(cfg, FlowControl::Afc, longer);
    expectSimError([&] { badHarness.loadCheckpoint(path); },
                   "checkpoint harness mismatch");

    NetworkConfig other = cfg;
    other.seed = cfg.seed + 1;
    ClosedLoopRun badConfig(other, FlowControl::Afc, w);
    expectSimError([&] { badConfig.loadCheckpoint(path); },
                   "checkpoint config mismatch");
    std::remove(path.c_str());
}

} // namespace
} // namespace afcsim
