/**
 * @file
 * Checkpoint container and corruption suite (DESIGN.md S20). The
 * contract under test: every way a checkpoint file can be damaged —
 * missing, truncated header, truncated payload, flipped byte, bad
 * magic, version skew, kind mismatch — raises a recoverable SimError
 * naming the file and the defect; a corrupt checkpoint must never
 * crash the process or silently restore wrong state. The second half
 * exercises the semantic guards layered above the container: config
 * hash, harness-parameter hash and warm-up-fork hash mismatches.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serial.hh"
#include "common/config.hh"
#include "common/error.hh"
#include "exp/journal.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "testutil.hh"
#include "traffic/openloop.hh"

namespace afcsim
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return std::string(testing::TempDir()) + "/" + name;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Expect `fn` to throw SimError whose message contains `substr`. */
template <typename Fn>
void
expectSimError(Fn fn, const std::string &substr)
{
    try {
        fn();
        FAIL() << "expected SimError containing \"" << substr << "\"";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
            << "got: " << e.what();
    }
}

std::vector<std::uint8_t>
samplePayload()
{
    ckpt::Writer w;
    w.u64(0x1122334455667788ULL);
    w.str("afcsim checkpoint payload");
    for (int i = 0; i < 64; ++i)
        w.u32(static_cast<std::uint32_t>(i * 2654435761U));
    return w.bytes();
}

TEST(CkptSerial, WriterReaderRoundtripAllPrimitives)
{
    ckpt::Writer w;
    w.u8(0xab);
    w.u32(0xdeadbeefU);
    w.u64(0x0123456789abcdefULL);
    w.i32(-42);
    w.i64(-1234567890123456789LL);
    w.b(true);
    w.b(false);
    w.f64(3.14159265358979);
    w.f64(-0.0);
    w.str("hello");
    w.str("");

    ckpt::Reader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefU);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.i64(), -1234567890123456789LL);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.f64(), 3.14159265358979);
    double negzero = r.f64();
    EXPECT_EQ(negzero, -0.0);
    EXPECT_TRUE(std::signbit(negzero)); // bit pattern, not just value
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    EXPECT_NO_THROW(r.finish());
}

TEST(CkptSerial, ReaderBoundsCheckedReads)
{
    ckpt::Reader r(std::vector<std::uint8_t>{1, 2, 3, 4}, "tiny");
    expectSimError([&] { r.u64(); }, "truncated payload (need 8 bytes");
}

TEST(CkptSerial, ReaderStringLengthBeyondBuffer)
{
    ckpt::Writer w;
    w.u64(1000); // claims a 1000-byte string in an 8-byte buffer
    ckpt::Reader r(w.bytes(), "short-str");
    expectSimError([&] { r.str(); }, "truncated payload (need 1000");
}

TEST(CkptSerial, ReaderFinishRejectsTrailingBytes)
{
    ckpt::Writer w;
    w.u64(7);
    w.u8(9);
    ckpt::Reader r(w.bytes(), "trailer");
    EXPECT_EQ(r.u64(), 7u);
    expectSimError([&] { r.finish(); },
                   "1 trailing bytes after restore (layout mismatch)");
}

TEST(CkptSerial, FileRoundtripAndAtomicity)
{
    const std::string path = tmpPath("roundtrip.ckpt");
    std::vector<std::uint8_t> payload = samplePayload();
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, payload);
    EXPECT_EQ(ckpt::readFile(path, ckpt::Kind::OpenLoopRun), payload);
    // The temporary sibling must be gone after the atomic rename.
    std::ifstream tmp(path + ".tmp", std::ios::binary);
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(CkptSerial, EmptyPayloadRoundtrips)
{
    const std::string path = tmpPath("empty.ckpt");
    ckpt::writeFile(path, ckpt::Kind::RunResult, {});
    EXPECT_TRUE(ckpt::readFile(path, ckpt::Kind::RunResult).empty());
    std::remove(path.c_str());
}

TEST(CkptSerial, MissingFileIsRecoverable)
{
    expectSimError(
        [] { ckpt::readFile(tmpPath("no_such.ckpt"),
                            ckpt::Kind::OpenLoopRun); },
        "cannot open file");
}

TEST(CkptSerial, TruncatedHeaderIsRecoverable)
{
    const std::string path = tmpPath("short_header.ckpt");
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, samplePayload());
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes.resize(16);
    spit(path, bytes);
    expectSimError(
        [&] { ckpt::readFile(path, ckpt::Kind::OpenLoopRun); },
        "truncated header (16 bytes, need 32)");
    std::remove(path.c_str());
}

TEST(CkptSerial, BadMagicIsRecoverable)
{
    const std::string path = tmpPath("bad_magic.ckpt");
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, samplePayload());
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[0] ^= 0xff;
    spit(path, bytes);
    expectSimError(
        [&] { ckpt::readFile(path, ckpt::Kind::OpenLoopRun); },
        "bad magic (not an afcsim checkpoint)");
    std::remove(path.c_str());
}

TEST(CkptSerial, VersionSkewIsRecoverable)
{
    const std::string path = tmpPath("version_skew.ckpt");
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, samplePayload());
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[8] += 1; // format version lives at offset 8
    spit(path, bytes);
    expectSimError(
        [&] { ckpt::readFile(path, ckpt::Kind::OpenLoopRun); },
        "format version " + std::to_string(ckpt::kFormatVersion + 1) +
            " (this build reads version " +
            std::to_string(ckpt::kFormatVersion) + ")");
    std::remove(path.c_str());
}

TEST(CkptSerial, KindMismatchIsRecoverable)
{
    const std::string path = tmpPath("kind_mismatch.ckpt");
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, samplePayload());
    expectSimError(
        [&] { ckpt::readFile(path, ckpt::Kind::RunResult); },
        "payload kind 1 (expected 2)");
    std::remove(path.c_str());
}

TEST(CkptSerial, TruncatedPayloadIsRecoverable)
{
    const std::string path = tmpPath("short_payload.ckpt");
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, samplePayload());
    std::vector<std::uint8_t> bytes = slurp(path);
    bytes.resize(bytes.size() - 3);
    spit(path, bytes);
    expectSimError(
        [&] { ckpt::readFile(path, ckpt::Kind::OpenLoopRun); },
        "truncated payload (header says");
    std::remove(path.c_str());
}

TEST(CkptSerial, FlippedPayloadByteIsRecoverable)
{
    const std::string path = tmpPath("flipped_byte.ckpt");
    std::vector<std::uint8_t> payload = samplePayload();
    ckpt::writeFile(path, ckpt::Kind::OpenLoopRun, payload);
    std::vector<std::uint8_t> bytes = slurp(path);
    // Flip one bit in the middle of the payload region (offset >= 32).
    bytes[32 + payload.size() / 2] ^= 0x10;
    spit(path, bytes);
    expectSimError(
        [&] { ckpt::readFile(path, ckpt::Kind::OpenLoopRun); },
        "checksum mismatch (corrupt payload)");
    std::remove(path.c_str());
}

/// @name Semantic guards above the container: a checksum-valid
/// checkpoint loaded into the wrong run must be rejected, not
/// silently adopted.
/// @{

OpenLoopConfig
guardOl()
{
    OpenLoopConfig ol;
    ol.pattern = "uniform";
    ol.injectionRate = 0.2;
    ol.warmupCycles = 100;
    ol.measureCycles = 200;
    return ol;
}

std::vector<double>
uniformRates(const NetworkConfig &cfg, double rate)
{
    return std::vector<double>(
        static_cast<std::size_t>(cfg.width * cfg.height), rate);
}

TEST(CkptGuards, ConfigMismatchRejected)
{
    const std::string path = tmpPath("config_mismatch.ckpt");
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol = guardOl();
    OpenLoopRun donor(cfg, FlowControl::Afc, ol, uniformRates(cfg, 0.2));
    for (int i = 0; i < 50; ++i)
        donor.step();
    donor.saveCheckpoint(path);

    NetworkConfig other = testConfig();
    other.seed = cfg.seed + 1;
    OpenLoopRun restored(other, FlowControl::Afc, ol,
                         uniformRates(other, 0.2));
    expectSimError([&] { restored.loadCheckpoint(path); },
                   "checkpoint config mismatch");
    std::remove(path.c_str());
}

TEST(CkptGuards, FlowControlMismatchRejected)
{
    const std::string path = tmpPath("fc_mismatch.ckpt");
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol = guardOl();
    OpenLoopRun donor(cfg, FlowControl::Afc, ol, uniformRates(cfg, 0.2));
    for (int i = 0; i < 50; ++i)
        donor.step();
    donor.saveCheckpoint(path);

    OpenLoopRun restored(cfg, FlowControl::Backpressured, ol,
                         uniformRates(cfg, 0.2));
    expectSimError([&] { restored.loadCheckpoint(path); },
                   "checkpoint config mismatch");
    std::remove(path.c_str());
}

TEST(CkptGuards, HarnessMismatchRejected)
{
    const std::string path = tmpPath("harness_mismatch.ckpt");
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol = guardOl();
    OpenLoopRun donor(cfg, FlowControl::Afc, ol, uniformRates(cfg, 0.2));
    for (int i = 0; i < 50; ++i)
        donor.step();
    donor.saveCheckpoint(path);

    OpenLoopConfig longer = ol;
    longer.measureCycles = 400;
    OpenLoopRun restored(cfg, FlowControl::Afc, longer,
                         uniformRates(cfg, 0.2));
    expectSimError([&] { restored.loadCheckpoint(path); },
                   "checkpoint harness mismatch");
    std::remove(path.c_str());
}

TEST(CkptGuards, CorruptedRunCheckpointNeverRestoresSilently)
{
    // Flip a byte inside the payload's leading parameter hash and
    // patch the container checksum so the container itself verifies:
    // the semantic guard, not the checksum, must catch it.
    const std::string path = tmpPath("patched_payload.ckpt");
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol = guardOl();
    OpenLoopRun donor(cfg, FlowControl::Afc, ol, uniformRates(cfg, 0.2));
    for (int i = 0; i < 50; ++i)
        donor.step();
    donor.saveCheckpoint(path);

    std::vector<std::uint8_t> bytes = slurp(path);
    bytes[32] ^= 0x01; // paramsHash is the first payload field
    std::uint64_t sum = ckpt::fnv1a(bytes.data() + 32, bytes.size() - 32);
    for (int i = 0; i < 8; ++i)
        bytes[24 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
    spit(path, bytes);

    OpenLoopRun restored(cfg, FlowControl::Afc, ol,
                         uniformRates(cfg, 0.2));
    expectSimError([&] { restored.loadCheckpoint(path); },
                   "checkpoint harness mismatch");
    std::remove(path.c_str());
}

TEST(CkptGuards, WarmupForkMismatchRejected)
{
    const std::string path = tmpPath("fork_mismatch.ckpt");
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol = guardOl();
    OpenLoopRun donor(cfg, FlowControl::Afc, ol, uniformRates(cfg, 0.2));
    while (donor.cycle() < ol.warmupCycles)
        donor.step();
    donor.saveWarmupFork(path);

    // A different injection rate changes the warm-up prefix.
    OpenLoopConfig other = ol;
    other.injectionRate = 0.25;
    OpenLoopRun fork(cfg, FlowControl::Afc, other,
                     uniformRates(cfg, 0.25));
    expectSimError([&] { fork.loadWarmupFork(path); },
                   "warm-up fork mismatch");

    // A different measurement budget does NOT: the fork is keyed on
    // the warm-up-determining parameters only.
    OpenLoopConfig budget = ol;
    budget.measureCycles = 350;
    OpenLoopRun ok(cfg, FlowControl::Afc, budget,
                   uniformRates(cfg, 0.2));
    EXPECT_NO_THROW(ok.loadWarmupFork(path));
    EXPECT_EQ(ok.cycle(), ol.warmupCycles);
    std::remove(path.c_str());
}

TEST(CkptGuards, WarmupForkOnlyValidAtBoundary)
{
    const std::string path = tmpPath("fork_offside.ckpt");
    NetworkConfig cfg = testConfig();
    OpenLoopConfig ol = guardOl();
    OpenLoopRun run(cfg, FlowControl::Afc, ol, uniformRates(cfg, 0.2));
    for (int i = 0; i < 40; ++i)
        run.step();
    expectSimError([&] { run.saveWarmupFork(path); },
                   "warm-up fork must be saved exactly at the warm-up "
                   "boundary");
}

/// @}

/** Watchdog postmortem: a run whose audit trips mid-flight must
 *  leave its error record in the journal with a full state
 *  checkpoint and a diagnostic snapshot parked next to it. Credit
 *  loss deliberately breaks the backpressured credit invariant
 *  (config.hh), so this is the designed end-to-end trigger. */
TEST(CkptJournal, WatchdogTripLeavesPostmortem)
{
    const std::string dir =
        std::string(testing::TempDir()) + "/postmortem_journal";
    std::filesystem::remove_all(dir);

    exp::ExperimentSpec spec;
    spec.name = "postmortem_probe";
    spec.kind = exp::RunKind::OpenLoop;
    spec.base = testConfig(4, 4);
    spec.base.watchdog.enabled = true;
    spec.base.watchdog.intervalCycles = 64;
    spec.base.faults.creditLossRate = 0.05;
    spec.configs = {FlowControl::Backpressured};
    spec.rates = {0.2};
    spec.warmupCycles = 400;
    spec.measureCycles = 800;

    exp::Journal journal(dir);
    journal.open("afcsim-exp", spec);
    std::vector<exp::RunPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 1u);

    exp::RunResult r = exp::executeRun(points[0], journal);
    ASSERT_FALSE(r.error.empty());
    EXPECT_NE(r.error.find("credit-consistency"), std::string::npos)
        << r.error;

    // The full dying state, in a valid container, plus the report.
    const std::string ckptPath = journal.postmortemCheckpointPath(0);
    EXPECT_NO_THROW(ckpt::readFile(ckptPath, ckpt::Kind::OpenLoopRun));
    std::ifstream report(journal.postmortemReportPath(0));
    ASSERT_TRUE(report.good());
    std::string text((std::istreambuf_iterator<char>(report)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("postmortem: postmortem_probe run 0"),
              std::string::npos);
    EXPECT_NE(text.find("credit-consistency"), std::string::npos);

    // The error record is journaled like any other result: a resume
    // reloads it rather than re-running the doomed point.
    exp::RunResult cached;
    ASSERT_TRUE(journal.loadResult(points[0], cached));
    EXPECT_EQ(cached.error, r.error);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace afcsim
