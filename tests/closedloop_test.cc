/**
 * @file
 * Tests for the closed-loop multicore substrate: cores, L2 banks,
 * transaction lifecycle, MSHR throttling, and workload presets.
 */

#include <gtest/gtest.h>

#include "sim/closedloop.hh"
#include "sim/memsys.hh"
#include "sim/workload.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

TEST(Memsys, VnetAssignments)
{
    EXPECT_EQ(vnetFor(MsgType::ReadReq), kVnetRequest);
    EXPECT_EQ(vnetFor(MsgType::WriteReq), kVnetRequest);
    EXPECT_EQ(vnetFor(MsgType::Ack), kVnetResponse);
    EXPECT_EQ(vnetFor(MsgType::WbData), kVnetData);
    EXPECT_EQ(vnetFor(MsgType::DataResp), kVnetData);
}

TEST(Memsys, TagRoundTrip)
{
    for (MsgType t : {MsgType::ReadReq, MsgType::WriteReq,
                      MsgType::WbData, MsgType::DataResp, MsgType::Ack}) {
        std::uint64_t tag = packTag(123456789, t);
        EXPECT_EQ(tagTxId(tag), 123456789u);
        EXPECT_EQ(tagMsgType(tag), t);
    }
}

TEST(Workload, PresetsHaveTableIIIRates)
{
    EXPECT_DOUBLE_EQ(workloadByName("apache").paperInjRate, 0.78);
    EXPECT_DOUBLE_EQ(workloadByName("oltp").paperInjRate, 0.68);
    EXPECT_DOUBLE_EQ(workloadByName("specjbb").paperInjRate, 0.77);
    EXPECT_DOUBLE_EQ(workloadByName("barnes").paperInjRate, 0.10);
    EXPECT_DOUBLE_EQ(workloadByName("ocean").paperInjRate, 0.19);
    EXPECT_DOUBLE_EQ(workloadByName("water").paperInjRate, 0.09);
}

TEST(Workload, GroupsPartitionAll)
{
    EXPECT_EQ(allWorkloads().size(), 6u);
    EXPECT_EQ(highLoadWorkloads().size(), 3u);
    EXPECT_EQ(lowLoadWorkloads().size(), 3u);
    for (const auto &w : highLoadWorkloads())
        EXPECT_TRUE(w.highLoad);
    for (const auto &w : lowLoadWorkloads())
        EXPECT_FALSE(w.highLoad);
}

TEST(ClosedLoop, SmallRunCompletes)
{
    NetworkConfig cfg = testConfig();
    WorkloadProfile w = waterWorkload();
    w.warmupTransactions = 200;
    w.measureTransactions = 1000;
    ClosedLoopResult r =
        runClosedLoop(cfg, FlowControl::Backpressured, w);
    EXPECT_GE(r.transactions, 1000u);
    EXPECT_GT(r.runtime, 0u);
    EXPECT_GT(r.avgTxLatency, 0.0);
    EXPECT_GT(r.injectionRate, 0.0);
    EXPECT_GT(r.energy.total(), 0.0);
}

TEST(ClosedLoop, AllFlowControlsComplete)
{
    NetworkConfig cfg = testConfig();
    WorkloadProfile w = oceanWorkload();
    w.warmupTransactions = 100;
    w.measureTransactions = 600;
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc, FlowControl::AfcAlwaysBackpressured,
          FlowControl::BackpressuredIdealBypass}) {
        ClosedLoopResult r = runClosedLoop(cfg, fc, w);
        EXPECT_GE(r.transactions, 600u) << toString(fc);
    }
}

TEST(ClosedLoop, MshrLimitRespected)
{
    NetworkConfig cfg = testConfig();
    WorkloadProfile w = apacheWorkload();
    w.warmupTransactions = 50;
    w.measureTransactions = 400;
    w.issueProb = 0.9; // saturate the MSHRs
    ClosedLoopSystem sys(cfg, FlowControl::Backpressured, w);
    for (int k = 0; k < 2000; ++k) {
        for (NodeId n = 0; n < 9; ++n)
            EXPECT_LE(sys.core(n).outstanding(), w.mshrsPerCore);
        sys.core(0).tick(sys.network().now());
        // Drive through the harness-level API instead: one manual
        // step keeps the invariant observable mid-flight.
        sys.network().step();
    }
}

TEST(ClosedLoop, TransactionsBalance)
{
    NetworkConfig cfg = testConfig();
    WorkloadProfile w = barnesWorkload();
    w.warmupTransactions = 100;
    w.measureTransactions = 800;
    ClosedLoopSystem sys(cfg, FlowControl::Afc, w);
    ClosedLoopResult r = sys.run();
    std::uint64_t issued = 0, completed = 0, served = 0;
    for (NodeId n = 0; n < 9; ++n) {
        issued += sys.core(n).issued();
        completed += sys.core(n).completed();
        served += sys.bank(n).requestsServed();
    }
    // Every measured completion pairs with an issue (outstanding
    // transactions from warmup can still drain in, so completed may
    // slightly exceed issued-within-window; both stay close).
    EXPECT_GE(issued + 200, completed);
    EXPECT_GT(served, 0u);
    EXPECT_GE(r.transactions, 800u);
}

TEST(ClosedLoop, HighLoadProducesHighInjectionRate)
{
    NetworkConfig cfg = testConfig();
    WorkloadProfile w = apacheWorkload();
    w.warmupTransactions = 500;
    w.measureTransactions = 4000;
    ClosedLoopResult r =
        runClosedLoop(cfg, FlowControl::Backpressured, w);
    EXPECT_GT(r.injectionRate, 0.45);
}

TEST(ClosedLoop, LowLoadProducesLowInjectionRate)
{
    NetworkConfig cfg = testConfig();
    WorkloadProfile w = waterWorkload();
    w.warmupTransactions = 200;
    w.measureTransactions = 2000;
    ClosedLoopResult r =
        runClosedLoop(cfg, FlowControl::Backpressured, w);
    EXPECT_LT(r.injectionRate, 0.2);
}

TEST(ClosedLoop, AfcStaysBplOnLowLoadAndBpOnHighLoad)
{
    // The mode duty-cycle result of Sec. V: water ~99 %
    // backpressureless; apache >99 % backpressured.
    NetworkConfig cfg = testConfig();
    WorkloadProfile low = waterWorkload();
    low.warmupTransactions = 200;
    low.measureTransactions = 2000;
    ClosedLoopResult rl = runClosedLoop(cfg, FlowControl::Afc, low);
    EXPECT_LT(rl.bpFraction, 0.1);

    WorkloadProfile high = apacheWorkload();
    high.warmupTransactions = 500;
    high.measureTransactions = 4000;
    ClosedLoopResult rh = runClosedLoop(cfg, FlowControl::Afc, high);
    EXPECT_GT(rh.bpFraction, 0.9);
}

TEST(ClosedLoop, ThroughputHelper)
{
    ClosedLoopResult r;
    r.runtime = 1000;
    r.transactions = 500;
    EXPECT_DOUBLE_EQ(r.throughput(), 0.5);
    r.runtime = 0;
    EXPECT_DOUBLE_EQ(r.throughput(), 0.0);
}

} // namespace
} // namespace afcsim
