/**
 * @file
 * Unit tests for src/common: RNG, EWMA / traffic intensity,
 * statistics and configuration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/config.hh"
#include "common/ewma.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "router/vcshape.hh"

namespace afcsim
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42, 7);
    Rng b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsDiffer)
{
    Rng a(42, 1);
    Rng b(42, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Rng r(1);
    for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1u << 20}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(9);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowApproximatelyUniform)
{
    Rng r(123);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.below(kBuckets)];
    double expected = double(kDraws) / kBuckets;
    for (int b = 0; b < kBuckets; ++b)
        EXPECT_NEAR(counts[b], expected, expected * 0.06);
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(Rng, GeometricMean)
{
    Rng r(29);
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        sum += static_cast<double>(r.geometric(0.25));
    EXPECT_NEAR(sum / kDraws, 4.0, 0.2);
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng root(42);
    Rng a = root.fork(1);
    Rng b = root.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Ewma, ConvergesToConstantInput)
{
    Ewma e(0.9, 0.0);
    for (int i = 0; i < 500; ++i)
        e.update(10.0);
    EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ewma, WeightControlsMemory)
{
    Ewma fast(0.5), slow(0.99);
    fast.update(1.0);
    slow.update(1.0);
    EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, PaperUpdateRule)
{
    // m_new = 0.99 * m_old + 0.01 * l (Sec. IV).
    Ewma e(0.99, 2.0);
    e.update(4.0);
    EXPECT_DOUBLE_EQ(e.value(), 0.99 * 2.0 + 0.01 * 4.0);
}

TEST(TrafficIntensity, BoxcarOverFourCycles)
{
    // With weight 0 the EWMA tracks the boxcar exactly.
    TrafficIntensity ti(0.0);
    ti.recordCycle(4);
    ti.recordCycle(4);
    ti.recordCycle(4);
    double v = ti.recordCycle(4);
    EXPECT_DOUBLE_EQ(v, 4.0);
    v = ti.recordCycle(0);
    EXPECT_DOUBLE_EQ(v, 3.0); // window now 4,4,4,0
}

TEST(TrafficIntensity, SmoothingSuppressesBursts)
{
    TrafficIntensity ti(0.99);
    for (int i = 0; i < 100; ++i)
        ti.recordCycle(0);
    // One 4-cycle burst of 5 flits/cycle must not reach the
    // center-router forward threshold of 2.2 (Sec. III-B: EWMA
    // avoids mode switches on transient bursts).
    for (int i = 0; i < 4; ++i)
        ti.recordCycle(5);
    EXPECT_LT(ti.value(), 2.2);
}

TEST(TrafficIntensity, SustainedLoadCrossesThreshold)
{
    TrafficIntensity ti(0.99);
    for (int i = 0; i < 600; ++i)
        ti.recordCycle(3);
    EXPECT_GT(ti.value(), 2.2);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat a, b, all;
    Rng r(77);
    for (int i = 0; i < 1000; ++i) {
        double x = r.uniform() * 10;
        ((i % 2) ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 5); // [0,50) + overflow
    h.add(5.0);
    h.add(15.0);
    h.add(49.9);
    h.add(500.0);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(5), 1u); // overflow
}

TEST(Histogram, QuantileApproximation)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(NetStats, MergeAddsCounts)
{
    NetStats a, b;
    a.flitsInjected = 10;
    a.flitsDelivered = 8;
    b.flitsInjected = 5;
    b.flitsDelivered = 5;
    a.merge(b);
    EXPECT_EQ(a.flitsInjected, 15u);
    EXPECT_EQ(a.flitsDelivered, 13u);
}

TEST(Config, FlowControlNames)
{
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc, FlowControl::AfcAlwaysBackpressured,
          FlowControl::BackpressuredIdealBypass}) {
        EXPECT_EQ(flowControlFromString(toString(fc)), fc);
    }
    EXPECT_EQ(flowControlFromString("bless"),
              FlowControl::Backpressureless);
    EXPECT_EQ(flowControlFromString("BP"), FlowControl::Backpressured);
}

TEST(Config, FlitWidthsMatchPaper)
{
    // Sec. IV: 41 / 45 / 49 bits.
    EXPECT_EQ(FlitWidths::forFlowControl(FlowControl::Backpressured), 41);
    EXPECT_EQ(FlitWidths::forFlowControl(
                  FlowControl::BackpressuredIdealBypass), 41);
    EXPECT_EQ(FlitWidths::forFlowControl(FlowControl::Backpressureless),
              45);
    EXPECT_EQ(FlitWidths::forFlowControl(FlowControl::Afc), 49);
    EXPECT_EQ(FlitWidths::forFlowControl(
                  FlowControl::AfcAlwaysBackpressured), 49);
}

TEST(Config, Table2BufferBudgets)
{
    NetworkConfig cfg;
    // Baseline: 4x8 + 2x2x8 = 64 flits/port (Sec. IV).
    EXPECT_EQ(NetworkConfig::totalBufferFlits(cfg.vnets), 64);
    EXPECT_EQ(NetworkConfig::totalVcs(cfg.vnets), 8);
    // AFC lazy VCA: 8+8+16 VCs x 1 flit = 32 flits/port (factor 2).
    EXPECT_EQ(NetworkConfig::totalBufferFlits(cfg.afcVnets), 32);
    EXPECT_EQ(NetworkConfig::totalVcs(cfg.afcVnets), 32);
}

TEST(Config, DefaultsAreValid)
{
    NetworkConfig cfg;
    cfg.validate(); // must not exit
    SUCCEED();
}

TEST(Config, AfcThresholdDefaults)
{
    AfcConfig afc;
    EXPECT_DOUBLE_EQ(afc.cornerHigh, 1.8);
    EXPECT_DOUBLE_EQ(afc.cornerLow, 1.2);
    EXPECT_DOUBLE_EQ(afc.edgeHigh, 2.1);
    EXPECT_DOUBLE_EQ(afc.edgeLow, 1.3);
    EXPECT_DOUBLE_EQ(afc.centerHigh, 2.2);
    EXPECT_DOUBLE_EQ(afc.centerLow, 1.7);
    EXPECT_DOUBLE_EQ(afc.ewmaWeight, 0.99);
}

TEST(VcShape, FlatIndexing)
{
    VcShape shape({{2, 8}, {2, 8}, {4, 8}});
    EXPECT_EQ(shape.numVnets(), 3);
    EXPECT_EQ(shape.totalVcs(), 8);
    EXPECT_EQ(shape.base(0), 0);
    EXPECT_EQ(shape.base(1), 2);
    EXPECT_EQ(shape.base(2), 4);
    EXPECT_EQ(shape.count(2), 4);
    EXPECT_EQ(shape.depth(1), 8);
    EXPECT_EQ(shape.totalBufferFlits(), 64);
}

TEST(VcShape, VnetOfInverse)
{
    VcShape shape({{8, 1}, {8, 1}, {16, 1}});
    for (VcId vc = 0; vc < shape.totalVcs(); ++vc) {
        VnetId v = shape.vnetOf(vc);
        EXPECT_GE(vc, shape.base(v));
        EXPECT_LT(vc, shape.base(v) + shape.count(v));
    }
    EXPECT_EQ(shape.vnetOf(0), 0);
    EXPECT_EQ(shape.vnetOf(7), 0);
    EXPECT_EQ(shape.vnetOf(8), 1);
    EXPECT_EQ(shape.vnetOf(16), 2);
    EXPECT_EQ(shape.vnetOf(31), 2);
    EXPECT_EQ(shape.totalBufferFlits(), 32);
}

TEST(Options, ParsesKeyValues)
{
    const char *argv[] = {"prog", "rate=0.5", "mesh=8", "verbose"};
    Options opt(4, const_cast<char **>(argv));
    EXPECT_TRUE(opt.has("rate"));
    EXPECT_DOUBLE_EQ(opt.getDouble("rate", 0.0), 0.5);
    EXPECT_EQ(opt.getInt("mesh", 0), 8);
    EXPECT_EQ(opt.get("verbose", ""), "true");
    EXPECT_EQ(opt.getInt("missing", 42), 42);
}

} // namespace
} // namespace afcsim
