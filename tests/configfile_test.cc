/**
 * @file
 * Tests for the text configuration loader.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/configfile.hh"
#include "common/error.hh"

namespace afcsim
{
namespace
{

TEST(ConfigFile, ParsesBasicKeys)
{
    NetworkConfig cfg = parseNetworkConfig(
        "width = 5\n"
        "height = 4\n"
        "link_latency = 3\n"
        "seed = 99\n");
    EXPECT_EQ(cfg.width, 5);
    EXPECT_EQ(cfg.height, 4);
    EXPECT_EQ(cfg.linkLatency, 3);
    EXPECT_EQ(cfg.seed, 99u);
}

TEST(ConfigFile, CommentsAndBlanksIgnored)
{
    NetworkConfig cfg = parseNetworkConfig(
        "# a comment\n"
        "\n"
        "width = 4   # trailing comment\n"
        "height = 4\n");
    EXPECT_EQ(cfg.width, 4);
}

TEST(ConfigFile, VnetShapes)
{
    NetworkConfig cfg = parseNetworkConfig(
        "vnets = 1x4, 1x4, 2x4\n"
        "afc_vnets = 5x1, 5x1, 6x1\n");
    ASSERT_EQ(cfg.vnets.size(), 3u);
    EXPECT_EQ(cfg.vnets[0].numVcs, 1);
    EXPECT_EQ(cfg.vnets[0].bufferDepth, 4);
    EXPECT_EQ(cfg.vnets[2].numVcs, 2);
    EXPECT_EQ(cfg.afcVnets[2].numVcs, 6);
    EXPECT_EQ(cfg.afcVnets[2].bufferDepth, 1);
}

TEST(ConfigFile, DottedSubConfigs)
{
    NetworkConfig cfg = parseNetworkConfig(
        "afc.center_high = 3.5\n"
        "afc.ewma_weight = 0.9\n"
        "afc.always_backpressured = true\n"
        "energy.power_gating_efficiency = 0.8\n"
        "energy.buffer_leak_per_bit_cycle = 1e-4\n");
    EXPECT_DOUBLE_EQ(cfg.afc.centerHigh, 3.5);
    EXPECT_DOUBLE_EQ(cfg.afc.ewmaWeight, 0.9);
    EXPECT_TRUE(cfg.afc.alwaysBackpressured);
    EXPECT_DOUBLE_EQ(cfg.energy.powerGatingEfficiency, 0.8);
    EXPECT_DOUBLE_EQ(cfg.energy.bufferLeakPerBitCycle, 1e-4);
}

TEST(ConfigFile, DefaultsPreservedForUnsetKeys)
{
    NetworkConfig fresh;
    NetworkConfig cfg = parseNetworkConfig("width = 8\nheight = 8\n");
    EXPECT_EQ(cfg.linkLatency, fresh.linkLatency);
    EXPECT_EQ(cfg.vnets.size(), fresh.vnets.size());
    EXPECT_DOUBLE_EQ(cfg.afc.centerHigh, fresh.afc.centerHigh);
}

TEST(ConfigFile, LoadFromDisk)
{
    std::string path = ::testing::TempDir() + "/afcsim_test.cfg";
    {
        std::ofstream out(path);
        out << "width = 6\nheight = 3\neject_per_cycle = 2\n";
    }
    NetworkConfig cfg = loadNetworkConfig(path);
    EXPECT_EQ(cfg.width, 6);
    EXPECT_EQ(cfg.height, 3);
    EXPECT_EQ(cfg.ejectPerCycle, 2);
    std::remove(path.c_str());
}

/** Expect a ConfigError whose message contains `substr`. */
template <typename Fn>
void
expectConfigError(Fn fn, const std::string &substr)
{
    try {
        fn();
        FAIL() << "expected ConfigError containing '" << substr << "'";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
            << e.what();
    }
}

TEST(ConfigFile, ErrorOnUnknownKey)
{
    NetworkConfig cfg;
    expectConfigError([&] { applyConfigKey(cfg, "wdith", "3"); },
                      "unknown config key");
}

TEST(ConfigFile, ErrorOnBadNumber)
{
    NetworkConfig cfg;
    expectConfigError([&] { applyConfigKey(cfg, "width", "abc"); },
                      "bad integer");
}

TEST(ConfigFile, ErrorOnMalformedLine)
{
    expectConfigError([] { parseNetworkConfig("width 3\n"); },
                      "expected");
}

TEST(ConfigFile, ErrorOnBadShape)
{
    expectConfigError([] { parseNetworkConfig("vnets = 2-8\n"); }, "NxD");
}

TEST(ConfigFile, ParsedConfigValidates)
{
    // validate() runs at parse time: a 1-wide mesh is rejected.
    expectConfigError([] { parseNetworkConfig("width = 1\n"); },
                      "at least 2x2");
}

TEST(ConfigFile, FaultReliabilityWatchdogKeys)
{
    NetworkConfig cfg = parseNetworkConfig(
        "fault.corrupt_rate = 0.01\n"
        "fault.stall_rate = 0.001\n"
        "fault.stall_max = 16\n"
        "fault.fail_at_cycle = 5000\n"
        "reliability.enabled = true\n"
        "reliability.timeout = 256\n"
        "reliability.max_retries = 4\n"
        "watchdog.interval = 512\n"
        "watchdog.progress_window = 20000\n"
        "watchdog.credit_check = false\n");
    EXPECT_DOUBLE_EQ(cfg.faults.corruptRate, 0.01);
    EXPECT_DOUBLE_EQ(cfg.faults.stallRate, 0.001);
    EXPECT_EQ(cfg.faults.stallMaxCycles, 16u);
    EXPECT_EQ(cfg.faults.failAtCycle, 5000u);
    EXPECT_TRUE(cfg.faults.any());
    EXPECT_TRUE(cfg.reliability.enabled);
    EXPECT_EQ(cfg.reliability.timeoutCycles, 256u);
    EXPECT_EQ(cfg.reliability.maxRetries, 4);
    EXPECT_EQ(cfg.watchdog.intervalCycles, 512u);
    EXPECT_EQ(cfg.watchdog.progressWindowCycles, 20000u);
    EXPECT_FALSE(cfg.watchdog.creditCheck);

    expectConfigError(
        [] { parseNetworkConfig("fault.corrupt_rate = 1.5\n"); },
        "fault.corrupt_rate");
}

} // namespace
} // namespace afcsim
