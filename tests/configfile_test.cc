/**
 * @file
 * Tests for the text configuration loader.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/configfile.hh"

namespace afcsim
{
namespace
{

TEST(ConfigFile, ParsesBasicKeys)
{
    NetworkConfig cfg = parseNetworkConfig(
        "width = 5\n"
        "height = 4\n"
        "link_latency = 3\n"
        "seed = 99\n");
    EXPECT_EQ(cfg.width, 5);
    EXPECT_EQ(cfg.height, 4);
    EXPECT_EQ(cfg.linkLatency, 3);
    EXPECT_EQ(cfg.seed, 99u);
}

TEST(ConfigFile, CommentsAndBlanksIgnored)
{
    NetworkConfig cfg = parseNetworkConfig(
        "# a comment\n"
        "\n"
        "width = 4   # trailing comment\n"
        "height = 4\n");
    EXPECT_EQ(cfg.width, 4);
}

TEST(ConfigFile, VnetShapes)
{
    NetworkConfig cfg = parseNetworkConfig(
        "vnets = 1x4, 1x4, 2x4\n"
        "afc_vnets = 5x1, 5x1, 6x1\n");
    ASSERT_EQ(cfg.vnets.size(), 3u);
    EXPECT_EQ(cfg.vnets[0].numVcs, 1);
    EXPECT_EQ(cfg.vnets[0].bufferDepth, 4);
    EXPECT_EQ(cfg.vnets[2].numVcs, 2);
    EXPECT_EQ(cfg.afcVnets[2].numVcs, 6);
    EXPECT_EQ(cfg.afcVnets[2].bufferDepth, 1);
}

TEST(ConfigFile, DottedSubConfigs)
{
    NetworkConfig cfg = parseNetworkConfig(
        "afc.center_high = 3.5\n"
        "afc.ewma_weight = 0.9\n"
        "afc.always_backpressured = true\n"
        "energy.power_gating_efficiency = 0.8\n"
        "energy.buffer_leak_per_bit_cycle = 1e-4\n");
    EXPECT_DOUBLE_EQ(cfg.afc.centerHigh, 3.5);
    EXPECT_DOUBLE_EQ(cfg.afc.ewmaWeight, 0.9);
    EXPECT_TRUE(cfg.afc.alwaysBackpressured);
    EXPECT_DOUBLE_EQ(cfg.energy.powerGatingEfficiency, 0.8);
    EXPECT_DOUBLE_EQ(cfg.energy.bufferLeakPerBitCycle, 1e-4);
}

TEST(ConfigFile, DefaultsPreservedForUnsetKeys)
{
    NetworkConfig fresh;
    NetworkConfig cfg = parseNetworkConfig("width = 8\nheight = 8\n");
    EXPECT_EQ(cfg.linkLatency, fresh.linkLatency);
    EXPECT_EQ(cfg.vnets.size(), fresh.vnets.size());
    EXPECT_DOUBLE_EQ(cfg.afc.centerHigh, fresh.afc.centerHigh);
}

TEST(ConfigFile, LoadFromDisk)
{
    std::string path = ::testing::TempDir() + "/afcsim_test.cfg";
    {
        std::ofstream out(path);
        out << "width = 6\nheight = 3\neject_per_cycle = 2\n";
    }
    NetworkConfig cfg = loadNetworkConfig(path);
    EXPECT_EQ(cfg.width, 6);
    EXPECT_EQ(cfg.height, 3);
    EXPECT_EQ(cfg.ejectPerCycle, 2);
    std::remove(path.c_str());
}

TEST(ConfigFile, DeathOnUnknownKey)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    NetworkConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "wdith", "3"),
                ::testing::ExitedWithCode(1), "unknown config key");
}

TEST(ConfigFile, DeathOnBadNumber)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    NetworkConfig cfg;
    EXPECT_EXIT(applyConfigKey(cfg, "width", "abc"),
                ::testing::ExitedWithCode(1), "bad integer");
}

TEST(ConfigFile, DeathOnMalformedLine)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(parseNetworkConfig("width 3\n"),
                ::testing::ExitedWithCode(1), "expected");
}

TEST(ConfigFile, DeathOnBadShape)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(parseNetworkConfig("vnets = 2-8\n"),
                ::testing::ExitedWithCode(1), "NxD");
}

TEST(ConfigFile, ParsedConfigValidates)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // validate() runs at parse time: a 1-wide mesh must die.
    EXPECT_EXIT(parseNetworkConfig("width = 1\n"),
                ::testing::ExitedWithCode(1), "at least 2x2");
}

} // namespace
} // namespace afcsim
