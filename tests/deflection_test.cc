/**
 * @file
 * Tests for backpressureless deflection routing: the assignment
 * engine invariants (every flit leaves every cycle), injection
 * backpressure (footnote 3), misrouting accounting and delivery
 * under load.
 */

#include <gtest/gtest.h>

#include "network/network.hh"
#include "router/deflection.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

Flit
mkFlit(NodeId src, NodeId dest, PacketId id, Cycle create = 0)
{
    Flit f;
    f.packet = id;
    f.src = src;
    f.dest = dest;
    f.packetLen = 1;
    f.type = FlitType::Single;
    f.createTime = create;
    return f;
}

/** assign() works in place on caller-owned scratch; wrap it so the
 *  tests keep their by-value call shape. */
std::vector<DeflectionEngine::Assignment>
runAssign(DeflectionEngine &eng, std::vector<Flit> flits, Rng &rng,
          NodeId inject_dest, Direction *free_port)
{
    std::vector<DeflectionEngine::Assignment> out;
    eng.assign(flits, rng, inject_dest, free_port, out);
    return out;
}

TEST(DeflectionEngine, AllFlitsAssignedDistinctPorts)
{
    Mesh mesh(3, 3);
    DeflectionEngine eng(mesh, 4, DeflectionPolicy::Random, 1);
    Rng rng(1);
    // Four transit flits at the center: every one must get its own
    // network port.
    std::vector<Flit> flits = {mkFlit(0, 2, 1), mkFlit(0, 2, 2),
                               mkFlit(8, 6, 3), mkFlit(8, 6, 4)};
    Direction free_port = kNoDirection;
    auto out = runAssign(eng, flits, rng, kInvalidNode, &free_port);
    ASSERT_EQ(out.size(), 4u);
    std::set<Direction> used;
    for (const auto &a : out) {
        EXPECT_NE(a.port, kLocal);
        used.insert(a.port);
    }
    EXPECT_EQ(used.size(), 4u);
    EXPECT_EQ(free_port, kNoDirection); // node saturated
}

TEST(DeflectionEngine, EjectsAtDestination)
{
    Mesh mesh(3, 3);
    DeflectionEngine eng(mesh, 4, DeflectionPolicy::Random, 1);
    Rng rng(2);
    auto out = runAssign(eng, {mkFlit(0, 4, 1)}, rng, kInvalidNode,
                         nullptr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, kLocal);
    EXPECT_TRUE(out[0].productive);
}

TEST(DeflectionEngine, SecondAtDestFlitDeflects)
{
    Mesh mesh(3, 3);
    DeflectionEngine eng(mesh, 4, DeflectionPolicy::Random, 1);
    Rng rng(3);
    auto out = runAssign(eng, {mkFlit(0, 4, 1), mkFlit(8, 4, 2)}, rng,
                         kInvalidNode, nullptr);
    ASSERT_EQ(out.size(), 2u);
    int ejected = 0, deflected = 0;
    for (const auto &a : out) {
        if (a.port == kLocal)
            ++ejected;
        else if (!a.productive)
            ++deflected;
    }
    EXPECT_EQ(ejected, 1);
    EXPECT_EQ(deflected, 1);
}

TEST(DeflectionEngine, ProductivePreferred)
{
    Mesh mesh(3, 3);
    DeflectionEngine eng(mesh, 0, DeflectionPolicy::Random, 1);
    Rng rng(4);
    // Single flit at corner 0 heading to 8: must take E or S.
    auto out = runAssign(eng, {mkFlit(0, 8, 1)}, rng, kInvalidNode,
                         nullptr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].port == kEast || out[0].port == kSouth);
    EXPECT_TRUE(out[0].productive);
}

TEST(DeflectionEngine, ContentionCausesDeflection)
{
    Mesh mesh(3, 3);
    // Node 3 (west edge, ports E/N/S): two flits, both want East.
    DeflectionEngine eng(mesh, 3, DeflectionPolicy::Random, 1);
    Rng rng(5);
    auto out = runAssign(eng, {mkFlit(0, 5, 1), mkFlit(6, 5, 2)}, rng,
                         kInvalidNode, nullptr);
    ASSERT_EQ(out.size(), 2u);
    int productive = 0;
    for (const auto &a : out)
        productive += a.productive;
    EXPECT_EQ(productive, 1); // exactly one wins East
}

TEST(DeflectionEngine, OldestFirstWinsContention)
{
    Mesh mesh(3, 3);
    DeflectionEngine eng(mesh, 3, DeflectionPolicy::OldestFirst, 1);
    Rng rng(6);
    Flit old_flit = mkFlit(0, 5, 1, /*create=*/10);
    Flit young = mkFlit(6, 5, 2, /*create=*/50);
    auto out = runAssign(eng, {young, old_flit}, rng, kInvalidNode,
                         nullptr);
    for (const auto &a : out) {
        if (a.flit.packet == 1)
            EXPECT_TRUE(a.productive);
        else
            EXPECT_FALSE(a.productive);
    }
}

TEST(DeflectionEngine, InjectionPortOnlyWhenFree)
{
    Mesh mesh(3, 3);
    DeflectionEngine eng(mesh, 0, DeflectionPolicy::Random, 1);
    Rng rng(7);
    // Corner node 0 has 2 net ports; two transit flits saturate it.
    Direction free_port = kNoDirection;
    runAssign(eng, {mkFlit(3, 2, 1), mkFlit(1, 6, 2)}, rng, 8,
              &free_port);
    EXPECT_EQ(free_port, kNoDirection);
    // One transit flit leaves one port free.
    runAssign(eng, {mkFlit(3, 2, 3)}, rng, 8, &free_port);
    EXPECT_NE(free_port, kNoDirection);
}

TEST(Deflection, ZeroLoadLatencyOneHop)
{
    // R+SA at injection cycle, per hop L+1, +1 eject: 3h+1 at L=2.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    ASSERT_TRUE(deliverOne(net, 0, 1, 0, 1).has_value());
    EXPECT_EQ(net.aggregateStats().packetLatency.mean(), 4.0);
}

TEST(Deflection, ZeroLoadNoMisrouting)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    ASSERT_TRUE(deliverOne(net, 0, 8, 2, 5).has_value());
    NetStats s = net.aggregateStats();
    EXPECT_DOUBLE_EQ(s.hops.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.deflections.mean(), 0.0);
}

TEST(Deflection, HighLoadDeflectsButDelivers)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    Rng rng(99);
    for (int k = 0; k < 300; ++k) {
        NodeId src = rng.below(9);
        NodeId dest = rng.below(9);
        if (src != dest)
            net.nic(src).sendPacket(dest, 2, 5, net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
    EXPECT_GT(net.aggregateStats().totalDeflections, 0u);
    // Misrouting inflates hop counts beyond minimal.
    EXPECT_GT(net.aggregateStats().hops.mean(), 1.0);
}

TEST(Deflection, HotspotStress)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    for (int k = 0; k < 100; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (src != 4)
                net.nic(src).sendPacket(4, 0, 1, net.now());
        }
        net.run(4);
    }
    ASSERT_TRUE(net.drain(200000));
    expectConservation(net);
}

TEST(Deflection, OldestFirstAlsoDelivers)
{
    NetworkConfig cfg = testConfig();
    cfg.oldestFirstDeflection = true;
    Network net(cfg, FlowControl::Backpressureless);
    Rng rng(7);
    for (int k = 0; k < 200; ++k) {
        NodeId src = rng.below(9);
        NodeId dest = rng.below(9);
        if (src != dest)
            net.nic(src).sendPacket(dest, 2, 3, net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(Deflection, NoBufferLeakageEnergy)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    net.run(100);
    EnergyReport e = net.aggregateEnergy();
    EXPECT_DOUBLE_EQ(e.component(EnergyComponent::BufferLeak), 0.0);
    EXPECT_DOUBLE_EQ(e.component(EnergyComponent::BufferWrite), 0.0);
    EXPECT_DOUBLE_EQ(e.component(EnergyComponent::BufferRead), 0.0);
    // Idle routers still burn non-buffer static power.
    EXPECT_GT(e.component(EnergyComponent::RouterIdle), 0.0);
}

TEST(Deflection, RoutersAlwaysBackpressureless)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    net.run(50);
    EXPECT_DOUBLE_EQ(net.backpressuredFraction(), 0.0);
    for (NodeId n = 0; n < 9; ++n) {
        EXPECT_EQ(net.router(n).mode(),
                  RouterMode::Backpressureless);
    }
}

TEST(Deflection, MultiFlitPacketsReassembleOutOfOrder)
{
    // Under contention, flits of one packet take different paths;
    // the NIC must still reassemble every packet exactly once.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    for (int k = 0; k < 50; ++k) {
        net.nic(0).sendPacket(8, 2, 9, net.now());
        net.nic(2).sendPacket(6, 2, 9, net.now());
        net.run(2);
    }
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
}

TEST(Deflection, InjectionBackpressureAtSaturation)
{
    // Footnote 3: backpressureless routers exert backpressure only
    // at the injection port. Past saturation, source queues grow
    // while in-network occupancy stays bounded by the latch count.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    for (int k = 0; k < 1500; ++k) {
        for (NodeId s = 0; s < 9; ++s) {
            NodeId d = (s + 1 + k % 8) % 9;
            if (d != s)
                net.nic(s).sendPacket(d, 2, 9, net.now());
        }
        net.step();
    }
    std::uint64_t queued = 0;
    for (NodeId n = 0; n < 9; ++n) {
        queued += net.nic(n).queuedFlits();
        EXPECT_LE(net.router(n).occupancy(),
                  static_cast<std::size_t>(
                      2 * net.mesh().numNetPortsAt(n)));
    }
    EXPECT_GT(queued, 1000u); // sources visibly backed up
    ASSERT_TRUE(net.drain(3000000));
    expectConservation(net);
}

} // namespace
} // namespace afcsim
