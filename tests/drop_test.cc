/**
 * @file
 * Tests for the drop-based backpressureless variant (extension; the
 * Sec. II comparison point): drop + NACK + retransmission lifecycle,
 * bounded retransmission buffers, and the paper's claim that it
 * saturates below the deflection variant.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "network/network.hh"
#include "router/drop.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

DropRouter &
dropAt(Network &net, NodeId n)
{
    return dynamic_cast<DropRouter &>(net.router(n));
}

TEST(NackFabric, DeliversAfterDelay)
{
    NackFabric fabric(4);
    fabric.send(2, {7, 1}, 10, 3);
    EXPECT_TRUE(fabric.arrivalsFor(2, 12).empty());
    auto got = fabric.arrivalsFor(2, 13);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].packet, 7u);
    EXPECT_EQ(got[0].seq, 1);
    EXPECT_EQ(fabric.inflight(), 0u);
}

TEST(NackFabric, PerNodeQueues)
{
    NackFabric fabric(4);
    fabric.send(0, {1, 0}, 0, 1);
    fabric.send(3, {2, 0}, 0, 1);
    EXPECT_EQ(fabric.arrivalsFor(1, 10).size(), 0u);
    EXPECT_EQ(fabric.arrivalsFor(0, 10).size(), 1u);
    EXPECT_EQ(fabric.arrivalsFor(3, 10).size(), 1u);
}

TEST(Drop, ZeroLoadDelivery)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::BackpressurelessDrop);
    auto t = deliverOne(net, 0, 8, 2, 5);
    ASSERT_TRUE(t.has_value());
    // Minimal routing, no contention: no drops, minimal hops.
    EXPECT_DOUBLE_EQ(net.aggregateStats().hops.mean(), 4.0);
    EXPECT_EQ(dropAt(net, 4).flitsDropped(), 0u);
}

TEST(Drop, AllPairsDeliver)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::BackpressurelessDrop);
    for (NodeId src = 0; src < 9; ++src) {
        for (NodeId dest = 0; dest < 9; ++dest) {
            if (src != dest)
                net.nic(src).sendPacket(dest, 2, 3, net.now());
        }
    }
    ASSERT_TRUE(net.drain(200000));
    expectConservation(net);
}

TEST(Drop, ContentionDropsAndRetransmits)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::BackpressurelessDrop);
    // Everyone hammers node 4: port contention guarantees drops.
    for (int k = 0; k < 80; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (src != 4)
                net.nic(src).sendPacket(4, 2, 5, net.now());
        }
        net.run(3);
    }
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
    std::uint64_t drops = 0, retx = 0;
    for (NodeId n = 0; n < 9; ++n) {
        drops += dropAt(net, n).flitsDropped();
        retx += dropAt(net, n).retransmissions();
    }
    EXPECT_GT(drops, 0u);
    // Every drop is eventually retransmitted by some source.
    EXPECT_EQ(drops, retx);
}

TEST(Drop, RetransmitBufferBoundsInjection)
{
    NetworkConfig cfg = testConfig();
    cfg.dropRetransmitBuffer = 4;
    Network net(cfg, FlowControl::BackpressurelessDrop);
    for (int k = 0; k < 50; ++k)
        net.nic(0).sendPacket(8, 2, 5, net.now());
    for (int k = 0; k < 200; ++k) {
        net.step();
        EXPECT_LE(dropAt(net, 0).retransmitBufferUse(), 8u)
            << "buffer use should stay near the cap";
    }
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
}

TEST(Drop, HeavyRandomLoadConserves)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::BackpressurelessDrop);
    Rng rng(21);
    for (int k = 0; k < 2000; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.15)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(1000000));
    expectConservation(net);
}

TEST(Drop, SaturatesBelowDeflection)
{
    // The paper's Sec. II reason for choosing deflection: "the
    // variant that drops packets saturates at lower loads". With
    // our idealized (contention-free) NACK fabric the accepted-rate
    // caps converge deep in saturation, but the latency knee —
    // where queueing diverges — comes earlier for dropping.
    NetworkConfig cfg = testConfig();
    auto latency_at = [&](FlowControl fc, double rate) {
        Network net(cfg, fc);
        UniformPattern pattern(net.mesh());
        OpenLoopInjector inj(net, pattern, rate, 0.35);
        for (int c = 0; c < 12000; ++c) {
            inj.tick(net.now());
            net.step();
        }
        return net.aggregateStats().packetLatency.mean();
    };
    double defl = latency_at(FlowControl::Backpressureless, 0.5);
    double drop = latency_at(FlowControl::BackpressurelessDrop, 0.5);
    EXPECT_GT(drop, 1.3 * defl);
}

TEST(Drop, NoLeakageEnergy)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::BackpressurelessDrop);
    net.run(200);
    EXPECT_DOUBLE_EQ(net.aggregateEnergy().component(
                         EnergyComponent::BufferLeak), 0.0);
}

TEST(Drop, FlitWidthMatchesBackpressureless)
{
    EXPECT_EQ(FlitWidths::forFlowControl(
                  FlowControl::BackpressurelessDrop), 45);
}

} // namespace
} // namespace afcsim
