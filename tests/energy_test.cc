/**
 * @file
 * Unit tests for the energy model: per-event accounting, width
 * scaling (41/45/49 bits), ideal buffer bypass, power gating and the
 * Fig. 3 breakdown categories.
 */

#include <gtest/gtest.h>

#include "energy/energy.hh"

namespace afcsim
{
namespace
{

TEST(Energy, EventCostsScaleWithWidth)
{
    EnergyConfig cfg;
    EnergyLedger narrow(cfg, 41);
    EnergyLedger wide(cfg, 49);
    narrow.bufferWrite();
    wide.bufferWrite();
    EXPECT_DOUBLE_EQ(
        narrow.report().component(EnergyComponent::BufferWrite),
        cfg.bufferWritePerBit * 41);
    EXPECT_DOUBLE_EQ(
        wide.report().component(EnergyComponent::BufferWrite),
        cfg.bufferWritePerBit * 49);
    EXPECT_GT(wide.report().total(), narrow.report().total());
}

TEST(Energy, LinkEnergyUsesLength)
{
    EnergyConfig cfg;
    EnergyLedger l(cfg, 41);
    l.linkTraversal();
    EXPECT_DOUBLE_EQ(l.report().linkEnergy(),
                     cfg.linkPerBitPerMm * cfg.linkLengthMm * 41);
}

TEST(Energy, IdealBypassZeroesDynamicBufferEnergy)
{
    EnergyConfig cfg;
    EnergyLedger l(cfg, 41, /*ideal_buffer_bypass=*/true);
    l.bufferWrite();
    l.bufferRead();
    EXPECT_DOUBLE_EQ(
        l.report().component(EnergyComponent::BufferWrite), 0.0);
    EXPECT_DOUBLE_EQ(
        l.report().component(EnergyComponent::BufferRead), 0.0);
    // But leakage still accrues (only *dynamic* energy is elided).
    l.leakCycle(1000, 0);
    EXPECT_GT(l.report().component(EnergyComponent::BufferLeak), 0.0);
}

TEST(Energy, PowerGatingRemoves90Percent)
{
    EnergyConfig cfg;
    cfg.routerIdlePerCycle = 0.0;
    EnergyLedger powered(cfg, 49);
    EnergyLedger gated(cfg, 49);
    powered.leakCycle(10000, 0);
    gated.leakCycle(0, 10000);
    double full = powered.report().component(EnergyComponent::BufferLeak);
    double g = gated.report().component(EnergyComponent::BufferLeak);
    EXPECT_NEAR(g, full * (1.0 - cfg.powerGatingEfficiency), 1e-12);
}

TEST(Energy, BreakdownCategoriesPartitionTotal)
{
    EnergyConfig cfg;
    EnergyLedger l(cfg, 45);
    l.bufferWrite();
    l.bufferRead();
    l.latchWrite();
    l.crossbar();
    l.arbitrate();
    l.linkTraversal();
    l.creditSignal();
    l.leakCycle(500, 500);
    const EnergyReport &r = l.report();
    EXPECT_NEAR(r.bufferEnergy() + r.linkEnergy() + r.restEnergy(),
                r.total(), 1e-9);
    EXPECT_GT(r.bufferEnergy(), 0.0);
    EXPECT_GT(r.linkEnergy(), 0.0);
    EXPECT_GT(r.restEnergy(), 0.0);
}

TEST(Energy, MergeAndDiff)
{
    EnergyConfig cfg;
    EnergyLedger a(cfg, 41), b(cfg, 41);
    a.crossbar();
    b.linkTraversal();
    EnergyReport sum = a.report();
    sum.merge(b.report());
    EXPECT_DOUBLE_EQ(sum.total(),
                     a.report().total() + b.report().total());
    EnergyReport d = sum.diff(a.report());
    EXPECT_NEAR(d.total(), b.report().total(), 1e-12);
}

TEST(Energy, ComponentNamesDistinct)
{
    std::set<std::string> names;
    for (int i = 0;
         i < static_cast<int>(EnergyComponent::NumComponents); ++i) {
        names.insert(componentName(static_cast<EnergyComponent>(i)));
    }
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(EnergyComponent::NumComponents));
}

TEST(Energy, ResetClears)
{
    EnergyConfig cfg;
    EnergyLedger l(cfg, 41);
    l.crossbar();
    EXPECT_GT(l.report().total(), 0.0);
    l.reset();
    EXPECT_DOUBLE_EQ(l.report().total(), 0.0);
}

TEST(Energy, PerfectPowerGatingZeroesGatedLeak)
{
    EnergyConfig cfg;
    cfg.powerGatingEfficiency = 1.0;
    cfg.routerIdlePerCycle = 0.0;
    EnergyLedger l(cfg, 49);
    l.leakCycle(0, 100000);
    EXPECT_DOUBLE_EQ(l.report().component(EnergyComponent::BufferLeak),
                     0.0);
}

TEST(Energy, DepthFactorScalesAccessCosts)
{
    EnergyConfig cfg;
    EnergyLedger shallow(cfg, 41, false, 1.0);
    EnergyLedger deep(cfg, 41, false, 1.63);
    shallow.bufferWrite();
    shallow.bufferRead();
    deep.bufferWrite();
    deep.bufferRead();
    EXPECT_NEAR(deep.report().bufferEnergy(),
                1.63 * shallow.report().bufferEnergy(), 1e-9);
}

} // namespace
} // namespace afcsim
