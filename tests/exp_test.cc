/**
 * @file
 * Tests for the experiment subsystem (src/exp/): spec expansion
 * order and seeding, text-spec parsing, baseline-relative
 * aggregation, and the determinism regression — the same
 * ExperimentSpec must produce a bit-identical JSON document whether
 * it runs on one thread or many.
 */

#include <gtest/gtest.h>

#include "exp/experiments.hh"
#include "exp/result.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"

using namespace afcsim;
using namespace afcsim::exp;

namespace
{

/** Tiny open-loop grid: fast enough for unit tests, still exercises
 *  all three flow controls and a low + moderate load point. */
ExperimentSpec
tinySweep()
{
    ExperimentSpec spec;
    spec.name = "tiny_sweep";
    spec.kind = RunKind::OpenLoop;
    spec.rates = {0.1, 0.4};
    spec.warmupCycles = 200;
    spec.measureCycles = 600;
    spec.drainCycles = 20000;
    spec.baseSeed = 13;
    return spec;
}

} // namespace

TEST(ExperimentSpec, ExpandOrderAndSeeds)
{
    ExperimentSpec spec = tinySweep();
    spec.repeats = 2;
    std::vector<RunPoint> points = spec.expand();

    // mesh (1) x rates (2) x repeats (2) x configs (3)
    ASSERT_EQ(points.size(), 12u);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, static_cast<int>(i));

    // Innermost axis is flow control; then repeat; then rate.
    EXPECT_EQ(points[0].fc, FlowControl::Backpressured);
    EXPECT_EQ(points[1].fc, FlowControl::Backpressureless);
    EXPECT_EQ(points[2].fc, FlowControl::Afc);
    EXPECT_EQ(points[0].rate, 0.1);
    EXPECT_EQ(points[0].repeat, 0);
    EXPECT_EQ(points[3].repeat, 1);
    EXPECT_EQ(points[6].rate, 0.4);

    // Seeds depend only on repeat ordinal.
    EXPECT_EQ(points[0].seed, 13u);
    EXPECT_EQ(points[3].seed, 1013u);
    EXPECT_EQ(points[0].cfg.seed, points[0].seed);
    EXPECT_EQ(points[0].group, "rate=0.1");
}

TEST(ExperimentSpec, ExpandMeshSizes)
{
    ExperimentSpec spec = tinySweep();
    spec.meshSizes = {3, 4};
    std::vector<RunPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 12u);
    EXPECT_EQ(points[0].mesh, 3);
    EXPECT_EQ(points[0].cfg.width, 3);
    EXPECT_EQ(points[6].mesh, 4);
    EXPECT_EQ(points[6].cfg.width, 4);
    EXPECT_EQ(points[6].cfg.height, 4);
}

TEST(ExperimentSpec, ExpandFaultAxis)
{
    ExperimentSpec spec = tinySweep();
    spec.faultRates = {0.0, 0.005};
    std::vector<RunPoint> points = spec.expand();

    // mesh (1) x rates (2) x faults (2) x repeats (1) x configs (3)
    ASSERT_EQ(points.size(), 12u);
    EXPECT_EQ(points[0].group, "rate=0.1 fault=0");
    EXPECT_EQ(points[3].group, "rate=0.1 fault=0.005");
    EXPECT_EQ(points[6].group, "rate=0.4 fault=0");

    // Rate 0 pins the injector off without arming retransmission;
    // nonzero rates arm it with the fault-sweep timeouts.
    EXPECT_EQ(points[0].cfg.faults.corruptRate, 0.0);
    EXPECT_FALSE(points[0].cfg.reliability.enabled);
    EXPECT_EQ(points[3].cfg.faults.corruptRate, 0.005);
    EXPECT_TRUE(points[3].cfg.reliability.enabled);
    EXPECT_EQ(points[3].cfg.reliability.timeoutCycles, 256u);
    EXPECT_EQ(points[3].cfg.reliability.maxRetries, 16);

    // An explicitly-configured reliability block is left alone.
    spec.base.reliability.enabled = true;
    spec.base.reliability.timeoutCycles = 999;
    points = spec.expand();
    EXPECT_EQ(points[3].cfg.reliability.timeoutCycles, 999u);
}

TEST(ExperimentSpec, FaultRatesFromText)
{
    ExperimentSpec spec = ExperimentSpec::fromText(
        "exp.kind = openloop\n"
        "exp.rates = 0.1\n"
        "exp.fault_rates = 0, 0.001, 0.02\n");
    ASSERT_EQ(spec.faultRates.size(), 3u);
    EXPECT_EQ(spec.faultRates[1], 0.001);
    EXPECT_EQ(spec.faultRates[2], 0.02);
}

TEST(ExperimentRegistry, FaultSweepRegistered)
{
    ExperimentSpec spec = experimentByName("fault_sweep");
    EXPECT_EQ(spec.kind, RunKind::OpenLoop);
    EXPECT_FALSE(spec.faultRates.empty());
    EXPECT_FALSE(spec.expand().empty());
}

TEST(ExperimentSpec, RateSweep)
{
    ExperimentSpec spec;
    spec.rateSweep(0.05, 0.2);
    ASSERT_EQ(spec.rates.size(), 4u);
    EXPECT_NEAR(spec.rates.front(), 0.05, 1e-12);
    EXPECT_NEAR(spec.rates.back(), 0.2, 1e-12);
}

TEST(ExperimentSpec, FromText)
{
    ExperimentSpec spec = ExperimentSpec::fromText(
        "# comment\n"
        "exp.name = parsed\n"
        "exp.kind = open_loop\n"
        "exp.rates = 0.1, 0.2\n"
        "exp.configs = bp, afc\n"
        "exp.warmup = 500\n"
        "exp.measure = 1500\n"
        "exp.repeats = 2\n"
        "exp.seed = 99\n"
        "exp.pattern = transpose\n"
        "link_latency = 2\n");
    EXPECT_EQ(spec.name, "parsed");
    EXPECT_EQ(spec.kind, RunKind::OpenLoop);
    ASSERT_EQ(spec.rates.size(), 2u);
    ASSERT_EQ(spec.configs.size(), 2u);
    EXPECT_EQ(spec.configs[1], FlowControl::Afc);
    EXPECT_EQ(spec.warmupCycles, 500u);
    EXPECT_EQ(spec.measureCycles, 1500u);
    EXPECT_EQ(spec.repeats, 2);
    EXPECT_EQ(spec.baseSeed, 99u);
    EXPECT_EQ(spec.pattern, "transpose");
    EXPECT_EQ(spec.base.linkLatency, 2);

    std::vector<RunPoint> points = spec.expand();
    EXPECT_EQ(points.size(), 8u);
    EXPECT_EQ(points[0].ol.pattern, "transpose");
}

TEST(ExperimentRegistry, NamesResolve)
{
    for (const auto &name : experimentNames()) {
        ExperimentSpec spec = experimentByName(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.expand().empty());
    }
}

TEST(ExperimentRun, AggregateNormalizesAgainstBackpressured)
{
    ParallelRunner runner(1);
    std::vector<RunResult> results = runner.run(tinySweep().expand());
    ASSERT_EQ(results.size(), 6u);

    std::vector<AggregateRow> rows = aggregate(results);
    ASSERT_EQ(rows.size(), 6u);

    // Rows appear in grid order; the baseline's relative stats are
    // exactly 1 by construction.
    EXPECT_EQ(rows[0].group, "rate=0.1");
    EXPECT_EQ(rows[0].fc, FlowControl::Backpressured);
    EXPECT_DOUBLE_EQ(rows[0].perfRel.mean(), 1.0);
    EXPECT_DOUBLE_EQ(rows[0].energyRel.mean(), 1.0);
    for (const auto &row : rows) {
        EXPECT_EQ(row.perfRel.count(), 1u);
        EXPECT_GT(row.energyTotal.mean(), 0.0);
        EXPECT_GT(row.avgPacketLatency.mean(), 0.0);
    }
}

TEST(ExperimentRun, JsonDocumentShape)
{
    ExperimentSpec spec = tinySweep();
    ParallelRunner runner(1);
    std::vector<RunResult> results = runner.run(spec.expand());

    JsonValue doc = resultsToJson(spec, results);
    EXPECT_EQ(doc.at("experiment").asString(), "tiny_sweep");
    ASSERT_EQ(doc.at("runs").size(), 6u);
    EXPECT_EQ(doc.at("aggregates").size(), 6u);
    const JsonValue &run0 = doc.at("runs").at(0);
    EXPECT_EQ(run0.at("index").asInt(), 0);
    EXPECT_EQ(run0.at("flow_control").asString(), "backpressured");
    EXPECT_FALSE(run0.has("telemetry"));
    EXPECT_GT(run0.at("metrics").at("runtime_cycles").asDouble(), 0.0);

    // Telemetry appears only on request.
    JsonValue with = resultsToJson(spec, results, /*with_telemetry=*/true);
    EXPECT_TRUE(with.at("runs").at(0).has("telemetry"));

    // The document parses back cleanly.
    std::string err;
    JsonValue back = JsonValue::parse(doc.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back, doc);
}

TEST(ExperimentRun, CsvHasHeaderAndOneRowPerRun)
{
    ParallelRunner runner(1);
    std::vector<RunResult> results = runner.run(tinySweep().expand());
    std::string csv = resultsToCsv(results);
    std::size_t lines = 0;
    for (char c : csv)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, 1u + results.size());
    EXPECT_EQ(csv.compare(0, 5, "index"), 0);
}

/**
 * The determinism regression from the issue: the same spec and seed
 * must yield bit-identical aggregated output at 1 thread and N
 * threads. Telemetry is excluded from the document by default, so
 * byte comparison of the JSON dumps is the strongest possible check.
 */
TEST(ExperimentRun, DeterministicAcrossThreadCounts)
{
    ExperimentSpec spec = tinySweep();

    ParallelRunner one(1);
    ParallelRunner four(4);
    EXPECT_EQ(one.threads(), 1);
    EXPECT_EQ(four.threads(), 4);

    std::vector<RunResult> r1 = one.run(spec.expand());
    std::vector<RunResult> r4 = four.run(spec.expand());
    ASSERT_EQ(r1.size(), r4.size());

    std::string d1 = resultsToJson(spec, r1).dump(2);
    std::string d4 = resultsToJson(spec, r4).dump(2);
    EXPECT_EQ(d1, d4);

    EXPECT_EQ(resultsToCsv(r1), resultsToCsv(r4));

    // Re-running the single-thread grid is also stable (no hidden
    // global state leaks between runs).
    std::vector<RunResult> again = one.run(spec.expand());
    EXPECT_EQ(resultsToJson(spec, again).dump(2), d1);
}
