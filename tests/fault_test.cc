/**
 * @file
 * Tests for the fault-injection and end-to-end reliability subsystem
 * (src/fault + the NIC retransmission layer): corruption really
 * triggers checksum discard and retransmission, everything is still
 * delivered exactly once, the fault-free path is untouched by merely
 * enabling the machinery, fault traces are deterministic across
 * thread counts, and a forced SimError degrades one grid run to an
 * error record without killing the rest.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/rng.hh"
#include "exp/result.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "fault/fault.hh"
#include "network/network.hh"
#include "sim/closedloop.hh"
#include "testutil.hh"
#include "traffic/openloop.hh"

namespace afcsim
{
namespace
{

/** Sum the never-reset lifetime counters over all NICs. */
NicLifetime
totalLifetime(const Network &net)
{
    NicLifetime t;
    for (NodeId n = 0; n < net.config().numNodes(); ++n) {
        const NicLifetime &l = net.nic(n).lifetime();
        t.flitsInjected += l.flitsInjected;
        t.flitsRetransmitted += l.flitsRetransmitted;
        t.flitsDelivered += l.flitsDelivered;
        t.flitsCorrupted += l.flitsCorrupted;
        t.flitsDuplicate += l.flitsDuplicate;
    }
    return t;
}

/** tinySweep with a nonzero corruption rate and reliability on. */
exp::ExperimentSpec
faultySweep()
{
    exp::ExperimentSpec spec;
    spec.name = "faulty_sweep";
    spec.kind = exp::RunKind::OpenLoop;
    spec.rates = {0.1};
    spec.warmupCycles = 200;
    spec.measureCycles = 800;
    spec.drainCycles = 50000;
    spec.baseSeed = 13;
    spec.base.faults.corruptRate = 0.005;
    spec.base.reliability.enabled = true;
    return spec;
}

class ReliableFlowControls
    : public ::testing::TestWithParam<FlowControl>
{
};

INSTANTIATE_TEST_SUITE_P(
    Fault, ReliableFlowControls,
    ::testing::Values(FlowControl::Backpressured,
                      FlowControl::Backpressureless, FlowControl::Afc),
    [](const ::testing::TestParamInfo<FlowControl> &info) {
        std::string n = toString(info.param);
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

/**
 * Corruption under the end-to-end reliability layer: corrupted flits
 * are discarded at the destination NIC, the source times out and
 * retransmits, and every packet is still delivered exactly once.
 */
TEST_P(ReliableFlowControls, CorruptionIsRepairedByRetransmission)
{
    NetworkConfig cfg = testConfig();
    cfg.faults.corruptRate = 0.01;
    cfg.reliability.enabled = true;
    cfg.reliability.timeoutCycles = 128; // keep the test fast
    Network net(cfg, GetParam());

    Rng rng(21);
    std::uint64_t packets = 0;
    for (int k = 0; k < 2000; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.05)) {
                NodeId dest = rng.below(9);
                if (dest == src)
                    continue;
                bool data = rng.chance(0.4);
                net.nic(src).sendPacket(
                    dest, data ? 2 : rng.below(2), data ? 5 : 1,
                    net.now());
                ++packets;
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));

    NetStats s = net.aggregateStats();
    EXPECT_GT(s.flitsCorrupted, 0u);
    EXPECT_GT(s.flitsRetransmitted, 0u);
    EXPECT_EQ(s.packetsFailed, 0u);
    EXPECT_EQ(s.packetsDelivered, packets);
    EXPECT_EQ(net.flitsInFlight(), 0u);

    // Lifetime conservation at quiescence: queued and in-flight are
    // zero, so everything ever (re)injected was delivered or
    // discarded as corrupt/duplicate.
    NicLifetime t = totalLifetime(net);
    EXPECT_EQ(t.flitsInjected + t.flitsRetransmitted,
              t.flitsDelivered + t.flitsCorrupted + t.flitsDuplicate);
    // Link-level drops (the NACK-fabric variant aside) do not exist
    // in the corruption-only model: each unique flit arrives once.
    EXPECT_EQ(t.flitsDelivered, t.flitsInjected);
}

/**
 * Merely enabling the reliability layer (checksums, ack path,
 * retransmit bookkeeping) at fault rate zero must not change a
 * single simulated or measured bit relative to the plain network —
 * the issue's "rate 0 matches the fault-free path bit-for-bit".
 */
TEST_P(ReliableFlowControls, RateZeroMatchesFaultFreePathBitForBit)
{
    OpenLoopConfig ol;
    ol.injectionRate = 0.15;
    ol.warmupCycles = 300;
    ol.measureCycles = 1000;
    ol.drainCycles = 50000;

    NetworkConfig plain = testConfig();
    NetworkConfig armed = testConfig();
    armed.reliability.enabled = true; // faults stay all-zero

    OpenLoopResult a = runOpenLoop(plain, GetParam(), ol);
    OpenLoopResult b = runOpenLoop(armed, GetParam(), ol);

    EXPECT_EQ(a.stats.flitsDelivered, b.stats.flitsDelivered);
    EXPECT_EQ(a.stats.packetsDelivered, b.stats.packetsDelivered);
    EXPECT_EQ(a.avgPacketLatency, b.avgPacketLatency);
    EXPECT_EQ(a.p99PacketLatency, b.p99PacketLatency);
    EXPECT_EQ(a.avgHops, b.avgHops);
    EXPECT_EQ(a.energy.total(), b.energy.total());
    EXPECT_EQ(b.stats.flitsRetransmitted, 0u);
    EXPECT_EQ(b.stats.flitsCorrupted, 0u);
    EXPECT_EQ(b.faults.total(), 0u);
}

/** Fault events land in the run's FaultStats and its JSON record. */
TEST(FaultTrace, RecordedEventsAreDeterministic)
{
    NetworkConfig cfg = testConfig();
    cfg.faults.corruptRate = 0.02;
    cfg.faults.stallRate = 0.0005;
    cfg.reliability.enabled = true;
    cfg.reliability.timeoutCycles = 128;

    auto run_once = [&]() {
        Network net(cfg, FlowControl::Afc);
        Rng rng(5);
        for (int k = 0; k < 1000; ++k) {
            for (NodeId src = 0; src < 9; ++src) {
                if (rng.chance(0.08)) {
                    NodeId dest = rng.below(9);
                    if (dest != src)
                        net.nic(src).sendPacket(dest, 2, 5, net.now());
                }
            }
            net.step();
        }
        EXPECT_TRUE(net.drain(500000));
        const FaultInjector *fi = net.faultInjector();
        EXPECT_NE(fi, nullptr);
        return toJson(fi->stats()).dump(2);
    };

    std::string trace = run_once();
    EXPECT_NE(trace.find("\"corruptions\""), std::string::npos);
    EXPECT_NE(trace.find("\"kind\": \"corrupt\""), std::string::npos);
    EXPECT_EQ(trace, run_once());
}

/**
 * The issue's grid-level determinism criterion: the same faulty spec
 * and seed yield byte-identical JSON (fault traces included) on one
 * thread and on four.
 */
TEST(FaultGrid, FaultTraceIdenticalAcrossThreadCounts)
{
    exp::ExperimentSpec spec = faultySweep();

    exp::ParallelRunner one(1);
    exp::ParallelRunner four(4);
    std::vector<exp::RunResult> r1 = one.run(spec.expand());
    std::vector<exp::RunResult> r4 = four.run(spec.expand());
    ASSERT_EQ(r1.size(), r4.size());

    std::string d1 = exp::resultsToJson(spec, r1).dump(2);
    std::string d4 = exp::resultsToJson(spec, r4).dump(2);
    EXPECT_EQ(d1, d4);

    // The document actually carries a fault trace (this is not a
    // vacuous comparison): some run saw corruptions.
    EXPECT_NE(d1.find("\"faults\""), std::string::npos);
    EXPECT_NE(d1.find("\"corruptions\""), std::string::npos);
    bool corrupted = false;
    for (const auto &r : r1)
        corrupted = corrupted || r.faults.corruptions > 0;
    EXPECT_TRUE(corrupted);
}

/**
 * Graceful grid degradation: one deliberately failing run (forced
 * SimError via fault.fail_at_cycle) becomes an error record; every
 * other run completes and the document remains valid.
 */
TEST(FaultGrid, ForcedSimErrorDegradesOneRunOnly)
{
    exp::ExperimentSpec spec = faultySweep();
    spec.base.faults = FaultSpec{}; // plain runs...
    spec.base.reliability.enabled = false;
    std::vector<exp::RunPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 3u);
    points[1].cfg.faults.failAtCycle = 100; // ...except this one

    exp::ParallelRunner runner(2);
    std::vector<exp::RunResult> results = runner.run(points);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_TRUE(results[0].error.empty());
    EXPECT_TRUE(results[2].error.empty());
    EXPECT_NE(results[1].error.find("injected hard failure"),
              std::string::npos)
        << results[1].error;
    EXPECT_GT(results[0].runtimeCycles, 0.0);
    EXPECT_GT(results[2].runtimeCycles, 0.0);

    // Exactly one error record in the JSON; error runs are excluded
    // from aggregation; the document round-trips.
    JsonValue doc = exp::resultsToJson(spec, results);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < doc.at("runs").size(); ++i)
        if (doc.at("runs").at(i).has("error"))
            ++errors;
    EXPECT_EQ(errors, 1u);
    EXPECT_GT(doc.at("aggregates").size(), 0u);

    std::string err;
    JsonValue back = JsonValue::parse(doc.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back, doc);

    // The CSV carries the error in its last column.
    std::string csv = exp::resultsToCsv(results);
    EXPECT_NE(csv.find("injected hard failure"), std::string::npos);
}

/** A per-run cycle budget converts a hung run into a SimError. */
TEST(FaultGrid, CycleBudgetRaisesSimError)
{
    NetworkConfig cfg = testConfig();
    WorkloadProfile w = workloadByName("water");
    w.warmupTransactions = 0;
    w.measureTransactions = 1000;
    try {
        runClosedLoop(cfg, FlowControl::Backpressured, w,
                      /*max_cycles=*/50);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("cycle budget"),
                  std::string::npos)
            << e.what();
    }
}

/** Stalled links hold flits without losing them. */
TEST(FaultInjection, StallsDelayButConserve)
{
    NetworkConfig cfg = testConfig();
    cfg.faults.stallRate = 0.002;
    cfg.faults.stallMinCycles = 2;
    cfg.faults.stallMaxCycles = 16;
    Network net(cfg, FlowControl::Backpressured);
    Rng rng(9);
    for (int k = 0; k < 1500; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.06)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
    ASSERT_NE(net.faultInjector(), nullptr);
    EXPECT_GT(net.faultInjector()->stats().flitsHeld, 0u);
    EXPECT_EQ(net.faultInjector()->heldFlits(), 0u);
}

} // namespace
} // namespace afcsim
