/**
 * @file
 * Golden-bracket regression for the adaptive load search: the 8x8
 * saturation optima that the PR 6 saturation bench established are
 * pinned here, so a behavioral change anywhere in the stack — router
 * timing, injector RNG, search bracketing, checkpoint plumbing —
 * that moves a found saturation point gets caught as a regression,
 * not silently absorbed into new "golden" numbers.
 *
 * The grid mirrors bench_saturation's defaults exactly (registered
 * saturation_search experiment, seed 1, probe budget 1000+3000,
 * final budget 4000+12000, tolerance 0.002): same searches, same
 * probes, same optima. The comparison tolerance is three rate
 * tolerances — the search bisects to 0.002, so anything farther off
 * than that is a real behavioral shift, not search noise.
 *
 * Full searches on the 8x8 mesh take minutes; this suite rides the
 * `slow` ctest label with the benches, not tier1.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiments.hh"
#include "search/search.hh"

namespace afcsim
{
namespace
{

/** Pinned optimum for one (pattern, flow control) cell. */
struct GoldenCase
{
    const char *name;
    const char *pattern;
    FlowControl fc;
    double optimum; ///< saturation rate found by the PR 6 bench
};

constexpr double kTolerance = 3 * 0.002; // 3x search rateTolerance

std::string
caseName(const testing::TestParamInfo<GoldenCase> &info)
{
    return info.param.name;
}

class GoldenBracketTest : public testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenBracketTest, SaturationOptimumPinned)
{
    const GoldenCase &p = GetParam();
    exp::ExperimentSpec spec = exp::saturationSearchExperiment();
    spec.pattern = p.pattern;
    spec.configs = {p.fc};

    std::vector<search::SearchResult> results =
        search::runSearchGrid(spec, 0);
    ASSERT_EQ(results.size(), 1u);
    const search::SearchResult &r = results[0];
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.optimumRate, p.optimum, kTolerance)
        << p.pattern << "/" << toString(p.fc)
        << " saturation moved: golden " << p.optimum << ", found "
        << r.optimumRate;
    // The bracket must straddle the optimum and be bisected down to
    // the rate tolerance.
    EXPECT_LE(r.bracketLo, r.optimumRate);
    EXPECT_LE(r.bracketHi - r.bracketLo, 2 * 0.002 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GoldenBracketTest,
    testing::Values(
        GoldenCase{"uniform_bp", "uniform",
                   FlowControl::Backpressured, 0.3875},
        GoldenCase{"uniform_afc", "uniform", FlowControl::Afc, 0.3688},
        GoldenCase{"transpose_bp", "transpose",
                   FlowControl::Backpressured, 0.1641},
        GoldenCase{"transpose_afc", "transpose", FlowControl::Afc,
                   0.1656},
        GoldenCase{"hotspot_bp", "hotspot",
                   FlowControl::Backpressured, 0.0859},
        GoldenCase{"hotspot_afc", "hotspot", FlowControl::Afc,
                   0.0844}),
    caseName);

} // namespace
} // namespace afcsim
