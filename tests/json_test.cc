/**
 * @file
 * Tests for the minimal JSON document model (common/json.hh):
 * construction, escaping, serialization stability, parsing, and
 * dump -> parse -> dump round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hh"

using afcsim::JsonValue;

TEST(Json, ScalarDump)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(static_cast<std::int64_t>(-7)).dump(), "-7");
    EXPECT_EQ(JsonValue(0.5).dump(), "0.5");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersKeepIntegerFormatting)
{
    JsonValue v(static_cast<std::uint64_t>(1234567890123ull));
    EXPECT_TRUE(v.isInteger());
    EXPECT_EQ(v.dump(), "1234567890123");
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
}

TEST(Json, Escaping)
{
    EXPECT_EQ(JsonValue::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonValue::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonValue::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonValue::escape("nl\n"), "nl\\n");
    EXPECT_EQ(JsonValue::escape(std::string(1, '\x01')), "\\u0001");
    // UTF-8 bytes pass through untouched.
    EXPECT_EQ(JsonValue::escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue o = JsonValue::object();
    o.set("zebra", JsonValue(1));
    o.set("apple", JsonValue(2));
    o.set("mid", JsonValue(3));
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"apple\":2,\"mid\":3}");
    // Overwrite keeps the original position.
    o.set("apple", JsonValue(9));
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"apple\":9,\"mid\":3}");
}

TEST(Json, PrettyPrint)
{
    JsonValue o = JsonValue::object();
    o.set("k", JsonValue(1));
    EXPECT_EQ(o.dump(2), "{\n  \"k\": 1\n}");
    JsonValue a = JsonValue::array();
    a.push(JsonValue(1));
    a.push(JsonValue(2));
    EXPECT_EQ(a.dump(2), "[\n  1,\n  2\n]");
    EXPECT_EQ(JsonValue::array().dump(2), "[]");
    EXPECT_EQ(JsonValue::object().dump(2), "{}");
}

TEST(Json, ParseScalars)
{
    std::string err;
    EXPECT_TRUE(JsonValue::parse("null", &err).isNull());
    EXPECT_TRUE(err.empty());
    EXPECT_EQ(JsonValue::parse("true").asBool(), true);
    EXPECT_EQ(JsonValue::parse("-17").asInt(), -17);
    EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e3").asDouble(), 2500.0);
    EXPECT_EQ(JsonValue::parse("\"x\\ny\"").asString(), "x\ny");
}

TEST(Json, ParseNested)
{
    std::string err;
    JsonValue v = JsonValue::parse(
        " { \"a\" : [1, 2, {\"b\": false}], \"c\": \"d\" } ", &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_EQ(v.at("a").at(0).asInt(), 1);
    EXPECT_EQ(v.at("a").at(2).at("b").asBool(), false);
    EXPECT_EQ(v.at("c").asString(), "d");
}

TEST(Json, ParseUnicodeEscape)
{
    JsonValue v = JsonValue::parse("\"\\u0041\\u00e9\\u20ac\"");
    EXPECT_EQ(v.asString(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(Json, ParseErrors)
{
    std::string err;
    JsonValue v = JsonValue::parse("{\"a\": }", &err);
    EXPECT_TRUE(v.isNull());
    EXPECT_FALSE(err.empty());

    err.clear();
    JsonValue t = JsonValue::parse("[1, 2] trailing", &err);
    EXPECT_FALSE(err.empty());

    err.clear();
    JsonValue u = JsonValue::parse("\"unterminated", &err);
    EXPECT_FALSE(err.empty());
}

TEST(Json, RoundTripStable)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", JsonValue("quote\" and \\backslash\n"));
    doc.set("count", JsonValue(123456789));
    doc.set("value", JsonValue(0.1 + 0.2));
    JsonValue arr = JsonValue::array();
    for (int i = 0; i < 4; ++i)
        arr.push(JsonValue(i * 0.25));
    doc.set("arr", std::move(arr));
    JsonValue inner = JsonValue::object();
    inner.set("nested", JsonValue(true));
    doc.set("obj", std::move(inner));

    for (int indent : {0, 2, 4}) {
        std::string once = doc.dump(indent);
        std::string err;
        JsonValue back = JsonValue::parse(once, &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(back, doc);
        EXPECT_EQ(back.dump(indent), once);
    }
}

TEST(Json, DoubleRoundTripExact)
{
    // %.15..17g formatting must recover doubles exactly.
    for (double d : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23,
                     0.30000000000000004}) {
        JsonValue v(d);
        JsonValue back = JsonValue::parse(v.dump());
        EXPECT_EQ(back.asDouble(), d);
    }
}
