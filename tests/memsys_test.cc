/**
 * @file
 * Unit tests for the closed-loop memory-system substrate: cores
 * (issue process, MSHR bookkeeping, phase modulation) and L2 banks
 * (service latencies, response types), exercised standalone against
 * a NIC without a network.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "network/nic.hh"
#include "sim/core.hh"
#include "sim/l2bank.hh"
#include "sim/workload.hh"

namespace afcsim
{
namespace
{

class MemsysTest : public ::testing::Test
{
  protected:
    MemsysTest() : nic_(0, cfg_, &packets_) {}

    NetworkConfig cfg_;
    PacketId packets_ = 0;
    Nic nic_;
    std::uint64_t txCounter_ = 0;
};

TEST_F(MemsysTest, CoreIssuesAtConfiguredRate)
{
    WorkloadProfile w = waterWorkload();
    w.issueProb = 0.1;
    w.mshrsPerCore = 1 << 20; // never throttle
    Core core(0, cfg_, w, &nic_, Rng(1), &txCounter_);
    for (Cycle c = 0; c < 20000; ++c)
        core.tick(c);
    EXPECT_NEAR(core.issued() / 20000.0, 0.1, 0.01);
}

TEST_F(MemsysTest, CoreRespectsMshrLimit)
{
    WorkloadProfile w = apacheWorkload();
    w.issueProb = 1.0;
    w.mshrsPerCore = 5;
    Core core(0, cfg_, w, &nic_, Rng(2), &txCounter_);
    for (Cycle c = 0; c < 100; ++c) {
        core.tick(c);
        EXPECT_LE(core.outstanding(), 5);
    }
    EXPECT_EQ(core.issued(), 5u);
    EXPECT_GT(core.mshrStallCycles(), 0u);
}

TEST_F(MemsysTest, CoreRetiresOnResponse)
{
    WorkloadProfile w = waterWorkload();
    w.issueProb = 1.0;
    w.readFraction = 1.0; // reads only
    w.writeFraction = 0.0;
    Core core(0, cfg_, w, &nic_, Rng(3), &txCounter_);
    core.tick(10);
    ASSERT_EQ(core.outstanding(), 1);

    // Fabricate the response the bank would send.
    PacketInfo resp{};
    resp.tag = packTag(0, MsgType::DataResp);
    core.onResponse(resp, 60);
    EXPECT_EQ(core.outstanding(), 0);
    EXPECT_EQ(core.completed(), 1u);
    EXPECT_DOUBLE_EQ(core.txLatency().mean(), 50.0);
}

TEST_F(MemsysTest, PhaseModulationSwitchesRate)
{
    WorkloadProfile w = waterWorkload();
    w.issueProb = 0.02;
    w.mshrsPerCore = 1 << 20;
    w.phases = {1000, 500, 0.4}; // half the time at 0.4
    Core core(0, cfg_, w, &nic_, Rng(4), &txCounter_);
    std::uint64_t in_alt = 0, in_base = 0;
    std::uint64_t prev = 0;
    for (Cycle c = 0; c < 50000; ++c) {
        core.tick(c);
        std::uint64_t now_issued = core.issued();
        if (c % 1000 < 500)
            in_alt += now_issued - prev;
        else
            in_base += now_issued - prev;
        prev = now_issued;
    }
    // 0.4 vs 0.02 over equal time: ~20x more issues in alt phases.
    EXPECT_GT(in_alt, in_base * 10);
}

TEST_F(MemsysTest, CoreMessageTypesMatchMix)
{
    WorkloadProfile w = waterWorkload();
    w.issueProb = 1.0;
    w.mshrsPerCore = 1 << 20;
    w.readFraction = 0.5;
    w.writeFraction = 0.25;
    Core core(0, cfg_, w, &nic_, Rng(5), &txCounter_);
    int reads = 0, writes = 0, wbs = 0;
    for (Cycle c = 0; c < 4000; ++c) {
        std::size_t before0 = nic_.queuedFlits(kVnetRequest);
        std::size_t before2 = nic_.queuedFlits(kVnetData);
        core.tick(c);
        if (nic_.queuedFlits(kVnetData) > before2) {
            ++wbs;
        } else if (nic_.queuedFlits(kVnetRequest) > before0) {
            // Distinguish read/write by the queued tag.
            const Flit &f = nic_.peekInjection(kVnetRequest);
            (void)f;
            ++reads; // counted together below
        }
        // Drain the queues so peeks stay cheap.
        while (nic_.hasInjectable(kVnetRequest))
            nic_.popInjection(kVnetRequest, c);
        while (nic_.hasInjectable(kVnetData))
            nic_.popInjection(kVnetData, c);
        (void)writes;
    }
    double wb_frac = static_cast<double>(wbs) / (reads + wbs);
    EXPECT_NEAR(wb_frac, 0.25, 0.03); // 1 - read - write = 0.25
}

TEST_F(MemsysTest, BankRespondsAfterL2Latency)
{
    WorkloadProfile w = waterWorkload();
    w.l2LatencyCycles = 12;
    w.l2MissRate = 0.0;
    L2Bank bank(0, cfg_, w, &nic_, Rng(6));

    PacketInfo req{};
    req.src = 3;
    req.tag = packTag(42, MsgType::ReadReq);
    bank.onRequest(req, 100);
    EXPECT_EQ(bank.pendingResponses(), 1u);
    for (Cycle c = 100; c < 112; ++c) {
        bank.tick(c);
        EXPECT_EQ(nic_.queuedFlits(), 0u) << "responded early at " << c;
    }
    bank.tick(112);
    // DataResp: a data packet on vnet 2 addressed to the requester.
    EXPECT_EQ(nic_.queuedFlits(kVnetData),
              static_cast<std::size_t>(cfg_.dataPacketFlits));
    const Flit &f = nic_.peekInjection(kVnetData);
    EXPECT_EQ(f.dest, 3);
    EXPECT_EQ(tagMsgType(f.tag), MsgType::DataResp);
    EXPECT_EQ(tagTxId(f.tag), 42u);
    EXPECT_EQ(bank.requestsServed(), 1u);
    EXPECT_TRUE(bank.idle());
}

TEST_F(MemsysTest, BankMissPaysMemoryLatency)
{
    WorkloadProfile w = waterWorkload();
    w.l2LatencyCycles = 12;
    w.memLatencyCycles = 250;
    w.l2MissRate = 1.0; // always miss
    L2Bank bank(0, cfg_, w, &nic_, Rng(7));
    PacketInfo req{};
    req.src = 1;
    req.tag = packTag(1, MsgType::ReadReq);
    bank.onRequest(req, 0);
    bank.tick(261);
    EXPECT_EQ(nic_.queuedFlits(), 0u);
    bank.tick(262);
    EXPECT_GT(nic_.queuedFlits(), 0u);
}

TEST_F(MemsysTest, BankAcksWritesAndWritebacks)
{
    WorkloadProfile w = waterWorkload();
    w.l2MissRate = 0.0;
    L2Bank bank(0, cfg_, w, &nic_, Rng(8));
    PacketInfo wr{};
    wr.src = 2;
    wr.tag = packTag(5, MsgType::WriteReq);
    bank.onRequest(wr, 0);
    PacketInfo wb{};
    wb.src = 4;
    wb.tag = packTag(6, MsgType::WbData);
    bank.onRequest(wb, 0);
    bank.tick(w.l2LatencyCycles);
    // Both produce 1-flit Acks on the response vnet.
    EXPECT_EQ(nic_.queuedFlits(kVnetResponse), 2u);
    const Flit &f = nic_.peekInjection(kVnetResponse);
    EXPECT_EQ(tagMsgType(f.tag), MsgType::Ack);
}

TEST_F(MemsysTest, BankOrdersResponsesByReadyTime)
{
    WorkloadProfile w = waterWorkload();
    w.l2MissRate = 0.0;
    w.l2LatencyCycles = 12;
    L2Bank bank(0, cfg_, w, &nic_, Rng(9));
    PacketInfo late{};
    late.src = 1;
    late.tag = packTag(1, MsgType::WriteReq);
    PacketInfo early{};
    early.src = 2;
    early.tag = packTag(2, MsgType::WriteReq);
    bank.onRequest(late, 10);
    bank.onRequest(early, 5);
    bank.tick(17); // early's response is ready at 17, late's at 22
    ASSERT_EQ(nic_.queuedFlits(kVnetResponse), 1u);
    EXPECT_EQ(tagTxId(nic_.peekInjection(kVnetResponse).tag), 2u);
}

} // namespace
} // namespace afcsim
