/**
 * @file
 * Integration tests across routers + links + NICs: delivery,
 * conservation, drain, latency ordering and kernel behaviour for
 * all five flow-control configurations.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "network/network.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

class AllFlowControls
    : public ::testing::TestWithParam<FlowControl>
{
};

INSTANTIATE_TEST_SUITE_P(
    Network, AllFlowControls,
    ::testing::Values(FlowControl::Backpressured,
                      FlowControl::Backpressureless, FlowControl::Afc,
                      FlowControl::AfcAlwaysBackpressured,
                      FlowControl::BackpressuredIdealBypass),
    [](const ::testing::TestParamInfo<FlowControl> &info) {
        std::string n = toString(info.param);
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST_P(AllFlowControls, SinglePacketAllPairs)
{
    NetworkConfig cfg = testConfig();
    for (NodeId src = 0; src < 9; ++src) {
        for (NodeId dest = 0; dest < 9; ++dest) {
            if (src == dest)
                continue;
            Network net(cfg, GetParam());
            auto t = deliverOne(net, src, dest, 0, 1);
            ASSERT_TRUE(t.has_value())
                << toString(GetParam()) << " " << src << "->" << dest;
        }
    }
}

TEST_P(AllFlowControls, MultiFlitAllPairs)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, GetParam());
    for (NodeId src = 0; src < 9; ++src) {
        for (NodeId dest = 0; dest < 9; ++dest) {
            if (src != dest)
                net.nic(src).sendPacket(dest, 2, 5, net.now());
        }
    }
    ASSERT_TRUE(net.drain(100000));
    expectConservation(net);
    EXPECT_EQ(net.aggregateStats().packetsDelivered, 72u);
}

TEST_P(AllFlowControls, RandomBurstsConserveFlits)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, GetParam());
    Rng rng(cfg.seed);
    for (int k = 0; k < 1500; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.1)) {
                NodeId dest = rng.below(9);
                if (dest == src)
                    continue;
                bool data = rng.chance(0.4);
                net.nic(src).sendPacket(
                    dest, data ? 2 : rng.below(2), data ? 5 : 1,
                    net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(300000));
    expectConservation(net);
}

TEST_P(AllFlowControls, HopsAtLeastMinimal)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, GetParam());
    net.nic(0).sendPacket(8, 2, 5, net.now());
    ASSERT_TRUE(net.drain(50000));
    EXPECT_GE(net.aggregateStats().hops.mean(), 4.0);
}

TEST_P(AllFlowControls, DrainFromIdleIsImmediate)
{
    Network net(testConfig(), GetParam());
    EXPECT_TRUE(net.quiescent());
    EXPECT_TRUE(net.drain(1));
}

TEST_P(AllFlowControls, DeterministicAcrossRuns)
{
    NetworkConfig cfg = testConfig();
    auto run_once = [&]() {
        Network net(cfg, GetParam());
        Rng rng(7);
        for (int k = 0; k < 500; ++k) {
            for (NodeId src = 0; src < 9; ++src) {
                if (rng.chance(0.15)) {
                    NodeId dest = rng.below(9);
                    if (dest != src)
                        net.nic(src).sendPacket(dest, 2, 3, net.now());
                }
            }
            net.step();
        }
        EXPECT_TRUE(net.drain(200000));
        NetStats s = net.aggregateStats();
        return std::make_tuple(s.flitsDelivered,
                               s.packetLatency.mean(), s.hops.mean(),
                               net.aggregateEnergy().total());
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST_P(AllFlowControls, LargerMeshWorks)
{
    NetworkConfig cfg = testConfig(5, 4);
    Network net(cfg, GetParam());
    Rng rng(3);
    for (int k = 0; k < 400; ++k) {
        NodeId src = rng.below(20), dest = rng.below(20);
        if (src != dest)
            net.nic(src).sendPacket(dest, 2, 3, net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(300000));
    expectConservation(net);
}

TEST(Network, EnergyAccruesOnlyWithConstruction)
{
    Network net(testConfig(), FlowControl::Backpressured);
    EXPECT_DOUBLE_EQ(net.aggregateEnergy().total(), 0.0);
    net.run(10);
    EXPECT_GT(net.aggregateEnergy().total(), 0.0); // static power
}

TEST(Network, CycleCounterAdvances)
{
    Network net(testConfig(), FlowControl::Afc);
    EXPECT_EQ(net.now(), 0u);
    net.run(42);
    EXPECT_EQ(net.now(), 42u);
}

TEST(Network, DifferentSeedsDifferentDeflections)
{
    NetworkConfig a_cfg = testConfig();
    NetworkConfig b_cfg = testConfig();
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    auto run = [](const NetworkConfig &cfg) {
        Network net(cfg, FlowControl::Backpressureless);
        // Heavy traffic with mixed destinations (identical sequence
        // for both runs): which flit wins arbitration changes hop
        // trajectories, so the router-RNG seed must matter.
        Rng traffic(99);
        for (int k = 0; k < 400; ++k) {
            for (NodeId s = 0; s < 9; ++s) {
                if (traffic.chance(0.5)) {
                    NodeId d = traffic.below(9);
                    if (d != s)
                        net.nic(s).sendPacket(d, 2, 5, net.now());
                }
            }
            net.step();
        }
        EXPECT_TRUE(net.drain(300000));
        std::uint64_t defl = net.aggregateStats().totalDeflections;
        EXPECT_GT(defl, 0u);
        return defl;
    };
    // Randomized priorities: different seeds give different
    // deflection patterns (almost surely).
    EXPECT_NE(run(a_cfg), run(b_cfg));
}

TEST(Network, BackpressuredLatencyLowerAtHighLoadThanDeflection)
{
    // The paper's core performance claim, in miniature: at a load
    // past deflection saturation, the backpressured network delivers
    // lower average packet latency.
    NetworkConfig cfg = testConfig();
    auto avg_latency = [&](FlowControl fc) {
        Network net(cfg, fc);
        Rng rng(5);
        for (int k = 0; k < 3000; ++k) {
            for (NodeId src = 0; src < 9; ++src) {
                if (rng.chance(0.18)) {
                    NodeId dest = rng.below(9);
                    if (dest != src)
                        net.nic(src).sendPacket(dest, 2, 5, net.now());
                }
            }
            net.step();
        }
        EXPECT_TRUE(net.drain(500000));
        return net.aggregateStats().packetLatency.mean();
    };
    EXPECT_LT(avg_latency(FlowControl::Backpressured),
              avg_latency(FlowControl::Backpressureless));
}

TEST(Network, LinkUtilizationAccounting)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    // A single-flit packet 0 -> 2 crosses two east links.
    net.nic(0).sendPacket(2, 0, 1, net.now());
    ASSERT_TRUE(net.drain(1000));
    Cycle t = net.now();
    EXPECT_DOUBLE_EQ(net.linkUtilization(0, kEast), 1.0 / t);
    EXPECT_DOUBLE_EQ(net.linkUtilization(1, kEast), 1.0 / t);
    EXPECT_DOUBLE_EQ(net.linkUtilization(2, kLocal), 1.0 / t);
    EXPECT_DOUBLE_EQ(net.linkUtilization(0, kSouth), 0.0);
    EXPECT_DOUBLE_EQ(net.nodeUtilization(0), 1.0 / t);
}

TEST(Network, MisroutingRaisesOffPathUtilization)
{
    // Sec. V-B's pollution effect in miniature: under a hotspot,
    // deflection routing lights up links DOR never touches.
    NetworkConfig cfg = testConfig();
    auto off_path_use = [&](FlowControl fc) {
        Network net(cfg, fc);
        for (int k = 0; k < 200; ++k) {
            // All traffic flows along the top row (0 -> 2); under
            // DOR the bottom row stays silent.
            net.nic(0).sendPacket(2, 2, 5, net.now());
            net.nic(1).sendPacket(2, 2, 5, net.now());
            net.step();
        }
        net.drain(200000);
        double middle_row = 0.0;
        for (NodeId n : {3, 4, 5})
            middle_row += net.nodeUtilization(n);
        return middle_row;
    };
    // DOR keeps this traffic strictly in the top row; deflection
    // spills into the row below.
    EXPECT_DOUBLE_EQ(off_path_use(FlowControl::Backpressured), 0.0);
    EXPECT_GT(off_path_use(FlowControl::Backpressureless), 0.05);
}

} // namespace
} // namespace afcsim
