/**
 * @file
 * Unit tests for the NIC: packetization, injection queues,
 * reassembly (including out-of-order and interleaved arrivals, the
 * Sec. II receive-side buffering discussion) and statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/config.hh"
#include "network/nic.hh"

namespace afcsim
{
namespace
{

class NicTest : public ::testing::Test
{
  protected:
    NicTest() : nic_(2, cfg_, &counter_) {}

    NetworkConfig cfg_;
    PacketId counter_ = 0;
    Nic nic_;
};

TEST_F(NicTest, PacketizationShape)
{
    nic_.sendPacket(5, 2, 4, 100);
    ASSERT_EQ(nic_.queuedFlits(2), 4u);
    Flit f0 = nic_.popInjection(2, 101);
    EXPECT_EQ(f0.type, FlitType::Head);
    EXPECT_EQ(f0.seq, 0);
    EXPECT_EQ(f0.packetLen, 4);
    EXPECT_EQ(f0.src, 2);
    EXPECT_EQ(f0.dest, 5);
    EXPECT_EQ(f0.createTime, 100u);
    EXPECT_EQ(f0.injectTime, 101u);
    Flit f1 = nic_.popInjection(2, 102);
    EXPECT_EQ(f1.type, FlitType::Body);
    Flit f2 = nic_.popInjection(2, 103);
    EXPECT_EQ(f2.type, FlitType::Body);
    Flit f3 = nic_.popInjection(2, 104);
    EXPECT_EQ(f3.type, FlitType::Tail);
    EXPECT_EQ(f3.seq, 3);
}

TEST_F(NicTest, SingleFlitPacket)
{
    nic_.sendPacket(1, 0, 1, 0);
    Flit f = nic_.popInjection(0, 1);
    EXPECT_EQ(f.type, FlitType::Single);
}

TEST_F(NicTest, PacketIdsUnique)
{
    PacketId a = nic_.sendPacket(1, 0, 1, 0);
    PacketId b = nic_.sendPacket(3, 1, 2, 0);
    PacketId c = nic_.sendPacket(4, 2, 9, 0);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_EQ(counter_, 3u);
}

TEST_F(NicTest, QueuesPerVnet)
{
    nic_.sendPacket(1, 0, 1, 0);
    nic_.sendPacket(1, 2, 9, 0);
    EXPECT_EQ(nic_.queuedFlits(0), 1u);
    EXPECT_EQ(nic_.queuedFlits(1), 0u);
    EXPECT_EQ(nic_.queuedFlits(2), 9u);
    EXPECT_EQ(nic_.queuedFlits(), 10u);
    EXPECT_TRUE(nic_.hasInjectable(0));
    EXPECT_FALSE(nic_.hasInjectable(1));
}

TEST_F(NicTest, InOrderReassembly)
{
    PacketInfo delivered{};
    int calls = 0;
    nic_.setDeliveryHandler([&](const PacketInfo &info) {
        delivered = info;
        ++calls;
    });
    // Build a 3-flit packet addressed to node 2 (this NIC).
    std::vector<Flit> flits;
    for (int i = 0; i < 3; ++i) {
        Flit f;
        f.packet = 42;
        f.seq = i;
        f.packetLen = 3;
        f.src = 0;
        f.dest = 2;
        f.vnet = 2;
        f.createTime = 10;
        f.injectTime = 12;
        f.type = i == 0 ? FlitType::Head
               : i == 2 ? FlitType::Tail : FlitType::Body;
        f.tag = 0xBEEF;
        flits.push_back(f);
    }
    nic_.eject(flits[0], 20);
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(nic_.pendingReassemblies(), 1u);
    nic_.eject(flits[1], 21);
    nic_.eject(flits[2], 22);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(nic_.pendingReassemblies(), 0u);
    EXPECT_EQ(delivered.packet, 42u);
    EXPECT_EQ(delivered.length, 3);
    EXPECT_EQ(delivered.tag, 0xBEEFu);
    EXPECT_EQ(delivered.deliverTime, 22u);
    EXPECT_EQ(delivered.src, 0);
}

TEST_F(NicTest, OutOfOrderReassembly)
{
    // Deflection routing delivers flits in arbitrary order (Sec. II).
    int calls = 0;
    nic_.setDeliveryHandler([&](const PacketInfo &) { ++calls; });
    std::vector<int> order = {3, 0, 2, 1};
    for (int seq : order) {
        Flit f;
        f.packet = 7;
        f.seq = seq;
        f.packetLen = 4;
        f.src = 1;
        f.dest = 2;
        f.type = seq == 0 ? FlitType::Head
               : seq == 3 ? FlitType::Tail : FlitType::Body;
        nic_.eject(f, 30 + seq);
    }
    EXPECT_EQ(calls, 1);
}

TEST_F(NicTest, InterleavedPacketsReassemble)
{
    int calls = 0;
    nic_.setDeliveryHandler([&](const PacketInfo &) { ++calls; });
    auto make = [](PacketId p, int seq, int len) {
        Flit f;
        f.packet = p;
        f.seq = seq;
        f.packetLen = len;
        f.src = 0;
        f.dest = 2;
        f.type = FlitType::Body;
        if (seq == 0)
            f.type = len == 1 ? FlitType::Single : FlitType::Head;
        else if (seq == len - 1)
            f.type = FlitType::Tail;
        return f;
    };
    nic_.eject(make(1, 0, 2), 1);
    nic_.eject(make(2, 1, 2), 2);
    nic_.eject(make(2, 0, 2), 3);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(nic_.pendingReassemblies(), 1u);
    nic_.eject(make(1, 1, 2), 4);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(nic_.maxReassemblies(), 2u);
}

TEST_F(NicTest, StatsTrackLatencies)
{
    nic_.setDeliveryHandler([](const PacketInfo &) {});
    Flit f;
    f.packet = 1;
    f.seq = 0;
    f.packetLen = 1;
    f.src = 0;
    f.dest = 2;
    f.type = FlitType::Single;
    f.createTime = 10;
    f.injectTime = 15;
    f.hops = 4;
    f.deflections = 2;
    nic_.eject(f, 40);
    const NetStats &s = nic_.stats();
    EXPECT_EQ(s.flitsDelivered, 1u);
    EXPECT_EQ(s.packetsDelivered, 1u);
    EXPECT_DOUBLE_EQ(s.packetLatency.mean(), 30.0);
    EXPECT_DOUBLE_EQ(s.flitLatency.mean(), 25.0);
    EXPECT_DOUBLE_EQ(s.hops.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.deflections.mean(), 2.0);
    EXPECT_EQ(s.totalDeflections, 2u);
}

TEST_F(NicTest, QuiescentTracksState)
{
    EXPECT_TRUE(nic_.quiescent());
    nic_.sendPacket(1, 0, 1, 0);
    EXPECT_FALSE(nic_.quiescent());
    nic_.popInjection(0, 1);
    EXPECT_TRUE(nic_.quiescent());
}

TEST_F(NicTest, DeathOnDuplicateFlit)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    nic_.setDeliveryHandler([](const PacketInfo &) {});
    Flit f;
    f.packet = 9;
    f.seq = 0;
    f.packetLen = 2;
    f.src = 0;
    f.dest = 2;
    f.type = FlitType::Head;
    nic_.eject(f, 1);
    EXPECT_DEATH(nic_.eject(f, 2), "duplicate");
}

TEST_F(NicTest, DeathOnMisdelivery)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Flit f;
    f.packet = 9;
    f.seq = 0;
    f.packetLen = 1;
    f.src = 0;
    f.dest = 6; // not this NIC's node
    f.type = FlitType::Single;
    EXPECT_DEATH(nic_.eject(f, 1), "misdelivered");
}

} // namespace
} // namespace afcsim
