/**
 * @file
 * Tests for the observability subsystem (src/obs): sampler ring
 * wraparound, the zero-overhead off path (bit-identical run results
 * with tracing on vs. off), Chrome trace structure and residency
 * consistency, and trace/series export determinism across runner
 * thread counts.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "network/network.hh"
#include "obs/obs.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"

using namespace afcsim;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Drive an AFC network under uniform open-loop load for `cycles`. */
void
drive(Network &net, double rate, Cycle cycles)
{
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, rate, 0.35);
    for (Cycle c = 0; c < cycles; ++c) {
        inj.tick(net.now());
        net.step();
    }
}

exp::ExperimentSpec
tinySpec()
{
    exp::ExperimentSpec spec;
    spec.name = "obs_tiny";
    spec.kind = exp::RunKind::OpenLoop;
    spec.configs = {FlowControl::Backpressured,
                    FlowControl::Backpressureless, FlowControl::Afc,
                    FlowControl::AfcAdaptive};
    spec.rates = {0.3};
    spec.warmupCycles = 200;
    spec.measureCycles = 600;
    spec.baseSeed = 13;
    // Fast adaptation epochs so the self-tuning variant's controller
    // fires inside the short runs (the off-path check must hold while
    // thresholds are moving, since the tracer hook sits on that path).
    spec.base.afc.adapt.probeInterval = 128;
    spec.base.afc.adapt.probeWindow = 16;
    spec.base.afc.adapt.gain = 0.8;
    return spec;
}

} // namespace

TEST(ObsSampler, DisabledByDefault)
{
    NetworkConfig cfg;
    Network net(cfg, FlowControl::Afc);
    EXPECT_EQ(net.observability(), nullptr);
}

TEST(ObsSampler, RingWraparound)
{
    NetworkConfig cfg;
    cfg.obs.sampleInterval = 10;
    cfg.obs.sampleCapacity = 4;
    Network net(cfg, FlowControl::Afc);
    ASSERT_NE(net.observability(), nullptr);
    net.run(100);

    const obs::MetricsSampler *s = net.observability()->sampler();
    ASSERT_NE(s, nullptr);
    // Samples land at cycles 0, 10, ..., 90: ten recorded, the ring
    // retains the last four (60, 70, 80, 90), oldest first.
    EXPECT_EQ(s->framesRecorded(), 10u);
    ASSERT_EQ(s->frames(), 4u);
    EXPECT_EQ(s->frame(0).cycle, 60u);
    EXPECT_EQ(s->frame(1).cycle, 70u);
    EXPECT_EQ(s->frame(2).cycle, 80u);
    EXPECT_EQ(s->frame(3).cycle, 90u);
    ASSERT_EQ(s->frame(0).routers.size(),
              static_cast<std::size_t>(cfg.numNodes()));

    std::string csv = s->toCsv();
    EXPECT_EQ(csv.rfind("cycle,node,x,y,mode,", 0), 0u);
    std::size_t rows = 0;
    for (char c : csv)
        if (c == '\n')
            ++rows;
    // Header plus one row per router per retained frame.
    EXPECT_EQ(rows, 1u + 4u * cfg.numNodes());
}

TEST(ObsSampler, BeforeWraparoundKeepsOldestFirst)
{
    NetworkConfig cfg;
    cfg.obs.sampleInterval = 10;
    cfg.obs.sampleCapacity = 8;
    Network net(cfg, FlowControl::Afc);
    net.run(35); // samples at 0, 10, 20, 30 — ring not yet full
    const obs::MetricsSampler *s = net.observability()->sampler();
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->frames(), 4u);
    EXPECT_EQ(s->frame(0).cycle, 0u);
    EXPECT_EQ(s->frame(3).cycle, 30u);
}

TEST(ObsTrace, OffPathBitIdentical)
{
    exp::ExperimentSpec spec = tinySpec();
    std::vector<exp::RunPoint> points = spec.expand();
    ASSERT_GE(points.size(), 3u);

    for (const exp::RunPoint &p : points) {
        SCOPED_TRACE(toString(p.fc));
        exp::RunResult plain = exp::executeRun(p);
        EXPECT_EQ(plain.obs, nullptr);

        exp::RunPoint armed = p;
        armed.cfg.obs.trace = true;
        armed.cfg.obs.sampleInterval = 16;
        exp::RunResult traced = exp::executeRun(armed);
        ASSERT_NE(traced.obs, nullptr);
        // The harness marked the measurement window at warmup end.
        EXPECT_EQ(traced.obs->windowStart(), spec.warmupCycles);

        // Arming observability must not perturb the simulation: the
        // serialized run records are byte-identical.
        EXPECT_EQ(exp::toJson(plain).dump(2),
                  exp::toJson(traced).dump(2));
    }
}

TEST(ObsTrace, ChromeTraceStructureAndResidency)
{
    NetworkConfig cfg;
    cfg.obs.trace = true;
    cfg.obs.sampleInterval = 32;
    Network net(cfg, FlowControl::Afc);
    drive(net, 0.45, 3000);

    const auto &o = net.observability();
    ASSERT_NE(o, nullptr);
    EXPECT_GT(o->flitEvents(), 0u);

    JsonValue doc = o->chromeTrace();
    ASSERT_TRUE(doc.isObject());
    const JsonValue &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_GT(events.size(), 0u);

    std::size_t meta = 0, begins = 0, ends = 0, counters = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.at(i);
        ASSERT_TRUE(e.isObject());
        const std::string &ph = e.at("ph").asString();
        if (ph == "M")
            ++meta;
        else if (ph == "B")
            ++begins;
        else if (ph == "E")
            ++ends;
        else if (ph == "C")
            ++counters;
    }
    EXPECT_EQ(meta, static_cast<std::size_t>(cfg.numNodes()));
    EXPECT_EQ(begins, ends); // every mode span is closed
    EXPECT_GT(counters, 0u); // sampler frames became counter tracks
    EXPECT_EQ(doc.at("otherData").at("nodes").asInt(),
              cfg.numNodes());

    // Trace-derived residency must agree with the routers' own
    // cycle counters, up to the 2L switch-notification lag.
    std::vector<double> residency = o->bpResidency();
    ASSERT_EQ(residency.size(),
              static_cast<std::size_t>(cfg.numNodes()));
    double mean = 0.0;
    for (double f : residency)
        mean += f;
    mean /= static_cast<double>(residency.size());
    RouterStats rs = net.aggregateRouterStats();
    double switches = static_cast<double>(rs.forwardSwitches +
                                          rs.reverseSwitches);
    double tol = 0.02 + 4.0 * switches / 3000.0;
    EXPECT_NEAR(mean, rs.backpressuredFraction(), tol);
}

TEST(ObsExport, DeterministicAcrossRunnerThreads)
{
    namespace fs = std::filesystem;
    fs::path base = fs::temp_directory_path() / "afcsim_obs_det";
    fs::remove_all(base);
    std::string dir1 = (base / "t1").string();
    std::string dir4 = (base / "t4").string();

    exp::ExperimentSpec spec = tinySpec();
    spec.base.obs.trace = true;
    spec.base.obs.sampleInterval = 50;

    spec.obsDir = dir1;
    exp::ParallelRunner one(1);
    auto r1 = one.runSpec(spec);
    spec.obsDir = dir4;
    exp::ParallelRunner four(4);
    auto r4 = four.runSpec(spec);
    ASSERT_EQ(r1.results.size(), r4.results.size());

    // Every exported artifact must be byte-identical regardless of
    // the worker count that produced it.
    std::size_t compared = 0;
    for (std::size_t i = 0; i < r1.results.size(); ++i) {
        for (const char *suffix : {"_trace.json", "_series.csv"}) {
            std::string name =
                spec.name + "_run" + std::to_string(i) + suffix;
            std::string a = dir1 + "/" + name;
            std::string b = dir4 + "/" + name;
            ASSERT_TRUE(fs::exists(a)) << a;
            ASSERT_TRUE(fs::exists(b)) << b;
            EXPECT_EQ(readFile(a), readFile(b)) << name;
            ++compared;
        }
    }
    EXPECT_EQ(compared, 2 * r1.results.size());
    fs::remove_all(base);
}

TEST(ObsStream, StreamedFileMatchesUnboundedExport)
{
    namespace fs = std::filesystem;
    fs::path base = fs::temp_directory_path() / "afcsim_obs_stream";
    fs::remove_all(base);
    fs::create_directories(base);
    std::string path = (base / "series.csv").string();

    // A four-frame ring sampled every 10 cycles wraps many times
    // over 600 cycles; streaming must preserve every evicted frame.
    NetworkConfig cfg;
    cfg.obs.sampleInterval = 10;
    cfg.obs.sampleCapacity = 4;
    cfg.obs.streamPath = path;
    Network streamed(cfg, FlowControl::Afc);
    drive(streamed, 0.3, 600);
    ASSERT_NE(streamed.observability(), nullptr);
    EXPECT_TRUE(streamed.observability()->sampler()->streaming());
    EXPECT_TRUE(streamed.observability()->writeSeriesCsv(path));

    // Reference: the same run with an unbounded ring and no stream.
    NetworkConfig ref = cfg;
    ref.obs.streamPath.clear();
    ref.obs.sampleCapacity = 4096;
    Network inmem(ref, FlowControl::Afc);
    drive(inmem, 0.3, 600);
    EXPECT_EQ(readFile(path), inmem.observability()->seriesCsv());

    // Streaming is an observer: the simulation itself is untouched.
    EXPECT_EQ(streamed.aggregateStats().flitsDelivered,
              inmem.aggregateStats().flitsDelivered);
    fs::remove_all(base);
}

TEST(ObsStream, DisabledPathUnchangedAndFinalizeIdempotent)
{
    namespace fs = std::filesystem;
    fs::path base = fs::temp_directory_path() / "afcsim_obs_stream2";
    fs::remove_all(base);
    fs::create_directories(base);
    std::string path = (base / "series.csv").string();

    NetworkConfig cfg;
    cfg.obs.sampleInterval = 10;
    cfg.obs.sampleCapacity = 4;

    // Stream off: toCsv() renders the ring tail exactly as before.
    Network off(cfg, FlowControl::Afc);
    drive(off, 0.3, 600);
    EXPECT_FALSE(off.observability()->sampler()->streaming());
    std::string tail = off.observability()->seriesCsv();

    cfg.obs.streamPath = path;
    Network on(cfg, FlowControl::Afc);
    drive(on, 0.3, 600);
    // The in-memory ring is identical whether or not it streams.
    EXPECT_EQ(on.observability()->seriesCsv(), tail);

    // writeSeriesCsv() finalizes the stream; a repeat call reports
    // the same outcome and must not truncate the file.
    EXPECT_TRUE(on.observability()->writeSeriesCsv(path));
    std::string first = readFile(path);
    EXPECT_TRUE(on.observability()->writeSeriesCsv(path));
    EXPECT_EQ(readFile(path), first);
    // The streamed file ends with the ring tail (minus its header).
    ASSERT_GT(first.size(), tail.size());
    std::string tailRows = tail.substr(tail.find('\n') + 1);
    EXPECT_EQ(first.substr(first.size() - tailRows.size()), tailRows);
    fs::remove_all(base);
}

TEST(ObsStream, SpecKeyWiresPerRunStreamPaths)
{
    exp::ExperimentSpec spec = tinySpec();
    spec.obsStream = true;
    // obs_stream without obs_dir (or without a sampler) is a
    // configuration error, not a silent no-op.
    EXPECT_THROW(spec.expand(), ConfigError);
    spec.obsDir = "/tmp/obs_stream_spec_test";
    EXPECT_THROW(spec.expand(), ConfigError);
    spec.base.obs.sampleInterval = 32;
    std::vector<exp::RunPoint> points = spec.expand();
    ASSERT_GE(points.size(), 1u);
    for (const auto &p : points) {
        EXPECT_EQ(p.cfg.obs.streamPath,
                  spec.obsDir + "/" + spec.name + "_run" +
                      std::to_string(p.index) + "_series.csv");
    }

    // The text form round-trips the flag.
    exp::ExperimentSpec parsed = exp::ExperimentSpec::fromText(
        "exp.kind = openloop\n"
        "exp.rates = 0.3\n"
        "exp.obs_dir = /tmp/x\n"
        "exp.obs_stream = true\n"
        "obs.interval = 16\n");
    EXPECT_TRUE(parsed.obsStream);
    EXPECT_EQ(parsed.base.obs.sampleInterval, 16u);
}
