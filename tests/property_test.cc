/**
 * @file
 * Property-based sweeps (parameterized gtest): conservation, no
 * duplication, and drain hold for every (flow control, pattern,
 * mesh size, seed) combination; deflection-specific invariants hold
 * under randomized traffic.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "network/network.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

using SweepParam =
    std::tuple<FlowControl, const char *, int /*mesh*/, int /*seed*/>;

class ConservationSweep
    : public ::testing::TestWithParam<SweepParam>
{
};

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    auto [fc, pattern, mesh, seed] = info.param;
    std::string n = toString(fc) + std::string("_") + pattern + "_m" +
        std::to_string(mesh) + "_s" + std::to_string(seed);
    for (char &c : n) {
        if (c == '-')
            c = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Property, ConservationSweep,
    ::testing::Combine(
        ::testing::Values(FlowControl::Backpressured,
                          FlowControl::Backpressureless,
                          FlowControl::Afc,
                          FlowControl::AfcAlwaysBackpressured,
                          FlowControl::BackpressurelessDrop),
        ::testing::Values("uniform", "transpose", "hotspot",
                          "neighbor"),
        ::testing::Values(3, 4),
        ::testing::Values(1, 2)),
    sweepName);

TEST_P(ConservationSweep, EveryFlitDeliveredExactlyOnce)
{
    auto [fc, pattern_name, mesh_size, seed] = GetParam();
    NetworkConfig cfg = testConfig(mesh_size, mesh_size);
    cfg.seed = seed;
    Network net(cfg, fc);
    auto pattern = makePattern(pattern_name, net.mesh());
    OpenLoopInjector inj(net, *pattern, 0.15, 0.35);
    for (int k = 0; k < 1200; ++k) {
        inj.tick(net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    // Duplicate or lost flits trip NIC asserts or this check:
    expectConservation(net);
}

class LoadSweep : public ::testing::TestWithParam<double>
{
};

INSTANTIATE_TEST_SUITE_P(Property, LoadSweep,
                         ::testing::Values(0.05, 0.15, 0.3, 0.5),
                         [](const ::testing::TestParamInfo<double> &i) {
                             return "rate_" +
                                 std::to_string(int(i.param * 100));
                         });

TEST_P(LoadSweep, AfcConservesAtEveryLoad)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, GetParam(), 0.35);
    for (int k = 0; k < 3000; ++k) {
        inj.tick(net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
}

TEST_P(LoadSweep, BackpressuredHopsStayMinimal)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, GetParam(), 0.35);
    for (int k = 0; k < 2000; ++k) {
        inj.tick(net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    EXPECT_DOUBLE_EQ(net.aggregateStats().deflections.mean(), 0.0);
}

class LinkLatencySweep : public ::testing::TestWithParam<int>
{
};

INSTANTIATE_TEST_SUITE_P(Property, LinkLatencySweep,
                         ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return "L" + std::to_string(i.param);
                         });

TEST_P(LinkLatencySweep, AfcProtocolHoldsForAnyL)
{
    // The 2L switch window and X = 2L gossip reserve must be
    // consistent for every link latency.
    NetworkConfig cfg = testConfig();
    cfg.linkLatency = GetParam();
    Network net(cfg, FlowControl::Afc);
    Rng rng(42);
    for (int k = 0; k < 2500; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.2)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
    EXPECT_GT(net.aggregateRouterStats().forwardSwitches, 0u);
}

TEST_P(LinkLatencySweep, ZeroLoadLatencyFormula)
{
    NetworkConfig cfg = testConfig();
    cfg.linkLatency = GetParam();
    int L = GetParam();
    {
        Network net(cfg, FlowControl::Backpressured);
        ASSERT_TRUE(deliverOne(net, 0, 2, 0, 1).has_value());
        EXPECT_DOUBLE_EQ(net.aggregateStats().packetLatency.mean(),
                         2.0 * (L + 1) + 2.0);
    }
    {
        Network net(cfg, FlowControl::Backpressureless);
        ASSERT_TRUE(deliverOne(net, 0, 2, 0, 1).has_value());
        EXPECT_DOUBLE_EQ(net.aggregateStats().packetLatency.mean(),
                         2.0 * (L + 1) + 1.0);
    }
}

class PacketLengthSweep : public ::testing::TestWithParam<int>
{
};

INSTANTIATE_TEST_SUITE_P(Property, PacketLengthSweep,
                         ::testing::Values(1, 2, 5, 9, 17),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return "len" + std::to_string(i.param);
                         });

TEST_P(PacketLengthSweep, AllLengthsReassemble)
{
    NetworkConfig cfg = testConfig();
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc}) {
        Network net(cfg, fc);
        for (NodeId src = 0; src < 9; ++src) {
            NodeId dest = (src + 4) % 9;
            net.nic(src).sendPacket(dest, 2, GetParam(), net.now());
        }
        ASSERT_TRUE(net.drain(100000)) << toString(fc);
        expectConservation(net);
    }
}

TEST(Property, DeflectionNeverHoldsFlits)
{
    // A deflection router's occupancy can never exceed its arrivals
    // from one cycle, and everything latched leaves next cycle.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.4, 0.35);
    for (int k = 0; k < 2000; ++k) {
        inj.tick(net.now());
        net.step();
        for (NodeId n = 0; n < 9; ++n) {
            EXPECT_LE(net.router(n).occupancy(),
                      static_cast<std::size_t>(
                          2 * net.mesh().numNetPortsAt(n)));
        }
    }
}

TEST(Property, AfcOccupancyBoundedByBuffers)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.6, 0.35);
    std::size_t cap = NetworkConfig::totalBufferFlits(cfg.afcVnets) *
        (kNumNetPorts + 1) + 2 * kNumNetPorts;
    for (int k = 0; k < 3000; ++k) {
        inj.tick(net.now());
        net.step();
        for (NodeId n = 0; n < 9; ++n)
            EXPECT_LE(net.router(n).occupancy(), cap);
    }
}

} // namespace
} // namespace afcsim
