/**
 * @file
 * Property-based sweeps (parameterized gtest): conservation, no
 * duplication, and drain hold for every (flow control, pattern,
 * mesh size, seed) combination; deflection-specific invariants hold
 * under randomized traffic.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "network/network.hh"
#include "traffic/injector.hh"
#include "traffic/patterns.hh"
#include "testutil.hh"

namespace afcsim
{
namespace
{

using SweepParam =
    std::tuple<FlowControl, const char *, int /*mesh*/, int /*seed*/>;

class ConservationSweep
    : public ::testing::TestWithParam<SweepParam>
{
};

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    auto [fc, pattern, mesh, seed] = info.param;
    std::string n = toString(fc) + std::string("_") + pattern + "_m" +
        std::to_string(mesh) + "_s" + std::to_string(seed);
    for (char &c : n) {
        if (c == '-')
            c = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Property, ConservationSweep,
    ::testing::Combine(
        ::testing::Values(FlowControl::Backpressured,
                          FlowControl::Backpressureless,
                          FlowControl::Afc,
                          FlowControl::AfcAlwaysBackpressured,
                          FlowControl::BackpressurelessDrop),
        ::testing::Values("uniform", "transpose", "hotspot",
                          "neighbor"),
        ::testing::Values(3, 4),
        ::testing::Values(1, 2)),
    sweepName);

TEST_P(ConservationSweep, EveryFlitDeliveredExactlyOnce)
{
    auto [fc, pattern_name, mesh_size, seed] = GetParam();
    NetworkConfig cfg = testConfig(mesh_size, mesh_size);
    cfg.seed = seed;
    Network net(cfg, fc);
    auto pattern = makePattern(pattern_name, net.mesh());
    OpenLoopInjector inj(net, *pattern, 0.15, 0.35);
    for (int k = 0; k < 1200; ++k) {
        inj.tick(net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    // Duplicate or lost flits trip NIC asserts or this check:
    expectConservation(net);
}

class LoadSweep : public ::testing::TestWithParam<double>
{
};

INSTANTIATE_TEST_SUITE_P(Property, LoadSweep,
                         ::testing::Values(0.05, 0.15, 0.3, 0.5),
                         [](const ::testing::TestParamInfo<double> &i) {
                             return "rate_" +
                                 std::to_string(int(i.param * 100));
                         });

TEST_P(LoadSweep, AfcConservesAtEveryLoad)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, GetParam(), 0.35);
    for (int k = 0; k < 3000; ++k) {
        inj.tick(net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
}

TEST_P(LoadSweep, BackpressuredHopsStayMinimal)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressured);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, GetParam(), 0.35);
    for (int k = 0; k < 2000; ++k) {
        inj.tick(net.now());
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    EXPECT_DOUBLE_EQ(net.aggregateStats().deflections.mean(), 0.0);
}

class LinkLatencySweep : public ::testing::TestWithParam<int>
{
};

INSTANTIATE_TEST_SUITE_P(Property, LinkLatencySweep,
                         ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return "L" + std::to_string(i.param);
                         });

TEST_P(LinkLatencySweep, AfcProtocolHoldsForAnyL)
{
    // The 2L switch window and X = 2L gossip reserve must be
    // consistent for every link latency.
    NetworkConfig cfg = testConfig();
    cfg.linkLatency = GetParam();
    Network net(cfg, FlowControl::Afc);
    Rng rng(42);
    for (int k = 0; k < 2500; ++k) {
        for (NodeId src = 0; src < 9; ++src) {
            if (rng.chance(0.2)) {
                NodeId dest = rng.below(9);
                if (dest != src)
                    net.nic(src).sendPacket(dest, 2, 5, net.now());
            }
        }
        net.step();
    }
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
    EXPECT_GT(net.aggregateRouterStats().forwardSwitches, 0u);
}

TEST_P(LinkLatencySweep, ZeroLoadLatencyFormula)
{
    NetworkConfig cfg = testConfig();
    cfg.linkLatency = GetParam();
    int L = GetParam();
    {
        Network net(cfg, FlowControl::Backpressured);
        ASSERT_TRUE(deliverOne(net, 0, 2, 0, 1).has_value());
        EXPECT_DOUBLE_EQ(net.aggregateStats().packetLatency.mean(),
                         2.0 * (L + 1) + 2.0);
    }
    {
        Network net(cfg, FlowControl::Backpressureless);
        ASSERT_TRUE(deliverOne(net, 0, 2, 0, 1).has_value());
        EXPECT_DOUBLE_EQ(net.aggregateStats().packetLatency.mean(),
                         2.0 * (L + 1) + 1.0);
    }
}

class PacketLengthSweep : public ::testing::TestWithParam<int>
{
};

INSTANTIATE_TEST_SUITE_P(Property, PacketLengthSweep,
                         ::testing::Values(1, 2, 5, 9, 17),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return "len" + std::to_string(i.param);
                         });

TEST_P(PacketLengthSweep, AllLengthsReassemble)
{
    NetworkConfig cfg = testConfig();
    for (FlowControl fc :
         {FlowControl::Backpressured, FlowControl::Backpressureless,
          FlowControl::Afc}) {
        Network net(cfg, fc);
        for (NodeId src = 0; src < 9; ++src) {
            NodeId dest = (src + 4) % 9;
            net.nic(src).sendPacket(dest, 2, GetParam(), net.now());
        }
        ASSERT_TRUE(net.drain(100000)) << toString(fc);
        expectConservation(net);
    }
}

TEST(Property, DeflectionNeverHoldsFlits)
{
    // A deflection router's occupancy can never exceed its arrivals
    // from one cycle, and everything latched leaves next cycle.
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Backpressureless);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.4, 0.35);
    for (int k = 0; k < 2000; ++k) {
        inj.tick(net.now());
        net.step();
        for (NodeId n = 0; n < 9; ++n) {
            EXPECT_LE(net.router(n).occupancy(),
                      static_cast<std::size_t>(
                          2 * net.mesh().numNetPortsAt(n)));
        }
    }
}

/**
 * Bursty sleep/wake churn for the idle-router activity scheduler:
 * alternating burst and quiet epochs of random length drive random
 * subsets of nodes, so routers park and re-wake continuously. A
 * deterministic driver RNG (outside the network) makes a churn run
 * repeatable with `sim.idle_skip` on and off.
 */
std::string
runChurn(FlowControl fc, int seed, bool idle_skip, int shards = 1,
         Cycle *out_now = nullptr)
{
    NetworkConfig cfg = testConfig();
    cfg.idleSkip = idle_skip;
    cfg.shards = shards;
    cfg.seed = 7;
    Network net(cfg, fc);
    Rng rng(seed);
    int nodes = net.mesh().numNodes();
    for (int epoch = 0; epoch < 14; ++epoch) {
        bool burst = epoch % 2 == 0;
        Cycle len = burst ? 30 + rng.below(100) : 50 + rng.below(250);
        // Each burst hammers a random subset of sources so different
        // mesh regions quiesce while others saturate.
        std::uint32_t hot = rng.below(1u << nodes) | 1u;
        for (Cycle c = 0; c < len; ++c) {
            if (burst) {
                for (NodeId src = 0; src < nodes; ++src) {
                    if (!(hot & (1u << src)) || !rng.chance(0.45))
                        continue;
                    NodeId dest = static_cast<NodeId>(rng.below(nodes));
                    if (dest == src)
                        continue;
                    bool data = rng.chance(0.35);
                    net.nic(src).sendPacket(dest, data ? 2 : 0,
                                            data ? 5 : 1, net.now());
                }
            }
            net.step();
        }
    }
    if (!net.drain(500000))
        return "DRAIN FAILED";
    if (out_now)
        *out_now = net.now();
    RouterStats rs = net.aggregateRouterStats();
    NetStats ns = net.aggregateStats();
    std::string fp;
    fp += "routed=" + std::to_string(rs.flitsRouted);
    fp += " defl=" + std::to_string(rs.flitsDeflected);
    fp += " bp=" + std::to_string(rs.cyclesBackpressured);
    fp += " bpl=" + std::to_string(rs.cyclesBackpressureless);
    fp += " fwd=" + std::to_string(rs.forwardSwitches);
    fp += " rev=" + std::to_string(rs.reverseSwitches);
    fp += " gossip=" + std::to_string(rs.gossipSwitches);
    fp += " stalls=" + std::to_string(rs.creditStalls);
    fp += " inj=" + std::to_string(ns.flitsInjected);
    fp += " del=" + std::to_string(ns.flitsDelivered);
    return fp;
}

using ChurnParam = std::tuple<FlowControl, int /*seed*/>;

class IdleChurnSweep : public ::testing::TestWithParam<ChurnParam>
{
};

INSTANTIATE_TEST_SUITE_P(
    Property, IdleChurnSweep,
    ::testing::Combine(
        ::testing::Values(FlowControl::Backpressured,
                          FlowControl::Backpressureless,
                          FlowControl::Afc,
                          FlowControl::AfcAlwaysBackpressured,
                          FlowControl::BackpressurelessDrop),
        ::testing::Values(11, 12)),
    [](const ::testing::TestParamInfo<ChurnParam> &info) {
        std::string n = toString(std::get<0>(info.param)) +
            std::string("_s") + std::to_string(std::get<1>(info.param));
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST_P(IdleChurnSweep, ConservesAndDrainsUnderSleepWakeChurn)
{
    auto [fc, seed] = GetParam();
    NetworkConfig cfg = testConfig();
    cfg.seed = 7;
    Network net(cfg, fc);
    Rng rng(seed);
    int nodes = net.mesh().numNodes();
    for (int epoch = 0; epoch < 14; ++epoch) {
        bool burst = epoch % 2 == 0;
        Cycle len = burst ? 30 + rng.below(100) : 50 + rng.below(250);
        std::uint32_t hot = rng.below(1u << nodes) | 1u;
        for (Cycle c = 0; c < len; ++c) {
            if (burst) {
                for (NodeId src = 0; src < nodes; ++src) {
                    if (!(hot & (1u << src)) || !rng.chance(0.45))
                        continue;
                    NodeId dest = static_cast<NodeId>(rng.below(nodes));
                    if (dest == src)
                        continue;
                    bool data = rng.chance(0.35);
                    net.nic(src).sendPacket(dest, data ? 2 : 0,
                                            data ? 5 : 1, net.now());
                }
            }
            net.step();
        }
        // Quiet epochs end fully parked; these reads force idle
        // replay on every router and must not disturb anything.
        if (!burst) {
            for (NodeId n = 0; n < nodes; ++n)
                EXPECT_LE(net.router(n).stats().cyclesBackpressured +
                              net.router(n).stats().cyclesBackpressureless,
                          static_cast<std::uint64_t>(net.now()));
        }
    }
    // drain() must terminate even when every router is parked.
    ASSERT_TRUE(net.drain(500000));
    expectConservation(net);
}

TEST_P(IdleChurnSweep, ChurnCountersMatchFullScanExactly)
{
    auto [fc, seed] = GetParam();
    std::string on = runChurn(fc, seed, true);
    std::string off = runChurn(fc, seed, false);
    EXPECT_EQ(on, off);
    EXPECT_NE(on, "DRAIN FAILED");
}

TEST_P(IdleChurnSweep, ChurnCountersShardInvariant)
{
    // Sleep/wake churn with the worker pool live: whole shards park
    // and re-wake while other shards saturate, so the per-shard
    // active lists, pending-wake replay and park scans all run
    // concurrently. Counters must match the single-shard run exactly,
    // with idle-skip both on and off.
    auto [fc, seed] = GetParam();
    std::string one = runChurn(fc, seed, true, 1);
    EXPECT_EQ(one, runChurn(fc, seed, true, 3));
    EXPECT_EQ(runChurn(fc, seed, false, 1),
              runChurn(fc, seed, false, 4));
    EXPECT_NE(one, "DRAIN FAILED");
}

TEST(Property, ChurnStillProducesGossipAndModeSwitches)
{
    // The equality check above is vacuous for AFC if churn never
    // leaves backpressureless mode; prove the workload actually
    // exercises forward/reverse switching under idle-skip.
    Cycle now = 0;
    std::string fp = runChurn(FlowControl::Afc, 11, true, 1, &now);
    ASSERT_NE(fp, "DRAIN FAILED");
    EXPECT_EQ(fp.find(" fwd=0 "), std::string::npos) << fp;
    EXPECT_EQ(fp.find(" rev=0 "), std::string::npos) << fp;
    EXPECT_GT(now, 0u);
}

TEST(Property, AfcOccupancyBoundedByBuffers)
{
    NetworkConfig cfg = testConfig();
    Network net(cfg, FlowControl::Afc);
    UniformPattern pattern(net.mesh());
    OpenLoopInjector inj(net, pattern, 0.6, 0.35);
    std::size_t cap = NetworkConfig::totalBufferFlits(cfg.afcVnets) *
        (kNumNetPorts + 1) + 2 * kNumNetPorts;
    for (int k = 0; k < 3000; ++k) {
        inj.tick(net.now());
        net.step();
        for (NodeId n = 0; n < 9; ++n)
            EXPECT_LE(net.router(n).occupancy(), cap);
    }
}

} // namespace
} // namespace afcsim
