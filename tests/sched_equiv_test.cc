/**
 * @file
 * Differential bit-identity suite for the idle-router activity
 * scheduler (`sim.idle_skip`). Every run is executed twice — skip on
 * and skip off — and every exported artifact must be byte-identical:
 * aggregate/per-router counters, energy ledgers, fault counters, the
 * observability sampler series and the Chrome trace. Watchdog audits
 * run at a tightened interval in both runs, so a scheduler bug that
 * breaks credit/conservation invariants fails the run outright
 * rather than just diverging.
 *
 * The grid mirrors the coverage contract: {backpressured,
 * backpressureless, AFC, drop} x {uniform, hotspot, closed-loop
 * memory system} x fault rates {0, nonzero}.
 */

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/statsio.hh"
#include "obs/obs.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"
#include "testutil.hh"
#include "traffic/injector.hh"
#include "traffic/openloop.hh"
#include "traffic/patterns.hh"

namespace afcsim
{
namespace
{

/** Observability + watchdog settings shared by both runs of a pair:
 *  dense sampling and frequent audits so parked-router catch-up is
 *  exercised mid-run, not just at the end. */
void
armObservers(NetworkConfig &cfg)
{
    cfg.watchdog.enabled = true;
    cfg.watchdog.intervalCycles = 128;
    cfg.obs.sampleInterval = 64;
    cfg.obs.trace = true;
}

std::string
obsFingerprint(const std::shared_ptr<obs::Observability> &obs)
{
    if (!obs)
        return "<no obs>";
    return obs->seriesCsv() + "\n" + obs->chromeTrace().dump(2);
}

/** Serialize everything an open-loop run exports. */
std::string
openLoopFingerprint(const OpenLoopResult &r)
{
    JsonValue doc = JsonValue::object();
    doc.set("accepted", r.acceptedRate);
    doc.set("avg_pkt_lat", r.avgPacketLatency);
    doc.set("p50_pkt_lat", r.p50PacketLatency);
    doc.set("p99_pkt_lat", r.p99PacketLatency);
    doc.set("avg_flit_lat", r.avgFlitLatency);
    doc.set("avg_hops", r.avgHops);
    doc.set("avg_defl", r.avgDeflections);
    doc.set("energy_per_flit", r.energyPerFlit);
    doc.set("bp_fraction", r.bpFraction);
    doc.set("net", toJson(r.stats));
    doc.set("energy", toJson(r.energy));
    doc.set("corruptions", static_cast<std::int64_t>(r.faults.corruptions));
    doc.set("stall_events", static_cast<std::int64_t>(r.faults.stallEvents));
    doc.set("flits_held", static_cast<std::int64_t>(r.faults.flitsHeld));
    return doc.dump(2) + "\n" + obsFingerprint(r.obs);
}

/** Serialize everything a closed-loop run exports. */
std::string
closedLoopFingerprint(const ClosedLoopResult &r)
{
    JsonValue doc = JsonValue::object();
    doc.set("runtime", static_cast<std::int64_t>(r.runtime));
    doc.set("transactions", static_cast<std::int64_t>(r.transactions));
    doc.set("injection_rate", r.injectionRate);
    doc.set("avg_tx_lat", r.avgTxLatency);
    doc.set("avg_pkt_lat", r.avgPacketLatency);
    doc.set("avg_defl", r.avgDeflections);
    doc.set("bp_fraction", r.bpFraction);
    doc.set("fwd", static_cast<std::int64_t>(r.forwardSwitches));
    doc.set("rev", static_cast<std::int64_t>(r.reverseSwitches));
    doc.set("gossip", static_cast<std::int64_t>(r.gossipSwitches));
    doc.set("net", toJson(r.net));
    doc.set("energy", toJson(r.energy));
    doc.set("stall_events", static_cast<std::int64_t>(r.faults.stallEvents));
    doc.set("flits_held", static_cast<std::int64_t>(r.faults.flitsHeld));
    return doc.dump(2) + "\n" + obsFingerprint(r.obs);
}

/** One open-loop grid point: pattern x load x fault configuration. */
struct EquivCase
{
    const char *name;
    FlowControl fc;
    const char *pattern;
    double rate;
    double corruptRate;  ///< armed with end-to-end reliability
    double stallRate;    ///< loss-free link faults (any flow control)
};

std::string
caseName(const testing::TestParamInfo<EquivCase> &info)
{
    return info.param.name;
}

class SchedEquivTest : public testing::TestWithParam<EquivCase>
{
};

TEST_P(SchedEquivTest, OpenLoopBitIdentical)
{
    const EquivCase &p = GetParam();
    OpenLoopConfig ol;
    ol.pattern = p.pattern;
    ol.injectionRate = p.rate;
    ol.warmupCycles = 300;
    ol.measureCycles = 1500;
    ol.drainCycles = 30000;

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig();
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        cfg.faults.corruptRate = p.corruptRate;
        cfg.faults.stallRate = p.stallRate;
        if (p.corruptRate > 0.0) {
            cfg.reliability.enabled = true;
            cfg.reliability.timeoutCycles = 256;
            cfg.reliability.maxRetries = 16;
        }
        fp[skip] = openLoopFingerprint(runOpenLoop(cfg, p.fc, ol));
    }
    EXPECT_EQ(fp[0], fp[1])
        << "idle_skip diverged for " << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedEquivTest,
    testing::Values(
        // Fault-free: every flow control, uniform and hotspot.
        EquivCase{"bp_uniform", FlowControl::Backpressured,
                  "uniform", 0.15, 0.0, 0.0},
        EquivCase{"bp_hotspot", FlowControl::Backpressured,
                  "hotspot", 0.10, 0.0, 0.0},
        EquivCase{"bpl_uniform", FlowControl::Backpressureless,
                  "uniform", 0.15, 0.0, 0.0},
        EquivCase{"bpl_hotspot", FlowControl::Backpressureless,
                  "hotspot", 0.10, 0.0, 0.0},
        EquivCase{"afc_uniform", FlowControl::Afc,
                  "uniform", 0.15, 0.0, 0.0},
        EquivCase{"afc_hotspot", FlowControl::Afc,
                  "hotspot", 0.10, 0.0, 0.0},
        // High load: AFC switches modes, gossip propagates.
        EquivCase{"afc_uniform_hi", FlowControl::Afc,
                  "uniform", 0.45, 0.0, 0.0},
        EquivCase{"drop_uniform", FlowControl::BackpressurelessDrop,
                  "uniform", 0.15, 0.0, 0.0},
        EquivCase{"drop_hotspot", FlowControl::BackpressurelessDrop,
                  "hotspot", 0.10, 0.0, 0.0},
        // Nonzero faults: corruption + retransmission for the
        // credit/latch variants, loss-free stalls for drop (its NACK
        // protocol handles loss itself; stalls stress wake timing).
        EquivCase{"bp_faulty", FlowControl::Backpressured,
                  "uniform", 0.12, 0.002, 0.0},
        EquivCase{"bpl_faulty", FlowControl::Backpressureless,
                  "uniform", 0.12, 0.002, 0.0},
        EquivCase{"afc_faulty", FlowControl::Afc,
                  "uniform", 0.12, 0.002, 0.0},
        EquivCase{"drop_stalls", FlowControl::BackpressurelessDrop,
                  "uniform", 0.12, 0.0, 0.002}),
    caseName);

/** Closed-loop memory-system grid: the bursty request/response
 *  traffic quiesces whole regions of the mesh between misses, so
 *  this is the strongest park/wake workout. */
class SchedEquivClosedLoopTest
    : public testing::TestWithParam<std::pair<const char *, FlowControl>>
{
};

TEST_P(SchedEquivClosedLoopTest, MemsysBitIdentical)
{
    FlowControl fc = GetParam().second;
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        fp[skip] = closedLoopFingerprint(runClosedLoop(cfg, fc, w));
    }
    EXPECT_EQ(fp[0], fp[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedEquivClosedLoopTest,
    testing::Values(
        std::make_pair("bp", FlowControl::Backpressured),
        std::make_pair("bpl", FlowControl::Backpressureless),
        std::make_pair("afc", FlowControl::Afc),
        std::make_pair("drop", FlowControl::BackpressurelessDrop)),
    [](const auto &info) { return std::string(info.param.first); });

/** Nonzero faults under the memory system. Stalls pair with the
 *  deflecting variant (AFC's credit/ctl protocol does not tolerate a
 *  flit held across a mode switch — that asserts identically with
 *  skip on and off); corruption + end-to-end retransmission pairs
 *  with AFC, exercising NIC timer wakes on parked routers. */
TEST(SchedEquivClosedLoop, MemsysWithStallFaultsBitIdentical)
{
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        cfg.faults.stallRate = 0.001;
        fp[skip] = closedLoopFingerprint(
            runClosedLoop(cfg, FlowControl::Backpressureless, w));
    }
    EXPECT_EQ(fp[0], fp[1]);
}

TEST(SchedEquivClosedLoop, MemsysWithRetransmissionBitIdentical)
{
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        cfg.faults.corruptRate = 0.001;
        cfg.reliability.enabled = true;
        cfg.reliability.timeoutCycles = 256;
        cfg.reliability.maxRetries = 16;
        fp[skip] = closedLoopFingerprint(
            runClosedLoop(cfg, FlowControl::Afc, w));
    }
    EXPECT_EQ(fp[0], fp[1]);
}

/** Per-router counters read *mid-run* must match too: an accessor on
 *  a parked router replays its idle gap on demand, and that read
 *  must not perturb anything downstream. */
TEST(SchedEquiv, MidRunPerRouterReadsExactAndNonPerturbing)
{
    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig();
        cfg.idleSkip = skip != 0;
        Network net(cfg, FlowControl::Afc);
        UniformPattern pattern(net.mesh());
        OpenLoopInjector inj(net, pattern, 0.15, 0.35);

        JsonValue doc = JsonValue::array();
        for (int chunk = 0; chunk < 4; ++chunk) {
            for (int c = 0; c < 512; ++c) {
                inj.tick(net.now());
                net.step();
            }
            JsonValue snap = JsonValue::object();
            for (NodeId n = 0; n < net.mesh().numNodes(); ++n) {
                const RouterStats &rs = net.router(n).stats();
                JsonValue row = JsonValue::array();
                row.push(static_cast<std::int64_t>(rs.flitsRouted));
                row.push(static_cast<std::int64_t>(rs.flitsDeflected));
                row.push(static_cast<std::int64_t>(rs.cyclesBackpressured));
                row.push(
                    static_cast<std::int64_t>(rs.cyclesBackpressureless));
                row.push(static_cast<std::int64_t>(rs.forwardSwitches));
                row.push(static_cast<std::int64_t>(rs.reverseSwitches));
                row.push(static_cast<std::int64_t>(rs.gossipSwitches));
                row.push(static_cast<std::int64_t>(rs.creditStalls));
                row.push(net.ledger(n).report().total());
                snap.set("node" + std::to_string(n), std::move(row));
            }
            doc.push(std::move(snap));
        }
        fp[skip] = doc.dump(2);
    }
    EXPECT_EQ(fp[0], fp[1]);
}

} // namespace
} // namespace afcsim
