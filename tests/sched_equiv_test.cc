/**
 * @file
 * Differential bit-identity suite for the cycle kernel's execution
 * knobs: the idle-router activity scheduler (`sim.idle_skip`) and the
 * shard count (`sim.shards`). Every run is executed once per knob
 * setting and every exported artifact must be byte-identical:
 * aggregate/per-router counters, energy ledgers, fault counters, the
 * observability sampler series and the Chrome trace. Watchdog audits
 * run at a tightened interval in both runs, so a scheduler bug that
 * breaks credit/conservation invariants fails the run outright
 * rather than just diverging.
 *
 * The grid mirrors the coverage contract: {backpressured,
 * backpressureless, AFC, drop} x {uniform, hotspot, closed-loop
 * memory system} x fault rates {0, nonzero} x shard counts {1, N}
 * (with N chosen to force uneven partitions), plus worker-pool runs
 * with tracing off so the threaded path itself is exercised, and a
 * mid-run checkpoint taken under N shards and restored under 1.
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/statsio.hh"
#include "obs/obs.hh"
#include "sim/closedloop.hh"
#include "sim/workload.hh"
#include "testutil.hh"
#include "traffic/injector.hh"
#include "traffic/openloop.hh"
#include "traffic/patterns.hh"

namespace afcsim
{
namespace
{

/** Observability + watchdog settings shared by both runs of a pair:
 *  dense sampling and frequent audits so parked-router catch-up is
 *  exercised mid-run, not just at the end. */
void
armObservers(NetworkConfig &cfg)
{
    cfg.watchdog.enabled = true;
    cfg.watchdog.intervalCycles = 128;
    cfg.obs.sampleInterval = 64;
    cfg.obs.trace = true;
}

std::string
obsFingerprint(const std::shared_ptr<obs::Observability> &obs)
{
    if (!obs)
        return "<no obs>";
    return obs->seriesCsv() + "\n" + obs->chromeTrace().dump(2);
}

/** Serialize everything an open-loop run exports. */
std::string
openLoopFingerprint(const OpenLoopResult &r)
{
    JsonValue doc = JsonValue::object();
    doc.set("accepted", r.acceptedRate);
    doc.set("avg_pkt_lat", r.avgPacketLatency);
    doc.set("p50_pkt_lat", r.p50PacketLatency);
    doc.set("p99_pkt_lat", r.p99PacketLatency);
    doc.set("avg_flit_lat", r.avgFlitLatency);
    doc.set("avg_hops", r.avgHops);
    doc.set("avg_defl", r.avgDeflections);
    doc.set("energy_per_flit", r.energyPerFlit);
    doc.set("bp_fraction", r.bpFraction);
    doc.set("net", toJson(r.stats));
    doc.set("energy", toJson(r.energy));
    doc.set("corruptions", static_cast<std::int64_t>(r.faults.corruptions));
    doc.set("stall_events", static_cast<std::int64_t>(r.faults.stallEvents));
    doc.set("flits_held", static_cast<std::int64_t>(r.faults.flitsHeld));
    return doc.dump(2) + "\n" + obsFingerprint(r.obs);
}

/** Serialize everything a closed-loop run exports. */
std::string
closedLoopFingerprint(const ClosedLoopResult &r)
{
    JsonValue doc = JsonValue::object();
    doc.set("runtime", static_cast<std::int64_t>(r.runtime));
    doc.set("transactions", static_cast<std::int64_t>(r.transactions));
    doc.set("injection_rate", r.injectionRate);
    doc.set("avg_tx_lat", r.avgTxLatency);
    doc.set("avg_pkt_lat", r.avgPacketLatency);
    doc.set("avg_defl", r.avgDeflections);
    doc.set("bp_fraction", r.bpFraction);
    doc.set("fwd", static_cast<std::int64_t>(r.forwardSwitches));
    doc.set("rev", static_cast<std::int64_t>(r.reverseSwitches));
    doc.set("gossip", static_cast<std::int64_t>(r.gossipSwitches));
    doc.set("net", toJson(r.net));
    doc.set("energy", toJson(r.energy));
    doc.set("stall_events", static_cast<std::int64_t>(r.faults.stallEvents));
    doc.set("flits_held", static_cast<std::int64_t>(r.faults.flitsHeld));
    return doc.dump(2) + "\n" + obsFingerprint(r.obs);
}

/** One open-loop grid point: pattern x load x fault configuration. */
struct EquivCase
{
    const char *name;
    FlowControl fc;
    const char *pattern;
    double rate;
    double corruptRate;  ///< armed with end-to-end reliability
    double stallRate;    ///< loss-free link faults (any flow control)
};

std::string
caseName(const testing::TestParamInfo<EquivCase> &info)
{
    return info.param.name;
}

/** Shared by the idle-skip and shard-count differential fixtures:
 *  both axes promise byte-identical exports over the same coverage
 *  contract, so they run the same grid. */
const EquivCase kOpenLoopGrid[] = {
    // Fault-free: every flow control, uniform and hotspot.
    {"bp_uniform", FlowControl::Backpressured, "uniform", 0.15, 0.0,
     0.0},
    {"bp_hotspot", FlowControl::Backpressured, "hotspot", 0.10, 0.0,
     0.0},
    {"bpl_uniform", FlowControl::Backpressureless, "uniform", 0.15,
     0.0, 0.0},
    {"bpl_hotspot", FlowControl::Backpressureless, "hotspot", 0.10,
     0.0, 0.0},
    {"afc_uniform", FlowControl::Afc, "uniform", 0.15, 0.0, 0.0},
    {"afc_hotspot", FlowControl::Afc, "hotspot", 0.10, 0.0, 0.0},
    // High load: AFC switches modes, gossip propagates.
    {"afc_uniform_hi", FlowControl::Afc, "uniform", 0.45, 0.0, 0.0},
    {"drop_uniform", FlowControl::BackpressurelessDrop, "uniform",
     0.15, 0.0, 0.0},
    {"drop_hotspot", FlowControl::BackpressurelessDrop, "hotspot",
     0.10, 0.0, 0.0},
    // Nonzero faults: corruption + retransmission for the
    // credit/latch variants, loss-free stalls for drop (its NACK
    // protocol handles loss itself; stalls stress wake timing).
    {"bp_faulty", FlowControl::Backpressured, "uniform", 0.12, 0.002,
     0.0},
    {"bpl_faulty", FlowControl::Backpressureless, "uniform", 0.12,
     0.002, 0.0},
    {"afc_faulty", FlowControl::Afc, "uniform", 0.12, 0.002, 0.0},
    {"drop_stalls", FlowControl::BackpressurelessDrop, "uniform",
     0.12, 0.0, 0.002},
    // Self-tuning AFC: epoch boundaries and probe windows are pure
    // functions of the absolute cycle, so parked spans and shard
    // partitions must not shift the controller's decisions. Drift and
    // high load keep thresholds moving mid-run; the faulty point
    // exercises retransmission wakes during adaptation.
    {"afc_ad_uniform", FlowControl::AfcAdaptive, "uniform", 0.15, 0.0,
     0.0},
    {"afc_ad_drift", FlowControl::AfcAdaptive, "hotspot_drift", 0.12,
     0.0, 0.0},
    {"afc_ad_hi", FlowControl::AfcAdaptive, "uniform", 0.45, 0.0, 0.0},
    {"afc_ad_faulty", FlowControl::AfcAdaptive, "uniform", 0.12, 0.002,
     0.0},
};

/** Fast adaptation epochs so the gradient controller fires many
 *  times inside the short grid runs: the scheduler axes must be
 *  byte-identical across live threshold motion, not just while the
 *  controller is quiescent. No-op for the non-adaptive variants. */
void
armAdapt(NetworkConfig &cfg, FlowControl fc)
{
    if (fc != FlowControl::AfcAdaptive)
        return;
    cfg.afc.adapt.probeInterval = 256;
    cfg.afc.adapt.probeWindow = 32;
    cfg.afc.adapt.gain = 0.8;
}

/** Arm the fault/reliability knobs of one grid point. */
void
armFaults(NetworkConfig &cfg, const EquivCase &p)
{
    cfg.faults.corruptRate = p.corruptRate;
    cfg.faults.stallRate = p.stallRate;
    if (p.corruptRate > 0.0) {
        cfg.reliability.enabled = true;
        cfg.reliability.timeoutCycles = 256;
        cfg.reliability.maxRetries = 16;
    }
}

OpenLoopConfig
gridOl(const EquivCase &p)
{
    OpenLoopConfig ol;
    ol.pattern = p.pattern;
    ol.injectionRate = p.rate;
    ol.warmupCycles = 300;
    ol.measureCycles = 1500;
    ol.drainCycles = 30000;
    return ol;
}

class SchedEquivTest : public testing::TestWithParam<EquivCase>
{
};

TEST_P(SchedEquivTest, OpenLoopBitIdentical)
{
    const EquivCase &p = GetParam();
    OpenLoopConfig ol = gridOl(p);

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig();
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        armFaults(cfg, p);
        armAdapt(cfg, p.fc);
        fp[skip] = openLoopFingerprint(runOpenLoop(cfg, p.fc, ol));
    }
    EXPECT_EQ(fp[0], fp[1])
        << "idle_skip diverged for " << p.name;
}

INSTANTIATE_TEST_SUITE_P(Grid, SchedEquivTest,
                         testing::ValuesIn(kOpenLoopGrid), caseName);

/** Shard-count axis over the same grid: exports must not depend on
 *  how the mesh is partitioned. Shard counts are chosen to force
 *  uneven contiguous partitions of the 3x3 mesh (9 = 3x3, 7 leaves
 *  two shards with two nodes each). Full observers stay armed, so
 *  the traced/faulty points run the sharded kernel in its serialized
 *  gate — same slices, same hand-off order, sub-phase-major evaluate
 *  so trace event order matches shards=1, main thread only — which
 *  is exactly what those features get in production. */
class ShardEquivTest : public testing::TestWithParam<EquivCase>
{
};

TEST_P(ShardEquivTest, OpenLoopShardCountBitIdentical)
{
    const EquivCase &p = GetParam();
    OpenLoopConfig ol = gridOl(p);

    std::string ref;
    for (int shards : {1, 3, 7}) {
        NetworkConfig cfg = testConfig();
        cfg.shards = shards;
        armObservers(cfg);
        armFaults(cfg, p);
        armAdapt(cfg, p.fc);
        std::string fp = openLoopFingerprint(runOpenLoop(cfg, p.fc, ol));
        if (shards == 1)
            ref = fp;
        else
            EXPECT_EQ(ref, fp) << "shards=" << shards
                               << " diverged for " << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, ShardEquivTest,
                         testing::ValuesIn(kOpenLoopGrid), caseName);

/** Closed-loop memory-system grid: the bursty request/response
 *  traffic quiesces whole regions of the mesh between misses, so
 *  this is the strongest park/wake workout. */
class SchedEquivClosedLoopTest
    : public testing::TestWithParam<std::pair<const char *, FlowControl>>
{
};

TEST_P(SchedEquivClosedLoopTest, MemsysBitIdentical)
{
    FlowControl fc = GetParam().second;
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        armAdapt(cfg, fc);
        fp[skip] = closedLoopFingerprint(runClosedLoop(cfg, fc, w));
    }
    EXPECT_EQ(fp[0], fp[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedEquivClosedLoopTest,
    testing::Values(
        std::make_pair("bp", FlowControl::Backpressured),
        std::make_pair("bpl", FlowControl::Backpressureless),
        std::make_pair("afc", FlowControl::Afc),
        std::make_pair("afc_ad", FlowControl::AfcAdaptive),
        std::make_pair("drop", FlowControl::BackpressurelessDrop)),
    [](const auto &info) { return std::string(info.param.first); });

/** Shard axis under the closed-loop memory system: cores, caches and
 *  the directory all interact with the network between cycles, so
 *  this proves the shard barriers leave every cycle-boundary
 *  interface (NIC eject callbacks, sendPacket, drain) untouched.
 *  16 nodes / 5 shards gives a 4,3,3,3,3 partition. */
class ShardEquivClosedLoopTest
    : public testing::TestWithParam<std::pair<const char *, FlowControl>>
{
};

TEST_P(ShardEquivClosedLoopTest, MemsysShardCountBitIdentical)
{
    FlowControl fc = GetParam().second;
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string ref;
    for (int shards : {1, 4, 5}) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.shards = shards;
        armObservers(cfg);
        armAdapt(cfg, fc);
        std::string fp = closedLoopFingerprint(runClosedLoop(cfg, fc, w));
        if (shards == 1)
            ref = fp;
        else
            EXPECT_EQ(ref, fp) << "shards=" << shards << " diverged";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardEquivClosedLoopTest,
    testing::Values(
        std::make_pair("bp", FlowControl::Backpressured),
        std::make_pair("bpl", FlowControl::Backpressureless),
        std::make_pair("afc", FlowControl::Afc),
        std::make_pair("afc_ad", FlowControl::AfcAdaptive),
        std::make_pair("drop", FlowControl::BackpressurelessDrop)),
    [](const auto &info) { return std::string(info.param.first); });

/** Nonzero faults under the memory system. Stalls pair with the
 *  deflecting variant (AFC's credit/ctl protocol does not tolerate a
 *  flit held across a mode switch — that asserts identically with
 *  skip on and off); corruption + end-to-end retransmission pairs
 *  with AFC, exercising NIC timer wakes on parked routers. */
TEST(SchedEquivClosedLoop, MemsysWithStallFaultsBitIdentical)
{
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        cfg.faults.stallRate = 0.001;
        fp[skip] = closedLoopFingerprint(
            runClosedLoop(cfg, FlowControl::Backpressureless, w));
    }
    EXPECT_EQ(fp[0], fp[1]);
}

TEST(SchedEquivClosedLoop, MemsysWithRetransmissionBitIdentical)
{
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.idleSkip = skip != 0;
        armObservers(cfg);
        cfg.faults.corruptRate = 0.001;
        cfg.reliability.enabled = true;
        cfg.reliability.timeoutCycles = 256;
        cfg.reliability.maxRetries = 16;
        fp[skip] = closedLoopFingerprint(
            runClosedLoop(cfg, FlowControl::Afc, w));
    }
    EXPECT_EQ(fp[0], fp[1]);
}

/** Per-router counters read *mid-run* must match too: an accessor on
 *  a parked router replays its idle gap on demand, and that read
 *  must not perturb anything downstream. */
TEST(SchedEquiv, MidRunPerRouterReadsExactAndNonPerturbing)
{
    std::string fp[2];
    for (int skip = 0; skip < 2; ++skip) {
        NetworkConfig cfg = testConfig();
        cfg.idleSkip = skip != 0;
        Network net(cfg, FlowControl::Afc);
        UniformPattern pattern(net.mesh());
        OpenLoopInjector inj(net, pattern, 0.15, 0.35);

        JsonValue doc = JsonValue::array();
        for (int chunk = 0; chunk < 4; ++chunk) {
            for (int c = 0; c < 512; ++c) {
                inj.tick(net.now());
                net.step();
            }
            JsonValue snap = JsonValue::object();
            for (NodeId n = 0; n < net.mesh().numNodes(); ++n) {
                const RouterStats &rs = net.router(n).stats();
                JsonValue row = JsonValue::array();
                row.push(static_cast<std::int64_t>(rs.flitsRouted));
                row.push(static_cast<std::int64_t>(rs.flitsDeflected));
                row.push(static_cast<std::int64_t>(rs.cyclesBackpressured));
                row.push(
                    static_cast<std::int64_t>(rs.cyclesBackpressureless));
                row.push(static_cast<std::int64_t>(rs.forwardSwitches));
                row.push(static_cast<std::int64_t>(rs.reverseSwitches));
                row.push(static_cast<std::int64_t>(rs.gossipSwitches));
                row.push(static_cast<std::int64_t>(rs.creditStalls));
                row.push(net.ledger(n).report().total());
                snap.set("node" + std::to_string(n), std::move(row));
            }
            doc.push(std::move(snap));
        }
        fp[skip] = doc.dump(2);
    }
    EXPECT_EQ(fp[0], fp[1]);
}

/** The traced grid above runs the sharded kernel through its
 *  serialized gate; these points drop the Chrome trace (sampler and
 *  watchdog stay armed) so `shards > 1` actually dispatches the
 *  worker pool. Any missed barrier, racing staging queue or
 *  non-canonical drain order shows up as a fingerprint diff — and as
 *  a data race under the TSan configuration of this suite. */
TEST(ShardEquiv, WorkerPoolBitIdentical)
{
    OpenLoopConfig ol;
    ol.pattern = "uniform";
    ol.injectionRate = 0.30;
    ol.warmupCycles = 300;
    ol.measureCycles = 1500;
    ol.drainCycles = 30000;

    std::string ref;
    for (int shards : {1, 2, 3, 9}) {
        NetworkConfig cfg = testConfig();
        cfg.shards = shards;
        cfg.watchdog.enabled = true;
        cfg.watchdog.intervalCycles = 128;
        cfg.obs.sampleInterval = 64;
        std::string fp = openLoopFingerprint(
            runOpenLoop(cfg, FlowControl::Afc, ol));
        if (shards == 1)
            ref = fp;
        else
            EXPECT_EQ(ref, fp) << "shards=" << shards << " diverged";
    }
}

/** Same, for the drop variant: cross-shard NACK traffic exercises the
 *  staged hand-off (NackFabric staging + ascending-slot merge) with
 *  the pool live. */
TEST(ShardEquiv, WorkerPoolDropNackBitIdentical)
{
    OpenLoopConfig ol;
    ol.pattern = "uniform";
    ol.injectionRate = 0.20;
    ol.warmupCycles = 300;
    ol.measureCycles = 1500;
    ol.drainCycles = 30000;

    std::string ref;
    for (int shards : {1, 3, 7}) {
        NetworkConfig cfg = testConfig();
        cfg.shards = shards;
        cfg.watchdog.enabled = true;
        cfg.watchdog.intervalCycles = 128;
        cfg.obs.sampleInterval = 64;
        std::string fp = openLoopFingerprint(
            runOpenLoop(cfg, FlowControl::BackpressurelessDrop, ol));
        if (shards == 1)
            ref = fp;
        else
            EXPECT_EQ(ref, fp) << "shards=" << shards << " diverged";
    }
}

/** Closed-loop pool run: end-to-end reliability keeps the ack staging
 *  path hot (every ejection stages an ack for the sender's shard)
 *  while cores/caches drive bursty regional traffic. */
TEST(ShardEquiv, WorkerPoolMemsysBitIdentical)
{
    WorkloadProfile w = workloadByName("ocean");
    w.warmupTransactions /= 20;
    w.measureTransactions /= 20;

    std::string ref;
    for (int shards : {1, 4}) {
        NetworkConfig cfg = testConfig(4, 4);
        cfg.shards = shards;
        cfg.watchdog.enabled = true;
        cfg.watchdog.intervalCycles = 128;
        cfg.obs.sampleInterval = 64;
        cfg.reliability.enabled = true;
        cfg.reliability.timeoutCycles = 256;
        cfg.reliability.maxRetries = 16;
        std::string fp = closedLoopFingerprint(
            runClosedLoop(cfg, FlowControl::Afc, w));
        if (shards == 1)
            ref = fp;
        else
            EXPECT_EQ(ref, fp) << "shards=" << shards << " diverged";
    }
}

/** The two scheduler knobs compose: partitioned per-shard active
 *  lists with parking enabled must match a full-scan single-shard
 *  run bit-for-bit. */
TEST(ShardEquiv, ComposesWithIdleSkip)
{
    OpenLoopConfig ol;
    ol.pattern = "hotspot"; // quiescent corners park mid-run
    ol.injectionRate = 0.10;
    ol.warmupCycles = 300;
    ol.measureCycles = 1500;
    ol.drainCycles = 30000;

    std::string ref;
    bool first = true;
    for (int shards : {1, 3}) {
        for (int skip = 0; skip < 2; ++skip) {
            NetworkConfig cfg = testConfig();
            cfg.shards = shards;
            cfg.idleSkip = skip != 0;
            cfg.watchdog.enabled = true;
            cfg.watchdog.intervalCycles = 128;
            cfg.obs.sampleInterval = 64;
            std::string fp = openLoopFingerprint(
                runOpenLoop(cfg, FlowControl::Afc, ol));
            if (first) {
                ref = fp;
                first = false;
            } else {
                EXPECT_EQ(ref, fp)
                    << "shards=" << shards << " idle_skip=" << skip
                    << " diverged";
            }
        }
    }
}

/** Snapshots are shard-count-invariant: cfg.shards is excluded from
 *  the checkpoint config hash, so a checkpoint taken mid-run under N
 *  shards restores under 1 (and vice versa), and both restored runs
 *  finish bit-identical to a never-interrupted single-shard run. */
TEST(ShardEquiv, CheckpointCrossesShardCounts)
{
    NetworkConfig cfg = testConfig();
    cfg.watchdog.enabled = true;
    cfg.watchdog.intervalCycles = 128;
    cfg.obs.sampleInterval = 64;
    OpenLoopConfig ol;
    ol.pattern = "uniform";
    ol.injectionRate = 0.30;
    ol.warmupCycles = 600;
    ol.measureCycles = 1200;
    ol.drainCycles = 30000;
    std::vector<double> rates(
        static_cast<std::size_t>(cfg.width * cfg.height),
        ol.injectionRate);

    NetworkConfig cfg1 = cfg;
    cfg1.shards = 1;
    NetworkConfig cfg3 = cfg;
    cfg3.shards = 3;

    OpenLoopRun ref(cfg1, FlowControl::Afc, ol, rates);
    std::string refFp = openLoopFingerprint(ref.finish());

    // Taken under 3 shards, restored under 1.
    const std::string pathA =
        std::string(testing::TempDir()) + "/shard_xover_a.ckpt";
    OpenLoopRun donorA(cfg3, FlowControl::Afc, ol, rates);
    while (donorA.cycle() < 900)
        donorA.step();
    donorA.saveCheckpoint(pathA);
    OpenLoopRun restoredA(cfg1, FlowControl::Afc, ol, rates);
    restoredA.loadCheckpoint(pathA);
    EXPECT_EQ(restoredA.cycle(), 900u);
    EXPECT_EQ(openLoopFingerprint(restoredA.finish()), refFp)
        << "3-shard snapshot diverged when restored under 1 shard";
    std::remove(pathA.c_str());

    // Taken under 1 shard, restored under 3.
    const std::string pathB =
        std::string(testing::TempDir()) + "/shard_xover_b.ckpt";
    OpenLoopRun donorB(cfg1, FlowControl::Afc, ol, rates);
    while (donorB.cycle() < 900)
        donorB.step();
    donorB.saveCheckpoint(pathB);
    OpenLoopRun restoredB(cfg3, FlowControl::Afc, ol, rates);
    restoredB.loadCheckpoint(pathB);
    EXPECT_EQ(openLoopFingerprint(restoredB.finish()), refFp)
        << "1-shard snapshot diverged when restored under 3 shards";
    std::remove(pathB.c_str());
}

} // namespace
} // namespace afcsim
